// Quickstart: the whole Mocktails pipeline in one file.
//
// It walks the two sides of Fig. 1: a "proprietary" trace (here a
// synthetic VPU proxy) is turned into a statistical profile, the profile
// is serialised (this is the artefact industry would publish), and a
// synthetic request stream is regenerated from it and compared with the
// original at the memory controller.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	// 1. Industry side: a trace of the device. (A real user would load
	// their own trace with trace.ReadGzip.)
	spec, err := workloads.Find("HEVC1")
	if err != nil {
		obs.Fatal(err)
	}
	t := spec.Gen()
	reads, writes := t.Counts()
	fmt.Printf("original trace: %d requests (%d reads / %d writes), %d cycles\n",
		len(t), reads, writes, t.Duration())

	// 2. Build the statistical profile with the paper's 2L-TS hierarchy
	// (500k-cycle temporal intervals, then dynamic spatial partitions).
	p, err := core.Build(spec.Name, t, core.DefaultConfig())
	if err != nil {
		obs.Fatal(err)
	}
	fmt.Println("profile:", p)

	// 3. Serialise it: this compact, obfuscated blob is what crosses the
	// industry/academia boundary instead of the trace.
	var buf bytes.Buffer
	if err := profile.WriteGzip(&buf, p); err != nil {
		obs.Fatal(err)
	}
	fmt.Printf("profile blob: %d bytes (trace would be %d raw request records)\n",
		buf.Len(), len(t))

	// 4. Academia side: regenerate a request stream and drive a
	// simulator with it. The synthesizer implements trace.Source with
	// backpressure feedback, so it plugs in exactly like a trace.
	p2, err := profile.ReadGzip(&buf)
	if err != nil {
		obs.Fatal(err)
	}
	cfg := dram.Default()
	base := dram.Run(trace.NewReplayer(t), cfg, 20)
	syn := dram.Run(core.Synthesize(p2, 42), cfg, 20)

	fmt.Println("\nmemory-controller comparison (baseline vs Mocktails):")
	row := func(name string, b, s float64) {
		fmt.Printf("  %-18s %12.1f %12.1f\n", name, b, s)
	}
	fmt.Printf("  %-18s %12s %12s\n", "metric", "baseline", "mocktails")
	row("read bursts", float64(base.ReadBursts()), float64(syn.ReadBursts()))
	row("write bursts", float64(base.WriteBursts()), float64(syn.WriteBursts()))
	row("read row hits", float64(base.ReadRowHits()), float64(syn.ReadRowHits()))
	row("write row hits", float64(base.WriteRowHits()), float64(syn.WriteRowHits()))
	row("avg read queue", base.AvgReadQueueLen(), syn.AvgReadQueueLen())
	row("avg write queue", base.AvgWriteQueueLen(), syn.AvgWriteQueueLen())
	row("avg latency", base.AvgLatency, syn.AvgLatency)
}
