// DPU memory-controller study: use Mocktails clones of display-processor
// workloads to compare how linear and tiled frame-buffer scans interact
// with the memory scheduler — the paper's Fig. 10-12 use case, done the
// way an academic without the proprietary traces would: entirely from
// profiles.
//
// Run with: go run ./examples/dpu_study
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	for _, name := range []string{"FBC-Linear1", "FBC-Tiled1"} {
		spec, err := workloads.Find(name)
		if err != nil {
			obs.Fatal(err)
		}
		t := spec.Gen()
		p, err := core.Build(name, t, core.DefaultConfig())
		if err != nil {
			obs.Fatal(err)
		}
		cfg := dram.Default()
		base := dram.Run(trace.NewReplayer(t), cfg, 20)
		syn := dram.Run(core.Synthesize(p, 7), cfg, 20)

		fmt.Printf("== %s ==\n", name)
		fmt.Printf("  read row hit rate:  baseline %.1f%%  mocktails %.1f%%\n",
			pct(base.ReadRowHits(), base.ReadBursts()), pct(syn.ReadRowHits(), syn.ReadBursts()))
		fmt.Printf("  write row hit rate: baseline %.1f%%  mocktails %.1f%%\n",
			pct(base.WriteRowHits(), base.WriteBursts()), pct(syn.WriteRowHits(), syn.WriteBursts()))
		for ch := range base.Channels {
			fmt.Printf("  channel %d reads/turnaround: baseline %.1f  mocktails %.1f\n",
				ch, base.AvgReadsPerTurnaround(ch), syn.AvgReadsPerTurnaround(ch))
		}
		// Per-bank write distribution: tiled/linear writes hit a narrow
		// band, so several banks should stay write-free (Fig. 12b).
		quiet := 0
		for _, cs := range base.Channels {
			for _, n := range cs.PerBankWriteBursts {
				if n == 0 {
					quiet++
				}
			}
		}
		fmt.Printf("  banks with zero writes (baseline): %d\n\n", quiet)
	}
	fmt.Println("Conclusion: the linear scan keeps DRAM rows open far longer than")
	fmt.Println("the tiled scan, and the Mocktails clone reproduces the contrast")
	fmt.Println("without access to the original traces.")
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
