// SoC mix: the headline use case of the paper — substituting proprietary
// IP blocks in a larger system simulation. A GPU, a VPU and a DPU are
// each represented only by their Mocktails profiles; the example merges
// their synthetic request streams into one shared memory system and
// reports how the devices interact at the memory controller, compared
// with running the three original traces together.
//
// Run with: go run ./examples/soc_mix
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	names := []string{"T-Rex1", "HEVC1", "FBC-Linear1"}

	var real []trace.Source
	var mock []trace.Source
	for i, name := range names {
		spec, err := workloads.Find(name)
		if err != nil {
			obs.Fatal(err)
		}
		t := spec.Gen()
		real = append(real, trace.NewReplayer(t))

		// In practice the profile arrives from the IP vendor; here we
		// build it ourselves and then forget the trace.
		p, err := core.Build(name, t, core.DefaultConfig())
		if err != nil {
			obs.Fatal(err)
		}
		mock = append(mock, core.Synthesize(p, uint64(100+i)))
	}

	cfg := dram.Default()
	baseline := dram.Run(trace.Merge(real...), cfg, 20)
	synthetic := dram.Run(trace.Merge(mock...), cfg, 20)

	fmt.Println("shared-memory SoC simulation: GPU + VPU + DPU")
	fmt.Printf("  %-22s %12s %12s\n", "metric", "real traces", "mocktails")
	row := func(name string, b, s float64) {
		fmt.Printf("  %-22s %12.1f %12.1f\n", name, b, s)
	}
	row("requests", float64(baseline.Requests), float64(synthetic.Requests))
	row("read bursts", float64(baseline.ReadBursts()), float64(synthetic.ReadBursts()))
	row("write bursts", float64(baseline.WriteBursts()), float64(synthetic.WriteBursts()))
	row("read row hits", float64(baseline.ReadRowHits()), float64(synthetic.ReadRowHits()))
	row("write row hits", float64(baseline.WriteRowHits()), float64(synthetic.WriteRowHits()))
	row("avg read queue", baseline.AvgReadQueueLen(), synthetic.AvgReadQueueLen())
	row("avg write queue", baseline.AvgWriteQueueLen(), synthetic.AvgWriteQueueLen())
	row("avg latency (cycles)", baseline.AvgLatency, synthetic.AvgLatency)
	fmt.Println("\nEvery device above could be a black-box profile from a vendor —")
	fmt.Println("no proprietary trace is needed to study their shared-memory contention.")
}
