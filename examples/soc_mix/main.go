// SoC mix: the headline use case of the paper — substituting proprietary
// IP blocks in a larger system simulation. A GPU, a VPU and a DPU are
// each represented only by their Mocktails profiles; a declarative
// scenario spec (the same JSON `mocktails compose` and
// POST /v1/scenarios/synth take) names the members by content address,
// and the scenario composer merges their synthetic streams into one
// shared memory system. The example compares the composed mix against
// running the three original traces together, then re-runs the mix with
// per-device address windows and a time-dilated VPU to show the knobs a
// spec exposes.
//
// Run with: go run ./examples/soc_mix
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	names := []string{"T-Rex1", "HEVC1", "FBC-Linear1"}

	// In practice the profiles arrive from the IP vendors and live in a
	// mocktailsd store; here we build them ourselves, address them by
	// content like the store does, and then forget the traces.
	var real []trace.Source
	shelf := map[string]*profile.Profile{}
	var spec scenario.Spec
	for i, name := range names {
		ws, err := workloads.Find(name)
		if err != nil {
			obs.Fatal(err)
		}
		t := ws.Gen()
		real = append(real, trace.NewReplayer(t))

		p, err := core.Build(name, t, core.DefaultConfig())
		if err != nil {
			obs.Fatal(err)
		}
		id, _, err := serve.ProfileID(p)
		if err != nil {
			obs.Fatal(err)
		}
		shelf[id] = p
		spec.Devices = append(spec.Devices, scenario.Device{
			Profile: id,
			Name:    name,
			Seed:    uint64(100 + i),
		})
	}
	resolver := func(id string) (profile.View, func(), error) {
		p, ok := shelf[id]
		if !ok {
			return nil, nil, fmt.Errorf("no profile %s", id)
		}
		return p, func() {}, nil
	}

	const xbar = 20
	spec.XbarLatency = xbar
	cfg := dram.Default()
	baseline := dram.Run(trace.Merge(real...), cfg, xbar)

	st, err := scenario.Compose(&spec, resolver)
	if err != nil {
		obs.Fatal(err)
	}
	synthetic := scenario.Replay(st, &spec, cfg)
	st.Close()

	fmt.Println("shared-memory SoC simulation: GPU + VPU + DPU")
	fmt.Printf("  %-22s %12s %12s\n", "metric", "real traces", "mocktails")
	row := func(name string, b, s float64) {
		fmt.Printf("  %-22s %12.1f %12.1f\n", name, b, s)
	}
	row("requests", float64(baseline.Requests), float64(synthetic.Requests))
	row("read bursts", float64(baseline.ReadBursts()), float64(synthetic.ReadBursts))
	row("write bursts", float64(baseline.WriteBursts()), float64(synthetic.WriteBursts))
	row("read row hits", float64(baseline.ReadRowHits()), float64(synthetic.ReadRowHits))
	row("write row hits", float64(baseline.WriteRowHits()), float64(synthetic.WriteRowHits))
	row("avg read queue", baseline.AvgReadQueueLen(), synthetic.AvgReadQueueLen)
	row("avg write queue", baseline.AvgWriteQueueLen(), synthetic.AvgWriteQueueLen)
	row("avg latency (cycles)", baseline.AvgLatency, synthetic.AvgLatency)

	// The spec is declarative, so what-if variants are one edit away:
	// give each device a private 1 GiB window (no address interference)
	// and slow the VPU to quarter rate.
	for i := range spec.Devices {
		spec.Devices[i].Window = &scenario.Window{
			Base: uint64(i) << 30,
			Size: 1 << 30,
		}
	}
	spec.Devices[1].Dilation = 4.0 // HEVC1 at quarter rate
	if err := spec.Validate(); err != nil {
		obs.Fatal(err)
	}
	st, err = scenario.Compose(&spec, resolver)
	if err != nil {
		obs.Fatal(err)
	}
	variant := scenario.Replay(st, &spec, cfg)
	st.Close()

	fmt.Println("\nwhat-if: private 1 GiB windows, VPU dilated to quarter rate")
	fmt.Printf("  %-12s %10s %10s %10s %12s %12s\n",
		"device", "requests", "row hits", "misses", "avg queue", "avg latency")
	for _, d := range variant.Devices {
		hits := d.ReadRowHits + d.WriteRowHits
		misses := d.ReadBursts + d.WriteBursts - hits
		fmt.Printf("  %-12s %10d %10d %10d %12.1f %12.1f\n",
			d.Name, d.Requests, hits, misses, d.AvgQueueLen, d.AvgLatency)
	}

	fmt.Println("\nEvery device above is a black-box profile named by content address —")
	fmt.Println("the same spec drives `mocktails compose` offline and POST /v1/scenarios/synth.")
}
