// Workload DSL: describe a custom IP block's memory behaviour
// declaratively, generate a trace from it, build a Mocktails profile,
// and verify the clone against the original at the memory controller —
// the complete loop a user follows for their own device, without writing
// a generator in Go.
//
// The same spec is shipped as video_pipeline.json next to this file and
// can be fed to `go run ./cmd/tracegen -spec-file .../video_pipeline.json`.
//
// Run with: go run ./examples/workload_dsl
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/obs"
	"repro/internal/synthgen"
	"repro/internal/trace"
	"repro/internal/validate"
)

func main() {
	// A little camera-ISP-like pipeline: per frame, a sensor buffer is
	// read linearly while statistics are gathered from a random window,
	// then the processed frame is written out in bursts; frames are
	// separated by long idle gaps.
	spec := &synthgen.Spec{
		Name: "camera-isp",
		Seed: 2024,
		Phases: []synthgen.Phase{{
			Repeat:    4,
			IdleAfter: 8_000_000,
			Streams: []synthgen.Stream{
				{ // sensor readout: linear, dense
					Base: 0x4000_0000, Stride: 64, Count: 4096,
					Gap: 8, GapJitter: 2, AdvancePerRepeat: 0x40000,
				},
				{ // statistics: sparse random reads over the window
					Base: 0x5000_0000, RandomIn: 1 << 20, Count: 512,
					Gap: 60, GapJitter: 20,
				},
				{ // writeback: bursty writes
					Base: 0x6000_0000, Stride: 64, Count: 4096,
					WriteFrac: 1, Gap: 500, GapJitter: 100, Burst: 16,
					AdvancePerRepeat: 0x40000,
				},
			},
		}},
	}

	tr, err := spec.Generate()
	if err != nil {
		obs.Fatal(err)
	}
	reads, writes := tr.Counts()
	fmt.Printf("generated %q: %d requests (%d reads / %d writes)\n",
		spec.Name, len(tr), reads, writes)

	p, err := core.Build(spec.Name, tr, core.DefaultConfig())
	if err != nil {
		obs.Fatal(err)
	}
	fmt.Println("profile:", p)

	cfg := dram.Default()
	ref := dram.Run(trace.NewReplayer(tr), cfg, 20)
	got := dram.Run(core.Synthesize(p, 1), cfg, 20)
	fmt.Println("\nclone vs original at the memory controller:")
	validate.Compare(ref, got).Fprint(os.Stdout)

	// Write the spec next to the binary for the tracegen demo.
	f, err := os.Create("video_pipeline.json")
	if err == nil {
		spec.Write(f)
		f.Close()
		fmt.Println("\nwrote video_pipeline.json (try: go run ./cmd/tracegen -spec-file video_pipeline.json)")
	}
}
