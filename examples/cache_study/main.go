// Cache-design study: the §V use case. A researcher wants to evaluate L1
// associativity trade-offs for a workload they only have as a Mocktails
// profile. The example builds profiles from SPEC CPU2006 proxies,
// regenerates synthetic request streams, and sweeps L1 associativity,
// checking that the synthetic streams preserve the workload's real trend
// (falling, flat, or rising miss rate).
//
// Run with: go run ./examples/cache_study
package main

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	assocs := []int{2, 4, 8, 16}
	for _, bench := range []string{"gobmk", "libquantum", "zeusmp"} {
		t, err := workloads.SPECTrace(bench)
		if err != nil {
			obs.Fatal(err)
		}
		// The CPU-port configuration: 100k-request temporal phases, then
		// dynamic spatial partitions.
		syn, _, err := core.Clone(bench, t, core.CPUPortConfig(), 1234)
		if err != nil {
			obs.Fatal(err)
		}

		fmt.Printf("== %s: 32KB L1 miss rate (%%) ==\n", bench)
		fmt.Printf("  %-6s %9s %9s\n", "assoc", "baseline", "mocktails")
		for _, a := range assocs {
			fmt.Printf("  %-6d %9.2f %9.2f\n", a,
				missRate(t, a), missRate(syn, a))
		}
		fmt.Println()
	}
	fmt.Println("gobmk falls with associativity, libquantum is flat, zeusmp rises;")
	fmt.Println("the Mocktails clones preserve all three trends (paper Fig. 15).")
}

func missRate(t trace.Trace, assoc int) float64 {
	h, err := cache.NewHierarchy(cache.Default64(32<<10, assoc), cache.L2Default())
	if err != nil {
		obs.Fatal(err)
	}
	h.Run(t)
	return h.L1.Stats().MissRate()
}
