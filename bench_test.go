// Package repro's benchmark harness: one benchmark per table and figure
// of the paper (each iteration regenerates the exhibit end to end —
// workload generation, model fitting, synthesis, simulation), plus
// micro-benchmarks for the pipeline stages.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// or one exhibit with e.g. -bench=BenchmarkFig09.
package repro

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/experiments"
	"repro/internal/hrd"
	"repro/internal/partition"
	"repro/internal/profile"
	"repro/internal/serve"
	"repro/internal/stm"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// benchExperiment runs one experiment per iteration on a fresh
// environment, so every iteration does the full work of regenerating the
// exhibit.
func benchExperiment(b *testing.B, id string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv()
		if tab := env.Run(id); tab == nil || len(tab.Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", id)
		}
	}
}

func BenchmarkFig02(b *testing.B)  { benchExperiment(b, "fig2") }
func BenchmarkFig03(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFig06(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFig07(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFig08(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFig09(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)  { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)  { benchExperiment(b, "fig17") }

func BenchmarkAblationSpatial(b *testing.B) { benchExperiment(b, "ablation-spatial") }
func BenchmarkAblationOrder(b *testing.B)   { benchExperiment(b, "ablation-order") }
func BenchmarkAblationPrivacy(b *testing.B) { benchExperiment(b, "ablation-privacy") }
func BenchmarkChargeCache(b *testing.B)     { benchExperiment(b, "chargecache") }
func BenchmarkCharacterize(b *testing.B)    { benchExperiment(b, "characterization") }
func BenchmarkAblationKOrder(b *testing.B)  { benchExperiment(b, "ablation-korder") }
func BenchmarkEnergy(b *testing.B)          { benchExperiment(b, "energy") }
func BenchmarkAblationPolicy(b *testing.B)  { benchExperiment(b, "ablation-policy") }
func BenchmarkSoC(b *testing.B)             { benchExperiment(b, "soc") }

// Micro-benchmarks for the pipeline stages, all on the HEVC1 proxy.

func hevc1(b *testing.B) trace.Trace {
	b.Helper()
	s, err := workloads.Find("HEVC1")
	if err != nil {
		b.Fatal(err)
	}
	return s.Gen()
}

func BenchmarkWorkloadGen(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(hevc1(b)) == 0 {
			b.Fatal("empty trace")
		}
	}
}

func BenchmarkProfileBuild(b *testing.B) {
	tr := hevc1(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build("HEVC1", tr, core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(tr)))
}

// workerCounts are the explicit fan-outs for the parallel benchmarks.
// They are fixed worker counts handed to the internal/par pool, entirely
// independent of b.SetParallelism / RunParallel, so the measured scaling
// reflects the pipeline's own pool and not the testing package's.
var workerCounts = []int{1, 2, 4, 8}

func BenchmarkProfileBuildParallel(b *testing.B) {
	tr := hevc1(b)
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Build("HEVC1", tr, core.DefaultConfig(), core.Workers(w)); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(tr)))
		})
	}
}

func BenchmarkSTMBuildParallel(b *testing.B) {
	tr := hevc1(b)
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := stm.Build("HEVC1", tr, partition.TwoLevelTS(500000), stm.Workers(w)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAllParallel regenerates the full 26-exhibit suite per
// iteration on a fresh environment, fanned across a fixed worker count.
// workers=1 is the serial BenchmarkAll-equivalent to compare against.
func BenchmarkAllParallel(b *testing.B) {
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				env := experiments.NewEnv()
				tabs := env.AllParallel(w)
				for _, tab := range tabs {
					if tab == nil || len(tab.Rows) == 0 {
						b.Fatal("experiment produced no rows")
					}
				}
			}
		})
	}
}

// BenchmarkSynthesize tracks the synthesis hot path on the two profiles
// recorded in BENCH_synth.json: small = OpenCL1 (9 big leaves, sampling
// kernel bound) and large = Manhattan (7524 leaves, merge bound), each
// serially and with parallel chunk refill. Output is bit-identical
// across all variants; only throughput differs.
func BenchmarkSynthesize(b *testing.B) {
	cases := []struct{ size, workload string }{
		{"small", "OpenCL1"},
		{"large", "Manhattan"},
	}
	for _, c := range cases {
		s, err := workloads.Find(c.workload)
		if err != nil {
			b.Fatal(err)
		}
		tr := s.Gen()
		p, err := core.Build(c.workload, tr, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.size+"/serial", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := core.SynthesizeTrace(p, uint64(i)); len(got) != len(tr) {
					b.Fatal("short synthesis")
				}
			}
			b.SetBytes(int64(len(tr)))
		})
		flatBuf, err := profile.MarshalFlat(p)
		if err != nil {
			b.Fatal(err)
		}
		f, err := profile.OpenFlat(flatBuf)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.size+"/flat-serial", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				src := synth.NewFrom(f, uint64(i))
				got := trace.Collect(src, 0)
				src.Close()
				if len(got) != len(tr) {
					b.Fatal("short synthesis")
				}
			}
			b.SetBytes(int64(len(tr)))
		})
		for _, w := range workerCounts[1:] {
			b.Run(fmt.Sprintf("%s/workers=%d", c.size, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if got := core.SynthesizeTrace(p, uint64(i), core.SynthWorkers(w)); len(got) != len(tr) {
						b.Fatal("short synthesis")
					}
				}
				b.SetBytes(int64(len(tr)))
			})
		}
	}
}

// BenchmarkProfileOpen compares the cost of bringing a stored profile to
// a servable state per encoding, tracked in BENCH_profile.json. The gz
// rows decompress and decode the full heap representation; the flat rows
// validate the header and slice section tables out of the buffer (or
// mmap the file), independent of profile size.
func BenchmarkProfileOpen(b *testing.B) {
	cases := []struct{ size, workload string }{
		{"small", "OpenCL1"},
		{"large", "Manhattan"},
	}
	for _, c := range cases {
		s, err := workloads.Find(c.workload)
		if err != nil {
			b.Fatal(err)
		}
		p, err := core.Build(c.workload, s.Gen(), core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		var gz bytes.Buffer
		if err := profile.WriteGzip(&gz, p); err != nil {
			b.Fatal(err)
		}
		flatBuf, err := profile.MarshalFlat(p)
		if err != nil {
			b.Fatal(err)
		}
		path := filepath.Join(b.TempDir(), "p.mfp")
		if err := os.WriteFile(path, flatBuf, 0o644); err != nil {
			b.Fatal(err)
		}
		b.Run(c.size+"/decode-gz", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dp, err := profile.ReadGzip(bytes.NewReader(gz.Bytes()))
				if err != nil || dp.NumLeaves() != p.NumLeaves() {
					b.Fatalf("decode: %v", err)
				}
			}
			b.SetBytes(int64(gz.Len()))
		})
		b.Run(c.size+"/open-flat", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f, err := profile.OpenFlat(flatBuf)
				if err != nil || f.NumLeaves() != p.NumLeaves() {
					b.Fatalf("open: %v", err)
				}
			}
			b.SetBytes(int64(len(flatBuf)))
		})
		b.Run(c.size+"/open-flat-mmap", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f, err := profile.OpenFlatFile(path, profile.FlatNoVerify())
				if err != nil || f.NumLeaves() != p.NumLeaves() {
					b.Fatalf("open: %v", err)
				}
				f.Close()
			}
			b.SetBytes(int64(len(flatBuf)))
		})
	}
}

// BenchmarkServeSynth measures the mocktailsd streaming synthesis
// endpoint end-to-end in-process: per iteration one HTTP POST against
// an httptest server, the chunked binary response streamed to
// io.Discard. Tracked in BENCH_serve.json on the same small/large
// profiles as BenchmarkSynthesize, so the delta over synth/… is the
// HTTP + streaming-encoder overhead.
func BenchmarkServeSynth(b *testing.B) {
	cases := []struct{ size, workload string }{
		{"small", "OpenCL1"},
		{"large", "Manhattan"},
	}
	for _, c := range cases {
		s, err := workloads.Find(c.workload)
		if err != nil {
			b.Fatal(err)
		}
		p, err := core.Build(c.workload, s.Gen(), core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		srv, err := serve.NewServer(serve.Config{DiskDir: b.TempDir()})
		if err != nil {
			b.Fatal(err)
		}
		meta, _, err := srv.Store().Put(p)
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		url := ts.URL + "/v1/profiles/" + meta.ID + "/synth?seed="
		want := trace.BinaryEncodedSize(uint64(p.Requests()))
		stream := func(b *testing.B, i int) {
			resp, err := http.Post(url+fmt.Sprint(i), "", nil)
			if err != nil {
				b.Fatal(err)
			}
			n, err := io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK || n != want {
				b.Fatalf("stream: status %d, %d of %d bytes, err %v", resp.StatusCode, n, want, err)
			}
		}
		b.Run(c.size, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				stream(b, i)
			}
			b.SetBytes(want)
		})
		// Cold hit: every iteration demotes the profile to the disk tier
		// first, so the request pays promotion (mmap, no decode) on top
		// of synthesis. The tiered-store design goal is that this stays
		// close to the warm row above.
		b.Run(c.size+"/cold", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !srv.Store().Demote(meta.ID) {
					b.Fatal("demote refused")
				}
				stream(b, i)
			}
			b.SetBytes(want)
		})
		ts.Close()
	}
}

func BenchmarkDRAMSim(b *testing.B) {
	tr := hevc1(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := dram.Run(trace.NewReplayer(tr), dram.Default(), 20)
		if res.Requests == 0 {
			b.Fatal("no requests simulated")
		}
	}
}

func BenchmarkDynamicPartition(b *testing.B) {
	tr := hevc1(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if leaves := partition.ByDynamic(tr); len(leaves) == 0 {
			b.Fatal("no leaves")
		}
	}
}

func BenchmarkSTMBuild(b *testing.B) {
	tr := hevc1(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stm.Build("HEVC1", tr, partition.TwoLevelTS(500000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHRDFit(b *testing.B) {
	tr, err := workloads.SPECTrace("gobmk")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := hrd.Fit(tr); m.Requests != len(tr) {
			b.Fatal("bad fit")
		}
	}
}

func BenchmarkHRDSynthesize(b *testing.B) {
	tr, err := workloads.SPECTrace("gobmk")
	if err != nil {
		b.Fatal(err)
	}
	m := hrd.Fit(tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := hrd.Synthesize(m, uint64(i)); len(got) != len(tr) {
			b.Fatal("short synthesis")
		}
	}
}

// writeIngestTrace tiles the HEVC1 proxy trace end to end `tiles` times
// and writes it as a gz trace file, returning the path and the request
// count. The tiled trace is dropped before returning so only the file,
// not a slice, survives into the benchmark iterations.
func writeIngestTrace(b *testing.B, tiles int) (string, int) {
	b.Helper()
	base := hevc1(b)
	span := base[len(base)-1].Time + 1
	big := make(trace.Trace, 0, len(base)*tiles)
	for t := 0; t < tiles; t++ {
		off := span * uint64(t)
		for _, r := range base {
			r.Time += off
			big = append(big, r)
		}
	}
	path := filepath.Join(b.TempDir(), "ingest.trace.gz")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := trace.WriteGzip(f, big); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	return path, len(big)
}

func ingestMaterialized(path string, cfg core.Config) (*profile.Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := trace.ReadGzip(f)
	if err != nil {
		return nil, err
	}
	return core.Build("ingest", tr, cfg)
}

func ingestStream(path string, cfg core.Config) (*profile.Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := trace.NewDecoder(f)
	if err != nil {
		return nil, err
	}
	return core.BuildStream("ingest", d, cfg)
}

// measurePeakHeap runs fn while a sampler goroutine polls
// runtime.ReadMemStats every millisecond, and returns the peak HeapAlloc
// over the pre-fn baseline. A GC runs before the baseline so the
// measurement starts from a settled heap.
func measurePeakHeap(fn func()) uint64 {
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	var peak atomic.Uint64
	peak.Store(base.HeapAlloc)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			default:
			}
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak.Load() {
				peak.Store(ms.HeapAlloc)
			}
			time.Sleep(time.Millisecond)
		}
	}()
	fn()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > peak.Load() {
		peak.Store(ms.HeapAlloc)
	}
	close(stop)
	<-done
	return peak.Load() - base.HeapAlloc
}

// BenchmarkIngest contrasts the two ingestion paths on a long trace (the
// HEVC1 proxy tiled 64x, ~2.5M requests, read from a gz file):
// "materialized" decodes the whole trace into memory before fitting,
// "stream" feeds the incremental decoder straight into the streaming
// partitioner so peak heap tracks the fit frontier rather than the
// trace. Both use the paper's CPU-port partitioning (100k-request
// temporal intervals, §V) and must content-address identically; each
// sub-benchmark reports peak-B/op, the sampled high-water heap mark of
// one iteration. Tracked in BENCH_ingest.json.
func BenchmarkIngest(b *testing.B) {
	path, nreq := writeIngestTrace(b, 64)
	cfg := core.CPUPortConfig()

	pm, err := ingestMaterialized(path, cfg)
	if err != nil {
		b.Fatal(err)
	}
	ps, err := ingestStream(path, cfg)
	if err != nil {
		b.Fatal(err)
	}
	idM, _, err := serve.ProfileID(pm)
	if err != nil {
		b.Fatal(err)
	}
	idS, _, err := serve.ProfileID(ps)
	if err != nil {
		b.Fatal(err)
	}
	if idM != idS {
		b.Fatalf("streaming fit %s diverges from materialized fit %s", idS, idM)
	}
	pm, ps = nil, nil

	for _, c := range []struct {
		name string
		fn   func(string, core.Config) (*profile.Profile, error)
	}{
		{"materialized", ingestMaterialized},
		{"stream", ingestStream},
	} {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			var peak uint64
			for i := 0; i < b.N; i++ {
				sample := measurePeakHeap(func() {
					p, err := c.fn(path, cfg)
					if err != nil {
						b.Fatal(err)
					}
					if len(p.Leaves) == 0 {
						b.Fatal("empty profile")
					}
				})
				if sample > peak {
					peak = sample
				}
			}
			b.ReportMetric(float64(peak), "peak-B/op")
			b.SetBytes(int64(nreq) * trace.RequestMemBytes)
		})
	}
}
