package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/dram"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/validate"
)

func cmdAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	in := fs.String("in", "", "input trace (gzip binary format)")
	top := fs.Int("top", 8, "number of top strides to print")
	of := obs.RegisterFlags(fs)
	fs.Parse(args)
	if *in == "" {
		fatal(fmt.Errorf("analyze: need -in"))
	}
	ctx, stop := of.Start("mocktails.analyze")
	defer stop()
	t := readTraceCtx(ctx, *in)
	fmt.Println(analysis.Characterize(t))
	if *top > 0 {
		fmt.Println("top strides:")
		for _, sc := range analysis.TopStrides(t, *top) {
			fmt.Printf("  %12d  x%d\n", sc.Stride, sc.Count)
		}
	}
}

func cmdCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	ref := fs.String("ref", "", "reference trace (e.g. the original)")
	in := fs.String("in", "", "candidate trace (e.g. a synthetic recreation)")
	xbarLat := fs.Uint64("xbar", 20, "interconnect latency in cycles")
	of := obs.RegisterFlags(fs)
	fs.Parse(args)
	if *ref == "" || *in == "" {
		fatal(fmt.Errorf("compare: need -ref and -in"))
	}
	ctx, stop := of.Start("mocktails.compare")
	defer stop()
	cfg := dram.Default()
	_, asp := obs.Start(ctx, "simulate.ref")
	a := dram.Run(trace.NewReplayer(readTrace(*ref)), cfg, *xbarLat)
	asp.SetCount("requests", int64(a.Requests))
	asp.End()
	_, bsp := obs.Start(ctx, "simulate.in")
	b := dram.Run(trace.NewReplayer(readTrace(*in)), cfg, *xbarLat)
	bsp.SetCount("requests", int64(b.Requests))
	bsp.End()
	validate.Compare(a, b).Fprint(os.Stdout)
}
