package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/trace"
)

// composeFixture fits a profile from the tiny trace and stores it in
// dir under its content address, in both encodings the resolver
// accepts. It returns the content address.
func composeFixture(t *testing.T, dir string) string {
	t.Helper()
	tr := readTraceFile(t, tinyTrace(t, dir))
	p, err := core.Build("tiny", tr, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := serve.ProfileID(p)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := os.Create(filepath.Join(dir, id+".mfp"))
	if err != nil {
		t.Fatal(err)
	}
	defer flat.Close()
	if err := profile.WriteFlat(flat, p); err != nil {
		t.Fatal(err)
	}
	gz, err := os.Create(filepath.Join(dir, id+".profile.gz"))
	if err != nil {
		t.Fatal(err)
	}
	defer gz.Close()
	if err := profile.WriteGzip(gz, p); err != nil {
		t.Fatal(err)
	}
	return id
}

func readTraceFile(t *testing.T, path string) trace.Trace {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := trace.NewDecoder(f)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := d.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func writeSpec(t *testing.T, dir string, spec *scenario.Spec) string {
	t.Helper()
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCLICompose(t *testing.T) {
	dir := t.TempDir()
	id := composeFixture(t, dir)

	// A two-device mix with windows and dilation, composed to binary.
	spec := &scenario.Spec{Devices: []scenario.Device{
		{Profile: id, Name: "cpu", Window: &scenario.Window{Base: 0, Size: 1 << 28}, Seed: 1},
		{Profile: id, Name: "gpu", Window: &scenario.Window{Base: 1 << 28, Size: 1 << 28}, Seed: 2, Dilation: 2.0},
	}}
	specPath := writeSpec(t, dir, spec)
	binOut := filepath.Join(dir, "mix.bin")
	out, code := runSelf(t, "compose", "-spec", specPath, "-dir", dir, "-out", binOut, "-format", "bin")
	if code != 0 {
		t.Fatalf("compose: exit %d: %s", code, out)
	}
	f, err := os.Open(binOut)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := trace.ReadBinary(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(mixed) != 800 { // two devices x 400 requests
		t.Fatalf("composed %d requests, want 800", len(mixed))
	}
	if !mixed.Sorted() {
		t.Fatal("composed stream is not time-ordered")
	}

	// Parallel compose is byte-identical.
	binOut2 := filepath.Join(dir, "mix2.bin")
	if out, code := runSelf(t, "compose", "-spec", specPath, "-dir", dir, "-out", binOut2, "-format", "bin", "-j", "8"); code != 0 {
		t.Fatalf("parallel compose: exit %d: %s", code, out)
	}
	a, _ := os.ReadFile(binOut)
	b, _ := os.ReadFile(binOut2)
	if string(a) != string(b) {
		t.Fatal("parallel compose differs from serial")
	}

	// A single-device identity spec matches `mocktails synth -format bin`.
	identity := &scenario.Spec{Devices: []scenario.Device{{Profile: id, Seed: 42}}}
	idSpecPath := writeSpec(t, dir, identity)
	composeOut := filepath.Join(dir, "identity.bin")
	if out, code := runSelf(t, "compose", "-spec", idSpecPath, "-dir", dir, "-out", composeOut); code != 0 {
		t.Fatalf("identity compose: exit %d: %s", code, out)
	}
	synthOut := filepath.Join(dir, "synth.bin")
	if out, code := runSelf(t, "synth", "-in", filepath.Join(dir, id+".mfp"), "-out", synthOut, "-seed", "42", "-format", "bin"); code != 0 {
		t.Fatalf("synth: exit %d: %s", code, out)
	}
	ca, _ := os.ReadFile(composeOut)
	sa, _ := os.ReadFile(synthOut)
	if string(ca) != string(sa) {
		t.Fatal("identity compose differs from plain synth")
	}

	// Stats output is a decodable contention report honouring the
	// spec's output field (no -format flag).
	statsSpec := &scenario.Spec{
		Devices: []scenario.Device{
			{Profile: id, Seed: 1},
			{Profile: id, Seed: 2, Count: 100},
		},
		Output:      "stats",
		XbarLatency: 10,
	}
	statsPath := writeSpec(t, dir, statsSpec)
	statsOut := filepath.Join(dir, "stats.json")
	if out, code := runSelf(t, "compose", "-spec", statsPath, "-dir", dir, "-out", statsOut); code != 0 {
		t.Fatalf("stats compose: exit %d: %s", code, out)
	}
	var rep scenario.Report
	data, err := os.ReadFile(statsOut)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("stats output is not a report: %v\n%s", err, data)
	}
	if rep.Requests != 500 || len(rep.Devices) != 2 {
		t.Fatalf("report: %d requests, %d devices (want 500, 2)", rep.Requests, len(rep.Devices))
	}

	// Unknown profile and invalid spec fail with a useful error.
	ghost := &scenario.Spec{Devices: []scenario.Device{{Profile: hexDigits64("0")}}}
	ghostPath := writeSpec(t, dir, ghost)
	if out, code := runSelf(t, "compose", "-spec", ghostPath, "-dir", dir, "-out", filepath.Join(dir, "x.bin")); code == 0 {
		t.Fatalf("compose of a missing profile succeeded: %s", out)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte(`{"devices": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, code := runSelf(t, "compose", "-spec", filepath.Join(dir, "bad.json"), "-dir", dir, "-out", "-"); code == 0 {
		t.Fatalf("compose of an invalid spec succeeded: %s", out)
	}
}

func hexDigits64(c string) string {
	s := ""
	for len(s) < 64 {
		s += c
	}
	return s
}
