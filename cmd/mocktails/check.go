package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/conform"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/profile"
)

// cmdCheck runs the whole pipeline — profile, synth, conform — over one
// trace and gates on the result: it exits non-zero when any invariant
// of the paper's conformance contract is violated or a statistical
// distance exceeds its threshold. It is the regression gate future
// refactors of the partitioner, the McC models, or the synthesis hot
// path run against.
func cmdCheck(args []string) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	in := fs.String("in", "", "input trace (gzip binary format)")
	interval := fs.Uint64("interval", 500000, "temporal partition length")
	mode := fs.String("temporal", "cycles", "temporal scheme: cycles or requests")
	spatial := fs.String("spatial", "dynamic", "spatial scheme: dynamic or a block size in bytes")
	name := fs.String("name", "workload", "workload name stored in the profile")
	seed := fs.Uint64("seed", 42, "synthesis seed")
	workers := fs.Int("j", 0, "leaf-fitting workers (0 = MOCKTAILS_PARALLELISM or GOMAXPROCS)")
	def := conform.DefaultThresholds()
	maxOp := fs.Float64("max-op", def.Op, "max L1 distance for the op distribution")
	maxSize := fs.Float64("max-size", def.Size, "max L1 distance for the size distribution")
	maxDt := fs.Float64("max-dt", def.DeltaTime, "max L1 distance for the merged delta-time distribution")
	maxStride := fs.Float64("max-stride", def.Stride, "max L1 distance for the merged stride distribution")
	of := obs.RegisterFlags(fs)
	fs.Parse(args)
	if *in == "" {
		fatal(fmt.Errorf("check: need -in"))
	}
	cfg, err := parseConfig(*mode, *interval, *spatial)
	if err != nil {
		fatal(err)
	}

	ctx, stop := of.Start("mocktails.check")
	t := readTraceCtx(ctx, *in)
	pctx, psp := obs.Start(ctx, "profile")
	p, err := core.Build(*name, t, cfg, core.Workers(*workers), core.BuildContext(pctx))
	if err != nil {
		fatal(err)
	}
	psp.SetCount("requests", int64(len(t)))
	psp.SetCount("leaves", int64(len(p.Leaves)))
	psp.End()
	sctx, ssp := obs.Start(ctx, "synth")
	syn := core.SynthesizeTrace(p, *seed, core.SynthContext(sctx))
	ssp.SetCount("requests", int64(len(syn)))
	ssp.End()
	fmt.Printf("checking %s: %d requests, %d leaves, seed %d\n", *name, len(t), len(p.Leaves), *seed)

	th := conform.Thresholds{Op: *maxOp, Size: *maxSize, DeltaTime: *maxDt, Stride: *maxStride}
	cctx, csp := obs.Start(ctx, "conform")
	r := conform.CheckCtx(cctx, t, p, syn, cfg, *seed, th)
	csp.SetCount("leaves", int64(r.Leaves))
	csp.End()
	r.Fprint(os.Stdout)
	if !r.Ok() {
		logViolations(r, p)
		stop() // still emit the span tree, metrics and profiles on failure
		os.Exit(1)
	}
	stop()
}

// logViolations reports each broken invariant through the structured
// logger, resolving the offending leaf's address range and the feature
// the check name encodes, so a failing gate pinpoints where in the
// partition hierarchy the contract broke.
func logViolations(r *conform.Report, p *profile.Profile) {
	log := obs.Logger()
	for _, v := range r.Violations {
		args := []any{"check", v.Check}
		if f := featureOf(v.Check); f != "" {
			args = append(args, "feature", f)
		}
		if v.Leaf >= 0 {
			args = append(args, "leaf", v.Leaf)
			if v.Leaf < len(p.Leaves) {
				l := &p.Leaves[v.Leaf]
				args = append(args, "lo", fmt.Sprintf("0x%x", l.Lo), "hi", fmt.Sprintf("0x%x", l.Hi))
			}
		}
		args = append(args, "detail", v.Detail)
		log.Error("conformance violation", args...)
	}
	if r.Dropped > 0 {
		log.Error("conformance violations dropped", "count", r.Dropped)
	}
}

// featureOf extracts the feature name a conformance check encodes
// (e.g. "strict-convergence/stride" -> "stride"), or "".
func featureOf(check string) string {
	i := strings.LastIndexByte(check, '/')
	if i < 0 {
		return ""
	}
	switch f := check[i+1:]; f {
	case "dt", "stride", "op", "size":
		return f
	default:
		return ""
	}
}
