package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/conform"
	"repro/internal/core"
)

// cmdCheck runs the whole pipeline — profile, synth, conform — over one
// trace and gates on the result: it exits non-zero when any invariant
// of the paper's conformance contract is violated or a statistical
// distance exceeds its threshold. It is the regression gate future
// refactors of the partitioner, the McC models, or the synthesis hot
// path run against.
func cmdCheck(args []string) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	in := fs.String("in", "", "input trace (gzip binary format)")
	interval := fs.Uint64("interval", 500000, "temporal partition length")
	mode := fs.String("temporal", "cycles", "temporal scheme: cycles or requests")
	spatial := fs.String("spatial", "dynamic", "spatial scheme: dynamic or a block size in bytes")
	name := fs.String("name", "workload", "workload name stored in the profile")
	seed := fs.Uint64("seed", 42, "synthesis seed")
	workers := fs.Int("j", 0, "leaf-fitting workers (0 = MOCKTAILS_PARALLELISM or GOMAXPROCS)")
	def := conform.DefaultThresholds()
	maxOp := fs.Float64("max-op", def.Op, "max L1 distance for the op distribution")
	maxSize := fs.Float64("max-size", def.Size, "max L1 distance for the size distribution")
	maxDt := fs.Float64("max-dt", def.DeltaTime, "max L1 distance for the merged delta-time distribution")
	maxStride := fs.Float64("max-stride", def.Stride, "max L1 distance for the merged stride distribution")
	fs.Parse(args)
	if *in == "" {
		fatal(fmt.Errorf("check: need -in"))
	}
	cfg, err := parseConfig(*mode, *interval, *spatial)
	if err != nil {
		fatal(err)
	}

	t := readTrace(*in)
	p, err := core.Build(*name, t, cfg, core.Workers(*workers))
	if err != nil {
		fatal(err)
	}
	syn := core.SynthesizeTrace(p, *seed)
	fmt.Printf("checking %s: %d requests, %d leaves, seed %d\n", *name, len(t), len(p.Leaves), *seed)

	th := conform.Thresholds{Op: *maxOp, Size: *maxSize, DeltaTime: *maxDt, Stride: *maxStride}
	r := conform.Check(t, p, syn, cfg, *seed, th)
	r.Fprint(os.Stdout)
	if !r.Ok() {
		os.Exit(1)
	}
}
