package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/dram"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/profile"
	"repro/internal/scenario"
	"repro/internal/trace"
)

// cmdCompose runs a scenario spec offline: the same declarative JSON
// `POST /v1/scenarios/synth` takes, resolved against a directory of
// profile files instead of a daemon's store. The composed stream is
// byte-identical to the daemon's for the same spec and profiles — the
// CI scenario-e2e job diffs the two.
func cmdCompose(args []string) {
	fs := flag.NewFlagSet("compose", flag.ExitOnError)
	specPath := fs.String("spec", "", "scenario spec JSON (- = stdin)")
	dir := fs.String("dir", ".", "directory holding the member profiles, named <id>.mfp (flat) or <id>.profile.gz")
	out := fs.String("out", "-", "output (- = stdout)")
	format := fs.String("format", "", "output: bin, csv or stats (default: the spec's output field, else bin)")
	workers := fs.Int("j", 1, "synthesis workers (0 = MOCKTAILS_PARALLELISM or GOMAXPROCS); any value gives identical output")
	of := obs.RegisterFlags(fs)
	fs.Parse(args)
	if *specPath == "" {
		fatal(fmt.Errorf("compose: need -spec"))
	}
	ctx, stop := of.Start("mocktails.compose")
	defer stop()

	sf, err := openInput(*specPath)
	if err != nil {
		fatal(err)
	}
	data, err := io.ReadAll(sf)
	sf.Close()
	if err != nil {
		fatal(fmt.Errorf("%s: %w", *specPath, err))
	}
	spec, err := scenario.Parse(data)
	if err != nil {
		fatal(err)
	}
	outFormat := *format
	if outFormat == "" {
		outFormat = spec.Output
	}
	switch outFormat {
	case "":
		outFormat = "bin"
	case "bin", "csv", "stats":
	default:
		fatal(fmt.Errorf("compose: unknown -format %q (want bin, csv or stats)", outFormat))
	}

	j := *workers
	if j <= 0 {
		j = par.Default()
	}
	st, err := scenario.Compose(spec, dirResolver(*dir),
		scenario.Workers(j), scenario.Context(ctx))
	if err != nil {
		fatal(err)
	}
	defer st.Close()

	o, err := openOutput(*out)
	if err != nil {
		fatal(err)
	}
	defer o.Close()
	summary := io.Writer(os.Stdout)
	if *out == "-" {
		summary = os.Stderr // keep the composed bytes clean on stdout
	}

	_, wsp := obs.Start(ctx, "compose.write")
	switch outFormat {
	case "bin":
		_, err = trace.WriteBinaryStream(ctx, o, st.Total(), st.Next)
	case "csv":
		_, err = trace.WriteCSVStream(ctx, o, st.Next)
	case "stats":
		rep := scenario.Replay(st, spec, dram.Default())
		enc := json.NewEncoder(o)
		enc.SetIndent("", "  ")
		err = enc.Encode(rep)
	}
	wsp.End()
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(summary, "composed %d devices, %d requests (%s)\n",
		len(spec.Devices), st.Total(), outFormat)
}

// dirResolver resolves content addresses against a directory of
// profile files. Like the daemon's disk tier it trusts the filename:
// the file <id>.mfp (or <id>.profile.gz) is taken to be the profile
// with that address without re-hashing — appropriate for a directory
// the user populated from trusted downloads. Flat files are
// memory-mapped and synthesized zero-copy.
func dirResolver(dir string) scenario.Resolver {
	return func(id string) (profile.View, func(), error) {
		flat := filepath.Join(dir, id+".mfp")
		if _, err := os.Stat(flat); err == nil {
			f, err := profile.OpenFlatFile(flat)
			if err != nil {
				return nil, nil, fmt.Errorf("%s: %w", flat, err)
			}
			return f, func() { f.Close() }, nil
		}
		gz := filepath.Join(dir, id+".profile.gz")
		fh, err := os.Open(gz)
		if err != nil {
			return nil, nil, fmt.Errorf("no %s.mfp or %s.profile.gz in %s", id, id, dir)
		}
		defer fh.Close()
		p, err := profile.ReadGzip(fh)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", gz, err)
		}
		return p, func() {}, nil
	}
}
