// Command mocktails is the end-to-end tool mirroring Fig. 1 of the
// paper: it builds statistical profiles from traces (the industry side)
// and synthesises traces from profiles (the academia side), and can
// simulate either against the repository's DRAM model.
//
// Usage:
//
//	mocktails profile -in workload.trace.gz -out workload.profile.gz [-format gz|flat] [-interval 500000] [-spatial dynamic|4096] [-j N]
//	mocktails synth   -in workload.profile.gz -out synthetic.trace.gz [-seed 42] [-n N] [-format gz|bin|csv] [-j N] [-batch N]
//	mocktails compose -spec scenario.json -dir profiles/ [-out -] [-format bin|csv|stats] [-j N]
//	mocktails convert -in workload.profile.gz -out workload.mfp [-to gz|flat]
//	mocktails serve   [-addr localhost:8677] [-store-budget 256MiB] [-peers http://h2:8677,...] ...
//	mocktails loadgen [-targets http://h1:8677,...] {-id ID | -upload workload.profile.gz} [-c 1,4,16] [-qps 50]
//	mocktails stats   -in workload.trace.gz
//	mocktails simulate -in workload.trace.gz
//	mocktails analyze -in workload.trace.gz [-top 8]
//	mocktails compare -ref original.trace.gz -in synthetic.trace.gz
//	mocktails check   -in workload.trace.gz [-seed 42] [-max-dt 1.9] [-max-stride 1.9]
//
// Trace inputs may be raw binary, CSV or gzip (sniffed by magic), and
// profile/synth accept "-" for -in/-out to read stdin and write stdout,
// so the subcommands compose into shell pipelines. `mocktails profile`
// streams: the trace is partitioned and fitted as records are decoded,
// in memory proportional to the fit frontier rather than the trace.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/profile"
	"repro/internal/serve"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "profile":
		cmdProfile(os.Args[2:])
	case "synth":
		cmdSynth(os.Args[2:])
	case "compose":
		cmdCompose(os.Args[2:])
	case "convert":
		cmdConvert(os.Args[2:])
	case "stats":
		cmdStats(os.Args[2:])
	case "simulate":
		cmdSimulate(os.Args[2:])
	case "analyze":
		cmdAnalyze(os.Args[2:])
	case "compare":
		cmdCompare(os.Args[2:])
	case "inspect":
		cmdInspect(os.Args[2:])
	case "check":
		cmdCheck(os.Args[2:])
	case "serve":
		serve.Main("mocktails serve", os.Args[2:])
	case "loadgen":
		loadgen.Main("mocktails loadgen", os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mocktails {profile|synth|compose|convert|stats|simulate|analyze|compare|inspect|check|serve|loadgen} [flags]")
	os.Exit(2)
}

func cmdInspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("in", "", "input profile")
	leaves := fs.Int("leaves", 10, "number of largest leaves to show")
	of := obs.RegisterFlags(fs)
	fs.Parse(args)
	_, stop := of.Start("mocktails.inspect")
	defer stop()
	if *in == "" {
		fatal(fmt.Errorf("inspect: need -in"))
	}
	profile.Dump(os.Stdout, readProfile(*in), *leaves)
}

// isFlatFile sniffs whether path holds a flat-encoded profile.
func isFlatFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var hdr [8]byte
	n, _ := io.ReadFull(f, hdr[:])
	return profile.SniffFlat(hdr[:n])
}

// readProfile loads a profile in either encoding — gzip canonical or
// flat — detecting the format from the file contents, and returns it
// as a heap profile.
func readProfile(path string) *profile.Profile {
	if isFlatFile(path) {
		f, err := profile.OpenFlatFile(path)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		defer f.Close()
		return f.Profile()
	}
	fh, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer fh.Close()
	p, err := profile.ReadGzip(fh)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return p
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mocktails:", err)
	os.Exit(1)
}

// readTraceCtx loads a trace under a "load" span nested below ctx.
func readTraceCtx(ctx context.Context, path string) trace.Trace {
	_, sp := obs.Start(ctx, "load")
	t := readTrace(path)
	sp.SetCount("requests", int64(len(t)))
	sp.End()
	return t
}

// parseConfig turns the shared -temporal/-interval/-spatial flag values
// into a partitioning configuration.
func parseConfig(mode string, interval uint64, spatial string) (partition.Config, error) {
	var layers []partition.Layer
	switch mode {
	case "cycles":
		layers = append(layers, partition.Layer{Kind: partition.TemporalCycleCount, Param: interval})
	case "requests":
		layers = append(layers, partition.Layer{Kind: partition.TemporalRequestCount, Param: interval})
	default:
		return partition.Config{}, fmt.Errorf("unknown temporal scheme %q", mode)
	}
	if spatial == "dynamic" {
		layers = append(layers, partition.Layer{Kind: partition.SpatialDynamic})
	} else {
		bs, err := strconv.ParseUint(spatial, 10, 64)
		if err != nil {
			return partition.Config{}, fmt.Errorf("bad -spatial %q: %w", spatial, err)
		}
		layers = append(layers, partition.Layer{Kind: partition.SpatialFixed, Param: bs})
	}
	return partition.Config{Layers: layers}, nil
}

// openInput opens path for reading; "-" selects stdin, so subcommands
// compose into shell pipelines without temp files.
func openInput(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

// openOutput creates path for writing; "-" selects stdout (which is
// left open on Close).
func openOutput(path string) (io.WriteCloser, error) {
	if path == "-" {
		return nopWriteCloser{os.Stdout}, nil
	}
	return os.Create(path)
}

type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

// readTrace materialises a whole trace from path ("-" = stdin). The
// encoding — raw binary, CSV, or gzip — is sniffed from the leading
// bytes by the incremental decoder.
func readTrace(path string) trace.Trace {
	f, err := openInput(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	d, err := trace.NewDecoder(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	t, err := d.ReadAll()
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return t
}

func cmdProfile(args []string) {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	in := fs.String("in", "", "input trace (bin, csv or gz, sniffed; - = stdin)")
	out := fs.String("out", "", "output profile (- = stdout)")
	interval := fs.Uint64("interval", 500000, "temporal partition length")
	mode := fs.String("temporal", "cycles", "temporal scheme: cycles or requests")
	spatial := fs.String("spatial", "dynamic", "spatial scheme: dynamic or a block size in bytes")
	name := fs.String("name", "workload", "workload name stored in the profile")
	format := fs.String("format", "gz", "output profile encoding: gz (portable canonical) or flat (zero-copy, mmap-able)")
	workers := fs.Int("j", 0, "leaf-fitting workers (0 = MOCKTAILS_PARALLELISM or GOMAXPROCS); any value gives identical output")
	of := obs.RegisterFlags(fs)
	fs.Parse(args)
	if *in == "" || *out == "" {
		fatal(fmt.Errorf("profile: need -in and -out"))
	}
	if *format != "gz" && *format != "flat" {
		fatal(fmt.Errorf("profile: unknown -format %q (want gz or flat)", *format))
	}

	cfg, err := parseConfig(*mode, *interval, *spatial)
	if err != nil {
		fatal(err)
	}

	ctx, stop := of.Start("mocktails.profile")
	defer stop()
	// The trace streams straight from the decoder into incremental
	// partitioning and fitting (core.BuildStream): decode, partition
	// and fit overlap, and peak memory is the fit frontier, not the
	// trace. The profile is byte-identical to a materialised build.
	rf, err := openInput(*in)
	if err != nil {
		fatal(err)
	}
	defer rf.Close()
	d, err := trace.NewDecoder(rf)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", *in, err))
	}
	pctx, psp := obs.Start(ctx, "profile")
	p, err := core.BuildStream(*name, d, cfg, core.Workers(*workers), core.BuildContext(pctx))
	if err != nil {
		fatal(err)
	}
	psp.SetCount("requests", int64(d.Records()))
	psp.SetCount("leaves", int64(len(p.Leaves)))
	psp.End()
	_, wsp := obs.Start(ctx, "write")
	f, err := openOutput(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if *format == "flat" {
		err = profile.WriteFlat(f, p)
	} else {
		err = profile.WriteGzip(f, p)
	}
	if err != nil {
		fatal(err)
	}
	wsp.End()
	summary := io.Writer(os.Stdout)
	if *out == "-" {
		summary = os.Stderr // keep the profile bytes clean on stdout
	}
	fmt.Fprintln(summary, p)
}

func cmdConvert(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "input profile (gz or flat, auto-detected)")
	out := fs.String("out", "", "output profile")
	to := fs.String("to", "", "output encoding: gz or flat (default: flat when -out ends in .mfp, else gz)")
	of := obs.RegisterFlags(fs)
	fs.Parse(args)
	if *in == "" || *out == "" {
		fatal(fmt.Errorf("convert: need -in and -out"))
	}
	target := *to
	if target == "" {
		if strings.HasSuffix(*out, ".mfp") {
			target = "flat"
		} else {
			target = "gz"
		}
	}
	if target != "gz" && target != "flat" {
		fatal(fmt.Errorf("convert: unknown -to %q (want gz or flat)", target))
	}
	_, stop := of.Start("mocktails.convert")
	defer stop()
	p := readProfile(*in)
	o, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer o.Close()
	if target == "flat" {
		err = profile.WriteFlat(o, p)
	} else {
		err = profile.WriteGzip(o, p)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("converted %s (%d leaves) to %s encoding: %s\n", *in, len(p.Leaves), target, *out)
}

func cmdSynth(args []string) {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	in := fs.String("in", "", "input profile (gz or flat, sniffed; - = stdin)")
	out := fs.String("out", "", "output trace (- = stdout)")
	seed := fs.Uint64("seed", 42, "synthesis seed")
	n := fs.Uint64("n", 0, "emit only the first n requests (0 = all)")
	format := fs.String("format", "gz", "output format: gz, bin or csv")
	workers := fs.Int("j", 1, "chunk-refill workers (0 = MOCKTAILS_PARALLELISM or GOMAXPROCS, 1 = serial); any value gives identical output")
	batch := fs.Int("batch", 0, "per-leaf pre-generation chunk size (0 = default); any value gives identical output")
	of := obs.RegisterFlags(fs)
	fs.Parse(args)
	if *in == "" || *out == "" {
		fatal(fmt.Errorf("synth: need -in and -out"))
	}
	if *format != "gz" && *format != "bin" && *format != "csv" {
		fatal(fmt.Errorf("synth: unknown -format %q", *format))
	}
	ctx, stop := of.Start("mocktails.synth")
	defer stop()
	// The input encoding is sniffed, not configured: a flat profile is
	// memory-mapped and synthesized directly from the mapping (open cost
	// is the header parse); a gz profile is decoded to the heap. Output
	// is byte-identical either way.
	_, lsp := obs.Start(ctx, "load")
	var v profile.View
	var name string
	if *in == "-" {
		// Stdin is not seekable or mappable, so buffer it and sniff the
		// encoding from the bytes — flat profiles open zero-copy over
		// the buffer, gz profiles decode to the heap.
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		if profile.SniffFlat(data) {
			fp, err := profile.OpenFlat(data)
			if err != nil {
				fatal(fmt.Errorf("stdin: %w", err))
			}
			v, name = fp, fp.Name()
		} else {
			p, err := profile.ReadGzip(bytes.NewReader(data))
			if err != nil {
				fatal(fmt.Errorf("stdin: %w", err))
			}
			v, name = p, p.Name
		}
	} else if isFlatFile(*in) {
		fp, err := profile.OpenFlatFile(*in)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *in, err))
		}
		defer fp.Close()
		v, name = fp, fp.Name()
	} else {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		p, err := profile.ReadGzip(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		v, name = p, p.Name
	}
	lsp.SetCount("leaves", int64(v.NumLeaves()))
	lsp.End()
	j := *workers
	if j <= 0 {
		j = par.Default()
	}
	sctx, ssp := obs.Start(ctx, "synth")
	src := core.SynthesizeFrom(v, *seed, core.SynthWorkers(j), core.SynthBatch(*batch), core.SynthContext(sctx))
	t := trace.Collect(src, int(*n))
	if c, ok := src.(interface{ Close() }); ok {
		c.Close() // release refill workers when -n truncated the stream
	}
	ssp.SetCount("requests", int64(len(t)))
	ssp.End()
	_, wsp := obs.Start(ctx, "write")
	o, err := openOutput(*out)
	if err != nil {
		fatal(err)
	}
	defer o.Close()
	switch *format {
	case "gz":
		err = trace.WriteGzip(o, t)
	case "bin":
		_, err = trace.WriteBinary(o, t)
	case "csv":
		_, err = trace.WriteCSV(o, t)
	}
	if err != nil {
		fatal(err)
	}
	wsp.End()
	summary := io.Writer(os.Stdout)
	if *out == "-" {
		summary = os.Stderr // keep the trace bytes clean on stdout
	}
	fmt.Fprintf(summary, "synthesised %d requests from %s\n", len(t), name)
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "", "input trace")
	of := obs.RegisterFlags(fs)
	fs.Parse(args)
	if *in == "" {
		fatal(fmt.Errorf("stats: need -in"))
	}
	ctx, stop := of.Start("mocktails.stats")
	defer stop()
	t := readTraceCtx(ctx, *in)
	reads, writes := t.Counts()
	lo, hi := t.AddrRange()
	fmt.Printf("requests:  %d (%d reads, %d writes)\n", len(t), reads, writes)
	fmt.Printf("duration:  %d cycles\n", t.Duration())
	fmt.Printf("bytes:     %d\n", t.Bytes())
	fmt.Printf("addresses: [0x%x, 0x%x)\n", lo, hi)
	fmt.Printf("footprint: %d x 4KB blocks, %d x 64B blocks\n",
		t.Footprint(4096), t.Footprint(64))
}

func cmdSimulate(args []string) {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	in := fs.String("in", "", "input trace")
	of := obs.RegisterFlags(fs)
	fs.Parse(args)
	if *in == "" {
		fatal(fmt.Errorf("simulate: need -in"))
	}
	ctx, stop := of.Start("mocktails.simulate")
	defer stop()
	t := readTraceCtx(ctx, *in)
	_, ssp := obs.Start(ctx, "simulate")
	res := dram.Run(trace.NewReplayer(t), dram.Default(), 20)
	ssp.SetCount("requests", int64(res.Requests))
	ssp.End()
	fmt.Printf("requests:        %d\n", res.Requests)
	fmt.Printf("read bursts:     %d (row hits %d)\n", res.ReadBursts(), res.ReadRowHits())
	fmt.Printf("write bursts:    %d (row hits %d)\n", res.WriteBursts(), res.WriteRowHits())
	fmt.Printf("avg read queue:  %.2f\n", res.AvgReadQueueLen())
	fmt.Printf("avg write queue: %.2f\n", res.AvgWriteQueueLen())
	fmt.Printf("avg latency:     %.1f cycles\n", res.AvgLatency)
}
