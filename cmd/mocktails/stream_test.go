package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

// runSelfPipe invokes the binary with stdin fed from the given bytes
// and returns stdout and stderr separately, so tests can assert "-"
// outputs keep the data stream clean.
func runSelfPipe(t *testing.T, stdin []byte, args ...string) (stdout, stderr []byte, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "MOCKTAILS_RUN_MAIN=1")
	cmd.Stdin = bytes.NewReader(stdin)
	var outBuf, errBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &outBuf, &errBuf
	err := cmd.Run()
	if err == nil {
		return outBuf.Bytes(), errBuf.Bytes(), 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return outBuf.Bytes(), errBuf.Bytes(), ee.ExitCode()
	}
	t.Fatalf("running %v: %v", args, err)
	return nil, nil, -1
}

// TestCLIProfileFromStdin: `mocktails profile -in - -out -` over a
// piped gz trace must emit exactly the profile a file-to-file run
// produces, with the summary on stderr.
func TestCLIProfileFromStdin(t *testing.T) {
	dir := t.TempDir()
	in := tinyTrace(t, dir)
	prof := filepath.Join(dir, "file.profile.gz")

	if out, code := runSelf(t, "profile", "-in", in, "-out", prof); code != 0 {
		t.Fatalf("file profile failed (%d): %s", code, out)
	}
	want, err := os.ReadFile(prof)
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(in)
	if err != nil {
		t.Fatal(err)
	}
	stdout, stderr, code := runSelfPipe(t, raw, "profile", "-in", "-", "-out", "-")
	if code != 0 {
		t.Fatalf("stdin profile failed (%d): %s", code, stderr)
	}
	if !bytes.Equal(stdout, want) {
		t.Fatalf("stdin/stdout profile differs from file build (%d vs %d bytes)", len(stdout), len(want))
	}
	if !bytes.Contains(stderr, []byte("Profile(")) {
		t.Fatalf("summary missing from stderr: %q", stderr)
	}
}

// TestCLIProfileSniffsFormats: the same trace delivered as raw binary
// and as CSV must profile identically to the gz original — the decoder
// sniffs all three.
func TestCLIProfileSniffsFormats(t *testing.T) {
	dir := t.TempDir()
	in := tinyTrace(t, dir)
	f, err := os.Open(in)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadGzip(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}

	binPath := filepath.Join(dir, "tiny.trace.bin")
	bf, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.WriteBinary(bf, tr); err != nil {
		t.Fatal(err)
	}
	bf.Close()
	csvPath := filepath.Join(dir, "tiny.trace.csv")
	cf, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.WriteCSV(cf, tr); err != nil {
		t.Fatal(err)
	}
	cf.Close()

	profiles := make([][]byte, 0, 3)
	for _, input := range []string{in, binPath, csvPath} {
		out := input + ".profile"
		if msg, code := runSelf(t, "profile", "-in", input, "-out", out); code != 0 {
			t.Fatalf("profiling %s failed (%d): %s", input, code, msg)
		}
		b, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, b)
	}
	if !bytes.Equal(profiles[0], profiles[1]) || !bytes.Equal(profiles[0], profiles[2]) {
		t.Fatal("gz, bin and csv inputs produced different profiles")
	}
}

// TestCLISynthStdio: a full shell-style pipeline — profile to stdout,
// synth from stdin to stdout — matches the file-based path byte for
// byte.
func TestCLISynthStdio(t *testing.T) {
	dir := t.TempDir()
	in := tinyTrace(t, dir)
	prof := filepath.Join(dir, "p.profile.gz")
	synFile := filepath.Join(dir, "s.bin")

	if out, code := runSelf(t, "profile", "-in", in, "-out", prof); code != 0 {
		t.Fatalf("profile failed (%d): %s", code, out)
	}
	if out, code := runSelf(t, "synth", "-in", prof, "-seed", "7", "-format", "bin", "-out", synFile); code != 0 {
		t.Fatalf("synth failed (%d): %s", code, out)
	}
	want, err := os.ReadFile(synFile)
	if err != nil {
		t.Fatal(err)
	}

	profBytes, err := os.ReadFile(prof)
	if err != nil {
		t.Fatal(err)
	}
	stdout, stderr, code := runSelfPipe(t, profBytes, "synth", "-in", "-", "-seed", "7", "-format", "bin", "-out", "-")
	if code != 0 {
		t.Fatalf("stdio synth failed (%d): %s", code, stderr)
	}
	if !bytes.Equal(stdout, want) {
		t.Fatalf("stdio synth differs from file synth (%d vs %d bytes)", len(stdout), len(want))
	}
	if !bytes.Contains(stderr, []byte("synthesised")) {
		t.Fatalf("summary missing from stderr: %q", stderr)
	}
}

// TestCLISynthFlatFromStdin: a flat profile piped through stdin is
// sniffed and synthesised identically to the gz path.
func TestCLISynthFlatFromStdin(t *testing.T) {
	dir := t.TempDir()
	in := tinyTrace(t, dir)
	prof := filepath.Join(dir, "p.profile.gz")
	flat := filepath.Join(dir, "p.mfp")

	if out, code := runSelf(t, "profile", "-in", in, "-out", prof); code != 0 {
		t.Fatalf("profile failed (%d): %s", code, out)
	}
	if out, code := runSelf(t, "convert", "-in", prof, "-out", flat, "-to", "flat"); code != 0 {
		t.Fatalf("convert failed (%d): %s", code, out)
	}
	flatBytes, err := os.ReadFile(flat)
	if err != nil {
		t.Fatal(err)
	}
	fromFlat, stderr, code := runSelfPipe(t, flatBytes, "synth", "-in", "-", "-seed", "9", "-format", "bin", "-out", "-")
	if code != 0 {
		t.Fatalf("flat stdin synth failed (%d): %s", code, stderr)
	}
	profBytes, err := os.ReadFile(prof)
	if err != nil {
		t.Fatal(err)
	}
	fromGz, _, code := runSelfPipe(t, profBytes, "synth", "-in", "-", "-seed", "9", "-format", "bin", "-out", "-")
	if code != 0 {
		t.Fatal("gz stdin synth failed")
	}
	if !bytes.Equal(fromFlat, fromGz) {
		t.Fatal("flat and gz stdin profiles synthesise different traces")
	}
}
