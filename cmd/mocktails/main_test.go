package main

import (
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/trace"
)

// The smoke tests re-execute the test binary with MOCKTAILS_RUN_MAIN
// set, which makes TestMain dispatch straight into main() — each
// subcommand runs as a real process with real flag parsing and real
// exit codes, on a tiny trace written to a temp dir.

func TestMain(m *testing.M) {
	if os.Getenv("MOCKTAILS_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runSelf invokes the binary with the given arguments and returns its
// combined output and exit code.
func runSelf(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "MOCKTAILS_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return string(out), ee.ExitCode()
	}
	t.Fatalf("running %v: %v", args, err)
	return "", -1
}

// tinyTrace writes a small deterministic trace and returns its path.
func tinyTrace(t *testing.T, dir string) string {
	t.Helper()
	rng := stats.NewRNG(5)
	tr := make(trace.Trace, 0, 400)
	now, addr := uint64(100), uint64(1<<20)
	for i := 0; i < 400; i++ {
		now += uint64(rng.Range(1, 120))
		addr += uint64(rng.Range(-2, 6) * 64)
		op := trace.Read
		if rng.Bool(0.25) {
			op = trace.Write
		}
		tr = append(tr, trace.Request{Time: now, Addr: addr, Size: 64, Op: op})
	}
	path := filepath.Join(dir, "tiny.trace.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteGzip(f, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCLIPipeline(t *testing.T) {
	dir := t.TempDir()
	in := tinyTrace(t, dir)
	prof := filepath.Join(dir, "tiny.profile.gz")
	syn := filepath.Join(dir, "tiny.synth.trace.gz")

	out, code := runSelf(t, "stats", "-in", in)
	if code != 0 || !strings.Contains(out, "requests:  400") {
		t.Fatalf("stats: exit %d, output:\n%s", code, out)
	}

	out, code = runSelf(t, "profile", "-in", in, "-out", prof, "-interval", "5000", "-name", "tiny")
	if code != 0 || !strings.Contains(out, "Profile(tiny:") {
		t.Fatalf("profile: exit %d, output:\n%s", code, out)
	}
	if _, err := os.Stat(prof); err != nil {
		t.Fatalf("profile output missing: %v", err)
	}

	out, code = runSelf(t, "inspect", "-in", prof)
	if code != 0 || !strings.Contains(out, "tiny") {
		t.Fatalf("inspect: exit %d, output:\n%s", code, out)
	}

	out, code = runSelf(t, "synth", "-in", prof, "-out", syn, "-seed", "7")
	if code != 0 || !strings.Contains(out, "synthesised 400 requests") {
		t.Fatalf("synth: exit %d, output:\n%s", code, out)
	}

	out, code = runSelf(t, "simulate", "-in", syn)
	if code != 0 || !strings.Contains(out, "requests:") {
		t.Fatalf("simulate: exit %d, output:\n%s", code, out)
	}

	out, code = runSelf(t, "compare", "-ref", in, "-in", syn)
	if code != 0 || !strings.Contains(out, "mean error") {
		t.Fatalf("compare: exit %d, output:\n%s", code, out)
	}

	out, code = runSelf(t, "check", "-in", in, "-interval", "5000", "-name", "tiny", "-seed", "7")
	if code != 0 || !strings.Contains(out, "conformance: PASS") {
		t.Fatalf("check: exit %d, output:\n%s", code, out)
	}
}

func TestCLIAnalyze(t *testing.T) {
	dir := t.TempDir()
	in := tinyTrace(t, dir)
	out, code := runSelf(t, "analyze", "-in", in)
	if code != 0 {
		t.Fatalf("analyze: exit %d, output:\n%s", code, out)
	}
}

func TestCLIErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"no subcommand", nil, 2},
		{"unknown subcommand", []string{"bogus"}, 2},
		{"stats without -in", []string{"stats"}, 1},
		{"profile without -out", []string{"profile", "-in", "x.trace.gz"}, 1},
		{"check without -in", []string{"check"}, 1},
		{"check bad spatial", []string{"check", "-in", "x", "-spatial", "zz"}, 1},
		{"missing input file", []string{"stats", "-in", "/nonexistent.trace.gz"}, 1},
		{"synth bad format", []string{"synth", "-in", "x.profile.gz", "-out", "y", "-format", "xml"}, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out, code := runSelf(t, c.args...)
			if code != c.code {
				t.Errorf("exit %d, want %d; output:\n%s", code, c.code, out)
			}
		})
	}
}

// synth -format bin/csv and -n: the uncompressed formats decode to the
// same requests as the default gzip output, and -n truncates.
func TestCLISynthFormats(t *testing.T) {
	dir := t.TempDir()
	in := tinyTrace(t, dir)
	prof := filepath.Join(dir, "tiny.profile.gz")
	if out, code := runSelf(t, "profile", "-in", in, "-out", prof, "-interval", "5000", "-name", "tiny"); code != 0 {
		t.Fatalf("profile: exit %d, output:\n%s", code, out)
	}

	gz := filepath.Join(dir, "s.trace.gz")
	bin := filepath.Join(dir, "s.trace.bin")
	csv := filepath.Join(dir, "s.trace.csv")
	for _, c := range [][]string{
		{"synth", "-in", prof, "-seed", "7", "-out", gz},
		{"synth", "-in", prof, "-seed", "7", "-format", "bin", "-out", bin},
		{"synth", "-in", prof, "-seed", "7", "-format", "csv", "-out", csv},
	} {
		if out, code := runSelf(t, c...); code != 0 {
			t.Fatalf("%v: exit %d, output:\n%s", c, code, out)
		}
	}
	want := readAs(t, gz, trace.ReadGzip)
	if got := readAs(t, bin, trace.ReadBinary); !slices.Equal(got, want) {
		t.Fatal("-format bin decodes to different requests than gzip output")
	}
	if got := readAs(t, csv, trace.ReadCSV); !slices.Equal(got, want) {
		t.Fatal("-format csv decodes to different requests than gzip output")
	}

	if out, code := runSelf(t, "synth", "-in", prof, "-seed", "7", "-n", "100", "-format", "bin", "-out", bin); code != 0 || !strings.Contains(out, "synthesised 100 requests") {
		t.Fatalf("synth -n: exit %d, output:\n%s", code, out)
	}
	if got := readAs(t, bin, trace.ReadBinary); !slices.Equal(got, want[:100]) {
		t.Fatal("-n 100 is not the prefix of the full stream")
	}
}

func readAs(t *testing.T, path string, read func(r io.Reader) (trace.Trace, error)) trace.Trace {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := read(f)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return tr
}

func TestCLICheckFailsOnBadTrace(t *testing.T) {
	// A trace file with corrupt contents must fail cleanly, not panic.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.trace.gz")
	if err := os.WriteFile(bad, []byte("not a gzip stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := runSelf(t, "check", "-in", bad)
	if code != 1 {
		t.Errorf("corrupt input: exit %d, want 1; output:\n%s", code, out)
	}
}

// TestCLIFlatFormat drives the flat encoding through every CLI path:
// profile -format flat produces an openable flat file, convert moves
// between encodings (with -to inferred from the .mfp extension),
// inspect auto-detects, and synth from the flat profile emits exactly
// the bytes the gz profile does.
func TestCLIFlatFormat(t *testing.T) {
	dir := t.TempDir()
	in := tinyTrace(t, dir)
	gzProf := filepath.Join(dir, "tiny.profile.gz")
	flatProf := filepath.Join(dir, "tiny.mfp")

	if out, code := runSelf(t, "profile", "-in", in, "-out", gzProf, "-interval", "5000", "-name", "tiny"); code != 0 {
		t.Fatalf("profile gz: exit %d, output:\n%s", code, out)
	}
	if out, code := runSelf(t, "profile", "-in", in, "-out", flatProf, "-format", "flat", "-interval", "5000", "-name", "tiny"); code != 0 {
		t.Fatalf("profile flat: exit %d, output:\n%s", code, out)
	}
	f, err := profile.OpenFlatFile(flatProf)
	if err != nil {
		t.Fatalf("profile -format flat output does not open: %v", err)
	}
	if f.Name() != "tiny" || f.Requests() != 400 {
		t.Fatalf("flat profile header: name %q, %d requests", f.Name(), f.Requests())
	}
	f.Close()

	// convert gz -> flat (target inferred from .mfp) must byte-match the
	// directly-written flat file; flat -> gz must byte-match the gz one.
	convFlat := filepath.Join(dir, "conv.mfp")
	convGz := filepath.Join(dir, "conv.profile.gz")
	if out, code := runSelf(t, "convert", "-in", gzProf, "-out", convFlat); code != 0 {
		t.Fatalf("convert to flat: exit %d, output:\n%s", code, out)
	}
	if !fileEqual(t, convFlat, flatProf) {
		t.Fatal("converted flat file differs from directly-written one")
	}
	if out, code := runSelf(t, "convert", "-in", convFlat, "-out", convGz, "-to", "gz"); code != 0 {
		t.Fatalf("convert to gz: exit %d, output:\n%s", code, out)
	}
	pf, err := os.Open(convGz)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := profile.ReadGzip(pf)
	pf.Close()
	if err != nil || p2.Name != "tiny" {
		t.Fatalf("round-tripped gz profile: %v (name %q)", err, p2.Name)
	}

	if out, code := runSelf(t, "inspect", "-in", flatProf); code != 0 || !strings.Contains(out, "tiny") {
		t.Fatalf("inspect flat: exit %d, output:\n%s", code, out)
	}

	// synth must not care which encoding it reads.
	synGz := filepath.Join(dir, "from-gz.trace.gz")
	synFlat := filepath.Join(dir, "from-flat.trace.gz")
	if out, code := runSelf(t, "synth", "-in", gzProf, "-seed", "7", "-out", synGz); code != 0 {
		t.Fatalf("synth gz: exit %d, output:\n%s", code, out)
	}
	if out, code := runSelf(t, "synth", "-in", flatProf, "-seed", "7", "-out", synFlat); code != 0 {
		t.Fatalf("synth flat: exit %d, output:\n%s", code, out)
	}
	if !slices.Equal(readAs(t, synGz, trace.ReadGzip), readAs(t, synFlat, trace.ReadGzip)) {
		t.Fatal("synth from flat differs from synth from gz")
	}

	// A corrupt flat profile errors cleanly, never panics.
	bad := filepath.Join(dir, "bad.mfp")
	buf, err := os.ReadFile(flatProf)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x20
	if err := os.WriteFile(bad, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if out, code := runSelf(t, "synth", "-in", bad, "-out", filepath.Join(dir, "x.gz")); code != 1 || strings.Contains(out, "panic") {
		t.Fatalf("corrupt flat: exit %d, output:\n%s", code, out)
	}
}

func fileEqual(t *testing.T, a, b string) bool {
	t.Helper()
	ab, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(ab) == string(bb)
}
