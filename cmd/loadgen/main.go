// Command loadgen drives a mocktailsd node or cluster with synthesis
// requests and reports achieved QPS and P50/P95/P99 latency. It is the
// same entry point as `mocktails loadgen`.
//
// Closed-loop capacity ramp against a local daemon:
//
//	loadgen -targets http://localhost:8677 -upload w.profile.gz -c 1,4,16 -requests 500
//
// Open-loop at a fixed arrival rate against a 3-node cluster:
//
//	loadgen -targets http://h1:8677,http://h2:8677,http://h3:8677 -id $ID -qps 50 -duration 30s
package main

import (
	"os"

	"repro/internal/loadgen"
)

func main() {
	loadgen.Main("loadgen", os.Args[1:])
}
