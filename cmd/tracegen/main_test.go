package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestMain(m *testing.M) {
	if os.Getenv("TRACEGEN_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runSelf(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "TRACEGEN_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return string(out), ee.ExitCode()
	}
	t.Fatalf("running %v: %v", args, err)
	return "", -1
}

func TestList(t *testing.T) {
	out, code := runSelf(t, "-list")
	if code != 0 {
		t.Fatalf("-list: exit %d, output:\n%s", code, out)
	}
	for _, want := range []string{"device proxies (Table II):", "HEVC1", "SPEC CPU2006 proxies"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q:\n%s", want, out)
		}
	}
}

func TestGenerateSpecFile(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "tiny.json")
	const tinySpec = `{
		"name": "tiny",
		"seed": 7,
		"phases": [
			{"streams": [{"base": 65536, "stride": 64, "count": 100, "gap": 10}]}
		]
	}`
	if err := os.WriteFile(spec, []byte(tinySpec), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "tiny.trace.gz")
	out, code := runSelf(t, "-spec-file", spec, "-o", outPath)
	if code != 0 || !strings.Contains(out, "wrote "+outPath+": 100 requests") {
		t.Fatalf("-spec-file: exit %d, output:\n%s", code, out)
	}

	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadGzip(f)
	if err != nil {
		t.Fatalf("reading generated trace: %v", err)
	}
	if len(tr) != 100 || !tr.Sorted() {
		t.Fatalf("generated trace: %d requests, sorted=%v", len(tr), tr.Sorted())
	}
}

func TestGenerateCSV(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "s.json")
	if err := os.WriteFile(spec, []byte(`{"name":"s","phases":[{"streams":[{"base":4096,"stride":64,"count":10,"gap":5}]}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "s.csv")
	out, code := runSelf(t, "-spec-file", spec, "-o", outPath, "-format", "csv")
	if code != 0 {
		t.Fatalf("-format csv: exit %d, output:\n%s", code, out)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines < 10 {
		t.Errorf("csv output has %d lines, want >= 10", lines)
	}
}

func TestErrors(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "s.json")
	if err := os.WriteFile(spec, []byte(`{"name":"s","phases":[{"streams":[{"base":4096,"stride":64,"count":10,"gap":5}]}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"no mode", nil, 2},
		{"bad flag", []string{"-definitely-not-a-flag"}, 2},
		{"unknown proxy", []string{"-name", "NoSuchWorkload"}, 1},
		{"unknown spec", []string{"-spec", "nosuchbench"}, 1},
		{"missing spec file", []string{"-spec-file", "/nonexistent.json"}, 1},
		{"bad format", []string{"-spec-file", spec, "-o", filepath.Join(dir, "x"), "-format", "tsv"}, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out, code := runSelf(t, c.args...)
			if code != c.code {
				t.Errorf("exit %d, want %d; output:\n%s", code, c.code, out)
			}
		})
	}
}
