// Command tracegen generates the repository's synthetic workload traces
// (the Table II device proxies and the §V SPEC CPU2006 proxies) and
// writes them to disk.
//
// Usage:
//
//	tracegen -list
//	tracegen -name HEVC1 -o hevc1.trace.gz [-format gz|bin|csv]
//	tracegen -spec gobmk -o gobmk.trace.gz
//	tracegen -spec-file myworkload.json -o myworkload.trace.gz
//	tracegen -name HEVC1 -format bin -o - | mocktails profile -in -
//
// `-o -` streams the trace to stdout (summary on stderr), so tracegen
// can head a shell pipeline into `mocktails profile` or a chunked
// `curl` upload to mocktailsd.
//
// A spec file is a JSON workload description (package synthgen): phases
// of concurrent streams with strides, random regions, bursts and idle
// gaps. See examples/workload_dsl/video_pipeline.json.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
	"repro/internal/synthgen"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	list := flag.Bool("list", false, "list available traces and exit")
	name := flag.String("name", "", "Table II proxy trace to generate")
	spec := flag.String("spec", "", "SPEC CPU2006 proxy trace to generate")
	specFile := flag.String("spec-file", "", "JSON workload description to generate")
	out := flag.String("o", "", "output file (default NAME.trace.<ext>)")
	format := flag.String("format", "gz", "output format: gz, bin or csv")
	of := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		fmt.Println("device proxies (Table II):")
		for _, s := range workloads.Catalog() {
			fmt.Printf("  %-12s %-4s %s\n", s.Name, s.Device, s.Desc)
		}
		fmt.Println("SPEC CPU2006 proxies (Section V):")
		for _, n := range workloads.SPECNames() {
			fmt.Printf("  %s\n", n)
		}
		return
	}

	ctx, stop := of.Start("tracegen")
	defer stop()
	_, gsp := obs.Start(ctx, "generate")
	var t trace.Trace
	var label string
	switch {
	case *name != "":
		s, err := workloads.Find(*name)
		if err != nil {
			fatal(err)
		}
		t, label = s.Gen(), s.Name
	case *spec != "":
		var err error
		t, err = workloads.SPECTrace(*spec)
		if err != nil {
			fatal(err)
		}
		label = *spec
	case *specFile != "":
		f, err := os.Open(*specFile)
		if err != nil {
			fatal(err)
		}
		s, err := synthgen.Parse(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		t, err = s.Generate()
		if err != nil {
			fatal(err)
		}
		label = s.Name
		if label == "" {
			label = "workload"
		}
	default:
		fmt.Fprintln(os.Stderr, "tracegen: need -name, -spec, -spec-file or -list")
		os.Exit(2)
	}
	gsp.SetCount("requests", int64(len(t)))
	gsp.End()

	path := *out
	if path == "" {
		ext := map[string]string{"gz": "trace.gz", "bin": "trace", "csv": "csv"}[*format]
		if ext == "" {
			fatal(fmt.Errorf("unknown format %q", *format))
		}
		path = label + "." + ext
	}
	// "-" streams the trace to stdout (with the summary on stderr), so
	// tracegen heads a shell pipeline into `mocktails profile -in -`.
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "gz":
		err = trace.WriteGzip(w, t)
	case "bin":
		_, err = trace.WriteBinary(w, t)
	case "csv":
		_, err = trace.WriteCSV(w, t)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	reads, writes := t.Counts()
	sum := os.Stdout
	if path == "-" {
		sum = os.Stderr
	}
	fmt.Fprintf(sum, "wrote %s: %d requests (%d reads, %d writes), %d cycles\n",
		path, len(t), reads, writes, t.Duration())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
