// Command mocktailsd is the synthesis-as-a-service daemon: it holds
// Mocktails statistical profiles resident in a sharded,
// content-addressed store and streams synthetic traces to HTTP clients,
// amortising one fit across arbitrarily many replays.
//
// Usage:
//
//	mocktailsd [-addr localhost:8677] [-store-budget 256MiB] [-shards 16]
//	           [-max-streams 128] [-max-fits 4] [-max-inflight 512]
//	           [-fit-timeout 2m] [-drain 15s] [-debug] [-j N] [-synth-j N]
//
// See docs/API.md for the HTTP API. `mocktails serve` is an alias.
package main

import (
	"os"

	"repro/internal/serve"
)

func main() {
	serve.Main("mocktailsd", os.Args[1:])
}
