package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestMain(m *testing.M) {
	if os.Getenv("EXPERIMENTS_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runSelf(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "EXPERIMENTS_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return string(out), ee.ExitCode()
	}
	t.Fatalf("running %v: %v", args, err)
	return "", -1
}

// TestList checks that -list prints every registered experiment id on
// one line, which is what the README and CI scripts consume.
func TestList(t *testing.T) {
	out, code := runSelf(t, "-list")
	if code != 0 {
		t.Fatalf("-list: exit %d, output:\n%s", code, out)
	}
	ids := strings.Fields(strings.TrimSpace(out))
	if len(ids) != len(experiments.IDs()) {
		t.Fatalf("-list printed %d ids, registry has %d:\n%s", len(ids), len(experiments.IDs()), out)
	}
	listed := map[string]bool{}
	for _, id := range ids {
		listed[id] = true
	}
	for _, id := range experiments.IDs() {
		if !listed[id] {
			t.Errorf("-list missing id %q", id)
		}
	}
}

// TestUnknownID asserts that a bogus experiment id fails fast with the
// documented exit status instead of silently running nothing. Running
// real experiments is too expensive for a smoke test, so the unknown id
// is the only id passed.
func TestUnknownID(t *testing.T) {
	out, code := runSelf(t, "no-such-experiment")
	if code != 2 {
		t.Fatalf("unknown id: exit %d, want 2; output:\n%s", code, out)
	}
	if !strings.Contains(out, "unknown id") {
		t.Errorf("missing diagnostic, output:\n%s", out)
	}
}

func TestUnknownIDSerial(t *testing.T) {
	out, code := runSelf(t, "-j", "1", "no-such-experiment")
	if code != 2 {
		t.Fatalf("unknown id (serial): exit %d, want 2; output:\n%s", code, out)
	}
}

func TestBadFlag(t *testing.T) {
	_, code := runSelf(t, "-definitely-not-a-flag")
	if code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}
