// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-out FILE] [id ...]
//
// With no ids, every experiment runs in paper order. Valid ids are
// fig2 fig3 table1 table2 table3 fig6 ... fig17 (see -list).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	out := flag.String("out", "", "also write results to this file")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), " "))
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	env := experiments.NewEnv()
	for _, id := range ids {
		start := time.Now()
		tab := env.Run(id)
		if tab == nil {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q (try -list)\n", id)
			os.Exit(2)
		}
		tab.Fprint(w)
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
}
