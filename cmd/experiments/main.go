// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-out FILE] [-j N] [-bench-json FILE] [id ...]
//
// With no ids, every experiment runs in paper order. Valid ids are
// fig2 fig3 table1 table2 table3 fig6 ... fig17 (see -list).
//
// -j runs experiments concurrently over a shared, concurrency-safe
// environment; output order and content are identical for every worker
// count. -bench-json measures each experiment in isolation (forcing a
// serial run so timings and allocation counts attribute cleanly) and
// writes {name, ns_per_op, allocs} rows for tracking performance across
// revisions.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/profile"
	"repro/internal/serve"
	"repro/internal/trace"
)

// benchRow is one -bench-json record, mirroring testing.B's key metrics.
// PeakBytes is only set by the ingestion rows, where the sampled heap
// high-water mark is the tracked quantity.
type benchRow struct {
	Name      string `json:"name"`
	NsPerOp   int64  `json:"ns_per_op"`
	Allocs    uint64 `json:"allocs"`
	PeakBytes uint64 `json:"peak_bytes,omitempty"`
}

func main() {
	out := flag.String("out", "", "also write results to this file")
	list := flag.Bool("list", false, "list experiment ids and exit")
	workers := flag.Int("j", 0, "concurrent experiments (0 = MOCKTAILS_PARALLELISM or GOMAXPROCS, 1 = serial)")
	synthWorkers := flag.Int("synth-j", 1, "chunk-refill workers per synthesis (0 = MOCKTAILS_PARALLELISM or GOMAXPROCS, 1 = serial); any value gives identical tables")
	benchJSON := flag.String("bench-json", "", "write per-experiment and synthesis {name, ns_per_op, allocs} rows to this file (forces serial runs)")
	of := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), " "))
		return
	}
	_, stop := of.Start("experiments")
	defer stop()

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	env := experiments.NewEnv()
	env.SynthWorkers = par.Workers(*synthWorkers)
	if *benchJSON != "" {
		runBench(env, ids, w, *benchJSON)
		return
	}

	j := par.Workers(*workers)
	if j == 1 {
		for _, id := range ids {
			start := time.Now()
			tab := env.Run(id)
			if tab == nil {
				unknown(id)
			}
			tab.Fprint(w)
			fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
		}
		return
	}

	// Concurrent run: experiments share env's singleflight caches; tables
	// are committed by index so output order matches the serial path.
	start := time.Now()
	tabs := par.Map(len(ids), j, func(i int) *experiments.Table {
		return env.Run(ids[i])
	})
	for i, tab := range tabs {
		if tab == nil {
			unknown(ids[i])
		}
		tab.Fprint(w)
	}
	fmt.Fprintf(os.Stderr, "[%d experiments done in %v with %d workers]\n",
		len(ids), time.Since(start).Round(time.Millisecond), j)
}

func unknown(id string) {
	fmt.Fprintf(os.Stderr, "experiments: unknown id %q (try -list)\n", id)
	os.Exit(2)
}

// synthBench measures synthesis throughput on the two tracked profiles
// (the same cases as BenchmarkSynthesize and BENCH_synth.json) and
// returns one row per case. The flat rows synthesize from the zero-copy
// flat encoding instead of the heap profile; the output is byte-identical,
// only setup cost and allocation behaviour differ.
func synthBench(env *experiments.Env) []benchRow {
	cases := []struct {
		name, workload string
		workers        int
		flat           bool
	}{
		{"synth/small/serial", "OpenCL1", 1, false},
		{"synth/small/flat", "OpenCL1", 1, true},
		{"synth/large/serial", "Manhattan", 1, false},
		{"synth/large/flat", "Manhattan", 1, true},
		{"synth/large/j", "Manhattan", par.Default(), false},
	}
	var rows []benchRow
	var before, after runtime.MemStats
	for _, c := range cases {
		p, err := core.Build(c.workload, env.Trace(c.workload), core.DefaultConfig())
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		var v profile.View = p
		if c.flat {
			buf, err := profile.MarshalFlat(p)
			if err == nil {
				var f *profile.Flat
				if f, err = profile.OpenFlat(buf); err == nil {
					v = f
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
		run := func(seed uint64) {
			src := core.SynthesizeFrom(v, seed, core.SynthWorkers(c.workers))
			trace.Collect(src, 0)
		}
		run(0) // warm up
		const iters = 10
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < iters; i++ {
			run(uint64(i))
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		rows = append(rows, benchRow{
			Name:    c.name,
			NsPerOp: elapsed.Nanoseconds() / iters,
			Allocs:  (after.Mallocs - before.Mallocs) / iters,
		})
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", c.name, (elapsed / iters).Round(time.Microsecond))
	}
	return rows
}

// profileBench measures the cost of bringing a stored profile to a
// servable state per encoding: a full gz decode versus a flat open
// (header validation plus section-table slicing, no per-leaf work).
// Rows are tracked in BENCH_profile.json.
func profileBench(env *experiments.Env) []benchRow {
	cases := []struct{ size, workload string }{
		{"small", "OpenCL1"},
		{"large", "Manhattan"},
	}
	var rows []benchRow
	var before, after runtime.MemStats
	for _, c := range cases {
		p, err := core.Build(c.workload, env.Trace(c.workload), core.DefaultConfig())
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		var gz bytes.Buffer
		if err := profile.WriteGzip(&gz, p); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		flatBuf, err := profile.MarshalFlat(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		variants := []struct {
			name string
			open func() error
		}{
			{"profile/" + c.size + "/decode-gz", func() error {
				_, err := profile.ReadGzip(bytes.NewReader(gz.Bytes()))
				return err
			}},
			{"profile/" + c.size + "/open-flat", func() error {
				_, err := profile.OpenFlat(flatBuf)
				return err
			}},
		}
		for _, v := range variants {
			if err := v.open(); err != nil { // warm up
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			const iters = 50
			runtime.ReadMemStats(&before)
			start := time.Now()
			for i := 0; i < iters; i++ {
				v.open()
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)
			rows = append(rows, benchRow{
				Name:    v.name,
				NsPerOp: elapsed.Nanoseconds() / iters,
				Allocs:  (after.Mallocs - before.Mallocs) / iters,
			})
			fmt.Fprintf(os.Stderr, "[%s done in %v]\n", v.name, (elapsed / iters).Round(time.Microsecond))
		}
	}
	return rows
}

// samplePeakHeap runs fn while polling runtime.ReadMemStats every
// millisecond and returns the peak HeapAlloc over the pre-fn baseline
// (a GC settles the heap before the baseline is taken).
func samplePeakHeap(fn func()) uint64 {
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	var peak atomic.Uint64
	peak.Store(base.HeapAlloc)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			default:
			}
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak.Load() {
				peak.Store(ms.HeapAlloc)
			}
			time.Sleep(time.Millisecond)
		}
	}()
	fn()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > peak.Load() {
		peak.Store(ms.HeapAlloc)
	}
	close(stop)
	<-done
	return peak.Load() - base.HeapAlloc
}

// ingestBench contrasts the materialized and streaming ingestion paths
// on a long gz trace file (the HEVC1 proxy tiled 8x), reporting the
// sampled peak heap next to the usual timing columns. Both paths must
// content-address to the same profile. Rows are tracked in
// BENCH_ingest.json (where the 32x BenchmarkIngest numbers also live).
func ingestBench(env *experiments.Env) []benchRow {
	base := env.Trace("HEVC1")
	const tiles = 8
	span := base[len(base)-1].Time + 1
	big := make(trace.Trace, 0, len(base)*tiles)
	for t := 0; t < tiles; t++ {
		off := span * uint64(t)
		for _, r := range base {
			r.Time += off
			big = append(big, r)
		}
	}
	dir, err := os.MkdirTemp("", "mocktails-ingest-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "ingest.trace.gz")
	f, err := os.Create(path)
	if err == nil {
		err = trace.WriteGzip(f, big)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	big = nil

	cfg := core.CPUPortConfig()
	runs := []struct {
		name string
		fn   func() (*profile.Profile, error)
	}{
		{"ingest/materialized", func() (*profile.Profile, error) {
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			tr, err := trace.ReadGzip(f)
			if err != nil {
				return nil, err
			}
			return core.Build("ingest", tr, cfg)
		}},
		{"ingest/stream", func() (*profile.Profile, error) {
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			d, err := trace.NewDecoder(f)
			if err != nil {
				return nil, err
			}
			return core.BuildStream("ingest", d, cfg)
		}},
	}

	var rows []benchRow
	var ids []string
	var before, after runtime.MemStats
	for _, r := range runs {
		var p *profile.Profile
		var ferr error
		runtime.ReadMemStats(&before)
		start := time.Now()
		peak := samplePeakHeap(func() { p, ferr = r.fn() })
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "experiments:", ferr)
			os.Exit(1)
		}
		id, _, err := serve.ProfileID(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		ids = append(ids, id)
		rows = append(rows, benchRow{
			Name:      r.name,
			NsPerOp:   elapsed.Nanoseconds(),
			Allocs:    after.Mallocs - before.Mallocs,
			PeakBytes: peak,
		})
		fmt.Fprintf(os.Stderr, "[%s done in %v, peak %d B]\n", r.name, elapsed.Round(time.Millisecond), peak)
	}
	if ids[0] != ids[1] {
		fmt.Fprintf(os.Stderr, "experiments: ingest paths diverged: %s vs %s\n", ids[0], ids[1])
		os.Exit(1)
	}
	return rows
}

// runBench times each experiment serially on the shared environment and
// writes one JSON row per experiment, followed by the synthesis rows
// tracked in BENCH_synth.json (small = OpenCL1, merge-light; large =
// Manhattan, merge-heavy; serial and parallel). Serial execution keeps
// ns_per_op and the alloc delta attributable to a single exhibit; note
// that shared cache effects still make earlier exhibits pay for later
// ones, exactly as in the paper-order suite.
func runBench(env *experiments.Env, ids []string, w io.Writer, path string) {
	rows := make([]benchRow, 0, len(ids))
	var before, after runtime.MemStats
	for _, id := range ids {
		runtime.ReadMemStats(&before)
		start := time.Now()
		tab := env.Run(id)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if tab == nil {
			unknown(id)
		}
		tab.Fprint(w)
		rows = append(rows, benchRow{
			Name:    id,
			NsPerOp: elapsed.Nanoseconds(),
			Allocs:  after.Mallocs - before.Mallocs,
		})
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, elapsed.Round(time.Millisecond))
	}
	rows = append(rows, synthBench(env)...)
	rows = append(rows, profileBench(env)...)
	rows = append(rows, ingestBench(env)...)
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rows); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
