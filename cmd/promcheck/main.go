// Command promcheck validates a Prometheus text-exposition document
// (format 0.0.4) as produced by a mocktailsd /metrics endpoint: names,
// label escaping, TYPE placement, and histogram structure (cumulative
// ascending buckets, +Inf last, _count == the +Inf bucket). It exists
// so CI can assert a live scrape parses without a Prometheus binary.
//
// Usage:
//
//	promcheck [-require name1,name2,...] [file]
//
// With no file argument (or with "-"), stdin is read. -require lists metric names
// (already in Prometheus form, e.g. serve_synth_requests) that must
// appear in the document. Exit status is non-zero on any failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/obs"
)

func main() {
	require := flag.String("require", "", "comma-separated metric names that must appear")
	flag.Parse()

	var data []byte
	var err error
	src := "stdin"
	if flag.NArg() > 0 && flag.Arg(0) != "-" {
		src = flag.Arg(0)
		data, err = os.ReadFile(src)
	} else {
		data, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: %v\n", err)
		os.Exit(1)
	}

	samples, err := obs.ValidateExposition(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: %s: %v\n", src, err)
		os.Exit(1)
	}

	missing := 0
	for _, name := range strings.Split(*require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !hasMetric(data, name) {
			fmt.Fprintf(os.Stderr, "promcheck: %s: required metric %q not found\n", src, name)
			missing++
		}
	}
	if missing > 0 {
		os.Exit(1)
	}
	fmt.Printf("promcheck: %s: ok (%d samples)\n", src, samples)
}

// hasMetric reports whether any sample line in data belongs to the
// metric family name (exact, _bucket/_sum/_count suffixed, or labeled).
func hasMetric(data []byte, name string) bool {
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sample := line
		if i := strings.IndexAny(sample, "{ "); i >= 0 {
			sample = sample[:i]
		}
		if sample == name || sample == name+"_bucket" || sample == name+"_sum" || sample == name+"_count" {
			return true
		}
	}
	return false
}
