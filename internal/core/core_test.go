package core

import (
	"testing"

	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/trace"
)

func workload(seed uint64, n int) trace.Trace {
	rng := stats.NewRNG(seed)
	var tr trace.Trace
	tm := uint64(0)
	for i := 0; i < n; i++ {
		tm += rng.Uint64n(50)
		op := trace.Read
		if rng.Bool(0.5) {
			op = trace.Write
		}
		tr = append(tr, trace.Request{Time: tm, Addr: uint64((i % 3) * 65536), Size: 64, Op: op})
	}
	return tr
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if len(cfg.Layers) != 2 {
		t.Fatalf("DefaultConfig layers = %d", len(cfg.Layers))
	}
	if cfg.Layers[0].Kind != partition.TemporalCycleCount || cfg.Layers[0].Param != 500000 {
		t.Errorf("layer 0 = %+v, want 500k-cycle temporal", cfg.Layers[0])
	}
	if cfg.Layers[1].Kind != partition.SpatialDynamic {
		t.Errorf("layer 1 = %+v, want dynamic spatial", cfg.Layers[1])
	}
}

func TestCPUPortConfig(t *testing.T) {
	cfg := CPUPortConfig()
	if cfg.Layers[0].Kind != partition.TemporalRequestCount || cfg.Layers[0].Param != 100000 {
		t.Errorf("layer 0 = %+v, want 100k-request temporal", cfg.Layers[0])
	}
}

func TestBuildRejectsUnsorted(t *testing.T) {
	tr := trace.Trace{
		{Time: 10, Addr: 0, Size: 4, Op: trace.Read},
		{Time: 5, Addr: 0, Size: 4, Op: trace.Read},
	}
	if _, err := Build("bad", tr, DefaultConfig()); err == nil {
		t.Error("unsorted trace accepted")
	}
}

func TestBuildAndSynthesize(t *testing.T) {
	tr := workload(1, 1000)
	p, err := Build("w", tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Requests() != len(tr) {
		t.Errorf("profile holds %d requests, want %d", p.Requests(), len(tr))
	}
	got := trace.Collect(Synthesize(p, 5), 0)
	if len(got) != len(tr) {
		t.Errorf("synthesised %d requests, want %d", len(got), len(tr))
	}
}

func TestSynthesizeTraceSorted(t *testing.T) {
	tr := workload(2, 1000)
	p, err := Build("w", tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := SynthesizeTrace(p, 5)
	if !got.Sorted() {
		t.Error("SynthesizeTrace output unsorted")
	}
}

func TestClone(t *testing.T) {
	tr := workload(3, 800)
	syn, p, err := Clone("w", tr, DefaultConfig(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || len(syn) != len(tr) {
		t.Fatalf("Clone: %d requests, profile %v", len(syn), p)
	}
	wr, ww := tr.Counts()
	gr, gw := syn.Counts()
	if wr != gr || ww != gw {
		t.Errorf("Clone op counts %d/%d, want %d/%d", gr, gw, wr, ww)
	}
}

func TestCloneErrorPropagates(t *testing.T) {
	tr := trace.Trace{
		{Time: 10, Addr: 0, Size: 4, Op: trace.Read},
		{Time: 5, Addr: 0, Size: 4, Op: trace.Read},
	}
	if _, _, err := Clone("bad", tr, DefaultConfig(), 1); err == nil {
		t.Error("Clone accepted unsorted trace")
	}
}
