package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
)

// Example demonstrates the round trip at the heart of Mocktails: a trace
// becomes a profile, the profile regenerates a behaviourally equivalent
// stream.
func Example() {
	// A toy workload: a linear read stream.
	var tr trace.Trace
	for i := 0; i < 100; i++ {
		tr = append(tr, trace.Request{
			Time: uint64(i * 10),
			Addr: 0x1000 + uint64(i*64),
			Size: 64,
			Op:   trace.Read,
		})
	}

	p, err := core.Build("toy", tr, core.DefaultConfig())
	if err != nil {
		panic(err)
	}
	syn := core.SynthesizeTrace(p, 42)

	reads, writes := syn.Counts()
	fmt.Printf("requests=%d reads=%d writes=%d\n", len(syn), reads, writes)
	fmt.Printf("first=%v\n", syn[0])
	// A fully regular stream is recreated exactly.
	exact := true
	for i := range tr {
		if syn[i] != tr[i] {
			exact = false
		}
	}
	fmt.Printf("exact=%v\n", exact)
	// Output:
	// requests=100 reads=100 writes=0
	// first={t=0 R 0x1000 +64}
	// exact=true
}
