package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/profile"
	"repro/internal/trace"
)

// streamWorkload builds a small sorted trace.
func streamWorkload(n int) trace.Trace {
	var tr trace.Trace
	tm := uint64(0)
	for i := 0; i < n; i++ {
		tm += uint64(13 + i%37)
		op := trace.Read
		if i%3 == 0 {
			op = trace.Write
		}
		tr = append(tr, trace.Request{
			Time: tm,
			Addr: uint64((i%5)*8192) + uint64(i%11)*64,
			Size: 64,
			Op:   op,
		})
	}
	return tr
}

// TestBuildStreamMatchesBuild: the public streaming entry point encodes
// identically to Build.
func TestBuildStreamMatchesBuild(t *testing.T) {
	tr := streamWorkload(4000)
	cfg := DefaultConfig()
	cfg.Layers[0].Param = 500 // shrink intervals so the trace spans many windows

	built, err := Build("w", tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := BuildStream("w", trace.NewSliceReader(tr), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := profile.Write(&a, built); err != nil {
		t.Fatal(err)
	}
	if err := profile.Write(&b, streamed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("BuildStream encodes differently from Build")
	}
}

// TestBuildStreamUnsorted: the streaming path reports the same
// not-sorted diagnostic Build does.
func TestBuildStreamUnsorted(t *testing.T) {
	tr := trace.Trace{
		{Time: 10, Addr: 0x1000, Size: 64, Op: trace.Read},
		{Time: 5, Addr: 0x1040, Size: 64, Op: trace.Read},
	}
	_, err := BuildStream("bad", trace.NewSliceReader(tr), DefaultConfig())
	if err == nil || !strings.Contains(err.Error(), `trace "bad" is not sorted by time`) {
		t.Fatalf("err = %v, want not-sorted diagnostic", err)
	}
}
