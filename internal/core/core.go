// Package core is the public face of the Mocktails reproduction: it ties
// hierarchical partitioning, McC leaf modelling, profile serialisation and
// priority-queue synthesis together behind a small API.
//
// The two entry points mirror Fig. 1 of the paper:
//
//   - Build: industry side — turn a (proprietary) trace into a statistical
//     profile that can be distributed freely.
//   - Synthesize / SynthesizeTrace: academia side — recreate a request
//     stream from a profile and plug it into a simulator of choice, either
//     as a trace (Option A) or as a live trace.Source with backpressure
//     feedback (Option B).
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/partition"
	"repro/internal/profile"
	"repro/internal/synth"
	"repro/internal/trace"
)

// Config selects the partitioning hierarchy used when building a profile.
// The zero value is not valid; use one of the constructors or fill Layers
// explicitly.
type Config = partition.Config

// DefaultConfig returns the paper's 2L-TS configuration used throughout
// §IV: temporal 500,000-cycle intervals (from SynFull) followed by dynamic
// spatial partitioning.
func DefaultConfig() Config { return partition.TwoLevelTS(500000) }

// CPUPortConfig returns the §V configuration for CPU-to-L1 traces:
// temporal 100,000-request intervals (from STM) followed by dynamic
// spatial partitioning.
func CPUPortConfig() Config { return partition.TwoLevelRequestCount(100000, 0) }

// BuildOption configures Build; see profile.Workers.
type BuildOption = profile.Option

// Workers bounds the goroutines used to fit partition leaves; <= 0
// selects the MOCKTAILS_PARALLELISM / GOMAXPROCS default. Any worker
// count produces a byte-identical profile.
func Workers(n int) BuildOption { return profile.Workers(n) }

// BuildContext attaches a context to Build for observability: the
// partition and fit spans nest below the span carried by ctx (see
// internal/obs). The profile is identical with or without it.
func BuildContext(ctx context.Context) BuildOption { return profile.Context(ctx) }

// Build creates a Mocktails statistical profile from a trace. The trace
// must be sorted by time; name labels the workload in the profile.
func Build(name string, t trace.Trace, cfg Config, opts ...BuildOption) (*profile.Profile, error) {
	if !t.Sorted() {
		return nil, fmt.Errorf("core: trace %q is not sorted by time", name)
	}
	return profile.Build(name, t, cfg, opts...)
}

// BuildStream is Build over an incremental trace reader (see
// trace.Decoder): the trace is partitioned and fitted single-pass as
// records arrive, in O(open window + queued leaves + fitted models)
// peak memory, and the profile is byte-identical to Build's for the
// same records. Sortedness is enforced as the stream flows — a
// timestamp regression aborts the build with the same not-sorted error
// Build reports.
func BuildStream(name string, rd trace.Reader, cfg Config, opts ...BuildOption) (*profile.Profile, error) {
	p, err := profile.BuildStream(name, rd, cfg, opts...)
	if err != nil {
		if errors.Is(err, partition.ErrOutOfOrder) {
			return nil, fmt.Errorf("core: trace %q is not sorted by time: %w", name, err)
		}
		return nil, err
	}
	return p, nil
}

// SynthOption configures synthesis; see SynthWorkers and SynthBatch.
type SynthOption = synth.Option

// SynthWorkers sets the number of background chunk-refill workers used
// during synthesis; <= 1 generates on the consuming goroutine. Any
// worker count produces a bit-identical stream.
func SynthWorkers(n int) SynthOption { return synth.Workers(n) }

// SynthBatch sets the per-leaf pre-generation chunk size (<= 0 selects
// synth.DefaultBatch). Any batch size produces a bit-identical stream.
func SynthBatch(n int) SynthOption { return synth.Batch(n) }

// SynthContext attaches a context to synthesis for observability: the
// setup span nests below the span carried by ctx (see internal/obs).
// The stream is identical with or without it.
func SynthContext(ctx context.Context) SynthOption { return synth.Context(ctx) }

// Synthesize returns a live request source that regenerates the
// workload's behaviour from the profile. The source implements
// trace.Source, including backpressure feedback via Delay, so it can be
// coupled tightly to a simulator (Option B in Fig. 1).
func Synthesize(p *profile.Profile, seed uint64, opts ...SynthOption) trace.Source {
	return synth.New(p, seed, opts...)
}

// SynthesizeFrom is Synthesize for any profile representation — a
// decoded heap profile or a zero-copy flat view over a mapped buffer
// (profile.OpenFlat / profile.OpenFlatFile). The stream depends only
// on the profile contents and the seed, never on the representation.
func SynthesizeFrom(v profile.View, seed uint64, opts ...SynthOption) trace.Source {
	return synth.NewFrom(v, seed, opts...)
}

// SynthesizeTrace drains a full synthetic trace from the profile
// (Option A in Fig. 1: generate a synthetic trace file up front). The
// result is sorted by time. The output length is known up front — every
// leaf emits exactly its Count requests — so the trace is allocated
// once instead of grown.
func SynthesizeTrace(p *profile.Profile, seed uint64, opts ...SynthOption) trace.Trace {
	src := synth.New(p, seed, opts...)
	t := make(trace.Trace, 0, p.Requests())
	for {
		req, ok := src.Next()
		if !ok {
			return t
		}
		t = append(t, req)
	}
}

// Clone rebuilds a trace end-to-end: Build followed by SynthesizeTrace.
// It is a convenience for evaluations that compare an original workload
// with its Mocktails recreation.
func Clone(name string, t trace.Trace, cfg Config, seed uint64) (trace.Trace, *profile.Profile, error) {
	p, err := Build(name, t, cfg)
	if err != nil {
		return nil, nil, err
	}
	return SynthesizeTrace(p, seed), p, nil
}
