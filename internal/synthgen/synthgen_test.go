package synthgen

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/trace"
)

func linearSpec() *Spec {
	return &Spec{
		Name: "linear",
		Seed: 1,
		Phases: []Phase{{
			Streams: []Stream{{Base: 0x1000, Stride: 64, Count: 100, Gap: 10}},
		}},
	}
}

func TestValidate(t *testing.T) {
	if err := (&Spec{}).Validate(); err == nil {
		t.Error("empty spec validated")
	}
	if err := (&Spec{Phases: []Phase{{}}}).Validate(); err == nil {
		t.Error("streamless phase validated")
	}
	bad := &Spec{Phases: []Phase{{Streams: []Stream{{Count: 0}}}}}
	if err := bad.Validate(); err == nil {
		t.Error("zero count validated")
	}
	badFrac := &Spec{Phases: []Phase{{Streams: []Stream{{Count: 1, WriteFrac: 1.5}}}}}
	if err := badFrac.Validate(); err == nil {
		t.Error("write_frac 1.5 validated")
	}
	if err := linearSpec().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestGenerateLinear(t *testing.T) {
	tr, err := linearSpec().Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 100 {
		t.Fatalf("got %d requests", len(tr))
	}
	if !tr.Sorted() {
		t.Error("unsorted")
	}
	for i, r := range tr {
		if r.Addr != 0x1000+uint64(i*64) {
			t.Fatalf("request %d addr 0x%x", i, r.Addr)
		}
		if r.Size != 64 || r.Op != trace.Read {
			t.Fatalf("request %d = %v", i, r)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := &Spec{
		Seed: 9,
		Phases: []Phase{{
			Streams: []Stream{{Base: 0, RandomIn: 1 << 16, Count: 500, WriteFrac: 0.4, GapJitter: 5, Gap: 12}},
		}},
	}
	a, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.Generate()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same spec+seed diverged")
		}
	}
}

func TestRandomInBounds(t *testing.T) {
	s := &Spec{
		Seed: 2,
		Phases: []Phase{{
			Streams: []Stream{{Base: 0x8000, RandomIn: 4096, Count: 1000, Size: 32}},
		}},
	}
	tr, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr {
		if r.Addr < 0x8000 || r.Addr >= 0x8000+4096 {
			t.Fatalf("address 0x%x outside random region", r.Addr)
		}
		if r.Addr%32 != 0 {
			t.Fatalf("address 0x%x not size-aligned", r.Addr)
		}
	}
}

func TestConcurrentStreamsInterleave(t *testing.T) {
	s := &Spec{
		Seed: 3,
		Phases: []Phase{{
			Streams: []Stream{
				{Base: 0x1000, Stride: 64, Count: 50, Gap: 10},
				{Base: 0x900000, Stride: 64, Count: 50, Gap: 10},
			},
		}},
	}
	tr, _ := s.Generate()
	// Both regions appear in the first quarter of the trace.
	seenA, seenB := false, false
	for _, r := range tr[:25] {
		if r.Addr < 0x10000 {
			seenA = true
		} else {
			seenB = true
		}
	}
	if !seenA || !seenB {
		t.Error("streams did not interleave in time")
	}
}

func TestPhasesSequential(t *testing.T) {
	s := &Spec{
		Seed: 4,
		Phases: []Phase{
			{Streams: []Stream{{Base: 0, Stride: 64, Count: 10, Gap: 5}}},
			{Streams: []Stream{{Base: 0x10000, Stride: 64, Count: 10, Gap: 5}}},
		},
	}
	tr, _ := s.Generate()
	// Phase 2's first request comes after phase 1's last.
	var lastP1, firstP2 uint64
	for _, r := range tr {
		if r.Addr < 0x10000 {
			lastP1 = r.Time
		} else if firstP2 == 0 {
			firstP2 = r.Time
		}
	}
	if firstP2 < lastP1 {
		t.Errorf("phase 2 started at %d before phase 1 ended at %d", firstP2, lastP1)
	}
}

func TestRepeatWithIdleAndAdvance(t *testing.T) {
	s := &Spec{
		Seed: 5,
		Phases: []Phase{{
			Repeat:    3,
			IdleAfter: 1_000_000,
			Streams:   []Stream{{Base: 0x1000, Stride: 64, Count: 10, Gap: 5, AdvancePerRepeat: 0x10000}},
		}},
	}
	tr, _ := s.Generate()
	if len(tr) != 30 {
		t.Fatalf("got %d requests", len(tr))
	}
	// Repeats are separated by the idle gap.
	var maxGap uint64
	for i := 1; i < len(tr); i++ {
		if g := tr[i].Time - tr[i-1].Time; g > maxGap {
			maxGap = g
		}
	}
	if maxGap < 1_000_000 {
		t.Errorf("max gap %d, want >= idle 1M", maxGap)
	}
	// Bases advanced per repeat.
	if tr[10].Addr != 0x11000 || tr[20].Addr != 0x21000 {
		t.Errorf("advance_per_repeat not applied: 0x%x 0x%x", tr[10].Addr, tr[20].Addr)
	}
}

func TestBurstGrouping(t *testing.T) {
	s := &Spec{
		Seed: 6,
		Phases: []Phase{{
			Streams: []Stream{{Base: 0, Stride: 64, Count: 40, Gap: 1000, Burst: 8}},
		}},
	}
	tr, _ := s.Generate()
	bigGaps := 0
	for i := 1; i < len(tr); i++ {
		if tr[i].Time-tr[i-1].Time >= 500 {
			bigGaps++
		}
	}
	if bigGaps != 4 { // 40 requests / 8 per burst -> 4 inter-burst gaps
		t.Errorf("big gaps = %d, want 4", bigGaps)
	}
}

func TestWriteFrac(t *testing.T) {
	s := &Spec{
		Seed: 7,
		Phases: []Phase{{
			Streams: []Stream{{Base: 0, Stride: 64, Count: 10000, WriteFrac: 0.3}},
		}},
	}
	tr, _ := s.Generate()
	_, w := tr.Counts()
	frac := float64(w) / float64(len(tr))
	if frac < 0.27 || frac > 0.33 {
		t.Errorf("write fraction %.3f, want ~0.3", frac)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := &Spec{
		Name: "roundtrip",
		Seed: 11,
		Phases: []Phase{{
			Repeat:    2,
			IdleAfter: 500,
			Streams: []Stream{
				{Base: 0x1000, Stride: 64, Count: 5, Size: 32, WriteFrac: 0.5, Gap: 7, GapJitter: 2, Burst: 2},
				{Base: 0x2000, RandomIn: 4096, Count: 3},
			},
		}},
	}
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.Generate()
	b, _ := got.Generate()
	if len(a) != len(b) {
		t.Fatalf("round-tripped spec generates %d vs %d requests", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("round-tripped spec generates a different trace")
		}
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse(strings.NewReader(`{"name":"x","phases":[{"streams":[{"count":1,"typo_field":3}]}]}`))
	if err == nil {
		t.Error("unknown field accepted")
	}
}

func TestParseRejectsInvalid(t *testing.T) {
	if _, err := Parse(strings.NewReader(`{"name":"x","phases":[]}`)); err == nil {
		t.Error("phaseless spec accepted")
	}
	if _, err := Parse(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}
