// Package synthgen is a small declarative workload description language:
// a Spec lists phases, each phase runs several concurrent streams
// (strided walks, random regions, or bursty mixes), and the generator
// turns the spec into a deterministic trace. It complements the
// hand-written device proxies in package workloads — users can describe
// their own IP's behaviour in JSON and feed it to tracegen without
// writing Go (the `tracegen -spec-file` flag).
package synthgen

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Spec is a complete workload description.
type Spec struct {
	// Name labels the workload.
	Name string `json:"name"`
	// Seed drives all randomness; the same spec+seed yields the same
	// trace.
	Seed uint64 `json:"seed"`
	// Phases run one after another.
	Phases []Phase `json:"phases"`
}

// Phase is a group of concurrent streams, optionally repeated with idle
// gaps between repeats.
type Phase struct {
	// Repeat is how many times the phase body runs (default 1).
	Repeat int `json:"repeat,omitempty"`
	// IdleAfter is the idle gap in cycles after each repeat.
	IdleAfter uint64 `json:"idle_after,omitempty"`
	// Streams run concurrently within the phase, interleaved by time.
	Streams []Stream `json:"streams"`
}

// Stream is one address stream.
type Stream struct {
	// Base is the starting byte address.
	Base uint64 `json:"base"`
	// Stride is the address step per request; ignored when RandomIn is
	// set.
	Stride int64 `json:"stride,omitempty"`
	// RandomIn, when non-zero, draws addresses uniformly from
	// [Base, Base+RandomIn) (aligned to Size) instead of striding.
	RandomIn uint64 `json:"random_in,omitempty"`
	// Count is the number of requests per phase repeat.
	Count int `json:"count"`
	// Size is the request size in bytes (default 64).
	Size uint32 `json:"size,omitempty"`
	// WriteFrac is the probability a request is a write (0 = all
	// reads, 1 = all writes).
	WriteFrac float64 `json:"write_frac,omitempty"`
	// Gap is the mean cycle gap between the stream's requests (default
	// 10); GapJitter its uniform half-width.
	Gap       uint64 `json:"gap,omitempty"`
	GapJitter uint64 `json:"gap_jitter,omitempty"`
	// Burst, when > 1, emits requests in back-to-back groups of this
	// many, with Gap applying between groups.
	Burst int `json:"burst,omitempty"`
	// AdvancePerRepeat shifts Base by this many bytes on each phase
	// repeat (e.g. per-frame buffer advance).
	AdvancePerRepeat uint64 `json:"advance_per_repeat,omitempty"`
}

// Validate checks the spec for structural problems.
func (s *Spec) Validate() error {
	if len(s.Phases) == 0 {
		return fmt.Errorf("synthgen: spec %q has no phases", s.Name)
	}
	for pi, p := range s.Phases {
		if len(p.Streams) == 0 {
			return fmt.Errorf("synthgen: phase %d has no streams", pi)
		}
		for si, st := range p.Streams {
			if st.Count <= 0 {
				return fmt.Errorf("synthgen: phase %d stream %d: count must be positive", pi, si)
			}
			if st.WriteFrac < 0 || st.WriteFrac > 1 {
				return fmt.Errorf("synthgen: phase %d stream %d: write_frac out of [0,1]", pi, si)
			}
		}
	}
	return nil
}

// Generate turns the spec into a time-sorted trace.
func (s *Spec) Generate() (trace.Trace, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(s.Seed)
	var out trace.Trace
	now := uint64(0)
	for _, p := range s.Phases {
		repeats := p.Repeat
		if repeats < 1 {
			repeats = 1
		}
		for rep := 0; rep < repeats; rep++ {
			end := now
			for _, st := range p.Streams {
				streamEnd := emitStream(&out, st, rep, now, rng.Fork())
				if streamEnd > end {
					end = streamEnd
				}
			}
			now = end + p.IdleAfter
		}
	}
	out.SortByTime()
	return out, nil
}

// emitStream appends one stream's requests starting at startTime and
// returns the time of its last request.
func emitStream(out *trace.Trace, st Stream, rep int, startTime uint64, rng *stats.RNG) uint64 {
	size := st.Size
	if size == 0 {
		size = 64
	}
	gap := st.Gap
	if gap == 0 {
		gap = 10
	}
	burst := st.Burst
	if burst < 1 {
		burst = 1
	}
	base := st.Base + uint64(rep)*st.AdvancePerRepeat
	addr := base
	t := startTime
	for i := 0; i < st.Count; i++ {
		if i > 0 {
			if i%burst == 0 {
				t += jitter(rng, gap, st.GapJitter)
			} else {
				t += 1 + rng.Uint64n(2)
			}
		}
		if st.RandomIn > 0 {
			slots := st.RandomIn / uint64(size)
			if slots == 0 {
				slots = 1
			}
			addr = base + rng.Uint64n(slots)*uint64(size)
		} else if i > 0 {
			addr = uint64(int64(addr) + st.Stride)
		}
		op := trace.Read
		if st.WriteFrac > 0 && rng.Bool(st.WriteFrac) {
			op = trace.Write
		}
		*out = append(*out, trace.Request{Time: t, Addr: addr, Size: size, Op: op})
	}
	return t
}

func jitter(rng *stats.RNG, base, spread uint64) uint64 {
	if spread == 0 {
		return base
	}
	v := int64(base) + int64(rng.Uint64n(2*spread+1)) - int64(spread)
	if v < 1 {
		v = 1
	}
	return uint64(v)
}

// Parse reads a JSON spec.
func Parse(r io.Reader) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("synthgen: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Write serialises the spec as indented JSON.
func (s *Spec) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
