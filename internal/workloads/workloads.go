// Package workloads generates the synthetic device traces that stand in
// for the paper's proprietary RTL-emulation traces (Table II) and for its
// SPEC CPU2006 Pin traces (§V). Each generator is deterministic in its
// seed and is engineered to exhibit the memory behaviours the paper
// attributes to its device class: sparse bursty 4-KB-region accesses with
// long idle gaps for the VPU (Figs. 2 and 3), linear versus tiled frame
// scans for the DPU, large interleaved bursty streams for the GPU, and
// phase-varying cache-filtered misses for the CPU.
package workloads

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Spec describes one synthetic trace in the catalogue.
type Spec struct {
	// Name matches the paper's trace naming (e.g. "HEVC1", "FBC-Linear2").
	Name string
	// Device is one of "CPU", "DPU", "GPU", "VPU".
	Device string
	// Desc is the Table II description.
	Desc string
	// Gen builds the trace.
	Gen func() trace.Trace
}

// Catalog returns the full Table II proxy catalogue: 18 traces across the
// four device classes (Crypto x2, CPU-D, CPU-G, CPU-V; FBC-Linear x2,
// FBC-Tiled x2, Multi-layer; T-Rex x2, Manhattan, OpenCL x2; HEVC x3).
func Catalog() []Spec {
	return []Spec{
		{"Crypto1", "CPU", "A cryptography workload (trace 1 of 2)", func() trace.Trace { return Crypto(1) }},
		{"Crypto2", "CPU", "A cryptography workload (trace 2 of 2)", func() trace.Trace { return Crypto(2) }},
		{"CPU-D", "CPU", "A workload that interacts with a DPU", func() trace.Trace { return CPUInteract(3, 'D') }},
		{"CPU-G", "CPU", "A workload that interacts with a GPU", func() trace.Trace { return CPUInteract(4, 'G') }},
		{"CPU-V", "CPU", "A workload that interacts with a VPU", func() trace.Trace { return CPUInteract(5, 'V') }},
		{"FBC-Linear1", "DPU", "Display compressed frames, linear mode (1 of 2)", func() trace.Trace { return FBC(6, false) }},
		{"FBC-Linear2", "DPU", "Display compressed frames, linear mode (2 of 2)", func() trace.Trace { return FBC(7, false) }},
		{"FBC-Tiled1", "DPU", "Display compressed frames, tiled mode (1 of 2)", func() trace.Trace { return FBC(8, true) }},
		{"FBC-Tiled2", "DPU", "Display compressed frames, tiled mode (2 of 2)", func() trace.Trace { return FBC(9, true) }},
		{"Multi-layer", "DPU", "Display multiple VGA layers", func() trace.Trace { return MultiLayer(10) }},
		{"T-Rex1", "GPU", "T-Rex from GFXBench (1 of 2)", func() trace.Trace { return GPUGraphics(11, 0.55) }},
		{"T-Rex2", "GPU", "T-Rex from GFXBench (2 of 2)", func() trace.Trace { return GPUGraphics(12, 0.55) }},
		{"Manhattan", "GPU", "Manhattan from GFXBench", func() trace.Trace { return GPUGraphics(13, 0.70) }},
		{"OpenCL1", "GPU", "An OpenCL stress test (1 of 2)", func() trace.Trace { return OpenCL(14) }},
		{"OpenCL2", "GPU", "An OpenCL stress test (2 of 2)", func() trace.Trace { return OpenCL(15) }},
		{"HEVC1", "VPU", "Decoding compressed video (1 of 3)", func() trace.Trace { return HEVC(16, 10) }},
		{"HEVC2", "VPU", "Decoding compressed video (2 of 3)", func() trace.Trace { return HEVC(17, 8) }},
		{"HEVC3", "VPU", "Decoding compressed video (3 of 3)", func() trace.Trace { return HEVC(18, 12) }},
	}
}

// Devices lists the device classes in reporting order.
func Devices() []string { return []string{"CPU", "DPU", "GPU", "VPU"} }

// ByDevice groups the catalogue's specs by device class.
func ByDevice() map[string][]Spec {
	m := make(map[string][]Spec)
	for _, s := range Catalog() {
		m[s.Device] = append(m[s.Device], s)
	}
	return m
}

// Find returns the spec with the given name.
func Find(name string) (Spec, error) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workloads: unknown trace %q", name)
}

// emitter accumulates requests with a running clock.
type emitter struct {
	t   trace.Trace
	now uint64
	rng *stats.RNG
}

func newEmitter(seed uint64) *emitter {
	return &emitter{rng: stats.NewRNG(seed)}
}

// emit appends a request dt cycles after the previous one.
func (e *emitter) emit(dt uint64, addr uint64, size uint32, op trace.Op) {
	e.now += dt
	e.t = append(e.t, trace.Request{Time: e.now, Addr: addr, Size: size, Op: op})
}

// idle advances the clock without emitting.
func (e *emitter) idle(cycles uint64) { e.now += cycles }

// jitter returns a uniform value in [base-spread, base+spread], floored
// at 1.
func (e *emitter) jitter(base, spread uint64) uint64 {
	if spread == 0 {
		return base
	}
	v := int64(base) + int64(e.rng.Uint64n(2*spread+1)) - int64(spread)
	if v < 1 {
		v = 1
	}
	return uint64(v)
}

// done finalises and returns the trace in time order.
func (e *emitter) done() trace.Trace {
	e.t.SortByTime()
	return e.t
}
