package workloads

import "repro/internal/trace"

// Crypto generates the CPU cryptography proxy. The trace models the
// post-cache (L2 miss) stream of a block cipher pass: long read-modify-
// write sweeps over an input and output buffer (unit 64-B strides, reads
// leading writes), interleaved with irregular 64-B reads into a small
// key/table region, in phases whose region usage shifts over time — the
// CPU behaviour that makes larger temporal partitions lose accuracy in
// Fig. 13.
func Crypto(seed uint64) trace.Trace {
	e := newEmitter(seed)
	const (
		inBase   = 0x1000_0000
		outBase  = 0x1200_0000
		tabBase  = 0x1400_0000
		phases   = 10
		phaseLen = 2048 // 64-B blocks processed per phase
	)
	for p := 0; p < phases; p++ {
		in := uint64(inBase) + uint64(p)*phaseLen*64
		out := uint64(outBase) + uint64(p)*phaseLen*64
		tab := uint64(tabBase) + uint64(p%3)*0x2000
		for b := 0; b < phaseLen; b++ {
			e.emit(e.jitter(60, 15), in+uint64(b)*64, 64, trace.Read)
			// Table lookups miss occasionally (the table is mostly
			// cache-resident): sparse irregular reads.
			if e.rng.Bool(0.25) {
				e.emit(e.jitter(20, 8), tab+uint64(e.rng.Intn(128))*64, 64, trace.Read)
			}
			e.emit(e.jitter(40, 10), out+uint64(b)*64, 64, trace.Write)
		}
		// Between phases the core computes from cache: a long quiet gap.
		e.idle(e.jitter(3_000_000, 500_000))
	}
	return e.done()
}

// CPUInteract generates the CPU-D / CPU-G / CPU-V proxies: a CPU
// workload preparing and consuming buffers for another device. The trace
// alternates producer phases (streaming writes into a shared buffer),
// control phases (sparse irregular accesses to descriptors), and consumer
// phases (streaming reads of results), with device-dependent balance:
// the DPU partner is write-heavy, the GPU partner is bursty and
// symmetric, and the VPU partner is read-heavy with sparser control
// traffic.
func CPUInteract(seed uint64, partner byte) trace.Trace {
	e := newEmitter(seed)
	const (
		shareBase = 0xA000_0000
		descBase  = 0xA800_0000
		resBase   = 0xB000_0000
	)
	var produce, consume int
	var ctrlProb float64
	switch partner {
	case 'D':
		produce, consume, ctrlProb = 3072, 1024, 0.10
	case 'G':
		produce, consume, ctrlProb = 2048, 2048, 0.20
	default: // 'V'
		produce, consume, ctrlProb = 1024, 3072, 0.05
	}
	const phases = 8
	for p := 0; p < phases; p++ {
		share := uint64(shareBase) + uint64(p%4)*0x80000
		res := uint64(resBase) + uint64(p%4)*0x80000
		// Producer: read source, write shared buffer (memcpy-like).
		for b := 0; b < produce; b++ {
			e.emit(e.jitter(50, 12), share+0x40000+uint64(b)*64, 64, trace.Read)
			e.emit(e.jitter(30, 8), share+uint64(b)*64, 64, trace.Write)
			if e.rng.Bool(ctrlProb) {
				e.emit(e.jitter(15, 5), descBase+uint64(e.rng.Intn(512))*64, 64, trace.Read)
			}
		}
		// Kick the device, then wait: a long idle gap.
		e.emit(100, descBase+uint64(p)*64, 64, trace.Write)
		e.idle(e.jitter(4_000_000, 1_000_000))
		// Consumer: stream the results back.
		for b := 0; b < consume; b++ {
			e.emit(e.jitter(45, 10), res+uint64(b)*64, 64, trace.Read)
		}
		e.idle(e.jitter(1_500_000, 400_000))
	}
	return e.done()
}
