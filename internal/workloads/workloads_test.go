package workloads

import (
	"reflect"
	"testing"

	"repro/internal/trace"
)

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 18 {
		t.Fatalf("catalogue has %d traces, want 18 (Table II)", len(cat))
	}
	perDev := map[string]int{}
	for _, s := range cat {
		perDev[s.Device]++
		if s.Name == "" || s.Desc == "" || s.Gen == nil {
			t.Errorf("incomplete spec %+v", s)
		}
	}
	want := map[string]int{"CPU": 5, "DPU": 5, "GPU": 5, "VPU": 3}
	if !reflect.DeepEqual(perDev, want) {
		t.Errorf("per-device counts = %v, want %v", perDev, want)
	}
}

func TestCatalogNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Catalog() {
		if seen[s.Name] {
			t.Errorf("duplicate trace name %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestFind(t *testing.T) {
	s, err := Find("HEVC1")
	if err != nil || s.Device != "VPU" {
		t.Errorf("Find(HEVC1) = %+v, %v", s, err)
	}
	if _, err := Find("nope"); err == nil {
		t.Error("Find(nope) succeeded")
	}
}

func TestByDeviceCoversAll(t *testing.T) {
	total := 0
	for _, specs := range ByDevice() {
		total += len(specs)
	}
	if total != len(Catalog()) {
		t.Errorf("ByDevice holds %d specs", total)
	}
	if len(Devices()) != 4 {
		t.Errorf("Devices = %v", Devices())
	}
}

func TestAllTracesSortedAndDeterministic(t *testing.T) {
	for _, s := range Catalog() {
		a := s.Gen()
		if len(a) == 0 {
			t.Errorf("%s: empty trace", s.Name)
			continue
		}
		if !a.Sorted() {
			t.Errorf("%s: trace not time-sorted", s.Name)
		}
		b := s.Gen()
		if len(a) != len(b) {
			t.Errorf("%s: non-deterministic length", s.Name)
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: non-deterministic at request %d", s.Name, i)
				break
			}
		}
	}
}

func TestHEVCHasIdleGaps(t *testing.T) {
	// Fig. 3's defining property: clusters of requests separated by
	// tens of millions of cycles.
	tr := HEVC(16, 10)
	var maxGap uint64
	for i := 1; i < len(tr); i++ {
		if g := tr[i].Time - tr[i-1].Time; g > maxGap {
			maxGap = g
		}
	}
	if maxGap < 10_000_000 {
		t.Errorf("largest HEVC gap = %d cycles, want >10M", maxGap)
	}
	if tr.Duration() < 400_000_000 {
		t.Errorf("HEVC duration = %d, want hundreds of millions of cycles", tr.Duration())
	}
}

func TestHEVCSparse4KRegions(t *testing.T) {
	// Fig. 2's defining property: reference reads touch 4KB regions
	// sparsely, with 64- and 128-byte requests.
	tr := HEVC(16, 10)
	sizes := map[uint32]bool{}
	for _, r := range tr {
		sizes[r.Size] = true
	}
	if !sizes[64] || !sizes[128] {
		t.Errorf("HEVC sizes = %v, want 64 and 128 present", sizes)
	}
}

func TestHEVCMixesReadsAndWrites(t *testing.T) {
	tr := HEVC(17, 8)
	r, w := tr.Counts()
	if r == 0 || w == 0 {
		t.Errorf("HEVC counts = %d/%d", r, w)
	}
}

func TestFBCLinearVsTiledDistinct(t *testing.T) {
	lin := FBC(6, false)
	til := FBC(6, true)
	if len(lin) != len(til) {
		// Same work per frame, just reordered.
		t.Logf("linear %d vs tiled %d requests", len(lin), len(til))
	}
	// The tiled scan must have far more distinct large strides.
	strides := func(tr trace.Trace) map[int64]bool {
		m := map[int64]bool{}
		for i := 1; i < len(tr); i++ {
			m[int64(tr[i].Addr)-int64(tr[i-1].Addr)] = true
		}
		return m
	}
	ls, ts := strides(lin), strides(til)
	if !ts[4096] {
		t.Error("tiled scan lacks pitch-sized strides")
	}
	_ = ls
}

func TestDPUWritesNarrowBand(t *testing.T) {
	// Fig. 12b's property: writes go to a narrow address band.
	tr := FBC(6, false)
	var lo, hi uint64 = ^uint64(0), 0
	for _, r := range tr {
		if r.Op != trace.Write {
			continue
		}
		if r.Addr < lo {
			lo = r.Addr
		}
		if r.End() > hi {
			hi = r.End()
		}
	}
	if span := hi - lo; span > 1<<20 {
		t.Errorf("write band spans %d bytes, want narrow", span)
	}
}

func TestGPUBursty(t *testing.T) {
	// GPU requests inside a burst are only a few cycles apart.
	tr := GPUGraphics(11, 0.55)
	close8 := 0
	for i := 1; i < len(tr); i++ {
		if tr[i].Time-tr[i-1].Time <= 8 {
			close8++
		}
	}
	if frac := float64(close8) / float64(len(tr)); frac < 0.5 {
		t.Errorf("only %.0f%% of GPU gaps <= 8 cycles", frac*100)
	}
}

func TestOpenCLStreaming(t *testing.T) {
	tr := OpenCL(14)
	r, w := tr.Counts()
	if r != 2*w {
		t.Errorf("OpenCL reads %d, writes %d; want 2:1", r, w)
	}
}

func TestCPUInteractVariants(t *testing.T) {
	d := CPUInteract(3, 'D')
	g := CPUInteract(3, 'G')
	v := CPUInteract(3, 'V')
	rd, wd := d.Counts()
	rv, wv := v.Counts()
	// DPU partner is write-heavier than the VPU partner.
	if float64(wd)/float64(rd+wd) <= float64(wv)/float64(rv+wv) {
		t.Error("CPU-D not write-heavier than CPU-V")
	}
	if len(g) == 0 {
		t.Error("CPU-G empty")
	}
}

func TestSPECNamesMatchFig17(t *testing.T) {
	names := SPECNames()
	if len(names) != 23 {
		t.Fatalf("got %d SPEC proxies, want 23", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, n := range Fig15Names() {
		if !seen[n] {
			t.Errorf("Fig. 15 benchmark %s missing from catalogue", n)
		}
	}
}

func TestSPECTraceErrorsOnUnknown(t *testing.T) {
	if _, err := SPECTrace("fortran77"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestSPECTraceBasics(t *testing.T) {
	tr, err := SPECTrace("gobmk")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 220000 {
		t.Errorf("gobmk length = %d", len(tr))
	}
	if !tr.Sorted() {
		t.Error("gobmk unsorted")
	}
	r, w := tr.Counts()
	if r == 0 || w == 0 {
		t.Error("gobmk lacks reads or writes")
	}
	for _, req := range tr[:100] {
		if req.Size != 4 && req.Size != 8 {
			t.Errorf("CPU-port request size %d, want 4 or 8", req.Size)
			break
		}
	}
}

func TestSPECDeterministic(t *testing.T) {
	a, _ := SPECTrace("milc")
	b, _ := SPECTrace("milc")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SPEC proxy non-deterministic")
		}
	}
}

func TestLibquantumPureStream(t *testing.T) {
	// libquantum must have no hot component: its non-stack accesses are
	// a pure stream, which is what makes its miss rate flat.
	tr, _ := SPECTrace("libquantum")
	if tr.Footprint(64) < 10000 {
		t.Errorf("libquantum footprint %d blocks, want large streaming footprint", tr.Footprint(64))
	}
}

func TestEmitterJitterBounds(t *testing.T) {
	e := newEmitter(1)
	for i := 0; i < 1000; i++ {
		v := e.jitter(10, 3)
		if v < 7 || v > 13 {
			t.Fatalf("jitter(10,3) = %d", v)
		}
	}
	if e.jitter(5, 0) != 5 {
		t.Error("jitter with zero spread altered base")
	}
	if v := e.jitter(1, 10); v < 1 {
		t.Errorf("jitter floored below 1: %d", v)
	}
}
