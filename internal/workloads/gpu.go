package workloads

import "repro/internal/trace"

// GPUGraphics generates a graphics GPU proxy (T-Rex / Manhattan style):
// per-frame rendering issues dense bursts in which several concurrent
// streams interleave — texture reads (128-B, semi-random within texture
// regions), vertex reads (64-B strided), and tile write-backs (64-B
// sequential runs). Requests inside a burst are only a few cycles apart,
// producing the long queue occupancies of Fig. 7/8. complexity in (0,1]
// scales the per-frame work (Manhattan is heavier than T-Rex).
func GPUGraphics(seed uint64, complexity float64) trace.Trace {
	e := newEmitter(seed)
	const (
		texBase  = 0x2000_0000
		vtxBase  = 0x2800_0000
		fbBase   = 0x3000_0000
		frameGap = 16_600_000
		frames   = 3
	)
	tiles := int(600 * complexity)
	for f := 0; f < frames; f++ {
		frameStart := uint64(f) * frameGap
		if frameStart > e.now {
			e.idle(frameStart - e.now)
		}
		for tile := 0; tile < tiles; tile++ {
			// Several shader cores fetch concurrently: interleave three
			// streams at a fine grain within the tile burst.
			// Region spacings are odd multiples of the row-buffer stripe
			// so concurrent tiles spread across memory channels.
			texRegion := texBase + uint64(e.rng.Intn(64))*0x8000
			vtx := vtxBase + uint64(tile)*0x840
			fb := fbBase + uint64(tile%512)*0x1440
			for i := 0; i < 12; i++ {
				// Texture: 128-B reads, random cache-line pairs within
				// the region (mip-map style locality).
				e.emit(e.jitter(3, 2), texRegion+uint64(e.rng.Intn(256))*128, 128, trace.Read)
				// Vertices: forward 64-B stride.
				e.emit(e.jitter(3, 2), vtx+uint64(i)*64, 64, trace.Read)
				if i%2 == 0 {
					// Tile buffer resolve: sequential 64-B writes.
					e.emit(e.jitter(3, 2), fb+uint64(i/2)*64, 64, trace.Write)
				}
			}
			// Final tile flush: a short dense write run.
			for i := 0; i < 8; i++ {
				e.emit(e.jitter(2, 1), fb+512+uint64(i)*64, 64, trace.Write)
			}
			if tile%8 == 7 {
				e.idle(e.jitter(6000, 1500))
			}
		}
	}
	return e.done()
}

// OpenCL generates a compute GPU proxy: a streaming kernel reads two
// large input buffers and writes one output buffer with unit-stride
// 128-B accesses issued back-to-back by many work-groups, saturating the
// memory system in long regular bursts.
func OpenCL(seed uint64) trace.Trace {
	e := newEmitter(seed)
	const (
		aBase     = 0x1000_0000
		bBase     = 0x1400_0000
		cBase     = 0x1800_0000
		groups    = 256
		groupSize = 64 // 128-B elements per work-group
	)
	for g := 0; g < groups; g++ {
		ga := uint64(g) * groupSize * 128
		for i := 0; i < groupSize; i++ {
			off := ga + uint64(i)*128
			e.emit(e.jitter(2, 1), aBase+off, 128, trace.Read)
			e.emit(e.jitter(2, 1), bBase+off, 128, trace.Read)
			e.emit(e.jitter(2, 1), cBase+off, 128, trace.Write)
		}
		// Work-group dispatch gap.
		e.idle(e.jitter(4000, 800))
	}
	return e.done()
}
