package workloads

import (
	"fmt"

	"repro/internal/trace"
)

// This file generates the §V CPU-to-L1-port proxy traces standing in for
// the paper's SPEC CPU2006 Pin traces. Each benchmark is a parameterised
// mix of four access components observed at the L1 port:
//
//   - stream: sequential pointer walks over large arrays (compulsory
//     misses at a rate set by the stride);
//   - hot: skewed random accesses over a population of heap objects
//     spaced 128 B apart (capacity behaviour depends on the population
//     size; the skew gives realistic reuse-distance spread). Objects are
//     non-adjacent, so dynamic spatial partitioning isolates each
//     recurring object into its own partition — the structure Mocktails
//     (Dynamic) exploits and fixed 4-KB blocks blur;
//   - alias: cyclic walks over small groups of blocks that are exactly
//     one set-mapping stride apart, which is what gives the six Fig. 15
//     benchmarks their three distinct associativity trends for a fixed
//     32-KB capacity (higher associativity means fewer sets, so these
//     groups either fit in a set's ways or thrash it);
//   - stack: accesses to a tiny always-resident region (L1 hits) that
//     dilute the miss rate to realistic levels.
//
// The parameters below are tuned so that gobmk's miss rate falls with
// associativity, libquantum's is flat, and zeusmp's rises — the three
// trends of Figs. 15 and 16 — and so that the Fig. 17 profile-size
// contrasts the paper discusses (calculix's single dominant partition,
// hmmer's constant-friendly regularity, astar's high stride variability)
// have analogues.

// aliasGroup is a set-conflict component: count blocks spaced stride
// bytes apart, walked cyclically.
type aliasGroup struct {
	base   uint64
	stride uint64
	count  int
}

// specParams parameterises one SPEC proxy.
type specParams struct {
	name     string
	requests int
	// Component probabilities; the remainder is the stack component.
	pStream, pHot, pAlias float64
	streamStride          uint64
	streamBytes           uint64
	hotBytes              uint64
	aliasGroups           []aliasGroup
	writeFrac             float64
	sizes                 []uint32
}

// set16K returns alias groups of the given sizes spaced 16 KB apart:
// with a 32-KB cache each group lives in a single set at every
// associativity, so a group of c blocks stops thrashing once assoc >= c.
func set16K(counts ...int) []aliasGroup {
	gs := make([]aliasGroup, len(counts))
	for i, c := range counts {
		gs[i] = aliasGroup{base: 0xC000_0000 + uint64(i)*0x100_0000, stride: 16 << 10, count: c}
	}
	return gs
}

// set2K returns one alias group spaced 2 KB apart: at low associativity
// the blocks spread over several sets (partially fitting), at high
// associativity they collapse into fewer sets and thrash — the rising
// zeusmp trend.
func set2K(count int) []aliasGroup {
	return []aliasGroup{{base: 0xD000_0000, stride: 2 << 10, count: count}}
}

func specCatalog() []specParams {
	w48 := []uint32{4, 8}
	n := 220_000
	return []specParams{
		{name: "astar", requests: n, pStream: 0.08, pHot: 0.50, pAlias: 0, streamStride: 8, streamBytes: 4 << 20, hotBytes: 2 << 20, writeFrac: 0.25, sizes: w48},
		{name: "bzip2", requests: n, pStream: 0.30, pHot: 0.25, pAlias: 0, streamStride: 8, streamBytes: 8 << 20, hotBytes: 512 << 10, writeFrac: 0.30, sizes: w48},
		{name: "cactusADM", requests: n, pStream: 0.45, pHot: 0.10, pAlias: 0, streamStride: 16, streamBytes: 16 << 20, hotBytes: 256 << 10, writeFrac: 0.35, sizes: []uint32{8}},
		{name: "calculix", requests: n, pStream: 0.55, pHot: 0.05, pAlias: 0, streamStride: 8, streamBytes: 2 << 20, hotBytes: 64 << 10, writeFrac: 0.20, sizes: []uint32{8}},
		{name: "gcc", requests: n, pStream: 0.20, pHot: 0.35, pAlias: 0, streamStride: 8, streamBytes: 4 << 20, hotBytes: 1 << 20, writeFrac: 0.30, sizes: w48},
		{name: "GemsFDTD", requests: n, pStream: 0.50, pHot: 0.08, pAlias: 0, streamStride: 16, streamBytes: 24 << 20, hotBytes: 128 << 10, writeFrac: 0.33, sizes: []uint32{8}},
		{name: "gobmk", requests: n, pStream: 0.10, pHot: 0.25, pAlias: 0.12, streamStride: 8, streamBytes: 2 << 20, hotBytes: 24 << 10, aliasGroups: set16K(3, 6, 12), writeFrac: 0.25, sizes: w48},
		{name: "gromacs", requests: n, pStream: 0.25, pHot: 0.20, pAlias: 0, streamStride: 8, streamBytes: 2 << 20, hotBytes: 192 << 10, writeFrac: 0.28, sizes: w48},
		{name: "h264ref", requests: n, pStream: 0.22, pHot: 0.18, pAlias: 0.05, streamStride: 4, streamBytes: 3 << 20, hotBytes: 96 << 10, aliasGroups: set16K(3, 6), writeFrac: 0.30, sizes: []uint32{4}},
		{name: "hmmer", requests: n, pStream: 0.40, pHot: 0.10, pAlias: 0, streamStride: 4, streamBytes: 1 << 20, hotBytes: 32 << 10, writeFrac: 0.40, sizes: []uint32{4}},
		{name: "lbm", requests: n, pStream: 0.55, pHot: 0.02, pAlias: 0, streamStride: 16, streamBytes: 32 << 20, hotBytes: 64 << 10, writeFrac: 0.45, sizes: []uint32{8}},
		{name: "leslie3d", requests: n, pStream: 0.48, pHot: 0.07, pAlias: 0, streamStride: 16, streamBytes: 12 << 20, hotBytes: 128 << 10, writeFrac: 0.30, sizes: []uint32{8}},
		{name: "libquantum", requests: n, pStream: 0.35, pHot: 0, pAlias: 0, streamStride: 16, streamBytes: 16 << 20, hotBytes: 0, writeFrac: 0.25, sizes: []uint32{8}},
		{name: "mcf", requests: n, pStream: 0.05, pHot: 0.55, pAlias: 0, streamStride: 8, streamBytes: 2 << 20, hotBytes: 8 << 20, writeFrac: 0.20, sizes: w48},
		{name: "milc", requests: n, pStream: 0.45, pHot: 0.12, pAlias: 0, streamStride: 32, streamBytes: 20 << 20, hotBytes: 1 << 20, writeFrac: 0.30, sizes: []uint32{8}},
		{name: "namd", requests: n, pStream: 0.30, pHot: 0.15, pAlias: 0, streamStride: 8, streamBytes: 1 << 20, hotBytes: 128 << 10, writeFrac: 0.25, sizes: []uint32{8}},
		{name: "omnetpp", requests: n, pStream: 0.08, pHot: 0.50, pAlias: 0, streamStride: 8, streamBytes: 1 << 20, hotBytes: 4 << 20, writeFrac: 0.35, sizes: w48},
		{name: "perlbench", requests: n, pStream: 0.15, pHot: 0.35, pAlias: 0, streamStride: 8, streamBytes: 2 << 20, hotBytes: 768 << 10, writeFrac: 0.35, sizes: w48},
		{name: "povray", requests: n, pStream: 0.12, pHot: 0.25, pAlias: 0, streamStride: 8, streamBytes: 512 << 10, hotBytes: 256 << 10, writeFrac: 0.30, sizes: w48},
		{name: "sjeng", requests: n, pStream: 0.08, pHot: 0.35, pAlias: 0, streamStride: 8, streamBytes: 1 << 20, hotBytes: 1536 << 10, writeFrac: 0.28, sizes: w48},
		{name: "soplex", requests: n, pStream: 0.30, pHot: 0.22, pAlias: 0.04, streamStride: 8, streamBytes: 8 << 20, hotBytes: 640 << 10, aliasGroups: set16K(4, 8), writeFrac: 0.22, sizes: []uint32{8}},
		{name: "tonto", requests: n, pStream: 0.25, pHot: 0.20, pAlias: 0, streamStride: 8, streamBytes: 2 << 20, hotBytes: 320 << 10, writeFrac: 0.30, sizes: []uint32{8}},
		{name: "zeusmp", requests: n, pStream: 0.30, pHot: 0.10, pAlias: 0.075, streamStride: 16, streamBytes: 10 << 20, hotBytes: 96 << 10, aliasGroups: set2K(20), writeFrac: 0.30, sizes: []uint32{8}},
	}
}

// SPECNames lists the 23 proxy benchmark names in catalogue order.
func SPECNames() []string {
	ps := specCatalog()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.name
	}
	return names
}

// Fig15Names lists the six benchmarks of Figs. 15 and 16.
func Fig15Names() []string {
	return []string{"gobmk", "h264ref", "libquantum", "milc", "soplex", "zeusmp"}
}

// SPECTrace generates the CPU-to-L1-port proxy trace for the named
// benchmark.
func SPECTrace(name string) (trace.Trace, error) {
	for i, p := range specCatalog() {
		if p.name == name {
			return genSPEC(p, uint64(100+i)), nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown SPEC proxy %q", name)
}

func genSPEC(p specParams, seed uint64) trace.Trace {
	e := newEmitter(seed)
	const (
		streamBase = 0x4000_0000
		hotBase    = 0x8000_0000
		stackBase  = 0x7fff_0000
	)
	var streamPtr uint64
	aliasPtrs := make([]int, len(p.aliasGroups))
	var aliasTotal int
	for _, g := range p.aliasGroups {
		aliasTotal += g.count
	}
	for i := 0; i < p.requests; i++ {
		var addr uint64
		r := e.rng.Float64()
		switch {
		case r < p.pStream:
			addr = streamBase + streamPtr
			streamPtr = (streamPtr + p.streamStride) % p.streamBytes
		case r < p.pStream+p.pHot && p.hotBytes > 0:
			// Heap objects at 128-B spacing, quadratically skewed so a
			// hot head sees heavy reuse and a long tail is touched
			// rarely.
			objects := p.hotBytes / 128
			u := e.rng.Float64()
			addr = hotBase + uint64(float64(objects)*u*u)*128

		case r < p.pStream+p.pHot+p.pAlias && aliasTotal > 0:
			// Pick a group weighted by its block count, then take its
			// next block in cyclic order.
			pick := e.rng.Intn(aliasTotal)
			for gi, g := range p.aliasGroups {
				if pick < g.count {
					addr = g.base + uint64(aliasPtrs[gi])*g.stride
					aliasPtrs[gi] = (aliasPtrs[gi] + 1) % g.count
					break
				}
				pick -= g.count
			}
		default:
			addr = stackBase + e.rng.Uint64n(1<<10)&^7
		}
		size := p.sizes[e.rng.Intn(len(p.sizes))]
		op := trace.Read
		if e.rng.Bool(p.writeFrac) {
			op = trace.Write
		}
		e.emit(e.jitter(2, 1), addr, size, op)
	}
	return e.done()
}
