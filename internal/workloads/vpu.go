package workloads

import "repro/internal/trace"

// HEVC generates a VPU (video decode) proxy trace. The behaviour follows
// the paper's own observations of HEVC traces:
//
//   - Requests cluster into frame-decode bursts separated by idle gaps of
//     tens of millions of cycles (Fig. 3 shows clusters hundreds of
//     millions of cycles apart over a ~750M-cycle trace).
//   - Within a burst, reference-frame reads touch 4-KB regions sparsely
//     and irregularly: short runs of 64-B accesses led by a 128-B access
//     with a small back-stride, revisited later in the frame (the Fig. 2 /
//     Table I "partition F" pattern), alongside other stride runs.
//   - Decoded output is written back in linear 64-B runs.
//
// frames controls the trace length; the default catalogue uses 8-12.
func HEVC(seed uint64, frames int) trace.Trace {
	e := newEmitter(seed)
	const (
		framePeriod = 60_000_000 // cycles between frame starts
		refBase     = 0x8100_0000
		outBase     = 0x9000_0000
		regions     = 48 // 4KB reference regions in the working set
	)
	// Fixed per-region offsets so that the same sparse pattern recurs
	// across frames (reference-frame reuse).
	regionOff := make([]uint64, regions)
	for i := range regionOff {
		regionOff[i] = uint64(e.rng.Intn(40)) * 96
	}
	for f := 0; f < frames; f++ {
		frameStart := uint64(f) * framePeriod
		if frameStart > e.now {
			e.idle(frameStart - e.now)
		}
		// Reference reads: a window of regions slides with the frame.
		for ri := 0; ri < regions; ri++ {
			region := refBase + uint64((f*7+ri)%96)*4096
			base := region + regionOff[ri%regions]%1024
			// The Fig. 2 motif: a 128-B access, a +8 stride, then a
			// run of +64 strides — executed twice (temporal reuse).
			for rep := 0; rep < 2; rep++ {
				e.emit(e.jitter(40, 10), base, 128, trace.Read)
				e.emit(8, base+8, 64, trace.Read)
				for k := 1; k <= 4; k++ {
					e.emit(e.jitter(20, 4), base+8+uint64(k)*64, 64, trace.Read)
				}
				e.idle(e.jitter(5000, 1000))
			}
			// A second, independent motif in the same region: a short
			// dense run at a different offset.
			off := region + 2048 + uint64(ri%4)*256
			for k := 0; k < 6; k++ {
				e.emit(e.jitter(24, 6), off+uint64(k)*64, 64, trace.Read)
			}
			e.idle(e.jitter(20000, 5000))
		}
		// Output writeback: linear 64-B writes over a 192-KB frame
		// slice. The writeback DMA drains short runs of back-to-back
		// writes separated by jittered gaps; run lengths vary with the
		// decoded block sizes (mean 16).
		out := outBase + uint64(f%4)*0x40000
		for blk := 0; blk < 3072; blk++ {
			dt := e.jitter(8, 3)
			if e.rng.Bool(1.0 / 16) {
				dt = e.jitter(600, 250)
			}
			e.emit(dt, out+uint64(blk)*64, 64, trace.Write)
		}
		// Idle until the next frame: the inter-cluster gaps of Fig. 3.
	}
	return e.done()
}
