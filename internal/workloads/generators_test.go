package workloads

import (
	"reflect"
	"testing"

	"repro/internal/trace"
)

// The table-driven suite below exercises every generator function
// directly (not just through the catalogue's fixed seeds): each must be
// deterministic under a fixed seed, sensitive to the seed, and produce
// a well-formed trace — sorted, non-empty, every request with a
// non-zero power-of-two size and a valid op.

type genCase struct {
	name string
	gen  func(seed uint64) trace.Trace
}

func generatorTable() []genCase {
	return []genCase{
		{"Crypto", Crypto},
		{"CPUInteract-D", func(s uint64) trace.Trace { return CPUInteract(s, 'D') }},
		{"CPUInteract-G", func(s uint64) trace.Trace { return CPUInteract(s, 'G') }},
		{"CPUInteract-V", func(s uint64) trace.Trace { return CPUInteract(s, 'V') }},
		{"FBC-linear", func(s uint64) trace.Trace { return FBC(s, false) }},
		{"FBC-tiled", func(s uint64) trace.Trace { return FBC(s, true) }},
		{"MultiLayer", MultiLayer},
		{"GPUGraphics-lo", func(s uint64) trace.Trace { return GPUGraphics(s, 0.55) }},
		{"GPUGraphics-hi", func(s uint64) trace.Trace { return GPUGraphics(s, 0.70) }},
		{"OpenCL", OpenCL},
		{"HEVC", func(s uint64) trace.Trace { return HEVC(s, 6) }},
	}
}

func wellFormed(t *testing.T, name string, tr trace.Trace) {
	t.Helper()
	if len(tr) == 0 {
		t.Fatalf("%s: empty trace", name)
	}
	if !tr.Sorted() {
		t.Errorf("%s: not time-sorted", name)
	}
	for i, r := range tr {
		if r.Size == 0 || r.Size&(r.Size-1) != 0 {
			t.Errorf("%s: request %d has size %d, want non-zero power of two", name, i, r.Size)
			return
		}
		if r.Op != trace.Read && r.Op != trace.Write {
			t.Errorf("%s: request %d has invalid op %d", name, i, r.Op)
			return
		}
		if r.End() < r.Addr {
			t.Errorf("%s: request %d wraps the address space (addr 0x%x size %d)", name, i, r.Addr, r.Size)
			return
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, c := range generatorTable() {
		t.Run(c.name, func(t *testing.T) {
			a, b := c.gen(99), c.gen(99)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("same seed produced different traces (%d vs %d requests)", len(a), len(b))
			}
		})
	}
}

func TestGeneratorsSeedSensitive(t *testing.T) {
	for _, c := range generatorTable() {
		t.Run(c.name, func(t *testing.T) {
			a, b := c.gen(1), c.gen(2)
			if reflect.DeepEqual(a, b) {
				t.Error("different seeds produced identical traces")
			}
		})
	}
}

func TestGeneratorsWellFormed(t *testing.T) {
	for _, c := range generatorTable() {
		t.Run(c.name, func(t *testing.T) {
			wellFormed(t, c.name, c.gen(7))
		})
	}
}

func TestCatalogTracesWellFormed(t *testing.T) {
	for _, s := range Catalog() {
		t.Run(s.Name, func(t *testing.T) {
			wellFormed(t, s.Name, s.Gen())
		})
	}
}

func TestSPECTracesWellFormed(t *testing.T) {
	if testing.Short() {
		t.Skip("23 SPEC proxies are slow in -short mode")
	}
	for _, n := range SPECNames() {
		t.Run(n, func(t *testing.T) {
			tr, err := SPECTrace(n)
			if err != nil {
				t.Fatal(err)
			}
			wellFormed(t, n, tr)
			a, _ := SPECTrace(n)
			if !reflect.DeepEqual(tr, a) {
				t.Error("SPEC proxy non-deterministic")
			}
		})
	}
}
