package workloads

import "repro/internal/trace"

// FBC generates a DPU (display processor) proxy trace that reads
// compressed frame buffers. In linear mode the payload is scanned
// sequentially, maximising row locality; in tiled mode the scan walks
// 16-line tiles whose lines are a full pitch apart, so consecutive reads
// jump across DRAM rows (the Fig. 10 contrast). A small composition
// write-back stream touches a narrow address band so that only a subset
// of banks sees writes (the Fig. 12b effect).
func FBC(seed uint64, tiled bool) trace.Trace {
	e := newEmitter(seed)
	const (
		fbBase    = 0x4000_0000
		pitch     = 4096 // bytes per display line
		lines     = 512
		frameGap  = 16_600_000 // 60 fps at 1 GHz
		frames    = 3
		hdrBase   = 0x4800_0000
		writeBase = 0x5000_0000
	)
	for f := 0; f < frames; f++ {
		frameStart := uint64(f) * frameGap
		if frameStart > e.now {
			e.idle(frameStart - e.now)
		}
		fb := uint64(fbBase) + uint64(f%2)*uint64(pitch*lines)
		// Per-line compression headers, read ahead of the payload.
		for l := 0; l < lines; l += 8 {
			e.emit(e.jitter(30, 5), hdrBase+uint64(f%2)*0x10000+uint64(l)*8, 64, trace.Read)
		}
		if tiled {
			// 16x16-pixel tiles, 64 B per line segment: lines of a tile
			// are pitch apart, killing row locality.
			for ty := 0; ty < lines/16; ty++ {
				for tx := 0; tx < pitch/64; tx += 4 {
					for ln := 0; ln < 16; ln++ {
						addr := fb + uint64(ty*16+ln)*pitch + uint64(tx)*64
						e.emit(e.jitter(8, 2), addr, 64, trace.Read)
					}
				}
				e.idle(e.jitter(3000, 500))
			}
		} else {
			// Linear scan: payload read back-to-back in address order.
			for l := 0; l < lines; l++ {
				for x := 0; x < pitch/64; x += 4 {
					addr := fb + uint64(l)*pitch + uint64(x)*64
					e.emit(e.jitter(8, 2), addr, 64, trace.Read)
				}
				if l%16 == 15 {
					e.idle(e.jitter(3000, 500))
				}
			}
		}
		// Composition write-back: a narrow 16-KB band rewritten every
		// frame, sequential 64-B writes. The band spans only 16
		// row-buffer stripes (4 per channel), so half the banks never
		// see a write (the Fig. 12b effect). Four passes keep the write
		// volume comparable to a frame's metadata updates.
		for pass := 0; pass < 4; pass++ {
			for b := 0; b < 256; b++ {
				e.emit(e.jitter(12, 3), writeBase+uint64(b)*64, 64, trace.Write)
			}
		}
	}
	return e.done()
}

// MultiLayer generates the DPU multi-layer proxy: several VGA-sized
// layers are fetched scanline-interleaved and composited, with the result
// written out, so concurrent address streams from different layers are
// interspersed in time (the behaviour Mocktails' per-partition start
// times must capture).
func MultiLayer(seed uint64) trace.Trace {
	e := newEmitter(seed)
	const (
		layers   = 4
		pitch    = 2560 // 640 px * 4 B
		lines    = 480
		base     = 0x6000_0000
		outBase  = 0x7000_0000
		frameGap = 16_600_000
		frames   = 2
	)
	for f := 0; f < frames; f++ {
		frameStart := uint64(f) * frameGap
		if frameStart > e.now {
			e.idle(frameStart - e.now)
		}
		for l := 0; l < lines; l++ {
			// Read one scanline from every layer, interleaved.
			for x := 0; x < pitch/64; x += 2 {
				for ly := 0; ly < layers; ly++ {
					// Layers sit at page-offset bases so simultaneous
					// fetches spread over channels, as real allocators do.
					addr := uint64(base) + uint64(ly)*0x100400 + uint64(l)*pitch + uint64(x)*64
					e.emit(e.jitter(6, 2), addr, 64, trace.Read)
				}
			}
			// Write the composited scanline.
			for x := 0; x < pitch/64; x += 2 {
				e.emit(e.jitter(10, 2), uint64(outBase)+uint64(l)*pitch+uint64(x)*64, 64, trace.Write)
			}
			e.idle(e.jitter(2000, 300))
		}
	}
	return e.done()
}
