package markov

import (
	"encoding/binary"
	"sort"

	"repro/internal/stats"
)

// HModel is a history-k Markov model: the state is the tuple of the last
// k values rather than just the previous one. Order 1 reduces to the
// standard McC chain. Higher orders capture periodic patterns (such as
// the tiled DPU scan's fixed-length stride runs) that a first-order
// chain regenerates only in distribution; they cost proportionally more
// metadata, which is why the paper's McC stays first-order. The
// "ablation-korder" experiment quantifies this trade-off.
type HModel struct {
	// Constant mirrors Model: a variability-free feature.
	Constant bool
	Value    int64

	// Order is the history length k (>= 1).
	Order int
	// Prefix is the first min(k, len(seq)) values, used to seed
	// generation.
	Prefix []int64
	// Rows maps an encoded history to its observed successors.
	Rows map[string][]Edge
}

// FitOrder fits a history-k model to the sequence. k < 1 is treated as
// 1. Like Fit, an empty sequence yields a constant-zero model and a
// variability-free sequence yields a Constant.
func FitOrder(seq []int64, k int) HModel {
	if k < 1 {
		k = 1
	}
	if len(seq) == 0 {
		return HModel{Constant: true, Order: k}
	}
	constant := true
	for _, v := range seq[1:] {
		if v != seq[0] {
			constant = false
			break
		}
	}
	if constant {
		return HModel{Constant: true, Value: seq[0], Order: k}
	}
	m := HModel{Order: k, Rows: make(map[string][]Edge)}
	n := k
	if n > len(seq) {
		n = len(seq)
	}
	m.Prefix = append([]int64(nil), seq[:n]...)
	for i := 1; i < len(seq); i++ {
		lo := i - k
		if lo < 0 {
			lo = 0
		}
		key := encodeState(seq[lo:i])
		m.Rows[key] = bumpEdge(m.Rows[key], seq[i])
	}
	return m
}

func bumpEdge(row []Edge, v int64) []Edge {
	for i := range row {
		if row[i].To == v {
			row[i].N++
			return row
		}
	}
	row = append(row, Edge{To: v, N: 1})
	sort.Slice(row, func(i, j int) bool { return row[i].To < row[j].To })
	return row
}

// encodeState packs a value history into a map key.
func encodeState(h []int64) string {
	b := make([]byte, 0, len(h)*binary.MaxVarintLen64)
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range h {
		n := binary.PutVarint(tmp[:], v)
		b = append(b, tmp[:n]...)
	}
	return string(b)
}

// States returns the number of distinct histories (0 for Constant).
func (m *HModel) States() int { return len(m.Rows) }

// HGenerator generates a sequence from an HModel under strict
// convergence on the per-history transition counts. Single-use.
type HGenerator struct {
	m       *HModel
	rng     *stats.RNG
	hist    []int64
	emitted int
	remain  map[string][]Edge
}

// NewHGenerator returns a generator drawing from rng.
func NewHGenerator(m *HModel, rng *stats.RNG) *HGenerator {
	g := &HGenerator{m: m, rng: rng}
	if !m.Constant {
		g.remain = make(map[string][]Edge, len(m.Rows))
	}
	return g
}

// Next returns the next value: the recorded prefix first, then history-k
// transitions with back-off to shorter histories when the full history
// was never observed.
func (g *HGenerator) Next() int64 {
	if g.m.Constant {
		return g.m.Value
	}
	if g.emitted < len(g.m.Prefix) {
		v := g.m.Prefix[g.emitted]
		g.emitted++
		g.push(v)
		return v
	}
	g.emitted++
	v := g.step()
	g.push(v)
	return v
}

func (g *HGenerator) push(v int64) {
	g.hist = append(g.hist, v)
	if len(g.hist) > g.m.Order {
		g.hist = g.hist[1:]
	}
}

// step draws a successor for the current history, backing off to
// shorter suffixes, and finally to any non-empty row.
func (g *HGenerator) step() int64 {
	for h := len(g.hist); h >= 1; h-- {
		key := encodeState(g.hist[len(g.hist)-h:])
		orig, ok := g.m.Rows[key]
		if !ok {
			continue
		}
		row, ok := g.remain[key]
		if !ok {
			row = append([]Edge(nil), orig...)
			g.remain[key] = row
		}
		var total uint64
		for _, e := range row {
			total += uint64(e.N)
		}
		if total == 0 {
			// Strictly converged: redraw from the training counts.
			for _, e := range orig {
				total += uint64(e.N)
			}
			pick := g.rng.Uint64n(total)
			for _, e := range orig {
				if pick < uint64(e.N) {
					return e.To
				}
				pick -= uint64(e.N)
			}
		}
		pick := g.rng.Uint64n(total)
		for i := range row {
			if pick < uint64(row[i].N) {
				row[i].N--
				return row[i].To
			}
			pick -= uint64(row[i].N)
		}
	}
	// The history (and every suffix) was never observed: fall back to
	// the prefix's first value.
	if len(g.m.Prefix) > 0 {
		return g.m.Prefix[0]
	}
	return 0
}
