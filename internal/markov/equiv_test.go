package markov

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// oldGenerator is a frozen copy of the pre-optimisation Generator (linear
// weighted scans, per-draw total re-summation, nested row structures). The
// optimised kernels must stay draw-for-draw identical to it: both consume
// one RNG value per weighted choice and select the element a left-to-right
// scan would, so any divergence is a regression in the binary-search/
// Fenwick/flat-table rewrite. newOldGenerator rebuilds the nested rows the
// frozen implementation traversed from today's flat model.
type oldGenerator struct {
	m         *Model
	rows      []Row
	rng       *stats.RNG
	state     int64
	started   bool
	remaining [][]uint32

	values   []int64
	valueRem []uint32
	remTotal uint64
}

func newOldGenerator(m *Model, rng *stats.RNG) *oldGenerator {
	g := &oldGenerator{m: m, rng: rng}
	if !m.Constant {
		g.rows = make([]Row, len(m.From))
		for i := range g.rows {
			g.rows[i] = m.RowAt(i)
		}
		g.remaining = make([][]uint32, len(g.rows))
		for i, r := range g.rows {
			rem := make([]uint32, len(r.Edges))
			for j, e := range r.Edges {
				rem[j] = e.N
			}
			g.remaining[i] = rem
		}
		counts := make(map[int64]uint32)
		for _, r := range g.rows {
			for _, e := range r.Edges {
				counts[e.To] += e.N
			}
		}
		counts[g.m.Initial]++
		g.values = make([]int64, 0, len(counts))
		for v := range counts {
			g.values = append(g.values, v)
		}
		sort.Slice(g.values, func(i, j int) bool { return g.values[i] < g.values[j] })
		g.valueRem = make([]uint32, len(g.values))
		for i, v := range g.values {
			g.valueRem[i] = counts[v]
			g.remTotal += uint64(counts[v])
		}
	}
	return g
}

func (g *oldGenerator) consumeValue(v int64) int64 {
	if g.remTotal == 0 {
		return v
	}
	i := sort.Search(len(g.values), func(i int) bool { return g.values[i] >= v })
	if i < len(g.values) && g.values[i] == v && g.valueRem[i] > 0 {
		g.valueRem[i]--
		g.remTotal--
		return v
	}
	pick := g.rng.Uint64n(g.remTotal)
	for j := range g.values {
		if pick < uint64(g.valueRem[j]) {
			g.valueRem[j]--
			g.remTotal--
			return g.values[j]
		}
		pick -= uint64(g.valueRem[j])
	}
	return v
}

func (g *oldGenerator) Next() int64 {
	if g.m.Constant {
		return g.m.Value
	}
	if !g.started {
		g.started = true
		g.state = g.consumeValue(g.m.Initial)
		return g.state
	}
	g.state = g.consumeValue(g.step(g.state))
	return g.state
}

func (g *oldGenerator) step(cur int64) int64 {
	ri := g.m.rowIndex(cur)
	if ri < 0 {
		ri = g.m.rowIndex(g.m.Initial)
		if ri < 0 {
			return g.m.Initial
		}
	}
	row := g.rows[ri]
	rem := g.remaining[ri]
	var total uint64
	for _, n := range rem {
		total += uint64(n)
	}
	if total > 0 {
		pick := g.rng.Uint64n(total)
		for j, n := range rem {
			if pick < uint64(n) {
				rem[j]--
				return row.Edges[j].To
			}
			pick -= uint64(n)
		}
	}
	total = 0
	for _, e := range row.Edges {
		total += uint64(e.N)
	}
	pick := g.rng.Uint64n(total)
	for _, e := range row.Edges {
		if pick < uint64(e.N) {
			return e.To
		}
		pick -= uint64(e.N)
	}
	return row.Edges[len(row.Edges)-1].To
}

// randomSeq builds a training sequence with a tunable alphabet so both
// the small (linear-scan) and large (Fenwick/prefix-sum) kernel paths
// get exercised.
func randomSeq(rng *stats.RNG, n, alphabet int) []int64 {
	seq := make([]int64, n)
	for i := range seq {
		seq[i] = int64(rng.Intn(alphabet)) * 3
	}
	return seq
}

func TestGeneratorMatchesReferenceImplementation(t *testing.T) {
	cases := []struct{ n, alphabet int }{
		{2, 2},    // tiny chain
		{50, 3},   // small rows, heavy strict-convergence reuse
		{400, 5},  // small rows, long generation
		{400, 40}, // rows and value sets beyond fenwickMin
		{2000, 64},
		{3000, 200}, // large sparse rows
	}
	for _, c := range cases {
		for seed := uint64(0); seed < 4; seed++ {
			rng := stats.NewRNG(seed*77 + uint64(c.n))
			seq := randomSeq(rng, c.n, c.alphabet)
			m := Fit(seq)
			// Generate well past the training length so the exhausted-row
			// fallback path is covered too.
			gen := NewGenerator(&m, stats.NewRNG(seed))
			ref := newOldGenerator(&m, stats.NewRNG(seed))
			for i := 0; i < 2*c.n; i++ {
				got, want := gen.Next(), ref.Next()
				if got != want {
					t.Fatalf("n=%d alphabet=%d seed=%d: draw %d = %d, reference %d",
						c.n, c.alphabet, seed, i, got, want)
				}
			}
		}
	}
}

func TestGeneratorMatchesReferenceProperty(t *testing.T) {
	check := func(raw []int16, seed uint64) bool {
		if len(raw) == 0 {
			return true
		}
		seq := make([]int64, len(raw))
		for i, v := range raw {
			seq[i] = int64(v % 32)
		}
		m := Fit(seq)
		gen := NewGenerator(&m, stats.NewRNG(seed))
		ref := newOldGenerator(&m, stats.NewRNG(seed))
		for i := 0; i < 3*len(seq); i++ {
			if gen.Next() != ref.Next() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
