package markov

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func generate(m *Model, n int, seed uint64) []int64 {
	g := NewGenerator(m, stats.NewRNG(seed))
	out := make([]int64, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

func TestFitEmpty(t *testing.T) {
	m := Fit(nil)
	if !m.Constant || m.Value != 0 {
		t.Errorf("Fit(nil) = %+v, want constant 0", m)
	}
}

func TestFitConstant(t *testing.T) {
	m := Fit([]int64{64, 64, 64, 64})
	if !m.Constant || m.Value != 64 {
		t.Errorf("constant sequence gave %+v", m)
	}
	if m.States() != 0 {
		t.Errorf("constant model has %d states", m.States())
	}
}

func TestFitSingle(t *testing.T) {
	m := Fit([]int64{-7})
	if !m.Constant || m.Value != -7 {
		t.Errorf("single-value sequence gave %+v", m)
	}
}

func TestFitChain(t *testing.T) {
	m := Fit([]int64{1, 2, 1, 2, 1})
	if m.Constant {
		t.Fatal("alternating sequence fit as constant")
	}
	if m.Initial != 1 {
		t.Errorf("Initial = %d", m.Initial)
	}
	if m.States() != 2 {
		t.Errorf("States = %d, want 2", m.States())
	}
	if m.Transitions() != 4 {
		t.Errorf("Transitions = %d, want 4", m.Transitions())
	}
}

func TestFitRowsSorted(t *testing.T) {
	m := Fit([]int64{5, -3, 9, 5, -3, 2, 5})
	for i := 1; i < len(m.From); i++ {
		if m.From[i] <= m.From[i-1] {
			t.Fatal("rows not sorted by From")
		}
	}
	for i := range m.From {
		r := m.RowAt(i)
		for j := 1; j < len(r.Edges); j++ {
			if r.Edges[j].To <= r.Edges[j-1].To {
				t.Fatal("edges not sorted by To")
			}
		}
	}
	if len(m.RowOff) != len(m.From)+1 || int(m.RowOff[len(m.From)]) != len(m.To) {
		t.Fatalf("RowOff malformed: %v over %d edges", m.RowOff, len(m.To))
	}
}

func TestDeterministicSequenceReproducedExactly(t *testing.T) {
	// A cyclic pattern has one successor per state, so generation must
	// reproduce it perfectly regardless of the seed (Table I's point).
	seq := []int64{10, 20, 30, 10, 20, 30, 10, 20, 30, 10}
	m := Fit(seq)
	for seed := uint64(0); seed < 5; seed++ {
		got := generate(&m, len(seq), seed)
		for i := range seq {
			if got[i] != seq[i] {
				t.Fatalf("seed %d: got[%d] = %d, want %d", seed, i, got[i], seq[i])
			}
		}
	}
}

func TestConstantGeneration(t *testing.T) {
	m := Fit([]int64{42, 42})
	got := generate(&m, 5, 1)
	for _, v := range got {
		if v != 42 {
			t.Fatalf("constant generator produced %d", v)
		}
	}
}

func TestFirstValueIsInitial(t *testing.T) {
	m := Fit([]int64{7, 8, 7, 9})
	if got := generate(&m, 1, 3)[0]; got != 7 {
		t.Errorf("first generated value = %d, want initial 7", got)
	}
}

func TestStrictConvergencePreservesMultiset(t *testing.T) {
	// With strict convergence, generating exactly len(seq) values must
	// reproduce the exact multiset of values whenever the training walk
	// cannot strand (single branching state).
	seq := []int64{1, 1, 1, 2, 1, 1, 2, 1, 1, 1, 2, 1}
	m := Fit(seq)
	want := multiset(seq)
	for seed := uint64(0); seed < 20; seed++ {
		got := multiset(generate(&m, len(seq), seed))
		if !equalCounts(got, want) {
			t.Fatalf("seed %d: multiset %v, want %v", seed, got, want)
		}
	}
}

func TestGeneratorOnlyProducesTrainedValues(t *testing.T) {
	seq := []int64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	m := Fit(seq)
	valid := multiset(seq)
	got := generate(&m, 50, 11)
	for _, v := range got {
		if _, ok := valid[v]; !ok {
			t.Fatalf("generated untrained value %d", v)
		}
	}
}

func TestTerminalStateRestarts(t *testing.T) {
	// 9 appears only as the final value: it has no outgoing edges, so
	// generation past it must restart from the initial state's row
	// rather than panic.
	seq := []int64{1, 2, 1, 2, 9}
	m := Fit(seq)
	got := generate(&m, 20, 5)
	if len(got) != 20 {
		t.Fatal("generator stalled after terminal state")
	}
}

func TestGeneratorDeterministicPerSeed(t *testing.T) {
	seq := []int64{1, 2, 3, 1, 3, 2, 1, 2, 2, 3}
	m := Fit(seq)
	a := generate(&m, 100, 99)
	b := generate(&m, 100, 99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestModelString(t *testing.T) {
	c := Fit([]int64{1})
	if c.String() == "" {
		t.Error("empty String for constant")
	}
	m := Fit([]int64{1, 2, 1})
	if m.String() == "" {
		t.Error("empty String for chain")
	}
}

func TestExhaustedRowFallsBack(t *testing.T) {
	// Force generation far past the training length so remaining counts
	// exhaust; generation must continue drawing from the original
	// distribution.
	seq := []int64{1, 2, 1, 2, 1}
	m := Fit(seq)
	got := generate(&m, 1000, 17)
	if len(got) != 1000 {
		t.Fatal("generation stopped early")
	}
	ones, twos := 0, 0
	for _, v := range got {
		switch v {
		case 1:
			ones++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected value %d", v)
		}
	}
	if ones == 0 || twos == 0 {
		t.Errorf("degenerate long generation: %d ones, %d twos", ones, twos)
	}
}

func TestFitGenerateProperty(t *testing.T) {
	// For any training sequence, generating len(seq) values yields only
	// trained values, starts at the initial value, and never panics.
	check := func(raw []int8, seed uint64) bool {
		if len(raw) == 0 {
			return true
		}
		seq := make([]int64, len(raw))
		for i, v := range raw {
			seq[i] = int64(v % 4)
		}
		m := Fit(seq)
		got := generate(&m, len(seq), seed)
		if got[0] != seq[0] {
			return false
		}
		valid := multiset(seq)
		for _, v := range got {
			if _, ok := valid[v]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func multiset(xs []int64) map[int64]int {
	m := make(map[int64]int)
	for _, x := range xs {
		m[x]++
	}
	return m
}

func equalCounts(a, b map[int64]int) bool {
	if len(a) != len(b) {
		return false
	}
	keys := make([]int64, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}
