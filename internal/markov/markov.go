// Package markov implements the McC model of Mocktails §III-B: each memory
// request feature (delta time, stride, operation, size) within a partition
// is modelled either by a Constant, when the training sequence shows no
// variability, or by a first-order Markov chain over the observed values.
//
// Generation uses strict convergence (Mocktails §III-C, following STM and
// WEST): every observed transition carries a count, and each time a
// transition is taken its remaining count is decremented, so the synthetic
// sequence reproduces the exact multiset of transitions where possible.
package markov

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/stats"
)

// Edge is one outgoing Markov transition with its training count.
type Edge struct {
	To int64
	N  uint32
}

// Row holds the outgoing transitions of one state, sorted by To for
// deterministic iteration and serialisation.
type Row struct {
	From  int64
	Edges []Edge
}

// Model is a McC ("Markov chain or Constant") model of one feature.
// The zero value is an empty model; build one with Fit.
type Model struct {
	// Constant is true when the feature never changes value in the
	// training sequence; Value holds that value.
	Constant bool
	Value    int64

	// Initial is the first value of the training sequence; generation
	// starts here.
	Initial int64
	// Rows holds the transition table, sorted by From.
	Rows []Row
}

// Fit builds a McC model from a training sequence. An empty sequence
// yields a constant-zero model; a sequence whose values are all equal
// yields a Constant model; otherwise a Markov chain with per-transition
// counts is built.
func Fit(seq []int64) Model {
	if len(seq) == 0 {
		return Model{Constant: true}
	}
	constant := true
	for _, v := range seq[1:] {
		if v != seq[0] {
			constant = false
			break
		}
	}
	if constant {
		return Model{Constant: true, Value: seq[0], Initial: seq[0]}
	}
	counts := make(map[int64]map[int64]uint32)
	for i := 1; i < len(seq); i++ {
		from, to := seq[i-1], seq[i]
		row := counts[from]
		if row == nil {
			row = make(map[int64]uint32)
			counts[from] = row
		}
		row[to]++
	}
	m := Model{Initial: seq[0]}
	m.Rows = make([]Row, 0, len(counts))
	for from, row := range counts {
		edges := make([]Edge, 0, len(row))
		for to, n := range row {
			edges = append(edges, Edge{To: to, N: n})
		}
		sort.Slice(edges, func(i, j int) bool { return edges[i].To < edges[j].To })
		m.Rows = append(m.Rows, Row{From: from, Edges: edges})
	}
	sort.Slice(m.Rows, func(i, j int) bool { return m.Rows[i].From < m.Rows[j].From })
	return m
}

// States returns the number of states in the transition table (0 for a
// Constant model).
func (m *Model) States() int { return len(m.Rows) }

// Transitions returns the total training transition count.
func (m *Model) Transitions() int {
	n := 0
	for _, r := range m.Rows {
		for _, e := range r.Edges {
			n += int(e.N)
		}
	}
	return n
}

// String summarises the model.
func (m *Model) String() string {
	if m.Constant {
		return fmt.Sprintf("Constant(%d)", m.Value)
	}
	return fmt.Sprintf("Markov(states=%d, transitions=%d, initial=%d)", m.States(), m.Transitions(), m.Initial)
}

// rowIndex returns the index of state from in Rows, or -1.
func (m *Model) rowIndex(from int64) int {
	i := sort.Search(len(m.Rows), func(i int) bool { return m.Rows[i].From >= from })
	if i < len(m.Rows) && m.Rows[i].From == from {
		return i
	}
	return -1
}

// fenwickMin is the distribution size above which the sampling kernels
// switch from a cached-total linear scan to a Fenwick-tree (mutable
// counts) or prefix-sum (static counts) binary search. Small
// distributions stay linear: the scan fits in a cache line and beats the
// tree's pointer arithmetic. It doubles as the state-count cutoff below
// which row and value lookups use binary search over the sorted model
// instead of building per-generator hash maps — interval-partitioned
// profiles create tens of thousands of tiny generators per synthesis,
// and map construction would dominate their setup cost. Either path
// selects the same element for the same RNG draw, so the cutoff never
// changes generated streams.
const fenwickMin = 16

// Generator produces a value sequence from a Model under strict
// convergence: per-transition counts steer the ordering, and per-value
// remaining counts guarantee that generating exactly the training length
// reproduces the exact multiset of values — the property the paper relies
// on ("strict convergence ensures that only two 128 sizes and ten 64
// sizes are generated"). A Generator is single-use; create a fresh one
// per synthesis run.
//
// Sampling is O(1) amortised per draw for small rows and O(log n) for
// large ones: row totals are cached and decremented instead of re-summed,
// mutable strict-convergence counts live in Fenwick trees, and the static
// fallback distribution is drawn via binary search over prefix sums
// precomputed at NewGenerator time.
type Generator struct {
	m *Model
	// rng is held by value: a Generator owns its RNG stream outright
	// (every caller hands it a dedicated fork), and a self-contained
	// struct lets short-lived generators live on the stack.
	rng     stats.RNG
	state   int64
	started bool

	// rowIdx maps a state value to its row index; it is nil for models
	// with < fenwickMin states, which look rows up by binary search over
	// the sorted transition table instead. initRow caches the initial
	// state's row (-1 when the initial value never occurs as a source).
	rowIdx  map[int64]int
	initRow int

	// Strict-convergence transition counts, flattened edge-major: row
	// i's remaining counts are rem[rowOff[i]:rowOff[i+1]]. rowTotal
	// caches the sum of each row's remaining counts. rowOff, rem and
	// valueRem share one backing allocation. Rows with >= fenwickMin
	// edges additionally keep their mutable counts in rowFen; both
	// rowFen and fallCum are nil when no row is that large.
	rem      []uint32
	rowOff   []uint32
	rowFen   []*stats.Fenwick
	rowTotal []uint64

	// Static fallback distribution, used once a row's remaining counts
	// are exhausted. fallTotal holds each row's training total; rows >=
	// fenwickMin additionally carry inclusive prefix sums in fallCum
	// (nil when no row is that large).
	fallCum   [][]uint64
	fallTotal []uint64

	// Value-level strict convergence: the sorted training values and how
	// many emissions of each remain. valueIdx is nil for < fenwickMin
	// values (binary search over the sorted values instead).
	values   []int64
	valueIdx map[int64]int
	valueRem []uint32
	valueFen *stats.Fenwick
	remTotal uint64
}

// NewGenerator returns a generator for m seeded with rng's current
// state; the generator draws from its own copy of rng (see Init).
func NewGenerator(m *Model, rng *stats.RNG) *Generator {
	g := new(Generator)
	g.Init(m, rng)
	return g
}

// Init prepares g to generate from m, copying rng's state as its private
// draw stream, replacing any previous state. It exists so callers that
// create many short-lived generators (one per leaf feature per
// synthesis) can keep them as values instead of heap-allocating each
// one. The caller's rng is not advanced by later draws; hand each
// generator a dedicated fork.
func (g *Generator) Init(m *Model, rng *stats.RNG) {
	*g = Generator{m: m, rng: *rng}
	if m.Constant {
		return
	}
	n := len(m.Rows)
	edges, maxRow := 0, 0
	for i := range m.Rows {
		e := len(m.Rows[i].Edges)
		edges += e
		if e > maxRow {
			maxRow = e
		}
	}
	totals := make([]uint64, 2*n)
	g.rowTotal, g.fallTotal = totals[:n:n], totals[n:]
	if n >= fenwickMin {
		g.rowIdx = make(map[int64]int, n)
	}
	if maxRow >= fenwickMin {
		g.rowFen = make([]*stats.Fenwick, n)
		g.fallCum = make([][]uint64, n)
	}

	// Derive the value multiset (each value's in-degree, plus one for
	// the initial value) by sorting and coalescing the edge list — no
	// hash map on this path either.
	pairs := make([]Edge, 0, edges+1)
	for i := range m.Rows {
		pairs = append(pairs, m.Rows[i].Edges...)
	}
	pairs = append(pairs, Edge{To: m.Initial, N: 1})
	sortEdgesByTo(pairs)
	k := 0
	for i := 1; i < len(pairs); i++ {
		if pairs[i].To == pairs[k].To {
			pairs[k].N += pairs[i].N
		} else {
			k++
			pairs[k] = pairs[i]
		}
	}
	pairs = pairs[:k+1]

	// One shared uint32 buffer holds the row offsets, the transition
	// remaining counts, and the value remaining counts, keeping setup at
	// a handful of allocations per generator.
	buf := make([]uint32, (n+1)+edges+len(pairs))
	g.rowOff = buf[: n+1 : n+1]
	g.rem = buf[n+1 : n+1+edges : n+1+edges]
	g.valueRem = buf[n+1+edges:]

	off := 0
	for i := range m.Rows {
		r := &m.Rows[i]
		if g.rowIdx != nil {
			g.rowIdx[r.From] = i
		}
		g.rowOff[i] = uint32(off)
		var total uint64
		for j := range r.Edges {
			g.rem[off+j] = r.Edges[j].N
			total += uint64(r.Edges[j].N)
		}
		g.rowTotal[i] = total
		g.fallTotal[i] = total
		if len(r.Edges) >= fenwickMin {
			row := g.rem[off : off+len(r.Edges)]
			cum := make([]uint64, len(r.Edges))
			var s uint64
			for j, w := range row {
				s += uint64(w)
				cum[j] = s
			}
			g.rowFen[i] = stats.NewFenwick(row)
			g.fallCum[i] = cum
		}
		off += len(r.Edges)
	}
	g.rowOff[n] = uint32(off)
	g.initRow = g.rowIndexOf(m.Initial)

	g.values = make([]int64, len(pairs))
	for i, p := range pairs {
		g.values[i] = p.To
		g.valueRem[i] = p.N
		g.remTotal += uint64(p.N)
	}
	if len(g.values) >= fenwickMin {
		g.valueIdx = make(map[int64]int, len(g.values))
		for i, v := range g.values {
			g.valueIdx[v] = i
		}
		g.valueFen = stats.NewFenwick(g.valueRem)
	}
}

// sortEdgesByTo sorts edges by To: insertion sort for the short lists
// typical of interval-partitioned leaves, a reflection-free generic sort
// above that. Equal keys are coalesced by the caller, so stability is
// irrelevant.
func sortEdgesByTo(edges []Edge) {
	if len(edges) <= 24 {
		for i := 1; i < len(edges); i++ {
			for j := i; j > 0 && edges[j].To < edges[j-1].To; j-- {
				edges[j], edges[j-1] = edges[j-1], edges[j]
			}
		}
		return
	}
	slices.SortFunc(edges, func(a, b Edge) int {
		switch {
		case a.To < b.To:
			return -1
		case a.To > b.To:
			return 1
		}
		return 0
	})
}

// rowIndexOf returns the row index of state from, or -1: a map lookup
// for large models, binary search over the sorted rows for small ones.
func (g *Generator) rowIndexOf(from int64) int {
	if g.rowIdx != nil {
		if i, ok := g.rowIdx[from]; ok {
			return i
		}
		return -1
	}
	return g.m.rowIndex(from)
}

// valueIndexOf returns the index of v in values, or -1.
func (g *Generator) valueIndexOf(v int64) int {
	if g.valueIdx != nil {
		if i, ok := g.valueIdx[v]; ok {
			return i
		}
		return -1
	}
	i := sort.Search(len(g.values), func(i int) bool { return g.values[i] >= v })
	if i < len(g.values) && g.values[i] == v {
		return i
	}
	return -1
}

// takeValue consumes one remaining emission of values[i].
func (g *Generator) takeValue(i int) {
	g.valueRem[i]--
	g.remTotal--
	if g.valueFen != nil {
		g.valueFen.Dec(i)
	}
}

// consumeValue decrements the remaining count of v, redirecting to a
// value that still has emissions left when v is exhausted. Once the
// training length has been fully generated it passes values through
// unchanged.
func (g *Generator) consumeValue(v int64) int64 {
	if g.remTotal == 0 {
		return v
	}
	if i := g.valueIndexOf(v); i >= 0 && g.valueRem[i] > 0 {
		g.takeValue(i)
		return v
	}
	// Redirect: draw among the values that still need emitting, weighted
	// by their remaining counts.
	pick := g.rng.Uint64n(g.remTotal)
	if g.valueFen != nil {
		j := g.valueFen.Find(pick)
		g.takeValue(j)
		return g.values[j]
	}
	for j := range g.values {
		if pick < uint64(g.valueRem[j]) {
			g.takeValue(j)
			return g.values[j]
		}
		pick -= uint64(g.valueRem[j])
	}
	return v
}

// Next returns the next value of the sequence. The first call returns the
// model's initial value; later calls take one Markov transition (or repeat
// the constant).
func (g *Generator) Next() int64 {
	if g.m.Constant {
		return g.m.Value
	}
	if !g.started {
		g.started = true
		g.state = g.consumeValue(g.m.Initial)
		return g.state
	}
	g.state = g.consumeValue(g.step(g.state))
	return g.state
}

// step chooses the next state from cur. It first draws from the remaining
// (strict-convergence) counts; if the row is exhausted it falls back to the
// original training distribution, and if the state never appeared as a
// source in training it restarts from the initial state's row.
func (g *Generator) step(cur int64) int64 {
	ri := g.rowIndexOf(cur)
	if ri < 0 {
		// Terminal training state: restart from the initial state.
		ri = g.initRow
		if ri < 0 {
			return g.m.Initial
		}
	}
	edges := g.m.Rows[ri].Edges
	if total := g.rowTotal[ri]; total > 0 {
		pick := g.rng.Uint64n(total)
		g.rowTotal[ri] = total - 1
		if g.rowFen != nil {
			if f := g.rowFen[ri]; f != nil {
				j := f.Find(pick)
				f.Dec(j)
				return edges[j].To
			}
		}
		rem := g.rem[g.rowOff[ri]:g.rowOff[ri+1]]
		for j, n := range rem {
			if pick < uint64(n) {
				rem[j]--
				return edges[j].To
			}
			pick -= uint64(n)
		}
	}
	// Row exhausted: fall back to the original distribution.
	total := g.fallTotal[ri]
	if total == 0 {
		// A row whose edges all carry zero counts (possible only in a
		// hand-built or corrupted model — Fit never emits one) has no
		// distribution to draw from; self-loop deterministically rather
		// than divide by zero.
		if len(edges) > 0 {
			return edges[0].To
		}
		return g.m.Initial
	}
	pick := g.rng.Uint64n(total)
	if g.fallCum != nil {
		if cum := g.fallCum[ri]; cum != nil {
			j := sort.Search(len(cum), func(i int) bool { return cum[i] > pick })
			return edges[j].To
		}
	}
	for _, e := range edges {
		if pick < uint64(e.N) {
			return e.To
		}
		pick -= uint64(e.N)
	}
	return edges[len(edges)-1].To
}
