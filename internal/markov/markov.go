// Package markov implements the McC model of Mocktails §III-B: each memory
// request feature (delta time, stride, operation, size) within a partition
// is modelled either by a Constant, when the training sequence shows no
// variability, or by a first-order Markov chain over the observed values.
//
// Generation uses strict convergence (Mocktails §III-C, following STM and
// WEST): every observed transition carries a count, and each time a
// transition is taken its remaining count is decremented, so the synthetic
// sequence reproduces the exact multiset of transitions where possible.
package markov

import (
	"cmp"
	"fmt"
	"slices"
	"sort"

	"repro/internal/stats"
)

// Edge is one outgoing Markov transition with its training count.
type Edge struct {
	To int64
	N  uint32
}

// Row holds the outgoing transitions of one state, sorted by To for
// deterministic iteration and serialisation. Rows are a construction
// convenience (see FromRows); the model itself stores the table
// flattened.
type Row struct {
	From  int64
	Edges []Edge
}

// Model is a McC ("Markov chain or Constant") model of one feature.
// The zero value is an empty model; build one with Fit or FromRows.
//
// The transition table is stored as flat parallel arrays rather than
// nested row structures: state i is From[i] (sorted ascending), and its
// outgoing edges occupy To[RowOff[i]:RowOff[i+1]] / N[RowOff[i]:
// RowOff[i+1]], sorted by target. The layout is what the flat profile
// encoding maps directly from disk (package profile), and what the
// Generator binds to without per-row allocations. RowSum, Vals and ValN
// are derived tables (see Finish) that make generator setup
// allocation-free: callers that fill From/RowOff/To/N by hand must call
// Finish before generating.
type Model struct {
	// Constant is true when the feature never changes value in the
	// training sequence; Value holds that value.
	Constant bool
	Value    int64

	// Initial is the first value of the training sequence; generation
	// starts here.
	Initial int64

	// From holds the source states, sorted ascending; RowOff (len
	// len(From)+1) delimits each state's edge span in To and N.
	From   []int64
	RowOff []uint32
	To     []int64
	N      []uint32

	// RowSum[i] is the total training count of row i — the static
	// fallback distribution's normaliser. Vals is the sorted value
	// multiset of the model (every transition target plus the initial
	// value) and ValN each value's multiplicity; strict convergence
	// replays exactly this multiset. All three are derived by Finish.
	RowSum []uint64
	Vals   []int64
	ValN   []uint32
}

// Fit builds a McC model from a training sequence. An empty sequence
// yields a constant-zero model; a sequence whose values are all equal
// yields a Constant model; otherwise a Markov chain with per-transition
// counts is built.
func Fit(seq []int64) Model {
	if len(seq) == 0 {
		return Model{Constant: true}
	}
	constant := true
	for _, v := range seq[1:] {
		if v != seq[0] {
			constant = false
			break
		}
	}
	if constant {
		return Model{Constant: true, Value: seq[0], Initial: seq[0]}
	}
	// Sort the observed (from, to) pairs and coalesce runs: one pass
	// yields the row-major flat table with both rows and edges already
	// in order, without the per-row hash maps the nested builder used.
	type trans struct{ from, to int64 }
	ts := make([]trans, len(seq)-1)
	for i := 1; i < len(seq); i++ {
		ts[i-1] = trans{seq[i-1], seq[i]}
	}
	slices.SortFunc(ts, func(a, b trans) int {
		if c := cmp.Compare(a.from, b.from); c != 0 {
			return c
		}
		return cmp.Compare(a.to, b.to)
	})
	m := Model{Initial: seq[0]}
	m.To = make([]int64, 0, len(ts))
	m.N = make([]uint32, 0, len(ts))
	for i := 0; i < len(ts); {
		j := i
		for j < len(ts) && ts[j] == ts[i] {
			j++
		}
		if len(m.From) == 0 || m.From[len(m.From)-1] != ts[i].from {
			m.From = append(m.From, ts[i].from)
			m.RowOff = append(m.RowOff, uint32(len(m.To)))
		}
		m.To = append(m.To, ts[i].to)
		m.N = append(m.N, uint32(j-i))
		i = j
	}
	m.RowOff = append(m.RowOff, uint32(len(m.To)))
	// Coalescing can leave the edge arrays far below their len(seq)-1
	// capacity — repetitive sequences have few distinct transitions.
	// Reallocate when the slack is material so a retained model costs
	// O(distinct edges), not O(training sequence).
	if cap(m.To)-len(m.To) > len(m.To)/4 {
		m.To = slices.Clone(m.To)
		m.N = slices.Clone(m.N)
	}
	m.Finish()
	return m
}

// FromRows builds a model from nested rows (sorted by From, edges
// sorted by To) — the shape construction-time callers like the privacy
// noising pass naturally produce — and derives the generation tables.
func FromRows(initial int64, rows []Row) Model {
	edges := 0
	for i := range rows {
		edges += len(rows[i].Edges)
	}
	m := Model{Initial: initial}
	m.From = make([]int64, len(rows))
	m.RowOff = make([]uint32, len(rows)+1)
	m.To = make([]int64, 0, edges)
	m.N = make([]uint32, 0, edges)
	for i := range rows {
		m.From[i] = rows[i].From
		m.RowOff[i] = uint32(len(m.To))
		for _, e := range rows[i].Edges {
			m.To = append(m.To, e.To)
			m.N = append(m.N, e.N)
		}
	}
	m.RowOff[len(rows)] = uint32(len(m.To))
	m.Finish()
	return m
}

// Finish derives the generation tables (RowSum, Vals, ValN) from the
// transition table. Fit and FromRows return finished models; callers
// that fill From/RowOff/To/N directly — the profile codec, hand-built
// test models — must call Finish before generating, and again after
// mutating edge counts.
func (m *Model) Finish() {
	if m.Constant {
		m.RowSum, m.Vals, m.ValN = nil, nil, nil
		return
	}
	n := len(m.From)
	m.RowSum = make([]uint64, n)
	for i := 0; i < n; i++ {
		var s uint64
		for j := m.RowOff[i]; j < m.RowOff[i+1]; j++ {
			s += uint64(m.N[j])
		}
		m.RowSum[i] = s
	}
	// The value multiset: each value's in-degree, plus one for the
	// initial value, derived by sorting and coalescing the edge list.
	pairs := make([]Edge, 0, len(m.To)+1)
	for j := range m.To {
		pairs = append(pairs, Edge{To: m.To[j], N: m.N[j]})
	}
	pairs = append(pairs, Edge{To: m.Initial, N: 1})
	sortEdgesByTo(pairs)
	k := 0
	for i := 1; i < len(pairs); i++ {
		if pairs[i].To == pairs[k].To {
			pairs[k].N += pairs[i].N
		} else {
			k++
			pairs[k] = pairs[i]
		}
	}
	pairs = pairs[:k+1]
	m.Vals = make([]int64, len(pairs))
	m.ValN = make([]uint32, len(pairs))
	for i, p := range pairs {
		m.Vals[i] = p.To
		m.ValN[i] = p.N
	}
}

// States returns the number of states in the transition table (0 for a
// Constant model).
func (m *Model) States() int { return len(m.From) }

// Transitions returns the total training transition count.
func (m *Model) Transitions() int {
	n := 0
	for _, c := range m.N {
		n += int(c)
	}
	return n
}

// String summarises the model.
func (m *Model) String() string {
	if m.Constant {
		return fmt.Sprintf("Constant(%d)", m.Value)
	}
	return fmt.Sprintf("Markov(states=%d, transitions=%d, initial=%d)", m.States(), m.Transitions(), m.Initial)
}

// RowAt materialises state i's nested view; for iteration convenience
// in cold paths (tests, dumps) — hot paths index the flat arrays.
func (m *Model) RowAt(i int) Row {
	lo, hi := m.RowOff[i], m.RowOff[i+1]
	edges := make([]Edge, hi-lo)
	for j := range edges {
		edges[j] = Edge{To: m.To[lo+uint32(j)], N: m.N[lo+uint32(j)]}
	}
	return Row{From: m.From[i], Edges: edges}
}

// rowIndex returns the index of state from, or -1.
func (m *Model) rowIndex(from int64) int {
	return rowSearch(m.From, from)
}

// rowSearch binary-searches the sorted state list for from, or -1.
func rowSearch(states []int64, from int64) int {
	i := sort.Search(len(states), func(i int) bool { return states[i] >= from })
	if i < len(states) && states[i] == from {
		return i
	}
	return -1
}

// fenwickMin is the distribution size above which the sampling kernels
// switch from a cached-total linear scan to a Fenwick-tree (mutable
// counts) or prefix-sum (static counts) binary search. Small
// distributions stay linear: the scan fits in a cache line and beats the
// tree's pointer arithmetic. Either path selects the same element for
// the same RNG draw, so the cutoff never changes generated streams.
const fenwickMin = 16

// Arena is scratch memory a Generator's mutable per-stream state is
// carved from. A synthesis run sizes one arena for all its generators
// (see Model.ArenaSize), so generator setup performs no allocations at
// all; Init with a nil arena allocates a private one. Prior contents
// are irrelevant — InitArena fully overwrites what it takes.
type Arena struct {
	U32 []uint32
	U64 []uint64
}

func (a *Arena) take32(n int) []uint32 {
	s := a.U32[:n:n]
	a.U32 = a.U32[n:]
	return s
}

func (a *Arena) take64(n int) []uint64 {
	s := a.U64[:n:n]
	a.U64 = a.U64[n:]
	return s
}

// ArenaSize returns how many uint32 and uint64 arena elements a
// generator for m consumes: the strict-convergence remaining counts,
// cached row totals, and — for rows and value sets at or above
// fenwickMin — the Fenwick trees and static prefix sums.
func (m *Model) ArenaSize() (n32, n64 int) {
	if m.Constant {
		return 0, 0
	}
	n := len(m.From)
	n32 = len(m.To) + len(m.ValN)
	n64 = n
	maxRow, bigEdges, bigRows := 0, 0, 0
	for i := 0; i < n; i++ {
		e := int(m.RowOff[i+1] - m.RowOff[i])
		if e > maxRow {
			maxRow = e
		}
		if e >= fenwickMin {
			bigEdges += e
			bigRows++
		}
	}
	if maxRow >= fenwickMin {
		n32 += n                    // fenIdx
		n64 += 2*bigEdges + bigRows // per big row: tree (e+1) + prefix sums (e)
	}
	if len(m.Vals) >= fenwickMin {
		n64 += len(m.Vals) + 1
	}
	return n32, n64
}

// noFen marks a row without a Fenwick block in Generator.fenIdx.
const noFen = ^uint32(0)

// Generator produces a value sequence from a Model under strict
// convergence: per-transition counts steer the ordering, and per-value
// remaining counts guarantee that generating exactly the training length
// reproduces the exact multiset of values — the property the paper relies
// on ("strict convergence ensures that only two 128 sizes and ten 64
// sizes are generated"). A Generator is single-use; create a fresh one
// per synthesis run.
//
// A Generator holds slice views of the model's immutable tables (not a
// *Model — the model struct handed to Init may be a transient view over
// a flat profile buffer) plus mutable strict-convergence state carved
// from an Arena. Sampling is O(1) amortised per draw for small rows and
// O(log n) for large ones.
type Generator struct {
	// rng is held by value: a Generator owns its RNG stream outright
	// (every caller hands it a dedicated fork), and a self-contained
	// struct lets short-lived generators live on the stack.
	rng     stats.RNG
	state   int64
	started bool

	constant bool
	value    int64
	initial  int64

	// Immutable model views (shared with the Model or the flat buffer
	// behind it): states, edge spans, targets, training counts, row
	// totals, and the sorted value multiset.
	from      []int64
	mOff      []uint32
	to        []int64
	eN        []uint32
	fallTotal []uint64
	values    []int64

	// initRow caches the initial state's row (-1 when the initial value
	// never occurs as a source).
	initRow int

	// Mutable strict-convergence state, arena-carved. rem holds each
	// edge's remaining count (edge-major, spans delimited by mOff);
	// rowTotal caches each row's remaining sum. Rows with >= fenwickMin
	// edges keep their mutable counts in a Fenwick tree and their static
	// distribution as inclusive prefix sums, packed per row into fenData
	// at offset fenIdx[row] (noFen for small rows); fenIdx is nil when
	// no row is that large.
	rem      []uint32
	rowTotal []uint64
	fenIdx   []uint32
	fenData  []uint64

	// Value-level strict convergence: how many emissions of each value
	// remain, their total, and — for >= fenwickMin values — a Fenwick
	// tree over the remaining counts.
	valueRem []uint32
	valueFen []uint64
	remTotal uint64
}

// NewGenerator returns a generator for m seeded with rng's current
// state; the generator draws from its own copy of rng (see Init).
func NewGenerator(m *Model, rng *stats.RNG) *Generator {
	g := new(Generator)
	g.Init(m, rng)
	return g
}

// Init prepares g to generate from m with a private arena; see
// InitArena.
func (g *Generator) Init(m *Model, rng *stats.RNG) { g.InitArena(m, rng, nil) }

// InitArena prepares g to generate from m, copying rng's state as its
// private draw stream and replacing any previous state. The mutable
// per-stream tables are carved from ar — callers that build many
// generators (four per leaf per synthesis) size one arena for all of
// them and pay zero allocations here; a nil ar allocates a private
// arena. g retains m's table slices but not m itself, so m may be a
// stack-transient view as long as the arrays it points at outlive g.
func (g *Generator) InitArena(m *Model, rng *stats.RNG, ar *Arena) {
	*g = Generator{rng: *rng}
	if m.Constant {
		g.constant, g.value = true, m.Value
		return
	}
	if ar == nil {
		n32, n64 := m.ArenaSize()
		ar = &Arena{U32: make([]uint32, n32), U64: make([]uint64, n64)}
	}
	n := len(m.From)
	g.initial = m.Initial
	g.from, g.mOff, g.to, g.eN = m.From, m.RowOff, m.To, m.N
	g.fallTotal = m.RowSum
	g.values = m.Vals

	g.rem = ar.take32(len(m.To))
	copy(g.rem, m.N)
	g.valueRem = ar.take32(len(m.ValN))
	copy(g.valueRem, m.ValN)
	g.rowTotal = ar.take64(n)
	copy(g.rowTotal, m.RowSum)

	maxRow, bigEdges, bigRows := 0, 0, 0
	for i := 0; i < n; i++ {
		e := int(m.RowOff[i+1] - m.RowOff[i])
		if e > maxRow {
			maxRow = e
		}
		if e >= fenwickMin {
			bigEdges += e
			bigRows++
		}
	}
	if maxRow >= fenwickMin {
		g.fenIdx = ar.take32(n)
		g.fenData = ar.take64(2*bigEdges + bigRows)
		base := 0
		for i := 0; i < n; i++ {
			lo, hi := m.RowOff[i], m.RowOff[i+1]
			e := int(hi - lo)
			if e < fenwickMin {
				g.fenIdx[i] = noFen
				continue
			}
			g.fenIdx[i] = uint32(base)
			stats.FenBuild(g.fenData[base:base+e+1], m.N[lo:hi])
			cum := g.fenData[base+e+1 : base+2*e+1]
			var s uint64
			for j := 0; j < e; j++ {
				s += uint64(m.N[lo+uint32(j)])
				cum[j] = s
			}
			base += 2*e + 1
		}
	}
	for _, c := range g.valueRem {
		g.remTotal += uint64(c)
	}
	if len(g.values) >= fenwickMin {
		g.valueFen = ar.take64(len(g.values) + 1)
		stats.FenBuild(g.valueFen, g.valueRem)
	}
	g.initRow = rowSearch(g.from, g.initial)
}

// sortEdgesByTo sorts edges by To: insertion sort for the short lists
// typical of interval-partitioned leaves, a reflection-free generic sort
// above that. Equal keys are coalesced by the caller, so stability is
// irrelevant.
func sortEdgesByTo(edges []Edge) {
	if len(edges) <= 24 {
		for i := 1; i < len(edges); i++ {
			for j := i; j > 0 && edges[j].To < edges[j-1].To; j-- {
				edges[j], edges[j-1] = edges[j-1], edges[j]
			}
		}
		return
	}
	slices.SortFunc(edges, func(a, b Edge) int {
		switch {
		case a.To < b.To:
			return -1
		case a.To > b.To:
			return 1
		}
		return 0
	})
}

// valueIndexOf returns the index of v in values, or -1.
func (g *Generator) valueIndexOf(v int64) int {
	i := sort.Search(len(g.values), func(i int) bool { return g.values[i] >= v })
	if i < len(g.values) && g.values[i] == v {
		return i
	}
	return -1
}

// takeValue consumes one remaining emission of values[i].
func (g *Generator) takeValue(i int) {
	g.valueRem[i]--
	g.remTotal--
	if g.valueFen != nil {
		stats.FenDec(g.valueFen, i)
	}
}

// consumeValue decrements the remaining count of v, redirecting to a
// value that still has emissions left when v is exhausted. Once the
// training length has been fully generated it passes values through
// unchanged.
func (g *Generator) consumeValue(v int64) int64 {
	if g.remTotal == 0 {
		return v
	}
	if i := g.valueIndexOf(v); i >= 0 && g.valueRem[i] > 0 {
		g.takeValue(i)
		return v
	}
	// Redirect: draw among the values that still need emitting, weighted
	// by their remaining counts.
	pick := g.rng.Uint64n(g.remTotal)
	if g.valueFen != nil {
		j := stats.FenFind(g.valueFen, pick)
		g.takeValue(j)
		return g.values[j]
	}
	for j := range g.values {
		if pick < uint64(g.valueRem[j]) {
			g.takeValue(j)
			return g.values[j]
		}
		pick -= uint64(g.valueRem[j])
	}
	return v
}

// Next returns the next value of the sequence. The first call returns the
// model's initial value; later calls take one Markov transition (or repeat
// the constant).
func (g *Generator) Next() int64 {
	if g.constant {
		return g.value
	}
	if !g.started {
		g.started = true
		g.state = g.consumeValue(g.initial)
		return g.state
	}
	g.state = g.consumeValue(g.step(g.state))
	return g.state
}

// step chooses the next state from cur. It first draws from the remaining
// (strict-convergence) counts; if the row is exhausted it falls back to the
// original training distribution, and if the state never appeared as a
// source in training it restarts from the initial state's row.
func (g *Generator) step(cur int64) int64 {
	ri := rowSearch(g.from, cur)
	if ri < 0 {
		// Terminal training state: restart from the initial state.
		ri = g.initRow
		if ri < 0 {
			return g.initial
		}
	}
	lo, hi := g.mOff[ri], g.mOff[ri+1]
	e := int(hi - lo)
	if total := g.rowTotal[ri]; total > 0 {
		pick := g.rng.Uint64n(total)
		g.rowTotal[ri] = total - 1
		if g.fenIdx != nil {
			if base := g.fenIdx[ri]; base != noFen {
				tree := g.fenData[base : int(base)+e+1]
				j := stats.FenFind(tree, pick)
				if j >= e {
					// Reachable only when a stored RowSum overstates the
					// actual counts (corrupted or hand-built model);
					// clamp instead of indexing past the row.
					j = e - 1
				}
				stats.FenDec(tree, j)
				return g.to[lo+uint32(j)]
			}
		}
		rem := g.rem[lo:hi]
		for j, n := range rem {
			if pick < uint64(n) {
				rem[j]--
				return g.to[lo+uint32(j)]
			}
			pick -= uint64(n)
		}
	}
	// Row exhausted: fall back to the original distribution.
	total := g.fallTotal[ri]
	if total == 0 || e == 0 {
		// A row whose edges all carry zero counts, or a row total with no
		// edges behind it (possible only in a hand-built or corrupted
		// model — Fit never emits either) has no distribution to draw
		// from; self-loop deterministically rather than divide by zero or
		// index past the row.
		if e > 0 {
			return g.to[lo]
		}
		return g.initial
	}
	pick := g.rng.Uint64n(total)
	if g.fenIdx != nil {
		if base := g.fenIdx[ri]; base != noFen {
			cum := g.fenData[int(base)+e+1 : int(base)+2*e+1]
			j := sort.Search(len(cum), func(i int) bool { return cum[i] > pick })
			if j >= e {
				j = e - 1
			}
			return g.to[lo+uint32(j)]
		}
	}
	for j := lo; j < hi; j++ {
		if pick < uint64(g.eN[j]) {
			return g.to[j]
		}
		pick -= uint64(g.eN[j])
	}
	return g.to[hi-1]
}
