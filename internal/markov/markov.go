// Package markov implements the McC model of Mocktails §III-B: each memory
// request feature (delta time, stride, operation, size) within a partition
// is modelled either by a Constant, when the training sequence shows no
// variability, or by a first-order Markov chain over the observed values.
//
// Generation uses strict convergence (Mocktails §III-C, following STM and
// WEST): every observed transition carries a count, and each time a
// transition is taken its remaining count is decremented, so the synthetic
// sequence reproduces the exact multiset of transitions where possible.
package markov

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Edge is one outgoing Markov transition with its training count.
type Edge struct {
	To int64
	N  uint32
}

// Row holds the outgoing transitions of one state, sorted by To for
// deterministic iteration and serialisation.
type Row struct {
	From  int64
	Edges []Edge
}

// Model is a McC ("Markov chain or Constant") model of one feature.
// The zero value is an empty model; build one with Fit.
type Model struct {
	// Constant is true when the feature never changes value in the
	// training sequence; Value holds that value.
	Constant bool
	Value    int64

	// Initial is the first value of the training sequence; generation
	// starts here.
	Initial int64
	// Rows holds the transition table, sorted by From.
	Rows []Row
}

// Fit builds a McC model from a training sequence. An empty sequence
// yields a constant-zero model; a sequence whose values are all equal
// yields a Constant model; otherwise a Markov chain with per-transition
// counts is built.
func Fit(seq []int64) Model {
	if len(seq) == 0 {
		return Model{Constant: true}
	}
	constant := true
	for _, v := range seq[1:] {
		if v != seq[0] {
			constant = false
			break
		}
	}
	if constant {
		return Model{Constant: true, Value: seq[0], Initial: seq[0]}
	}
	counts := make(map[int64]map[int64]uint32)
	for i := 1; i < len(seq); i++ {
		from, to := seq[i-1], seq[i]
		row := counts[from]
		if row == nil {
			row = make(map[int64]uint32)
			counts[from] = row
		}
		row[to]++
	}
	m := Model{Initial: seq[0]}
	m.Rows = make([]Row, 0, len(counts))
	for from, row := range counts {
		edges := make([]Edge, 0, len(row))
		for to, n := range row {
			edges = append(edges, Edge{To: to, N: n})
		}
		sort.Slice(edges, func(i, j int) bool { return edges[i].To < edges[j].To })
		m.Rows = append(m.Rows, Row{From: from, Edges: edges})
	}
	sort.Slice(m.Rows, func(i, j int) bool { return m.Rows[i].From < m.Rows[j].From })
	return m
}

// States returns the number of states in the transition table (0 for a
// Constant model).
func (m *Model) States() int { return len(m.Rows) }

// Transitions returns the total training transition count.
func (m *Model) Transitions() int {
	n := 0
	for _, r := range m.Rows {
		for _, e := range r.Edges {
			n += int(e.N)
		}
	}
	return n
}

// String summarises the model.
func (m *Model) String() string {
	if m.Constant {
		return fmt.Sprintf("Constant(%d)", m.Value)
	}
	return fmt.Sprintf("Markov(states=%d, transitions=%d, initial=%d)", m.States(), m.Transitions(), m.Initial)
}

// rowIndex returns the index of state from in Rows, or -1.
func (m *Model) rowIndex(from int64) int {
	i := sort.Search(len(m.Rows), func(i int) bool { return m.Rows[i].From >= from })
	if i < len(m.Rows) && m.Rows[i].From == from {
		return i
	}
	return -1
}

// Generator produces a value sequence from a Model under strict
// convergence: per-transition counts steer the ordering, and per-value
// remaining counts guarantee that generating exactly the training length
// reproduces the exact multiset of values — the property the paper relies
// on ("strict convergence ensures that only two 128 sizes and ten 64
// sizes are generated"). A Generator is single-use; create a fresh one
// per synthesis run.
type Generator struct {
	m         *Model
	rng       *stats.RNG
	state     int64
	started   bool
	remaining [][]uint32 // per-row remaining edge counts

	// Value-level strict convergence: the sorted training values and how
	// many emissions of each remain.
	values   []int64
	valueRem []uint32
	remTotal uint64
}

// NewGenerator returns a generator for m drawing from rng.
func NewGenerator(m *Model, rng *stats.RNG) *Generator {
	g := &Generator{m: m, rng: rng}
	if !m.Constant {
		g.remaining = make([][]uint32, len(m.Rows))
		for i, r := range m.Rows {
			rem := make([]uint32, len(r.Edges))
			for j, e := range r.Edges {
				rem[j] = e.N
			}
			g.remaining[i] = rem
		}
		g.initValueCounts()
	}
	return g
}

// initValueCounts derives, from the transition table, how many times each
// value appears in the training sequence: its in-degree plus one for the
// initial value.
func (g *Generator) initValueCounts() {
	counts := make(map[int64]uint32)
	for _, r := range g.m.Rows {
		for _, e := range r.Edges {
			counts[e.To] += e.N
		}
	}
	counts[g.m.Initial]++
	g.values = make([]int64, 0, len(counts))
	for v := range counts {
		g.values = append(g.values, v)
	}
	sort.Slice(g.values, func(i, j int) bool { return g.values[i] < g.values[j] })
	g.valueRem = make([]uint32, len(g.values))
	for i, v := range g.values {
		g.valueRem[i] = counts[v]
		g.remTotal += uint64(counts[v])
	}
}

// consumeValue decrements the remaining count of v, redirecting to a
// value that still has emissions left when v is exhausted. Once the
// training length has been fully generated it passes values through
// unchanged.
func (g *Generator) consumeValue(v int64) int64 {
	if g.remTotal == 0 {
		return v
	}
	i := sort.Search(len(g.values), func(i int) bool { return g.values[i] >= v })
	if i < len(g.values) && g.values[i] == v && g.valueRem[i] > 0 {
		g.valueRem[i]--
		g.remTotal--
		return v
	}
	// Redirect: draw among the values that still need emitting, weighted
	// by their remaining counts.
	pick := g.rng.Uint64n(g.remTotal)
	for j := range g.values {
		if pick < uint64(g.valueRem[j]) {
			g.valueRem[j]--
			g.remTotal--
			return g.values[j]
		}
		pick -= uint64(g.valueRem[j])
	}
	return v
}

// Next returns the next value of the sequence. The first call returns the
// model's initial value; later calls take one Markov transition (or repeat
// the constant).
func (g *Generator) Next() int64 {
	if g.m.Constant {
		return g.m.Value
	}
	if !g.started {
		g.started = true
		g.state = g.consumeValue(g.m.Initial)
		return g.state
	}
	g.state = g.consumeValue(g.step(g.state))
	return g.state
}

// step chooses the next state from cur. It first draws from the remaining
// (strict-convergence) counts; if the row is exhausted it falls back to the
// original training distribution, and if the state never appeared as a
// source in training it restarts from the initial state's row.
func (g *Generator) step(cur int64) int64 {
	ri := g.m.rowIndex(cur)
	if ri < 0 {
		// Terminal training state: restart from the initial state.
		ri = g.m.rowIndex(g.m.Initial)
		if ri < 0 {
			return g.m.Initial
		}
	}
	row := g.m.Rows[ri]
	rem := g.remaining[ri]
	var total uint64
	for _, n := range rem {
		total += uint64(n)
	}
	if total > 0 {
		pick := g.rng.Uint64n(total)
		for j, n := range rem {
			if pick < uint64(n) {
				rem[j]--
				return row.Edges[j].To
			}
			pick -= uint64(n)
		}
	}
	// Row exhausted: fall back to the original distribution.
	total = 0
	for _, e := range row.Edges {
		total += uint64(e.N)
	}
	pick := g.rng.Uint64n(total)
	for _, e := range row.Edges {
		if pick < uint64(e.N) {
			return e.To
		}
		pick -= uint64(e.N)
	}
	return row.Edges[len(row.Edges)-1].To
}
