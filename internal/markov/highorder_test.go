package markov

import (
	"testing"

	"repro/internal/stats"
)

func genH(m *HModel, n int, seed uint64) []int64 {
	g := NewHGenerator(m, stats.NewRNG(seed))
	out := make([]int64, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

func TestFitOrderEmptyAndConstant(t *testing.T) {
	m := FitOrder(nil, 2)
	if !m.Constant {
		t.Error("empty sequence not constant")
	}
	m = FitOrder([]int64{5, 5, 5}, 2)
	if !m.Constant || m.Value != 5 {
		t.Errorf("constant fit = %+v", m)
	}
	if got := genH(&m, 3, 1); got[0] != 5 || got[2] != 5 {
		t.Errorf("constant generation = %v", got)
	}
}

func TestFitOrderClampsK(t *testing.T) {
	m := FitOrder([]int64{1, 2, 1}, 0)
	if m.Order != 1 {
		t.Errorf("Order = %d, want clamped to 1", m.Order)
	}
}

func TestOrder1MatchesFirstOrderBehaviour(t *testing.T) {
	seq := []int64{1, 2, 3, 1, 2, 3, 1, 2, 3}
	m := FitOrder(seq, 1)
	got := genH(&m, len(seq), 7)
	for i := range seq {
		if got[i] != seq[i] {
			t.Fatalf("order-1 cyclic: got[%d]=%d want %d", i, got[i], seq[i])
		}
	}
}

func TestOrder2ResolvesAmbiguity(t *testing.T) {
	// Runs of two 7s followed by a 9: after one 7 the successor is
	// ambiguous, but the previous TWO values disambiguate ((7,7) -> 9,
	// (9,7) -> 7). Order-2 must reproduce the period-3 pattern exactly;
	// order-1 generally cannot.
	var seq []int64
	for i := 0; i < 12; i++ {
		seq = append(seq, []int64{7, 7, 9}...)
	}
	m2 := FitOrder(seq, 2)
	got := genH(&m2, len(seq), 3)
	for i := range seq {
		if got[i] != seq[i] {
			t.Fatalf("order-2: got[%d]=%d want %d", i, got[i], seq[i])
		}
	}
}

func TestOrder3ResolvesLongerPeriod(t *testing.T) {
	// Period-4 runs: 7 7 7 9 repeated; after "7 7" the successor depends
	// on the value before, so order-3 captures it exactly.
	var seq []int64
	for i := 0; i < 20; i++ {
		seq = append(seq, 7, 7, 7, 9)
	}
	m := FitOrder(seq, 3)
	got := genH(&m, len(seq), 11)
	for i := range seq {
		if got[i] != seq[i] {
			t.Fatalf("order-3: got[%d]=%d want %d", i, got[i], seq[i])
		}
	}
}

func TestHGeneratorPrefixEmittedFirst(t *testing.T) {
	seq := []int64{4, 5, 6, 4, 5, 6, 4}
	m := FitOrder(seq, 3)
	got := genH(&m, 3, 1)
	for i, want := range []int64{4, 5, 6} {
		if got[i] != want {
			t.Errorf("prefix[%d] = %d, want %d", i, got[i], want)
		}
	}
}

func TestHGeneratorOnlyTrainedValues(t *testing.T) {
	seq := []int64{1, 4, 2, 8, 5, 7, 1, 4, 2}
	m := FitOrder(seq, 2)
	valid := map[int64]bool{}
	for _, v := range seq {
		valid[v] = true
	}
	for _, v := range genH(&m, 100, 13) {
		if !valid[v] {
			t.Fatalf("generated untrained value %d", v)
		}
	}
}

func TestHGeneratorDeterministicPerSeed(t *testing.T) {
	seq := []int64{1, 2, 2, 3, 1, 3, 2, 1}
	m := FitOrder(seq, 2)
	a := genH(&m, 50, 5)
	b := genH(&m, 50, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestHModelStates(t *testing.T) {
	m := FitOrder([]int64{1, 2, 1, 2, 1}, 2)
	if m.States() == 0 {
		t.Error("no states for varying sequence")
	}
	c := FitOrder([]int64{1, 1}, 2)
	if c.States() != 0 {
		t.Error("constant model has states")
	}
}

func TestHigherOrderCostsMoreStates(t *testing.T) {
	rng := stats.NewRNG(3)
	seq := make([]int64, 500)
	for i := range seq {
		seq[i] = int64(rng.Intn(5))
	}
	m1 := FitOrder(seq, 1)
	m3 := FitOrder(seq, 3)
	if m3.States() <= m1.States() {
		t.Errorf("order-3 states %d not more than order-1 %d", m3.States(), m1.States())
	}
}

func TestEncodeStateDistinct(t *testing.T) {
	if encodeState([]int64{1, 2}) == encodeState([]int64{2, 1}) {
		t.Error("state encodings collide on order")
	}
	if encodeState([]int64{1}) == encodeState([]int64{1, 1}) {
		t.Error("state encodings collide on length")
	}
	if encodeState([]int64{-1}) == encodeState([]int64{1}) {
		t.Error("state encodings collide on sign")
	}
}
