package markov_test

import (
	"fmt"

	"repro/internal/markov"
	"repro/internal/stats"
)

// Example shows the McC model choosing between a Constant and a Markov
// chain, and strict convergence reproducing a deterministic pattern.
func Example() {
	constant := markov.Fit([]int64{64, 64, 64, 64})
	fmt.Println(constant.String())

	cyclic := markov.Fit([]int64{1, 2, 3, 1, 2, 3, 1})
	fmt.Println(cyclic.String())

	g := markov.NewGenerator(&cyclic, stats.NewRNG(7))
	out := make([]int64, 7)
	for i := range out {
		out[i] = g.Next()
	}
	fmt.Println(out)
	// Output:
	// Constant(64)
	// Markov(states=3, transitions=6, initial=1)
	// [1 2 3 1 2 3 1]
}
