package markov

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// checkStrictConvergence fits seq, generates exactly len(seq) values and
// reports whether the multiset of generated values equals the multiset of
// training values — the strict-convergence guarantee of §III-C.
func checkStrictConvergence(t *testing.T, seq []int64, seed uint64) bool {
	t.Helper()
	m := Fit(seq)
	g := NewGenerator(&m, stats.NewRNG(seed))
	got := make(map[int64]int, len(seq))
	for i := 0; i < len(seq); i++ {
		got[g.Next()]++
	}
	return equalCounts(got, multiset(seq))
}

// TestStrictConvergenceProperty: for randomized sequences of varying
// alphabet size and length, generating exactly the training length from
// Fit(seq) reproduces the exact multiset of values of seq.
func TestStrictConvergenceProperty(t *testing.T) {
	check := func(raw []int16, alphabet uint8, seed uint64) bool {
		if len(raw) == 0 {
			return true
		}
		a := int64(alphabet%50) + 2
		seq := make([]int64, len(raw))
		for i, v := range raw {
			seq[i] = int64(v) % a
		}
		return checkStrictConvergence(t, seq, seed)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestStrictConvergenceLargeAlphabet forces the Fenwick value-redirect
// path (>= fenwickMin distinct values) under heavy redirection pressure.
func TestStrictConvergenceLargeAlphabet(t *testing.T) {
	rng := stats.NewRNG(99)
	for trial := 0; trial < 20; trial++ {
		n := 100 + rng.Intn(2000)
		seq := randomSeq(rng, n, 20+rng.Intn(300))
		if !checkStrictConvergence(t, seq, rng.Uint64()) {
			t.Fatalf("trial %d: generated multiset diverged from training multiset", trial)
		}
	}
}

// FuzzStrictConvergence fuzzes the same property over arbitrary byte
// strings interpreted as value sequences.
func FuzzStrictConvergence(f *testing.F) {
	f.Add([]byte{1, 2, 1, 2, 9}, uint64(5))
	f.Add([]byte{0}, uint64(0))
	f.Add([]byte{7, 7, 7, 7}, uint64(3))
	f.Add([]byte("mocktails strict convergence"), uint64(42))
	f.Fuzz(func(t *testing.T, raw []byte, seed uint64) {
		if len(raw) == 0 || len(raw) > 4096 {
			t.Skip()
		}
		seq := make([]int64, len(raw))
		for i, b := range raw {
			seq[i] = int64(b)
		}
		if !checkStrictConvergence(t, seq, seed) {
			t.Fatalf("strict convergence violated for seq=%v seed=%d", seq, seed)
		}
	})
}

// TestStepZeroCountRowFallsBackSafely pins the defensive guard for rows
// whose edges all carry zero counts: Fit never produces one, but a
// hand-built or deserialised model can, and the old fallback divided by
// a zero total. Generation must continue deterministically, not panic.
func TestStepZeroCountRowFallsBackSafely(t *testing.T) {
	m := FromRows(1, []Row{
		{From: 1, Edges: []Edge{{To: 2, N: 0}, {To: 3, N: 0}}},
		{From: 2, Edges: []Edge{{To: 1, N: 1}}},
	})
	g := NewGenerator(&m, stats.NewRNG(4))
	for i := 0; i < 50; i++ {
		v := g.Next()
		if v != 1 && v != 2 && v != 3 {
			t.Fatalf("draw %d produced untrained value %d", i, v)
		}
	}
}

// TestStepZeroCountEdgelessRow covers the same guard when the row has no
// edges at all.
func TestStepZeroCountEdgelessRow(t *testing.T) {
	m := FromRows(5, []Row{{From: 5, Edges: nil}})
	g := NewGenerator(&m, stats.NewRNG(8))
	for i := 0; i < 20; i++ {
		if v := g.Next(); v != 5 {
			t.Fatalf("edgeless model produced %d, want initial 5", v)
		}
	}
}
