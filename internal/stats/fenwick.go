package stats

// Fenwick is a binary indexed tree over non-negative integer weights,
// used by the Markov sampling kernels to draw from a mutable discrete
// distribution in O(log n) instead of a linear scan. Find selects
// exactly the element a left-to-right linear scan over the weights would
// select for the same pick, so replacing a scan with a Fenwick draw
// leaves generated streams bit-identical.
type Fenwick struct {
	// tree holds the classic 1-indexed partial sums; tree[0] is unused.
	tree []uint64
	// hibit is the largest power of two <= len(tree)-1, the starting
	// probe width for Find's binary descent.
	hibit int
}

// NewFenwick builds a tree over the given weights in O(n).
func NewFenwick(weights []uint32) *Fenwick {
	n := len(weights)
	f := &Fenwick{tree: make([]uint64, n+1)}
	for i, w := range weights {
		j := i + 1
		f.tree[j] += uint64(w)
		if p := j + (j & -j); p <= n {
			f.tree[p] += f.tree[j]
		}
	}
	for f.hibit = 1; f.hibit<<1 <= n; f.hibit <<= 1 {
	}
	return f
}

// Len returns the number of weights.
func (f *Fenwick) Len() int { return len(f.tree) - 1 }

// Add adds delta to the weight at index i (0-based). The weight must not
// go negative.
func (f *Fenwick) Add(i int, delta uint64) {
	for j := i + 1; j < len(f.tree); j += j & -j {
		f.tree[j] += delta
	}
}

// Dec decreases the weight at index i (0-based) by one.
func (f *Fenwick) Dec(i int) {
	for j := i + 1; j < len(f.tree); j += j & -j {
		f.tree[j]--
	}
}

// Prefix returns the sum of the first i weights (indices 0..i-1).
func (f *Fenwick) Prefix(i int) uint64 {
	var s uint64
	for j := i; j > 0; j -= j & -j {
		s += f.tree[j]
	}
	return s
}

// Total returns the sum of all weights.
func (f *Fenwick) Total() uint64 { return f.Prefix(f.Len()) }

// Find returns the smallest index i whose cumulative weight
// (weights[0]+...+weights[i]) exceeds pick: the element a weighted
// linear scan would select. pick must be < Total(); zero-weight
// elements are never selected.
func (f *Fenwick) Find(pick uint64) int {
	pos := 0
	for b := f.hibit; b > 0; b >>= 1 {
		if next := pos + b; next < len(f.tree) && f.tree[next] <= pick {
			pos = next
			pick -= f.tree[next]
		}
	}
	return pos
}

// The free-function kernels below operate on a caller-provided tree
// slice (classic 1-indexed layout, tree[0] unused, len = weights+1)
// instead of a heap-allocated Fenwick value. They exist for callers
// that carve many small trees out of one arena — a synthesis run builds
// one tree per large Markov row — where per-tree allocations and
// pointer indirection would dominate. Semantics match the methods
// above exactly.

// FenBuild initialises tree (len(weights)+1 elements, any prior
// contents) with the partial sums of weights in O(n).
func FenBuild(tree []uint64, weights []uint32) {
	n := len(weights)
	tree[0] = 0
	for i := range weights {
		tree[i+1] = 0
	}
	for i, w := range weights {
		j := i + 1
		tree[j] += uint64(w)
		if p := j + (j & -j); p <= n {
			tree[p] += tree[j]
		}
	}
}

// FenDec decreases the weight at index i (0-based) by one.
func FenDec(tree []uint64, i int) {
	for j := i + 1; j < len(tree); j += j & -j {
		tree[j]--
	}
}

// FenFind is Find over a caller-provided tree: the smallest index whose
// cumulative weight exceeds pick. The probe width is recomputed from
// the tree length; pick must be below the tree's total.
func FenFind(tree []uint64, pick uint64) int {
	hibit := 1
	for hibit<<1 <= len(tree)-1 {
		hibit <<= 1
	}
	pos := 0
	for b := hibit; b > 0; b >>= 1 {
		if next := pos + b; next < len(tree) && tree[next] <= pick {
			pos = next
			pick -= tree[next]
		}
	}
	return pos
}
