// Package stats provides the deterministic random-number generator,
// histogram, and error-metric utilities shared by the workload generators,
// the statistical models, and the evaluation harness.
package stats

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via splitmix64). Every stochastic component in the
// repository draws from an explicitly seeded RNG so that all experiments
// are reproducible bit-for-bit.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from a single 64-bit seed using
// splitmix64, which guarantees a well-mixed non-zero state for any seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed resets r to the state NewRNG(seed) would produce, without
// allocating. It lets callers that fork many short-lived sub-generators
// (one per leaf per synthesis) keep them as values: recording
// parent.Uint64() and Reseed-ing a value RNG with it is identical to
// parent.Fork().
func (r *RNG) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n with n == 0")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Range returns a uniform integer in [lo, hi]. It panics if hi < lo.
func (r *RNG) Range(lo, hi int) int {
	if hi < lo {
		panic("stats: Range with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Geometric returns a geometrically distributed integer >= 1 with success
// probability p in (0, 1]; the mean is 1/p. Values are capped at 1<<20 to
// bound pathological draws.
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		panic("stats: Geometric with p <= 0")
	}
	n := 1
	for !r.Bool(p) && n < 1<<20 {
		n++
	}
	return n
}

// Fork returns a new RNG deterministically derived from this one, for
// handing independent streams to sub-generators.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }
