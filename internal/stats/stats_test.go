package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 equal draws", same)
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Errorf("zero seed produced only %d distinct values", len(seen))
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestUint64nBounds(t *testing.T) {
	r := NewRNG(4)
	for i := 0; i < 10000; i++ {
		if v := r.Uint64n(13); v >= 13 {
			t.Fatalf("Uint64n(13) = %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(6)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", p)
	}
}

func TestRangeInclusive(t *testing.T) {
	r := NewRNG(7)
	seenLo, seenHi := false, false
	for i := 0; i < 10000; i++ {
		v := r.Range(5, 8)
		if v < 5 || v > 8 {
			t.Fatalf("Range(5,8) = %d", v)
		}
		if v == 5 {
			seenLo = true
		}
		if v == 8 {
			seenHi = true
		}
	}
	if !seenLo || !seenHi {
		t.Error("Range never produced an endpoint")
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(8)
	sum := 0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Geometric(0.25)
	}
	mean := float64(sum) / n
	if math.Abs(mean-4) > 0.1 {
		t.Errorf("Geometric(0.25) mean = %v, want ~4", mean)
	}
	if NewRNG(1).Geometric(1) != 1 {
		t.Error("Geometric(1) != 1")
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRNG(9)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() && f1.Uint64() == f2.Uint64() {
		t.Error("forked RNGs appear identical")
	}
}

func TestPercentError(t *testing.T) {
	cases := []struct {
		measured, reference, want float64
	}{
		{110, 100, 10},
		{90, 100, 10},
		{0, 0, 0},
		{5, 0, 100},
		{100, 100, 0},
		{50, -100, 150},
	}
	for _, c := range cases {
		if got := PercentError(c.measured, c.reference); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("PercentError(%v,%v) = %v, want %v", c.measured, c.reference, got, c.want)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
	got := GeoMean([]float64{2, 8})
	if math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	// Zeros are clamped, not fatal.
	if v := GeoMean([]float64{0, 0}); v <= 0 || v > 0.01 {
		t.Errorf("GeoMean(0,0) = %v", v)
	}
}

func TestMeanVariance(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty Mean/Variance not 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); math.Abs(m-5) > 1e-9 {
		t.Errorf("Mean = %v", m)
	}
	if v := Variance(xs); math.Abs(v-4) > 1e-9 {
		t.Errorf("Variance = %v, want 4", v)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Total() != 0 || h.Max() != 0 {
		t.Error("empty histogram stats nonzero")
	}
	for _, v := range []int{1, 2, 2, 3} {
		h.Add(v)
	}
	if h.Total() != 4 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Count(2) != 2 {
		t.Errorf("Count(2) = %d", h.Count(2))
	}
	if math.Abs(h.Mean()-2) > 1e-9 {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.Max() != 3 {
		t.Errorf("Max = %d", h.Max())
	}
	vals := h.Values()
	if len(vals) != 3 || vals[0] != 1 || vals[2] != 3 {
		t.Errorf("Values = %v", vals)
	}
}

func TestHistogramDistance(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	if a.Distance(b) != 0 {
		t.Error("two empty histograms should have distance 0")
	}
	a.Add(1)
	if d := a.Distance(b); d != 2 {
		t.Errorf("empty-vs-nonempty distance = %v, want 2", d)
	}
	b.Add(1)
	if d := a.Distance(b); d != 0 {
		t.Errorf("identical distance = %v", d)
	}
	c := NewHistogram()
	c.Add(9)
	if d := a.Distance(c); math.Abs(d-2) > 1e-9 {
		t.Errorf("disjoint distance = %v, want 2", d)
	}
}

func TestHistogramDistanceSymmetric(t *testing.T) {
	check := func(xs, ys []uint8) bool {
		a, b := NewHistogram(), NewHistogram()
		for _, x := range xs {
			a.Add(int(x % 8))
		}
		for _, y := range ys {
			b.Add(int(y % 8))
		}
		return math.Abs(a.Distance(b)-b.Distance(a)) < 1e-12
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeBins(t *testing.T) {
	if TimeBins(nil, 10) != nil {
		t.Error("nil times should give nil bins")
	}
	if TimeBins([]uint64{1}, 0) != nil {
		t.Error("zero bin width should give nil bins")
	}
	bins := TimeBins([]uint64{0, 5, 10, 25}, 10)
	want := []uint64{2, 1, 1}
	if len(bins) != len(want) {
		t.Fatalf("bins = %v", bins)
	}
	for i := range want {
		if bins[i] != want[i] {
			t.Errorf("bins[%d] = %d, want %d", i, bins[i], want[i])
		}
	}
}

func TestFormatPct(t *testing.T) {
	if got := FormatPct(12.345); got != "12.3%" {
		t.Errorf("FormatPct = %q", got)
	}
}
