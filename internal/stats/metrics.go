package stats

import (
	"fmt"
	"math"
	"sort"
)

// PercentError returns |measured-reference| / reference * 100. When the
// reference is zero, it returns 0 if measured is also zero and 100
// otherwise, which mirrors how the paper treats empty-metric cases.
func PercentError(measured, reference float64) float64 {
	if reference == 0 {
		if measured == 0 {
			return 0
		}
		return 100
	}
	return math.Abs(measured-reference) / math.Abs(reference) * 100
}

// GeoMean returns the geometric mean of xs. Non-positive entries are
// clamped to eps (the paper reports geometric-mean errors, which are
// undefined at exactly zero). It returns 0 for an empty slice.
func GeoMean(xs []float64) float64 {
	const eps = 1e-3
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x < eps {
			x = eps
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// Histogram counts occurrences of integer-valued observations, used for
// queue-length and per-bank distributions (Figs. 8 and 12).
type Histogram struct {
	counts map[int]uint64
	total  uint64
	sum    float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]uint64)}
}

// Add records one observation of value v.
func (h *Histogram) Add(v int) {
	h.counts[v]++
	h.total++
	h.sum += float64(v)
}

// Count returns how many observations of value v were recorded.
func (h *Histogram) Count(v int) uint64 { return h.counts[v] }

// Total returns the number of observations recorded.
func (h *Histogram) Total() uint64 { return h.total }

// Mean returns the mean observation, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Values returns the distinct observed values in ascending order.
func (h *Histogram) Values() []int {
	vs := make([]int, 0, len(h.counts))
	for v := range h.counts {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// Max returns the largest observed value, or 0 if empty.
func (h *Histogram) Max() int {
	max := 0
	for v := range h.counts {
		if v > max {
			max = v
		}
	}
	return max
}

// Distance returns the L1 distance between the two histograms viewed as
// probability distributions (0 = identical, 2 = disjoint). It is the
// quantitative comparison used when the paper shows distributions
// side-by-side (Fig. 8).
func (h *Histogram) Distance(o *Histogram) float64 {
	if h.total == 0 && o.total == 0 {
		return 0
	}
	if h.total == 0 || o.total == 0 {
		return 2
	}
	keys := make(map[int]struct{}, len(h.counts)+len(o.counts))
	for v := range h.counts {
		keys[v] = struct{}{}
	}
	for v := range o.counts {
		keys[v] = struct{}{}
	}
	d := 0.0
	for v := range keys {
		p := float64(h.counts[v]) / float64(h.total)
		q := float64(o.counts[v]) / float64(o.total)
		d += math.Abs(p - q)
	}
	return d
}

// TimeBins bins event timestamps into fixed-width bins and returns the
// count per bin, reproducing the Fig. 3 view of a trace's injection
// process. The returned slice covers [0, maxTime] in binWidth-sized bins.
func TimeBins(times []uint64, binWidth uint64) []uint64 {
	if binWidth == 0 || len(times) == 0 {
		return nil
	}
	var maxT uint64
	for _, t := range times {
		if t > maxT {
			maxT = t
		}
	}
	bins := make([]uint64, maxT/binWidth+1)
	for _, t := range times {
		bins[t/binWidth]++
	}
	return bins
}

// FormatPct formats a percentage with one decimal for tables.
func FormatPct(v float64) string { return fmt.Sprintf("%.1f%%", v) }
