package stats

import (
	"testing"
	"testing/quick"
)

// linearFind is the scan the Fenwick tree replaces: the smallest index
// whose cumulative weight exceeds pick.
func linearFind(weights []uint32, pick uint64) int {
	for i, w := range weights {
		if pick < uint64(w) {
			return i
		}
		pick -= uint64(w)
	}
	return len(weights)
}

func TestFenwickPrefixAndTotal(t *testing.T) {
	ws := []uint32{3, 0, 5, 1, 0, 0, 7, 2}
	f := NewFenwick(ws)
	if f.Len() != len(ws) {
		t.Fatalf("Len = %d, want %d", f.Len(), len(ws))
	}
	var cum uint64
	for i, w := range ws {
		if got := f.Prefix(i); got != cum {
			t.Errorf("Prefix(%d) = %d, want %d", i, got, cum)
		}
		cum += uint64(w)
	}
	if f.Total() != cum {
		t.Errorf("Total = %d, want %d", f.Total(), cum)
	}
}

func TestFenwickFindMatchesLinearScan(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 9, 16, 33, 100} {
		rng := NewRNG(uint64(n))
		ws := make([]uint32, n)
		for i := range ws {
			ws[i] = uint32(rng.Intn(5)) // include zeros
		}
		f := NewFenwick(ws)
		total := f.Total()
		for pick := uint64(0); pick < total; pick++ {
			if got, want := f.Find(pick), linearFind(ws, pick); got != want {
				t.Fatalf("n=%d: Find(%d) = %d, linear scan %d (weights %v)", n, pick, got, want, ws)
			}
		}
	}
}

func TestFenwickDecTracksLinearScan(t *testing.T) {
	rng := NewRNG(7)
	ws := make([]uint32, 37)
	for i := range ws {
		ws[i] = uint32(1 + rng.Intn(4))
	}
	f := NewFenwick(ws)
	total := f.Total()
	// Repeatedly draw, decrement both representations, and compare until
	// the distribution is fully consumed.
	for ; total > 0; total-- {
		pick := rng.Uint64n(total)
		got, want := f.Find(pick), linearFind(ws, pick)
		if got != want {
			t.Fatalf("Find(%d) = %d, linear scan %d", pick, got, want)
		}
		f.Dec(got)
		ws[got]--
	}
	if f.Total() != 0 {
		t.Errorf("Total = %d after full consumption", f.Total())
	}
}

func TestFenwickAdd(t *testing.T) {
	f := NewFenwick(make([]uint32, 10))
	f.Add(3, 5)
	f.Add(9, 2)
	if f.Total() != 7 {
		t.Errorf("Total = %d, want 7", f.Total())
	}
	if got := f.Find(4); got != 3 {
		t.Errorf("Find(4) = %d, want 3", got)
	}
	if got := f.Find(5); got != 9 {
		t.Errorf("Find(5) = %d, want 9", got)
	}
}

func TestFenwickFindProperty(t *testing.T) {
	check := func(raw []uint8, pickSeed uint64) bool {
		if len(raw) == 0 {
			return true
		}
		ws := make([]uint32, len(raw))
		var total uint64
		for i, v := range raw {
			ws[i] = uint32(v % 8)
			total += uint64(ws[i])
		}
		if total == 0 {
			return true
		}
		f := NewFenwick(ws)
		pick := pickSeed % total
		return f.Find(pick) == linearFind(ws, pick)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
