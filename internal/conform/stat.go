package conform

import (
	"fmt"
	"io"
	"math/bits"

	"repro/internal/stats"
	"repro/internal/trace"
)

// The exact invariants in conform.go hold per leaf. Whole-trace
// delta-time and stride distributions are *not* exact: the merger
// interleaves leaves, so the gaps between consecutive requests of the
// merged stream mix inter-leaf spacing that no single model owns. The
// paper accepts this (its §IV validation is via memory-system metrics,
// not trace diffing); here we bound the drift with L1 distances between
// feature histograms, the same measure used for the queue-length
// distributions of Fig. 8.

// Distances holds per-feature L1 histogram distances between an
// original and a synthetic trace. Each value is in [0, 2]: 0 means
// identical distributions, 2 disjoint ones.
type Distances struct {
	// Op and Size compare the raw value distributions. Strict
	// convergence preserves per-leaf multisets exactly, and the
	// whole-trace multiset is their union, so both are exactly 0 for a
	// conforming pipeline.
	Op   float64
	Size float64
	// DeltaTime and Stride compare signed-log2-bucketed distributions
	// of the gaps between consecutive requests of the merged streams.
	DeltaTime float64
	Stride    float64
}

// Thresholds bounds acceptable Distances. The zero value accepts only
// perfection; use DefaultThresholds for the calibrated gate.
type Thresholds struct {
	Op, Size, DeltaTime, Stride float64
}

// DefaultThresholds returns the acceptance gate used by `mocktails
// check`. Op and size distributions are exact under strict convergence,
// so their bound is a float-noise epsilon. Delta-time and stride mix
// across leaves at merge time, and heavily-interleaved workloads
// legitimately drift far (the OpenCL proxies measure ~1.8 of the
// theoretical 2.0 — see EXPERIMENTS.md, "Conformance thresholds"), so
// their default bound only catches gross distribution collapse, e.g. a
// stream synthesized from the wrong profile or a broken merger;
// `mocktails check -max-dt/-max-stride` tightens it per workload.
func DefaultThresholds() Thresholds {
	return Thresholds{Op: 1e-9, Size: 1e-9, DeltaTime: 1.9, Stride: 1.9}
}

// logBucket maps a signed value onto a coarse magnitude bucket:
// 0 -> 0, positive v -> bit-length of v, negative v -> -bit-length of
// -v. Consecutive buckets cover [2^(k-1), 2^k), so the histogram stays
// small for arbitrary 64-bit gaps while preserving shape.
func logBucket(v int64) int {
	switch {
	case v == 0:
		return 0
	case v > 0:
		return bits.Len64(uint64(v))
	default:
		return -bits.Len64(uint64(-v))
	}
}

// featureHistograms builds the four per-feature histograms of a trace.
func featureHistograms(t trace.Trace) (op, size, dt, stride *stats.Histogram) {
	op, size = stats.NewHistogram(), stats.NewHistogram()
	dt, stride = stats.NewHistogram(), stats.NewHistogram()
	for i, r := range t {
		op.Add(int(r.Op))
		size.Add(int(r.Size))
		if i > 0 {
			dt.Add(logBucket(int64(r.Time - t[i-1].Time)))
			stride.Add(logBucket(int64(r.Addr) - int64(t[i-1].Addr)))
		}
	}
	return op, size, dt, stride
}

// FeatureDistances measures the per-feature L1 distances between the
// original and synthetic traces.
func FeatureDistances(orig, synthetic trace.Trace) Distances {
	oOp, oSize, oDt, oStride := featureHistograms(orig)
	sOp, sSize, sDt, sStride := featureHistograms(synthetic)
	return Distances{
		Op:        oOp.Distance(sOp),
		Size:      oSize.Distance(sSize),
		DeltaTime: oDt.Distance(sDt),
		Stride:    oStride.Distance(sStride),
	}
}

// Within reports whether every distance is inside the thresholds.
func (d Distances) Within(t Thresholds) bool {
	return d.Op <= t.Op && d.Size <= t.Size &&
		d.DeltaTime <= t.DeltaTime && d.Stride <= t.Stride
}

// check records one violation per feature whose distance exceeds its
// threshold.
func (d Distances) check(r *Report, t Thresholds) {
	for _, c := range []struct {
		name     string
		got, max float64
	}{
		{"op", d.Op, t.Op},
		{"size", d.Size, t.Size},
		{"dt", d.DeltaTime, t.DeltaTime},
		{"stride", d.Stride, t.Stride},
	} {
		if c.got > c.max {
			r.add("stat/"+c.name, -1, "L1 distance %.4f exceeds threshold %.4f", c.got, c.max)
		}
	}
}

// Fprint renders the distances as a table.
func (d Distances) Fprint(w io.Writer) {
	fmt.Fprintf(w, "feature L1 distances: op %.4f, size %.4f, delta-time %.4f, stride %.4f\n",
		d.Op, d.Size, d.DeltaTime, d.Stride)
}
