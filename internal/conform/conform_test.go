package conform

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// testTrace builds a small deterministic trace with several temporal
// phases and address regions, so the 2L-TS partitioning produces a
// healthy mix of leaves (multi-request Markov leaves, tiny leaves,
// constant-feature leaves).
func testTrace(seed uint64, n int) trace.Trace {
	rng := stats.NewRNG(seed)
	t := make(trace.Trace, 0, n)
	now := uint64(1000)
	regions := []uint64{1 << 20, 1 << 24, 1 << 28}
	sizes := []uint32{16, 64, 64, 128}
	addr := regions[0]
	for i := 0; i < n; i++ {
		if i%257 == 0 {
			addr = regions[rng.Intn(len(regions))] + uint64(rng.Intn(1<<14))
			now += uint64(rng.Range(50_000, 150_000)) // phase gap
		}
		now += uint64(rng.Range(1, 200))
		addr += uint64(rng.Range(-4, 8) * 64)
		op := trace.Read
		if rng.Bool(0.35) {
			op = trace.Write
		}
		t = append(t, trace.Request{
			Time: now,
			Addr: addr,
			Size: sizes[rng.Intn(len(sizes))],
			Op:   op,
		})
	}
	return t
}

func buildTriple(t *testing.T, cfg partition.Config, seed uint64) (trace.Trace, *profile.Profile, trace.Trace) {
	t.Helper()
	orig := testTrace(7, 4000)
	p, err := core.Build("conform-test", orig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return orig, p, core.SynthesizeTrace(p, seed)
}

func TestCheckCleanPipeline(t *testing.T) {
	for _, cfg := range []partition.Config{
		partition.TwoLevelTS(200_000),
		partition.TwoLevelRequestCount(512, 0),
		partition.TwoLevelRequestCount(512, 4096),
	} {
		orig, p, syn := buildTriple(t, cfg, 42)
		r := Check(orig, p, syn, cfg, 42, DefaultThresholds())
		if !r.Ok() {
			var b strings.Builder
			r.Fprint(&b)
			t.Fatalf("clean pipeline (%s) fails conformance:\n%s", cfg, b.String())
		}
		if r.Distances == nil {
			t.Fatal("Check did not record distances")
		}
		if r.Distances.Op != 0 || r.Distances.Size != 0 {
			t.Errorf("%s: op/size distributions not exact: op %v size %v",
				cfg, r.Distances.Op, r.Distances.Size)
		}
		if r.Leaves != len(p.Leaves) || r.Requests != len(syn) {
			t.Errorf("%s: report counts leaves=%d requests=%d, want %d/%d",
				cfg, r.Leaves, r.Requests, len(p.Leaves), len(syn))
		}
	}
}

func TestCheckCleanDeviceProxy(t *testing.T) {
	if testing.Short() {
		t.Skip("full device proxy in -short mode")
	}
	spec, err := workloads.Find("HEVC1")
	if err != nil {
		t.Fatal(err)
	}
	orig := spec.Gen()
	cfg := core.DefaultConfig()
	p, err := core.Build(spec.Name, orig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	syn := core.SynthesizeTrace(p, 42)
	r := Check(orig, p, syn, cfg, 42, DefaultThresholds())
	if !r.Ok() {
		var b strings.Builder
		r.Fprint(&b)
		t.Fatalf("HEVC1 pipeline fails conformance:\n%s", b.String())
	}
}

// hasCheck reports whether the report contains a violation of the named
// check (prefix match, so "strict-convergence" covers all features).
func hasCheck(r *Report, name string) bool {
	for _, v := range r.Violations {
		if strings.HasPrefix(v.Check, name) {
			return true
		}
	}
	return false
}

func TestPerturbedModelFailsProfileCheck(t *testing.T) {
	cfg := partition.TwoLevelTS(200_000)
	orig, p, syn := buildTriple(t, cfg, 42)

	// Find a Markov leaf and skew one transition count: the model no
	// longer encodes the training multiset.
	perturbed := false
	for i := range p.Leaves {
		m := &p.Leaves[i].Size
		if !m.Constant && len(m.N) > 0 {
			m.N[0] += 3
			m.Finish()
			perturbed = true
			break
		}
	}
	if !perturbed {
		t.Fatal("no Markov size model found to perturb")
	}
	r := Check(orig, p, syn, cfg, 42, DefaultThresholds())
	if r.Ok() {
		t.Fatal("perturbed profile passed conformance")
	}
	if !hasCheck(r, "profile/multiset/size") {
		t.Errorf("expected profile/multiset/size violation, got %v", r.Violations)
	}
	// The synthetic side must also notice: the stream was generated
	// from the unperturbed model, so strict convergence against the
	// perturbed one cannot hold.
	if !hasCheck(r, "strict-convergence/size") && !hasCheck(r, "synth/merge-multiset") {
		t.Errorf("synthetic-side checks silent on perturbed model: %v", r.Violations)
	}
}

func TestPerturbedCountFails(t *testing.T) {
	cfg := partition.TwoLevelTS(200_000)
	orig, p, syn := buildTriple(t, cfg, 42)
	p.Leaves[0].Count++
	r := Check(orig, p, syn, cfg, 42, DefaultThresholds())
	if r.Ok() {
		t.Fatal("count-perturbed profile passed conformance")
	}
	if !hasCheck(r, "profile/leaf-requests") {
		t.Errorf("expected profile/leaf-requests violation, got %v", r.Violations)
	}
	if !hasCheck(r, "synth/total-requests") && !hasCheck(r, "synth/leaf-count") &&
		!hasCheck(r, "synth/merge-multiset") {
		t.Errorf("synthetic-side checks silent on count drift: %v", r.Violations)
	}
}

func TestTamperedSyntheticFails(t *testing.T) {
	cfg := partition.TwoLevelTS(200_000)
	orig, p, syn := buildTriple(t, cfg, 42)

	t.Run("address escape", func(t *testing.T) {
		bad := syn.Clone()
		bad[len(bad)/2].Addr = 0xdead_beef_dead_beef
		r := CheckSynthetic(p, bad, 42)
		if r.Ok() {
			t.Fatal("address-tampered synthetic passed")
		}
		if !hasCheck(r, "synth/merge-multiset") {
			t.Errorf("expected merge-multiset violation, got %v", r.Violations)
		}
	})

	t.Run("timestamp regression", func(t *testing.T) {
		bad := syn.Clone()
		bad[len(bad)/2].Time = 0
		r := CheckSynthetic(p, bad, 42)
		if r.Ok() || !hasCheck(r, "synth/sorted") {
			t.Errorf("expected synth/sorted violation, got %v", r.Violations)
		}
	})

	t.Run("dropped request", func(t *testing.T) {
		bad := syn.Clone()[:len(syn)-1]
		r := CheckSynthetic(p, bad, 42)
		if r.Ok() || !hasCheck(r, "synth/total-requests") {
			t.Errorf("expected synth/total-requests violation, got %v", r.Violations)
		}
	})

	t.Run("wrong seed", func(t *testing.T) {
		r := CheckSynthetic(p, core.SynthesizeTrace(p, 43), 42)
		if r.Ok() {
			t.Error("stream synthesized with a different seed passed")
		}
	})

	// The original triple must still pass: Clone above protected it.
	if r := CheckSynthetic(p, syn, 42); !r.Ok() {
		t.Fatalf("untampered synthetic now fails: %v", r.Violations)
	}
	_ = orig
}

// A model whose edge counts disagree with the leaf's Count is the
// classic strict-convergence breaker: the generator draws Count-1
// values but the model's multiset demands a different total.
func TestInconsistentModelFailsStrictConvergence(t *testing.T) {
	cfg := partition.TwoLevelTS(200_000)
	_, p, _ := buildTriple(t, cfg, 42)
	idx := -1
	for i := range p.Leaves {
		m := &p.Leaves[i].DeltaTime
		if !m.Constant && len(m.N) > 0 {
			m.N[0] += 2
			m.Finish()
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("no Markov delta-time model found to perturb")
	}
	// Synthesize from the *perturbed* profile: generation itself now
	// cannot reproduce the model's multiset in Count-1 draws.
	syn := core.SynthesizeTrace(p, 42)
	r := CheckSynthetic(p, syn, 42)
	if r.Ok() {
		t.Fatal("inconsistent model passed strict convergence")
	}
	if !hasCheck(r, "strict-convergence/dt") {
		t.Errorf("expected strict-convergence/dt violation, got %v", r.Violations)
	}
}

func TestReportCapsDetails(t *testing.T) {
	r := &Report{}
	for i := 0; i < maxDetails+10; i++ {
		r.add("x", i, "violation %d", i)
	}
	if len(r.Violations) != maxDetails || r.Dropped != 10 {
		t.Errorf("stored %d dropped %d, want %d/%d", len(r.Violations), r.Dropped, maxDetails, 10)
	}
	if r.Ok() {
		t.Error("report with dropped violations claims Ok")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Check: "synth/sorted", Leaf: -1, Detail: "boom"}
	if got := v.String(); got != "synth/sorted: boom" {
		t.Errorf("String() = %q", got)
	}
	v.Leaf = 3
	if got := v.String(); !strings.Contains(got, "leaf 3") {
		t.Errorf("String() = %q", got)
	}
}

func TestEmptyTraceTriple(t *testing.T) {
	cfg := partition.TwoLevelTS(200_000)
	p, err := core.Build("empty", nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := Check(nil, p, nil, cfg, 42, DefaultThresholds())
	if !r.Ok() {
		t.Errorf("empty triple fails conformance: %v", r.Violations)
	}
}
