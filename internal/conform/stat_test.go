package conform

import (
	"strings"
	"testing"

	"repro/internal/partition"
	"repro/internal/trace"
)

func TestLogBucket(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{1024, 11},
		{-1, -1},
		{-2, -2}, {-3, -2},
		{-1024, -11},
	}
	for _, c := range cases {
		if got := logBucket(c.v); got != c.want {
			t.Errorf("logBucket(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestFeatureDistancesSelf(t *testing.T) {
	tr := testTrace(3, 500)
	d := FeatureDistances(tr, tr)
	if d != (Distances{}) {
		t.Errorf("self distance non-zero: %+v", d)
	}
	if !d.Within(Thresholds{}) {
		t.Error("zero distances not within zero thresholds")
	}
}

func TestFeatureDistancesDisjoint(t *testing.T) {
	a := trace.Trace{{Time: 0, Addr: 0, Size: 64, Op: trace.Read}}
	b := trace.Trace{{Time: 0, Addr: 0, Size: 128, Op: trace.Write}}
	d := FeatureDistances(a, b)
	if d.Op != 2 || d.Size != 2 {
		t.Errorf("disjoint single-request traces: op %v size %v, want 2/2", d.Op, d.Size)
	}
}

func TestDistancesCheckRecordsViolations(t *testing.T) {
	r := &Report{}
	d := Distances{Op: 0.5, Size: 0, DeltaTime: 1.5, Stride: 0}
	d.check(r, Thresholds{Op: 0.1, Size: 0.1, DeltaTime: 1.0, Stride: 0.1})
	if len(r.Violations) != 2 {
		t.Fatalf("got %d violations, want 2: %v", len(r.Violations), r.Violations)
	}
	if !hasCheck(r, "stat/op") || !hasCheck(r, "stat/dt") {
		t.Errorf("wrong checks flagged: %v", r.Violations)
	}
}

func TestDistancesFprint(t *testing.T) {
	var b strings.Builder
	Distances{Op: 0.25}.Fprint(&b)
	if !strings.Contains(b.String(), "op 0.2500") {
		t.Errorf("Fprint output %q", b.String())
	}
}

func TestDefaultThresholdsAcceptCleanRun(t *testing.T) {
	orig, _, syn := buildTriple(t, partition.TwoLevelTS(200_000), 42)
	d := FeatureDistances(orig, syn)
	if !d.Within(DefaultThresholds()) {
		t.Errorf("clean run outside default thresholds: %+v", d)
	}
}
