// Package conform checks that a Mocktails pipeline run upholds the
// paper's conformance guarantees. It sits across the (original trace,
// profile, synthetic trace) triple and asserts the invariants §III
// promises and §IV's validation relies on:
//
//   - the profile faithfully encodes the original: per-leaf request
//     counts, start bookkeeping, address bounds, and — per feature — the
//     exact multiset of training values captured by each McC model;
//   - the synthetic stream conforms to the profile: timestamps are
//     non-decreasing out of the merger, every synthesized address stays
//     wrapped inside its leaf's [Lo, Hi) range, every leaf emits exactly
//     its Count requests, and strict convergence reproduces the exact
//     multiset of delta-time/stride/op/size feature values (§III-C);
//   - the merged total order is a permutation of the per-leaf partial
//     orders, nothing dropped and nothing invented.
//
// Violations are collected into a Report rather than returned on first
// failure, so a single run pinpoints every broken invariant. The
// statistical acceptance layer (stat.go) complements these exact checks
// with thresholded distribution distances for the properties that are
// deliberately not exact (whole-trace delta-time and stride mixing).
package conform

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro/internal/markov"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/profile"
	"repro/internal/synth"
	"repro/internal/trace"
)

// Conformance metrics: full-suite runs, and invariants checked/broken.
var (
	mChecksRun  = obs.NewCounter("conform.checks_run")
	mViolations = obs.NewCounter("conform.violations")
)

// maxDetails bounds how many violations a Report stores verbatim; the
// remainder is counted in Dropped so a badly broken run doesn't produce
// an unbounded report.
const maxDetails = 64

// Violation is one broken invariant.
type Violation struct {
	// Check names the invariant, e.g. "synth/sorted" or
	// "strict-convergence/stride".
	Check string
	// Leaf is the index of the offending leaf, or -1 for whole-trace
	// checks.
	Leaf int
	// Detail is a human-readable description of the mismatch.
	Detail string
}

// String formats the violation.
func (v Violation) String() string {
	if v.Leaf < 0 {
		return fmt.Sprintf("%s: %s", v.Check, v.Detail)
	}
	return fmt.Sprintf("%s: leaf %d: %s", v.Check, v.Leaf, v.Detail)
}

// Report accumulates the outcome of conformance checking.
type Report struct {
	// Violations holds up to maxDetails broken invariants.
	Violations []Violation
	// Dropped counts violations beyond the storage cap.
	Dropped int
	// Leaves is the number of leaves examined.
	Leaves int
	// Requests is the number of synthetic requests examined.
	Requests int
	// Distances holds the statistical acceptance measurements when
	// Check ran them (see FeatureDistances); nil otherwise.
	Distances *Distances
}

// Ok reports whether every invariant held.
func (r *Report) Ok() bool { return len(r.Violations) == 0 && r.Dropped == 0 }

func (r *Report) add(check string, leaf int, format string, args ...any) {
	if len(r.Violations) >= maxDetails {
		r.Dropped++
		return
	}
	r.Violations = append(r.Violations, Violation{
		Check:  check,
		Leaf:   leaf,
		Detail: fmt.Sprintf(format, args...),
	})
}

// merge folds o's findings into r.
func (r *Report) merge(o *Report) {
	for _, v := range o.Violations {
		if len(r.Violations) >= maxDetails {
			r.Dropped++
			continue
		}
		r.Violations = append(r.Violations, v)
	}
	r.Dropped += o.Dropped
	r.Leaves += o.Leaves
	r.Requests += o.Requests
}

// Fprint renders the report.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "conformance: %d leaves, %d requests checked\n", r.Leaves, r.Requests)
	if r.Distances != nil {
		r.Distances.Fprint(w)
	}
	if r.Ok() {
		fmt.Fprintln(w, "conformance: PASS — all invariants hold")
		return
	}
	fmt.Fprintf(w, "conformance: FAIL — %d violation(s)\n", len(r.Violations)+r.Dropped)
	for _, v := range r.Violations {
		fmt.Fprintf(w, "  %s\n", v)
	}
	if r.Dropped > 0 {
		fmt.Fprintf(w, "  ... and %d more\n", r.Dropped)
	}
}

// multiset is a value -> occurrence-count map.
type multiset map[int64]int64

func multisetOf(vs []int64) multiset {
	m := make(multiset, len(vs))
	for _, v := range vs {
		m[v]++
	}
	return m
}

// modelMultiset returns the multiset of feature values a McC model
// encodes: for a Constant, n copies of the value; for a Markov chain,
// the initial value plus every transition target, weighted by count.
// Strict convergence guarantees generation of exactly n values
// reproduces this multiset.
func modelMultiset(m *profileModel, n int) multiset {
	ms := make(multiset)
	if n <= 0 {
		return ms
	}
	if m.Constant {
		ms[m.Value] = int64(n)
		return ms
	}
	ms[m.Initial]++
	for j, to := range m.To {
		ms[to] += int64(m.N[j])
	}
	return ms
}

// diffMultisets describes the first differences between want and got,
// or "" when they are equal.
func diffMultisets(want, got multiset) string {
	keys := make(map[int64]struct{}, len(want)+len(got))
	for v := range want {
		keys[v] = struct{}{}
	}
	for v := range got {
		keys[v] = struct{}{}
	}
	sorted := make([]int64, 0, len(keys))
	for v := range keys {
		sorted = append(sorted, v)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	diff := ""
	shown := 0
	for _, v := range sorted {
		if want[v] == got[v] {
			continue
		}
		if shown == 3 {
			diff += ", ..."
			break
		}
		if shown > 0 {
			diff += ", "
		}
		diff += fmt.Sprintf("value %d: want %d, got %d", v, want[v], got[v])
		shown++
	}
	return diff
}

// featureSeq extracts one feature's training sequence from a leaf's
// requests, mirroring how profile fitting derives it.
func featureSeq(reqs trace.Trace, feature string) []int64 {
	n := len(reqs)
	var out []int64
	switch feature {
	case "dt":
		out = make([]int64, 0, n-1)
		for i := 1; i < n; i++ {
			out = append(out, int64(reqs[i].Time-reqs[i-1].Time))
		}
	case "stride":
		out = make([]int64, 0, n-1)
		for i := 1; i < n; i++ {
			out = append(out, int64(reqs[i].Addr)-int64(reqs[i-1].Addr))
		}
	case "op":
		out = make([]int64, 0, n)
		for _, r := range reqs {
			out = append(out, int64(r.Op))
		}
	case "size":
		out = make([]int64, 0, n)
		for _, r := range reqs {
			out = append(out, int64(r.Size))
		}
	}
	return out
}

// profileModel names the McC model type carried by profile leaves.
type profileModel = markov.Model

// CheckProfile verifies that p faithfully encodes orig under the given
// partitioning configuration: leaf structure matches a fresh Split,
// per-leaf bookkeeping (count, start time/address, bounds containment)
// is correct, and each feature model's value multiset equals the
// training sequence's multiset — the property strict convergence will
// replay at synthesis time.
func CheckProfile(orig trace.Trace, p *profile.Profile, cfg partition.Config) *Report {
	return checkProfile(context.Background(), orig, p, cfg)
}

func checkProfile(ctx context.Context, orig trace.Trace, p *profile.Profile, cfg partition.Config) *Report {
	r := &Report{}
	leaves, err := partition.SplitCtx(ctx, orig, cfg)
	if err != nil {
		r.add("profile/split", -1, "re-partitioning original failed: %v", err)
		return r
	}
	r.Leaves = len(p.Leaves)
	if len(leaves) != len(p.Leaves) {
		r.add("profile/leaf-count", -1, "profile has %d leaves, re-split of original gives %d",
			len(p.Leaves), len(leaves))
		return r
	}
	total := 0
	for i := range p.Leaves {
		pl := &p.Leaves[i]
		ol := leaves[i]
		total += int(pl.Count)
		if int(pl.Count) != len(ol.Reqs) {
			r.add("profile/leaf-requests", i, "profile Count %d, original partition holds %d",
				pl.Count, len(ol.Reqs))
			continue
		}
		if len(ol.Reqs) == 0 {
			continue
		}
		if pl.StartTime != ol.Reqs[0].Time || pl.StartAddr != ol.Reqs[0].Addr {
			r.add("profile/leaf-start", i, "start (t=%d, 0x%x), original first request (t=%d, 0x%x)",
				pl.StartTime, pl.StartAddr, ol.Reqs[0].Time, ol.Reqs[0].Addr)
		}
		if pl.Lo != ol.Lo || pl.Hi != ol.Hi {
			r.add("profile/leaf-bounds", i, "bounds [0x%x, 0x%x), original partition [0x%x, 0x%x)",
				pl.Lo, pl.Hi, ol.Lo, ol.Hi)
		}
		if pl.Hi > pl.Lo {
			for _, req := range ol.Reqs {
				if req.Addr < pl.Lo || req.Addr >= pl.Hi {
					r.add("profile/leaf-bounds", i, "original address 0x%x outside [0x%x, 0x%x)",
						req.Addr, pl.Lo, pl.Hi)
					break
				}
			}
		}
		n := len(ol.Reqs)
		for _, f := range []struct {
			name  string
			model *profileModel
			want  []int64
			draws int
		}{
			{"dt", &pl.DeltaTime, featureSeq(ol.Reqs, "dt"), n - 1},
			{"stride", &pl.Stride, featureSeq(ol.Reqs, "stride"), n - 1},
			{"op", &pl.Op, featureSeq(ol.Reqs, "op"), n},
			{"size", &pl.Size, featureSeq(ol.Reqs, "size"), n},
		} {
			want := multisetOf(f.want)
			got := modelMultiset(f.model, f.draws)
			if d := diffMultisets(want, got); d != "" {
				r.add("profile/multiset/"+f.name, i, "model multiset differs from training: %s", d)
			}
		}
	}
	if total != len(orig) {
		r.add("profile/total-requests", -1, "leaf counts sum to %d, original has %d requests",
			total, len(orig))
	}
	return r
}

// CheckSynthetic verifies that synthetic is a conforming output of
// New(p, seed): the merger emitted non-decreasing timestamps, the
// stream is exactly the multiset union of every leaf's partial order,
// each leaf produced exactly Count requests starting at its recorded
// (StartTime, StartAddr), every address lies wrapped inside the leaf's
// [Lo, Hi) range, and the raw feature draws reproduce each model's
// value multiset exactly (strict convergence, §III-C).
func CheckSynthetic(p *profile.Profile, synthetic trace.Trace, seed uint64) *Report {
	r := &Report{Leaves: len(p.Leaves), Requests: len(synthetic)}
	if want := p.Requests(); len(synthetic) != want {
		r.add("synth/total-requests", -1, "synthetic has %d requests, profile demands %d",
			len(synthetic), want)
	}
	if !synthetic.Sorted() {
		for i := 1; i < len(synthetic); i++ {
			if synthetic[i].Time < synthetic[i-1].Time {
				r.add("synth/sorted", -1, "timestamp regression at index %d: %d -> %d",
					i, synthetic[i-1].Time, synthetic[i].Time)
				break
			}
		}
	}

	seeds := synth.LeafSeeds(p, seed)
	union := make(map[trace.Request]int, len(synthetic))
	for i := range p.Leaves {
		l := &p.Leaves[i]
		stream := synth.LeafStream(l, seeds[i])
		if len(stream) != int(l.Count) {
			r.add("synth/leaf-count", i, "leaf emitted %d requests, Count is %d",
				len(stream), l.Count)
		}
		if len(stream) == 0 {
			continue
		}
		if stream[0].Time != l.StartTime || stream[0].Addr != l.StartAddr {
			r.add("synth/leaf-start", i, "first request (t=%d, 0x%x), leaf records (t=%d, 0x%x)",
				stream[0].Time, stream[0].Addr, l.StartTime, l.StartAddr)
		}
		if !stream.Sorted() {
			r.add("synth/leaf-sorted", i, "partial order is not non-decreasing in time")
		}
		if l.Hi > l.Lo {
			for _, req := range stream {
				if req.Addr < l.Lo || req.Addr >= l.Hi {
					r.add("synth/addr-range", i, "address 0x%x escapes [0x%x, 0x%x)",
						req.Addr, l.Lo, l.Hi)
					break
				}
			}
		}
		f := synth.Features(l, seeds[i])
		checkStrictConvergence(r, l, f, i)
		checkAssembly(r, l, stream, f, i)
		for _, req := range stream {
			union[req]++
		}
	}

	// The merged stream must be exactly the multiset union of the
	// per-leaf partial orders.
	for _, req := range synthetic {
		union[req]--
	}
	extra, missing := 0, 0
	for _, c := range union {
		if c < 0 {
			extra -= int(c)
		} else if c > 0 {
			missing += int(c)
		}
	}
	if extra > 0 || missing > 0 {
		r.add("synth/merge-multiset", -1,
			"merged stream invents %d request(s) and drops %d vs the per-leaf union", extra, missing)
	}
	return r
}

// checkStrictConvergence asserts the §III-C multiset guarantee for one
// leaf: drawing exactly the training length from each feature generator
// reproduces the model's exact value multiset.
func checkStrictConvergence(r *Report, l *profile.Leaf, f synth.LeafFeatures, idx int) {
	n := int(l.Count)
	for _, c := range []struct {
		name  string
		model *profileModel
		got   []int64
		draws int
	}{
		{"dt", &l.DeltaTime, f.DeltaTimes, n - 1},
		{"stride", &l.Stride, f.Strides, n - 1},
		{"op", &l.Op, f.Ops, n},
		{"size", &l.Size, f.Sizes, n},
	} {
		if len(c.got) != c.draws {
			r.add("strict-convergence/"+c.name, idx, "generated %d values, want %d", len(c.got), c.draws)
			continue
		}
		want := modelMultiset(c.model, c.draws)
		got := multisetOf(c.got)
		if d := diffMultisets(want, got); d != "" {
			r.add("strict-convergence/"+c.name, idx, "generated multiset differs from model: %s", d)
		}
	}
}

// checkAssembly re-applies the request-assembly transforms (delta-time
// clamping at zero, address wrapping into [Lo, Hi)) to the raw feature
// draws and asserts they reproduce the leaf's emitted stream — the link
// proving the feature-level and request-level views agree.
func checkAssembly(r *Report, l *profile.Leaf, stream trace.Trace, f synth.LeafFeatures, idx int) {
	n := int(l.Count)
	if len(stream) != n || len(f.Ops) != n || len(f.Sizes) != n ||
		len(f.DeltaTimes) != n-1 || len(f.Strides) != n-1 {
		return // length violations already reported
	}
	tm, addr := l.StartTime, l.StartAddr
	for i := 0; i < n; i++ {
		if i > 0 {
			dt := f.DeltaTimes[i-1]
			if dt < 0 {
				dt = 0
			}
			tm += uint64(dt)
			addr = synth.WrapAddr(int64(addr)+f.Strides[i-1], l.Lo, l.Hi)
		}
		want := trace.Request{
			Time: tm,
			Addr: addr,
			Op:   synth.OpFromValue(f.Ops[i]),
			Size: synth.SizeFromValue(f.Sizes[i]),
		}
		if stream[i] != want {
			r.add("synth/assembly", idx, "request %d is %v, reassembly gives %v", i, stream[i], want)
			return
		}
	}
}

// Check runs the full conformance suite over a pipeline triple: the
// profile-vs-original checks, the synthetic-vs-profile checks, and the
// statistical acceptance distances against the given thresholds. cfg
// must be the partition configuration the profile was built with.
func Check(orig trace.Trace, p *profile.Profile, synthetic trace.Trace, cfg partition.Config, seed uint64, th Thresholds) *Report {
	return CheckCtx(context.Background(), orig, p, synthetic, cfg, seed, th)
}

// CheckCtx is Check under tracing spans: the three phases (profile
// invariants, synthetic invariants, statistical acceptance) nest below
// the span carried by ctx. The report is identical to Check's.
func CheckCtx(ctx context.Context, orig trace.Trace, p *profile.Profile, synthetic trace.Trace, cfg partition.Config, seed uint64, th Thresholds) *Report {
	mChecksRun.Inc()
	pctx, psp := obs.Start(ctx, "conform.profile")
	r := checkProfile(pctx, orig, p, cfg)
	psp.SetCount("leaves", int64(r.Leaves))
	psp.End()
	_, ssp := obs.Start(ctx, "conform.synthetic")
	rs := CheckSynthetic(p, synthetic, seed)
	ssp.SetCount("requests", int64(rs.Requests))
	ssp.End()
	rs.Leaves = 0 // already counted by CheckProfile
	r.merge(rs)
	_, dsp := obs.Start(ctx, "conform.stat")
	d := FeatureDistances(orig, synthetic)
	r.Distances = &d
	d.check(r, th)
	dsp.End()
	mViolations.Add(uint64(len(r.Violations) + r.Dropped))
	return r
}
