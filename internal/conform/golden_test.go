package conform

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// The golden corpus freezes the exact bytes the pipeline produces for a
// set of small deterministic traces: the trace encoding, the profile
// built from it, and the trace synthesized back. Any byte drift in the
// partitioner, the McC fitting, the codecs, or the synthesis hot path —
// however it is refactored — fails TestGoldenCorpus. After an
// *intentional* output change, refresh the manifest with:
//
//	go test ./internal/conform -run TestGoldenCorpus -update
//
// Hashes cover the uncompressed binary encodings (trace.WriteBinary,
// profile.Write), which are fully deterministic; gzip framing is
// excluded so stdlib compressor changes cannot cause false alarms.

var update = flag.Bool("update", false, "rewrite the golden corpus manifest")

const manifestPath = "testdata/golden/manifest.json"

// goldenCase describes one corpus entry. The trace, config and seed are
// reconstructed from these fields; only digests are stored on disk.
type goldenCase struct {
	Name     string `json:"name"`
	Config   string `json:"config"`
	Seed     uint64 `json:"seed"`
	Requests int    `json:"requests"`
	Leaves   int    `json:"leaves"`
	TraceSHA string `json:"trace_sha256"`
	ProfSHA  string `json:"profile_sha256"`
	SynthSHA string `json:"synth_sha256"`
}

type manifest struct {
	Cases []goldenCase `json:"cases"`
}

// goldenConfigs names the partition configurations the corpus uses.
func goldenConfigs() map[string]partition.Config {
	return map[string]partition.Config{
		"2lts-500k":   partition.TwoLevelTS(500_000),
		"2lts-100k":   partition.TwoLevelTS(100_000),
		"req-256-dyn": partition.TwoLevelRequestCount(256, 0),
		"req-512-4k":  partition.TwoLevelRequestCount(512, 4096),
	}
}

// goldenTraces builds the corpus traces. Every entry is deterministic:
// same Go code, same bytes.
func goldenTraces() map[string]trace.Trace {
	constant := make(trace.Trace, 0, 100)
	for i := 0; i < 100; i++ {
		constant = append(constant, trace.Request{
			Time: 1000 + uint64(i)*10, Addr: 1 << 20, Size: 64, Op: trace.Read,
		})
	}
	hevc := workloads.HEVC(16, 10)
	if len(hevc) > 5000 {
		hevc = hevc[:5000]
	}
	crypto := workloads.Crypto(1)
	if len(crypto) > 4000 {
		crypto = crypto[:4000]
	}
	return map[string]trace.Trace{
		"uniform-tiny":    testTrace(1, 600),
		"two-phase":       testTrace(9, 1500),
		"constant-stream": constant,
		"single-request":  {{Time: 5, Addr: 0x1000, Size: 64, Op: trace.Write}},
		"hevc1-head":      hevc,
		"crypto1-head":    crypto,
	}
}

// goldenPlan fixes which (trace, config, seed) triples form the corpus.
func goldenPlan() []goldenCase {
	return []goldenCase{
		{Name: "uniform-tiny", Config: "2lts-100k", Seed: 42},
		{Name: "two-phase", Config: "req-256-dyn", Seed: 42},
		{Name: "two-phase", Config: "req-512-4k", Seed: 7},
		{Name: "constant-stream", Config: "2lts-500k", Seed: 42},
		{Name: "single-request", Config: "2lts-500k", Seed: 42},
		{Name: "hevc1-head", Config: "2lts-500k", Seed: 42},
		{Name: "crypto1-head", Config: "2lts-100k", Seed: 11},
	}
}

// digest hashes whatever write emits.
func digest(t *testing.T, write func(io.Writer) error) string {
	t.Helper()
	h := sha256.New()
	if err := write(h); err != nil {
		t.Fatal(err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// caseKey uniquely names a plan entry in the manifest.
func caseKey(c goldenCase) string { return c.Name + "/" + c.Config }

func TestGoldenCorpus(t *testing.T) {
	traces := goldenTraces()
	configs := goldenConfigs()

	var got manifest
	for _, plan := range goldenPlan() {
		tr, ok := traces[plan.Name]
		if !ok {
			t.Fatalf("plan references unknown trace %q", plan.Name)
		}
		cfg, ok := configs[plan.Config]
		if !ok {
			t.Fatalf("plan references unknown config %q", plan.Config)
		}
		p, err := core.Build(plan.Name, tr, cfg)
		if err != nil {
			t.Fatalf("%s: %v", caseKey(plan), err)
		}
		syn := core.SynthesizeTrace(p, plan.Seed)

		// The corpus is also an invariant gate: every frozen case must
		// pass full conformance, not merely reproduce its bytes.
		if r := Check(tr, p, syn, cfg, plan.Seed, DefaultThresholds()); !r.Ok() {
			t.Errorf("%s: conformance violations: %v", caseKey(plan), r.Violations)
		}

		c := plan
		c.Requests = len(tr)
		c.Leaves = len(p.Leaves)
		c.TraceSHA = digest(t, func(w io.Writer) error { _, err := trace.WriteBinary(w, tr); return err })
		c.ProfSHA = digest(t, func(w io.Writer) error { return profile.Write(w, p) })
		c.SynthSHA = digest(t, func(w io.Writer) error { _, err := trace.WriteBinary(w, syn); return err })
		got.Cases = append(got.Cases, c)
	}

	if *update {
		if err := os.MkdirAll(filepath.Dir(manifestPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(manifestPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden manifest rewritten with %d cases", len(got.Cases))
		return
	}

	data, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatalf("reading golden manifest (run with -update to create it): %v", err)
	}
	var want manifest
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	wantByKey := make(map[string]goldenCase, len(want.Cases))
	for _, c := range want.Cases {
		wantByKey[caseKey(c)] = c
	}
	if len(want.Cases) != len(got.Cases) {
		t.Errorf("manifest holds %d cases, plan has %d (run -update after changing the plan)",
			len(want.Cases), len(got.Cases))
	}
	for _, g := range got.Cases {
		w, ok := wantByKey[caseKey(g)]
		if !ok {
			t.Errorf("%s: missing from manifest (run -update)", caseKey(g))
			continue
		}
		if g != w {
			t.Errorf("%s: pipeline output drifted from golden corpus:\n  want %+v\n  got  %+v\n"+
				"if the change is intentional, refresh with: go test ./internal/conform -run TestGoldenCorpus -update",
				caseKey(g), w, g)
		}
	}
}
