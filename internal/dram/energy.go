package dram

// Energy estimation in the style of DRAMPower: event energies for
// activate/precharge pairs and per-burst read/write transfers, plus
// background power integrated over the simulated span. The paper's §VI
// positions Mocktails as a vehicle for memory-system studies; energy is
// a first-class metric in such studies, so the model exposes it from the
// statistics the controller already gathers.

// EnergyParams are per-event energies in picojoules and background power
// in picojoules per cycle per channel. Defaults approximate an
// LPDDR4-class part.
type EnergyParams struct {
	ActPrePJ     float64 // one activate+precharge pair
	ReadBurstPJ  float64 // one 32-byte read burst
	WriteBurstPJ float64 // one 32-byte write burst
	BackgroundPJ float64 // per cycle per channel
}

// DefaultEnergy returns LPDDR4-class parameters.
func DefaultEnergy() EnergyParams {
	return EnergyParams{
		ActPrePJ:     1500,
		ReadBurstPJ:  250,
		WriteBurstPJ: 280,
		BackgroundPJ: 8,
	}
}

// Energy is the estimated energy breakdown of a simulation, in
// picojoules.
type Energy struct {
	Activate   float64
	Read       float64
	Write      float64
	Background float64
}

// Total returns the sum of all components.
func (e Energy) Total() float64 { return e.Activate + e.Read + e.Write + e.Background }

// Energy estimates the energy of the simulation from its statistics:
// every serviced burst that was not a row hit paid an activation (and a
// matching precharge), every burst paid a transfer, and background power
// accrues over the busy span of each channel.
func (r Result) Energy(p EnergyParams) Energy {
	var e Energy
	activations := float64(r.ReadBursts()+r.WriteBursts()) -
		float64(r.ReadRowHits()+r.WriteRowHits())
	if activations < 0 {
		activations = 0
	}
	e.Activate = activations * p.ActPrePJ
	e.Read = float64(r.ReadBursts()) * p.ReadBurstPJ
	e.Write = float64(r.WriteBursts()) * p.WriteBurstPJ
	for i := range r.Channels {
		e.Background += float64(r.Channels[i].BusyUntil) * p.BackgroundPJ
	}
	return e
}
