package dram

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/trace"
)

func TestChargeCacheDisabledByDefault(t *testing.T) {
	if Default().ChargeCacheEntries != 0 {
		t.Error("ChargeCache enabled by default")
	}
	if newChargeCache(0) != nil {
		t.Error("zero-capacity cache not nil")
	}
}

func TestWithChargeCache(t *testing.T) {
	c := Default().WithChargeCache(128)
	if c.ChargeCacheEntries != 128 {
		t.Errorf("entries = %d", c.ChargeCacheEntries)
	}
	if c.TRCDReduced == 0 || c.TRCDReduced >= c.TRCD {
		t.Errorf("TRCDReduced = %d vs TRCD %d", c.TRCDReduced, c.TRCD)
	}
}

func TestChargeCacheLRU(t *testing.T) {
	cc := newChargeCache(2)
	cc.insert(0, 1)
	cc.insert(0, 2)
	if !cc.lookup(0, 1) || !cc.lookup(0, 2) {
		t.Fatal("fresh entries missing")
	}
	// 1 was refreshed by the lookup order above? lookup(0,1) then
	// lookup(0,2): now 2 is MRU. Inserting 3 evicts 1.
	cc.insert(0, 3)
	if cc.lookup(0, 1) {
		t.Error("LRU entry not evicted")
	}
	if !cc.lookup(0, 3) || !cc.lookup(0, 2) {
		t.Error("resident entries evicted")
	}
}

func TestChargeCacheReinsertRefreshes(t *testing.T) {
	cc := newChargeCache(2)
	cc.insert(0, 1)
	cc.insert(0, 2)
	cc.insert(0, 1) // refresh, no growth
	cc.insert(0, 3) // evicts 2
	if cc.lookup(0, 2) {
		t.Error("refreshed insert did not update recency")
	}
	if !cc.lookup(0, 1) {
		t.Error("refreshed entry evicted")
	}
}

func TestChargeCacheBankDisambiguation(t *testing.T) {
	cc := newChargeCache(4)
	cc.insert(0, 7)
	if cc.lookup(1, 7) {
		t.Error("row hit in wrong bank")
	}
}

func TestChargeCacheStatsHitRate(t *testing.T) {
	s := ChargeCacheStats{}
	if s.HitRate() != 0 {
		t.Error("empty HitRate != 0")
	}
	s = ChargeCacheStats{Hits: 1, Lookups: 4}
	if s.HitRate() != 25 {
		t.Errorf("HitRate = %v", s.HitRate())
	}
}

// rowReuseTrace revisits a small set of rows with gaps long enough that
// the open-adaptive policy closes them between visits: every activation
// is a ChargeCache opportunity.
func rowReuseTrace(n int) trace.Trace {
	var tr trace.Trace
	for i := 0; i < n; i++ {
		row := uint64(i % 4)
		addr := row * 4 * 8 * 1024 // same channel 0, bank 0, rows 0-3
		tr = append(tr, trace.Request{Time: uint64(i) * 5000, Addr: addr, Size: 32, Op: trace.Read})
	}
	return tr
}

func TestChargeCacheReducesLatency(t *testing.T) {
	tr := rowReuseTrace(2000)
	base := Run(trace.NewReplayer(tr.Clone()), Default(), 20)
	opt := Run(trace.NewReplayer(tr.Clone()), Default().WithChargeCache(128), 20)
	if opt.AvgLatency >= base.AvgLatency {
		t.Errorf("ChargeCache did not help: %.2f vs %.2f", opt.AvgLatency, base.AvgLatency)
	}
	var hits uint64
	for i := range opt.Channels {
		hits += opt.Channels[i].ChargeCache.Hits
	}
	if hits == 0 {
		t.Error("no ChargeCache hits on a row-reuse workload")
	}
}

func TestChargeCacheNeutralOnRandomRows(t *testing.T) {
	// Uniform random rows far exceed the table: hit rate should be low
	// and latency roughly unchanged.
	rng := stats.NewRNG(5)
	var tr trace.Trace
	for i := 0; i < 2000; i++ {
		tr = append(tr, trace.Request{Time: uint64(i) * 3000, Addr: rng.Uint64n(1<<30) &^ 31, Size: 32, Op: trace.Read})
	}
	opt := Run(trace.NewReplayer(tr), Default().WithChargeCache(32), 20)
	var s ChargeCacheStats
	for i := range opt.Channels {
		s.Hits += opt.Channels[i].ChargeCache.Hits
		s.Lookups += opt.Channels[i].ChargeCache.Lookups
	}
	if s.Lookups == 0 {
		t.Fatal("no activations recorded")
	}
	if s.HitRate() > 10 {
		t.Errorf("random rows hit %.1f%% of the time", s.HitRate())
	}
}

func TestChargeCacheDoesNotChangeCounts(t *testing.T) {
	tr := rowReuseTrace(500)
	base := Run(trace.NewReplayer(tr.Clone()), Default(), 20)
	opt := Run(trace.NewReplayer(tr.Clone()), Default().WithChargeCache(64), 20)
	if base.ReadBursts() != opt.ReadBursts() {
		t.Error("ChargeCache changed burst counts")
	}
}
