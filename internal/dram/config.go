// Package dram implements a cycle-level multi-channel DRAM controller
// model in the style of the gem5 memory controller the paper validates
// against (Hansson et al., ISPASS 2014): per-channel read and write queues,
// burst splitting to the DRAM interface width, FR-FCFS scheduling, an
// open-adaptive page policy, and a write-drain mode governed by high/low
// watermarks. The model exposes exactly the metrics the paper reports:
// read/write bursts, queue lengths seen by arriving requests, row hits,
// reads per read-to-write turnaround, per-bank accesses and request
// latency.
package dram

// Config describes the memory system. The defaults mirror Table III of
// the paper.
type Config struct {
	// Channels is the number of independent memory channels.
	Channels int
	// RanksPerChannel is the number of ranks per channel. The timing
	// model folds ranks into the bank count (Table III uses one rank).
	RanksPerChannel int
	// BanksPerRank is the number of banks per rank.
	BanksPerRank int
	// BurstBytes is the DRAM interface burst size; requests are split
	// into bursts of this many bytes.
	BurstBytes uint64
	// RowBufferBytes is the per-bank row-buffer (page) size, which also
	// sets the channel-interleaving granularity.
	RowBufferBytes uint64
	// ReadQueueDepth and WriteQueueDepth are per-channel queue
	// capacities in bursts.
	ReadQueueDepth  int
	WriteQueueDepth int
	// WriteHighRatio and WriteLowRatio are the write-drain watermarks as
	// fractions of WriteQueueDepth.
	WriteHighRatio float64
	WriteLowRatio  float64

	// Timing parameters in controller cycles.
	TRP    uint64 // precharge
	TRCD   uint64 // activate (row open)
	TCL    uint64 // column access (CAS)
	TBurst uint64 // data transfer per burst
	TWR    uint64 // write recovery
	TRTW   uint64 // read-to-write bus turnaround
	TWTR   uint64 // write-to-read bus turnaround

	// TREFI, when non-zero, enables periodic refresh: every TREFI
	// cycles each channel pauses for TRFC cycles, closing every row.
	// Disabled by default so that the Table III validation platform
	// stays minimal; enable with WithRefresh for refresh studies.
	TREFI uint64
	TRFC  uint64

	// ChargeCacheEntries, when non-zero, enables a per-channel
	// ChargeCache (Hassan et al., HPCA 2016) with that many entries:
	// activating a row that was closed recently costs TRCDReduced
	// instead of TRCD. Zero disables the optimisation (the default).
	ChargeCacheEntries int
	// TRCDReduced is the activation latency on a ChargeCache hit.
	TRCDReduced uint64
}

// WithRefresh returns a copy of the configuration with periodic refresh
// enabled using LPDDR-class intervals (all-bank refresh every ~3.9k
// cycles costing ~210 cycles).
func (c Config) WithRefresh() Config {
	c.TREFI = 3900
	c.TRFC = 210
	return c
}

// WithChargeCache returns a copy of the configuration with an
// entries-deep ChargeCache enabled and the reduced activation latency
// set to roughly a third of tRCD, mirroring the HPCA 2016 evaluation.
func (c Config) WithChargeCache(entries int) Config {
	c.ChargeCacheEntries = entries
	c.TRCDReduced = c.TRCD / 3
	return c
}

// Default returns the Table III configuration: 4 channels, 1 rank, 8
// banks, 32-byte bursts, 32-entry read and 64-entry write queues, 85%/50%
// write thresholds, with LPDDR-class timings.
func Default() Config {
	return Config{
		Channels:        4,
		RanksPerChannel: 1,
		BanksPerRank:    8,
		BurstBytes:      32,
		RowBufferBytes:  1024,
		ReadQueueDepth:  32,
		WriteQueueDepth: 64,
		WriteHighRatio:  0.85,
		WriteLowRatio:   0.50,
		TRP:             15,
		TRCD:            15,
		TCL:             15,
		TBurst:          4,
		TWR:             12,
		TRTW:            6,
		TWTR:            8,
	}
}

// banks returns the total banks per channel.
func (c Config) banks() int { return c.RanksPerChannel * c.BanksPerRank }

// writeHigh returns the write-drain start threshold in bursts.
func (c Config) writeHigh() int {
	n := int(float64(c.WriteQueueDepth) * c.WriteHighRatio)
	if n < 1 {
		n = 1
	}
	return n
}

// writeLow returns the write-drain stop threshold in bursts.
func (c Config) writeLow() int {
	return int(float64(c.WriteQueueDepth) * c.WriteLowRatio)
}

// mapAddr decomposes a burst-aligned address into channel, bank and row
// following a RoBaChCo-style interleave: consecutive row-buffer-sized
// stripes rotate across channels, then banks, with the row above.
func (c Config) mapAddr(addr uint64) (ch, bank int, row uint64) {
	stripe := addr / c.RowBufferBytes
	ch = int(stripe % uint64(c.Channels))
	rest := stripe / uint64(c.Channels)
	bank = int(rest % uint64(c.banks()))
	row = rest / uint64(c.banks())
	return ch, bank, row
}
