package dram

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/xbar"
)

// Simulation gauges: the channel models already compute row hits and
// burst counts; these surface the most recent Run's totals to the
// metrics registry (last simulation wins — per-run numbers stay in the
// returned Result).
var (
	gRequests      = obs.NewGauge("dram.requests")
	gReadBursts    = obs.NewGauge("dram.read_bursts")
	gWriteBursts   = obs.NewGauge("dram.write_bursts")
	gReadRowHits   = obs.NewGauge("dram.read_row_hits")
	gWriteRowHits  = obs.NewGauge("dram.write_row_hits")
	gReadRowMisses = obs.NewGauge("dram.read_row_misses")
	gWriteRowMiss  = obs.NewGauge("dram.write_row_misses")
	gAvgLatency    = obs.NewGauge("dram.avg_latency_cycles")
)

// System is a multi-channel memory system fed by a trace.Source through a
// crossbar interconnect (as in the paper's gem5 platform). Use Run to
// simulate a whole source, or NewSystem plus Inject/Drain for finer
// control.
type System struct {
	cfg      Config
	xbar     *xbar.Crossbar
	channels []*channel

	reqs      []*reqState
	totalLat  float64
	nRequests uint64
}

// NewSystem creates a memory system with the given configuration and
// base interconnect latency in cycles. The crossbar serialises traffic
// per channel at the DRAM burst width per cycle.
func NewSystem(cfg Config, xbarLatency uint64) *System {
	s := &System{
		cfg:  cfg,
		xbar: xbar.New(cfg.Channels, xbarLatency, cfg.BurstBytes),
	}
	s.channels = make([]*channel, cfg.Channels)
	for i := range s.channels {
		s.channels[i] = newChannel(cfg, i)
	}
	return s
}

// Inject presents one request to the memory system. The returned delay is
// the backpressure the request experienced beyond its arrival time; the
// caller should feed it back to the source (trace.Source.Delay).
func (s *System) Inject(r trace.Request) (delay uint64) {
	return s.InjectTagged(r, nil)
}

// InjectTagged is Inject with per-source attribution: when dev is
// non-nil, the request's bursts, row hits, observed queue depths and
// (after Drain) latency are accumulated into it in addition to the
// system-wide statistics. Passing each traffic source of a shared
// scenario its own DeviceStats yields the per-device contention
// breakdown of the paper's §VI mixing study; the timing simulation is
// identical with or without tags.
func (s *System) InjectTagged(r trace.Request, dev *DeviceStats) (delay uint64) {
	port, _, _ := s.cfg.mapAddr((r.Addr / s.cfg.BurstBytes) * s.cfg.BurstBytes)
	size := uint64(r.Size)
	if size == 0 {
		size = 1
	}
	arrival := s.xbar.Transfer(r.Time, port, size)
	first := r.Addr / s.cfg.BurstBytes
	last := (r.End() - 1) / s.cfg.BurstBytes
	if r.Size == 0 {
		last = first
	}
	rs := &reqState{inject: r.Time, remaining: int(last - first + 1), dev: dev}
	if dev != nil {
		dev.Requests++
	}
	s.reqs = append(s.reqs, rs)
	var worst uint64
	for bi := first; bi <= last; bi++ {
		addr := bi * s.cfg.BurstBytes
		ch, bank, row := s.cfg.mapAddr(addr)
		b := burst{bank: bank, row: row, write: r.Op == trace.Write, req: rs}
		accepted := s.channels[ch].enqueue(b, arrival)
		if accepted-arrival > worst {
			worst = accepted - arrival
		}
	}
	return worst
}

// Drain services every queued burst and finalises latency accounting.
func (s *System) Drain() {
	for _, c := range s.channels {
		c.drain()
	}
	for _, r := range s.reqs {
		lat := float64(r.done - r.inject)
		s.totalLat += lat
		s.nRequests++
		if r.dev != nil {
			r.dev.latSum += lat
		}
	}
	s.reqs = s.reqs[:0]
}

// Channels returns the number of channels.
func (s *System) Channels() int { return len(s.channels) }

// ChannelStats returns the statistics of channel i.
func (s *System) ChannelStats(i int) *ChannelStats { return &s.channels[i].stats }

// Result aggregates system-wide metrics after Drain.
type Result struct {
	// Per-channel statistics in channel order.
	Channels []ChannelStats
	// AvgLatency is the mean request latency in cycles (injection to
	// last-burst completion), the Fig. 13 metric.
	AvgLatency float64
	// Requests is the number of requests simulated.
	Requests uint64
}

// Result snapshots the metrics. Call after Drain.
func (s *System) Result() Result {
	res := Result{Requests: s.nRequests}
	if s.nRequests > 0 {
		res.AvgLatency = s.totalLat / float64(s.nRequests)
	}
	res.Channels = make([]ChannelStats, len(s.channels))
	for i, c := range s.channels {
		res.Channels[i] = c.stats
		res.Channels[i].BusyUntil = c.busFree
		if c.cc != nil {
			res.Channels[i].ChargeCache = ChargeCacheStats{Hits: c.cc.hits, Lookups: c.cc.lookups}
		}
	}
	return res
}

// Run simulates an entire source against a fresh memory system and
// returns the aggregated result. Backpressure is fed back to the source.
func Run(src trace.Source, cfg Config, xbarLatency uint64) Result {
	s := NewSystem(cfg, xbarLatency)
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		if d := s.Inject(r); d > 0 {
			src.Delay(d)
		}
	}
	s.Drain()
	res := s.Result()
	gRequests.Set(float64(res.Requests))
	gReadBursts.Set(float64(res.ReadBursts()))
	gWriteBursts.Set(float64(res.WriteBursts()))
	gReadRowHits.Set(float64(res.ReadRowHits()))
	gWriteRowHits.Set(float64(res.WriteRowHits()))
	gReadRowMisses.Set(float64(res.ReadBursts() - res.ReadRowHits()))
	gWriteRowMiss.Set(float64(res.WriteBursts() - res.WriteRowHits()))
	gAvgLatency.Set(res.AvgLatency)
	return res
}

// Aggregate metrics across channels.

// ReadBursts returns the total read bursts across channels.
func (r Result) ReadBursts() uint64 {
	return r.sum(func(c *ChannelStats) uint64 { return c.ReadBursts })
}

// WriteBursts returns the total write bursts across channels.
func (r Result) WriteBursts() uint64 {
	return r.sum(func(c *ChannelStats) uint64 { return c.WriteBursts })
}

// ReadRowHits returns the total read row hits across channels.
func (r Result) ReadRowHits() uint64 {
	return r.sum(func(c *ChannelStats) uint64 { return c.ReadRowHits })
}

// WriteRowHits returns the total write row hits across channels.
func (r Result) WriteRowHits() uint64 {
	return r.sum(func(c *ChannelStats) uint64 { return c.WriteRowHits })
}

func (r Result) sum(f func(*ChannelStats) uint64) uint64 {
	var n uint64
	for i := range r.Channels {
		n += f(&r.Channels[i])
	}
	return n
}

// AvgReadQueueLen returns the mean read-queue length observed by arriving
// read bursts across all channels (Fig. 7).
func (r Result) AvgReadQueueLen() float64 {
	return r.meanHist(func(c *ChannelStats) *stats.Histogram { return c.ReadQLenSeen })
}

// AvgWriteQueueLen returns the mean write-queue length observed by
// arriving write bursts across all channels (Fig. 7).
func (r Result) AvgWriteQueueLen() float64 {
	return r.meanHist(func(c *ChannelStats) *stats.Histogram { return c.WriteQLenSeen })
}

func (r Result) meanHist(pick func(*ChannelStats) *stats.Histogram) float64 {
	var sum float64
	var n uint64
	for i := range r.Channels {
		h := pick(&r.Channels[i])
		sum += h.Mean() * float64(h.Total())
		n += h.Total()
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// AvgReadsPerTurnaround returns the mean number of reads serviced between
// consecutive read-to-write switches on channel i (Fig. 11).
func (r Result) AvgReadsPerTurnaround(i int) float64 {
	return r.Channels[i].ReadsPerTurnaround.Mean()
}

// String summarises the result.
func (r Result) String() string {
	return fmt.Sprintf("dram.Result{reqs=%d rb=%d wb=%d rrh=%d wrh=%d lat=%.1f}",
		r.Requests, r.ReadBursts(), r.WriteBursts(), r.ReadRowHits(), r.WriteRowHits(), r.AvgLatency)
}
