package dram

import "repro/internal/stats"

// burst is one DRAM-interface transfer, the scheduling unit of the
// controller.
type burst struct {
	bank    int
	row     uint64
	write   bool
	arrival uint64
	req     *reqState
	seq     uint64 // global arrival order, the FCFS key
}

// reqState tracks an in-flight request across its bursts so that the
// system can report per-request latency. dev, when non-nil, receives
// the request's per-source statistics (tagged injection, see
// System.InjectTagged); untagged requests leave it nil and cost the
// channels nothing beyond the nil checks.
type reqState struct {
	inject    uint64
	remaining int
	done      uint64
	dev       *DeviceStats
}

// DeviceStats accumulates the contention statistics of one traffic
// source across a simulation: how many bursts it injected, how many of
// them found their row open, the queue depths its bursts observed on
// arrival, and (after Drain) its mean request latency. A shared memory
// system attributes each of these at the moment it happens, so a
// device's row hits reflect the interleaved row-buffer state all
// devices produce together — the paper's §VI contention study.
type DeviceStats struct {
	Requests     uint64
	ReadBursts   uint64
	WriteBursts  uint64
	ReadRowHits  uint64
	WriteRowHits uint64

	qlenSum uint64 // queue length observed by this device's arriving bursts
	qlenN   uint64
	latSum  float64 // summed request latency, finalised by Drain
}

// AvgQueueLen returns the mean read+write queue length this device's
// bursts observed on arrival.
func (d *DeviceStats) AvgQueueLen() float64 {
	if d.qlenN == 0 {
		return 0
	}
	return float64(d.qlenSum) / float64(d.qlenN)
}

// AvgLatency returns the device's mean request latency in cycles
// (injection to last-burst completion). Valid after Drain.
func (d *DeviceStats) AvgLatency() float64 {
	if d.Requests == 0 {
		return 0
	}
	return d.latSum / float64(d.Requests)
}

// bankState is the row-buffer state of one bank.
type bankState struct {
	open    bool
	row     uint64
	readyAt uint64
}

// channel is one memory channel: two queues, a bank array, and a
// FR-FCFS/open-adaptive/write-drain scheduler.
type channel struct {
	cfg   Config
	id    int
	banks []bankState

	readQ  []burst
	writeQ []burst

	busFree   uint64
	lastWrite bool
	draining  bool
	seq       uint64

	readsSinceTurn uint64

	cc          *chargeCache
	nextRefresh uint64
	stats       ChannelStats
}

// ChannelStats aggregates every per-channel metric the paper reports.
type ChannelStats struct {
	// ReadBursts and WriteBursts count bursts enqueued (Fig. 6).
	ReadBursts  uint64
	WriteBursts uint64
	// ReadRowHits and WriteRowHits count serviced bursts that found
	// their row open (Fig. 9, Fig. 10).
	ReadRowHits  uint64
	WriteRowHits uint64
	// ReadQLenSeen and WriteQLenSeen record the queue length observed by
	// each arriving burst (Fig. 7 averages, Fig. 8 distribution).
	ReadQLenSeen  *stats.Histogram
	WriteQLenSeen *stats.Histogram
	// ReadsPerTurnaround records, at each read-to-write switch, how many
	// reads were serviced since the previous switch to reads (Fig. 11).
	ReadsPerTurnaround *stats.Histogram
	// PerBankReadBursts and PerBankWriteBursts count serviced bursts per
	// bank (Fig. 12).
	PerBankReadBursts  []uint64
	PerBankWriteBursts []uint64
	// ChargeCache reports the optional row-activation cache's hit
	// statistics (zero when the optimisation is disabled).
	ChargeCache ChargeCacheStats
	// Refreshes counts all-bank refresh operations (zero when refresh
	// is disabled).
	Refreshes uint64
	// BusyUntil is the cycle at which the channel finished its last
	// burst, the integration span for background energy.
	BusyUntil uint64
}

func newChannel(cfg Config, id int) *channel {
	return &channel{
		cfg:         cfg,
		id:          id,
		banks:       make([]bankState, cfg.banks()),
		cc:          newChargeCache(cfg.ChargeCacheEntries),
		nextRefresh: cfg.TREFI,
		stats: ChannelStats{
			ReadQLenSeen:       stats.NewHistogram(),
			WriteQLenSeen:      stats.NewHistogram(),
			ReadsPerTurnaround: stats.NewHistogram(),
			PerBankReadBursts:  make([]uint64, cfg.banks()),
			PerBankWriteBursts: make([]uint64, cfg.banks()),
		},
	}
}

// enqueue admits a burst at time at, first advancing the channel and, if
// the target queue is full, servicing bursts until a slot frees. It
// returns the admission time (>= at), whose excess over at is the
// backpressure delay experienced by the source.
func (c *channel) enqueue(b burst, at uint64) uint64 {
	c.advanceTo(at)
	depth, q := c.cfg.ReadQueueDepth, &c.readQ
	if b.write {
		depth, q = c.cfg.WriteQueueDepth, &c.writeQ
	}
	accepted := at
	for len(*q) >= depth {
		if !c.step() {
			break
		}
		if c.busFree > accepted {
			accepted = c.busFree
		}
	}
	if b.write {
		c.stats.WriteQLenSeen.Add(len(c.writeQ))
		c.stats.WriteBursts++
	} else {
		c.stats.ReadQLenSeen.Add(len(c.readQ))
		c.stats.ReadBursts++
	}
	if b.req != nil && b.req.dev != nil {
		d := b.req.dev
		if b.write {
			d.WriteBursts++
			d.qlenSum += uint64(len(c.writeQ))
		} else {
			d.ReadBursts++
			d.qlenSum += uint64(len(c.readQ))
		}
		d.qlenN++
	}
	b.arrival = accepted
	b.seq = c.seq
	c.seq++
	*q = append(*q, b)
	return accepted
}

// advanceTo services bursts while the channel can begin work before t.
func (c *channel) advanceTo(t uint64) {
	for c.busFree < t && (len(c.readQ) > 0 || len(c.writeQ) > 0) {
		if !c.step() {
			return
		}
	}
}

// drain services everything that remains.
func (c *channel) drain() {
	for len(c.readQ) > 0 || len(c.writeQ) > 0 {
		if !c.step() {
			return
		}
	}
}

// step services exactly one burst according to the scheduling policy. It
// returns false when both queues are empty.
func (c *channel) step() bool {
	writeMode := c.chooseMode()
	q := &c.readQ
	if writeMode {
		q = &c.writeQ
	}
	if len(*q) == 0 {
		return false
	}
	idx := c.pickFRFCFS(*q)
	b := (*q)[idx]
	*q = append((*q)[:idx], (*q)[idx+1:]...)
	c.service(b)
	return true
}

// chooseMode implements write-drain mode switching: writes are delayed
// until the write queue crosses the high watermark (or reads run out),
// then drained down to the low watermark.
func (c *channel) chooseMode() bool {
	wasDraining := c.draining
	if c.draining {
		if len(c.writeQ) <= c.cfg.writeLow() || len(c.writeQ) == 0 {
			c.draining = false
		}
	} else {
		if len(c.writeQ) >= c.cfg.writeHigh() || (len(c.readQ) == 0 && len(c.writeQ) > 0) {
			c.draining = true
		}
	}
	if len(c.readQ) == 0 && len(c.writeQ) > 0 {
		c.draining = true
	}
	if len(c.writeQ) == 0 {
		c.draining = false
	}
	if c.draining && !wasDraining {
		// A read-to-write turnaround: record reads serviced since the
		// last turnaround (Fig. 11).
		c.stats.ReadsPerTurnaround.Add(int(c.readsSinceTurn))
		c.readsSinceTurn = 0
	}
	return c.draining
}

// pickFRFCFS returns the index of the burst to service: the oldest
// row-hitting burst if any (first ready), otherwise the oldest burst
// (first come, first served).
func (c *channel) pickFRFCFS(q []burst) int {
	best := -1
	for i := range q {
		bk := &c.banks[q[i].bank]
		if bk.open && bk.row == q[i].row {
			if best < 0 || q[i].seq < q[best].seq {
				best = i
			}
		}
	}
	if best >= 0 {
		return best
	}
	for i := range q {
		if best < 0 || q[i].seq < q[best].seq {
			best = i
		}
	}
	return best
}

// service performs the timing update and statistics for one burst.
func (c *channel) service(b burst) {
	bk := &c.banks[b.bank]
	start := c.busFree
	if b.arrival > start {
		start = b.arrival
	}
	if bk.readyAt > start {
		start = bk.readyAt
	}
	// Periodic all-bank refresh: every row closes and the channel
	// stalls for TRFC.
	for c.cfg.TREFI > 0 && start >= c.nextRefresh {
		refEnd := c.nextRefresh + c.cfg.TRFC
		for i := range c.banks {
			c.banks[i].open = false
			if c.banks[i].readyAt < refEnd {
				c.banks[i].readyAt = refEnd
			}
		}
		c.stats.Refreshes++
		c.nextRefresh += c.cfg.TREFI
		if start < refEnd {
			start = refEnd
		}
		if bk.readyAt > start {
			start = bk.readyAt
		}
	}
	// Bus-direction turnaround penalty.
	if b.write != c.lastWrite {
		if b.write {
			start += c.cfg.TRTW
		} else {
			start += c.cfg.TWTR
		}
	}
	c.lastWrite = b.write

	hit := bk.open && bk.row == b.row
	var prep uint64
	switch {
	case hit:
		prep = 0
	case bk.open:
		// Conflict: precharge the old row, then activate the new one.
		c.closeRow(b.bank, bk.row)
		prep = c.cfg.TRP + c.activate(b.bank, b.row)
	default:
		prep = c.activate(b.bank, b.row) // closed: activate only
	}
	done := start + prep + c.cfg.TCL + c.cfg.TBurst
	c.busFree = done
	bk.open = true
	bk.row = b.row
	bk.readyAt = done
	if b.write {
		bk.readyAt += c.cfg.TWR
	}

	if hit {
		if b.write {
			c.stats.WriteRowHits++
		} else {
			c.stats.ReadRowHits++
		}
		if b.req != nil && b.req.dev != nil {
			if b.write {
				b.req.dev.WriteRowHits++
			} else {
				b.req.dev.ReadRowHits++
			}
		}
	}
	if b.write {
		c.stats.PerBankWriteBursts[b.bank]++
	} else {
		c.stats.PerBankReadBursts[b.bank]++
		c.readsSinceTurn++
	}

	// Open-adaptive page policy: close the row when nothing queued wants
	// it, keeping it open otherwise.
	if !c.pendingForRow(b.bank, b.row) {
		bk.open = false
		c.closeRow(b.bank, b.row)
		if bk.readyAt < done+c.cfg.TRP {
			bk.readyAt = done + c.cfg.TRP
		}
	}

	if b.req != nil {
		b.req.remaining--
		if done > b.req.done {
			b.req.done = done
		}
	}
}

// activate returns the activation latency for opening a row: the reduced
// tRCD when the ChargeCache holds the row, the full tRCD otherwise.
func (c *channel) activate(bank int, row uint64) uint64 {
	if c.cc != nil && c.cc.lookup(bank, row) {
		return c.cfg.TRCDReduced
	}
	return c.cfg.TRCD
}

// closeRow records a row closure in the ChargeCache.
func (c *channel) closeRow(bank int, row uint64) {
	if c.cc != nil {
		c.cc.insert(bank, row)
	}
}

// pendingForRow reports whether any queued burst targets the bank's row.
func (c *channel) pendingForRow(bank int, row uint64) bool {
	for i := range c.readQ {
		if c.readQ[i].bank == bank && c.readQ[i].row == row {
			return true
		}
	}
	for i := range c.writeQ {
		if c.writeQ[i].bank == bank && c.writeQ[i].row == row {
			return true
		}
	}
	return false
}
