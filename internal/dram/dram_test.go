package dram

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/trace"
)

func req(t, a uint64, s uint32, op trace.Op) trace.Request {
	return trace.Request{Time: t, Addr: a, Size: s, Op: op}
}

func runTrace(tr trace.Trace, cfg Config) Result {
	return Run(trace.NewReplayer(tr), cfg, 0)
}

func TestDefaultConfigMatchesTableIII(t *testing.T) {
	c := Default()
	if c.Channels != 4 || c.RanksPerChannel != 1 || c.BanksPerRank != 8 {
		t.Errorf("geometry %d/%d/%d", c.Channels, c.RanksPerChannel, c.BanksPerRank)
	}
	if c.BurstBytes != 32 {
		t.Errorf("burst %d", c.BurstBytes)
	}
	if c.ReadQueueDepth != 32 || c.WriteQueueDepth != 64 {
		t.Errorf("queues %d/%d", c.ReadQueueDepth, c.WriteQueueDepth)
	}
	if c.writeHigh() != 54 || c.writeLow() != 32 {
		t.Errorf("thresholds %d/%d, want 54/32", c.writeHigh(), c.writeLow())
	}
}

func TestMapAddrRoundRobin(t *testing.T) {
	c := Default()
	// Consecutive row-buffer stripes rotate over channels.
	ch0, _, _ := c.mapAddr(0)
	ch1, _, _ := c.mapAddr(c.RowBufferBytes)
	ch2, _, _ := c.mapAddr(2 * c.RowBufferBytes)
	if ch0 == ch1 || ch1 == ch2 || ch0 != 0 {
		t.Errorf("channels %d,%d,%d", ch0, ch1, ch2)
	}
	// Same stripe, same mapping.
	chA, bkA, rwA := c.mapAddr(100)
	chB, bkB, rwB := c.mapAddr(900)
	if chA != chB || bkA != bkB || rwA != rwB {
		t.Error("addresses within one stripe mapped differently")
	}
}

func TestMapAddrBankThenRow(t *testing.T) {
	c := Default()
	// After all channels, the bank advances; after all banks, the row.
	_, bk0, r0 := c.mapAddr(0)
	_, bk1, r1 := c.mapAddr(uint64(c.Channels) * c.RowBufferBytes)
	if bk1 != bk0+1 || r0 != r1 {
		t.Errorf("bank step: bank %d->%d row %d->%d", bk0, bk1, r0, r1)
	}
	_, bkW, rW := c.mapAddr(uint64(c.Channels*c.banks()) * c.RowBufferBytes)
	if bkW != bk0 || rW != r0+1 {
		t.Errorf("row step: bank %d row %d", bkW, rW)
	}
}

func TestBurstSplitting(t *testing.T) {
	// A 128-byte request is 4 bursts of 32B; 1 byte is 1 burst.
	res := runTrace(trace.Trace{req(0, 0, 128, trace.Read)}, Default())
	if res.ReadBursts() != 4 {
		t.Errorf("128B request made %d bursts, want 4", res.ReadBursts())
	}
	res = runTrace(trace.Trace{req(0, 0, 1, trace.Write)}, Default())
	if res.WriteBursts() != 1 {
		t.Errorf("1B request made %d bursts, want 1", res.WriteBursts())
	}
}

func TestUnalignedRequestSpansBursts(t *testing.T) {
	// 32 bytes starting at offset 16 touches two bursts.
	res := runTrace(trace.Trace{req(0, 16, 32, trace.Read)}, Default())
	if res.ReadBursts() != 2 {
		t.Errorf("unaligned request made %d bursts, want 2", res.ReadBursts())
	}
}

func TestZeroSizeRequestCountsOneBurst(t *testing.T) {
	res := runTrace(trace.Trace{req(0, 64, 0, trace.Read)}, Default())
	if res.ReadBursts() != 1 {
		t.Errorf("zero-size request made %d bursts", res.ReadBursts())
	}
}

func TestSequentialReadsHitRows(t *testing.T) {
	// A dense linear scan within one row buffer: requests queue up, the
	// row stays open (open-adaptive sees pending hits), and everything
	// after the first burst is a row hit.
	var tr trace.Trace
	for i := 0; i < 32; i++ {
		tr = append(tr, req(0, uint64(i*32), 32, trace.Read))
	}
	res := runTrace(tr, Default())
	if res.ReadBursts() != 32 {
		t.Fatalf("bursts = %d", res.ReadBursts())
	}
	// All 32 bursts are in one 1KB stripe = one bank/row. The first
	// burst activates; the second can be serviced before the third
	// arrives through the crossbar (closing the idle row); the rest
	// queue up and hit: 30 hits.
	if res.ReadRowHits() < 30 {
		t.Errorf("row hits = %d, want >= 30", res.ReadRowHits())
	}
}

func TestRandomRowsMissMoreThanLinear(t *testing.T) {
	rng := stats.NewRNG(1)
	var rnd, lin trace.Trace
	for i := 0; i < 2000; i++ {
		rnd = append(rnd, req(uint64(i*5), rng.Uint64n(1<<26)&^31, 32, trace.Read))
		lin = append(lin, req(uint64(i*5), uint64(i*32), 32, trace.Read))
	}
	rndHits := runTrace(rnd, Default()).ReadRowHits()
	linHits := runTrace(lin, Default()).ReadRowHits()
	if rndHits >= linHits {
		t.Errorf("random (%d) should hit fewer rows than linear (%d)", rndHits, linHits)
	}
}

func TestWriteDrainDelaysWrites(t *testing.T) {
	// Writes alone trigger drain mode once the queue passes the high
	// watermark or reads run out; either way they are eventually
	// serviced and counted.
	var tr trace.Trace
	for i := 0; i < 100; i++ {
		tr = append(tr, req(uint64(i*10), uint64(i*32), 32, trace.Write))
	}
	res := runTrace(tr, Default())
	if res.WriteBursts() != 100 {
		t.Errorf("write bursts = %d", res.WriteBursts())
	}
	if res.WriteRowHits() == 0 {
		t.Error("linear writes produced no row hits")
	}
}

func TestReadsPerTurnaroundRecorded(t *testing.T) {
	// Interleave enough writes to force drain transitions.
	var tr trace.Trace
	tm := uint64(0)
	for i := 0; i < 3000; i++ {
		tm += 2
		op := trace.Read
		if i%3 != 0 {
			op = trace.Write
		}
		tr = append(tr, req(tm, uint64(i%512)*64, 64, op))
	}
	res := runTrace(tr, Default())
	turns := uint64(0)
	for i := range res.Channels {
		turns += res.Channels[i].ReadsPerTurnaround.Total()
	}
	if turns == 0 {
		t.Error("no read-to-write turnarounds recorded")
	}
}

func TestQueueLengthSeenRecorded(t *testing.T) {
	var tr trace.Trace
	for i := 0; i < 200; i++ {
		tr = append(tr, req(uint64(i), uint64(i*32), 32, trace.Read))
	}
	res := runTrace(tr, Default())
	var seen uint64
	for i := range res.Channels {
		seen += res.Channels[i].ReadQLenSeen.Total()
	}
	if seen != 200 {
		t.Errorf("queue-length observations = %d, want 200", seen)
	}
	// Back-to-back arrivals must observe non-empty queues.
	if res.AvgReadQueueLen() == 0 {
		t.Error("burst arrivals saw an always-empty queue")
	}
}

func TestBackpressureDelaysSource(t *testing.T) {
	// Flood one channel so the 32-entry read queue overflows; the
	// replayer must be delayed (its later timestamps shift).
	var tr trace.Trace
	for i := 0; i < 500; i++ {
		tr = append(tr, req(uint64(i), uint64(i%8)*32, 32, trace.Read))
	}
	rep := trace.NewReplayer(tr)
	s := NewSystem(Default(), 0)
	maxDelay := uint64(0)
	for {
		r, ok := rep.Next()
		if !ok {
			break
		}
		if d := s.Inject(r); d > 0 {
			rep.Delay(d)
			if d > maxDelay {
				maxDelay = d
			}
		}
	}
	s.Drain()
	if maxDelay == 0 {
		t.Error("no backpressure under a flood")
	}
}

func TestPerBankCountsSumToBursts(t *testing.T) {
	rng := stats.NewRNG(2)
	var tr trace.Trace
	for i := 0; i < 1000; i++ {
		op := trace.Read
		if rng.Bool(0.5) {
			op = trace.Write
		}
		tr = append(tr, req(uint64(i*50), rng.Uint64n(1<<24)&^31, 32, op))
	}
	res := runTrace(tr, Default())
	var bankReads, bankWrites uint64
	for i := range res.Channels {
		for _, n := range res.Channels[i].PerBankReadBursts {
			bankReads += n
		}
		for _, n := range res.Channels[i].PerBankWriteBursts {
			bankWrites += n
		}
	}
	if bankReads != res.ReadBursts() || bankWrites != res.WriteBursts() {
		t.Errorf("per-bank sums %d/%d, totals %d/%d",
			bankReads, bankWrites, res.ReadBursts(), res.WriteBursts())
	}
}

func TestRowHitsNeverExceedBursts(t *testing.T) {
	rng := stats.NewRNG(3)
	var tr trace.Trace
	for i := 0; i < 500; i++ {
		tr = append(tr, req(uint64(i*20), rng.Uint64n(1<<20), 64, trace.Read))
	}
	res := runTrace(tr, Default())
	if res.ReadRowHits() > res.ReadBursts() {
		t.Error("row hits exceed bursts")
	}
}

func TestLatencyPositiveAndBounded(t *testing.T) {
	tr := trace.Trace{req(0, 0, 32, trace.Read)}
	res := Run(trace.NewReplayer(tr), Default(), 20)
	// One read: 1 cycle crossbar occupancy + 20 traversal + activate 15
	// + CAS 15 + burst 4 = 55.
	if res.AvgLatency != 55 {
		t.Errorf("single-read latency = %v, want 55", res.AvgLatency)
	}
}

func TestDeterministicResults(t *testing.T) {
	rng := stats.NewRNG(4)
	var tr trace.Trace
	for i := 0; i < 1000; i++ {
		tr = append(tr, req(uint64(i*7), rng.Uint64n(1<<22)&^31, 64, trace.Read))
	}
	a := runTrace(tr, Default())
	b := runTrace(tr, Default())
	if a.ReadRowHits() != b.ReadRowHits() || a.AvgLatency != b.AvgLatency {
		t.Error("simulation is not deterministic")
	}
}

func TestRequestsCounted(t *testing.T) {
	var tr trace.Trace
	for i := 0; i < 77; i++ {
		tr = append(tr, req(uint64(i*10), uint64(i*64), 64, trace.Read))
	}
	res := runTrace(tr, Default())
	if res.Requests != 77 {
		t.Errorf("Requests = %d", res.Requests)
	}
	if res.String() == "" {
		t.Error("empty Result.String")
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	// A 128-byte warm-up keeps row 0 open (its remaining bursts stay
	// queued); then an OLDER request to row 1 and a YOUNGER request to
	// row 0 are both queued. FR-FCFS services the younger row-0 hit
	// before the older row-1 miss: 3 hits total (2 warm-up — the first
	// two warm-up bursts are serviced back-to-back before anything else
	// queues — plus the reordered hit). A plain FCFS scheduler would
	// service row 1 in between, closing row 0, for only 2 hits.
	cfg := Default()
	cfg.Channels = 1
	row1 := uint64(cfg.banks()) * cfg.RowBufferBytes
	tr := trace.Trace{
		req(0, 0, 128, trace.Read), // bursts 1-4, row 0
		req(5, row1, 32, trace.Read),
		req(6, 32, 32, trace.Read),
	}
	res := runTrace(tr, cfg)
	if res.ReadRowHits() != 3 {
		t.Errorf("row hits = %d, want 3 (FR-FCFS should reorder)", res.ReadRowHits())
	}
}

func TestOpenAdaptiveClosesIdleRow(t *testing.T) {
	// With no pending requests for the row, the page closes; a later
	// access to the same row is a miss (activate needed), not a hit.
	cfg := Default()
	cfg.Channels = 1
	tr := trace.Trace{
		req(0, 0, 32, trace.Read),
		req(1000000, 32, 32, trace.Read), // long after: row was closed
	}
	res := runTrace(tr, cfg)
	if res.ReadRowHits() != 0 {
		t.Errorf("row hits = %d, want 0 under open-adaptive", res.ReadRowHits())
	}
}
