package dram

import (
	"testing"

	"repro/internal/trace"
)

// mixTrace builds an interleaved two-device workload: device 0 streams
// linearly (row-friendly), device 1 strides across rows.
func mixTrace(n int) (all trace.Trace, owner []int) {
	cfg := Default()
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			all = append(all, req(uint64(i*10), uint64(i/2)*cfg.BurstBytes, 32, trace.Read))
			owner = append(owner, 0)
		} else {
			all = append(all, req(uint64(i*10), uint64(i/2)*cfg.RowBufferBytes*7, 32, trace.Write))
			owner = append(owner, 1)
		}
	}
	return all, owner
}

// TestTaggedStatsSumToAggregate drives a mixed workload through
// InjectTagged and checks that the per-device statistics partition the
// system-wide totals exactly.
func TestTaggedStatsSumToAggregate(t *testing.T) {
	all, owner := mixTrace(200)
	devs := [2]DeviceStats{}
	s := NewSystem(Default(), 0)
	src := trace.NewReplayer(all)
	i := 0
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		if d := s.InjectTagged(r, &devs[owner[i]]); d > 0 {
			src.Delay(d)
		}
		i++
	}
	s.Drain()
	res := s.Result()

	if got := devs[0].Requests + devs[1].Requests; got != res.Requests {
		t.Errorf("device requests %d+%d != aggregate %d", devs[0].Requests, devs[1].Requests, got)
	}
	if got := devs[0].ReadBursts + devs[1].ReadBursts; got != res.ReadBursts() {
		t.Errorf("device read bursts sum %d != aggregate %d", got, res.ReadBursts())
	}
	if got := devs[0].WriteBursts + devs[1].WriteBursts; got != res.WriteBursts() {
		t.Errorf("device write bursts sum %d != aggregate %d", got, res.WriteBursts())
	}
	if got := devs[0].ReadRowHits + devs[1].ReadRowHits; got != res.ReadRowHits() {
		t.Errorf("device read row hits sum %d != aggregate %d", got, res.ReadRowHits())
	}
	if got := devs[0].WriteRowHits + devs[1].WriteRowHits; got != res.WriteRowHits() {
		t.Errorf("device write row hits sum %d != aggregate %d", got, res.WriteRowHits())
	}
	// Device 0 only reads, device 1 only writes in this workload.
	if devs[0].WriteBursts != 0 || devs[1].ReadBursts != 0 {
		t.Errorf("attribution crossed devices: dev0 writes=%d dev1 reads=%d",
			devs[0].WriteBursts, devs[1].ReadBursts)
	}
	// The linear device should see a better row-hit rate than the strider.
	if devs[0].ReadRowHits == 0 {
		t.Error("linear device recorded no row hits")
	}
	if devs[0].AvgLatency() <= 0 || devs[1].AvgLatency() <= 0 {
		t.Errorf("latencies not finalised: %v / %v", devs[0].AvgLatency(), devs[1].AvgLatency())
	}
}

// TestTaggedInjectMatchesUntagged checks the timing simulation is
// byte-for-byte unchanged by tagging: same result with and without tags.
func TestTaggedInjectMatchesUntagged(t *testing.T) {
	all, owner := mixTrace(120)

	run := func(tagged bool) Result {
		s := NewSystem(Default(), 0)
		devs := [2]DeviceStats{}
		src := trace.NewReplayer(all)
		i := 0
		for {
			r, ok := src.Next()
			if !ok {
				break
			}
			var d uint64
			if tagged {
				d = s.InjectTagged(r, &devs[owner[i]])
			} else {
				d = s.Inject(r)
			}
			if d > 0 {
				src.Delay(d)
			}
			i++
		}
		s.Drain()
		return s.Result()
	}

	a, b := run(false), run(true)
	if a.String() != b.String() {
		t.Errorf("tagged run diverged from untagged:\n  untagged %v\n  tagged   %v", a, b)
	}
	if a.AvgLatency != b.AvgLatency {
		t.Errorf("latency diverged: %v vs %v", a.AvgLatency, b.AvgLatency)
	}
}
