package dram

// ChargeCache (Hassan et al., HPCA 2016) lowers activation latency for
// rows that were closed recently: a recently-accessed row's cells remain
// highly charged, so it can be activated with a reduced tRCD. The paper's
// §VI names ChargeCache as the kind of memory-controller optimisation
// Mocktails lets academics evaluate against proprietary device behaviour;
// this file adds that optimisation to the controller model so the
// repository can run that exact study (see the "chargecache" experiment).

// chargeCache is a per-channel LRU table of recently-closed rows.
type chargeCache struct {
	capacity int
	entries  []ccKey // index 0 = most recent
	hits     uint64
	lookups  uint64
}

type ccKey struct {
	bank int
	row  uint64
}

func newChargeCache(capacity int) *chargeCache {
	if capacity <= 0 {
		return nil
	}
	return &chargeCache{capacity: capacity}
}

// lookup reports whether the row was closed recently, refreshing its
// recency on a hit.
func (c *chargeCache) lookup(bank int, row uint64) bool {
	c.lookups++
	k := ccKey{bank, row}
	for i, e := range c.entries {
		if e == k {
			copy(c.entries[1:i+1], c.entries[:i])
			c.entries[0] = k
			c.hits++
			return true
		}
	}
	return false
}

// insert records a row closure, evicting the least recent entry when
// full.
func (c *chargeCache) insert(bank int, row uint64) {
	k := ccKey{bank, row}
	for i, e := range c.entries {
		if e == k {
			copy(c.entries[1:i+1], c.entries[:i])
			c.entries[0] = k
			return
		}
	}
	if len(c.entries) < c.capacity {
		c.entries = append(c.entries, ccKey{})
	}
	copy(c.entries[1:], c.entries[:len(c.entries)-1])
	c.entries[0] = k
}

// ChargeCacheStats exposes the hit statistics of one channel's table.
type ChargeCacheStats struct {
	Hits    uint64
	Lookups uint64
}

// HitRate returns hits/lookups as a percentage.
func (s ChargeCacheStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups) * 100
}
