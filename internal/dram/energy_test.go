package dram

import (
	"testing"

	"repro/internal/trace"
)

func TestEnergyZeroForEmptyResult(t *testing.T) {
	var r Result
	e := r.Energy(DefaultEnergy())
	if e.Total() != 0 {
		t.Errorf("empty result energy = %v", e)
	}
}

func TestEnergyComponentsPositive(t *testing.T) {
	var tr trace.Trace
	for i := 0; i < 500; i++ {
		op := trace.Read
		if i%3 == 0 {
			op = trace.Write
		}
		tr = append(tr, trace.Request{Time: uint64(i * 20), Addr: uint64(i*64) % (1 << 20), Size: 64, Op: op})
	}
	res := Run(trace.NewReplayer(tr), Default(), 20)
	e := res.Energy(DefaultEnergy())
	if e.Activate <= 0 || e.Read <= 0 || e.Write <= 0 || e.Background <= 0 {
		t.Errorf("energy components not all positive: %+v", e)
	}
	if e.Total() != e.Activate+e.Read+e.Write+e.Background {
		t.Error("Total inconsistent")
	}
}

func TestRowLocalityReducesActivationEnergy(t *testing.T) {
	// A dense linear scan (high row locality) must spend less
	// activation energy than a random scan of the same length.
	var lin, rnd trace.Trace
	for i := 0; i < 2000; i++ {
		lin = append(lin, trace.Request{Time: uint64(i * 3), Addr: uint64(i * 32), Size: 32, Op: trace.Read})
		rnd = append(rnd, trace.Request{Time: uint64(i * 3), Addr: (uint64(i) * 2654435761) % (1 << 28) &^ 31, Size: 32, Op: trace.Read})
	}
	eLin := Run(trace.NewReplayer(lin), Default(), 20).Energy(DefaultEnergy())
	eRnd := Run(trace.NewReplayer(rnd), Default(), 20).Energy(DefaultEnergy())
	if eLin.Activate >= eRnd.Activate {
		t.Errorf("linear activation energy %v not below random %v", eLin.Activate, eRnd.Activate)
	}
}

func TestBusyUntilRecorded(t *testing.T) {
	tr := trace.Trace{{Time: 0, Addr: 0, Size: 32, Op: trace.Read}}
	res := Run(trace.NewReplayer(tr), Default(), 20)
	if res.Channels[0].BusyUntil == 0 {
		t.Error("BusyUntil not recorded for the serviced channel")
	}
}
