package dram

import (
	"testing"

	"repro/internal/trace"
)

func denseLinear(n int) trace.Trace {
	var tr trace.Trace
	for i := 0; i < n; i++ {
		tr = append(tr, trace.Request{Time: uint64(i * 10), Addr: uint64(i * 32), Size: 32, Op: trace.Read})
	}
	return tr
}

func TestRefreshDisabledByDefault(t *testing.T) {
	res := Run(trace.NewReplayer(denseLinear(500)), Default(), 20)
	for i := range res.Channels {
		if res.Channels[i].Refreshes != 0 {
			t.Fatal("refreshes recorded with refresh disabled")
		}
	}
}

func TestWithRefreshEnables(t *testing.T) {
	cfg := Default().WithRefresh()
	if cfg.TREFI == 0 || cfg.TRFC == 0 {
		t.Fatalf("WithRefresh = %+v", cfg)
	}
}

func TestRefreshCountMatchesSpan(t *testing.T) {
	cfg := Default().WithRefresh()
	res := Run(trace.NewReplayer(denseLinear(5000)), cfg, 20)
	var total, span uint64
	for i := range res.Channels {
		total += res.Channels[i].Refreshes
		if res.Channels[i].BusyUntil > span {
			span = res.Channels[i].BusyUntil
		}
	}
	if total == 0 {
		t.Fatal("no refreshes over a long run")
	}
	// Each busy channel refreshes roughly once per TREFI.
	upper := 4 * (span/cfg.TREFI + 1)
	if total > upper {
		t.Errorf("refreshes = %d, span/TREFI bound = %d", total, upper)
	}
}

func TestRefreshIncreasesLatency(t *testing.T) {
	tr := denseLinear(5000)
	base := Run(trace.NewReplayer(tr.Clone()), Default(), 20)
	ref := Run(trace.NewReplayer(tr.Clone()), Default().WithRefresh(), 20)
	if ref.AvgLatency <= base.AvgLatency {
		t.Errorf("refresh did not increase latency: %.1f vs %.1f", ref.AvgLatency, base.AvgLatency)
	}
}

func TestRefreshClosesRows(t *testing.T) {
	// Two hits to the same row, far enough apart that a refresh
	// intervenes: the second access must be a miss even though the row
	// would have stayed open.
	cfg := Default()
	cfg.Channels = 1
	cfg.TREFI = 1000
	cfg.TRFC = 100
	tr := trace.Trace{
		{Time: 0, Addr: 0, Size: 128, Op: trace.Read}, // keeps row open briefly
		{Time: 2000, Addr: 256, Size: 32, Op: trace.Read},
	}
	res := Run(trace.NewReplayer(tr), cfg, 0)
	var refreshes uint64
	for i := range res.Channels {
		refreshes += res.Channels[i].Refreshes
	}
	if refreshes == 0 {
		t.Fatal("no refresh between the accesses")
	}
}
