package trace

import "testing"

// mreq is a test shorthand.
func mreq(t, addr uint64) Request { return Request{Time: t, Addr: addr, Size: 4} }

// TestMergeTieBreakBySourceIndex pins the documented tie-break: requests
// sharing a timestamp are emitted in ascending source index, where the
// index is the position in the Merge argument list — counting nil and
// empty sources, so inserting either before a source does not reorder
// its ties. This is a regression guard for the composed-scenario
// pipeline, whose byte-identity across refactors depends on it.
func TestMergeTieBreakBySourceIndex(t *testing.T) {
	// Three sources, all colliding at t=10 and t=20. The Addr encodes
	// the source (1, 2, 3) so the emission order is observable.
	mk := func() []Source {
		return []Source{
			NewReplayer(Trace{mreq(10, 1), mreq(20, 1)}),
			NewReplayer(Trace{mreq(10, 2), mreq(20, 2)}),
			NewReplayer(Trace{mreq(10, 3), mreq(20, 3)}),
		}
	}

	want := []uint64{1, 2, 3, 1, 2, 3}
	check := func(name string, m Source) {
		t.Helper()
		got := Collect(m, 0)
		if len(got) != len(want) {
			t.Fatalf("%s: merged %d requests, want %d", name, len(got), len(want))
		}
		for i, r := range got {
			if r.Addr != want[i] {
				t.Errorf("%s: position %d came from source %d, want %d (tie-break must be source index)",
					name, i, r.Addr, want[i])
			}
		}
	}

	check("plain", Merge(mk()...))

	// A nil source and an empty source interleaved among the real ones
	// must not shift the tie-break: the real sources keep their relative
	// order exactly as if the inert ones were absent.
	srcs := mk()
	check("with nil and empty", Merge(
		nil, srcs[0], NewReplayer(nil), srcs[1], nil, srcs[2],
	))
}

// TestMergeTotalOrder checks that a merge of interleaved sources is
// non-decreasing in time and loses no requests.
func TestMergeTotalOrder(t *testing.T) {
	a := Trace{mreq(1, 0), mreq(5, 0), mreq(9, 0)}
	b := Trace{mreq(2, 0), mreq(5, 0), mreq(100, 0)}
	c := Trace{mreq(0, 0), mreq(50, 0)}
	got := Collect(Merge(NewReplayer(a), NewReplayer(b), NewReplayer(c)), 0)
	if len(got) != len(a)+len(b)+len(c) {
		t.Fatalf("merged %d requests, want %d", len(got), len(a)+len(b)+len(c))
	}
	if !Trace(got).Sorted() {
		t.Fatalf("merged stream is not sorted by time: %v", got)
	}
}
