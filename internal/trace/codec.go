package trace

import (
	"bufio"
	"compress/gzip"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/par"
)

// The binary trace format is a sequence of fixed-width little-endian
// records preceded by a small header. The paper stores traces as
// gzip-compressed protobuf; we substitute a stdlib-only equivalent with the
// same practical properties (binary, compressed, self-describing) so that
// Fig. 17's trace-vs-profile size comparison remains meaningful.

const (
	traceMagic   = 0x4d4f434b // "MOCK"
	traceVersion = 1
	recordSize   = 8 + 8 + 4 + 1
)

// WriteBinary writes the trace in the repository's binary record format
// and returns the number of bytes written to w.
func WriteBinary(w io.Writer, t Trace) (int64, error) {
	return WriteBinaryCtx(nil, w, t)
}

// WriteBinaryCtx is WriteBinary with cooperative cancellation: the write
// loop checks ctx every cancelCheckEvery records, so a consumer that has
// gone away (a disconnected HTTP client, a canceled request) aborts a
// long encode promptly instead of running to completion. A nil ctx never
// cancels. The returned count is the bytes that reached w, so callers
// can meter egress even on a partial write.
func WriteBinaryCtx(ctx context.Context, w io.Writer, t Trace) (int64, error) {
	i := 0
	return WriteBinaryStream(ctx, w, uint64(len(t)), func() (Request, bool) {
		if i >= len(t) {
			return Request{}, false
		}
		r := t[i]
		i++
		return r, true
	})
}

// ReadBinary reads a trace written by WriteBinary.
func ReadBinary(r io.Reader) (Trace, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != traceMagic {
		return nil, errors.New("trace: bad magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	// The header's count is untrusted input: preallocate at most a
	// modest hint and let append grow, so a corrupt or hostile header
	// cannot demand an arbitrary allocation before any record is read.
	hint := n
	if hint > 1<<16 {
		hint = 1 << 16
	}
	t := make(Trace, 0, hint)
	var rec [recordSize]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: reading record %d: %w", i, err)
		}
		op := Op(rec[20])
		if op != Read && op != Write {
			return nil, fmt.Errorf("trace: record %d: bad op %d", i, rec[20])
		}
		t = append(t, Request{
			Time: binary.LittleEndian.Uint64(rec[0:]),
			Addr: binary.LittleEndian.Uint64(rec[8:]),
			Size: binary.LittleEndian.Uint32(rec[16:]),
			Op:   op,
		})
	}
	return t, nil
}

// WriteGzip writes the binary format through a gzip compressor. This is the
// on-disk format used when comparing trace and profile sizes (Fig. 17).
//
// Encoding and compression are pipelined: a producer goroutine runs
// WriteBinary into a buffered pipe while the caller's goroutine
// compresses, so record encoding overlaps the (more expensive) deflate.
// gzip output depends only on the byte stream, so the result is identical
// to an unpipelined write.
func WriteGzip(w io.Writer, t Trace) error {
	zw := gzip.NewWriter(w)
	pr, pw := par.NewPipe(0, 0)
	go func() {
		_, err := WriteBinary(pw, t)
		pw.CloseWithError(err)
	}()
	if _, err := io.Copy(zw, pr); err != nil {
		pr.Close()
		zw.Close()
		return err
	}
	return zw.Close()
}

// ReadGzip reads a trace written by WriteGzip. Decompression runs on its
// own goroutine feeding a buffered pipe, so gunzip overlaps record
// parsing.
func ReadGzip(r io.Reader) (Trace, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, err
	}
	pr, pw := par.NewPipe(0, 0)
	go func() {
		_, cerr := io.Copy(pw, zr)
		if cerr == nil {
			cerr = zr.Close()
		} else {
			zr.Close()
		}
		pw.CloseWithError(cerr)
	}()
	t, err := ReadBinary(pr)
	pr.Close()
	return t, err
}

// WriteCSV writes the trace as "time,op,addr,size" lines with a header
// and returns the number of bytes written. Addresses are hexadecimal.
// The format is intended for interchange with external tools and for
// human inspection.
func WriteCSV(w io.Writer, t Trace) (int64, error) {
	return WriteCSVCtx(nil, w, t)
}

// WriteCSVCtx is WriteCSV with cooperative cancellation, mirroring
// WriteBinaryCtx: the loop checks ctx every cancelCheckEvery lines and
// the returned count is the bytes that reached w.
func WriteCSVCtx(ctx context.Context, w io.Writer, t Trace) (int64, error) {
	i := 0
	return WriteCSVStream(ctx, w, func() (Request, bool) {
		if i >= len(t) {
			return Request{}, false
		}
		r := t[i]
		i++
		return r, true
	})
}

// ReadCSV reads a trace written by WriteCSV. Blank lines are ignored and a
// header line is skipped if present.
func ReadCSV(r io.Reader) (Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var t Trace
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || s == "time,op,addr,size" {
			continue
		}
		fields := strings.Split(s, ",")
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace: line %d: want 4 fields, got %d", line, len(fields))
		}
		tm, err := strconv.ParseUint(strings.TrimSpace(fields[0]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: time: %w", line, err)
		}
		var op Op
		switch strings.TrimSpace(fields[1]) {
		case "R", "r":
			op = Read
		case "W", "w":
			op = Write
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", line, fields[1])
		}
		addr, err := strconv.ParseUint(strings.TrimSpace(fields[2]), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: addr: %w", line, err)
		}
		size, err := strconv.ParseUint(strings.TrimSpace(fields[3]), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: size: %w", line, err)
		}
		t = append(t, Request{Time: tm, Addr: addr, Size: uint32(size), Op: op})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
