package trace

import (
	"bufio"
	"compress/gzip"
	"context"
	"io"

	"repro/internal/par"
)

// The binary trace format is a sequence of fixed-width little-endian
// records preceded by a small header. The paper stores traces as
// gzip-compressed protobuf; we substitute a stdlib-only equivalent with the
// same practical properties (binary, compressed, self-describing) so that
// Fig. 17's trace-vs-profile size comparison remains meaningful.

const (
	traceMagic   = 0x4d4f434b // "MOCK"
	traceVersion = 1
	recordSize   = 8 + 8 + 4 + 1
)

// WriteBinary writes the trace in the repository's binary record format
// and returns the number of bytes written to w.
func WriteBinary(w io.Writer, t Trace) (int64, error) {
	return WriteBinaryCtx(nil, w, t)
}

// WriteBinaryCtx is WriteBinary with cooperative cancellation: the write
// loop checks ctx every cancelCheckEvery records, so a consumer that has
// gone away (a disconnected HTTP client, a canceled request) aborts a
// long encode promptly instead of running to completion. A nil ctx never
// cancels. The returned count is the bytes that reached w, so callers
// can meter egress even on a partial write.
func WriteBinaryCtx(ctx context.Context, w io.Writer, t Trace) (int64, error) {
	i := 0
	return WriteBinaryStream(ctx, w, uint64(len(t)), func() (Request, bool) {
		if i >= len(t) {
			return Request{}, false
		}
		r := t[i]
		i++
		return r, true
	})
}

// ReadBinary reads a trace written by WriteBinary. It is a collect loop
// over the incremental binary decoder, so the materialised and
// streaming paths share one implementation of the format.
func ReadBinary(r io.Reader) (Trace, error) {
	d, err := newBinaryDecoder(bufio.NewReaderSize(r, streamBufSize))
	if err != nil {
		return nil, err
	}
	return d.ReadAll()
}

// WriteGzip writes the binary format through a gzip compressor. This is the
// on-disk format used when comparing trace and profile sizes (Fig. 17).
//
// Encoding and compression are pipelined: a producer goroutine runs
// WriteBinary into a buffered pipe while the caller's goroutine
// compresses, so record encoding overlaps the (more expensive) deflate.
// gzip output depends only on the byte stream, so the result is identical
// to an unpipelined write.
func WriteGzip(w io.Writer, t Trace) error {
	zw := gzip.NewWriter(w)
	pr, pw := par.NewPipe(0, 0)
	go func() {
		_, err := WriteBinary(pw, t)
		pw.CloseWithError(err)
	}()
	if _, err := io.Copy(zw, pr); err != nil {
		pr.Close()
		zw.Close()
		return err
	}
	return zw.Close()
}

// ReadGzip reads a trace written by WriteGzip. Decompression runs on its
// own goroutine feeding a buffered pipe, so gunzip overlaps record
// parsing.
func ReadGzip(r io.Reader) (Trace, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, err
	}
	pr, pw := par.NewPipe(0, 0)
	go func() {
		_, cerr := io.Copy(pw, zr)
		if cerr == nil {
			cerr = zr.Close()
		} else {
			zr.Close()
		}
		pw.CloseWithError(cerr)
	}()
	t, err := ReadBinary(pr)
	pr.Close()
	return t, err
}

// WriteCSV writes the trace as "time,op,addr,size" lines with a header
// and returns the number of bytes written. Addresses are hexadecimal.
// The format is intended for interchange with external tools and for
// human inspection.
func WriteCSV(w io.Writer, t Trace) (int64, error) {
	return WriteCSVCtx(nil, w, t)
}

// WriteCSVCtx is WriteCSV with cooperative cancellation, mirroring
// WriteBinaryCtx: the loop checks ctx every cancelCheckEvery lines and
// the returned count is the bytes that reached w.
func WriteCSVCtx(ctx context.Context, w io.Writer, t Trace) (int64, error) {
	i := 0
	return WriteCSVStream(ctx, w, func() (Request, bool) {
		if i >= len(t) {
			return Request{}, false
		}
		r := t[i]
		i++
		return r, true
	})
}

// ReadCSV reads a trace written by WriteCSV. Blank lines are ignored and a
// header line is skipped if present. Like ReadBinary it is a collect
// loop over the incremental decoder; an empty stream yields a nil trace.
func ReadCSV(r io.Reader) (Trace, error) {
	d := newCSVDecoder(bufio.NewReader(r))
	var t Trace
	var req Request
	for {
		err := d.Next(&req)
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t = append(t, req)
	}
}
