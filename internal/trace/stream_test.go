package trace

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

func streamTrace(n int) Trace {
	t := make(Trace, 0, n)
	now, addr := uint64(10), uint64(1<<20)
	for i := 0; i < n; i++ {
		now += uint64(3 + i%7)
		addr += uint64((i%5 - 2) * 64)
		op := Read
		if i%4 == 0 {
			op = Write
		}
		t = append(t, Request{Time: now, Addr: addr, Size: uint32(16 + i%3*16), Op: op})
	}
	return t
}

// The streaming encoders must emit exactly the bytes of the slice-based
// writers: the server's chunked responses are compared byte-for-byte
// against offline CLI output.
func TestStreamMatchesSliceWriters(t *testing.T) {
	tr := streamTrace(1000)

	var whole, streamed bytes.Buffer
	n, err := WriteBinary(&whole, tr)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(whole.Len()) {
		t.Fatalf("WriteBinary reported %d bytes, buffer holds %d", n, whole.Len())
	}
	sn, err := WriteBinaryStream(context.Background(), &streamed, uint64(len(tr)), Limit(NewReplayer(tr), 0))
	if err != nil {
		t.Fatal(err)
	}
	if sn != n || !bytes.Equal(whole.Bytes(), streamed.Bytes()) {
		t.Fatalf("binary stream differs: %d vs %d bytes", sn, n)
	}

	whole.Reset()
	streamed.Reset()
	cn, err := WriteCSV(&whole, tr)
	if err != nil {
		t.Fatal(err)
	}
	if cn != int64(whole.Len()) {
		t.Fatalf("WriteCSV reported %d bytes, buffer holds %d", cn, whole.Len())
	}
	csn, err := WriteCSVStream(context.Background(), &streamed, Limit(NewReplayer(tr), 0))
	if err != nil {
		t.Fatal(err)
	}
	if csn != cn || !bytes.Equal(whole.Bytes(), streamed.Bytes()) {
		t.Fatalf("csv stream differs: %d vs %d bytes", csn, cn)
	}
}

func TestStreamLimit(t *testing.T) {
	tr := streamTrace(500)
	var limited, prefix bytes.Buffer
	if _, err := WriteBinaryStream(context.Background(), &limited, 200, Limit(NewReplayer(tr), 200)); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteBinary(&prefix, tr[:200]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(limited.Bytes(), prefix.Bytes()) {
		t.Fatal("n-limited stream differs from the trace prefix encoding")
	}
	got, err := ReadBinary(&limited)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("round trip decoded %d records, want 200", len(got))
	}
}

// A stream whose source runs dry before the promised count must fail:
// the binary header already declared the record count.
func TestStreamShortSource(t *testing.T) {
	tr := streamTrace(10)
	var buf bytes.Buffer
	if _, err := WriteBinaryStream(context.Background(), &buf, 50, Limit(NewReplayer(tr), 0)); err == nil {
		t.Fatal("short source did not error")
	}
}

// Cancellation aborts the write loop between record batches: the encode
// stops early, reports the context error and the bytes already emitted.
func TestStreamCancellation(t *testing.T) {
	tr := streamTrace(100000)
	ctx, cancel := context.WithCancel(context.Background())
	emitted := 0
	next := func() (Request, bool) {
		if emitted == 1000 {
			cancel()
		}
		r := tr[emitted]
		emitted++
		return r, true
	}
	var buf bytes.Buffer
	n, err := WriteBinaryStream(ctx, &buf, uint64(len(tr)), next)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if emitted >= 1000+2*cancelCheckEvery {
		t.Fatalf("encode pulled %d records after cancellation, want < %d", emitted-1000, 2*cancelCheckEvery)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("reported %d bytes, buffer holds %d", n, buf.Len())
	}

	var csv bytes.Buffer
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := WriteCSVStream(ctx2, &csv, Limit(NewReplayer(tr), 0)); !errors.Is(err, context.Canceled) {
		t.Fatalf("csv err = %v, want context.Canceled", err)
	}
}
