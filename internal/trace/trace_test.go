package trace

import (
	"testing"
	"testing/quick"
)

func req(t, a uint64, s uint32, op Op) Request {
	return Request{Time: t, Addr: a, Size: s, Op: op}
}

func TestOpString(t *testing.T) {
	if Read.String() != "R" {
		t.Errorf("Read.String() = %q", Read.String())
	}
	if Write.String() != "W" {
		t.Errorf("Write.String() = %q", Write.String())
	}
}

func TestRequestEnd(t *testing.T) {
	r := req(0, 100, 64, Read)
	if r.End() != 164 {
		t.Errorf("End() = %d, want 164", r.End())
	}
}

func TestRequestString(t *testing.T) {
	s := req(5, 0x10, 64, Write).String()
	if s == "" {
		t.Error("empty String()")
	}
}

func TestCloneIndependent(t *testing.T) {
	orig := Trace{req(1, 2, 3, Read)}
	c := orig.Clone()
	c[0].Addr = 99
	if orig[0].Addr != 2 {
		t.Error("Clone shares backing array")
	}
}

func TestSortByTimeStable(t *testing.T) {
	tr := Trace{
		req(5, 1, 4, Read),
		req(3, 2, 4, Read),
		req(5, 3, 4, Read),
		req(1, 4, 4, Read),
	}
	tr.SortByTime()
	if !tr.Sorted() {
		t.Fatal("not sorted after SortByTime")
	}
	// Stability: the two t=5 entries keep relative order (addr 1 then 3).
	if tr[2].Addr != 1 || tr[3].Addr != 3 {
		t.Errorf("sort not stable: %v", tr)
	}
}

func TestSortedDetectsDisorder(t *testing.T) {
	tr := Trace{req(2, 0, 1, Read), req(1, 0, 1, Read)}
	if tr.Sorted() {
		t.Error("Sorted() = true for unsorted trace")
	}
	if !(Trace{}).Sorted() {
		t.Error("empty trace should be sorted")
	}
	if !(Trace{req(1, 0, 1, Read)}).Sorted() {
		t.Error("single-request trace should be sorted")
	}
}

func TestDuration(t *testing.T) {
	if d := (Trace{}).Duration(); d != 0 {
		t.Errorf("empty Duration = %d", d)
	}
	if d := (Trace{req(7, 0, 1, Read)}).Duration(); d != 0 {
		t.Errorf("single Duration = %d", d)
	}
	tr := Trace{req(10, 0, 1, Read), req(35, 0, 1, Read)}
	if tr.Duration() != 25 {
		t.Errorf("Duration = %d, want 25", tr.Duration())
	}
}

func TestCounts(t *testing.T) {
	tr := Trace{req(0, 0, 1, Read), req(1, 0, 1, Write), req(2, 0, 1, Write)}
	r, w := tr.Counts()
	if r != 1 || w != 2 {
		t.Errorf("Counts = %d,%d want 1,2", r, w)
	}
}

func TestBytes(t *testing.T) {
	tr := Trace{req(0, 0, 64, Read), req(1, 0, 128, Write)}
	if tr.Bytes() != 192 {
		t.Errorf("Bytes = %d, want 192", tr.Bytes())
	}
}

func TestAddrRange(t *testing.T) {
	lo, hi := (Trace{}).AddrRange()
	if lo != 0 || hi != 0 {
		t.Errorf("empty AddrRange = %d,%d", lo, hi)
	}
	tr := Trace{req(0, 100, 32, Read), req(1, 50, 8, Read), req(2, 90, 64, Read)}
	lo, hi = tr.AddrRange()
	if lo != 50 || hi != 154 {
		t.Errorf("AddrRange = %d,%d want 50,154", lo, hi)
	}
}

func TestFootprint(t *testing.T) {
	tr := Trace{
		req(0, 0, 64, Read),    // block 0
		req(1, 32, 64, Read),   // spans blocks 0 and 1
		req(2, 4096, 64, Read), // block 64
	}
	if fp := tr.Footprint(64); fp != 3 {
		t.Errorf("Footprint(64) = %d, want 3", fp)
	}
	if fp := tr.Footprint(4096); fp != 2 {
		t.Errorf("Footprint(4096) = %d, want 2", fp)
	}
	if fp := tr.Footprint(0); fp != 0 {
		t.Errorf("Footprint(0) = %d, want 0", fp)
	}
}

func TestReplayerOrderAndDelay(t *testing.T) {
	tr := Trace{req(10, 1, 4, Read), req(20, 2, 4, Read), req(30, 3, 4, Read)}
	r := NewReplayer(tr)
	if r.Remaining() != 3 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
	first, ok := r.Next()
	if !ok || first.Time != 10 {
		t.Fatalf("first = %v, %v", first, ok)
	}
	r.Delay(5)
	second, _ := r.Next()
	if second.Time != 25 {
		t.Errorf("second.Time = %d, want 25 after Delay(5)", second.Time)
	}
	r.Delay(5)
	third, _ := r.Next()
	if third.Time != 40 {
		t.Errorf("third.Time = %d, want 40 after cumulative Delay(10)", third.Time)
	}
	if _, ok := r.Next(); ok {
		t.Error("Next after exhaustion returned ok")
	}
}

func TestCollectLimit(t *testing.T) {
	tr := Trace{req(1, 0, 1, Read), req(2, 0, 1, Read), req(3, 0, 1, Read)}
	got := Collect(NewReplayer(tr), 2)
	if len(got) != 2 {
		t.Errorf("Collect limit: got %d requests", len(got))
	}
	got = Collect(NewReplayer(tr), 0)
	if len(got) != 3 {
		t.Errorf("Collect unlimited: got %d requests", len(got))
	}
}

func TestMergeInterleavesByTime(t *testing.T) {
	a := Trace{req(1, 0xa, 4, Read), req(5, 0xa, 4, Read)}
	b := Trace{req(2, 0xb, 4, Write), req(3, 0xb, 4, Write)}
	m := Merge(NewReplayer(a), NewReplayer(b))
	var times []uint64
	for {
		r, ok := m.Next()
		if !ok {
			break
		}
		times = append(times, r.Time)
	}
	want := []uint64{1, 2, 3, 5}
	if len(times) != len(want) {
		t.Fatalf("got %d requests, want %d", len(times), len(want))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("times[%d] = %d, want %d", i, times[i], want[i])
		}
	}
}

func TestMergeDelayAppliesOnce(t *testing.T) {
	a := Trace{req(1, 0xa, 4, Read), req(10, 0xa, 4, Read)}
	m := Merge(NewReplayer(a))
	m.Next()
	m.Delay(100)
	r, _ := m.Next()
	if r.Time != 110 {
		t.Errorf("delayed request time = %d, want 110", r.Time)
	}
}

func TestMergeEmptyAndNil(t *testing.T) {
	m := Merge(nil, NewReplayer(nil))
	if _, ok := m.Next(); ok {
		t.Error("empty merge produced a request")
	}
}

func TestMergePreservesAllRequests(t *testing.T) {
	check := func(lens [3]uint8) bool {
		var srcs []Source
		total := 0
		for si, n := range lens {
			var tr Trace
			for i := 0; i < int(n%16); i++ {
				tr = append(tr, req(uint64(i*7+si), uint64(si), 4, Read))
			}
			total += len(tr)
			srcs = append(srcs, NewReplayer(tr))
		}
		out := Collect(Merge(srcs...), 0)
		return len(out) == total && out.Sorted()
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
