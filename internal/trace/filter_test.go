package trace

import "testing"

func filterFixture() Trace {
	return Trace{
		req(10, 0x100, 4, Read),
		req(20, 0x200, 4, Write),
		req(30, 0x300, 4, Read),
		req(40, 0x400, 4, Write),
		req(50, 0x500, 4, Read),
	}
}

func TestReadsWrites(t *testing.T) {
	tr := filterFixture()
	if got := tr.Reads(); len(got) != 3 {
		t.Errorf("Reads = %d", len(got))
	}
	if got := tr.Writes(); len(got) != 2 {
		t.Errorf("Writes = %d", len(got))
	}
}

func TestFilterEmpty(t *testing.T) {
	if got := (Trace{}).Filter(func(Request) bool { return true }); got != nil {
		t.Error("empty Filter nonempty")
	}
}

func TestWindow(t *testing.T) {
	tr := filterFixture()
	got := tr.Window(20, 41)
	if len(got) != 3 || got[0].Time != 20 || got[2].Time != 40 {
		t.Errorf("Window(20,41) = %v", got)
	}
	if got := tr.Window(100, 200); len(got) != 0 {
		t.Errorf("out-of-range window = %v", got)
	}
	if got := tr.Window(0, 1000); len(got) != 5 {
		t.Errorf("full window = %d", len(got))
	}
	// Half-open: to is exclusive.
	if got := tr.Window(10, 10); len(got) != 0 {
		t.Errorf("empty window = %v", got)
	}
}

func TestInRegion(t *testing.T) {
	tr := filterFixture()
	got := tr.InRegion(0x200, 0x400)
	if len(got) != 2 {
		t.Errorf("InRegion = %v", got)
	}
}

func TestRebase(t *testing.T) {
	tr := filterFixture()
	got := tr.Rebase()
	if got[0].Time != 0 || got[4].Time != 40 {
		t.Errorf("Rebase = %v", got)
	}
	// Original untouched.
	if tr[0].Time != 10 {
		t.Error("Rebase mutated input")
	}
	if (Trace{}).Rebase() != nil {
		t.Error("empty Rebase nonempty")
	}
}
