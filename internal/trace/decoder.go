package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The incremental decoder is the read-side counterpart of the streaming
// encoders in stream.go: it pulls one record at a time out of any of the
// repository's trace encodings, so a multi-gigabyte capture can flow
// through partitioning and fitting without ever being materialised as a
// []Request. ReadBinary and ReadCSV are thin collect loops over it, so
// the incremental and materialised paths can never disagree about the
// formats.

// RequestMemBytes is the in-memory footprint of one Request (the struct
// size including alignment padding). It is the unit in which streaming
// ingestion accounts its frontier and in which mocktailsd's
// -max-trace-bytes cap is expressed: the memory the materialised path
// would have needed for the same records.
const RequestMemBytes = 24

// Reader pulls requests one at a time. Next fills *Request and returns
// nil, io.EOF when the stream is exhausted, or a decode error. It is
// the pull interface between the trace decoder and the streaming
// partitioner/fitters; Source (a synthesis-side interface with
// backpressure) is its push-side sibling.
type Reader interface {
	Next(*Request) error
}

// Decoder incrementally decodes a trace from any of the repository's
// encodings, sniffing the format from the leading bytes:
//
//   - "MOCK" magic            -> the binary record format (WriteBinary)
//   - gzip magic (1f 8b)      -> gzip-compressed binary (WriteGzip)
//   - anything else           -> CSV (WriteCSV)
//
// A Decoder reads ahead only bufio-buffer granularity, so decoding is
// O(1) in trace length. It is not safe for concurrent use.
type Decoder struct {
	next    func(*Request) error
	format  string
	records uint64
	// announced is the binary header's record count, when the format
	// carries one (bin/gz). CSV streams announce nothing.
	announced uint64
}

// NewDecoder sniffs the format of r and returns a Decoder positioned at
// the first record. The returned error covers format sniffing and
// header validation; per-record errors surface from Next.
func NewDecoder(r io.Reader) (*Decoder, error) {
	br := bufio.NewReaderSize(r, streamBufSize)
	prefix, _ := br.Peek(4) // short or empty at EOF; sniffing tolerates both
	switch {
	case len(prefix) >= 2 && prefix[0] == 0x1f && prefix[1] == 0x8b:
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: opening gzip stream: %w", err)
		}
		d, err := newBinaryDecoder(bufio.NewReaderSize(zr, streamBufSize))
		if err != nil {
			return nil, err
		}
		d.format = "gz"
		return d, nil
	case len(prefix) >= 4 && binary.LittleEndian.Uint32(prefix) == traceMagic:
		return newBinaryDecoder(br)
	default:
		return newCSVDecoder(br), nil
	}
}

// Next decodes the next request into req. It returns io.EOF when the
// stream ends cleanly.
func (d *Decoder) Next(req *Request) error {
	if err := d.next(req); err != nil {
		return err
	}
	d.records++
	return nil
}

// Format names the sniffed encoding: "bin", "csv" or "gz".
func (d *Decoder) Format() string { return d.format }

// Records returns the number of records decoded so far.
func (d *Decoder) Records() uint64 { return d.records }

// ReadAll drains the decoder into a materialised trace. The binary
// header's record count, when present, seeds the allocation — capped at
// a modest hint so a corrupt or hostile header cannot demand an
// arbitrary allocation before any record is read.
func (d *Decoder) ReadAll() (Trace, error) {
	hint := d.announced
	if hint > 1<<16 {
		hint = 1 << 16
	}
	t := make(Trace, 0, hint)
	var r Request
	for {
		err := d.Next(&r)
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t = append(t, r)
	}
}

// newBinaryDecoder validates the binary header and returns a decoder
// over its records.
func newBinaryDecoder(br *bufio.Reader) (*Decoder, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != traceMagic {
		return nil, errors.New("trace: bad magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	d := &Decoder{format: "bin", announced: n}
	i := uint64(0)
	var rec [recordSize]byte
	d.next = func(req *Request) error {
		if i >= n {
			return io.EOF
		}
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return fmt.Errorf("trace: reading record %d: %w", i, err)
		}
		op := Op(rec[20])
		if op != Read && op != Write {
			return fmt.Errorf("trace: record %d: bad op %d", i, rec[20])
		}
		req.Time = binary.LittleEndian.Uint64(rec[0:])
		req.Addr = binary.LittleEndian.Uint64(rec[8:])
		req.Size = binary.LittleEndian.Uint32(rec[16:])
		req.Op = op
		i++
		return nil
	}
	return d, nil
}

// newCSVDecoder returns a decoder over WriteCSV-format lines. Blank
// lines are ignored and a header line is skipped wherever it appears,
// matching ReadCSV.
func newCSVDecoder(br *bufio.Reader) *Decoder {
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	d := &Decoder{format: "csv"}
	d.next = func(req *Request) error {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s == "" || s == "time,op,addr,size" {
				continue
			}
			fields := strings.Split(s, ",")
			if len(fields) != 4 {
				return fmt.Errorf("trace: line %d: want 4 fields, got %d", line, len(fields))
			}
			tm, err := strconv.ParseUint(strings.TrimSpace(fields[0]), 10, 64)
			if err != nil {
				return fmt.Errorf("trace: line %d: time: %w", line, err)
			}
			var op Op
			switch strings.TrimSpace(fields[1]) {
			case "R", "r":
				op = Read
			case "W", "w":
				op = Write
			default:
				return fmt.Errorf("trace: line %d: bad op %q", line, fields[1])
			}
			addr, err := strconv.ParseUint(strings.TrimSpace(fields[2]), 16, 64)
			if err != nil {
				return fmt.Errorf("trace: line %d: addr: %w", line, err)
			}
			size, err := strconv.ParseUint(strings.TrimSpace(fields[3]), 10, 32)
			if err != nil {
				return fmt.Errorf("trace: line %d: size: %w", line, err)
			}
			req.Time, req.Addr, req.Size, req.Op = tm, addr, uint32(size), op
			return nil
		}
		if err := sc.Err(); err != nil {
			return err
		}
		return io.EOF
	}
	return d
}

// SliceReader adapts a materialised trace to the Reader pull interface,
// for tests and for feeding already-loaded traces through the streaming
// construction path.
type SliceReader struct {
	t Trace
	i int
}

// NewSliceReader returns a Reader over t.
func NewSliceReader(t Trace) *SliceReader { return &SliceReader{t: t} }

// Next returns the next request of the slice.
func (s *SliceReader) Next(r *Request) error {
	if s.i >= len(s.t) {
		return io.EOF
	}
	*r = s.t[s.i]
	s.i++
	return nil
}
