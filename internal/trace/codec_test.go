package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func randomTrace(rng *rand.Rand, n int) Trace {
	t := make(Trace, n)
	tm := uint64(0)
	for i := range t {
		tm += uint64(rng.Intn(1000))
		op := Read
		if rng.Intn(2) == 1 {
			op = Write
		}
		t[i] = Request{
			Time: tm,
			Addr: rng.Uint64() >> 8,
			Size: uint32(1 + rng.Intn(256)),
			Op:   op,
		}
	}
	return t
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(1)), 500)
	var buf bytes.Buffer
	if _, err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Error("binary round trip mismatch")
	}
}

func TestBinaryRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteBinary(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %d requests from empty trace", len(got))
	}
}

func TestGzipRoundTrip(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(2)), 300)
	var buf bytes.Buffer
	if err := WriteGzip(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGzip(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Error("gzip round trip mismatch")
	}
}

func TestGzipCompresses(t *testing.T) {
	// A regular trace should compress well below the raw record size.
	tr := make(Trace, 10000)
	for i := range tr {
		tr[i] = Request{Time: uint64(i) * 10, Addr: uint64(i) * 64, Size: 64, Op: Read}
	}
	var raw, gz bytes.Buffer
	if _, err := WriteBinary(&raw, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteGzip(&gz, tr); err != nil {
		t.Fatal(err)
	}
	if gz.Len() >= raw.Len() {
		t.Errorf("gzip (%d) not smaller than raw (%d)", gz.Len(), raw.Len())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(3)), 200)
	var buf bytes.Buffer
	if _, err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Error("csv round trip mismatch")
	}
}

func TestCSVAcceptsLowercaseOps(t *testing.T) {
	got, err := ReadCSV(strings.NewReader("1,r,10,4\n2,w,20,8\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Op != Read || got[1].Op != Write {
		t.Errorf("ops = %v %v", got[0].Op, got[1].Op)
	}
}

func TestCSVRejectsBadInput(t *testing.T) {
	cases := []string{
		"1,R,10",          // too few fields
		"x,R,10,4",        // bad time
		"1,Q,10,4",        // bad op
		"1,R,zz,4",        // bad addr
		"1,R,10,notasize", // bad size
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("ReadCSV(%q) succeeded, want error", c)
		}
	}
}

func TestReadBinaryRejectsCorruptHeader(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("notamagicheader!"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestReadBinaryRejectsTruncatedBody(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(4)), 10)
	var buf bytes.Buffer
	if _, err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(b[:len(b)-5])); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestReadBinaryRejectsBadOp(t *testing.T) {
	tr := Trace{{Time: 1, Addr: 2, Size: 3, Op: Read}}
	var buf bytes.Buffer
	if _, err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(b)-1] = 7 // corrupt the op byte
	if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
		t.Error("bad op accepted")
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	check := func(times []uint16, addrSeed uint32) bool {
		rng := rand.New(rand.NewSource(int64(addrSeed)))
		tr := make(Trace, len(times))
		for i, tm := range times {
			op := Read
			if rng.Intn(2) == 1 {
				op = Write
			}
			tr[i] = Request{Time: uint64(tm), Addr: rng.Uint64(), Size: uint32(rng.Intn(1024) + 1), Op: op}
		}
		var buf bytes.Buffer
		if _, err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, tr) || (len(got) == 0 && len(tr) == 0)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestGzipDeterministicBytes guards the pipelined WriteGzip: the encoded
// stream must not depend on chunk boundaries or scheduling, so repeated
// writes of the same trace produce identical bytes, including a large
// trace that crosses many pipe chunks.
func TestGzipDeterministicBytes(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(9)), 200000)
	var a, b bytes.Buffer
	if err := WriteGzip(&a, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteGzip(&b, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("pipelined WriteGzip is not byte-deterministic")
	}
	got, err := ReadGzip(&a)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("large pipelined round trip corrupted the trace")
	}
}

// TestGzipReadPropagatesCorruption: a truncated gzip stream must surface
// an error through the pipelined reader, not hang or return short data.
func TestGzipReadPropagatesCorruption(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(3)), 5000)
	var buf bytes.Buffer
	if err := WriteGzip(&buf, tr); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadGzip(bytes.NewReader(cut)); err == nil {
		t.Fatal("truncated gzip stream read without error")
	}
}
