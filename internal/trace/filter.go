package trace

// Filtering and slicing helpers used by the analysis tooling and the
// experiment runners.

// Filter returns the requests satisfying pred, in order.
func (t Trace) Filter(pred func(Request) bool) Trace {
	var out Trace
	for _, r := range t {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// Reads returns only the read requests.
func (t Trace) Reads() Trace {
	return t.Filter(func(r Request) bool { return r.Op == Read })
}

// Writes returns only the write requests.
func (t Trace) Writes() Trace {
	return t.Filter(func(r Request) bool { return r.Op == Write })
}

// Window returns the requests with Time in [from, to). The trace must be
// time-sorted.
func (t Trace) Window(from, to uint64) Trace {
	lo := search(len(t), func(i int) bool { return t[i].Time >= from })
	hi := search(len(t), func(i int) bool { return t[i].Time >= to })
	return t[lo:hi]
}

// InRegion returns the requests whose start address falls in [lo, hi).
func (t Trace) InRegion(lo, hi uint64) Trace {
	return t.Filter(func(r Request) bool { return r.Addr >= lo && r.Addr < hi })
}

// Rebase returns a copy of the trace with timestamps shifted so the
// first request is at time 0.
func (t Trace) Rebase() Trace {
	if len(t) == 0 {
		return nil
	}
	base := t[0].Time
	out := t.Clone()
	for i := range out {
		out[i].Time -= base
	}
	return out
}

// search is sort.Search without importing sort here.
func search(n int, f func(int) bool) int {
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if f(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
