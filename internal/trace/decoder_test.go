package trace

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/iotest"
	"unsafe"
)

// decoderTrace is a small trace exercising both ops, 64-bit addresses
// and varied sizes.
func decoderTrace() Trace {
	t := make(Trace, 0, 1000)
	for i := 0; i < 1000; i++ {
		op := Read
		if i%3 == 0 {
			op = Write
		}
		t = append(t, Request{
			Time: uint64(i) * 7,
			Addr: 0x8000_0000_0000 + uint64(i)*64,
			Size: uint32(16 << (i % 4)),
			Op:   op,
		})
	}
	return t
}

// TestRequestMemBytes pins the accounting constant to the real struct
// size: if Request grows, frontier accounting and -max-trace-bytes
// would silently under-count without this.
func TestRequestMemBytes(t *testing.T) {
	if got := unsafe.Sizeof(Request{}); got != RequestMemBytes {
		t.Fatalf("RequestMemBytes = %d but unsafe.Sizeof(Request{}) = %d", RequestMemBytes, got)
	}
}

// TestDecoderFormats decodes each encoding incrementally and checks the
// result matches the materialised readers, the sniffed format name, and
// the Records counter — including through a one-byte-at-a-time reader
// to exercise every short-read path.
func TestDecoderFormats(t *testing.T) {
	want := decoderTrace()

	var bin, gz, csv bytes.Buffer
	if _, err := WriteBinary(&bin, want); err != nil {
		t.Fatal(err)
	}
	if err := WriteGzip(&gz, want); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteCSV(&csv, want); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		format string
		data   []byte
	}{
		{"bin", bin.Bytes()},
		{"gz", gz.Bytes()},
		{"csv", csv.Bytes()},
	}
	for _, c := range cases {
		for _, stress := range []bool{false, true} {
			var r io.Reader = bytes.NewReader(c.data)
			name := c.format
			if stress {
				r = iotest.OneByteReader(r)
				name += "/one-byte"
			}
			t.Run(name, func(t *testing.T) {
				d, err := NewDecoder(r)
				if err != nil {
					t.Fatal(err)
				}
				if d.Format() != c.format {
					t.Fatalf("sniffed format %q, want %q", d.Format(), c.format)
				}
				got, err := d.ReadAll()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("decoded %d requests, mismatch vs original %d", len(got), len(want))
				}
				if d.Records() != uint64(len(want)) {
					t.Fatalf("Records() = %d, want %d", d.Records(), len(want))
				}
			})
		}
	}
}

// TestDecoderEmptyInput: an empty stream sniffs as CSV and terminates
// immediately.
func TestDecoderEmptyInput(t *testing.T) {
	d, err := NewDecoder(bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	if d.Format() != "csv" {
		t.Fatalf("empty input sniffed as %q, want csv", d.Format())
	}
	var r Request
	if err := d.Next(&r); err != io.EOF {
		t.Fatalf("Next on empty input = %v, want io.EOF", err)
	}
}

// TestDecoderErrors pins the decoder's error behaviour on malformed
// input: truncation, bad magic, bad version, bad op, bad CSV fields.
func TestDecoderErrors(t *testing.T) {
	var bin bytes.Buffer
	if _, err := WriteBinary(&bin, decoderTrace()[:3]); err != nil {
		t.Fatal(err)
	}
	full := bin.Bytes()

	t.Run("truncated-record", func(t *testing.T) {
		d, err := NewDecoder(bytes.NewReader(full[:len(full)-5]))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.ReadAll(); err == nil || !strings.Contains(err.Error(), "reading record 2") {
			t.Fatalf("want record-2 truncation error, got %v", err)
		}
	})
	t.Run("truncated-header", func(t *testing.T) {
		// A "MOCK"-prefixed stream shorter than the header must fail
		// at header read, not fall through to CSV.
		if _, err := NewDecoder(bytes.NewReader(full[:10])); err == nil || !strings.Contains(err.Error(), "reading header") {
			t.Fatalf("want header error, got %v", err)
		}
	})
	t.Run("bad-version", func(t *testing.T) {
		bad := append([]byte(nil), full...)
		bad[4] = 99
		if _, err := NewDecoder(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "unsupported version") {
			t.Fatalf("want version error, got %v", err)
		}
	})
	t.Run("bad-op", func(t *testing.T) {
		bad := append([]byte(nil), full...)
		bad[16+20] = 7 // first record's op byte
		d, err := NewDecoder(bytes.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.ReadAll(); err == nil || !strings.Contains(err.Error(), "bad op 7") {
			t.Fatalf("want bad-op error, got %v", err)
		}
	})
	t.Run("csv-bad-line", func(t *testing.T) {
		d, err := NewDecoder(strings.NewReader("1,R,10,64\nnot,a,line\n"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.ReadAll(); err == nil || !strings.Contains(err.Error(), "line 2") {
			t.Fatalf("want line-2 error, got %v", err)
		}
	})
	t.Run("corrupt-gzip", func(t *testing.T) {
		if _, err := NewDecoder(bytes.NewReader([]byte{0x1f, 0x8b, 0x00})); err == nil {
			t.Fatal("want gzip open error, got nil")
		}
	})
}

// TestDecoderMatchesMaterializedReaders: decoding through the Decoder
// and through ReadBinary/ReadCSV/ReadGzip must agree on every input,
// including ones with a skipped header line and blank lines.
func TestDecoderMatchesMaterializedReaders(t *testing.T) {
	want := decoderTrace()[:37]
	var bin, gz bytes.Buffer
	if _, err := WriteBinary(&bin, want); err != nil {
		t.Fatal(err)
	}
	if err := WriteGzip(&gz, want); err != nil {
		t.Fatal(err)
	}
	csv := "time,op,addr,size\n\n1,R,1000,64\n\n2,w,1040,128\n"

	check := func(name string, data []byte, materialized func() (Trace, error)) {
		t.Run(name, func(t *testing.T) {
			d, err := NewDecoder(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			streamed, err := d.ReadAll()
			if err != nil {
				t.Fatal(err)
			}
			mat, err := materialized()
			if err != nil {
				t.Fatal(err)
			}
			if len(streamed) != len(mat) || (len(mat) > 0 && !reflect.DeepEqual(streamed, mat)) {
				t.Fatalf("decoder and materialized reader disagree: %d vs %d requests", len(streamed), len(mat))
			}
		})
	}
	check("bin", bin.Bytes(), func() (Trace, error) { return ReadBinary(bytes.NewReader(bin.Bytes())) })
	check("gz", gz.Bytes(), func() (Trace, error) { return ReadGzip(bytes.NewReader(gz.Bytes())) })
	check("csv", []byte(csv), func() (Trace, error) { return ReadCSV(strings.NewReader(csv)) })
}

// TestSliceReader: the adapter yields exactly the slice, then io.EOF
// forever.
func TestSliceReader(t *testing.T) {
	want := decoderTrace()[:5]
	sr := NewSliceReader(want)
	var got Trace
	var r Request
	for {
		err := sr.Next(&r)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("SliceReader changed the trace")
	}
	if err := sr.Next(&r); err != io.EOF {
		t.Fatalf("Next after exhaustion = %v, want io.EOF", err)
	}
}
