package trace

import "container/heap"

// Merge combines several Sources into one, interleaving their requests in
// timestamp order. Backpressure delay is propagated to every underlying
// source. It is the building block for SoC-style simulations where
// multiple (possibly synthetic) IP blocks inject into one memory system.
//
// Ties are deterministic: requests that share a timestamp are emitted in
// ascending source index — the position of the source in the variadic
// argument list, counting nil and already-exhausted sources. The order of
// a merged stream is therefore a pure function of the sources' contents
// and their positions, stable across refactors of the merge internals.
func Merge(sources ...Source) Source {
	m := &mergeSource{}
	for i, s := range sources {
		if s == nil {
			continue
		}
		if req, ok := s.Next(); ok {
			m.h = append(m.h, mergeItem{req: req, src: s, order: i})
		}
	}
	heap.Init(&m.h)
	return m
}

type mergeSource struct {
	h     mergeSrcHeap
	shift uint64
}

func (m *mergeSource) Next() (Request, bool) {
	if len(m.h) == 0 {
		return Request{}, false
	}
	it := m.h[0]
	req := it.req
	req.Time += m.shift
	if next, ok := it.src.Next(); ok {
		m.h[0].req = next
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
	return req, true
}

// Delay shifts every not-yet-emitted request, both those buffered in the
// heap and those the underlying sources will produce later. The shift is
// kept here rather than pushed into the sources so no request is shifted
// twice.
func (m *mergeSource) Delay(cycles uint64) { m.shift += cycles }

type mergeItem struct {
	req Request
	src Source
	// order is the source's position in the Merge argument list, the
	// documented tie-break for requests sharing a timestamp.
	order int
}

type mergeSrcHeap []mergeItem

func (h mergeSrcHeap) Len() int { return len(h) }
func (h mergeSrcHeap) Less(i, j int) bool {
	if h[i].req.Time != h[j].req.Time {
		return h[i].req.Time < h[j].req.Time
	}
	return h[i].order < h[j].order
}
func (h mergeSrcHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeSrcHeap) Push(x interface{}) { *h = append(*h, x.(mergeItem)) }
func (h *mergeSrcHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
