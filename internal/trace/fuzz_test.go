package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzReadBinary feeds arbitrary bytes to the binary decoder: it must
// reject or accept them without panicking or over-allocating, and
// anything it accepts must survive a write/read round trip unchanged
// (the decoder and encoder agree on the format).
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	if _, err := WriteBinary(&buf, Trace{
		{Time: 1, Addr: 0x1000, Size: 64, Op: Read},
		{Time: 2, Addr: 0x1040, Size: 128, Op: Write},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(buf.Bytes()[:17]) // header + truncated record
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := WriteBinary(&out, tr); err != nil {
			t.Fatalf("re-encoding accepted trace: %v", err)
		}
		tr2, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("re-decoding re-encoded trace: %v", err)
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatalf("round trip changed trace: %d vs %d requests", len(tr), len(tr2))
		}
	})
}

// FuzzReadCSV feeds arbitrary text to the CSV decoder with the same
// contract: no panic, and accepted traces round-trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("time,op,addr,size\n1,R,1000,64\n2,W,1040,128\n")
	f.Add("")
	f.Add("1,R,zz,64\n")
	f.Add("999999999999999999999999,R,0,64\n")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadCSV(bytes.NewReader([]byte(data)))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := WriteCSV(&out, tr); err != nil {
			t.Fatalf("re-encoding accepted trace: %v", err)
		}
		tr2, err := ReadCSV(&out)
		if err != nil {
			t.Fatalf("re-decoding re-encoded trace: %v", err)
		}
		if len(tr) != len(tr2) {
			t.Fatalf("round trip changed length: %d vs %d", len(tr), len(tr2))
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatal("round trip changed trace")
		}
	})
}

// FuzzStreamDecode feeds arbitrary bytes to the sniffing incremental
// decoder and cross-checks it against the materialised reader for
// whatever format it sniffed: both must agree on accept/reject and on
// every decoded record. This pins the streaming and materialised
// ingestion paths to one interpretation of each encoding.
func FuzzStreamDecode(f *testing.F) {
	var bin, gz bytes.Buffer
	seed := Trace{
		{Time: 1, Addr: 0x1000, Size: 64, Op: Read},
		{Time: 2, Addr: 0x1040, Size: 128, Op: Write},
	}
	if _, err := WriteBinary(&bin, seed); err != nil {
		f.Fatal(err)
	}
	if err := WriteGzip(&gz, seed); err != nil {
		f.Fatal(err)
	}
	f.Add(bin.Bytes())
	f.Add(gz.Bytes())
	f.Add([]byte("time,op,addr,size\n1,R,1000,64\n"))
	f.Add([]byte{})
	f.Add([]byte{0x1f, 0x8b, 0x00})
	f.Add(bin.Bytes()[:17])
	f.Fuzz(func(t *testing.T, data []byte) {
		d, derr := NewDecoder(bytes.NewReader(data))
		var streamed Trace
		if derr == nil {
			streamed, derr = d.ReadAll()
		}

		var mat Trace
		var merr error
		format := "csv"
		if d != nil {
			format = d.Format()
		} else if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
			format = "gz"
		} else if len(data) >= 4 && string(data[:4]) == "KCOM" { // LE "MOCK"
			format = "bin"
		}
		switch format {
		case "bin":
			mat, merr = ReadBinary(bytes.NewReader(data))
		case "gz":
			mat, merr = ReadGzip(bytes.NewReader(data))
		default:
			mat, merr = ReadCSV(bytes.NewReader(data))
		}

		if (derr == nil) != (merr == nil) {
			t.Fatalf("decoder err=%v but materialized %s reader err=%v", derr, format, merr)
		}
		if derr != nil {
			return
		}
		if len(streamed) != len(mat) || (len(mat) > 0 && !reflect.DeepEqual(streamed, mat)) {
			t.Fatalf("decoder and materialized %s reader disagree: %d vs %d requests", format, len(streamed), len(mat))
		}
	})
}

// FuzzBinaryRoundTrip builds a structurally valid trace from fuzzed
// values and asserts both codecs reproduce it exactly.
func FuzzBinaryRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(0x1000), uint32(64), byte(0), uint8(3))
	f.Fuzz(func(t *testing.T, tm, addr uint64, size uint32, op byte, n uint8) {
		tr := make(Trace, 0, n)
		for i := uint8(0); i < n; i++ {
			tr = append(tr, Request{
				Time: tm + uint64(i),
				Addr: addr ^ uint64(i)<<12,
				Size: size + uint32(i),
				Op:   Op(op % 2),
			})
		}
		var bin bytes.Buffer
		if _, err := WriteBinary(&bin, tr); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(&bin)
		if err != nil {
			t.Fatalf("decoding valid trace: %v", err)
		}
		if len(got) != len(tr) || (len(tr) > 0 && !reflect.DeepEqual(got, tr)) {
			t.Fatalf("binary round trip changed trace (%d vs %d requests)", len(tr), len(got))
		}

		var gz bytes.Buffer
		if err := WriteGzip(&gz, tr); err != nil {
			t.Fatal(err)
		}
		got, err = ReadGzip(&gz)
		if err != nil {
			t.Fatalf("decoding valid gzip trace: %v", err)
		}
		if len(got) != len(tr) || (len(tr) > 0 && !reflect.DeepEqual(got, tr)) {
			t.Fatal("gzip round trip changed trace")
		}
	})
}
