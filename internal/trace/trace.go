// Package trace defines the memory-request representation shared by every
// component in the repository: the Mocktails modeller, the synthesis engine,
// the baseline models, and the DRAM/cache simulators.
//
// A request carries the four features visible at the interface between a
// compute device and the memory system (Mocktails §III): a cycle timestamp,
// a byte address, an operation (read or write), and a size in bytes.
package trace

import (
	"fmt"
	"sort"
)

// Op is the operation of a memory request.
type Op uint8

const (
	// Read is a memory read request.
	Read Op = iota
	// Write is a memory write request.
	Write
)

// String returns "R" for reads and "W" for writes.
func (o Op) String() string {
	if o == Read {
		return "R"
	}
	return "W"
}

// Request is one memory request as observed at the device/memory interface.
type Request struct {
	// Time is the injection timestamp in cycles.
	Time uint64
	// Addr is the byte address of the first byte accessed.
	Addr uint64
	// Size is the number of bytes accessed.
	Size uint32
	// Op is Read or Write.
	Op Op
}

// End returns the first byte address past the request, i.e. Addr+Size.
func (r Request) End() uint64 { return r.Addr + uint64(r.Size) }

// String formats the request for debugging.
func (r Request) String() string {
	return fmt.Sprintf("{t=%d %s 0x%x +%d}", r.Time, r.Op, r.Addr, r.Size)
}

// Trace is an ordered sequence of memory requests. Mocktails treats the
// order of a trace as the injection order; traces replayed into the timing
// simulator must be sorted by Time.
type Trace []Request

// Clone returns a deep copy of the trace.
func (t Trace) Clone() Trace {
	c := make(Trace, len(t))
	copy(c, t)
	return c
}

// SortByTime stably sorts the trace by timestamp, preserving the relative
// order of requests that share a cycle.
func (t Trace) SortByTime() {
	sort.SliceStable(t, func(i, j int) bool { return t[i].Time < t[j].Time })
}

// Sorted reports whether the trace is non-decreasing in time.
func (t Trace) Sorted() bool {
	for i := 1; i < len(t); i++ {
		if t[i].Time < t[i-1].Time {
			return false
		}
	}
	return true
}

// Duration returns the span in cycles between the first and last request.
// It returns 0 for traces with fewer than two requests.
func (t Trace) Duration() uint64 {
	if len(t) < 2 {
		return 0
	}
	return t[len(t)-1].Time - t[0].Time
}

// Counts returns the number of read and write requests.
func (t Trace) Counts() (reads, writes int) {
	for _, r := range t {
		if r.Op == Read {
			reads++
		} else {
			writes++
		}
	}
	return reads, writes
}

// Bytes returns the total number of bytes requested.
func (t Trace) Bytes() uint64 {
	var n uint64
	for _, r := range t {
		n += uint64(r.Size)
	}
	return n
}

// AddrRange returns the lowest address touched and the first byte past the
// highest address touched. An empty trace returns (0, 0).
func (t Trace) AddrRange() (lo, hi uint64) {
	if len(t) == 0 {
		return 0, 0
	}
	lo, hi = t[0].Addr, t[0].End()
	for _, r := range t[1:] {
		if r.Addr < lo {
			lo = r.Addr
		}
		if r.End() > hi {
			hi = r.End()
		}
	}
	return lo, hi
}

// Footprint returns the number of distinct block-aligned blocks of the
// given size touched by the trace. blockSize must be a power of two.
func (t Trace) Footprint(blockSize uint64) int {
	if blockSize == 0 {
		return 0
	}
	seen := make(map[uint64]struct{})
	for _, r := range t {
		for b := r.Addr / blockSize; b <= (r.End()-1)/blockSize; b++ {
			seen[b] = struct{}{}
		}
	}
	return len(seen)
}

// A Source produces a stream of requests, one at a time, and accepts
// backpressure feedback from a consumer. Both trace replay and Mocktails
// synthesis implement Source, so the simulators are agnostic to whether
// they are driven by the original workload or a synthetic recreation
// (Mocktails §III-C, "Simulator Feedback").
type Source interface {
	// Next returns the next request and true, or false when exhausted.
	Next() (Request, bool)
	// Delay adds the given number of cycles of backpressure delay to all
	// requests that have not yet been returned by Next.
	Delay(cycles uint64)
}

// Replayer replays a trace in order, applying backpressure delay to the
// timestamps of requests not yet delivered.
type Replayer struct {
	t     Trace
	i     int
	shift uint64
}

// NewReplayer returns a Source that replays t in its current order.
func NewReplayer(t Trace) *Replayer { return &Replayer{t: t} }

// Next returns the next request of the trace.
func (r *Replayer) Next() (Request, bool) {
	if r.i >= len(r.t) {
		return Request{}, false
	}
	req := r.t[r.i]
	r.i++
	req.Time += r.shift
	return req, true
}

// Delay shifts the timestamps of all undelivered requests forward.
func (r *Replayer) Delay(cycles uint64) { r.shift += cycles }

// Remaining returns the number of requests not yet delivered.
func (r *Replayer) Remaining() int { return len(r.t) - r.i }

// Collect drains a Source into a Trace. It stops after limit requests when
// limit > 0.
func Collect(s Source, limit int) Trace {
	var t Trace
	for {
		req, ok := s.Next()
		if !ok {
			return t
		}
		t = append(t, req)
		if limit > 0 && len(t) >= limit {
			return t
		}
	}
}
