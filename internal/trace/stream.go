package trace

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
)

// The streaming encoders write requests pulled one at a time from a
// callback instead of a materialised Trace, so a server can pipe a
// multi-gigabyte synthesis straight into a network connection without
// ever holding the trace in memory. They are the primitives behind
// WriteBinary/WriteCSV; both check their context periodically so a
// consumer that disconnects aborts the encode within one record batch.

// cancelCheckEvery is how many records the streaming encoders emit
// between context checks. It matches synth.DefaultBatch, so a canceled
// stream stops pulling from a Synthesizer within one refill chunk.
const cancelCheckEvery = 256

// countWriter counts the bytes that reach the underlying writer, so the
// encoders can report egress even when an error or cancellation cuts
// the stream short.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// streamBufSize is the bufio size of the streaming encoders: large
// enough to keep per-record overhead negligible, small enough that a
// flush-per-buffer HTTP stream delivers promptly.
const streamBufSize = 32 << 10

// ctxErr reports the context's cancellation error, tolerating nil.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// WriteBinaryStream encodes exactly n requests pulled from next into the
// binary record format. The header's record count is written up front,
// so next must yield at least n requests; running dry earlier is an
// error (the stream would lie about its length). It returns the bytes
// written to w — on cancellation or error, the bytes that made it out
// before the abort.
func WriteBinaryStream(ctx context.Context, w io.Writer, n uint64, next func() (Request, bool)) (int64, error) {
	cw := &countWriter{w: w}
	bw := bufio.NewWriterSize(cw, streamBufSize)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:], traceVersion)
	binary.LittleEndian.PutUint64(hdr[8:], n)
	if _, err := bw.Write(hdr[:]); err != nil {
		return cw.n, err
	}
	var rec [recordSize]byte
	for i := uint64(0); i < n; i++ {
		if i%cancelCheckEvery == 0 {
			if err := ctxErr(ctx); err != nil {
				bw.Flush()
				return cw.n, err
			}
		}
		r, ok := next()
		if !ok {
			bw.Flush()
			return cw.n, fmt.Errorf("trace: stream ended after %d of %d records", i, n)
		}
		binary.LittleEndian.PutUint64(rec[0:], r.Time)
		binary.LittleEndian.PutUint64(rec[8:], r.Addr)
		binary.LittleEndian.PutUint32(rec[16:], r.Size)
		rec[20] = byte(r.Op)
		if _, err := bw.Write(rec[:]); err != nil {
			return cw.n, err
		}
	}
	err := bw.Flush()
	return cw.n, err
}

// WriteCSVStream encodes requests pulled from next as CSV until next is
// exhausted. CSV carries no length header, so the stream may end at any
// point. It returns the bytes written to w.
func WriteCSVStream(ctx context.Context, w io.Writer, next func() (Request, bool)) (int64, error) {
	cw := &countWriter{w: w}
	bw := bufio.NewWriterSize(cw, streamBufSize)
	if _, err := fmt.Fprintln(bw, "time,op,addr,size"); err != nil {
		return cw.n, err
	}
	for i := uint64(0); ; i++ {
		if i%cancelCheckEvery == 0 {
			if err := ctxErr(ctx); err != nil {
				bw.Flush()
				return cw.n, err
			}
		}
		r, ok := next()
		if !ok {
			break
		}
		if _, err := fmt.Fprintf(bw, "%d,%s,%x,%d\n", r.Time, r.Op, r.Addr, r.Size); err != nil {
			return cw.n, err
		}
	}
	err := bw.Flush()
	return cw.n, err
}

// BinaryEncodedSize returns the exact byte length of the binary
// encoding of an n-record trace (header plus fixed-width records), so a
// server can announce Content-Length before streaming.
func BinaryEncodedSize(n uint64) int64 {
	return 16 + int64(n)*recordSize
}

// Limit adapts a Source to a pull function that stops after n requests
// (n == 0 means unlimited). It is the bridge between a Synthesizer and
// the streaming encoders.
func Limit(s Source, n uint64) func() (Request, bool) {
	var seen uint64
	return func() (Request, bool) {
		if n > 0 && seen >= n {
			return Request{}, false
		}
		r, ok := s.Next()
		if ok {
			seen++
		}
		return r, ok
	}
}
