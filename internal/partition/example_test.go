package partition_test

import (
	"fmt"

	"repro/internal/partition"
	"repro/internal/trace"
)

// ExampleByDynamic shows Algorithm 1 on the paper's running example: two
// interleaved streams plus an isolated pair of requests become three
// partitions with exact bounds.
func ExampleByDynamic() {
	tr := trace.Trace{
		{Time: 0, Addr: 0x1000, Size: 64, Op: trace.Read},
		{Time: 1, Addr: 0x8000, Size: 64, Op: trace.Read},
		{Time: 2, Addr: 0x1040, Size: 64, Op: trace.Read}, // adjacent to 0x1000
		{Time: 3, Addr: 0x8040, Size: 64, Op: trace.Read}, // adjacent to 0x8000
		{Time: 4, Addr: 0xff000, Size: 4, Op: trace.Read}, // lonely
		{Time: 5, Addr: 0x50000, Size: 4, Op: trace.Read}, // lonely
	}
	for _, leaf := range partition.ByDynamic(tr) {
		fmt.Printf("[0x%x,0x%x) %d requests\n", leaf.Lo, leaf.Hi, len(leaf.Reqs))
	}
	// Output:
	// [0x1000,0x1080) 2 requests
	// [0x8000,0x8080) 2 requests
	// [0x50000,0xff004) 2 requests
}

// ExampleConfig_String shows the paper's two standard hierarchies.
func ExampleConfig_String() {
	fmt.Println(partition.TwoLevelTS(500000))
	fmt.Println(partition.TwoLevelRequestCount(100000, 0))
	// Output:
	// temporal(cycle_count)[500000] -> spatial(dynamic)
	// temporal(request_count)[100000] -> spatial(dynamic)
}
