// Package partition implements Mocktails' hierarchical partitioning
// (§III-A): requests are divided along the temporal dimension (fixed
// request-count intervals as in STM, or fixed cycle-count intervals as in
// SynFull) and along the spatial dimension (fixed-size blocks as in HALO,
// or the paper's novel dynamic scheme of Algorithm 1 that merges
// overlapping/adjacent address ranges and groups lonely requests).
//
// A hierarchy Config lists the layers top-down; Split applies them
// recursively and returns the leaves, each of which is modelled
// independently by package profile.
package partition

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Partitioning metrics: how many final leaves each Split produced, and
// the work the dynamic scheme (Algorithm 1) performed getting there.
var (
	mLeaves         = obs.NewCounter("partition.leaves")
	mRangeMerges    = obs.NewCounter("partition.range_merges")
	mLonelyGroups   = obs.NewCounter("partition.lonely_groups")
	mLonelyRequests = obs.NewCounter("partition.lonely_requests")
)

// Kind selects a partitioning scheme for one layer of the hierarchy.
type Kind int

const (
	// TemporalRequestCount divides a sequence into intervals holding at
	// most Param requests (STM-style).
	TemporalRequestCount Kind = iota
	// TemporalCycleCount divides a sequence into fixed Param-cycle
	// intervals (SynFull-style).
	TemporalCycleCount
	// SpatialFixed divides requests into fixed Param-byte aligned blocks
	// keyed by each request's start address (HALO-style).
	SpatialFixed
	// SpatialDynamic applies the paper's dynamic scheme: ranges touched
	// by requests are merged when they overlap or are adjacent, and
	// lonely requests are grouped (Algorithm 1). Param is ignored.
	SpatialDynamic
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case TemporalRequestCount:
		return "temporal(request_count)"
	case TemporalCycleCount:
		return "temporal(cycle_count)"
	case SpatialFixed:
		return "spatial(fixed)"
	case SpatialDynamic:
		return "spatial(dynamic)"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Temporal reports whether the kind partitions along the time dimension.
func (k Kind) Temporal() bool {
	return k == TemporalRequestCount || k == TemporalCycleCount
}

// Layer is one level of the hierarchy.
type Layer struct {
	Kind Kind
	// Param is the requests-per-interval, cycles-per-interval, or block
	// size in bytes, depending on Kind. Ignored for SpatialDynamic.
	Param uint64
}

// Config is a hierarchical partitioning configuration, applied top-down.
type Config struct {
	Layers []Layer
}

// TwoLevelTS returns the paper's 2L-TS configuration: temporal
// cycle-count intervals first, then dynamic spatial partitions (§IV-A).
func TwoLevelTS(cycles uint64) Config {
	return Config{Layers: []Layer{
		{Kind: TemporalCycleCount, Param: cycles},
		{Kind: SpatialDynamic},
	}}
}

// TwoLevelRequestCount returns the Section V configuration: temporal
// request-count intervals first, then the given spatial scheme (dynamic
// when blockSize == 0, fixed-size otherwise).
func TwoLevelRequestCount(requests, blockSize uint64) Config {
	spatial := Layer{Kind: SpatialDynamic}
	if blockSize > 0 {
		spatial = Layer{Kind: SpatialFixed, Param: blockSize}
	}
	return Config{Layers: []Layer{
		{Kind: TemporalRequestCount, Param: requests},
		spatial,
	}}
}

// Validate checks that every layer has a sensible parameter.
func (c Config) Validate() error {
	if len(c.Layers) == 0 {
		return fmt.Errorf("partition: config has no layers")
	}
	for i, l := range c.Layers {
		if l.Kind != SpatialDynamic && l.Param == 0 {
			return fmt.Errorf("partition: layer %d (%s) needs a non-zero parameter", i, l.Kind)
		}
	}
	return nil
}

// String describes the configuration.
func (c Config) String() string {
	s := ""
	for i, l := range c.Layers {
		if i > 0 {
			s += " -> "
		}
		if l.Kind == SpatialDynamic {
			s += l.Kind.String()
		} else {
			s += fmt.Sprintf("%s[%d]", l.Kind, l.Param)
		}
	}
	return s
}

// Leaf is a final partition: an ordered subsequence of requests plus the
// spatial bounds within which synthesis must generate addresses. For
// dynamic partitions the bounds are exactly the union of touched bytes;
// for fixed partitions they are the enclosing block, which is looser and
// is the reason Mocktails(4KB) trails Mocktails(Dynamic) in §V-B.
type Leaf struct {
	Reqs   trace.Trace
	Lo, Hi uint64 // address range [Lo, Hi)
}

// Split applies the hierarchy to the trace and returns the leaves. The
// request order inside every leaf preserves the input order.
func Split(t trace.Trace, cfg Config) ([]Leaf, error) {
	return SplitCtx(context.Background(), t, cfg)
}

// SplitCtx is Split under a tracing span: the stage nests below the
// span carried by ctx (see internal/obs) and records the request and
// leaf counts. Partitioning output is identical to Split's.
func SplitCtx(ctx context.Context, t trace.Trace, cfg Config) ([]Leaf, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(t) == 0 {
		return nil, nil
	}
	_, sp := obs.Start(ctx, "partition.split")
	leaves := splitLayer(t, cfg.Layers)
	mLeaves.Add(uint64(len(leaves)))
	sp.SetCount("requests", int64(len(t)))
	sp.SetCount("leaves", int64(len(leaves)))
	sp.End()
	return leaves, nil
}

func splitLayer(t trace.Trace, layers []Layer) []Leaf {
	if len(layers) == 0 {
		lo, hi := t.AddrRange()
		return []Leaf{{Reqs: t, Lo: lo, Hi: hi}}
	}
	l := layers[0]
	var parts []Leaf
	switch l.Kind {
	case TemporalRequestCount:
		parts = byRequestCount(t, int(l.Param))
	case TemporalCycleCount:
		parts = byCycleCount(t, l.Param)
	case SpatialFixed:
		parts = ByFixedBlock(t, l.Param)
	case SpatialDynamic:
		parts = ByDynamic(t)
	}
	if len(layers) == 1 {
		return parts
	}
	var leaves []Leaf
	for _, p := range parts {
		leaves = append(leaves, expandPart(p, layers[1:])...)
	}
	return leaves
}

// expandPart applies the remaining layers beneath a first-layer part.
// It is shared by the materialised recursion above and the incremental
// Streamer, so both produce leaves with identical content, bounds and
// order for the same part.
func expandPart(p Leaf, rest []Layer) []Leaf {
	if len(rest) == 0 {
		return []Leaf{p}
	}
	children := splitLayer(p.Reqs, rest)
	if !rest[0].Kind.Temporal() {
		return children
	}
	// A temporal sub-layer inherits the parent's spatial bounds so
	// that synthesis stays inside the spatial partition.
	out := make([]Leaf, 0, len(children))
	for _, c := range children {
		c.Lo, c.Hi = p.Lo, p.Hi
		out = append(out, c)
	}
	return out
}

// byRequestCount chunks the sequence into intervals of at most n requests.
func byRequestCount(t trace.Trace, n int) []Leaf {
	if n <= 0 {
		n = len(t)
	}
	var out []Leaf
	for i := 0; i < len(t); i += n {
		end := i + n
		if end > len(t) {
			end = len(t)
		}
		sub := t[i:end]
		lo, hi := sub.AddrRange()
		out = append(out, Leaf{Reqs: sub, Lo: lo, Hi: hi})
	}
	return out
}

// byCycleCount chunks the sequence into fixed-width wall-clock intervals,
// anchored at the first request's timestamp. Empty intervals produce no
// leaf.
func byCycleCount(t trace.Trace, cycles uint64) []Leaf {
	if len(t) == 0 {
		return nil
	}
	start := t[0].Time
	var out []Leaf
	i := 0
	for i < len(t) {
		bin := (t[i].Time - start) / cycles
		j := i
		for j < len(t) && (t[j].Time-start)/cycles == bin {
			j++
		}
		sub := t[i:j]
		lo, hi := sub.AddrRange()
		out = append(out, Leaf{Reqs: sub, Lo: lo, Hi: hi})
		i = j
	}
	return out
}

// ByFixedBlock groups requests into fixed-size aligned blocks keyed by the
// request's start address. Leaves are ordered by block address; request
// order within a leaf preserves input order. Bounds are the whole block.
func ByFixedBlock(t trace.Trace, blockSize uint64) []Leaf {
	groups := make(map[uint64]trace.Trace)
	for _, r := range t {
		b := r.Addr / blockSize
		groups[b] = append(groups[b], r)
	}
	blocks := make([]uint64, 0, len(groups))
	for b := range groups {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	out := make([]Leaf, 0, len(blocks))
	for _, b := range blocks {
		out = append(out, Leaf{
			Reqs: groups[b],
			Lo:   b * blockSize,
			Hi:   (b + 1) * blockSize,
		})
	}
	return out
}
