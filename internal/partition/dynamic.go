package partition

import (
	"sort"

	"repro/internal/trace"
)

// ByDynamic implements the paper's dynamic spatial partitioning
// (Algorithm 1 plus the lonely-request rules of §III-A):
//
//  1. Build [addr, addr+size) ranges for every request, sort them, and
//     merge ranges that intersect or touch into maximal memory regions.
//  2. Assign every request to the region containing it; each region with
//     two or more requests becomes a partition whose bounds are exactly
//     the region.
//  3. Regions holding a single request are "lonely". Runs of lonely
//     requests that are equally spaced in memory (constant stride) are
//     grouped into one partition each; any remaining lonely requests are
//     merged together into a single catch-all partition.
//
// Request order within each partition preserves the input (temporal)
// order.
func ByDynamic(t trace.Trace) []Leaf {
	if len(t) == 0 {
		return nil
	}
	regions := mergeRanges(t)
	// Every merge of Algorithm 1 collapses two ranges into one, so the
	// merge count is exactly the range deficit.
	mRangeMerges.Add(uint64(len(t) - len(regions)))
	// Assign requests to regions; requests are ordered, so each region's
	// subsequence is ordered too.
	perRegion := make([]trace.Trace, len(regions))
	for _, r := range t {
		i := findRegion(regions, r.Addr)
		perRegion[i] = append(perRegion[i], r)
	}

	var leaves []Leaf
	var lonelies []lonely
	for i, reqs := range perRegion {
		if len(reqs) == 0 {
			continue
		}
		if len(reqs) == 1 {
			lonelies = append(lonelies, lonely{reqs[0], regions[i].lo, regions[i].hi})
			continue
		}
		leaves = append(leaves, Leaf{Reqs: reqs, Lo: regions[i].lo, Hi: regions[i].hi})
	}
	if len(lonelies) == 0 {
		return leaves
	}
	mLonelyRequests.Add(uint64(len(lonelies)))
	// Group lonely requests: maximal constant-stride runs in address
	// order become partitions; leftovers merge into one partition.
	sort.SliceStable(lonelies, func(i, j int) bool { return lonelies[i].req.Addr < lonelies[j].req.Addr })
	var rest []lonely
	i := 0
	for i < len(lonelies) {
		j := i + 1
		if j < len(lonelies) {
			stride := lonelies[j].req.Addr - lonelies[i].req.Addr
			for j+1 < len(lonelies) && lonelies[j+1].req.Addr-lonelies[j].req.Addr == stride {
				j++
			}
		}
		if j-i+1 >= 3 { // an equally-spaced run of at least three
			leaves = append(leaves, lonelyLeaf(lonelies[i:j+1]))
			i = j + 1
			continue
		}
		rest = append(rest, lonelies[i])
		i++
	}
	if len(rest) > 0 {
		leaves = append(leaves, lonelyLeaf(rest))
	}
	return leaves

}

// lonely is a merged region that attracted exactly one request.
type lonely struct {
	req    trace.Request
	lo, hi uint64
}

func lonelyLeaf(ls []lonely) Leaf {
	mLonelyGroups.Inc()
	reqs := make(trace.Trace, 0, len(ls))
	lo, hi := ls[0].lo, ls[0].hi
	for _, l := range ls {
		reqs = append(reqs, l.req)
		if l.lo < lo {
			lo = l.lo
		}
		if l.hi > hi {
			hi = l.hi
		}
	}
	// Restore temporal order within the grouped partition.
	reqs.SortByTime()
	return Leaf{Reqs: reqs, Lo: lo, Hi: hi}
}

type region struct{ lo, hi uint64 }

// mergeRanges is Algorithm 1: sort the per-request ranges and merge any
// that intersect or touch, yielding non-overlapping maximal regions in
// ascending address order.
func mergeRanges(t trace.Trace) []region {
	ranges := make([]region, len(t))
	for i, r := range t {
		ranges[i] = region{r.Addr, r.End()}
	}
	sort.Slice(ranges, func(i, j int) bool {
		if ranges[i].lo != ranges[j].lo {
			return ranges[i].lo < ranges[j].lo
		}
		return ranges[i].hi < ranges[j].hi
	})
	out := ranges[:1]
	for _, r := range ranges[1:] {
		last := &out[len(out)-1]
		if r.lo <= last.hi { // overlapping or adjacent
			if r.hi > last.hi {
				last.hi = r.hi
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// findRegion returns the index of the region containing addr. Regions are
// sorted and non-overlapping, and every request address is inside one.
func findRegion(regions []region, addr uint64) int {
	i := sort.Search(len(regions), func(i int) bool { return regions[i].hi > addr })
	return i
}
