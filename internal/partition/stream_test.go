package partition

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/trace"
)

// streamTrace builds a sorted trace with clustered addresses, bursts
// and idle gaps, so temporal windows vary in population (including
// empty cycle-count bins) and the dynamic spatial layer has structure
// to find.
func streamTrace(n int, seed int64) trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	t := make(trace.Trace, 0, n)
	tm := uint64(0)
	for i := 0; i < n; i++ {
		tm += uint64(rng.Intn(40))
		if rng.Intn(100) == 0 {
			tm += 5000 // idle gap: empty cycle-count bins
		}
		base := uint64(0x1000) * uint64(1+rng.Intn(8))
		op := trace.Read
		if rng.Intn(3) == 0 {
			op = trace.Write
		}
		t = append(t, trace.Request{
			Time: tm,
			Addr: base<<8 + uint64(rng.Intn(4096)),
			Size: uint32(16 << rng.Intn(3)),
			Op:   op,
		})
	}
	return t
}

func streamConfigs() map[string]Config {
	return map[string]Config{
		"cycles-only":    {Layers: []Layer{{Kind: TemporalCycleCount, Param: 700}}},
		"reqcount-only":  {Layers: []Layer{{Kind: TemporalRequestCount, Param: 64}}},
		"2L-TS":          TwoLevelTS(700),
		"reqcount-fixed": TwoLevelRequestCount(100, 4096),
		"reqcount-dyn":   TwoLevelRequestCount(100, 0),
		"three-layer": {Layers: []Layer{
			{Kind: TemporalCycleCount, Param: 2000},
			{Kind: TemporalRequestCount, Param: 32},
			{Kind: SpatialDynamic},
		}},
	}
}

// pushAll drives a Streamer over t and collects every emitted leaf.
func pushAll(t *testing.T, s *Streamer, tr trace.Trace) []Leaf {
	t.Helper()
	var out []Leaf
	for _, r := range tr {
		closed, err := s.Push(r)
		if err != nil {
			t.Fatalf("Push: %v", err)
		}
		out = append(out, closed...)
	}
	return append(out, s.Flush()...)
}

// TestStreamerMatchesSplit is the core identity property: for every
// streamable hierarchy, pushing record by record yields exactly the
// leaves Split produces on the materialised trace — same content, same
// bounds, same order.
func TestStreamerMatchesSplit(t *testing.T) {
	tr := streamTrace(5000, 42)
	for name, cfg := range streamConfigs() {
		t.Run(name, func(t *testing.T) {
			want, err := Split(tr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewStreamer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := pushAll(t, s, tr)
			if len(got) != len(want) {
				t.Fatalf("streamed %d leaves, Split produced %d", len(got), len(want))
			}
			for i := range want {
				if !reflect.DeepEqual(got[i].Reqs, want[i].Reqs) || got[i].Lo != want[i].Lo || got[i].Hi != want[i].Hi {
					t.Fatalf("leaf %d differs:\nstream: lo=%x hi=%x n=%d\nsplit:  lo=%x hi=%x n=%d",
						i, got[i].Lo, got[i].Hi, len(got[i].Reqs), want[i].Lo, want[i].Hi, len(want[i].Reqs))
				}
			}
		})
	}
}

// TestStreamerWindowBoundaries pins the exact cut points: a cycle-count
// window [0,100) closes when t=100 arrives (not t=99), empty bins emit
// nothing, and request-count windows close at exactly Param requests.
func TestStreamerWindowBoundaries(t *testing.T) {
	t.Run("cycle-edges", func(t *testing.T) {
		cfg := Config{Layers: []Layer{{Kind: TemporalCycleCount, Param: 100}}}
		s, err := NewStreamer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if closed, _ := s.Push(req(0, 0x100, 64)); len(closed) != 0 {
			t.Fatal("first request closed a window")
		}
		// 99 is still inside [0,100).
		if closed, _ := s.Push(req(99, 0x140, 64)); len(closed) != 0 {
			t.Fatal("t=99 closed the [0,100) window")
		}
		// 100 starts bin 1 and must close bin 0 with exactly 2 requests.
		closed, _ := s.Push(req(100, 0x180, 64))
		if len(closed) != 1 || len(closed[0].Reqs) != 2 {
			t.Fatalf("t=100 closed %d leaves (want 1 with 2 reqs)", len(closed))
		}
		// 350 skips bin 2 entirely: exactly one window (bin 1) closes —
		// empty bins emit nothing.
		closed, _ = s.Push(req(350, 0x1c0, 64))
		if len(closed) != 1 || len(closed[0].Reqs) != 1 {
			t.Fatalf("skipping an empty bin closed %d leaves", len(closed))
		}
		if got := s.Flush(); len(got) != 1 || len(got[0].Reqs) != 1 {
			t.Fatalf("Flush returned %d leaves", len(got))
		}
	})
	t.Run("request-count", func(t *testing.T) {
		cfg := Config{Layers: []Layer{{Kind: TemporalRequestCount, Param: 3}}}
		s, err := NewStreamer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sizes []int
		for i := 0; i < 7; i++ {
			closed, _ := s.Push(req(uint64(i), 0x100+uint64(i)*64, 64))
			for _, l := range closed {
				sizes = append(sizes, len(l.Reqs))
			}
		}
		for _, l := range s.Flush() {
			sizes = append(sizes, len(l.Reqs))
		}
		if !reflect.DeepEqual(sizes, []int{3, 3, 1}) {
			t.Fatalf("7 requests at Param=3 split as %v, want [3 3 1]", sizes)
		}
	})
}

// TestStreamerFreshBackingArrays: a closed window's requests must not
// share a backing array with the next window, or retaining one leaf
// would pin the other's memory.
func TestStreamerFreshBackingArrays(t *testing.T) {
	cfg := Config{Layers: []Layer{{Kind: TemporalRequestCount, Param: 2}}}
	s, err := NewStreamer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Push(req(0, 0x100, 64))
	closed, _ := s.Push(req(1, 0x140, 64))
	if len(closed) != 1 {
		t.Fatal("window did not close")
	}
	first := closed[0].Reqs
	s.Push(req(2, 0x999, 64))
	if first[0].Addr != 0x100 || first[1].Addr != 0x140 {
		t.Fatal("closed window mutated by later pushes")
	}
	// Appending into the new window must not write over the old one.
	if &first[0] == &s.cur[0] {
		t.Fatal("windows share a backing array")
	}
}

// TestStreamerOutOfOrder: a time regression is rejected without
// disturbing the open window, and the error unwraps to ErrOutOfOrder.
func TestStreamerOutOfOrder(t *testing.T) {
	s, err := NewStreamer(TwoLevelTS(100))
	if err != nil {
		t.Fatal(err)
	}
	s.Push(req(50, 0x100, 64))
	if _, err := s.Push(req(49, 0x140, 64)); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("regression returned %v, want ErrOutOfOrder", err)
	}
	if s.Open() != 1 {
		t.Fatalf("rejected push disturbed the window: %d open requests", s.Open())
	}
	// Equal timestamps are fine (sorted, not strictly increasing).
	if _, err := s.Push(req(50, 0x180, 64)); err != nil {
		t.Fatalf("equal timestamp rejected: %v", err)
	}
}

// TestNewStreamerRejectsSpatialFirst: hierarchies that cannot stream
// are refused up front.
func TestNewStreamerRejectsSpatialFirst(t *testing.T) {
	if _, err := NewStreamer(Config{Layers: []Layer{{Kind: SpatialDynamic}}}); err == nil {
		t.Fatal("spatial-first config accepted")
	}
	if _, err := NewStreamer(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

// fitCollect returns a fit callback committing leaves by index under a
// lock, plus a way to read the result.
func fitCollect() (func(i int, l Leaf), func() []Leaf) {
	var mu chan struct{} = make(chan struct{}, 1)
	mu <- struct{}{}
	var out []Leaf
	return func(i int, l Leaf) {
			<-mu
			for len(out) <= i {
				out = append(out, Leaf{})
			}
			out[i] = l
			mu <- struct{}{}
		}, func() []Leaf {
			<-mu
			defer func() { mu <- struct{}{} }()
			return out
		}
}

// TestFitStreamMatchesSplit: FitStream over a decoder-style reader
// produces the same (index, leaf) assignment as Split, for both
// streamable and fallback (spatial-first) hierarchies, serial and
// parallel.
func TestFitStreamMatchesSplit(t *testing.T) {
	tr := streamTrace(4000, 7)
	cfgs := streamConfigs()
	cfgs["spatial-first-fallback"] = Config{Layers: []Layer{
		{Kind: SpatialFixed, Param: 1 << 16},
		{Kind: TemporalRequestCount, Param: 50},
	}}
	for name, cfg := range cfgs {
		for _, workers := range []int{1, 4} {
			t.Run(name, func(t *testing.T) {
				want, err := Split(tr, cfg)
				if err != nil {
					t.Fatal(err)
				}
				fit, result := fitCollect()
				records, leaves, err := FitStream(context.Background(), trace.NewSliceReader(tr), cfg, workers, fit)
				if err != nil {
					t.Fatal(err)
				}
				if records != uint64(len(tr)) {
					t.Fatalf("records = %d, want %d", records, len(tr))
				}
				got := result()
				if leaves != len(want) || len(got) != len(want) {
					t.Fatalf("fitted %d leaves, want %d", len(got), len(want))
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatal("FitStream leaves differ from Split")
				}
			})
		}
	}
}

// TestFitStreamOutOfOrder: both modes reject unsorted streams with
// ErrOutOfOrder.
func TestFitStreamOutOfOrder(t *testing.T) {
	tr := trace.Trace{req(10, 0x100, 64), req(5, 0x140, 64)}
	for name, cfg := range map[string]Config{
		"streaming": TwoLevelTS(100),
		"fallback":  {Layers: []Layer{{Kind: SpatialDynamic}}},
	} {
		t.Run(name, func(t *testing.T) {
			_, _, err := FitStream(context.Background(), trace.NewSliceReader(tr), cfg, 1, func(int, Leaf) {})
			if !errors.Is(err, ErrOutOfOrder) {
				t.Fatalf("err = %v, want ErrOutOfOrder", err)
			}
		})
	}
}

// TestFitStreamCancel: a canceled context stops ingestion promptly and
// surfaces the context error.
func TestFitStreamCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr := streamTrace(2000, 3)
	_, _, err := FitStream(ctx, trace.NewSliceReader(tr), TwoLevelTS(100), 4, func(int, Leaf) {})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestFitStreamPropagatesDecodeError: a reader error mid-stream aborts
// the build (after draining in-flight fits) and is returned.
func TestFitStreamPropagatesDecodeError(t *testing.T) {
	wantErr := errors.New("boom")
	rd := &erroringReader{t: streamTrace(700, 9), failAt: 500, err: wantErr}
	_, _, err := FitStream(context.Background(), rd, TwoLevelTS(100), 2, func(int, Leaf) {})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want boom", err)
	}
}

type erroringReader struct {
	t      trace.Trace
	i      int
	failAt int
	err    error
}

func (e *erroringReader) Next(r *trace.Request) error {
	if e.i >= e.failAt {
		return e.err
	}
	*r = e.t[e.i]
	e.i++
	return nil
}

// TestFitStreamLeafOrderSorted: indexes are dense and each leaf's
// requests preserve stream order (spot invariants beyond DeepEqual).
func TestFitStreamLeafOrderSorted(t *testing.T) {
	tr := streamTrace(3000, 11)
	fit, result := fitCollect()
	_, n, err := FitStream(context.Background(), trace.NewSliceReader(tr), TwoLevelTS(500), 8, fit)
	if err != nil {
		t.Fatal(err)
	}
	got := result()
	if len(got) != n {
		t.Fatalf("callback saw %d leaves, FitStream reported %d", len(got), n)
	}
	total := 0
	for i, l := range got {
		if len(l.Reqs) == 0 {
			t.Fatalf("leaf %d empty", i)
		}
		total += len(l.Reqs)
		if !sort.SliceIsSorted(l.Reqs, func(a, b int) bool { return l.Reqs[a].Time < l.Reqs[b].Time }) {
			t.Fatalf("leaf %d requests unsorted", i)
		}
	}
	if total != len(tr) {
		t.Fatalf("leaves cover %d requests, trace has %d", total, len(tr))
	}
}
