package partition

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/trace"
)

// FuzzSplit drives the hierarchical partitioner with fuzz-shaped
// traces and configurations and asserts its structural invariants:
// every input request lands in exactly one leaf, request order (and
// therefore time order, for sorted input) is preserved inside each
// leaf, and every leaf's requests start inside its address bounds.
func FuzzSplit(f *testing.F) {
	f.Add(uint64(1), uint16(100), uint8(1), uint64(1000), uint8(3), uint64(0))
	f.Add(uint64(2), uint16(500), uint8(0), uint64(64), uint8(2), uint64(4096))
	f.Add(uint64(3), uint16(10), uint8(1), uint64(1), uint8(3), uint64(0))
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, tempKind uint8, tempParam uint64, spatKind uint8, spatParam uint64) {
		rng := stats.NewRNG(seed)
		tr := make(trace.Trace, 0, n)
		now := uint64(0)
		for i := 0; i < int(n); i++ {
			now += uint64(rng.Range(0, 300))
			tr = append(tr, trace.Request{
				Time: now,
				Addr: uint64(rng.Intn(1<<20)) * 16,
				Size: uint32(1 << rng.Intn(8)),
				Op:   trace.Op(rng.Intn(2)),
			})
		}

		layers := []Layer{
			{Kind: Kind(tempKind % 2), Param: tempParam},              // a temporal kind
			{Kind: Kind(spatKind%2) + SpatialFixed, Param: spatParam}, // a spatial kind
		}
		cfg := Config{Layers: layers}
		leaves, err := Split(tr, cfg)
		if err != nil {
			// Validate rejected the configuration (e.g. zero params);
			// that is the correct non-panicking outcome.
			return
		}

		total := 0
		for li, l := range leaves {
			total += len(l.Reqs)
			if !l.Reqs.Sorted() {
				t.Fatalf("leaf %d lost time order", li)
			}
			if l.Hi > l.Lo {
				for _, r := range l.Reqs {
					if r.Addr < l.Lo || r.Addr >= l.Hi {
						t.Fatalf("leaf %d: address 0x%x outside bounds [0x%x, 0x%x)",
							li, r.Addr, l.Lo, l.Hi)
					}
				}
			}
		}
		if total != len(tr) {
			t.Fatalf("leaves hold %d requests, input had %d", total, len(tr))
		}
	})
}
