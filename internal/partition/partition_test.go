package partition

import (
	"testing"

	"repro/internal/trace"
)

func req(t, a uint64, s uint32) trace.Request {
	return trace.Request{Time: t, Addr: a, Size: s, Op: trace.Read}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{TemporalRequestCount, TemporalCycleCount, SpatialFixed, SpatialDynamic} {
		if k.String() == "" {
			t.Errorf("Kind(%d) has empty String", k)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown Kind has empty String")
	}
}

func TestKindTemporal(t *testing.T) {
	if !TemporalRequestCount.Temporal() || !TemporalCycleCount.Temporal() {
		t.Error("temporal kinds not temporal")
	}
	if SpatialFixed.Temporal() || SpatialDynamic.Temporal() {
		t.Error("spatial kinds reported temporal")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Error("empty config validated")
	}
	bad := Config{Layers: []Layer{{Kind: SpatialFixed, Param: 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("zero-param fixed layer validated")
	}
	ok := Config{Layers: []Layer{{Kind: SpatialDynamic}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("dynamic layer rejected: %v", err)
	}
}

func TestConfigString(t *testing.T) {
	c := TwoLevelTS(500000)
	s := c.String()
	if s == "" {
		t.Fatal("empty config string")
	}
	c2 := TwoLevelRequestCount(1000, 4096)
	if c2.String() == s {
		t.Error("distinct configs render identically")
	}
}

func TestTwoLevelConstructors(t *testing.T) {
	c := TwoLevelTS(500000)
	if len(c.Layers) != 2 || c.Layers[0].Kind != TemporalCycleCount || c.Layers[1].Kind != SpatialDynamic {
		t.Errorf("TwoLevelTS = %+v", c)
	}
	d := TwoLevelRequestCount(100000, 0)
	if d.Layers[1].Kind != SpatialDynamic {
		t.Errorf("blockSize 0 should select dynamic, got %+v", d)
	}
	f := TwoLevelRequestCount(100000, 4096)
	if f.Layers[1].Kind != SpatialFixed || f.Layers[1].Param != 4096 {
		t.Errorf("fixed config = %+v", f)
	}
}

func TestSplitEmptyTrace(t *testing.T) {
	leaves, err := Split(nil, TwoLevelTS(1000))
	if err != nil || leaves != nil {
		t.Errorf("Split(nil) = %v, %v", leaves, err)
	}
}

func TestSplitInvalidConfig(t *testing.T) {
	if _, err := Split(trace.Trace{req(0, 0, 4)}, Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestByRequestCount(t *testing.T) {
	var tr trace.Trace
	for i := 0; i < 10; i++ {
		tr = append(tr, req(uint64(i), uint64(i*64), 64))
	}
	cfg := Config{Layers: []Layer{{Kind: TemporalRequestCount, Param: 4}}}
	leaves, err := Split(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) != 3 {
		t.Fatalf("got %d leaves, want 3 (4+4+2)", len(leaves))
	}
	if len(leaves[0].Reqs) != 4 || len(leaves[2].Reqs) != 2 {
		t.Errorf("leaf sizes %d,%d,%d", len(leaves[0].Reqs), len(leaves[1].Reqs), len(leaves[2].Reqs))
	}
}

func TestByCycleCount(t *testing.T) {
	tr := trace.Trace{
		req(100, 0, 4), req(150, 64, 4), // bin 0
		req(250, 128, 4), // bin 1
		// bin 2 empty
		req(460, 192, 4), // bin 3
	}
	cfg := Config{Layers: []Layer{{Kind: TemporalCycleCount, Param: 100}}}
	leaves, err := Split(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) != 3 {
		t.Fatalf("got %d leaves, want 3 (empty bins skipped)", len(leaves))
	}
	if len(leaves[0].Reqs) != 2 {
		t.Errorf("first interval has %d requests, want 2", len(leaves[0].Reqs))
	}
}

func TestByCycleCountAnchoredAtFirstRequest(t *testing.T) {
	// Bins are relative to the first timestamp, not absolute zero.
	tr := trace.Trace{req(1000, 0, 4), req(1050, 64, 4), req(1150, 128, 4)}
	cfg := Config{Layers: []Layer{{Kind: TemporalCycleCount, Param: 100}}}
	leaves, _ := Split(tr, cfg)
	if len(leaves) != 2 {
		t.Fatalf("got %d leaves, want 2", len(leaves))
	}
}

func TestByFixedBlock(t *testing.T) {
	tr := trace.Trace{
		req(0, 10, 4), req(1, 5000, 4), req(2, 20, 4), req(3, 4099, 4),
	}
	leaves := ByFixedBlock(tr, 4096)
	if len(leaves) != 2 {
		t.Fatalf("got %d leaves, want 2", len(leaves))
	}
	// Leaves sorted by block; bounds are whole blocks.
	if leaves[0].Lo != 0 || leaves[0].Hi != 4096 {
		t.Errorf("block 0 bounds = [%d,%d)", leaves[0].Lo, leaves[0].Hi)
	}
	if leaves[1].Lo != 4096 || leaves[1].Hi != 8192 {
		t.Errorf("block 1 bounds = [%d,%d)", leaves[1].Lo, leaves[1].Hi)
	}
	// Input order preserved within a block.
	if leaves[0].Reqs[0].Addr != 10 || leaves[0].Reqs[1].Addr != 20 {
		t.Errorf("block 0 order: %v", leaves[0].Reqs)
	}
}

func TestHierarchyTemporalThenSpatial(t *testing.T) {
	// Two time windows, each touching two separate regions.
	tr := trace.Trace{
		req(0, 0, 64), req(10, 64, 64), req(20, 10000, 64), req(30, 10064, 64),
		req(2000, 0, 64), req(2010, 64, 64), req(2020, 10000, 64), req(2030, 10064, 64),
	}
	leaves, err := Split(tr, TwoLevelTS(1000))
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) != 4 {
		t.Fatalf("got %d leaves, want 4 (2 windows x 2 regions)", len(leaves))
	}
}

func TestHierarchySpatialThenTemporal(t *testing.T) {
	// Spatial first, temporal second: temporal children inherit the
	// parent's spatial bounds.
	tr := trace.Trace{
		req(0, 0, 64), req(1000, 64, 64), req(2000, 0, 64), req(3000, 64, 64),
	}
	cfg := Config{Layers: []Layer{
		{Kind: SpatialDynamic},
		{Kind: TemporalRequestCount, Param: 2},
	}}
	leaves, err := Split(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) != 2 {
		t.Fatalf("got %d leaves, want 2", len(leaves))
	}
	for _, l := range leaves {
		if l.Lo != 0 || l.Hi != 128 {
			t.Errorf("leaf did not inherit spatial bounds: [%d,%d)", l.Lo, l.Hi)
		}
	}
}

func TestThreeLevelHierarchy(t *testing.T) {
	var tr trace.Trace
	for i := 0; i < 100; i++ {
		tr = append(tr, req(uint64(i*10), uint64((i%4)*100000+i*8), 8))
	}
	cfg := Config{Layers: []Layer{
		{Kind: TemporalCycleCount, Param: 300},
		{Kind: SpatialDynamic},
		{Kind: TemporalRequestCount, Param: 5},
	}}
	leaves, err := Split(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, l := range leaves {
		total += len(l.Reqs)
		if len(l.Reqs) > 5 {
			t.Errorf("leaf exceeds innermost request bound: %d", len(l.Reqs))
		}
	}
	if total != len(tr) {
		t.Errorf("leaves hold %d requests, want %d", total, len(tr))
	}
}
