package partition

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/trace"
)

// Streaming ingestion: the temporal first layer of a hierarchy imposes
// exactly the structure needed to partition without the whole trace in
// hand — a window's membership is decided the moment a request from a
// later window arrives. The Streamer exploits that: requests are pushed
// one at a time, and each window is expanded through the remaining
// layers (the same expandPart the materialised Split uses) and emitted
// as finished leaves the moment it closes. Peak memory is the open
// window plus whatever the consumer still holds, not the trace.

// Ingestion metrics, maintained by FitStream: records decoded, leaves
// dispatched but not yet fitted (plus the open window), and the bytes
// of trace memory in flight between the decoder and the fit frontier.
var (
	mIngestRecords  = obs.NewCounter("ingest.records")
	mOpenLeaves     = obs.NewGauge("ingest.open_leaves")
	mFrontierBytes  = obs.NewGauge("ingest.frontier_bytes")
	mIngestFallback = obs.NewCounter("ingest.materialized_fallbacks")
)

// ErrOutOfOrder is returned by Streamer.Push (and wrapped by the
// streaming build paths) when a request's timestamp precedes its
// predecessor's. Temporal windows can only be closed incrementally over
// a time-sorted stream.
var ErrOutOfOrder = errors.New("partition: request timestamps out of order")

// Streamer incrementally applies a hierarchy whose first layer is
// temporal. Push returns the leaves of every window the new request
// closed (usually none); Flush closes the final partial window. Each
// window is accumulated into its own backing array, so once the
// consumer drops a window's leaves that memory is unreachable — the
// property streaming ingestion's O(frontier) bound rests on.
//
// Leaf content, bounds and order are identical to Split on the
// materialised trace: windows close exactly where byCycleCount /
// byRequestCount would cut them, and sub-layers run through the same
// expansion code.
type Streamer struct {
	first Layer
	rest  []Layer

	cur      trace.Trace
	started  bool
	anchor   uint64 // first request's timestamp (cycle-count bins)
	bin      uint64 // current cycle-count bin
	lastTime uint64
}

// NewStreamer validates cfg and returns an incremental partitioner for
// it. Hierarchies whose first layer is spatial cannot stream (every
// window spans the whole trace); callers should fall back to the
// materialised Split — FitStream does so automatically.
func NewStreamer(cfg Config) (*Streamer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Layers[0].Kind.Temporal() {
		return nil, fmt.Errorf("partition: streaming requires a temporal first layer, got %s", cfg.Layers[0].Kind)
	}
	return &Streamer{first: cfg.Layers[0], rest: cfg.Layers[1:]}, nil
}

// Push adds one request and returns the fully-expanded leaves of any
// temporal window it closed. The returned slice is nil for most pushes.
// Requests must arrive sorted by time; a regression returns
// ErrOutOfOrder with the window state unchanged.
func (s *Streamer) Push(r trace.Request) ([]Leaf, error) {
	if s.started && r.Time < s.lastTime {
		return nil, fmt.Errorf("%w: %d after %d", ErrOutOfOrder, r.Time, s.lastTime)
	}
	var closed []Leaf
	switch s.first.Kind {
	case TemporalCycleCount:
		if !s.started {
			s.anchor = r.Time
			s.bin = 0
		}
		if bin := (r.Time - s.anchor) / s.first.Param; s.started && bin != s.bin {
			closed = s.closeWindow()
			s.bin = bin
		}
		s.cur = append(s.cur, r)
	case TemporalRequestCount:
		s.cur = append(s.cur, r)
		if uint64(len(s.cur)) >= s.first.Param {
			closed = s.closeWindow()
		}
	}
	s.started = true
	s.lastTime = r.Time
	return closed, nil
}

// Flush closes the final partial window and returns its leaves. The
// Streamer is reusable afterwards (a subsequent Push anchors a new
// trace).
func (s *Streamer) Flush() []Leaf {
	if len(s.cur) == 0 {
		s.started = false
		return nil
	}
	closed := s.closeWindow()
	s.started = false
	return closed
}

// Open returns the number of requests buffered in the open window.
func (s *Streamer) Open() int { return len(s.cur) }

// OpenBytes returns the in-memory footprint of the open window.
func (s *Streamer) OpenBytes() uint64 { return uint64(len(s.cur)) * trace.RequestMemBytes }

func (s *Streamer) closeWindow() []Leaf {
	sub := s.cur
	s.cur = nil // next window gets a fresh backing array
	lo, hi := sub.AddrRange()
	return expandPart(Leaf{Reqs: sub, Lo: lo, Hi: hi}, s.rest)
}

// fitQueueFactor sizes FitStream's pool queue relative to the worker
// count: deep enough to keep workers fed across uneven leaf costs,
// shallow enough that backpressure caps the frontier at a few windows.
const fitQueueFactor = 2

// FitStream decodes requests from rd, partitions them incrementally and
// calls fit for every leaf under the pool's concurrency, returning once
// every leaf has been fitted. Leaf indexes are assigned in the exact
// order Split would produce, so a fit callback that commits by index
// reconstructs the materialised result byte-for-byte. Backpressure from
// the bounded fit queue caps trace memory at O(open window + queued
// leaves) — the streaming frontier.
//
// Hierarchies without a temporal first layer cannot stream; FitStream
// transparently materialises the trace for those (counting
// ingest.materialized_fallbacks), so callers get one code path for
// every configuration. The stream must be time-sorted in either mode;
// violations return an error wrapping ErrOutOfOrder.
func FitStream(ctx context.Context, rd trace.Reader, cfg Config, workers int, fit func(i int, l Leaf)) (records uint64, leaves int, err error) {
	if err := cfg.Validate(); err != nil {
		return 0, 0, err
	}
	_, sp := obs.Start(ctx, "partition.stream")
	defer func() {
		sp.SetCount("requests", int64(records))
		sp.SetCount("leaves", int64(leaves))
		sp.End()
	}()

	if !cfg.Layers[0].Kind.Temporal() {
		return fitMaterialized(ctx, rd, cfg, workers, fit)
	}
	st, err := NewStreamer(cfg)
	if err != nil {
		return 0, 0, err
	}

	pool := par.NewPool(ctx, workers, par.Workers(workers)*fitQueueFactor)
	var (
		inflightLeaves atomic.Int64 // dispatched, not yet fitted
		inflightReqs   atomic.Int64 // their request counts
		counted        uint64       // records already flushed to mIngestRecords
	)
	dispatch := func(closed []Leaf) error {
		for _, l := range closed {
			i := leaves
			leaves++
			l := l
			nr := int64(len(l.Reqs))
			inflightLeaves.Add(1)
			inflightReqs.Add(nr)
			if err := pool.Submit(func() {
				fit(i, l)
				inflightLeaves.Add(-1)
				inflightReqs.Add(-nr)
			}); err != nil {
				return err
			}
		}
		return nil
	}
	gauges := func() {
		mOpenLeaves.Set(float64(inflightLeaves.Load()))
		mFrontierBytes.Set(float64(uint64(inflightReqs.Load())*trace.RequestMemBytes + st.OpenBytes()))
	}

	var r trace.Request
	var rerr error
	for {
		if records%cancelCheckEvery == 0 && ctx != nil {
			if rerr = ctx.Err(); rerr != nil {
				break
			}
		}
		nerr := rd.Next(&r)
		if nerr == io.EOF {
			rerr = dispatch(st.Flush())
			break
		}
		if nerr != nil {
			rerr = nerr
			break
		}
		records++
		closed, perr := st.Push(r)
		if perr != nil {
			rerr = perr
			break
		}
		if rerr = dispatch(closed); rerr != nil {
			break
		}
		if records%gaugeEvery == 0 {
			mIngestRecords.Add(records - counted)
			counted = records
			gauges()
		}
	}
	cerr := pool.Close()
	mIngestRecords.Add(records - counted)
	gauges()
	mLeaves.Add(uint64(leaves))
	if rerr == nil {
		rerr = cerr
	}
	return records, leaves, rerr
}

// fitMaterialized is FitStream's fallback for hierarchies that cannot
// stream: read everything, Split, then feed leaves through the same
// bounded pool so fit concurrency and the callback contract match the
// streaming path.
func fitMaterialized(ctx context.Context, rd trace.Reader, cfg Config, workers int, fit func(i int, l Leaf)) (uint64, int, error) {
	mIngestFallback.Inc()
	var t trace.Trace
	var r trace.Request
	for {
		err := rd.Next(&r)
		if err == io.EOF {
			break
		}
		if err != nil {
			return uint64(len(t)), 0, err
		}
		t = append(t, r)
	}
	mIngestRecords.Add(uint64(len(t)))
	if !t.Sorted() {
		return uint64(len(t)), 0, ErrOutOfOrder
	}
	leaves, err := SplitCtx(ctx, t, cfg)
	if err != nil {
		return uint64(len(t)), 0, err
	}
	pool := par.NewPool(ctx, workers, par.Workers(workers)*fitQueueFactor)
	var serr error
	for i, l := range leaves {
		i, l := i, l
		if serr = pool.Submit(func() { fit(i, l) }); serr != nil {
			break
		}
	}
	cerr := pool.Close()
	if serr == nil {
		serr = cerr
	}
	return uint64(len(t)), len(leaves), serr
}

// cancelCheckEvery matches the streaming trace encoders' cadence: the
// read loop notices cancellation within one batch of records.
const cancelCheckEvery = 256

// gaugeEvery is how many records pass between ingest gauge refreshes.
const gaugeEvery = 1024
