package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/trace"
)

func TestDynamicEmpty(t *testing.T) {
	if got := ByDynamic(nil); got != nil {
		t.Errorf("ByDynamic(nil) = %v", got)
	}
}

func TestDynamicMergesOverlapping(t *testing.T) {
	tr := trace.Trace{
		req(0, 100, 64), // [100,164)
		req(1, 150, 64), // overlaps -> one region [100,214)
	}
	leaves := ByDynamic(tr)
	if len(leaves) != 1 {
		t.Fatalf("got %d leaves, want 1", len(leaves))
	}
	if leaves[0].Lo != 100 || leaves[0].Hi != 214 {
		t.Errorf("bounds = [%d,%d), want [100,214)", leaves[0].Lo, leaves[0].Hi)
	}
}

func TestDynamicMergesAdjacent(t *testing.T) {
	tr := trace.Trace{
		req(0, 0, 64),  // [0,64)
		req(1, 64, 64), // touches -> merged
	}
	leaves := ByDynamic(tr)
	if len(leaves) != 1 {
		t.Fatalf("adjacent ranges not merged: %d leaves", len(leaves))
	}
}

func TestDynamicSeparatesDistantRegions(t *testing.T) {
	tr := trace.Trace{
		req(0, 0, 64), req(1, 64, 64), // region A
		req(2, 100000, 64), req(3, 100064, 64), // region B
	}
	leaves := ByDynamic(tr)
	if len(leaves) != 2 {
		t.Fatalf("got %d leaves, want 2", len(leaves))
	}
}

func TestDynamicBoundsAreExactUnion(t *testing.T) {
	// The defining property vs fixed-size blocks: bounds cover exactly
	// the bytes touched, nothing more (§V-B's fidelity argument).
	tr := trace.Trace{
		req(0, 1000, 16), req(1, 1016, 8), req(2, 1024, 64),
	}
	leaves := ByDynamic(tr)
	if len(leaves) != 1 {
		t.Fatalf("got %d leaves", len(leaves))
	}
	if leaves[0].Lo != 1000 || leaves[0].Hi != 1088 {
		t.Errorf("bounds = [%d,%d), want [1000,1088)", leaves[0].Lo, leaves[0].Hi)
	}
}

func TestDynamicReuseStaysTogether(t *testing.T) {
	// Requests spread in time but hitting the same region belong to one
	// partition (the "partition F" case of Fig. 2).
	tr := trace.Trace{
		req(0, 500, 64), req(1000000, 500, 64), req(2000000, 564, 64),
	}
	leaves := ByDynamic(tr)
	if len(leaves) != 1 {
		t.Fatalf("reused region split into %d leaves", len(leaves))
	}
	if len(leaves[0].Reqs) != 3 {
		t.Errorf("partition has %d requests, want 3", len(leaves[0].Reqs))
	}
}

func TestDynamicLonelyCatchAll(t *testing.T) {
	// Two isolated single requests at unrelated addresses merge into one
	// catch-all partition (the "partition D" rule).
	tr := trace.Trace{
		req(0, 0, 64), req(1, 64, 64), // a real region
		req(2, 50000, 4),  // lonely
		req(3, 987654, 4), // lonely
	}
	leaves := ByDynamic(tr)
	if len(leaves) != 2 {
		t.Fatalf("got %d leaves, want 2 (region + merged lonelies)", len(leaves))
	}
	var lonely *Leaf
	for i := range leaves {
		if leaves[i].Lo >= 50000 {
			lonely = &leaves[i]
		}
	}
	if lonely == nil || len(lonely.Reqs) != 2 {
		t.Fatalf("lonely requests not merged: %+v", leaves)
	}
}

func TestDynamicLonelyStrideRun(t *testing.T) {
	// Lonely requests equally spaced in memory group into a single
	// partition.
	tr := trace.Trace{
		req(0, 0, 4), req(1, 1000, 4), req(2, 2000, 4), req(3, 3000, 4),
	}
	leaves := ByDynamic(tr)
	if len(leaves) != 1 {
		t.Fatalf("equally-spaced lonelies gave %d leaves, want 1", len(leaves))
	}
	if len(leaves[0].Reqs) != 4 {
		t.Errorf("run partition has %d requests", len(leaves[0].Reqs))
	}
}

func TestDynamicSingleRequest(t *testing.T) {
	leaves := ByDynamic(trace.Trace{req(0, 42, 8)})
	if len(leaves) != 1 || len(leaves[0].Reqs) != 1 {
		t.Fatalf("single request trace: %+v", leaves)
	}
}

func TestDynamicLonelyPreservesTimeOrder(t *testing.T) {
	// The catch-all partition re-sorts by time even though grouping
	// happens in address order.
	tr := trace.Trace{
		req(5, 900000, 4), // later in time, lower in no particular order
		req(1, 100, 4),
		req(3, 50000, 4),
	}
	leaves := ByDynamic(tr)
	if len(leaves) != 1 {
		t.Fatalf("got %d leaves", len(leaves))
	}
	reqs := leaves[0].Reqs
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Time < reqs[i-1].Time {
			t.Fatal("lonely partition not in time order")
		}
	}
}

func TestDynamicPartitionInvariants(t *testing.T) {
	// Property: for any request set, dynamic partitioning (1) preserves
	// the total request count, (2) keeps every request inside its leaf's
	// bounds, and (3) produces leaves whose request extents never
	// overlap another leaf's bounds... except the catch-all partition,
	// whose bounds may span others, so we check (1) and (2) only plus
	// per-leaf containment.
	check := func(seed uint64, n uint8) bool {
		rng := stats.NewRNG(seed)
		var tr trace.Trace
		for i := 0; i < int(n); i++ {
			tr = append(tr, trace.Request{
				Time: uint64(i),
				Addr: rng.Uint64n(1 << 16),
				Size: uint32(1 + rng.Intn(128)),
				Op:   trace.Read,
			})
		}
		leaves := ByDynamic(tr)
		total := 0
		for _, l := range leaves {
			total += len(l.Reqs)
			for _, r := range l.Reqs {
				if r.Addr < l.Lo || r.End() > l.Hi {
					return false
				}
			}
		}
		return total == len(tr)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSplitPreservesRequestsProperty(t *testing.T) {
	// Property: every hierarchical configuration partitions the trace
	// (each request lands in exactly one leaf).
	configs := []Config{
		TwoLevelTS(100),
		TwoLevelRequestCount(7, 0),
		TwoLevelRequestCount(7, 256),
		{Layers: []Layer{{Kind: SpatialDynamic}}},
		{Layers: []Layer{{Kind: SpatialFixed, Param: 128}}},
	}
	check := func(seed uint64, n uint8) bool {
		rng := stats.NewRNG(seed)
		var tr trace.Trace
		tm := uint64(0)
		for i := 0; i < int(n); i++ {
			tm += rng.Uint64n(50)
			tr = append(tr, trace.Request{
				Time: tm,
				Addr: rng.Uint64n(1 << 14),
				Size: uint32(1 + rng.Intn(64)),
				Op:   trace.Read,
			})
		}
		for _, cfg := range configs {
			leaves, err := Split(tr, cfg)
			if err != nil {
				return false
			}
			total := 0
			for _, l := range leaves {
				total += len(l.Reqs)
			}
			if total != len(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
