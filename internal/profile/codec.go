package profile

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/markov"
	"repro/internal/par"
)

// The profile format uses varint-encoded records wrapped in gzip. The
// paper serialises profiles with protobuf + gzip; varints give the same
// compactness properties with only the standard library, keeping the
// Fig. 17 size comparison faithful.

const (
	profileMagic   = 0x4d50524f // "MPRO"
	profileVersion = 1

	modelConstant = 0
	modelMarkov   = 1
)

// Write serialises the profile (uncompressed varint records). Records
// stream through a bufio.Writer rather than accumulating in one large
// buffer, so WriteGzip can overlap encoding with compression.
func Write(w io.Writer, p *Profile) error {
	bw := bufio.NewWriter(w)
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		bw.Write(tmp[:n])
	}
	putVarint := func(v int64) {
		n := binary.PutVarint(tmp[:], v)
		bw.Write(tmp[:n])
	}
	putString := func(s string) {
		putUvarint(uint64(len(s)))
		bw.WriteString(s)
	}
	putModel := func(m *markov.Model) {
		if m.Constant {
			bw.WriteByte(modelConstant)
			putVarint(m.Value)
			return
		}
		bw.WriteByte(modelMarkov)
		putVarint(m.Initial)
		putUvarint(uint64(len(m.From)))
		for r := range m.From {
			putVarint(m.From[r])
			lo, hi := m.RowOff[r], m.RowOff[r+1]
			putUvarint(uint64(hi - lo))
			for j := lo; j < hi; j++ {
				putVarint(m.To[j])
				putUvarint(uint64(m.N[j]))
			}
		}
	}

	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], profileMagic)
	binary.LittleEndian.PutUint32(hdr[4:], profileVersion)
	bw.Write(hdr[:])
	putString(p.Name)
	putString(p.Config)
	putUvarint(uint64(len(p.Leaves)))
	for i := range p.Leaves {
		l := &p.Leaves[i]
		putUvarint(l.StartTime)
		putUvarint(l.StartAddr)
		putUvarint(l.Lo)
		putUvarint(l.Hi)
		putUvarint(uint64(l.Count))
		putModel(&l.DeltaTime)
		putModel(&l.Stride)
		putModel(&l.Op)
		putModel(&l.Size)
	}
	return bw.Flush()
}

// capHint bounds an untrusted length prefix before it is used as an
// allocation hint: a corrupt or hostile stream may claim any element
// count, so preallocate at most a modest capacity and let append grow
// as elements actually decode.
func capHint(n uint64) uint64 {
	if n > 1<<16 {
		return 1 << 16
	}
	return n
}

// Read deserialises a profile written by Write.
func Read(r io.Reader) (*Profile, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("profile: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != profileMagic {
		return nil, errors.New("profile: bad magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != profileVersion {
		return nil, fmt.Errorf("profile: unsupported version %d", v)
	}
	getUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }
	getVarint := func() (int64, error) { return binary.ReadVarint(br) }
	getString := func() (string, error) {
		n, err := getUvarint()
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", errors.New("profile: string too long")
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	getModel := func() (markov.Model, error) {
		kind, err := br.ReadByte()
		if err != nil {
			return markov.Model{}, err
		}
		switch kind {
		case modelConstant:
			v, err := getVarint()
			if err != nil {
				return markov.Model{}, err
			}
			return markov.Model{Constant: true, Value: v, Initial: v}, nil
		case modelMarkov:
			initial, err := getVarint()
			if err != nil {
				return markov.Model{}, err
			}
			nRows, err := getUvarint()
			if err != nil {
				return markov.Model{}, err
			}
			m := markov.Model{Initial: initial}
			m.From = make([]int64, 0, capHint(nRows))
			m.RowOff = make([]uint32, 1, capHint(nRows)+1)
			for i := uint64(0); i < nRows; i++ {
				from, err := getVarint()
				if err != nil {
					return markov.Model{}, err
				}
				nEdges, err := getUvarint()
				if err != nil {
					return markov.Model{}, err
				}
				for j := uint64(0); j < nEdges; j++ {
					to, err := getVarint()
					if err != nil {
						return markov.Model{}, err
					}
					n, err := getUvarint()
					if err != nil {
						return markov.Model{}, err
					}
					m.To = append(m.To, to)
					m.N = append(m.N, uint32(n))
				}
				m.From = append(m.From, from)
				m.RowOff = append(m.RowOff, uint32(len(m.To)))
			}
			m.Finish()
			return m, nil
		default:
			return markov.Model{}, fmt.Errorf("profile: bad model kind %d", kind)
		}
	}

	p := &Profile{}
	var err error
	if p.Name, err = getString(); err != nil {
		return nil, err
	}
	if p.Config, err = getString(); err != nil {
		return nil, err
	}
	nLeaves, err := getUvarint()
	if err != nil {
		return nil, err
	}
	p.Leaves = make([]Leaf, 0, capHint(nLeaves))
	for i := uint64(0); i < nLeaves; i++ {
		var l Leaf
		if l.StartTime, err = getUvarint(); err != nil {
			return nil, err
		}
		if l.StartAddr, err = getUvarint(); err != nil {
			return nil, err
		}
		if l.Lo, err = getUvarint(); err != nil {
			return nil, err
		}
		if l.Hi, err = getUvarint(); err != nil {
			return nil, err
		}
		c, err := getUvarint()
		if err != nil {
			return nil, err
		}
		l.Count = uint32(c)
		if l.DeltaTime, err = getModel(); err != nil {
			return nil, err
		}
		if l.Stride, err = getModel(); err != nil {
			return nil, err
		}
		if l.Op, err = getModel(); err != nil {
			return nil, err
		}
		if l.Size, err = getModel(); err != nil {
			return nil, err
		}
		p.Leaves = append(p.Leaves, l)
	}
	return p, nil
}

// WriteGzip writes the profile through gzip; this is the on-disk format.
// Encoding runs on a producer goroutine feeding a buffered pipe while the
// caller compresses, mirroring trace.WriteGzip; gzip output depends only
// on the byte stream, so the bytes match an unpipelined write.
func WriteGzip(w io.Writer, p *Profile) error {
	zw := gzip.NewWriter(w)
	pr, pw := par.NewPipe(0, 0)
	go func() {
		pw.CloseWithError(Write(pw, p))
	}()
	if _, err := io.Copy(zw, pr); err != nil {
		pr.Close()
		zw.Close()
		return err
	}
	return zw.Close()
}

// ReadGzip reads a profile written by WriteGzip. Decompression overlaps
// varint parsing via a buffered pipe.
func ReadGzip(r io.Reader) (*Profile, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, err
	}
	pr, pw := par.NewPipe(0, 0)
	go func() {
		_, cerr := io.Copy(pw, zr)
		if cerr == nil {
			cerr = zr.Close()
		} else {
			zr.Close()
		}
		pw.CloseWithError(cerr)
	}()
	p, err := Read(pr)
	pr.Close()
	return p, err
}

// EncodedSize returns the gzip-compressed size of the profile in bytes,
// used by the Fig. 17 metadata-overhead experiment.
func EncodedSize(p *Profile) (int, error) {
	var buf bytes.Buffer
	if err := WriteGzip(&buf, p); err != nil {
		return 0, err
	}
	return buf.Len(), nil
}
