//go:build unix

package profile

import (
	"fmt"
	"os"
	"syscall"
)

// OpenFlatFile opens a flat profile file by memory-mapping it
// read-only: open cost is the header parse and structural validation,
// not the file size, and the page cache backs the tables directly. The
// returned Flat must be released with Close (which unmaps). Unlinking
// the file while open is safe on unix — the mapping keeps the pages
// alive — which is what lets the serve disk tier delete cold files
// without coordinating with in-flight streams.
func OpenFlatFile(path string, opts ...FlatOption) (*Flat, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	st, err := fd.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size <= 0 || size > int64(int(^uint(0)>>1)) {
		return nil, flatErr("unmappable file size %d", size)
	}
	data, err := syscall.Mmap(int(fd.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("profile: mmap %s: %w", path, err)
	}
	f, err := OpenFlat(data, opts...)
	if err != nil {
		syscall.Munmap(data)
		return nil, err
	}
	f.closer = func() error { return syscall.Munmap(data) }
	return f, nil
}
