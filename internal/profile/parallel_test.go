package profile

import (
	"bytes"
	"testing"

	"repro/internal/partition"
)

// TestFitLeafEmpty is the regression test for the empty-leaf panic:
// fitLeaf used to allocate with capacity n-1 and index Reqs[0], both of
// which blow up when a partition carries no requests.
func TestFitLeafEmpty(t *testing.T) {
	l := fitLeaf(partition.Leaf{Lo: 4096, Hi: 8192})
	if l.Count != 0 {
		t.Fatalf("Count = %d, want 0", l.Count)
	}
	if l.Lo != 4096 || l.Hi != 8192 {
		t.Fatalf("bounds = [%d,%d), want [4096,8192)", l.Lo, l.Hi)
	}
	for name, m := range map[string]bool{
		"DeltaTime": l.DeltaTime.Constant,
		"Stride":    l.Stride.Constant,
		"Op":        l.Op.Constant,
		"Size":      l.Size.Constant,
	} {
		if !m {
			t.Errorf("%s model of empty leaf is not an empty constant", name)
		}
	}
}

// TestBuildParallelDeterminism asserts the tentpole guarantee: the same
// trace and config through Build at different worker counts must encode
// to byte-identical profiles.
func TestBuildParallelDeterminism(t *testing.T) {
	tr := sampleTrace()
	cfg := partition.TwoLevelTS(1000)

	encode := func(workers int) []byte {
		p, err := Build("sample", tr, cfg, Workers(workers))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, p); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	serial := encode(1)
	for _, workers := range []int{2, 8, 16} {
		if got := encode(workers); !bytes.Equal(got, serial) {
			t.Fatalf("workers=%d: encoded profile differs from serial build", workers)
		}
	}
}
