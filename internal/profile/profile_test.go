package profile

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/trace"
)

func req(t, a uint64, s uint32, op trace.Op) trace.Request {
	return trace.Request{Time: t, Addr: a, Size: s, Op: op}
}

func sampleTrace() trace.Trace {
	var tr trace.Trace
	rng := stats.NewRNG(5)
	tm := uint64(0)
	for i := 0; i < 500; i++ {
		tm += rng.Uint64n(100)
		op := trace.Read
		if rng.Bool(0.3) {
			op = trace.Write
		}
		tr = append(tr, req(tm, uint64((i%7)*4096)+rng.Uint64n(1024), 64, op))
	}
	return tr
}

func TestBuildCountsAndLeaves(t *testing.T) {
	tr := sampleTrace()
	p, err := Build("sample", tr, partition.TwoLevelTS(1000))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "sample" {
		t.Errorf("Name = %q", p.Name)
	}
	if p.Requests() != len(tr) {
		t.Errorf("Requests() = %d, want %d", p.Requests(), len(tr))
	}
	if len(p.Leaves) == 0 {
		t.Fatal("no leaves")
	}
	for i, l := range p.Leaves {
		if l.Count == 0 {
			t.Errorf("leaf %d has zero count", i)
		}
		if l.Hi <= l.Lo {
			t.Errorf("leaf %d has empty bounds [%d,%d)", i, l.Lo, l.Hi)
		}
		if l.StartAddr < l.Lo || l.StartAddr >= l.Hi {
			t.Errorf("leaf %d start address outside bounds", i)
		}
	}
}

func TestBuildSingleRequestLeaf(t *testing.T) {
	tr := trace.Trace{req(10, 100, 64, trace.Write)}
	p, err := Build("one", tr, partition.TwoLevelTS(1000))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Leaves) != 1 || p.Leaves[0].Count != 1 {
		t.Fatalf("unexpected profile: %+v", p.Leaves)
	}
	l := p.Leaves[0]
	if !l.Op.Constant || l.Op.Value != int64(trace.Write) {
		t.Errorf("op model = %+v, want constant write", l.Op)
	}
	if !l.Size.Constant || l.Size.Value != 64 {
		t.Errorf("size model = %+v", l.Size)
	}
}

func TestConstantFeaturesDetected(t *testing.T) {
	// A pure linear read stream: stride, op and size are all constants.
	var tr trace.Trace
	for i := 0; i < 100; i++ {
		tr = append(tr, req(uint64(i*10), uint64(i*64), 64, trace.Read))
	}
	p, err := Build("linear", tr, partition.TwoLevelTS(1<<40))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Leaves) != 1 {
		t.Fatalf("got %d leaves", len(p.Leaves))
	}
	l := p.Leaves[0]
	if !l.Stride.Constant || l.Stride.Value != 64 {
		t.Errorf("stride model = %v", l.Stride.String())
	}
	if !l.DeltaTime.Constant || l.DeltaTime.Value != 10 {
		t.Errorf("dt model = %v", l.DeltaTime.String())
	}
	s := p.Stats()
	if s.Chains != 0 || s.Constants != 4 {
		t.Errorf("Stats = %+v, want all constants", s)
	}
}

func TestStatsCountsChains(t *testing.T) {
	tr := sampleTrace()
	p, _ := Build("sample", tr, partition.TwoLevelTS(1000))
	s := p.Stats()
	if s.Leaves != len(p.Leaves) {
		t.Errorf("Stats.Leaves = %d", s.Leaves)
	}
	if s.Constants+s.Chains != 4*s.Leaves {
		t.Errorf("constants+chains = %d, want %d", s.Constants+s.Chains, 4*s.Leaves)
	}
	if p.String() == "" {
		t.Error("empty String")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	p, err := Build("roundtrip", sampleTrace(), partition.TwoLevelTS(1000))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Error("round trip mismatch")
	}
}

func TestGzipCodecRoundTrip(t *testing.T) {
	p, err := Build("gz", sampleTrace(), partition.TwoLevelTS(1000))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGzip(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGzip(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Error("gzip round trip mismatch")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("garbagegarbage"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	p, _ := Build("trunc", sampleTrace(), partition.TwoLevelTS(1000))
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := Read(bytes.NewReader(b[:len(b)/2])); err == nil {
		t.Error("truncated profile accepted")
	}
}

func TestEncodedSizeNonTrivial(t *testing.T) {
	p, _ := Build("size", sampleTrace(), partition.TwoLevelTS(1000))
	n, err := EncodedSize(p)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Errorf("EncodedSize = %d", n)
	}
}

func TestProfileSmallerThanTraceForRegularWorkload(t *testing.T) {
	// The paper's Fig. 17 claim in miniature: a regular workload's
	// profile is much smaller than its compressed trace.
	var tr trace.Trace
	for i := 0; i < 50000; i++ {
		tr = append(tr, req(uint64(i*7), uint64(i%1000)*64, 64, trace.Read))
	}
	p, err := Build("regular", tr, partition.TwoLevelRequestCount(10000, 0))
	if err != nil {
		t.Fatal(err)
	}
	pSize, err := EncodedSize(p)
	if err != nil {
		t.Fatal(err)
	}
	var tb bytes.Buffer
	if err := trace.WriteGzip(&tb, tr); err != nil {
		t.Fatal(err)
	}
	if pSize >= tb.Len() {
		t.Errorf("profile (%d bytes) not smaller than trace (%d bytes)", pSize, tb.Len())
	}
}
