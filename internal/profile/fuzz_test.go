package profile

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/trace"
)

// FuzzRead feeds arbitrary bytes to the profile decoder: it must accept
// or reject them without panicking or letting a hostile length prefix
// drive an allocation, and any profile it accepts must re-encode and
// re-decode to the same value.
func FuzzRead(f *testing.F) {
	tr := trace.Trace{
		{Time: 1, Addr: 0x1000, Size: 64, Op: trace.Read},
		{Time: 5, Addr: 0x1040, Size: 64, Op: trace.Write},
		{Time: 9, Addr: 0x1080, Size: 128, Op: trace.Read},
		{Time: 20, Addr: 0x1000, Size: 64, Op: trace.Read},
	}
	p, err := Build("seed", tr, partition.TwoLevelTS(100))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(buf.Bytes()[:9]) // header + truncated body
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, p); err != nil {
			t.Fatalf("re-encoding accepted profile: %v", err)
		}
		p2, err := Read(&out)
		if err != nil {
			t.Fatalf("re-decoding re-encoded profile: %v", err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatal("round trip changed profile")
		}
	})
}

// FuzzRoundTrip builds a profile from a fuzz-shaped (but well-formed)
// trace and asserts the codec reproduces it exactly, byte for byte.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint16(50), uint64(100_000))
	f.Add(uint64(7), uint16(300), uint64(1_000))
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, interval uint64) {
		if interval == 0 {
			interval = 1
		}
		rng := stats.NewRNG(seed)
		tr := make(trace.Trace, 0, n)
		now, addr := uint64(0), uint64(1<<16)
		for i := 0; i < int(n); i++ {
			now += uint64(rng.Range(0, 500))
			addr += uint64(rng.Range(-8, 16) * 32)
			op := trace.Read
			if rng.Bool(0.4) {
				op = trace.Write
			}
			tr = append(tr, trace.Request{
				Time: now, Addr: addr,
				Size: uint32(8 << rng.Intn(5)), Op: op,
			})
		}
		p, err := Build("fuzz", tr, partition.TwoLevelTS(interval))
		if err != nil {
			t.Fatal(err)
		}
		var a bytes.Buffer
		if err := Write(&a, p); err != nil {
			t.Fatal(err)
		}
		p2, err := Read(bytes.NewReader(a.Bytes()))
		if err != nil {
			t.Fatalf("decoding valid profile: %v", err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatal("round trip changed profile")
		}
		var b bytes.Buffer
		if err := Write(&b, p2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatal("re-encoding is not byte-identical")
		}
	})
}

// FuzzFlatOpen feeds arbitrary bytes to the flat-profile opener: header,
// offset or checksum corruption must produce an error, never a panic,
// and never an allocation driven by an unvalidated length field (the
// flat decoder only ever slices the input buffer). Any buffer the
// verifying open accepts must also pass the structural-only open, view
// every leaf, convert to a heap profile, and re-encode.
func FuzzFlatOpen(f *testing.F) {
	tr := trace.Trace{
		{Time: 1, Addr: 0x1000, Size: 64, Op: trace.Read},
		{Time: 5, Addr: 0x1040, Size: 64, Op: trace.Write},
		{Time: 9, Addr: 0x1080, Size: 128, Op: trace.Read},
		{Time: 20, Addr: 0x1000, Size: 64, Op: trace.Read},
	}
	p, err := Build("seed", tr, partition.TwoLevelTS(100))
	if err != nil {
		f.Fatal(err)
	}
	buf, err := MarshalFlat(p)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(buf)
	f.Add([]byte{})
	f.Add(buf[:flatDataStart])
	mut := append([]byte(nil), buf...)
	mut[len(mut)-2] ^= 0xff
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		fp, err := OpenFlat(data)
		if err != nil {
			// Structural-only opens may accept bit rot but must never
			// panic either.
			if fp2, err2 := OpenFlat(data, FlatNoVerify()); err2 == nil {
				exerciseFlat(fp2)
			}
			return
		}
		exerciseFlat(fp)
		hp := fp.Profile()
		var out bytes.Buffer
		if err := Write(&out, hp); err != nil {
			t.Fatalf("re-encoding accepted flat profile: %v", err)
		}
	})
}

// exerciseFlat touches every leaf view of an accepted buffer; with the
// race/bounds checkers this proves structural validation made all spans
// in-bounds.
func exerciseFlat(fp *Flat) {
	var scratch Leaf
	for i := 0; i < fp.NumLeaves(); i++ {
		l := fp.LeafView(i, &scratch)
		_ = l.DeltaTime.States()
		_ = l.Size.Transitions()
	}
}
