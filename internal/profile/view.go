package profile

// View is read access to a profile for synthesis, implemented by both
// the heap representation (*Profile) and the zero-copy flat one
// (*Flat). Synthesis binds generators to whichever backing store the
// profile lives in — decoded heap objects or an mmap-ed flat buffer —
// through this one interface, producing byte-identical streams.
type View interface {
	// NumLeaves returns the number of leaves.
	NumLeaves() int
	// Requests returns the total number of requests the profile
	// synthesises (the sum of the leaf counts).
	Requests() int
	// LeafCount returns leaf i's request count without materialising
	// the leaf.
	LeafCount(i int) uint32
	// LeafView returns leaf i. The heap implementation returns a
	// pointer into its own storage and ignores scratch; the flat one
	// fills scratch with slice views into the shared buffer and returns
	// it. The returned leaf's model tables must be treated as
	// immutable, and the leaf struct itself is only valid until scratch
	// is reused.
	LeafView(i int, scratch *Leaf) *Leaf
}

// NumLeaves implements View.
func (p *Profile) NumLeaves() int { return len(p.Leaves) }

// LeafCount implements View.
func (p *Profile) LeafCount(i int) uint32 { return p.Leaves[i].Count }

// LeafView implements View, returning the leaf in place.
func (p *Profile) LeafView(i int, _ *Leaf) *Leaf { return &p.Leaves[i] }

// LeafArena returns the total markov.Arena elements the four feature
// generators of l consume; synthesis sums it across leaves to size one
// arena for a whole stream.
func LeafArena(l *Leaf) (n32, n64 int) {
	a, b := l.DeltaTime.ArenaSize()
	c, d := l.Stride.ArenaSize()
	n32, n64 = a+c, b+d
	a, b = l.Op.ArenaSize()
	c, d = l.Size.ArenaSize()
	return n32 + a + c, n64 + b + d
}
