package profile

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/partition"
	"repro/internal/trace"
)

// encodeProfile canonically encodes p, the same bytes content
// addressing hashes.
func encodeProfile(t *testing.T, p *Profile) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBuildStreamMatchesBuild is the acceptance identity: for every
// hierarchy shape (streamable and fallback) and worker count, the
// streaming build must encode byte-identically to the materialised
// build — the property that makes the two paths share one content
// address.
func TestBuildStreamMatchesBuild(t *testing.T) {
	tr := sampleTrace()
	cfgs := map[string]partition.Config{
		"2L-TS":          partition.TwoLevelTS(1000),
		"reqcount-dyn":   partition.TwoLevelRequestCount(64, 0),
		"reqcount-fixed": partition.TwoLevelRequestCount(64, 4096),
		"cycles-only":    {Layers: []partition.Layer{{Kind: partition.TemporalCycleCount, Param: 700}}},
		"spatial-first": {Layers: []partition.Layer{
			{Kind: partition.SpatialFixed, Param: 1 << 14},
			{Kind: partition.TemporalRequestCount, Param: 32},
		}},
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			built, err := Build("sample", tr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := encodeProfile(t, built)
			for _, workers := range []int{1, 4} {
				streamed, err := BuildStream("sample", trace.NewSliceReader(tr), cfg, Workers(workers))
				if err != nil {
					t.Fatal(err)
				}
				if got := encodeProfile(t, streamed); !bytes.Equal(got, want) {
					t.Fatalf("workers=%d: streaming build encodes differently from Build", workers)
				}
			}
		})
	}
}

// TestBuildStreamEmpty: an empty stream yields an empty (but valid)
// profile, matching Build on an empty trace.
func TestBuildStreamEmpty(t *testing.T) {
	cfg := partition.TwoLevelTS(1000)
	built, err := Build("empty", nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := BuildStream("empty", trace.NewSliceReader(nil), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeProfile(t, built), encodeProfile(t, streamed)) {
		t.Fatal("empty-trace builds encode differently")
	}
}

// TestBuildStreamCancel: a canceled context aborts the streaming build
// with a context error, mirroring Build's fit cancellation.
func TestBuildStreamCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := BuildStream("sample", trace.NewSliceReader(sampleTrace()), partition.TwoLevelTS(1000), Context(ctx), Workers(4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestBuildStreamOutOfOrder: an unsorted stream is rejected with
// partition.ErrOutOfOrder in the error chain.
func TestBuildStreamOutOfOrder(t *testing.T) {
	tr := trace.Trace{
		req(10, 0x1000, 64, trace.Read),
		req(5, 0x1040, 64, trace.Write),
	}
	_, err := BuildStream("bad", trace.NewSliceReader(tr), partition.TwoLevelTS(1000))
	if !errors.Is(err, partition.ErrOutOfOrder) {
		t.Fatalf("err = %v, want ErrOutOfOrder", err)
	}
}
