// Package profile defines the Mocktails statistical profile: one McC model
// per feature per leaf of the partitioning hierarchy, plus the per-leaf
// bookkeeping (start time, start address, address range, request count)
// that §III-B saves to minimise synthesis error. A profile is the artefact
// industry would distribute in place of a proprietary trace.
package profile

import (
	"context"
	"fmt"

	"repro/internal/markov"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/trace"
)

// Fitting metrics: leaves fitted and the Markov-vs-Constant mix of the
// resulting feature models (4 per leaf).
var (
	mLeavesFitted   = obs.NewCounter("profile.leaves_fitted")
	mModelsMarkov   = obs.NewCounter("profile.models_markov")
	mModelsConstant = obs.NewCounter("profile.models_constant")
)

// Leaf models one partition. The four features are modelled independently
// (the paper's deliberate obfuscation/simplicity trade-off).
type Leaf struct {
	// StartTime is the cycle at which this partition begins injecting.
	StartTime uint64
	// StartAddr is the address of the partition's first request.
	StartAddr uint64
	// Lo, Hi bound the addresses synthesis may generate, [Lo, Hi).
	Lo, Hi uint64
	// Count is the number of requests this leaf must synthesise.
	Count uint32

	// DeltaTime models the cycle gaps between consecutive requests.
	DeltaTime markov.Model
	// Stride models the address deltas between consecutive requests.
	Stride markov.Model
	// Op models the read/write sequence (0 = read, 1 = write).
	Op markov.Model
	// Size models the request-size sequence in bytes.
	Size markov.Model
}

// Profile is a complete Mocktails statistical profile.
type Profile struct {
	// Name labels the workload the profile was built from.
	Name string
	// Config describes the hierarchy used, for provenance.
	Config string
	// Leaves holds one model per final partition.
	Leaves []Leaf
}

// Option configures Build.
type Option func(*buildOptions)

type buildOptions struct {
	workers int
	ctx     context.Context
}

// Workers sets the number of goroutines Build fits leaves with. Values
// <= 0 (and omitting the option) select par.Default(): the
// MOCKTAILS_PARALLELISM environment variable when set, else GOMAXPROCS.
// The result is identical for every worker count.
func Workers(n int) Option {
	return func(o *buildOptions) { o.workers = n }
}

// Context attaches a context to Build for observability: the build's
// tracing spans (partition.split, profile.fit) nest below the span
// carried by ctx (see internal/obs). The fitted profile is identical
// with or without it.
func Context(ctx context.Context) Option {
	return func(o *buildOptions) { o.ctx = ctx }
}

// Build constructs a profile from a trace using the given hierarchical
// configuration. The trace must be in injection (time) order.
//
// Leaves are fitted in parallel (see Workers) and committed by index, so
// Leaves ordering — and therefore the encoded profile — is byte-identical
// to a serial build.
func Build(name string, t trace.Trace, cfg partition.Config, opts ...Option) (*Profile, error) {
	var o buildOptions
	for _, opt := range opts {
		opt(&o)
	}
	ctx, bsp := obs.Start(o.ctx, "profile.build")
	leaves, err := partition.SplitCtx(ctx, t, cfg)
	if err != nil {
		return nil, err
	}
	p := &Profile{Name: name, Config: cfg.String()}
	_, fsp := obs.Start(ctx, "profile.fit")
	// Fitting honours the caller's context so a canceled request (a
	// server-side fit whose client disconnected, a timed-out upload)
	// stops dispatching leaves instead of fitting the whole hierarchy
	// for a result nobody will read.
	p.Leaves = make([]Leaf, len(leaves))
	if err := par.ForEachCtx(ctx, len(leaves), o.workers, func(i int) {
		p.Leaves[i] = fitLeaf(leaves[i])
	}); err != nil {
		fsp.End()
		return nil, fmt.Errorf("profile: fit canceled: %w", err)
	}
	fsp.SetCount("leaves", int64(len(leaves)))
	fsp.End()
	s := p.Stats()
	mLeavesFitted.Add(uint64(s.Leaves))
	mModelsMarkov.Add(uint64(s.Chains))
	mModelsConstant.Add(uint64(s.Constants))
	bsp.SetCount("requests", int64(len(t)))
	bsp.SetCount("leaves", int64(len(leaves)))
	bsp.End()
	return p, nil
}

// fitLeaf fits the four McC models of one partition. An empty partition
// yields a zero-count Leaf whose models are empty constants; synthesis
// emits nothing for it.
func fitLeaf(l partition.Leaf) Leaf {
	n := len(l.Reqs)
	if n == 0 {
		return Leaf{
			Lo:        l.Lo,
			Hi:        l.Hi,
			DeltaTime: markov.Fit(nil),
			Stride:    markov.Fit(nil),
			Op:        markov.Fit(nil),
			Size:      markov.Fit(nil),
		}
	}
	deltas := make([]int64, 0, n-1)
	strides := make([]int64, 0, n-1)
	ops := make([]int64, 0, n)
	sizes := make([]int64, 0, n)
	for i, r := range l.Reqs {
		ops = append(ops, int64(r.Op))
		sizes = append(sizes, int64(r.Size))
		if i > 0 {
			deltas = append(deltas, int64(r.Time-l.Reqs[i-1].Time))
			strides = append(strides, int64(r.Addr)-int64(l.Reqs[i-1].Addr))
		}
	}
	return Leaf{
		StartTime: l.Reqs[0].Time,
		StartAddr: l.Reqs[0].Addr,
		Lo:        l.Lo,
		Hi:        l.Hi,
		Count:     uint32(n),
		DeltaTime: markov.Fit(deltas),
		Stride:    markov.Fit(strides),
		Op:        markov.Fit(ops),
		Size:      markov.Fit(sizes),
	}
}

// Requests returns the total number of requests the profile synthesises.
func (p *Profile) Requests() int {
	n := 0
	for _, l := range p.Leaves {
		n += int(l.Count)
	}
	return n
}

// Stats summarises model composition for reporting: how many feature
// models are constants versus Markov chains, and total Markov states.
type Stats struct {
	Leaves    int
	Constants int
	Chains    int
	States    int
}

// Stats computes profile composition statistics.
func (p *Profile) Stats() Stats {
	s := Stats{Leaves: len(p.Leaves)}
	count := func(m *markov.Model) {
		if m.Constant {
			s.Constants++
		} else {
			s.Chains++
			s.States += m.States()
		}
	}
	for i := range p.Leaves {
		l := &p.Leaves[i]
		count(&l.DeltaTime)
		count(&l.Stride)
		count(&l.Op)
		count(&l.Size)
	}
	return s
}

// String summarises the profile.
func (p *Profile) String() string {
	s := p.Stats()
	return fmt.Sprintf("Profile(%s: %d leaves, %d requests, %d constants, %d chains)",
		p.Name, s.Leaves, p.Requests(), s.Constants, s.Chains)
}
