package profile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unsafe"

	"repro/internal/markov"
)

// The flat profile format: one contiguous buffer of packed sections
// addressed by offsets, designed to be mmap-ed and consumed by slicing
// rather than decoding. Where the gzip codec (codec.go) optimises for
// transport size, the flat layout optimises for open time — a fixed
// header plus structural bounds checks — and for generator setup, which
// binds directly to the on-disk transition tables with no per-row
// allocation. See docs/FORMAT.md for the byte-level layout.
//
// All integers are little-endian; every section offset is a multiple of
// 8, so on little-endian hosts the numeric sections alias the buffer
// directly (big-endian or misaligned buffers fall back to an
// element-wise decode). Sections carry CRC-32C checksums, verified on
// open unless the caller opts out for buffers it has already vetted.

const (
	flatMagic   = 0x5250464d // "MFPR"
	flatVersion = 1

	flatHeaderBytes = 56
	flatSections    = 10
	flatSecEntry    = 24 // {off u64, size u64, crc32c u32, pad u32}
	flatDataStart   = flatHeaderBytes + flatSections*flatSecEntry

	leafRecBytes  = 40
	modelRecBytes = 48

	flatModelConstant = 0
	flatModelMarkov   = 1

	// Section indexes.
	secStrings = 0 // name then config, raw bytes
	secLeafTab = 1 // leafRecBytes per leaf
	secModels  = 2 // modelRecBytes per model, 4 per leaf (dt, stride, op, size)
	secRowFrom = 3 // int64 source states, row-major across all models
	secRowOff  = 4 // uint32 edge offsets, model-relative, nRows+1 per model
	secRowSum  = 5 // uint64 per-row training totals
	secEdgeTo  = 6 // int64 transition targets
	secEdgeN   = 7 // uint32 transition counts
	secValVal  = 8 // int64 sorted value multiset
	secValN    = 9 // uint32 value multiplicities
)

var flatCRC = crc32.MakeTable(crc32.Castagnoli)

// ErrFlatFormat reports a structurally invalid or corrupt flat profile.
var ErrFlatFormat = errors.New("profile: invalid flat profile")

func flatErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrFlatFormat, fmt.Sprintf(format, args...))
}

// FlatOption configures OpenFlat / OpenFlatFile.
type FlatOption func(*flatOpts)

type flatOpts struct {
	noVerify bool
}

// FlatNoVerify skips the per-section checksum pass on open, leaving
// only the header checksum and the structural bounds validation — the
// O(header + rows) fast path for buffers the caller already trusts
// (files the serve store wrote itself, buffers just produced by
// MarshalFlat). Structural validation alone guarantees synthesis
// cannot index out of bounds; checksums additionally catch bit rot.
func FlatNoVerify() FlatOption { return func(o *flatOpts) { o.noVerify = true } }

// Flat is a profile opened from a flat buffer. Its sections are slice
// views over the underlying buffer (zero-copy on little-endian hosts);
// it implements View, so it can drive synthesis directly, and converts
// to a heap *Profile with Profile. A Flat over an mmap-ed file must be
// released with Close; the views must not be used after.
type Flat struct {
	data []byte

	name      string
	config    string
	requests  uint64
	canonical uint64
	nLeaves   int

	leafTab  []byte
	modelTab []byte
	rowFrom  []int64
	rowOff   []uint32
	rowSum   []uint64
	edgeTo   []int64
	edgeN    []uint32
	valVal   []int64
	valN     []uint32

	closer func() error
}

// hostLittle reports whether the host is little-endian, deciding
// whether numeric sections can alias the buffer directly.
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func aligned8(b []byte) bool {
	return len(b) == 0 || uintptr(unsafe.Pointer(&b[0]))%8 == 0
}

// The sliceX helpers view a byte section as a typed slice: a direct
// unsafe alias when the host is little-endian and the section is
// 8-byte-aligned (always true for mmap-ed files; Go heap buffers are
// checked), an element-wise decode into a fresh slice otherwise.

func sliceU32(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	if hostLittle && aligned8(b) {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

func sliceU64(b []byte) []uint64 {
	if len(b) == 0 {
		return nil
	}
	if hostLittle && aligned8(b) {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out
}

func sliceI64(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	if hostLittle && aligned8(b) {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// secElem is the element width of each section, for size validation.
var secElem = [flatSections]uint64{1, leafRecBytes, modelRecBytes, 8, 4, 8, 8, 4, 8, 4}

// OpenFlat opens a flat profile over buf without copying the numeric
// sections. Validation is structural — every offset, span and row
// table is bounds-checked so a later synthesis can never index outside
// the buffer — plus a checksum pass over all sections unless
// FlatNoVerify is given. buf must not be mutated while the Flat is in
// use.
func OpenFlat(buf []byte, opts ...FlatOption) (*Flat, error) {
	var o flatOpts
	for _, opt := range opts {
		opt(&o)
	}
	if len(buf) < flatDataStart {
		return nil, flatErr("short header: %d bytes", len(buf))
	}
	le := binary.LittleEndian
	if le.Uint32(buf[0:]) != flatMagic {
		return nil, flatErr("bad magic")
	}
	if v := le.Uint32(buf[4:]); v != flatVersion {
		return nil, flatErr("unsupported version %d", v)
	}
	if sz := le.Uint64(buf[8:]); sz != uint64(len(buf)) {
		return nil, flatErr("header size %d != buffer size %d", sz, len(buf))
	}
	nLeaves := le.Uint32(buf[16:])
	if sc := le.Uint32(buf[20:]); sc != flatSections {
		return nil, flatErr("section count %d", sc)
	}
	requests := le.Uint64(buf[24:])
	canonical := le.Uint64(buf[32:])
	nameLen := le.Uint32(buf[40:])
	configLen := le.Uint32(buf[44:])
	wantHdrCRC := le.Uint32(buf[48:])

	// Header CRC covers header + section table with the CRC field zeroed.
	crc := crc32.Update(0, flatCRC, buf[:48])
	crc = crc32.Update(crc, flatCRC, []byte{0, 0, 0, 0})
	crc = crc32.Update(crc, flatCRC, buf[52:flatDataStart])
	if crc != wantHdrCRC {
		return nil, flatErr("header checksum mismatch")
	}

	var secs [flatSections][]byte
	for i := 0; i < flatSections; i++ {
		e := buf[flatHeaderBytes+i*flatSecEntry:]
		off, size := le.Uint64(e[0:]), le.Uint64(e[8:])
		if off%8 != 0 {
			return nil, flatErr("section %d misaligned at %d", i, off)
		}
		if off < flatDataStart || off > uint64(len(buf)) || size > uint64(len(buf))-off {
			return nil, flatErr("section %d span [%d,+%d) outside buffer", i, off, size)
		}
		if size%secElem[i] != 0 {
			return nil, flatErr("section %d size %d not a multiple of %d", i, size, secElem[i])
		}
		secs[i] = buf[off : off+size : off+size]
		if !o.noVerify {
			if got, want := crc32.Checksum(secs[i], flatCRC), le.Uint32(e[16:]); got != want {
				return nil, flatErr("section %d checksum mismatch", i)
			}
		}
	}

	if uint64(nameLen)+uint64(configLen) != uint64(len(secs[secStrings])) {
		return nil, flatErr("string lengths exceed section")
	}
	f := &Flat{
		data:      buf,
		name:      string(secs[secStrings][:nameLen]),
		config:    string(secs[secStrings][nameLen:]),
		requests:  requests,
		canonical: canonical,
		nLeaves:   int(nLeaves),
		leafTab:   secs[secLeafTab],
		modelTab:  secs[secModels],
		rowFrom:   sliceI64(secs[secRowFrom]),
		rowOff:    sliceU32(secs[secRowOff]),
		rowSum:    sliceU64(secs[secRowSum]),
		edgeTo:    sliceI64(secs[secEdgeTo]),
		edgeN:     sliceU32(secs[secEdgeN]),
		valVal:    sliceI64(secs[secValVal]),
		valN:      sliceU32(secs[secValN]),
	}
	if uint64(len(f.leafTab)) != uint64(nLeaves)*leafRecBytes {
		return nil, flatErr("leaf table holds %d bytes for %d leaves", len(f.leafTab), nLeaves)
	}
	if uint64(len(f.modelTab)) != uint64(nLeaves)*4*modelRecBytes {
		return nil, flatErr("model table holds %d bytes for %d leaves", len(f.modelTab), nLeaves)
	}
	if len(f.edgeN) != len(f.edgeTo) || len(f.valN) != len(f.valVal) || len(f.rowSum) != len(f.rowFrom) {
		return nil, flatErr("parallel sections disagree on element counts")
	}
	if err := f.validateModels(); err != nil {
		return nil, err
	}
	var total uint64
	for i := 0; i < f.nLeaves; i++ {
		total += uint64(f.LeafCount(i))
	}
	if total != requests {
		return nil, flatErr("header requests %d != leaf sum %d", requests, total)
	}
	return f, nil
}

// validateModels bounds-checks every model record and its row table:
// after it passes, any generator built over the views can only index
// inside its own spans, so synthesis from a structurally valid file
// never panics, whatever the numeric content.
func (f *Flat) validateModels() error {
	le := binary.LittleEndian
	for mi := 0; mi < f.nLeaves*4; mi++ {
		rec := f.modelTab[mi*modelRecBytes : (mi+1)*modelRecBytes]
		kind := le.Uint32(rec[0:])
		switch kind {
		case flatModelConstant:
			continue
		case flatModelMarkov:
		default:
			return flatErr("model %d: bad kind %d", mi, kind)
		}
		nRows := uint64(le.Uint32(rec[4:]))
		rowStart := uint64(le.Uint32(rec[8:]))
		offStart := uint64(le.Uint32(rec[12:]))
		edgeStart := uint64(le.Uint32(rec[16:]))
		nEdges := uint64(le.Uint32(rec[20:]))
		valStart := uint64(le.Uint32(rec[24:]))
		nVals := uint64(le.Uint32(rec[28:]))
		if rowStart+nRows > uint64(len(f.rowFrom)) ||
			offStart+nRows+1 > uint64(len(f.rowOff)) ||
			edgeStart+nEdges > uint64(len(f.edgeTo)) ||
			valStart+nVals > uint64(len(f.valVal)) {
			return flatErr("model %d: spans outside sections", mi)
		}
		off := f.rowOff[offStart : offStart+nRows+1]
		if off[0] != 0 || uint64(off[nRows]) != nEdges {
			return flatErr("model %d: row offsets span [%d,%d), want [0,%d)", mi, off[0], off[nRows], nEdges)
		}
		for r := uint64(0); r < nRows; r++ {
			if off[r] > off[r+1] {
				return flatErr("model %d: row offsets not monotone at %d", mi, r)
			}
		}
	}
	return nil
}

// Name returns the profile's workload label.
func (f *Flat) Name() string { return f.name }

// Config returns the partitioning configuration string.
func (f *Flat) Config() string { return f.config }

// Size returns the encoded size in bytes.
func (f *Flat) Size() int { return len(f.data) }

// CanonicalBytes returns the size of the profile's canonical varint
// encoding (the stream content addressing hashes), or 0 when the
// encoder did not record it.
func (f *Flat) CanonicalBytes() int64 { return int64(f.canonical) }

// Bytes returns the underlying encoded buffer. Callers must treat it
// as read-only; for an mmap-ed Flat it is only valid until Close.
func (f *Flat) Bytes() []byte { return f.data }

// NumLeaves implements View.
func (f *Flat) NumLeaves() int { return f.nLeaves }

// Requests implements View.
func (f *Flat) Requests() int { return int(f.requests) }

// LeafCount implements View.
func (f *Flat) LeafCount(i int) uint32 {
	return binary.LittleEndian.Uint32(f.leafTab[i*leafRecBytes+32:])
}

// LeafView implements View: scratch's bookkeeping fields are filled
// from the leaf record and its four models become slice views over the
// flat buffer — no allocation, no decode.
func (f *Flat) LeafView(i int, scratch *Leaf) *Leaf {
	le := binary.LittleEndian
	rec := f.leafTab[i*leafRecBytes : (i+1)*leafRecBytes]
	scratch.StartTime = le.Uint64(rec[0:])
	scratch.StartAddr = le.Uint64(rec[8:])
	scratch.Lo = le.Uint64(rec[16:])
	scratch.Hi = le.Uint64(rec[24:])
	scratch.Count = le.Uint32(rec[32:])
	f.model(4*i+0, &scratch.DeltaTime)
	f.model(4*i+1, &scratch.Stride)
	f.model(4*i+2, &scratch.Op)
	f.model(4*i+3, &scratch.Size)
	return scratch
}

// model fills m with a view of model record mi.
func (f *Flat) model(mi int, m *markov.Model) {
	le := binary.LittleEndian
	rec := f.modelTab[mi*modelRecBytes : (mi+1)*modelRecBytes]
	value := int64(le.Uint64(rec[32:]))
	initial := int64(le.Uint64(rec[40:]))
	if le.Uint32(rec[0:]) == flatModelConstant {
		*m = markov.Model{Constant: true, Value: value, Initial: initial}
		return
	}
	nRows := le.Uint32(rec[4:])
	rowStart := le.Uint32(rec[8:])
	offStart := le.Uint32(rec[12:])
	edgeStart := le.Uint32(rec[16:])
	nEdges := le.Uint32(rec[20:])
	valStart := le.Uint32(rec[24:])
	nVals := le.Uint32(rec[28:])
	*m = markov.Model{
		Initial: initial,
		From:    f.rowFrom[rowStart : rowStart+nRows : rowStart+nRows],
		RowOff:  f.rowOff[offStart : offStart+nRows+1 : offStart+nRows+1],
		To:      f.edgeTo[edgeStart : edgeStart+nEdges : edgeStart+nEdges],
		N:       f.edgeN[edgeStart : edgeStart+nEdges : edgeStart+nEdges],
		RowSum:  f.rowSum[rowStart : rowStart+nRows : rowStart+nRows],
		Vals:    f.valVal[valStart : valStart+nVals : valStart+nVals],
		ValN:    f.valN[valStart : valStart+nVals : valStart+nVals],
	}
}

// Profile converts the flat profile to an independent heap profile,
// deep-copying every table: the result stays valid after Close and is
// safe to mutate (the flat buffer may be a read-only mapping).
func (f *Flat) Profile() *Profile {
	p := &Profile{Name: f.name, Config: f.config, Leaves: make([]Leaf, f.nLeaves)}
	var scratch Leaf
	for i := range p.Leaves {
		l := *f.LeafView(i, &scratch)
		l.DeltaTime = cloneModel(l.DeltaTime)
		l.Stride = cloneModel(l.Stride)
		l.Op = cloneModel(l.Op)
		l.Size = cloneModel(l.Size)
		p.Leaves[i] = l
	}
	return p
}

func cloneModel(m markov.Model) markov.Model {
	m.From = append([]int64(nil), m.From...)
	m.RowOff = append([]uint32(nil), m.RowOff...)
	m.To = append([]int64(nil), m.To...)
	m.N = append([]uint32(nil), m.N...)
	m.RowSum = append([]uint64(nil), m.RowSum...)
	m.Vals = append([]int64(nil), m.Vals...)
	m.ValN = append([]uint32(nil), m.ValN...)
	return m
}

// Close releases the resources behind the buffer (the mapping, for an
// mmap-ed file). It is a no-op for in-memory buffers and safe to call
// once; no view derived from the Flat may be used afterwards.
func (f *Flat) Close() error {
	c := f.closer
	f.closer = nil
	if c != nil {
		return c()
	}
	return nil
}

// flatCounts tallies the global table sizes of a profile.
type flatCounts struct {
	rows, edges, vals, offs int
}

func countFlat(p *Profile) (flatCounts, error) {
	var c flatCounts
	for i := range p.Leaves {
		l := &p.Leaves[i]
		for _, m := range [...]*markov.Model{&l.DeltaTime, &l.Stride, &l.Op, &l.Size} {
			if m.Constant {
				continue
			}
			if len(m.RowOff) != len(m.From)+1 || len(m.N) != len(m.To) ||
				len(m.RowSum) != len(m.From) || len(m.ValN) != len(m.Vals) || len(m.Vals) == 0 {
				return c, fmt.Errorf("profile: leaf %d has an unfinished model (call Finish)", i)
			}
			c.rows += len(m.From)
			c.offs += len(m.From) + 1
			c.edges += len(m.To)
			c.vals += len(m.Vals)
		}
	}
	if uint64(c.rows) > math.MaxUint32 || uint64(c.edges) > math.MaxUint32 ||
		uint64(c.vals) > math.MaxUint32 || uint64(c.offs) > math.MaxUint32 ||
		uint64(len(p.Leaves)) > math.MaxUint32/4 {
		return c, errors.New("profile: too large for flat encoding")
	}
	return c, nil
}

func align8(n uint64) uint64 { return (n + 7) &^ 7 }

// MarshalFlat encodes the profile in the flat format. The canonical
// (varint) encoding size is measured and recorded in the header so a
// flat file preserves the byte accounting content addressing uses.
func MarshalFlat(p *Profile) ([]byte, error) {
	c, err := countFlat(p)
	if err != nil {
		return nil, err
	}
	var cw countWriter
	if err := Write(&cw, p); err != nil {
		return nil, err
	}

	nLeaves := len(p.Leaves)
	sizes := [flatSections]uint64{
		secStrings: uint64(len(p.Name) + len(p.Config)),
		secLeafTab: uint64(nLeaves) * leafRecBytes,
		secModels:  uint64(nLeaves) * 4 * modelRecBytes,
		secRowFrom: uint64(c.rows) * 8,
		secRowOff:  uint64(c.offs) * 4,
		secRowSum:  uint64(c.rows) * 8,
		secEdgeTo:  uint64(c.edges) * 8,
		secEdgeN:   uint64(c.edges) * 4,
		secValVal:  uint64(c.vals) * 8,
		secValN:    uint64(c.vals) * 4,
	}
	var offs [flatSections]uint64
	pos := uint64(flatDataStart)
	for i := 0; i < flatSections; i++ {
		offs[i] = pos
		pos = align8(pos + sizes[i])
	}
	total := pos
	buf := make([]byte, total)
	le := binary.LittleEndian

	le.PutUint32(buf[0:], flatMagic)
	le.PutUint32(buf[4:], flatVersion)
	le.PutUint64(buf[8:], total)
	le.PutUint32(buf[16:], uint32(nLeaves))
	le.PutUint32(buf[20:], flatSections)
	le.PutUint64(buf[24:], uint64(p.Requests()))
	le.PutUint64(buf[32:], uint64(cw))
	le.PutUint32(buf[40:], uint32(len(p.Name)))
	le.PutUint32(buf[44:], uint32(len(p.Config)))

	copy(buf[offs[secStrings]:], p.Name)
	copy(buf[offs[secStrings]+uint64(len(p.Name)):], p.Config)

	leafTab := buf[offs[secLeafTab]:]
	modelTab := buf[offs[secModels]:]
	rowFrom := buf[offs[secRowFrom]:]
	rowOff := buf[offs[secRowOff]:]
	rowSum := buf[offs[secRowSum]:]
	edgeTo := buf[offs[secEdgeTo]:]
	edgeN := buf[offs[secEdgeN]:]
	valVal := buf[offs[secValVal]:]
	valN := buf[offs[secValN]:]

	var rowAt, offAt, edgeAt, valAt uint32
	mi := 0
	putModel := func(m *markov.Model) {
		rec := modelTab[mi*modelRecBytes:]
		mi++
		if m.Constant {
			le.PutUint32(rec[0:], flatModelConstant)
			le.PutUint64(rec[32:], uint64(m.Value))
			le.PutUint64(rec[40:], uint64(m.Initial))
			return
		}
		le.PutUint32(rec[0:], flatModelMarkov)
		le.PutUint32(rec[4:], uint32(len(m.From)))
		le.PutUint32(rec[8:], rowAt)
		le.PutUint32(rec[12:], offAt)
		le.PutUint32(rec[16:], edgeAt)
		le.PutUint32(rec[20:], uint32(len(m.To)))
		le.PutUint32(rec[24:], valAt)
		le.PutUint32(rec[28:], uint32(len(m.Vals)))
		le.PutUint64(rec[32:], 0)
		le.PutUint64(rec[40:], uint64(m.Initial))
		for r := range m.From {
			le.PutUint64(rowFrom[(int(rowAt)+r)*8:], uint64(m.From[r]))
			le.PutUint64(rowSum[(int(rowAt)+r)*8:], m.RowSum[r])
		}
		for r, o := range m.RowOff {
			le.PutUint32(rowOff[(int(offAt)+r)*4:], o)
		}
		for j := range m.To {
			le.PutUint64(edgeTo[(int(edgeAt)+j)*8:], uint64(m.To[j]))
			le.PutUint32(edgeN[(int(edgeAt)+j)*4:], m.N[j])
		}
		for j := range m.Vals {
			le.PutUint64(valVal[(int(valAt)+j)*8:], uint64(m.Vals[j]))
			le.PutUint32(valN[(int(valAt)+j)*4:], m.ValN[j])
		}
		rowAt += uint32(len(m.From))
		offAt += uint32(len(m.RowOff))
		edgeAt += uint32(len(m.To))
		valAt += uint32(len(m.Vals))
	}
	for i := range p.Leaves {
		l := &p.Leaves[i]
		rec := leafTab[i*leafRecBytes:]
		le.PutUint64(rec[0:], l.StartTime)
		le.PutUint64(rec[8:], l.StartAddr)
		le.PutUint64(rec[16:], l.Lo)
		le.PutUint64(rec[24:], l.Hi)
		le.PutUint32(rec[32:], l.Count)
		putModel(&l.DeltaTime)
		putModel(&l.Stride)
		putModel(&l.Op)
		putModel(&l.Size)
	}

	for i := 0; i < flatSections; i++ {
		e := buf[flatHeaderBytes+i*flatSecEntry:]
		le.PutUint64(e[0:], offs[i])
		le.PutUint64(e[8:], sizes[i])
		le.PutUint32(e[16:], crc32.Checksum(buf[offs[i]:offs[i]+sizes[i]], flatCRC))
	}
	crc := crc32.Update(0, flatCRC, buf[:48])
	crc = crc32.Update(crc, flatCRC, []byte{0, 0, 0, 0})
	crc = crc32.Update(crc, flatCRC, buf[52:flatDataStart])
	le.PutUint32(buf[48:], crc)
	return buf, nil
}

// WriteFlat writes the flat encoding of p to w.
func WriteFlat(w io.Writer, p *Profile) error {
	buf, err := MarshalFlat(p)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// countWriter counts bytes written, for measuring the canonical
// encoding without materialising it.
type countWriter uint64

func (c *countWriter) Write(p []byte) (int, error) {
	*c += countWriter(len(p))
	return len(p), nil
}

// SniffFlat reports whether the buffer starts with the flat profile
// magic — enough to route a file between the gzip and flat decoders.
func SniffFlat(prefix []byte) bool {
	return len(prefix) >= 4 && binary.LittleEndian.Uint32(prefix) == flatMagic
}
