package profile

import (
	"fmt"
	"io"
	"sort"
)

// Dump writes a human-readable summary of the profile: overall
// composition, then the largest leaves with their per-feature models.
// It backs the `mocktails inspect` command; vendors can use it to review
// exactly what information a profile discloses before distributing it.
func Dump(w io.Writer, p *Profile, maxLeaves int) {
	s := p.Stats()
	fmt.Fprintf(w, "profile %q (hierarchy: %s)\n", p.Name, p.Config)
	fmt.Fprintf(w, "  %d leaves, %d requests\n", s.Leaves, p.Requests())
	fmt.Fprintf(w, "  feature models: %d constants, %d Markov chains (%d states total)\n",
		s.Constants, s.Chains, s.States)

	idx := make([]int, len(p.Leaves))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if p.Leaves[idx[a]].Count != p.Leaves[idx[b]].Count {
			return p.Leaves[idx[a]].Count > p.Leaves[idx[b]].Count
		}
		return idx[a] < idx[b]
	})
	if maxLeaves <= 0 || maxLeaves > len(idx) {
		maxLeaves = len(idx)
	}
	fmt.Fprintf(w, "  largest %d leaves:\n", maxLeaves)
	for _, i := range idx[:maxLeaves] {
		l := &p.Leaves[i]
		fmt.Fprintf(w, "    leaf %d: start t=%d addr=0x%x range=[0x%x,0x%x) count=%d\n",
			i, l.StartTime, l.StartAddr, l.Lo, l.Hi, l.Count)
		fmt.Fprintf(w, "      dt=%s stride=%s op=%s size=%s\n",
			l.DeltaTime.String(), l.Stride.String(), l.Op.String(), l.Size.String())
	}
}
