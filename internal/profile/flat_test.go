package profile

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/trace"
)

// flatTestProfile builds a moderately rich profile: multiple leaves,
// Markov and Constant models, and enough distinct values that some
// models cross the Fenwick cutoff.
func flatTestProfile(t *testing.T) *Profile {
	t.Helper()
	rng := stats.NewRNG(7)
	reqs := make(trace.Trace, 4000)
	tm := uint64(0)
	for i := range reqs {
		tm += uint64(rng.Intn(120))
		op := trace.Read
		if rng.Intn(3) == 0 {
			op = trace.Write
		}
		reqs[i] = trace.Request{
			Time: tm,
			Addr: 0x10_0000 + uint64(rng.Intn(1<<18)),
			Op:   op,
			Size: uint32(8 << rng.Intn(5)),
		}
	}
	p, err := Build("flat-test", reqs, partition.TwoLevelTS(150_000))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestFlatRoundTrip(t *testing.T) {
	p := flatTestProfile(t)
	buf, err := MarshalFlat(p)
	if err != nil {
		t.Fatalf("MarshalFlat: %v", err)
	}
	if !SniffFlat(buf) {
		t.Fatal("SniffFlat rejects a flat buffer")
	}
	f, err := OpenFlat(buf)
	if err != nil {
		t.Fatalf("OpenFlat: %v", err)
	}
	if f.Name() != p.Name || f.Config() != p.Config {
		t.Errorf("strings: %q/%q, want %q/%q", f.Name(), f.Config(), p.Name, p.Config)
	}
	if f.NumLeaves() != len(p.Leaves) || f.Requests() != p.Requests() {
		t.Errorf("counts: %d leaves/%d reqs, want %d/%d",
			f.NumLeaves(), f.Requests(), len(p.Leaves), p.Requests())
	}
	// The canonical-encoding size recorded in the header must match an
	// actual canonical encode.
	var canon bytes.Buffer
	if err := Write(&canon, p); err != nil {
		t.Fatal(err)
	}
	if f.CanonicalBytes() != int64(canon.Len()) {
		t.Errorf("CanonicalBytes = %d, want %d", f.CanonicalBytes(), canon.Len())
	}
	// Every leaf viewed through the flat buffer equals the heap leaf.
	var scratch Leaf
	for i := range p.Leaves {
		if f.LeafCount(i) != p.Leaves[i].Count {
			t.Fatalf("leaf %d count %d, want %d", i, f.LeafCount(i), p.Leaves[i].Count)
		}
		got := f.LeafView(i, &scratch)
		if !reflect.DeepEqual(*got, p.Leaves[i]) {
			t.Fatalf("leaf %d view differs from heap leaf", i)
		}
	}
	// Deep conversion back to heap must re-encode to identical canonical
	// bytes (the property content addressing depends on).
	var canon2 bytes.Buffer
	if err := Write(&canon2, f.Profile()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canon.Bytes(), canon2.Bytes()) {
		t.Error("flat->heap conversion changes canonical encoding")
	}
}

func TestFlatFileMmap(t *testing.T) {
	p := flatTestProfile(t)
	buf, err := MarshalFlat(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p.mfp")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFlatFile(path)
	if err != nil {
		t.Fatalf("OpenFlatFile: %v", err)
	}
	var canon, canon2 bytes.Buffer
	if err := Write(&canon, p); err != nil {
		t.Fatal(err)
	}
	if err := Write(&canon2, f.Profile()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canon.Bytes(), canon2.Bytes()) {
		t.Error("mmap round trip changes canonical encoding")
	}
	// Unlink-while-mapped must keep the views readable (the disk tier
	// deletes cold files under open streams).
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	var scratch Leaf
	_ = f.LeafView(0, &scratch)
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestFlatCorruptionDetected(t *testing.T) {
	p := flatTestProfile(t)
	orig, err := MarshalFlat(p)
	if err != nil {
		t.Fatal(err)
	}
	// Any single-byte flip must be caught by a checksum (or a structural
	// check) — sample positions across the whole buffer.
	for _, pos := range []int{0, 5, 9, 17, 25, 49, flatHeaderBytes + 3, flatDataStart + 1,
		len(orig) / 2, len(orig) - 1} {
		buf := append([]byte(nil), orig...)
		buf[pos] ^= 0x40
		if _, err := OpenFlat(buf); err == nil {
			t.Errorf("corruption at byte %d not detected", pos)
		} else if !errors.Is(err, ErrFlatFormat) {
			t.Errorf("corruption at byte %d: error %v not an ErrFlatFormat", pos, err)
		}
	}
	// Truncations must error, not panic.
	for _, n := range []int{0, 3, flatHeaderBytes - 1, flatDataStart - 1, len(orig) - 9} {
		if _, err := OpenFlat(orig[:n]); err == nil {
			t.Errorf("truncation to %d bytes not detected", n)
		}
	}
	// NoVerify still rejects structural damage (a section span pushed
	// outside the buffer), just not pure bit rot.
	buf := append([]byte(nil), orig...)
	buf[flatHeaderBytes+2] = 0xff // section 0 offset high byte
	fixupHeaderCRC(buf)
	if _, err := OpenFlat(buf, FlatNoVerify()); err == nil {
		t.Error("NoVerify accepted an out-of-bounds section")
	}
}

// fixupHeaderCRC recomputes the header checksum after a test mutates
// the header or section table, so structural checks are reached.
func fixupHeaderCRC(buf []byte) {
	crc := crc32.Update(0, flatCRC, buf[:48])
	crc = crc32.Update(crc, flatCRC, []byte{0, 0, 0, 0})
	crc = crc32.Update(crc, flatCRC, buf[52:flatDataStart])
	binary.LittleEndian.PutUint32(buf[48:], crc)
}
