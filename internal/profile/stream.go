package profile

import (
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/trace"
)

// BuildStream constructs the same profile Build does — byte-identical
// under the canonical encoding, for any worker count — but pulls the
// trace from an incremental reader instead of a materialised slice.
// Temporal windows are fitted as they close and their trace memory is
// released behind the fit frontier, so peak heap is O(open window +
// queued leaves + fitted models) rather than O(trace). Hierarchies
// whose first layer is spatial fall back to materialising internally
// (see partition.FitStream); the result is identical either way.
//
// The stream must be sorted by time; violations surface as an error
// wrapping partition.ErrOutOfOrder.
func BuildStream(name string, rd trace.Reader, cfg partition.Config, opts ...Option) (*Profile, error) {
	var o buildOptions
	for _, opt := range opts {
		opt(&o)
	}
	ctx, bsp := obs.Start(o.ctx, "profile.build_stream")
	defer bsp.End()

	// Fitted leaves are committed by the global leaf index FitStream
	// assigns (stream order = Split order), so the Leaves slice is
	// identical to Build's. Growth and writes happen under one lock:
	// the final window count is unknown until the stream ends, so the
	// slice cannot be pre-sized the way Build's can.
	var (
		mu  sync.Mutex
		out []Leaf
	)
	records, leaves, err := partition.FitStream(ctx, rd, cfg, o.workers, func(i int, l partition.Leaf) {
		f := fitLeaf(l)
		mu.Lock()
		for len(out) <= i {
			out = append(out, Leaf{})
		}
		out[i] = f
		mu.Unlock()
	})
	if err != nil {
		return nil, fmt.Errorf("profile: streaming build: %w", err)
	}
	if out == nil {
		out = make([]Leaf, 0)
	}
	p := &Profile{Name: name, Config: cfg.String(), Leaves: out}
	s := p.Stats()
	mLeavesFitted.Add(uint64(s.Leaves))
	mModelsMarkov.Add(uint64(s.Chains))
	mModelsConstant.Add(uint64(s.Constants))
	bsp.SetCount("requests", int64(records))
	bsp.SetCount("leaves", int64(leaves))
	return p, nil
}
