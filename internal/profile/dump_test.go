package profile

import (
	"strings"
	"testing"

	"repro/internal/partition"
)

func TestDump(t *testing.T) {
	p, err := Build("dumpme", sampleTrace(), partition.TwoLevelTS(1000))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	Dump(&sb, p, 3)
	out := sb.String()
	for _, want := range []string{`profile "dumpme"`, "leaves", "largest 3 leaves", "dt=", "stride="} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	// Leaf cap larger than the profile: prints everything, no panic.
	var sb2 strings.Builder
	Dump(&sb2, p, 1<<20)
	if !strings.Contains(sb2.String(), "leaf") {
		t.Error("uncapped dump missing leaves")
	}
}
