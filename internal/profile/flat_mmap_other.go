//go:build !unix

package profile

import "os"

// OpenFlatFile opens a flat profile file. Without mmap support the
// whole file is read into memory; the semantics match the unix
// implementation, only the open cost differs.
func OpenFlatFile(path string, opts ...FlatOption) (*Flat, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return OpenFlat(data, opts...)
}
