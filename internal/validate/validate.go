// Package validate compares two memory-system simulation results — a
// reference (the original trace) and a candidate (a synthetic
// recreation) — metric by metric, producing the error summary that the
// paper's §IV methodology aggregates into its figures. It backs the
// `mocktails compare` CLI and the test-suite claim assertions.
package validate

import (
	"fmt"
	"io"

	"repro/internal/dram"
	"repro/internal/stats"
)

// MetricError is one compared metric.
type MetricError struct {
	Name       string
	Reference  float64
	Measured   float64
	PercentErr float64
}

// Comparison is the full metric-by-metric comparison.
type Comparison struct {
	Metrics []MetricError
}

// Compare evaluates every §IV metric of the candidate against the
// reference: burst counts, row hits, queue lengths, per-channel
// write-queue distributions (as L1 distances), reads per turnaround, and
// average latency.
//
// When the two results were simulated with different channel counts the
// comparison is between unlike memory systems: rather than silently
// dropping the extra channels, a "channel count" metric records the
// mismatch (and its percent error), and only the common channels are
// compared individually.
func Compare(ref, got dram.Result) Comparison {
	var c Comparison
	add := func(name string, r, g float64) {
		c.Metrics = append(c.Metrics, MetricError{
			Name: name, Reference: r, Measured: g,
			PercentErr: stats.PercentError(g, r),
		})
	}
	add("read bursts", float64(ref.ReadBursts()), float64(got.ReadBursts()))
	add("write bursts", float64(ref.WriteBursts()), float64(got.WriteBursts()))
	add("read row hits", float64(ref.ReadRowHits()), float64(got.ReadRowHits()))
	add("write row hits", float64(ref.WriteRowHits()), float64(got.WriteRowHits()))
	add("avg read queue", ref.AvgReadQueueLen(), got.AvgReadQueueLen())
	add("avg write queue", ref.AvgWriteQueueLen(), got.AvgWriteQueueLen())
	add("avg latency", ref.AvgLatency, got.AvgLatency)
	n := len(ref.Channels)
	if len(got.Channels) != n {
		add("channel count", float64(len(ref.Channels)), float64(len(got.Channels)))
		if len(got.Channels) < n {
			n = len(got.Channels)
		}
	}
	for ch := 0; ch < n; ch++ {
		add(fmt.Sprintf("ch%d reads/turnaround", ch),
			ref.AvgReadsPerTurnaround(ch), got.AvgReadsPerTurnaround(ch))
	}
	return c
}

// MaxError returns the largest percent error across metrics.
func (c Comparison) MaxError() float64 {
	max := 0.0
	for _, m := range c.Metrics {
		if m.PercentErr > max {
			max = m.PercentErr
		}
	}
	return max
}

// MeanError returns the arithmetic-mean percent error across metrics.
func (c Comparison) MeanError() float64 {
	if len(c.Metrics) == 0 {
		return 0
	}
	sum := 0.0
	for _, m := range c.Metrics {
		sum += m.PercentErr
	}
	return sum / float64(len(c.Metrics))
}

// Worst returns the metric with the largest error, or a zero value when
// empty.
func (c Comparison) Worst() MetricError {
	var worst MetricError
	for _, m := range c.Metrics {
		if m.PercentErr >= worst.PercentErr {
			worst = m
		}
	}
	return worst
}

// Fprint renders the comparison as an aligned table.
func (c Comparison) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%-24s %14s %14s %8s\n", "metric", "reference", "measured", "err%")
	for _, m := range c.Metrics {
		fmt.Fprintf(w, "%-24s %14.2f %14.2f %8.2f\n",
			m.Name, m.Reference, m.Measured, m.PercentErr)
	}
	fmt.Fprintf(w, "mean error %.2f%%, max error %.2f%% (%s)\n",
		c.MeanError(), c.MaxError(), c.Worst().Name)
}
