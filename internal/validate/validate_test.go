package validate

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func simPair(t *testing.T) (dram.Result, dram.Result) {
	t.Helper()
	spec, err := workloads.Find("Crypto1")
	if err != nil {
		t.Fatal(err)
	}
	tr := spec.Gen()
	p, err := core.Build(spec.Name, tr, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref := dram.Run(trace.NewReplayer(tr), dram.Default(), 20)
	got := dram.Run(core.Synthesize(p, 42), dram.Default(), 20)
	return ref, got
}

func TestCompareSelfIsZero(t *testing.T) {
	ref, _ := simPair(t)
	c := Compare(ref, ref)
	if c.MaxError() != 0 || c.MeanError() != 0 {
		t.Errorf("self-comparison errors: mean %v max %v", c.MeanError(), c.MaxError())
	}
}

func TestCompareCoversCoreMetrics(t *testing.T) {
	ref, got := simPair(t)
	c := Compare(ref, got)
	names := map[string]bool{}
	for _, m := range c.Metrics {
		names[m.Name] = true
	}
	for _, want := range []string{"read bursts", "write bursts", "read row hits",
		"write row hits", "avg read queue", "avg write queue", "avg latency",
		"ch0 reads/turnaround", "ch3 reads/turnaround"} {
		if !names[want] {
			t.Errorf("missing metric %q", want)
		}
	}
}

func TestCompareMocktailsCloneReasonable(t *testing.T) {
	ref, got := simPair(t)
	c := Compare(ref, got)
	if c.MeanError() > 20 {
		t.Errorf("clone mean error %.2f%% implausibly high", c.MeanError())
	}
	// Burst counts are exact under strict convergence.
	for _, m := range c.Metrics {
		if (m.Name == "read bursts" || m.Name == "write bursts") && m.PercentErr != 0 {
			t.Errorf("%s error %.2f%%, want 0 (strict convergence)", m.Name, m.PercentErr)
		}
	}
}

func TestWorstAndMeanConsistent(t *testing.T) {
	ref, got := simPair(t)
	c := Compare(ref, got)
	if c.Worst().PercentErr != c.MaxError() {
		t.Error("Worst() disagrees with MaxError()")
	}
	if c.MeanError() > c.MaxError() {
		t.Error("mean error exceeds max error")
	}
}

func TestEmptyComparison(t *testing.T) {
	var c Comparison
	if c.MeanError() != 0 || c.MaxError() != 0 {
		t.Error("empty comparison has nonzero errors")
	}
	if c.Worst().Name != "" {
		t.Error("empty comparison has a worst metric")
	}
}

func TestCompareChannelCountMismatch(t *testing.T) {
	ref, _ := simPair(t)

	metricNames := func(c Comparison) map[string]bool {
		names := map[string]bool{}
		for _, m := range c.Metrics {
			names[m.Name] = true
		}
		return names
	}

	t.Run("candidate has fewer channels", func(t *testing.T) {
		got := ref
		got.Channels = got.Channels[:2]
		c := Compare(ref, got)
		names := metricNames(c)
		if !names["channel count"] {
			t.Fatal("missing channel count mismatch metric")
		}
		for _, m := range c.Metrics {
			if m.Name == "channel count" {
				if m.Reference != 4 || m.Measured != 2 || m.PercentErr == 0 {
					t.Errorf("channel count metric = %+v", m)
				}
			}
		}
		if names["ch2 reads/turnaround"] || names["ch3 reads/turnaround"] {
			t.Error("comparison includes channels the candidate does not have")
		}
		if c.MaxError() == 0 {
			t.Error("channel mismatch not reflected in MaxError")
		}
	})

	t.Run("candidate has extra channels", func(t *testing.T) {
		got := ref
		got.Channels = append(append([]dram.ChannelStats{}, ref.Channels...), ref.Channels[0])
		c := Compare(ref, got)
		names := metricNames(c)
		if !names["channel count"] {
			t.Fatal("missing channel count mismatch metric")
		}
		if !names["ch3 reads/turnaround"] {
			t.Error("common channels no longer compared")
		}
	})

	t.Run("equal channel counts add no metric", func(t *testing.T) {
		if metricNames(Compare(ref, ref))["channel count"] {
			t.Error("channel count metric reported for matching results")
		}
	})
}

func TestFprintFormat(t *testing.T) {
	ref, got := simPair(t)
	var sb strings.Builder
	Compare(ref, got).Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"metric", "read row hits", "mean error"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
