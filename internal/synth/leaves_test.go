package synth

import (
	"testing"

	"repro/internal/partition"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/trace"
)

// leavesTestProfile builds a multi-leaf profile from a small
// deterministic trace.
func leavesTestProfile(t *testing.T) *profile.Profile {
	t.Helper()
	rng := stats.NewRNG(99)
	tr := make(trace.Trace, 0, 2000)
	now, addr := uint64(0), uint64(1<<20)
	for i := 0; i < 2000; i++ {
		now += uint64(rng.Range(1, 100))
		addr += uint64(rng.Range(-2, 6) * 64)
		op := trace.Read
		if rng.Bool(0.3) {
			op = trace.Write
		}
		tr = append(tr, trace.Request{Time: now, Addr: addr, Size: 64, Op: op})
	}
	p, err := profile.Build("leaves-test", tr, partition.TwoLevelTS(20_000))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestLeafStreamsUnionEqualsMergedStream pins the contract of the
// per-leaf view: concatenating every LeafStream yields exactly the
// multiset of requests the merged Synthesizer emits.
func TestLeafStreamsUnionEqualsMergedStream(t *testing.T) {
	p := leavesTestProfile(t)
	const seed = 1234
	merged := trace.Collect(New(p, seed), 0)

	counts := make(map[trace.Request]int, len(merged))
	total := 0
	for _, stream := range LeafStreams(p, seed) {
		for _, r := range stream {
			counts[r]++
			total++
		}
	}
	if total != len(merged) {
		t.Fatalf("leaf streams hold %d requests, merged stream %d", total, len(merged))
	}
	for _, r := range merged {
		counts[r]--
		if counts[r] == 0 {
			delete(counts, r)
		}
	}
	if len(counts) != 0 {
		t.Errorf("leaf-stream union and merged stream differ on %d request values", len(counts))
	}
}

// TestLeafStreamCounts verifies each stream carries exactly Count
// requests starting at the leaf's recorded bookkeeping.
func TestLeafStreamCounts(t *testing.T) {
	p := leavesTestProfile(t)
	seeds := LeafSeeds(p, 5)
	if len(seeds) != len(p.Leaves) {
		t.Fatalf("got %d seeds for %d leaves", len(seeds), len(p.Leaves))
	}
	for i := range p.Leaves {
		l := &p.Leaves[i]
		s := LeafStream(l, seeds[i])
		if len(s) != int(l.Count) {
			t.Fatalf("leaf %d stream has %d requests, Count %d", i, len(s), l.Count)
		}
		if l.Count == 0 {
			continue
		}
		if s[0].Time != l.StartTime || s[0].Addr != l.StartAddr {
			t.Errorf("leaf %d starts at (t=%d, 0x%x), recorded (t=%d, 0x%x)",
				i, s[0].Time, s[0].Addr, l.StartTime, l.StartAddr)
		}
	}
}

// TestFeaturesMatchStream re-assembles a leaf's requests from its raw
// feature draws and compares with LeafStream: the two views of one
// synthesis must agree once clamping and wrapping are applied.
func TestFeaturesMatchStream(t *testing.T) {
	p := leavesTestProfile(t)
	seeds := LeafSeeds(p, 77)
	for i := range p.Leaves {
		l := &p.Leaves[i]
		if l.Count == 0 {
			continue
		}
		f := Features(l, seeds[i])
		n := int(l.Count)
		if len(f.Ops) != n || len(f.Sizes) != n || len(f.DeltaTimes) != n-1 || len(f.Strides) != n-1 {
			t.Fatalf("leaf %d: feature lengths dt=%d stride=%d op=%d size=%d for Count %d",
				i, len(f.DeltaTimes), len(f.Strides), len(f.Ops), len(f.Sizes), n)
		}
		stream := LeafStream(l, seeds[i])
		tm, addr := l.StartTime, l.StartAddr
		for j := 0; j < n; j++ {
			if j > 0 {
				dt := f.DeltaTimes[j-1]
				if dt < 0 {
					dt = 0
				}
				tm += uint64(dt)
				addr = WrapAddr(int64(addr)+f.Strides[j-1], l.Lo, l.Hi)
			}
			want := trace.Request{
				Time: tm, Addr: addr,
				Op:   OpFromValue(f.Ops[j]),
				Size: SizeFromValue(f.Sizes[j]),
			}
			if stream[j] != want {
				t.Fatalf("leaf %d request %d: stream %v, reassembled %v", i, j, stream[j], want)
			}
		}
	}
}

// TestFeaturesEmptyLeaf: a zero-count leaf yields empty features.
func TestFeaturesEmptyLeaf(t *testing.T) {
	var l profile.Leaf
	f := Features(&l, 1)
	if len(f.DeltaTimes) != 0 || len(f.Strides) != 0 || len(f.Ops) != 0 || len(f.Sizes) != 0 {
		t.Errorf("empty leaf produced features: %+v", f)
	}
	if s := LeafStream(&l, 1); s != nil {
		t.Errorf("empty leaf produced stream of %d", len(s))
	}
}
