package synth

import (
	"testing"

	"repro/internal/partition"
	"repro/internal/profile"
	"repro/internal/trace"
)

// openFlat round-trips a heap profile through the flat encoding and
// opens it as a zero-copy view.
func openFlat(t *testing.T, p *profile.Profile) *profile.Flat {
	t.Helper()
	buf, err := profile.MarshalFlat(p)
	if err != nil {
		t.Fatalf("MarshalFlat: %v", err)
	}
	f, err := profile.OpenFlat(buf)
	if err != nil {
		t.Fatalf("OpenFlat: %v", err)
	}
	return f
}

// TestFlatSynthesisByteIdentical is the invariant the flat fast path
// rests on: synthesizing from a flat view emits exactly the stream the
// heap profile emits, request for request, for serial and parallel
// configurations and across batch sizes (which change which leaves are
// eager and which keep chunked generators).
func TestFlatSynthesisByteIdentical(t *testing.T) {
	tr := workload(21, 6000)
	p := buildProfile(t, tr, partition.TwoLevelTS(700))
	f := openFlat(t, p)
	want := trace.Collect(New(p, 99), 0)
	for _, opts := range [][]Option{
		nil,
		{Batch(7)},
		{Workers(4), Batch(64)},
	} {
		got := trace.Collect(NewFrom(f, 99, opts...), 0)
		if len(got) != len(want) {
			t.Fatalf("opts %v: %d requests, want %d", opts, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("opts %v: request %d = %+v, want %+v", opts, i, got[i], want[i])
			}
		}
	}
}

// TestFlatSynthesisSingleLeaf exercises the chunked (non-eager) path
// against a view: one big leaf forces the generator to outlive init,
// which must not retain the stack-transient Leaf view.
func TestFlatSynthesisSingleLeaf(t *testing.T) {
	tr := workload(22, 4000)
	// One huge temporal interval + one request-count layer big enough to
	// swallow everything: a handful of big leaves, all non-eager.
	p := buildProfile(t, tr, partition.Config{Layers: []partition.Layer{
		{Kind: partition.TemporalRequestCount, Param: 1 << 20},
	}})
	f := openFlat(t, p)
	want := trace.Collect(New(p, 5), 0)
	got := trace.Collect(NewFrom(f, 5, Batch(32)), 0)
	if len(got) != len(want) {
		t.Fatalf("%d requests, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("request %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestSynthesisAllocsBounded pins the arena design: serial synthesis
// setup plus a full drain must stay within a fixed allocation budget
// that does not scale with leaf count. (The tight end-to-end budget —
// <1k allocs for the large benchmark case — is asserted by the
// benchmarks; this test catches regressions that reintroduce per-leaf
// or per-request allocation.)
func TestSynthesisAllocsBounded(t *testing.T) {
	tr := workload(23, 20000)
	p := buildProfile(t, tr, partition.TwoLevelTS(300))
	if len(p.Leaves) < 40 {
		t.Fatalf("want a many-leaf profile, got %d leaves", len(p.Leaves))
	}
	f := openFlat(t, p)
	allocs := testing.AllocsPerRun(3, func() {
		s := NewFrom(f, 7)
		for {
			if _, ok := s.Next(); !ok {
				break
			}
		}
	})
	// A fixed-cost setup is ~15 allocations; leave generous headroom for
	// runtime noise while still failing hard if allocation becomes
	// proportional to the >40 leaves or the 20k requests.
	if allocs > 40 {
		t.Errorf("synthesis cost %.0f allocs; want a fixed handful", allocs)
	}
}
