package synth

import (
	"repro/internal/markov"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/trace"
)

// This file exposes the per-leaf view of a synthesis run. The merged
// stream returned by Synthesizer interleaves every leaf's partial order;
// conformance checking (package conform) needs the un-merged partial
// orders and the raw feature draws to assert the paper's per-leaf
// guarantees — request counts, address ranges, and strict-convergence
// multiset equality (§III-C). The functions here replicate New's seed
// derivation exactly, so LeafStream(p, seed, i) is precisely the
// subsequence of New(p, seed)'s output contributed by p.Leaves[i].

// LeafSeeds returns the per-leaf RNG seeds a Synthesizer constructed
// with the same profile and seed hands to each leaf generator. The
// draw order is part of the deterministic stream contract: seed i
// drives p.Leaves[i].
func LeafSeeds(p *profile.Profile, seed uint64) []uint64 {
	rng := stats.NewRNG(seed)
	seeds := make([]uint64, len(p.Leaves))
	for i := range seeds {
		seeds[i] = rng.Uint64()
	}
	return seeds
}

// LeafStream regenerates the partial stream of one leaf: the exact
// requests leaf i contributes to New(p, seed)'s merged output, in
// generation order. An empty (Count == 0) leaf yields nil.
func LeafStream(l *profile.Leaf, seed uint64) trace.Trace {
	g := newLeafGen(l, seed)
	if g == nil {
		return nil
	}
	t := make(trace.Trace, 0, l.Count)
	t = append(t, g.Pending())
	for g.Advance() {
		t = append(t, g.Pending())
	}
	return t
}

// LeafStreams regenerates every leaf's partial stream for the given
// profile and synthesis seed. Concatenating the streams gives the same
// multiset of requests as draining New(p, seed); merging them by
// timestamp gives the same total order.
func LeafStreams(p *profile.Profile, seed uint64) []trace.Trace {
	seeds := LeafSeeds(p, seed)
	out := make([]trace.Trace, len(p.Leaves))
	for i := range p.Leaves {
		out[i] = LeafStream(&p.Leaves[i], seeds[i])
	}
	return out
}

// LeafFeatures holds the raw feature values a leaf's four McC
// generators produced during synthesis, before the request assembly
// transforms them (delta-time clamping at zero, address wrapping into
// [Lo, Hi)). Strict convergence is a property of these raw draws:
// generating exactly the training length reproduces the training
// multiset of each feature.
type LeafFeatures struct {
	// DeltaTimes and Strides hold Count-1 values each (the gaps
	// between consecutive requests); Ops and Sizes hold Count values.
	DeltaTimes []int64
	Strides    []int64
	Ops        []int64
	Sizes      []int64
}

// Features regenerates the raw feature draws of one leaf under the
// given per-leaf seed (see LeafSeeds). The four feature generators are
// reseeded in the same order leafGen forks them, so the values are
// bit-identical to the draws a synthesis run consumed.
func Features(l *profile.Leaf, seed uint64) LeafFeatures {
	var f LeafFeatures
	if l.Count == 0 {
		return f
	}
	n := int(l.Count)
	var r, fork stats.RNG
	r.Reseed(seed)
	var dt, stride, op, size markov.Generator
	fork.Reseed(r.Uint64())
	dt.Init(&l.DeltaTime, &fork)
	fork.Reseed(r.Uint64())
	stride.Init(&l.Stride, &fork)
	fork.Reseed(r.Uint64())
	op.Init(&l.Op, &fork)
	fork.Reseed(r.Uint64())
	size.Init(&l.Size, &fork)

	f.DeltaTimes = make([]int64, 0, n-1)
	f.Strides = make([]int64, 0, n-1)
	f.Ops = make([]int64, 0, n)
	f.Sizes = make([]int64, 0, n)
	// The first request draws only op and size (its time and address
	// come from the leaf's StartTime/StartAddr bookkeeping); each of
	// the remaining n-1 requests draws all four features.
	f.Ops = append(f.Ops, op.Next())
	f.Sizes = append(f.Sizes, size.Next())
	for i := 1; i < n; i++ {
		f.DeltaTimes = append(f.DeltaTimes, dt.Next())
		f.Strides = append(f.Strides, stride.Next())
		f.Ops = append(f.Ops, op.Next())
		f.Sizes = append(f.Sizes, size.Next())
	}
	return f
}
