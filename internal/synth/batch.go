package synth

import (
	"sync"

	"repro/internal/markov"
	"repro/internal/profile"
	"repro/internal/trace"
)

// leafStream adapts one leafGen to chunked consumption: the merge loop
// iterates over cur, a flat slice of pre-generated requests, instead of
// making virtual Pending/Advance calls per request. In parallel mode the
// stream double-buffers: while the merge consumes cur (one slab), a
// refill worker fills the other slab and commits it through next.
type leafStream struct {
	// gen is nil for eager streams: a leaf whose full output fits one
	// batch is generated at construction time by a stack-local generator
	// and only its requests are retained. Most leaves of
	// interval-partitioned profiles are eager, which keeps the surviving
	// per-synthesis state at one exact-sized request slab per leaf.
	gen *leafGen

	cur []trace.Request
	pos int

	// slabs are the chunk buffers: slabs[0] always exists; slabs[1] is
	// allocated lazily, only when the leaf needs more than one chunk in
	// parallel mode. filling is the slab index the outstanding refill
	// writes into (owned by the worker between enqueue and commit).
	slabs   [2][]trace.Request
	filling int

	// next transfers a filled chunk from the refill worker back to the
	// merge loop; its capacity of one and the at-most-one-outstanding-
	// refill invariant guarantee the worker never blocks sending.
	next chan []trace.Request

	// eof marks that the generator has been fully drained into chunks:
	// no refill is outstanding and none may be scheduled.
	eof bool
}

// refillJob asks a worker to fill slabs[slab] of one stream.
type refillJob struct {
	s    *leafStream
	slab int
}

// batchMerger merges per-leaf chunk streams with a loser tree. With
// workers > 1 the next chunk of every stream is pre-generated
// concurrently with the merge; every leaf draws from its own forked RNG
// and chunks are committed in a fixed per-stream order, so the emitted
// stream is bit-identical to the serial one.
type batchMerger struct {
	streams []*leafStream
	lt      *loserTree
	shift   uint64
	batch   int
	live    int

	// pops, delayCalls and delayCycles are merge-loop-local stats
	// (single consumer goroutine, no atomics) flushed to the registry
	// exactly once by finish.
	pops        uint64
	delayCalls  uint64
	delayCycles uint64

	// jobs feeds refill requests to the worker pool; nil in serial mode.
	// finishOnce flushes stats and closes jobs exactly once — when the
	// last stream drains, or from Close for abandoned synthesizers.
	jobs       chan refillJob
	finishOnce sync.Once
}

// init builds the stream for one leaf in place — generator construction
// plus the first chunk fill — returning false for an empty leaf. It does
// all the per-leaf setup work and touches nothing shared (arena regions
// are disjoint), so NewFrom fans calls to it across workers. A leaf
// whose full output fits one batch is generated eagerly with a
// stack-local generator into buf, its region of the shared arena; only
// larger leaves keep a heap generator alive for chunked refills. l may
// be a stack-transient view over a flat buffer: nothing retains it past
// this call (leafGen copies the scalars and slice views it needs).
func (s *leafStream) init(l *profile.Leaf, seed uint64, batch int, buf []trace.Request, ar *markov.Arena) bool {
	if l.Count == 0 {
		return false
	}
	if c := int(l.Count); c <= batch {
		var g leafGen
		g.init(l, seed, ar)
		g.fill(buf[:c])
		s.cur, s.eof = buf[:c], true
		return true
	}
	s.gen = new(leafGen)
	s.gen.init(l, seed, ar)
	s.slabs[0] = make([]trace.Request, batch)
	n := s.gen.fill(s.slabs[0])
	s.cur = s.slabs[0][:n]
	s.eof = s.gen.exhausted
	return true
}

func newBatchMerger(streams []*leafStream, cfg config) *batchMerger {
	m := &batchMerger{batch: cfg.batch, streams: streams}
	times := make([]uint64, len(streams))
	done := make([]bool, len(streams))
	pending := 0
	for i, s := range streams {
		if len(s.cur) == 0 {
			done[i] = true
		} else {
			times[i] = s.cur[0].Time
			m.live++
		}
		if !s.eof {
			pending++
		}
	}
	m.lt = newLoserTree(times, done)

	if cfg.workers > 1 && pending > 0 {
		m.jobs = make(chan refillJob, len(streams))
		w := cfg.workers
		if w > pending {
			w = pending
		}
		for i := 0; i < w; i++ {
			go func() {
				for j := range m.jobs {
					n := j.s.gen.fill(j.s.slabs[j.slab])
					j.s.next <- j.s.slabs[j.slab][:n]
				}
			}()
		}
		// Pre-schedule every unfinished stream's next chunk so it is
		// generated concurrently with the merge. A stream that needs a
		// second chunk necessarily had a full first one, so slabs[0] is
		// batch-sized and double-buffering alternates two full slabs.
		for _, s := range streams {
			if s.eof {
				continue
			}
			s.next = make(chan []trace.Request, 1)
			s.slabs[1] = make([]trace.Request, cfg.batch)
			s.filling = 1
			m.jobs <- refillJob{s: s, slab: 1}
		}
	}
	if m.live == 0 {
		m.close()
	}
	return m
}

// commitChunk installs a chunk received from a refill worker as the
// stream's current one and, unless the generator is now drained,
// schedules the next refill into the slab the chunk replaced. Reading
// gen.exhausted is safe: the worker's send on next happens after its
// fill, and no refill is outstanding once the chunk is received.
func (m *batchMerger) commitChunk(s *leafStream, chunk []trace.Request) {
	s.cur, s.pos = chunk, 0
	if s.gen.exhausted {
		s.eof = true
		return
	}
	free := 1 - s.filling
	if s.slabs[free] == nil {
		s.slabs[free] = make([]trace.Request, m.batch)
	}
	s.filling = free
	m.jobs <- refillJob{s: s, slab: free}
}

// Next returns the globally next request.
func (m *batchMerger) Next() (trace.Request, bool) {
	w := m.lt.winner
	if w < 0 || m.lt.done[w] {
		return trace.Request{}, false
	}
	s := m.streams[w]
	req := s.cur[s.pos]
	req.Time += m.shift
	s.pos++
	m.pops++
	if s.pos < len(s.cur) {
		m.lt.times[w] = s.cur[s.pos].Time
	} else if m.refill(s) {
		m.lt.times[w] = s.cur[0].Time
	} else {
		m.lt.eliminate(w)
		m.live--
		if m.live == 0 {
			m.close()
		}
	}
	m.lt.replay(w)
	return req, true
}

// refill obtains the stream's next chunk, returning false when the
// stream is exhausted.
func (m *batchMerger) refill(s *leafStream) bool {
	if s.eof {
		return false
	}
	if m.jobs != nil {
		m.commitChunk(s, <-s.next)
	} else {
		n := s.gen.fill(s.slabs[0])
		s.cur, s.pos = s.slabs[0][:n], 0
		s.eof = s.gen.exhausted
	}
	return len(s.cur) > 0
}

// Delay adds backpressure delay to all not-yet-emitted requests.
func (m *batchMerger) Delay(cycles uint64) {
	m.shift += cycles
	m.delayCalls++
	m.delayCycles += cycles
}

// close releases the refill workers and flushes the merge-loop stats to
// the registry. Safe because no stream has an outstanding refill when
// it is called: drained streams are eof, and Close's contract is that
// the caller has stopped calling Next.
func (m *batchMerger) close() {
	m.finishOnce.Do(func() {
		mRequests.Add(m.pops)
		mDelayCalls.Add(m.delayCalls)
		mDelayCycles.Add(m.delayCycles)
		if m.jobs != nil {
			close(m.jobs)
		}
	})
}

// Close releases the refill workers of an abandoned parallel merger.
func (m *batchMerger) Close() { m.close() }
