package synth

import (
	"container/heap"

	"repro/internal/trace"
)

// Gen is a per-partition request generator: Pending returns the request
// that has been generated but not yet emitted, and Advance generates the
// next one, returning false when the partition is exhausted. Both the
// Mocktails and the STM baseline leaf generators implement Gen, sharing
// the same priority-queue injection process (Fig. 5).
type Gen interface {
	Pending() trace.Request
	Advance() bool
}

// Merger merges the partial orders of many generators into a total order
// by timestamp, implementing trace.Source including backpressure delay.
type Merger struct {
	pq    mergeHeap
	shift uint64
}

// NewMerger builds a merger over the given generators; nil entries are
// skipped.
func NewMerger(gens []Gen) *Merger {
	m := &Merger{}
	m.pq = make(mergeHeap, 0, len(gens))
	for i, g := range gens {
		if g != nil {
			m.pq = append(m.pq, mergeEntry{g: g, order: i})
		}
	}
	heap.Init(&m.pq)
	return m
}

// Next returns the globally next request.
func (m *Merger) Next() (trace.Request, bool) {
	if len(m.pq) == 0 {
		return trace.Request{}, false
	}
	e := &m.pq[0]
	req := e.g.Pending()
	req.Time += m.shift
	if e.g.Advance() {
		heap.Fix(&m.pq, 0)
	} else {
		heap.Pop(&m.pq)
	}
	return req, true
}

// Delay adds backpressure delay to all not-yet-emitted requests.
func (m *Merger) Delay(cycles uint64) { m.shift += cycles }

type mergeEntry struct {
	g     Gen
	order int
}

type mergeHeap []mergeEntry

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	ti, tj := h[i].g.Pending().Time, h[j].g.Pending().Time
	if ti != tj {
		return ti < tj
	}
	return h[i].order < h[j].order
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeEntry)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
