package synth

import (
	"repro/internal/trace"
)

// Gen is a per-partition request generator: Pending returns the request
// that has been generated but not yet emitted, and Advance generates the
// next one, returning false when the partition is exhausted. Both the
// Mocktails and the STM baseline leaf generators implement Gen, sharing
// the same tournament-merge injection process (Fig. 5).
type Gen interface {
	Pending() trace.Request
	Advance() bool
}

// loserTree is a tournament tree merging k players keyed by (exhausted,
// pending time, player index). It replaces the former container/heap
// merger: selecting the winner is a single cached read, and replaying a
// changed key costs exactly ceil(log2 k) comparisons on flat int/uint64
// slices, with no interface boxing and no Pending() virtual calls inside
// the comparator. The comparison key is the lexicographic (time, index)
// pair the heap used, so the emission order is bit-identical.
type loserTree struct {
	// times holds each live player's pending timestamp; done marks
	// exhausted players, which lose to every live one. An exhausted
	// player's time is pinned to MaxUint64 (see eliminate) so the common
	// path of beats is a single key comparison; done breaks the rare
	// exact tie against a live MaxUint64 timestamp.
	times []uint64
	done  []bool
	// tree[n] is the loser of the match at internal node n (tree[0] is
	// unused); leafBase is the power-of-two leaf count, with players
	// k..leafBase-1 being permanent byes (index -1).
	tree     []int
	leafBase int
	// winner is the overall champion: the live player with the smallest
	// (time, index) key, or -1 when there are no players at all.
	winner int
}

func newLoserTree(times []uint64, done []bool) *loserTree {
	t := &loserTree{times: times, done: done}
	for i, d := range done {
		if d {
			t.times[i] = doneKey
		}
	}
	t.build()
	return t
}

// doneKey is the sentinel timestamp of an exhausted player.
const doneKey = ^uint64(0)

// eliminate marks player l exhausted. The caller must follow with
// replay(l) to restore the tournament.
func (t *loserTree) eliminate(l int) {
	t.done[l] = true
	t.times[l] = doneKey
}

// beats reports whether player a wins (sorts before) player b. Byes (-1)
// and exhausted players lose to everything live; ties on time go to the
// lower index, preserving the insertion-order tie-break. Exhausted
// players carry the doneKey sentinel time, so only an exact tie — two
// exhausted players, or a live timestamp equal to doneKey — has to look
// past the key comparison.
func (t *loserTree) beats(a, b int) bool {
	if a < 0 {
		return false
	}
	if b < 0 {
		return true
	}
	if ta, tb := t.times[a], t.times[b]; ta != tb {
		return ta < tb
	}
	if t.done[a] {
		return false
	}
	if t.done[b] {
		return true
	}
	return a < b
}

// build runs the initial tournament in O(k).
func (t *loserTree) build() {
	k := len(t.times)
	if k == 0 {
		t.winner = -1
		return
	}
	lb := 1
	for lb < k {
		lb <<= 1
	}
	t.leafBase = lb
	t.tree = make([]int, lb)
	win := make([]int, 2*lb)
	for i := 0; i < lb; i++ {
		if i < k {
			win[lb+i] = i
		} else {
			win[lb+i] = -1
		}
	}
	for n := lb - 1; n >= 1; n-- {
		a, b := win[2*n], win[2*n+1]
		if t.beats(a, b) {
			win[n], t.tree[n] = a, b
		} else {
			win[n], t.tree[n] = b, a
		}
	}
	t.winner = win[1]
}

// replay re-runs the matches on the path from leaf l to the root after
// l's key changed (it advanced or exhausted), updating the champion.
func (t *loserTree) replay(l int) {
	w := l
	for n := (t.leafBase + l) >> 1; n >= 1; n >>= 1 {
		if t.beats(t.tree[n], w) {
			w, t.tree[n] = t.tree[n], w
		}
	}
	t.winner = w
}

// Merger merges the partial orders of many generators into a total order
// by timestamp, implementing trace.Source including backpressure delay.
type Merger struct {
	lt    *loserTree
	gens  []Gen
	shift uint64
}

// NewMerger builds a merger over the given generators; nil entries are
// skipped.
func NewMerger(gens []Gen) *Merger {
	m := &Merger{}
	for _, g := range gens {
		if g != nil {
			m.gens = append(m.gens, g)
		}
	}
	times := make([]uint64, len(m.gens))
	for i, g := range m.gens {
		times[i] = g.Pending().Time
	}
	m.lt = newLoserTree(times, make([]bool, len(m.gens)))
	return m
}

// Next returns the globally next request.
func (m *Merger) Next() (trace.Request, bool) {
	req, _, ok := m.NextIndexed()
	return req, ok
}

// NextIndexed returns the globally next request together with the index
// of the generator that produced it — the generator's position among
// the non-nil entries passed to NewMerger, in order. Scenario
// composition uses it to attribute each merged request back to its
// device without wrapping every generator.
func (m *Merger) NextIndexed() (trace.Request, int, bool) {
	w := m.lt.winner
	if w < 0 || m.lt.done[w] {
		return trace.Request{}, -1, false
	}
	g := m.gens[w]
	req := g.Pending()
	req.Time += m.shift
	if g.Advance() {
		m.lt.times[w] = g.Pending().Time
	} else {
		m.lt.eliminate(w)
	}
	m.lt.replay(w)
	return req, w, true
}

// Delay adds backpressure delay to all not-yet-emitted requests.
func (m *Merger) Delay(cycles uint64) { m.shift += cycles }
