// Package synth implements Mocktails' synthesis step (§III-C). Every leaf
// of the statistical profile is an independent request generator; a
// priority queue ordered by timestamp merges their partial orders into the
// total order injected into the simulator. Addresses that stray outside a
// leaf's memory region are wrapped (modulo) back inside, and simulator
// backpressure is fed back by delaying all not-yet-emitted requests.
package synth

import (
	"repro/internal/markov"
	"repro/internal/par"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/trace"
)

// DefaultBatch is the default number of requests each leaf pre-generates
// per chunk in batched synthesis. Large enough to amortise the per-chunk
// bookkeeping and give the parallel refill workers meaningful units of
// work, small enough that per-leaf buffering stays a few KiB.
const DefaultBatch = 256

// Option configures a Synthesizer.
type Option func(*config)

type config struct {
	workers int
	batch   int
}

// Workers sets the number of background chunk-refill workers. Values
// <= 1 generate synchronously on the consuming goroutine; any value
// produces a bit-identical stream, because every leaf draws from its own
// forked RNG and the merge consumes committed chunks in a deterministic
// order.
func Workers(n int) Option { return func(c *config) { c.workers = n } }

// Batch sets the per-leaf chunk size (<= 0 selects DefaultBatch). Any
// batch size produces a bit-identical stream.
func Batch(n int) Option { return func(c *config) { c.batch = n } }

// Synthesizer generates a request stream from a profile. It implements
// trace.Source, so it can drive the simulators exactly like a trace
// replayer. A Synthesizer is single-use; a parallel one (Workers > 1)
// that is abandoned before exhaustion should be released with Close.
type Synthesizer struct {
	m *batchMerger
}

// New returns a Synthesizer for the profile, seeded deterministically:
// the same profile and seed always produce the same stream, for any
// Workers and Batch options.
func New(p *profile.Profile, seed uint64, opts ...Option) *Synthesizer {
	cfg := config{workers: 1, batch: DefaultBatch}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.batch <= 0 {
		cfg.batch = DefaultBatch
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	// Fork seeds are drawn serially (the draw order is part of the
	// deterministic stream), but everything downstream of a seed is
	// leaf-local, so generator construction and the first chunk fill —
	// the dominant cost for interval-partitioned profiles with tens of
	// thousands of tiny leaves — fan out across the workers. par.Map
	// commits by index, so the result is identical for any worker count.
	rng := stats.NewRNG(seed)
	seeds := make([]uint64, len(p.Leaves))
	for i := range seeds {
		seeds[i] = rng.Uint64()
	}
	// All eager leaves (full output fits one batch) share one arena,
	// carved into per-leaf regions: a single allocation instead of one
	// per leaf, laid out in leaf (and therefore roughly time) order, so
	// the merge walks memory nearly sequentially.
	offs := make([]int, len(p.Leaves)+1)
	off := 0
	for i := range p.Leaves {
		offs[i] = off
		if c := int(p.Leaves[i].Count); c > 0 && c <= cfg.batch {
			off += c
		}
	}
	offs[len(p.Leaves)] = off
	arena := make([]trace.Request, off)
	all := make([]leafStream, len(p.Leaves))
	par.ForEach(len(p.Leaves), cfg.workers, func(i int) {
		all[i].init(&p.Leaves[i], seeds[i], cfg.batch, arena[offs[i]:offs[i+1]])
	})
	streams := make([]*leafStream, 0, len(all))
	for i := range all {
		if p.Leaves[i].Count > 0 {
			streams = append(streams, &all[i])
		}
	}
	return &Synthesizer{m: newBatchMerger(streams, cfg)}
}

// Next returns the globally next request.
func (s *Synthesizer) Next() (trace.Request, bool) { return s.m.Next() }

// Delay adds backpressure delay to all not-yet-emitted requests.
func (s *Synthesizer) Delay(cycles uint64) { s.m.Delay(cycles) }

// Close releases the refill workers of a parallel Synthesizer that was
// abandoned before exhaustion. It is a no-op for serial synthesizers and
// for streams that were drained to completion, and is safe to call more
// than once.
func (s *Synthesizer) Close() { s.m.Close() }

// leafGen lazily generates the requests of one leaf. pending always holds
// the request that has been generated but not yet emitted. The feature
// generators are self-contained values — a synthesis of an
// interval-partitioned profile creates four per leaf, tens of thousands
// in total, and heap-allocating each dominated setup cost. A leafGen for
// a leaf that fits one batch never needs to outlive construction, so it
// can live entirely on a worker's stack.
type leafGen struct {
	leaf      *profile.Leaf
	dt        markov.Generator
	stride    markov.Generator
	op        markov.Generator
	size      markov.Generator
	emitted   uint32
	pending   trace.Request
	exhausted bool
}

// newLeafGen returns a generator for the leaf, or nil for an empty leaf.
// seed is the value the synthesis RNG drew for this leaf: reseeding with
// it is identical to handing the leaf a Fork of the synthesis RNG.
func newLeafGen(l *profile.Leaf, seed uint64) *leafGen {
	g := &leafGen{}
	if !g.init(l, seed) {
		return nil
	}
	return g
}

// init prepares g in place, returning false for an empty leaf. The four
// feature RNG streams are reseeded in the same order the previous
// implementation forked them, so every generated stream is unchanged.
func (g *leafGen) init(l *profile.Leaf, seed uint64) bool {
	if l.Count == 0 {
		return false
	}
	g.leaf = l
	var r, fork stats.RNG
	r.Reseed(seed)
	fork.Reseed(r.Uint64())
	g.dt.Init(&l.DeltaTime, &fork)
	fork.Reseed(r.Uint64())
	g.stride.Init(&l.Stride, &fork)
	fork.Reseed(r.Uint64())
	g.op.Init(&l.Op, &fork)
	fork.Reseed(r.Uint64())
	g.size.Init(&l.Size, &fork)
	g.pending = trace.Request{
		Time: l.StartTime,
		Addr: l.StartAddr,
		Op:   OpFromValue(g.op.Next()),
		Size: SizeFromValue(g.size.Next()),
	}
	g.emitted = 1
	return true
}

// Pending returns the generated-but-unemitted request.
func (g *leafGen) Pending() trace.Request { return g.pending }

// Advance generates the leaf's next request; it returns false when the
// leaf has produced all Count requests.
func (g *leafGen) Advance() bool {
	if g.emitted >= g.leaf.Count {
		return false
	}
	g.emitted++
	dt := g.dt.Next()
	if dt < 0 {
		dt = 0
	}
	g.pending = trace.Request{
		Time: g.pending.Time + uint64(dt),
		Addr: WrapAddr(int64(g.pending.Addr)+g.stride.Next(), g.leaf.Lo, g.leaf.Hi),
		Op:   OpFromValue(g.op.Next()),
		Size: SizeFromValue(g.size.Next()),
	}
	return true
}

// fill copies up to len(buf) not-yet-emitted requests into buf and
// returns how many it wrote, generating as it goes. A short (or zero)
// count means the leaf is exhausted. Emitting through fill and through
// Pending/Advance produce the same sequence; a leaf must use one or the
// other, not both.
func (g *leafGen) fill(buf []trace.Request) int {
	if g.exhausted {
		return 0
	}
	n := 0
	for {
		buf[n] = g.pending
		n++
		if !g.Advance() {
			g.exhausted = true
			break
		}
		if n == len(buf) {
			break
		}
	}
	return n
}

// WrapAddr folds an address back into the [lo, hi) region, preserving
// spatial locality as described in §III-C ("we modulo the address back
// into the range"). addr is the signed result of adding a stride to a
// previous in-region address; the span and the reduction are computed in
// uint64 so regions anywhere in the 64-bit address space — including
// ones straddling or above 1<<63, where the former int64 span
// overflowed — wrap correctly.
func WrapAddr(addr int64, lo, hi uint64) uint64 {
	if hi <= lo {
		return lo
	}
	span := hi - lo
	ra := umod(addr, span)
	rl := lo % span
	if ra >= rl {
		return lo + (ra - rl)
	}
	return lo + span - (rl - ra)
}

// umod returns the mathematical (always non-negative) a mod m for a
// signed a and an unsigned m.
func umod(a int64, m uint64) uint64 {
	if a >= 0 {
		return uint64(a) % m
	}
	// Negate via two's complement so MinInt64 is handled exactly.
	r := (-uint64(a)) % m
	if r == 0 {
		return 0
	}
	return m - r
}

// OpFromValue converts a modelled feature value back to an operation.
func OpFromValue(v int64) trace.Op {
	if v == int64(trace.Write) {
		return trace.Write
	}
	return trace.Read
}

// SizeFromValue converts a modelled feature value back to a request size,
// clamped to a sane range.
func SizeFromValue(v int64) uint32 {
	if v < 1 {
		return 1
	}
	if v > 1<<20 {
		return 1 << 20
	}
	return uint32(v)
}
