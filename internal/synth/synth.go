// Package synth implements Mocktails' synthesis step (§III-C). Every leaf
// of the statistical profile is an independent request generator; a
// priority queue ordered by timestamp merges their partial orders into the
// total order injected into the simulator. Addresses that stray outside a
// leaf's memory region are wrapped (modulo) back inside, and simulator
// backpressure is fed back by delaying all not-yet-emitted requests.
package synth

import (
	"repro/internal/markov"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Synthesizer generates a request stream from a profile. It implements
// trace.Source, so it can drive the simulators exactly like a trace
// replayer. A Synthesizer is single-use.
type Synthesizer struct {
	*Merger
}

// New returns a Synthesizer for the profile, seeded deterministically:
// the same profile and seed always produce the same stream.
func New(p *profile.Profile, seed uint64) *Synthesizer {
	rng := stats.NewRNG(seed)
	gens := make([]Gen, 0, len(p.Leaves))
	for i := range p.Leaves {
		if g := newLeafGen(&p.Leaves[i], rng.Fork()); g != nil {
			gens = append(gens, g)
		}
	}
	return &Synthesizer{Merger: NewMerger(gens)}
}

// leafGen lazily generates the requests of one leaf. pending always holds
// the request that has been generated but not yet emitted.
type leafGen struct {
	leaf    *profile.Leaf
	dt      *markov.Generator
	stride  *markov.Generator
	op      *markov.Generator
	size    *markov.Generator
	emitted uint32
	pending trace.Request
}

func newLeafGen(l *profile.Leaf, rng *stats.RNG) *leafGen {
	if l.Count == 0 {
		return nil
	}
	g := &leafGen{
		leaf:   l,
		dt:     markov.NewGenerator(&l.DeltaTime, rng.Fork()),
		stride: markov.NewGenerator(&l.Stride, rng.Fork()),
		op:     markov.NewGenerator(&l.Op, rng.Fork()),
		size:   markov.NewGenerator(&l.Size, rng.Fork()),
	}
	g.pending = trace.Request{
		Time: l.StartTime,
		Addr: l.StartAddr,
		Op:   OpFromValue(g.op.Next()),
		Size: SizeFromValue(g.size.Next()),
	}
	g.emitted = 1
	return g
}

// Pending returns the generated-but-unemitted request.
func (g *leafGen) Pending() trace.Request { return g.pending }

// Advance generates the leaf's next request; it returns false when the
// leaf has produced all Count requests.
func (g *leafGen) Advance() bool {
	if g.emitted >= g.leaf.Count {
		return false
	}
	g.emitted++
	dt := g.dt.Next()
	if dt < 0 {
		dt = 0
	}
	g.pending = trace.Request{
		Time: g.pending.Time + uint64(dt),
		Addr: WrapAddr(int64(g.pending.Addr)+g.stride.Next(), g.leaf.Lo, g.leaf.Hi),
		Op:   OpFromValue(g.op.Next()),
		Size: SizeFromValue(g.size.Next()),
	}
	return true
}

// WrapAddr folds an address back into the [lo, hi) region, preserving
// spatial locality as described in §III-C ("we modulo the address back
// into the range").
func WrapAddr(addr int64, lo, hi uint64) uint64 {
	span := int64(hi) - int64(lo)
	if span <= 0 {
		return lo
	}
	rel := (addr - int64(lo)) % span
	if rel < 0 {
		rel += span
	}
	return uint64(int64(lo) + rel)
}

// OpFromValue converts a modelled feature value back to an operation.
func OpFromValue(v int64) trace.Op {
	if v == int64(trace.Write) {
		return trace.Write
	}
	return trace.Read
}

// SizeFromValue converts a modelled feature value back to a request size,
// clamped to a sane range.
func SizeFromValue(v int64) uint32 {
	if v < 1 {
		return 1
	}
	if v > 1<<20 {
		return 1 << 20
	}
	return uint32(v)
}
