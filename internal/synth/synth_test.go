package synth

import (
	"testing"
	"testing/quick"

	"repro/internal/partition"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/trace"
)

func req(t, a uint64, s uint32, op trace.Op) trace.Request {
	return trace.Request{Time: t, Addr: a, Size: s, Op: op}
}

func buildProfile(t *testing.T, tr trace.Trace, cfg partition.Config) *profile.Profile {
	t.Helper()
	p, err := profile.Build("test", tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func workload(seed uint64, n int) trace.Trace {
	rng := stats.NewRNG(seed)
	var tr trace.Trace
	tm := uint64(0)
	for i := 0; i < n; i++ {
		tm += rng.Uint64n(60)
		op := trace.Read
		if rng.Bool(0.4) {
			op = trace.Write
		}
		tr = append(tr, req(tm, uint64((i%5)*8192)+rng.Uint64n(2048), 64, op))
	}
	return tr
}

func TestSynthesisRequestCount(t *testing.T) {
	tr := workload(1, 2000)
	p := buildProfile(t, tr, partition.TwoLevelTS(500))
	got := trace.Collect(New(p, 9), 0)
	if len(got) != len(tr) {
		t.Errorf("synthesised %d requests, want %d", len(got), len(tr))
	}
}

func TestSynthesisTimeOrdered(t *testing.T) {
	tr := workload(2, 2000)
	p := buildProfile(t, tr, partition.TwoLevelTS(500))
	got := trace.Collect(New(p, 9), 0)
	if !got.Sorted() {
		t.Error("synthetic stream not in time order")
	}
}

func TestSynthesisAddressesInLeafBounds(t *testing.T) {
	tr := workload(3, 2000)
	p := buildProfile(t, tr, partition.TwoLevelTS(500))
	lo, hi := tr.AddrRange()
	got := trace.Collect(New(p, 11), 0)
	for _, r := range got {
		if r.Addr < lo || r.Addr >= hi {
			t.Fatalf("address 0x%x outside workload range [0x%x,0x%x)", r.Addr, lo, hi)
		}
	}
}

func TestStrictConvergencePreservesOpCounts(t *testing.T) {
	// The paper: "strict convergence ensures that both McC and STM
	// models produce the exact number of reads and writes".
	tr := workload(4, 3000)
	wantR, wantW := tr.Counts()
	p := buildProfile(t, tr, partition.TwoLevelTS(500))
	got := trace.Collect(New(p, 13), 0)
	gotR, gotW := got.Counts()
	if gotR != wantR || gotW != wantW {
		t.Errorf("op counts = %d/%d, want %d/%d", gotR, gotW, wantR, wantW)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	tr := workload(5, 1000)
	p := buildProfile(t, tr, partition.TwoLevelTS(500))
	a := trace.Collect(New(p, 7), 0)
	b := trace.Collect(New(p, 7), 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestSeedsVary(t *testing.T) {
	tr := workload(6, 1000)
	p := buildProfile(t, tr, partition.TwoLevelTS(500))
	a := trace.Collect(New(p, 1), 0)
	b := trace.Collect(New(p, 2), 0)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical streams")
	}
}

func TestPerfectRecreationOfLinearStream(t *testing.T) {
	// A linear constant-everything stream must be recreated exactly.
	var tr trace.Trace
	for i := 0; i < 200; i++ {
		tr = append(tr, req(uint64(i*10), uint64(1000+i*64), 64, trace.Read))
	}
	p := buildProfile(t, tr, partition.TwoLevelTS(1<<40))
	got := trace.Collect(New(p, 3), 0)
	if len(got) != len(tr) {
		t.Fatalf("got %d requests", len(got))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Fatalf("request %d = %v, want %v", i, got[i], tr[i])
		}
	}
}

func TestDelayShiftsPending(t *testing.T) {
	var tr trace.Trace
	for i := 0; i < 10; i++ {
		tr = append(tr, req(uint64(i*100), uint64(i*64), 64, trace.Read))
	}
	p := buildProfile(t, tr, partition.TwoLevelTS(1<<40))
	s := New(p, 1)
	first, _ := s.Next()
	s.Delay(500)
	second, _ := s.Next()
	if second.Time < first.Time+500 {
		t.Errorf("Delay not applied: first=%d second=%d", first.Time, second.Time)
	}
}

func TestStartTimesPreserved(t *testing.T) {
	// Each leaf starts at its recorded start time, so the first
	// synthetic request matches the first original one.
	tr := workload(7, 500)
	p := buildProfile(t, tr, partition.TwoLevelTS(500))
	got, ok := New(p, 5).Next()
	if !ok {
		t.Fatal("no requests")
	}
	if got.Time != tr[0].Time {
		t.Errorf("first synthetic request at %d, original at %d", got.Time, tr[0].Time)
	}
}

func TestWrapAddr(t *testing.T) {
	cases := []struct {
		addr   int64
		lo, hi uint64
		want   uint64
	}{
		{100, 100, 200, 100},
		{199, 100, 200, 199},
		{200, 100, 200, 100}, // one past -> wraps to lo
		{250, 100, 200, 150}, // wraps forward
		{50, 100, 200, 150},  // below lo wraps backward
		{-50, 100, 200, 150}, // negative wraps ((-150) mod 100 = 50... lo+50+... )
		{100, 100, 100, 100}, // empty span clamps to lo
		{12345, 50, 51, 50},  // single-byte span
	}
	for _, c := range cases {
		if got := WrapAddr(c.addr, c.lo, c.hi); got != c.want {
			t.Errorf("WrapAddr(%d, %d, %d) = %d, want %d", c.addr, c.lo, c.hi, got, c.want)
		}
	}
}

func TestWrapAddrProperty(t *testing.T) {
	check := func(addr int32, lo16, span16 uint16) bool {
		lo := uint64(lo16)
		hi := lo + uint64(span16)
		got := WrapAddr(int64(addr), lo, hi)
		if hi == lo {
			return got == lo
		}
		return got >= lo && got < hi
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestOpFromValue(t *testing.T) {
	if OpFromValue(0) != trace.Read || OpFromValue(1) != trace.Write {
		t.Error("OpFromValue mapping wrong")
	}
	if OpFromValue(99) != trace.Read {
		t.Error("unknown value should default to read")
	}
}

func TestSizeFromValue(t *testing.T) {
	if SizeFromValue(-5) != 1 {
		t.Error("negative size not clamped to 1")
	}
	if SizeFromValue(64) != 64 {
		t.Error("valid size altered")
	}
	if SizeFromValue(1<<30) != 1<<20 {
		t.Error("huge size not clamped")
	}
}

func TestMergerEmpty(t *testing.T) {
	m := NewMerger(nil)
	if _, ok := m.Next(); ok {
		t.Error("empty merger produced a request")
	}
	m2 := NewMerger([]Gen{nil, nil})
	if _, ok := m2.Next(); ok {
		t.Error("all-nil merger produced a request")
	}
}

// fakeGen emits a fixed schedule for Merger unit tests.
type fakeGen struct {
	reqs []trace.Request
	i    int
}

func (g *fakeGen) Pending() trace.Request { return g.reqs[g.i] }
func (g *fakeGen) Advance() bool {
	g.i++
	return g.i < len(g.reqs)
}

func TestMergerTotalOrder(t *testing.T) {
	a := &fakeGen{reqs: []trace.Request{req(1, 0xa, 4, trace.Read), req(4, 0xa, 4, trace.Read)}}
	b := &fakeGen{reqs: []trace.Request{req(2, 0xb, 4, trace.Read), req(3, 0xb, 4, trace.Read)}}
	m := NewMerger([]Gen{a, b})
	var times []uint64
	for {
		r, ok := m.Next()
		if !ok {
			break
		}
		times = append(times, r.Time)
	}
	want := []uint64{1, 2, 3, 4}
	if len(times) != 4 {
		t.Fatalf("got %d requests", len(times))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("times[%d] = %d, want %d", i, times[i], want[i])
		}
	}
}

func TestMergerTieBreakDeterministic(t *testing.T) {
	a := &fakeGen{reqs: []trace.Request{req(5, 0xa, 4, trace.Read)}}
	b := &fakeGen{reqs: []trace.Request{req(5, 0xb, 4, trace.Read)}}
	m := NewMerger([]Gen{a, b})
	first, _ := m.Next()
	if first.Addr != 0xa {
		t.Errorf("tie broken against insertion order: got 0x%x first", first.Addr)
	}
}

func TestSynthesisProperty(t *testing.T) {
	// Property: for any random workload and either hierarchy family,
	// synthesis preserves request count, read/write counts, and the
	// global address range.
	check := func(seed uint64, useReqCount bool) bool {
		tr := workload(seed, 400)
		cfg := partition.TwoLevelTS(700)
		if useReqCount {
			cfg = partition.TwoLevelRequestCount(100, 0)
		}
		p, err := profile.Build("prop", tr, cfg)
		if err != nil {
			return false
		}
		got := trace.Collect(New(p, seed^0xdead), 0)
		if len(got) != len(tr) || !got.Sorted() {
			return false
		}
		wr, ww := tr.Counts()
		gr, gw := got.Counts()
		if wr != gr || ww != gw {
			return false
		}
		lo, hi := tr.AddrRange()
		for _, r := range got {
			if r.Addr < lo || r.Addr >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
