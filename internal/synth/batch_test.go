package synth

import (
	"container/heap"
	"fmt"
	"math"
	"math/big"
	"testing"

	"repro/internal/partition"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/trace"
)

// heapMerger is a frozen copy of the pre-optimisation container/heap
// merger. Together with the per-request Pending/Advance leaf generators
// it reproduces the old synthesis path exactly, so the batched
// loser-tree path can be asserted byte-identical against it.
type heapMerger struct {
	pq    refHeap
	shift uint64
}

type refEntry struct {
	g     Gen
	order int
}

type refHeap []refEntry

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	ti, tj := h[i].g.Pending().Time, h[j].g.Pending().Time
	if ti != tj {
		return ti < tj
	}
	return h[i].order < h[j].order
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(refEntry)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func newHeapMerger(gens []Gen) *heapMerger {
	m := &heapMerger{}
	m.pq = make(refHeap, 0, len(gens))
	for i, g := range gens {
		if g != nil {
			m.pq = append(m.pq, refEntry{g: g, order: i})
		}
	}
	heap.Init(&m.pq)
	return m
}

func (m *heapMerger) Next() (trace.Request, bool) {
	if len(m.pq) == 0 {
		return trace.Request{}, false
	}
	e := &m.pq[0]
	req := e.g.Pending()
	req.Time += m.shift
	if e.g.Advance() {
		heap.Fix(&m.pq, 0)
	} else {
		heap.Pop(&m.pq)
	}
	return req, true
}

func (m *heapMerger) Delay(cycles uint64) { m.shift += cycles }

// refSynth reconstructs the old Synthesizer: per-request leaf generation
// merged through the reference heap.
func refSynth(p *profile.Profile, seed uint64) trace.Source {
	rng := stats.NewRNG(seed)
	gens := make([]Gen, 0, len(p.Leaves))
	for i := range p.Leaves {
		if g := newLeafGen(&p.Leaves[i], rng.Uint64()); g != nil {
			gens = append(gens, g)
		}
	}
	return newHeapMerger(gens)
}

func collectWithDelays(s trace.Source, delayEvery int, delay uint64) trace.Trace {
	var t trace.Trace
	for {
		req, ok := s.Next()
		if !ok {
			return t
		}
		t = append(t, req)
		if delayEvery > 0 && len(t)%delayEvery == 0 {
			s.Delay(delay)
		}
	}
}

func assertSameTrace(t *testing.T, label string, got, want trace.Trace) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d requests, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: request %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestBatchedMatchesOldSynthesisPath asserts the tentpole invariant: the
// rebuilt hot path (cached-total/Fenwick sampling, loser-tree merge,
// batched chunks, parallel refill) emits a stream byte-identical to the
// pre-optimisation heap-based per-request path, for a fixed (profile,
// seed), with and without backpressure delays.
func TestBatchedMatchesOldSynthesisPath(t *testing.T) {
	for _, n := range []int{1, 40, 3000} {
		tr := workload(uint64(n), n)
		p := buildProfile(t, tr, partition.TwoLevelTS(500))
		for _, seed := range []uint64{0, 7, 999} {
			want := trace.Collect(refSynth(p, seed), 0)
			for _, opts := range [][]Option{
				nil,
				{Batch(1)},
				{Batch(7)},
				{Workers(4)},
				{Workers(8), Batch(3)},
				{Workers(2), Batch(1024)},
			} {
				got := trace.Collect(New(p, seed, opts...), 0)
				assertSameTrace(t, fmt.Sprintf("n=%d seed=%d opts=%d", n, seed, len(opts)), got, want)
			}
			// Backpressure delays interleaved identically on both paths.
			wantD := collectWithDelays(refSynth(p, seed), 13, 100)
			gotD := collectWithDelays(New(p, seed, Workers(4), Batch(5)), 13, 100)
			assertSameTrace(t, fmt.Sprintf("delayed n=%d seed=%d", n, seed), gotD, wantD)
		}
	}
}

// TestSerialVsParallelSynthesisIdentical pins the determinism contract
// of the parallel batch-refill stage across worker counts and batch
// sizes.
func TestSerialVsParallelSynthesisIdentical(t *testing.T) {
	tr := workload(21, 4000)
	p := buildProfile(t, tr, partition.TwoLevelTS(400))
	want := trace.Collect(New(p, 5), 0)
	for _, w := range []int{2, 3, 8, 16} {
		for _, b := range []int{1, 2, 64, DefaultBatch} {
			got := trace.Collect(New(p, 5, Workers(w), Batch(b)), 0)
			assertSameTrace(t, fmt.Sprintf("workers=%d batch=%d", w, b), got, want)
		}
	}
}

// TestParallelSynthesizerClose exercises abandoning a parallel stream
// mid-flight; under -race this also proves the refill pipeline shuts
// down without leaking blocked workers.
func TestParallelSynthesizerClose(t *testing.T) {
	tr := workload(22, 3000)
	p := buildProfile(t, tr, partition.TwoLevelTS(400))
	s := New(p, 1, Workers(4), Batch(8))
	for i := 0; i < 100; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatal("stream ended early")
		}
	}
	s.Close()
	s.Close() // idempotent
	// A fully drained parallel stream closes itself; Close stays safe.
	s2 := New(p, 1, Workers(4))
	trace.Collect(s2, 0)
	s2.Close()
}

func TestSynthesizerEmptyProfile(t *testing.T) {
	for _, opts := range [][]Option{nil, {Workers(4)}} {
		s := New(&profile.Profile{}, 1, opts...)
		if _, ok := s.Next(); ok {
			t.Error("empty profile produced a request")
		}
		s.Close()
	}
}

// TestWrapAddrUpperHalf pins the uint64-span fix: regions straddling or
// above 1<<63, where the former int64 span computation overflowed and
// collapsed every address to lo.
func TestWrapAddrUpperHalf(t *testing.T) {
	top := uint64(1) << 63 // a variable, so int64(top+…) conversions wrap at runtime instead of failing constant checks
	cases := []struct {
		name   string
		addr   int64
		lo, hi uint64
		want   uint64
	}{
		{"upper-region in-range", int64(top + 100), top, top + 4096, top + 100},
		{"upper-region wraps", int64(top + 5000), top, top + 4096, top + (5000 % 4096)},
		{"straddles sign bit, below", int64(top - 8), top - 1024, top + 1024, top - 8},
		{"straddles sign bit, above", int64(top + 8), top - 1024, top + 1024, top + 8},
		{"straddles, wraps forward", int64(top + 2048), top - 1024, top + 1024, top},
		{"huge span, negative addr", -1, 0, top + 10, top + 9},
		{"max lo", int64(math.MaxInt64), math.MaxUint64 - 10, math.MaxUint64, math.MaxUint64 - 8},
		{"min addr", math.MinInt64, 100, 200, 192},
	}
	for _, c := range cases {
		if got := WrapAddr(c.addr, c.lo, c.hi); got != c.want {
			t.Errorf("%s: WrapAddr(%d, %#x, %#x) = %#x, want %#x", c.name, c.addr, c.lo, c.hi, got, c.want)
		}
		if got := WrapAddr(c.addr, c.lo, c.hi); got < c.lo || got >= c.hi {
			t.Errorf("%s: result %#x outside [%#x, %#x)", c.name, got, c.lo, c.hi)
		}
	}
}

// TestWrapAddrMatchesBigIntSemantics cross-checks the uint64 reduction
// against arbitrary-precision modular arithmetic over a deterministic
// sample of boundary-heavy inputs.
func TestWrapAddrMatchesBigIntSemantics(t *testing.T) {
	rng := stats.NewRNG(3)
	interesting := []uint64{0, 1, 63, 4096, 1<<62 - 1, 1 << 62, 1<<63 - 1, 1 << 63, 1<<63 + 1, math.MaxUint64 - 4096, math.MaxUint64}
	spans := []uint64{1, 2, 63, 64, 4096, 1 << 32, 1<<63 - 1, 1 << 63}
	for i := 0; i < 5000; i++ {
		lo := interesting[rng.Intn(len(interesting))]
		span := spans[rng.Intn(len(spans))]
		hi := lo + span
		if hi < lo { // overflow: clamp to top of address space
			hi = math.MaxUint64
			span = hi - lo
			if span == 0 {
				continue
			}
		}
		addr := int64(rng.Uint64())
		got := WrapAddr(addr, lo, hi)
		if got < lo || got >= hi {
			t.Fatalf("WrapAddr(%d, %#x, %#x) = %#x out of range", addr, lo, hi, got)
		}
		// want = lo + ((addr - lo) mod span) in exact integer arithmetic.
		rel := new(big.Int).Sub(big.NewInt(addr), new(big.Int).SetUint64(lo))
		rel.Mod(rel, new(big.Int).SetUint64(span)) // big.Mod is Euclidean: result in [0, span)
		want := new(big.Int).Add(new(big.Int).SetUint64(lo), rel)
		if new(big.Int).SetUint64(got).Cmp(want) != 0 {
			t.Fatalf("WrapAddr(%d, %#x, %#x) = %#x, want %s", addr, lo, hi, got, want)
		}
	}
}
