// Package analysis characterises memory traces: volume, mix, spatial
// and temporal behaviour. It provides the numbers behind the paper's
// motivation ("heterogeneous IPs access vastly different volumes of
// data, have different access patterns") and powers the `mocktails
// analyze` CLI and the "characterization" experiment table.
package analysis

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/trace"
)

// Report is a trace characterisation.
type Report struct {
	Requests int
	Reads    int
	Writes   int
	Bytes    uint64
	Duration uint64

	// Footprint64 and Footprint4K are distinct touched blocks.
	Footprint64 int
	Footprint4K int

	// Bandwidth is bytes per kilocycle over the trace duration.
	Bandwidth float64

	// DominantStride is the most frequent address delta and its share
	// of all deltas (0..1).
	DominantStride      int64
	DominantStrideShare float64
	// DistinctStrides is the number of different address deltas.
	DistinctStrides int

	// MeanGap is the mean inter-arrival time; GapCV its coefficient of
	// variation (stddev/mean) — the burstiness measure (CV >> 1 means
	// bursty, ~0 means metronomic).
	MeanGap float64
	GapCV   float64

	// MeanSize is the mean request size in bytes.
	MeanSize float64
}

// Characterize computes a Report for the trace.
func Characterize(t trace.Trace) Report {
	r := Report{Requests: len(t)}
	if len(t) == 0 {
		return r
	}
	r.Reads, r.Writes = t.Counts()
	r.Bytes = t.Bytes()
	r.Duration = t.Duration()
	r.Footprint64 = t.Footprint(64)
	r.Footprint4K = t.Footprint(4096)
	if r.Duration > 0 {
		r.Bandwidth = float64(r.Bytes) / float64(r.Duration) * 1000
	}
	r.MeanSize = float64(r.Bytes) / float64(len(t))

	strides := make(map[int64]int)
	var gaps []float64
	for i := 1; i < len(t); i++ {
		strides[int64(t[i].Addr)-int64(t[i-1].Addr)]++
		gaps = append(gaps, float64(t[i].Time-t[i-1].Time))
	}
	r.DistinctStrides = len(strides)
	best, bestN := int64(0), 0
	for s, n := range strides {
		if n > bestN || (n == bestN && s < best) {
			best, bestN = s, n
		}
	}
	if len(t) > 1 {
		r.DominantStride = best
		r.DominantStrideShare = float64(bestN) / float64(len(t)-1)
	}
	if len(gaps) > 0 {
		var sum float64
		for _, g := range gaps {
			sum += g
		}
		mean := sum / float64(len(gaps))
		var varsum float64
		for _, g := range gaps {
			d := g - mean
			varsum += d * d
		}
		r.MeanGap = mean
		if mean > 0 {
			r.GapCV = math.Sqrt(varsum/float64(len(gaps))) / mean
		}
	}
	return r
}

// ReadShare returns the fraction of requests that are reads.
func (r Report) ReadShare() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Reads) / float64(r.Requests)
}

// TopStrides returns the n most frequent strides with their counts,
// most frequent first (ties broken by smaller stride).
func TopStrides(t trace.Trace, n int) []StrideCount {
	counts := make(map[int64]int)
	for i := 1; i < len(t); i++ {
		counts[int64(t[i].Addr)-int64(t[i-1].Addr)]++
	}
	out := make([]StrideCount, 0, len(counts))
	for s, c := range counts {
		out = append(out, StrideCount{Stride: s, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Stride < out[j].Stride
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// StrideCount is one stride with its occurrence count.
type StrideCount struct {
	Stride int64
	Count  int
}

// String renders the report for terminals.
func (r Report) String() string {
	return fmt.Sprintf(
		"requests=%d (%.0f%% reads) bytes=%d duration=%d cycles\n"+
			"footprint: %d x 64B, %d x 4KB blocks\n"+
			"bandwidth: %.1f B/kcycle, mean size %.1f B\n"+
			"strides: %d distinct, dominant %d (%.0f%% of deltas)\n"+
			"inter-arrival: mean %.1f cycles, CV %.2f",
		r.Requests, r.ReadShare()*100, r.Bytes, r.Duration,
		r.Footprint64, r.Footprint4K,
		r.Bandwidth, r.MeanSize,
		r.DistinctStrides, r.DominantStride, r.DominantStrideShare*100,
		r.MeanGap, r.GapCV)
}
