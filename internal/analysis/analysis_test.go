package analysis

import (
	"math"
	"strings"
	"testing"

	"repro/internal/trace"
)

func req(t, a uint64, s uint32, op trace.Op) trace.Request {
	return trace.Request{Time: t, Addr: a, Size: s, Op: op}
}

func TestCharacterizeEmpty(t *testing.T) {
	r := Characterize(nil)
	if r.Requests != 0 || r.Bandwidth != 0 || r.ReadShare() != 0 {
		t.Errorf("empty report = %+v", r)
	}
}

func TestCharacterizeLinearStream(t *testing.T) {
	var tr trace.Trace
	for i := 0; i < 100; i++ {
		tr = append(tr, req(uint64(i*10), uint64(i*64), 64, trace.Read))
	}
	r := Characterize(tr)
	if r.Requests != 100 || r.Reads != 100 || r.Writes != 0 {
		t.Errorf("counts: %+v", r)
	}
	if r.DominantStride != 64 || r.DominantStrideShare != 1 {
		t.Errorf("stride: %d (%.2f)", r.DominantStride, r.DominantStrideShare)
	}
	if r.DistinctStrides != 1 {
		t.Errorf("DistinctStrides = %d", r.DistinctStrides)
	}
	if r.GapCV != 0 {
		t.Errorf("metronomic stream GapCV = %v, want 0", r.GapCV)
	}
	if r.Footprint64 != 100 {
		t.Errorf("Footprint64 = %d", r.Footprint64)
	}
	if r.MeanSize != 64 {
		t.Errorf("MeanSize = %v", r.MeanSize)
	}
	// 100 x 64B over 990 cycles = 6464 B/kcycle.
	if math.Abs(r.Bandwidth-float64(100*64)/990*1000) > 1e-6 {
		t.Errorf("Bandwidth = %v", r.Bandwidth)
	}
}

func TestCharacterizeBursty(t *testing.T) {
	// Bursts of 10 back-to-back requests separated by huge gaps: CV >> 1.
	var tr trace.Trace
	tm := uint64(0)
	for b := 0; b < 10; b++ {
		for i := 0; i < 10; i++ {
			tm++
			tr = append(tr, req(tm, uint64(len(tr))*64, 64, trace.Read))
		}
		tm += 1_000_000
	}
	r := Characterize(tr)
	if r.GapCV < 1 {
		t.Errorf("bursty trace GapCV = %v, want >> 1", r.GapCV)
	}
}

func TestReadShare(t *testing.T) {
	tr := trace.Trace{
		req(0, 0, 4, trace.Read),
		req(1, 0, 4, trace.Write),
		req(2, 0, 4, trace.Write),
		req(3, 0, 4, trace.Write),
	}
	if got := Characterize(tr).ReadShare(); got != 0.25 {
		t.Errorf("ReadShare = %v", got)
	}
}

func TestTopStrides(t *testing.T) {
	tr := trace.Trace{
		req(0, 0, 4, trace.Read),
		req(1, 64, 4, trace.Read),   // +64
		req(2, 128, 4, trace.Read),  // +64
		req(3, 4096, 4, trace.Read), // +3968
	}
	top := TopStrides(tr, 2)
	if len(top) != 2 {
		t.Fatalf("got %d strides", len(top))
	}
	if top[0].Stride != 64 || top[0].Count != 2 {
		t.Errorf("top stride = %+v", top[0])
	}
	if all := TopStrides(tr, 0); len(all) != 2 {
		t.Errorf("unlimited TopStrides = %d entries", len(all))
	}
	if empty := TopStrides(nil, 5); len(empty) != 0 {
		t.Error("TopStrides(nil) nonempty")
	}
}

func TestReportString(t *testing.T) {
	tr := trace.Trace{req(0, 0, 64, trace.Read), req(10, 64, 64, trace.Write)}
	s := Characterize(tr).String()
	for _, want := range []string{"requests=2", "50% reads", "64B"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestSingleRequestReport(t *testing.T) {
	r := Characterize(trace.Trace{req(5, 100, 32, trace.Write)})
	if r.Requests != 1 || r.DistinctStrides != 0 || r.MeanGap != 0 {
		t.Errorf("single-request report = %+v", r)
	}
}
