package par

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Pool is the streaming counterpart of ForEach: a bounded worker pool
// that accepts tasks one at a time as they are discovered, instead of
// over an index space known up front. Submit blocks once the queue is
// full — that backpressure is what bounds streaming ingestion's fit
// frontier: the producer cannot race ahead of the fitters by more than
// the queue depth.
//
// Determinism follows the same rule as ForEach: tasks must commit their
// results by index (or another order-independent key), so any worker
// count and any scheduling produce identical output. A Pool is
// single-producer: Submit and Close must be called from one goroutine.
type Pool struct {
	ctx     context.Context
	tasks   chan func()
	wg      sync.WaitGroup
	workers int
	start   time.Time
	busyNs  atomic.Int64
	nTasks  uint64

	panicked atomic.Bool
	panicVal atomic.Value
}

// NewPool starts a pool of Workers(workers) goroutines fed by a queue
// of the given depth (negative selects 0, an unbuffered hand-off). When
// one worker is selected, no goroutines are started and Submit runs
// each task inline on the caller — byte-identical to a serial loop,
// with no synchronisation overhead.
//
// ctx cancellation makes Submit return the context's error instead of
// blocking, and makes workers drain remaining queued tasks without
// running them. A nil ctx never cancels.
func NewPool(ctx context.Context, workers, queue int) *Pool {
	workers = Workers(workers)
	if queue < 0 {
		queue = 0
	}
	p := &Pool{ctx: ctx, workers: workers, start: time.Now()}
	mRuns.Inc()
	if workers == 1 {
		return p
	}
	p.tasks = make(chan func(), queue)
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				if p.panicked.Load() || p.canceled() {
					continue // drain without running
				}
				start := time.Now()
				func() {
					defer func() {
						if r := recover(); r != nil {
							// First panic wins; re-raised on the caller's
							// goroutine by Close, mirroring ForEach.
							if p.panicked.CompareAndSwap(false, true) {
								p.panicVal.Store(r)
							}
						}
					}()
					fn()
				}()
				p.busyNs.Add(int64(time.Since(start)))
			}
		}()
	}
	return p
}

func (p *Pool) canceled() bool { return p.ctx != nil && p.ctx.Err() != nil }

// Submit queues fn for execution, blocking while the queue is full. It
// returns the context's error once the pool's ctx is canceled; after
// cancellation submitted tasks are dropped, so a caller committing
// results by index must discard its output on a non-nil Close.
func (p *Pool) Submit(fn func()) error {
	if p.ctx != nil {
		if err := p.ctx.Err(); err != nil {
			return err
		}
	}
	p.nTasks++
	mTasks.Add(1)
	if p.tasks == nil {
		start := time.Now()
		fn() // panics propagate immediately, as in a serial loop
		p.busyNs.Add(int64(time.Since(start)))
		return nil
	}
	var done <-chan struct{}
	if p.ctx != nil {
		done = p.ctx.Done()
	}
	select {
	case p.tasks <- fn:
		return nil
	case <-done:
		return p.ctx.Err()
	}
}

// Close waits for every submitted task to finish, records pool metrics,
// re-raises the first worker panic on the caller's goroutine, and
// returns the context's error if the pool was canceled (meaning some
// tasks may not have run).
func (p *Pool) Close() error {
	if p.tasks != nil {
		close(p.tasks)
		p.wg.Wait()
	}
	wall := time.Since(p.start)
	busy := p.busyNs.Load()
	mBusyNs.Add(uint64(busy))
	mWallNs.Add(uint64(int64(wall) * int64(p.workers)))
	if wall > 0 && p.nTasks > 0 {
		util := float64(busy) / (float64(wall) * float64(p.workers))
		if util > 1 {
			util = 1
		}
		mUtilization.Set(util)
	}
	if p.panicked.Load() {
		panic(p.panicVal.Load())
	}
	if p.ctx != nil {
		return p.ctx.Err()
	}
	return nil
}
