package par

import (
	"errors"
	"io"
	"sync"
)

// ErrClosedPipe is returned by PipeWriter.Write after the reader has
// closed its end.
var ErrClosedPipe = errors.New("par: write on closed pipe")

// pipe is the shared state of a buffered byte pipe: a channel of filled
// chunks plus a done channel the reader closes to unblock a producer
// whose consumer has gone away.
type pipe struct {
	ch   chan []byte
	done chan struct{}

	closeDone sync.Once
	closeCh   sync.Once

	// err is the producer's terminal error. It is written before ch is
	// closed and read only after ch is observed closed, so the channel
	// close orders the accesses.
	err error
}

// PipeWriter is the producing end of a buffered pipe.
type PipeWriter struct {
	p         *pipe
	buf       []byte
	chunkSize int
}

// PipeReader is the consuming end of a buffered pipe.
type PipeReader struct {
	p   *pipe
	cur []byte
}

// NewPipe returns a connected reader/writer pair buffering up to depth
// chunks of chunkSize bytes. Unlike io.Pipe, which rendezvouses every
// Write with a Read, the buffered channel lets the producer run ahead of
// the consumer, so an encoder and a compressor (or a decompressor and a
// parser) genuinely overlap. Close the writer with CloseWithError when
// production ends; close the reader to abandon consumption early.
func NewPipe(chunkSize, depth int) (*PipeReader, *PipeWriter) {
	if chunkSize <= 0 {
		chunkSize = 128 << 10
	}
	if depth <= 0 {
		depth = 4
	}
	p := &pipe{ch: make(chan []byte, depth), done: make(chan struct{})}
	return &PipeReader{p: p}, &PipeWriter{p: p, chunkSize: chunkSize}
}

// Write buffers b, handing completed chunks to the reader. It returns
// ErrClosedPipe if the reader has closed its end.
func (w *PipeWriter) Write(b []byte) (int, error) {
	total := 0
	for len(b) > 0 {
		if w.buf == nil {
			w.buf = make([]byte, 0, w.chunkSize)
		}
		free := w.chunkSize - len(w.buf)
		take := len(b)
		if take > free {
			take = free
		}
		w.buf = append(w.buf, b[:take]...)
		total += take
		b = b[take:]
		if len(w.buf) == w.chunkSize {
			if err := w.flush(); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// flush hands the current chunk to the reader.
func (w *PipeWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	select {
	case w.p.ch <- w.buf:
		w.buf = nil
		return nil
	case <-w.p.done:
		return ErrClosedPipe
	}
}

// CloseWithError flushes buffered bytes and closes the writer; the reader
// sees err (io.EOF when err is nil) after draining. Safe to call once per
// writer; subsequent writes are invalid.
func (w *PipeWriter) CloseWithError(err error) {
	ferr := w.flush()
	w.p.closeCh.Do(func() {
		if err != nil {
			w.p.err = err
		} else if ferr != nil && ferr != ErrClosedPipe {
			w.p.err = ferr
		}
		close(w.p.ch)
	})
}

// Close closes the writer cleanly; equivalent to CloseWithError(nil).
func (w *PipeWriter) Close() error {
	w.CloseWithError(nil)
	return nil
}

// Read returns buffered bytes, blocking for the next chunk when empty.
// After the writer closes, Read drains remaining chunks and then returns
// the writer's error (io.EOF on clean close).
func (r *PipeReader) Read(b []byte) (int, error) {
	for len(r.cur) == 0 {
		chunk, ok := <-r.p.ch
		if !ok {
			if r.p.err != nil {
				return 0, r.p.err
			}
			return 0, io.EOF
		}
		r.cur = chunk
	}
	n := copy(b, r.cur)
	r.cur = r.cur[n:]
	return n, nil
}

// Close releases the reader; a blocked or future producer Write fails
// with ErrClosedPipe instead of hanging. Always close the reader when
// abandoning a pipe before EOF.
func (r *PipeReader) Close() error {
	r.p.closeDone.Do(func() { close(r.p.done) })
	return nil
}
