package par

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunsEverything: every submitted task runs exactly once,
// across worker counts, and results committed by index match a serial
// loop.
func TestPoolRunsEverything(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		const n = 500
		out := make([]int, n)
		p := NewPool(context.Background(), workers, 4)
		for i := 0; i < n; i++ {
			i := i
			if err := p.Submit(func() { out[i] = i * i }); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestPoolSerialInline: a one-worker pool runs tasks on the caller's
// goroutine during Submit, so effects are visible immediately.
func TestPoolSerialInline(t *testing.T) {
	p := NewPool(nil, 1, 8)
	ran := false
	if err := p.Submit(func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("serial pool deferred the task past Submit")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolBackpressure: with all workers busy and the queue full,
// Submit must block until a slot frees.
func TestPoolBackpressure(t *testing.T) {
	release := make(chan struct{})
	p := NewPool(context.Background(), 2, 1)
	var started sync.WaitGroup
	started.Add(2)
	for i := 0; i < 2; i++ {
		p.Submit(func() { started.Done(); <-release })
	}
	started.Wait()
	p.Submit(func() {}) // fills the queue
	blocked := make(chan struct{})
	go func() {
		p.Submit(func() {}) // must block: workers busy, queue full
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("Submit did not block on a full queue")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-blocked:
	case <-time.After(2 * time.Second):
		t.Fatal("Submit never unblocked")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolCancel: after cancellation Submit returns the context error
// (including when it would otherwise block) and Close reports it.
func TestPoolCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	p := NewPool(ctx, 2, 0)
	var ran atomic.Int64
	var started sync.WaitGroup
	started.Add(2)
	for i := 0; i < 2; i++ {
		p.Submit(func() { started.Done(); ran.Add(1); <-release })
	}
	started.Wait()
	errc := make(chan error, 1)
	go func() {
		errc <- p.Submit(func() { ran.Add(1) }) // blocks: unbuffered queue, workers busy
	}()
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("blocked Submit returned %v, want context.Canceled", err)
	}
	if err := p.Submit(func() { ran.Add(1) }); !errors.Is(err, context.Canceled) {
		t.Fatalf("post-cancel Submit returned %v, want context.Canceled", err)
	}
	close(release)
	if err := p.Close(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close returned %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 2 {
		t.Fatalf("%d tasks ran after cancel, want only the 2 in-flight", got)
	}
}

// TestPoolPanic: a worker panic is re-raised on the caller's goroutine
// by Close, matching ForEach semantics.
func TestPoolPanic(t *testing.T) {
	p := NewPool(context.Background(), 4, 2)
	for i := 0; i < 10; i++ {
		i := i
		p.Submit(func() {
			if i == 3 {
				panic("kaboom")
			}
		})
	}
	defer func() {
		if r := recover(); r != "kaboom" {
			t.Fatalf("recovered %v, want kaboom", r)
		}
	}()
	p.Close()
	t.Fatal("Close did not re-raise the worker panic")
}

// TestPoolSerialPanic: a one-worker pool panics at Submit, exactly like
// the serial loop it replaces.
func TestPoolSerialPanic(t *testing.T) {
	p := NewPool(nil, 1, 0)
	defer func() {
		if r := recover(); r != "inline" {
			t.Fatalf("recovered %v, want inline", r)
		}
		p.Close()
	}()
	p.Submit(func() { panic("inline") })
	t.Fatal("inline Submit did not panic")
}

// TestPoolUtilizationGauge: a pool run leaves par.utilization set, the
// invariant the observability CI job asserts.
func TestPoolUtilizationGauge(t *testing.T) {
	p := NewPool(context.Background(), 2, 2)
	for i := 0; i < 8; i++ {
		p.Submit(func() { time.Sleep(time.Millisecond) })
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if mUtilization.Value() <= 0 {
		t.Fatalf("par.utilization = %v after a pool run", mUtilization.Value())
	}
}
