package par

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestForEachCtxNilAndUncanceled(t *testing.T) {
	var ran atomic.Int64
	if err := ForEachCtx(nil, 100, 4, func(i int) { ran.Add(1) }); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
	if ran.Load() != 100 {
		t.Fatalf("nil ctx ran %d of 100", ran.Load())
	}
	ran.Store(0)
	if err := ForEachCtx(context.Background(), 100, 4, func(i int) { ran.Add(1) }); err != nil {
		t.Fatalf("background ctx: %v", err)
	}
	if ran.Load() != 100 {
		t.Fatalf("background ctx ran %d of 100", ran.Load())
	}
}

func TestForEachCtxCancelStopsDispatch(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := ForEachCtx(ctx, 10000, workers, func(i int) {
			if ran.Add(1) == 50 {
				cancel()
			}
		})
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// In-flight items complete, but dispatch stops: far fewer than
		// the full index space runs.
		if n := ran.Load(); n < 50 || n > 50+int64(workers) {
			t.Fatalf("workers=%d: ran %d items after cancel at 50", workers, n)
		}
	}
}

func TestForEachCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	if err := ForEachCtx(ctx, 100, 4, func(i int) { ran.Add(1) }); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("pre-canceled ctx still ran %d items", ran.Load())
	}
}
