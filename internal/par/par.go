// Package par provides the repository's parallelism primitives: a bounded
// worker pool with ordered results (Map, ForEach) and a buffered byte pipe
// (NewPipe) for overlapping I/O with encoding and decoding.
//
// Determinism is the design constraint. Map commits results by index, so a
// caller that fans deterministic per-item work across workers gets output
// identical to a serial loop regardless of the worker count or scheduling.
// Callers keep any randomness item-local (leaf-local RNG forks, per-run
// seeds) and the whole pipeline stays bit-reproducible.
//
// The default worker count is GOMAXPROCS, overridable process-wide with
// the MOCKTAILS_PARALLELISM environment variable and per-call with an
// explicit worker argument (values <= 0 select the default).
package par

import (
	"context"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Pool metrics. Utilization is measured per ForEach run at worker
// granularity (each worker's lifetime versus the pool's wall time), so
// the accounting cost is two clock reads per worker, not per task —
// cheap enough to leave on unconditionally without disturbing the
// determinism or throughput of the fitted pipeline.
var (
	mRuns        = obs.NewCounter("par.runs")
	mTasks       = obs.NewCounter("par.tasks")
	mBusyNs      = obs.NewCounter("par.worker_busy_ns")
	mWallNs      = obs.NewCounter("par.worker_wall_ns")
	mUtilization = obs.NewGauge("par.utilization")
)

// EnvVar is the environment variable that overrides the default worker
// count for the whole process.
const EnvVar = "MOCKTAILS_PARALLELISM"

// Default returns the process-wide default worker count: the value of
// MOCKTAILS_PARALLELISM when set to a positive integer, else GOMAXPROCS.
func Default() int {
	if s := os.Getenv(EnvVar); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Workers normalises a caller-supplied worker count: positive values are
// returned unchanged, anything else selects Default().
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return Default()
}

// Map applies fn to every index in [0, n) using at most workers
// goroutines (<= 0 selects Default()) and returns the results ordered by
// index. Work is distributed dynamically (an atomic counter), so uneven
// item costs balance across workers; results are committed by index, so
// the output is identical to a serial loop.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// ForEach applies fn to every index in [0, n) using at most workers
// goroutines (<= 0 selects Default()). It returns once every call has
// completed. When only one worker is requested (or useful) the loop runs
// on the calling goroutine with no synchronisation overhead.
func ForEach(n, workers int, fn func(i int)) {
	forEach(nil, n, workers, fn)
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx is
// canceled no further indexes are dispatched (in-flight calls run to
// completion, so fn never observes a half-processed item) and the
// context's error is returned. A caller whose output is committed by
// index must discard it on a non-nil return — an arbitrary suffix of
// the index space was skipped. A nil ctx never cancels.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	forEach(ctx, n, workers, fn)
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

func forEach(ctx context.Context, n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	canceled := func() bool { return ctx != nil && ctx.Err() != nil }
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	mRuns.Inc()
	mTasks.Add(uint64(n))
	if workers == 1 {
		start := time.Now()
		for i := 0; i < n; i++ {
			if canceled() {
				break
			}
			fn(i)
		}
		wall := time.Since(start)
		mBusyNs.Add(uint64(wall))
		mWallNs.Add(uint64(wall))
		mUtilization.Set(1)
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Bool
		panicVal atomic.Value
		busyNs   atomic.Int64
	)
	start := time.Now()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			workerStart := time.Now()
			defer func() {
				busyNs.Add(int64(time.Since(workerStart)))
				wg.Done()
			}()
			for !panicked.Load() && !canceled() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							// First panic wins; re-raised on the caller's
							// goroutine so parallel callers see the same
							// recoverable panic a serial loop would.
							if panicked.CompareAndSwap(false, true) {
								panicVal.Store(r)
							}
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	mBusyNs.Add(uint64(busyNs.Load()))
	mWallNs.Add(uint64(int64(wall) * int64(workers)))
	if wall > 0 {
		mUtilization.Set(float64(busyNs.Load()) / (float64(wall) * float64(workers)))
	}
	if panicked.Load() {
		panic(panicVal.Load())
	}
}
