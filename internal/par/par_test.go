package par

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		got := Map(257, workers, func(i int) int { return i * i })
		if len(got) != 257 {
			t.Fatalf("workers=%d: got %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(0, 4, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("Map(0) returned %d results", len(got))
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	const n = 1000
	var visits [n]atomic.Int32
	ForEach(n, 7, func(i int) { visits[i].Add(1) })
	for i := range visits {
		if c := visits[i].Load(); c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if s, ok := r.(string); !ok || s != "boom" {
			t.Fatalf("recovered %v, want \"boom\"", r)
		}
	}()
	ForEach(100, 4, func(i int) {
		if i == 42 {
			panic("boom")
		}
	})
}

func TestWorkersNormalise(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	t.Setenv(EnvVar, "5")
	if got := Workers(0); got != 5 {
		t.Fatalf("Workers(0) with %s=5 = %d", EnvVar, got)
	}
	if got := Default(); got != 5 {
		t.Fatalf("Default() with %s=5 = %d", EnvVar, got)
	}
	t.Setenv(EnvVar, "bogus")
	if got := Default(); got < 1 {
		t.Fatalf("Default() with bogus env = %d", got)
	}
}

func TestPipeRoundTrip(t *testing.T) {
	for _, size := range []int{0, 1, 100, 1 << 10, 1 << 18, 1<<20 + 17} {
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i * 31)
		}
		pr, pw := NewPipe(4096, 2)
		go func() {
			// Write in awkwardly sized slices to exercise chunking.
			b := payload
			for len(b) > 0 {
				n := 1000
				if n > len(b) {
					n = len(b)
				}
				if _, err := pw.Write(b[:n]); err != nil {
					pw.CloseWithError(err)
					return
				}
				b = b[n:]
			}
			pw.Close()
		}()
		got, err := io.ReadAll(pr)
		if err != nil {
			t.Fatalf("size %d: read: %v", size, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("size %d: payload corrupted in transit", size)
		}
	}
}

func TestPipeWriterErrorReachesReader(t *testing.T) {
	pr, pw := NewPipe(16, 1)
	want := errors.New("producer failed")
	go func() {
		pw.Write([]byte("partial"))
		pw.CloseWithError(want)
	}()
	got, err := io.ReadAll(pr)
	if !errors.Is(err, want) {
		t.Fatalf("read error = %v, want %v", err, want)
	}
	if string(got) != "partial" {
		t.Fatalf("read %q before error, want %q", got, "partial")
	}
}

func TestPipeReaderCloseUnblocksWriter(t *testing.T) {
	pr, pw := NewPipe(8, 1)
	errc := make(chan error, 1)
	go func() {
		// Enough writes to fill the chunk buffer and the channel, so the
		// producer must block until the reader goes away.
		var err error
		for i := 0; i < 100 && err == nil; i++ {
			_, err = pw.Write(bytes.Repeat([]byte{byte(i)}, 8))
		}
		errc <- err
	}()
	pr.Close()
	if err := <-errc; !errors.Is(err, ErrClosedPipe) {
		t.Fatalf("writer error = %v, want ErrClosedPipe", err)
	}
}

func BenchmarkMap(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Map(64, workers, func(j int) int {
					s := 0
					for k := 0; k < 10000; k++ {
						s += k ^ j
					}
					return s
				})
			}
		})
	}
}
