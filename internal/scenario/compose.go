package scenario

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/profile"
	"repro/internal/synth"
	"repro/internal/trace"
)

// Composition metrics, shared by the daemon endpoint and the offline CLI.
var (
	mComposed = obs.NewCounter("scenario.composed")
	mDevices  = obs.NewCounter("scenario.devices")
	mRequests = obs.NewCounter("scenario.requests")
)

// Resolver opens the profile with the given content address and returns
// a synthesis view plus a release function. The serve store resolves to
// a pinned (possibly mmap-ed flat) entry; the CLI resolves to files in a
// directory. The release function is called exactly once, when the
// composed stream is closed.
type Resolver func(id string) (profile.View, func(), error)

// Option configures a composition.
type Option func(*config)

type config struct {
	workers int
	ctx     context.Context
}

// Workers sets the parallelism of device synthesis: devices are
// constructed concurrently and each device's leaf generators fan out
// over the same worker count. Any value produces a bit-identical
// stream.
func Workers(n int) Option { return func(c *config) { c.workers = n } }

// Context attaches a context for observability spans. The composed
// stream is identical with or without it.
func Context(ctx context.Context) Option { return func(c *config) { c.ctx = ctx } }

// Stream is a composed scenario: a totally-ordered merge of the
// devices' transformed synthetic streams. It implements trace.Source;
// NextDev additionally reports which device produced each request, for
// per-device replay attribution. Close releases the underlying profiles
// and any parallel synthesis workers; a Stream must be closed even when
// drained.
type Stream struct {
	m      *synth.Merger
	devIdx []int // merger generator index -> spec device index
	total  uint64
	closed bool
	mu     sync.Mutex
	closes []func()
}

// Total returns the exact number of requests the stream will emit,
// known up front so binary output can be streamed with a precomputed
// Content-Length.
func (s *Stream) Total() uint64 { return s.total }

// Next returns the globally next request.
func (s *Stream) Next() (trace.Request, bool) {
	r, _, ok := s.NextDev()
	return r, ok
}

// NextDev returns the globally next request and the index (into the
// spec's Devices) of the device that produced it.
func (s *Stream) NextDev() (trace.Request, int, bool) {
	r, gi, ok := s.m.NextIndexed()
	if !ok {
		return trace.Request{}, -1, false
	}
	return r, s.devIdx[gi], true
}

// Delay adds backpressure delay to all not-yet-emitted requests.
func (s *Stream) Delay(cycles uint64) { s.m.Delay(cycles) }

// Close releases pinned profiles and abandoned synthesis workers. It is
// safe to call more than once.
func (s *Stream) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, f := range s.closes {
		f()
	}
	s.closes = nil
}

// deviceGen adapts one device's synthesizer to synth.Gen, applying the
// device transforms — request cap, time dilation, window remap — before
// the merge sees the request. Dilation scales the offset from the
// device's first timestamp (t' = t0 + (t-t0)·f) and is monotone for any
// valid factor, so each device's stream stays sorted and the merge's
// total order is preserved.
type deviceGen struct {
	src       *synth.Synthesizer
	pending   trace.Request
	remaining uint64 // requests still to emit, including pending
	window    *Window
	dilation  float64
	dilate    bool
	t0        uint64
}

// init pulls the first request and prepares the transform state. It
// returns false when the device emits nothing.
func (g *deviceGen) init(d *Device, src *synth.Synthesizer, count uint64) bool {
	if count == 0 {
		return false
	}
	r, ok := src.Next()
	if !ok {
		return false
	}
	g.src = src
	g.remaining = count
	g.window = d.Window
	g.dilation = d.dilation()
	g.dilate = g.dilation != 1
	g.t0 = r.Time
	g.pending = g.transform(r)
	return true
}

func (g *deviceGen) transform(r trace.Request) trace.Request {
	if g.dilate {
		r.Time = g.t0 + uint64(float64(r.Time-g.t0)*g.dilation)
	}
	r.Addr = g.window.Remap(r.Addr)
	return r
}

// Pending returns the transformed generated-but-unemitted request.
func (g *deviceGen) Pending() trace.Request { return g.pending }

// Advance moves to the device's next request, returning false when the
// cap or the profile is exhausted.
func (g *deviceGen) Advance() bool {
	if g.remaining <= 1 {
		g.remaining = 0
		return false
	}
	r, ok := g.src.Next()
	if !ok {
		g.remaining = 0
		return false
	}
	g.remaining--
	g.pending = g.transform(r)
	return true
}

// Compose opens every device's profile through the resolver,
// synthesizes the devices concurrently, and returns the merged stream.
// The result is a pure function of the spec and the profile contents:
// the same spec produces byte-identical output for any worker count and
// whether the profiles resolve to heap or flat (mmap) representations.
// Requests sharing a timestamp are emitted in ascending device index
// (the spec's Devices order), inheriting trace.Merge's documented
// tie-break.
//
// A single-device spec with no window, dilation 1 and no count cap
// composes to exactly the device profile's plain synthesis stream.
func Compose(spec *Spec, resolve Resolver, opts ...Option) (*Stream, error) {
	cfg := config{workers: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ctx, sp := obs.Start(cfg.ctx, "scenario.compose")
	defer sp.End()

	st := &Stream{}
	// Resolve serially: resolvers may fetch over the network or touch an
	// LRU, and a deterministic resolve order keeps failure modes (which
	// missing profile is reported) stable too.
	views := make([]profile.View, len(spec.Devices))
	for i := range spec.Devices {
		v, release, err := resolve(spec.Devices[i].Profile)
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("scenario: device %d (%s): %w", i, spec.Devices[i].Profile, err)
		}
		views[i] = v
		st.closes = append(st.closes, release)
	}

	// Synthesize the devices concurrently. par.ForEach commits by index,
	// so construction order cannot leak into the output.
	srcs := make([]*synth.Synthesizer, len(spec.Devices))
	counts := make([]uint64, len(spec.Devices))
	par.ForEach(len(spec.Devices), cfg.workers, func(i int) {
		d := &spec.Devices[i]
		counts[i] = uint64(views[i].Requests())
		if d.Count > 0 && d.Count < counts[i] {
			counts[i] = d.Count
		}
		srcs[i] = synth.NewFrom(views[i], d.Seed, synth.Workers(cfg.workers), synth.Context(ctx))
	})
	for _, s := range srcs {
		st.closes = append(st.closes, s.Close)
	}

	gens := make([]synth.Gen, 0, len(spec.Devices))
	for i := range spec.Devices {
		g := &deviceGen{}
		if !g.init(&spec.Devices[i], srcs[i], counts[i]) {
			continue
		}
		gens = append(gens, g)
		st.devIdx = append(st.devIdx, i)
		st.total += counts[i]
	}
	st.m = synth.NewMerger(gens)

	mComposed.Inc()
	mDevices.Add(uint64(len(spec.Devices)))
	mRequests.Add(st.total)
	sp.SetCount("devices", int64(len(spec.Devices)))
	sp.SetCount("requests", int64(st.total))
	return st, nil
}
