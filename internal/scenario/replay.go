package scenario

import (
	"repro/internal/dram"
)

// DeviceReport is one device's share of a replayed scenario: its
// traffic counts and the contention it experienced inside the shared
// memory system (row hits against the interleaved row-buffer state,
// queue depths its bursts observed on arrival, mean request latency).
type DeviceReport struct {
	Name         string  `json:"name"`
	Profile      string  `json:"profile"`
	Requests     uint64  `json:"requests"`
	ReadBursts   uint64  `json:"read_bursts"`
	WriteBursts  uint64  `json:"write_bursts"`
	ReadRowHits  uint64  `json:"read_row_hits"`
	WriteRowHits uint64  `json:"write_row_hits"`
	AvgQueueLen  float64 `json:"avg_queue_len"`
	AvgLatency   float64 `json:"avg_latency_cycles"`
}

// Report is the JSON contention report of a replayed scenario:
// aggregate memory-system statistics plus the per-device breakdown (the
// paper's §VI mixing study).
type Report struct {
	Requests         uint64         `json:"requests"`
	ReadBursts       uint64         `json:"read_bursts"`
	WriteBursts      uint64         `json:"write_bursts"`
	ReadRowHits      uint64         `json:"read_row_hits"`
	WriteRowHits     uint64         `json:"write_row_hits"`
	AvgReadQueueLen  float64        `json:"avg_read_queue_len"`
	AvgWriteQueueLen float64        `json:"avg_write_queue_len"`
	AvgLatency       float64        `json:"avg_latency_cycles"`
	Devices          []DeviceReport `json:"devices"`
}

// Replay drives the composed stream through a fresh crossbar + DRAM
// system with the spec's interconnect latency, feeding backpressure
// into the stream, and returns the aggregate and per-device contention
// report. The per-device numbers are attributed at the moment each
// event happens inside the shared system, so a device's row hits
// reflect the row-buffer state all devices produce together.
func Replay(s *Stream, spec *Spec, cfg dram.Config) Report {
	devs := make([]dram.DeviceStats, len(spec.Devices))
	sys := dram.NewSystem(cfg, spec.XbarLatency)
	for {
		r, di, ok := s.NextDev()
		if !ok {
			break
		}
		if d := sys.InjectTagged(r, &devs[di]); d > 0 {
			s.Delay(d)
		}
	}
	sys.Drain()
	res := sys.Result()

	rep := Report{
		Requests:         res.Requests,
		ReadBursts:       res.ReadBursts(),
		WriteBursts:      res.WriteBursts(),
		ReadRowHits:      res.ReadRowHits(),
		WriteRowHits:     res.WriteRowHits(),
		AvgReadQueueLen:  res.AvgReadQueueLen(),
		AvgWriteQueueLen: res.AvgWriteQueueLen(),
		AvgLatency:       res.AvgLatency,
	}
	for i := range spec.Devices {
		d := &devs[i]
		rep.Devices = append(rep.Devices, DeviceReport{
			Name:         spec.DeviceName(i),
			Profile:      spec.Devices[i].Profile,
			Requests:     d.Requests,
			ReadBursts:   d.ReadBursts,
			WriteBursts:  d.WriteBursts,
			ReadRowHits:  d.ReadRowHits,
			WriteRowHits: d.WriteRowHits,
			AvgQueueLen:  d.AvgQueueLen(),
			AvgLatency:   d.AvgLatency(),
		})
	}
	return rep
}
