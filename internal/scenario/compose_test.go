package scenario

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/trace"
)

// testTrace builds a small deterministic trace whose content varies
// with the seed.
func testTrace(seed uint64, n int) trace.Trace {
	rng := stats.NewRNG(seed)
	tr := make(trace.Trace, 0, n)
	now, addr := uint64(100), uint64(1<<20)
	for i := 0; i < n; i++ {
		now += uint64(rng.Range(1, 100))
		addr += uint64(rng.Range(-4, 8) * 64)
		op := trace.Read
		if rng.Bool(0.3) {
			op = trace.Write
		}
		tr = append(tr, trace.Request{Time: now, Addr: addr, Size: 64, Op: op})
	}
	return tr
}

func testProfile(t testing.TB, seed uint64, n int) *profile.Profile {
	t.Helper()
	p, err := core.Build(fmt.Sprintf("w%d", seed), testTrace(seed, n), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// mapResolver resolves spec IDs out of a map and counts releases so
// tests can assert the stream cleans up after itself.
type mapResolver struct {
	views    map[string]profile.View
	released int
}

func (m *mapResolver) resolve(id string) (profile.View, func(), error) {
	v, ok := m.views[id]
	if !ok {
		return nil, nil, fmt.Errorf("unknown profile %s", id)
	}
	return v, func() { m.released++ }, nil
}

// threeDeviceSpec builds a spec exercising every knob: windows,
// dilation, count caps.
func threeDeviceSpec(t testing.TB) (*Spec, *mapResolver) {
	t.Helper()
	r := &mapResolver{views: map[string]profile.View{
		hexID('a'): testProfile(t, 1, 300),
		hexID('b'): testProfile(t, 2, 300),
		hexID('c'): testProfile(t, 3, 300),
	}}
	spec := &Spec{Devices: []Device{
		{Profile: hexID('a'), Name: "cpu", Window: &Window{Base: 0, Size: 1 << 20}, Seed: 1},
		{Profile: hexID('b'), Name: "gpu", Window: &Window{Base: 1 << 20, Size: 1 << 20}, Dilation: 0.5, Seed: 2},
		{Profile: hexID('c'), Name: "dpu", Window: &Window{Base: 1 << 21, Size: 1 << 20}, Dilation: 2.0, Seed: 3, Count: 150},
	}}
	return spec, r
}

func collect(t testing.TB, s *Stream) trace.Trace {
	t.Helper()
	defer s.Close()
	tr := trace.Collect(s, 0)
	return tr
}

func TestComposeSerialVsParallelByteIdentical(t *testing.T) {
	spec, r := threeDeviceSpec(t)
	var got []trace.Trace
	for _, workers := range []int{1, 2, 8} {
		s, err := Compose(spec, r.resolve, Workers(workers))
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, collect(t, s))
	}
	if !reflect.DeepEqual(got[0], got[1]) || !reflect.DeepEqual(got[0], got[2]) {
		t.Fatal("composed stream differs across worker counts")
	}
	if len(got[0]) != 300+300+150 {
		t.Fatalf("composed %d requests, want 750", len(got[0]))
	}
	if !got[0].Sorted() {
		t.Fatal("composed stream is not time-ordered")
	}
}

func TestComposeHeapVsFlatByteIdentical(t *testing.T) {
	spec, r := threeDeviceSpec(t)
	heap := collect(t, mustCompose(t, spec, r.resolve))

	flatViews := map[string]profile.View{}
	for id, v := range r.views {
		buf, err := profile.MarshalFlat(v.(*profile.Profile))
		if err != nil {
			t.Fatal(err)
		}
		f, err := profile.OpenFlat(buf)
		if err != nil {
			t.Fatal(err)
		}
		flatViews[id] = f
	}
	fr := &mapResolver{views: flatViews}
	flat := collect(t, mustCompose(t, spec, fr.resolve))
	if !reflect.DeepEqual(heap, flat) {
		t.Fatal("flat-view composition differs from heap-view composition")
	}
}

func mustCompose(t testing.TB, spec *Spec, r Resolver, opts ...Option) *Stream {
	t.Helper()
	s, err := Compose(spec, r, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestComposeIdentityMatchesPlainSynth pins the acceptance criterion: a
// single-device, identity-window, dilation-1 scenario is exactly the
// profile's plain synthesis stream.
func TestComposeIdentityMatchesPlainSynth(t *testing.T) {
	p := testProfile(t, 7, 300)
	r := &mapResolver{views: map[string]profile.View{hexID('d'): p}}
	spec := &Spec{Devices: []Device{{Profile: hexID('d'), Seed: 42}}}

	composed := collect(t, mustCompose(t, spec, r.resolve, Workers(4)))
	plain := trace.Collect(synth.New(p, 42), 0)
	if !reflect.DeepEqual(composed, plain) {
		t.Fatal("identity scenario differs from plain synthesis")
	}
	if r.released != 1 {
		t.Fatalf("released %d profiles, want 1", r.released)
	}
}

func TestComposeWindowBounds(t *testing.T) {
	spec, r := threeDeviceSpec(t)
	s := mustCompose(t, spec, r.resolve)
	defer s.Close()
	for {
		req, di, ok := s.NextDev()
		if !ok {
			break
		}
		w := spec.Devices[di].Window
		if req.Addr < w.Base || req.Addr >= w.Base+w.Size {
			t.Fatalf("device %d emitted addr %#x outside window [%#x, %#x)", di, req.Addr, w.Base, w.Base+w.Size)
		}
	}
}

func TestComposeDilationStretchesTime(t *testing.T) {
	p := testProfile(t, 9, 200)
	r := &mapResolver{views: map[string]profile.View{hexID('e'): p}}
	base := &Spec{Devices: []Device{{Profile: hexID('e'), Seed: 1}}}
	dilated := &Spec{Devices: []Device{{Profile: hexID('e'), Seed: 1, Dilation: 2.0}}}

	bt := collect(t, mustCompose(t, base, r.resolve))
	dt := collect(t, mustCompose(t, dilated, r.resolve))
	if len(bt) != len(dt) {
		t.Fatalf("dilation changed request count: %d vs %d", len(bt), len(dt))
	}
	t0 := bt[0].Time
	if dt[0].Time != t0 {
		t.Fatalf("dilation moved the first timestamp: %d vs %d", dt[0].Time, t0)
	}
	for i := range bt {
		want := t0 + (bt[i].Time-t0)*2
		if dt[i].Time != want {
			t.Fatalf("request %d: dilated time %d, want %d", i, dt[i].Time, want)
		}
		if dt[i].Addr != bt[i].Addr || dt[i].Op != bt[i].Op || dt[i].Size != bt[i].Size {
			t.Fatalf("request %d: dilation changed non-time fields", i)
		}
	}
	if !dt.Sorted() {
		t.Fatal("dilated stream is not time-ordered")
	}
}

func TestComposeCountCapAndTotal(t *testing.T) {
	p := testProfile(t, 5, 300)
	r := &mapResolver{views: map[string]profile.View{hexID('f'): p}}
	spec := &Spec{Devices: []Device{{Profile: hexID('f'), Seed: 1, Count: 10}}}
	s := mustCompose(t, spec, r.resolve)
	if s.Total() != 10 {
		t.Fatalf("Total() = %d, want 10", s.Total())
	}
	tr := collect(t, s)
	if len(tr) != 10 {
		t.Fatalf("emitted %d, want 10", len(tr))
	}
	// The capped stream is a prefix of the uncapped one.
	full := collect(t, mustCompose(t, &Spec{Devices: []Device{{Profile: hexID('f'), Seed: 1}}}, r.resolve))
	if !reflect.DeepEqual(tr, full[:10]) {
		t.Fatal("capped stream is not a prefix of the full stream")
	}
	// A cap beyond the profile's request count clamps to it.
	s2 := mustCompose(t, &Spec{Devices: []Device{{Profile: hexID('f'), Seed: 1, Count: 1 << 30}}}, r.resolve)
	if s2.Total() != uint64(p.Requests()) {
		t.Fatalf("over-cap Total() = %d, want %d", s2.Total(), p.Requests())
	}
	s2.Close()
}

func TestComposeUnknownProfileFailsAndReleases(t *testing.T) {
	r := &mapResolver{views: map[string]profile.View{hexID('a'): testProfile(t, 1, 100)}}
	spec := &Spec{Devices: []Device{
		{Profile: hexID('a')},
		{Profile: hexID('0')}, // not in the resolver
	}}
	if _, err := Compose(spec, r.resolve); err == nil {
		t.Fatal("unknown profile composed")
	}
	if r.released != 1 {
		t.Fatalf("released %d pins after failure, want 1", r.released)
	}
}

func TestComposeTieBreakByDeviceIndex(t *testing.T) {
	// Two devices synthesizing the same profile with the same seed
	// produce pairwise-identical timestamps; the tie must always go to
	// the lower device index. Distinct windows make attribution visible.
	p := testProfile(t, 11, 100)
	r := &mapResolver{views: map[string]profile.View{hexID('a'): p}}
	spec := &Spec{Devices: []Device{
		{Profile: hexID('a'), Seed: 3, Window: &Window{Base: 0, Size: 1 << 30}},
		{Profile: hexID('a'), Seed: 3, Window: &Window{Base: 1 << 30, Size: 1 << 30}},
	}}
	s := mustCompose(t, spec, r.resolve)
	defer s.Close()
	last := -1
	lastTime := uint64(0)
	for {
		req, di, ok := s.NextDev()
		if !ok {
			break
		}
		if req.Time == lastTime && last == 1 && di == 0 {
			t.Fatal("tie broke toward the higher device index")
		}
		last, lastTime = di, req.Time
	}
}

func TestReplayReportsPerDevice(t *testing.T) {
	spec, r := threeDeviceSpec(t)
	spec.XbarLatency = 10
	s := mustCompose(t, spec, r.resolve)
	defer s.Close()
	rep := Replay(s, spec, dram.Default())
	if rep.Requests != 750 {
		t.Fatalf("replayed %d requests, want 750", rep.Requests)
	}
	if len(rep.Devices) != 3 {
		t.Fatalf("%d device reports, want 3", len(rep.Devices))
	}
	var sum uint64
	for i, d := range rep.Devices {
		sum += d.Requests
		if d.Name != spec.DeviceName(i) || d.Profile != spec.Devices[i].Profile {
			t.Errorf("device %d labelled %q/%q", i, d.Name, d.Profile)
		}
	}
	if sum != rep.Requests {
		t.Fatalf("per-device requests sum to %d, aggregate is %d", sum, rep.Requests)
	}
	if rep.Devices[2].Requests != 150 {
		t.Fatalf("capped device replayed %d requests, want 150", rep.Devices[2].Requests)
	}
	if rep.AvgLatency <= 0 || rep.ReadBursts == 0 {
		t.Fatalf("degenerate aggregate report: %+v", rep)
	}
}
