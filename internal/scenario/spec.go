// Package scenario composes full-SoC contention scenarios out of stored
// Mocktails profiles (the paper's §VI study, productised). A declarative
// spec names N profiles by content address and gives each device an
// address window, a time-dilation factor, a seed and an optional request
// cap; the composer synthesizes every device, transforms its stream and
// merges them into one totally-ordered trace — byte-identical for a
// given spec regardless of parallelism — which can then be streamed out
// or replayed through the crossbar + DRAM model for per-device
// contention statistics.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Validation bounds. They reject degenerate and attacker-sized specs at
// the parse boundary, long before any profile is opened.
const (
	// MaxDevices bounds the number of devices in one scenario.
	MaxDevices = 64
	// MaxCount bounds a device's request cap; a scenario request is not
	// allowed to promise more output than this per device.
	MaxCount = 1 << 40
	// MinDilation and MaxDilation bound the time-dilation factor.
	MinDilation = 1.0 / (1 << 20)
	// MaxDilation is the largest accepted dilation factor.
	MaxDilation = 1 << 20
)

// Window remaps a device's addresses into [Base, Base+Size): the
// synthesized address is folded in modulo Size. A nil Window in a Device
// means identity — addresses pass through untouched.
type Window struct {
	// Base is the first byte of the device's address window.
	Base uint64 `json:"base"`
	// Size is the window length in bytes; must be > 0.
	Size uint64 `json:"size"`
}

// identity reports whether remapping through w is a no-op for every
// address (only the nil window is treated as identity; an explicit
// window always remaps).
func (w *Window) identity() bool { return w == nil }

// Remap folds addr into the window.
func (w *Window) Remap(addr uint64) uint64 {
	if w == nil {
		return addr
	}
	return w.Base + addr%w.Size
}

// Device is one traffic source of a scenario: a stored profile plus the
// per-device transforms applied to its synthesized stream.
type Device struct {
	// Profile is the content address (64 hex digits) of a stored profile.
	Profile string `json:"profile"`
	// Name labels the device in stats output; defaults to "dev<i>".
	Name string `json:"name,omitempty"`
	// Window, when non-nil, remaps the device's addresses. Non-nil
	// windows of different devices must not overlap.
	Window *Window `json:"window,omitempty"`
	// Dilation stretches (>1) or compresses (<1) the device's
	// inter-request times to model load. 0 or absent means 1 (identity).
	Dilation float64 `json:"dilation,omitempty"`
	// Seed seeds the device's synthesis.
	Seed uint64 `json:"seed,omitempty"`
	// Count caps the device's requests; 0 means the profile's full
	// request count.
	Count uint64 `json:"count,omitempty"`
}

// dilation returns the effective dilation factor (absent/0 → 1).
func (d *Device) dilation() float64 {
	if d.Dilation == 0 {
		return 1
	}
	return d.Dilation
}

// Spec is a declarative scenario: the devices to mix, what to produce,
// and (for stats output) the interconnect latency of the replay.
type Spec struct {
	// Devices are the traffic sources, in tie-break order: requests
	// sharing a timestamp are emitted in ascending device index.
	Devices []Device `json:"devices"`
	// Output selects what a scenario request produces: "bin" (default)
	// or "csv" stream the composed trace; "stats" replays it through the
	// memory system and returns a contention report.
	Output string `json:"output,omitempty"`
	// XbarLatency is the base crossbar latency in cycles for "stats"
	// output.
	XbarLatency uint64 `json:"xbar_latency,omitempty"`
}

// Parse decodes and validates a scenario spec. Unknown fields and
// trailing garbage are errors, so a typo'd knob cannot silently become a
// default.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after spec")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the spec against the documented bounds.
func (s *Spec) Validate() error {
	if len(s.Devices) == 0 {
		return fmt.Errorf("scenario: spec has no devices")
	}
	if len(s.Devices) > MaxDevices {
		return fmt.Errorf("scenario: %d devices exceeds the limit of %d", len(s.Devices), MaxDevices)
	}
	switch s.Output {
	case "", "bin", "csv", "stats":
	default:
		return fmt.Errorf("scenario: unknown output %q (want bin, csv or stats)", s.Output)
	}
	for i := range s.Devices {
		d := &s.Devices[i]
		if !validProfileID(d.Profile) {
			return fmt.Errorf("scenario: device %d: profile %q is not a content address (64 hex digits)", i, d.Profile)
		}
		if len(d.Name) > 64 {
			return fmt.Errorf("scenario: device %d: name longer than 64 bytes", i)
		}
		if dil := d.Dilation; dil != 0 {
			if math.IsNaN(dil) || math.IsInf(dil, 0) {
				return fmt.Errorf("scenario: device %d: dilation must be finite", i)
			}
			if dil < MinDilation || dil > MaxDilation {
				return fmt.Errorf("scenario: device %d: dilation %g outside [%g, %d]", i, dil, MinDilation, MaxDilation)
			}
		}
		if d.Count > MaxCount {
			return fmt.Errorf("scenario: device %d: count %d exceeds the limit of %d", i, d.Count, MaxCount)
		}
		if w := d.Window; w != nil {
			if w.Size == 0 {
				return fmt.Errorf("scenario: device %d: window size must be > 0", i)
			}
			if w.Base > math.MaxUint64-w.Size {
				return fmt.Errorf("scenario: device %d: window end overflows the address space", i)
			}
		}
	}
	return s.checkWindowOverlap()
}

// checkWindowOverlap rejects specs whose explicit windows intersect:
// windows exist to place devices into disjoint regions, and a silent
// overlap would corrupt the contention study it models.
func (s *Spec) checkWindowOverlap() error {
	type span struct {
		lo, hi uint64 // [lo, hi)
		dev    int
	}
	var spans []span
	for i := range s.Devices {
		if w := s.Devices[i].Window; !w.identity() {
			spans = append(spans, span{lo: w.Base, hi: w.Base + w.Size, dev: i})
		}
	}
	sort.Slice(spans, func(a, b int) bool { return spans[a].lo < spans[b].lo })
	for i := 1; i < len(spans); i++ {
		if spans[i].lo < spans[i-1].hi {
			return fmt.Errorf("scenario: device %d window [%#x, %#x) overlaps device %d window [%#x, %#x)",
				spans[i].dev, spans[i].lo, spans[i].hi,
				spans[i-1].dev, spans[i-1].lo, spans[i-1].hi)
		}
	}
	return nil
}

// validProfileID reports whether id is a lowercase-hex content address.
func validProfileID(id string) bool {
	if len(id) != 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// WithSeedOffset returns a deep copy of the spec with every device's
// seed shifted by off. Load generators use it to derive a distinct but
// deterministic spec per request from one base spec.
func (s *Spec) WithSeedOffset(off uint64) *Spec {
	c := *s
	c.Devices = make([]Device, len(s.Devices))
	copy(c.Devices, s.Devices)
	for i := range c.Devices {
		if w := c.Devices[i].Window; w != nil {
			cw := *w
			c.Devices[i].Window = &cw
		}
		c.Devices[i].Seed += off
	}
	return &c
}

// DeviceName returns the display name of device i (its Name, or
// "dev<i>" when unset).
func (s *Spec) DeviceName(i int) string {
	if n := s.Devices[i].Name; n != "" {
		return n
	}
	return fmt.Sprintf("dev%d", i)
}
