package scenario

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// FuzzScenarioSpec throws arbitrary bytes at the spec parser and checks
// that whatever it accepts honours every documented bound — in
// particular that NaN/zero/out-of-range dilations, overlapping windows
// and attacker-sized counts never survive into a validated Spec — and
// that accepted specs survive a marshal/re-parse round trip.
func FuzzScenarioSpec(f *testing.F) {
	id := strings.Repeat("a", 64)
	f.Add([]byte(`{"devices": [{"profile": "` + id + `"}]}`))
	f.Add([]byte(`{"devices": [{"profile": "` + id + `", "window": {"base": 0, "size": 4096}, "dilation": 2.0, "seed": 1, "count": 10}], "output": "stats", "xbar_latency": 20}`))
	f.Add([]byte(`{"devices": [{"profile": "` + id + `", "dilation": 0}]}`))
	f.Add([]byte(`{"devices": [{"profile": "` + id + `", "dilation": 1e999}]}`))
	f.Add([]byte(`{"devices": [{"profile": "` + id + `", "count": 1099511627777}]}`))
	f.Add([]byte(`{"devices": [{"profile": "` + id + `", "window": {"base": 0, "size": 0}}]}`))
	f.Add([]byte(`{"devices": [{"profile": "` + id + `", "window": {"base": 0, "size": 100}}, {"profile": "` + id + `", "window": {"base": 50, "size": 100}}]}`))
	f.Add([]byte(`{"devices": []}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"devices": [{"profile": "` + strings.ToUpper(id) + `"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		if s == nil {
			t.Fatal("Parse returned nil spec with nil error")
		}
		if len(s.Devices) == 0 || len(s.Devices) > MaxDevices {
			t.Fatalf("accepted %d devices", len(s.Devices))
		}
		for i := range s.Devices {
			d := &s.Devices[i]
			if !validProfileID(d.Profile) {
				t.Fatalf("accepted profile id %q", d.Profile)
			}
			if d.Count > MaxCount {
				t.Fatalf("accepted count %d", d.Count)
			}
			dil := d.dilation()
			if math.IsNaN(dil) || math.IsInf(dil, 0) || dil < MinDilation || dil > MaxDilation {
				t.Fatalf("accepted effective dilation %g", dil)
			}
			if w := d.Window; w != nil {
				if w.Size == 0 || w.Base > math.MaxUint64-w.Size {
					t.Fatalf("accepted window %+v", w)
				}
			}
		}
		switch s.Output {
		case "", "bin", "csv", "stats":
		default:
			t.Fatalf("accepted output %q", s.Output)
		}

		// Round trip: an accepted spec must marshal and re-parse to an
		// equally valid spec (the loadgen scenario mode depends on this).
		enc, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		if _, err := Parse(enc); err != nil {
			t.Fatalf("round-tripped spec rejected: %v\nspec: %s", err, enc)
		}
		// WithSeedOffset must preserve validity too.
		if err := s.WithSeedOffset(12345).Validate(); err != nil {
			t.Fatalf("seed offset invalidated spec: %v", err)
		}
	})
}
