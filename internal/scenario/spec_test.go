package scenario

import (
	"math"
	"strings"
	"testing"
)

// hexID returns a syntactically valid content address built from one
// hex digit.
func hexID(c byte) string { return strings.Repeat(string(c), 64) }

func validSpec() *Spec {
	return &Spec{Devices: []Device{{Profile: hexID('a')}}}
}

func TestParseValidSpec(t *testing.T) {
	data := []byte(`{
		"devices": [
			{"profile": "` + hexID('a') + `", "name": "gpu",
			 "window": {"base": 4096, "size": 65536},
			 "dilation": 2.0, "seed": 7, "count": 100},
			{"profile": "` + hexID('b') + `",
			 "window": {"base": 1048576, "size": 65536}}
		],
		"output": "stats",
		"xbar_latency": 20
	}`)
	s, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Devices) != 2 || s.Output != "stats" || s.XbarLatency != 20 {
		t.Fatalf("parsed %+v", s)
	}
	if s.Devices[0].Window.Base != 4096 || s.Devices[0].Dilation != 2.0 {
		t.Fatalf("device 0 parsed %+v", s.Devices[0])
	}
	if s.DeviceName(0) != "gpu" || s.DeviceName(1) != "dev1" {
		t.Fatalf("names %q %q", s.DeviceName(0), s.DeviceName(1))
	}
}

func TestParseRejectsUnknownFieldsAndTrailingData(t *testing.T) {
	if _, err := Parse([]byte(`{"devices": [{"profile": "` + hexID('a') + `"}], "bogus": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := Parse([]byte(`{"devices": [{"profile": "` + hexID('a') + `"}]} trailing`)); err == nil {
		t.Error("trailing data accepted")
	}
}

func TestValidateTable(t *testing.T) {
	win := func(base, size uint64) *Window { return &Window{Base: base, Size: size} }
	cases := []struct {
		name string
		mut  func(*Spec)
		ok   bool
	}{
		{"valid", func(s *Spec) {}, true},
		{"no devices", func(s *Spec) { s.Devices = nil }, false},
		{"too many devices", func(s *Spec) {
			s.Devices = make([]Device, MaxDevices+1)
			for i := range s.Devices {
				s.Devices[i].Profile = hexID('a')
			}
		}, false},
		{"max devices ok", func(s *Spec) {
			s.Devices = make([]Device, MaxDevices)
			for i := range s.Devices {
				s.Devices[i].Profile = hexID('a')
			}
		}, true},
		{"bad output", func(s *Spec) { s.Output = "xml" }, false},
		{"short id", func(s *Spec) { s.Devices[0].Profile = "abc" }, false},
		{"uppercase id", func(s *Spec) { s.Devices[0].Profile = strings.Repeat("A", 64) }, false},
		{"non-hex id", func(s *Spec) { s.Devices[0].Profile = strings.Repeat("g", 64) }, false},
		{"nan dilation", func(s *Spec) { s.Devices[0].Dilation = math.NaN() }, false},
		{"inf dilation", func(s *Spec) { s.Devices[0].Dilation = math.Inf(1) }, false},
		{"tiny dilation", func(s *Spec) { s.Devices[0].Dilation = MinDilation / 2 }, false},
		{"huge dilation", func(s *Spec) { s.Devices[0].Dilation = MaxDilation * 2 }, false},
		{"zero dilation means identity", func(s *Spec) { s.Devices[0].Dilation = 0 }, true},
		{"boundary dilations", func(s *Spec) { s.Devices[0].Dilation = MinDilation }, true},
		{"negative dilation", func(s *Spec) { s.Devices[0].Dilation = -1 }, false},
		{"oversized count", func(s *Spec) { s.Devices[0].Count = MaxCount + 1 }, false},
		{"max count ok", func(s *Spec) { s.Devices[0].Count = MaxCount }, true},
		{"zero window size", func(s *Spec) { s.Devices[0].Window = win(0, 0) }, false},
		{"window overflow", func(s *Spec) { s.Devices[0].Window = win(math.MaxUint64-10, 11) }, false},
		{"window to the edge", func(s *Spec) { s.Devices[0].Window = win(math.MaxUint64-10, 10) }, true},
		{"long name", func(s *Spec) { s.Devices[0].Name = strings.Repeat("x", 65) }, false},
		{"overlapping windows", func(s *Spec) {
			s.Devices = []Device{
				{Profile: hexID('a'), Window: win(0, 100)},
				{Profile: hexID('b'), Window: win(99, 100)},
			}
		}, false},
		{"adjacent windows ok", func(s *Spec) {
			s.Devices = []Device{
				{Profile: hexID('a'), Window: win(0, 100)},
				{Profile: hexID('b'), Window: win(100, 100)},
			}
		}, true},
		{"identity windows never overlap", func(s *Spec) {
			s.Devices = []Device{
				{Profile: hexID('a')},
				{Profile: hexID('b')},
			}
		}, true},
	}
	for _, tc := range cases {
		s := validSpec()
		tc.mut(s)
		err := s.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid spec accepted", tc.name)
		}
	}
}

func TestWindowRemap(t *testing.T) {
	var nilW *Window
	if got := nilW.Remap(12345); got != 12345 {
		t.Errorf("nil window remapped %d", got)
	}
	w := &Window{Base: 1000, Size: 100}
	for _, addr := range []uint64{0, 50, 100, 12345, math.MaxUint64} {
		got := w.Remap(addr)
		if got < 1000 || got >= 1100 {
			t.Errorf("Remap(%d) = %d outside [1000, 1100)", addr, got)
		}
		if got != 1000+addr%100 {
			t.Errorf("Remap(%d) = %d, want %d", addr, got, 1000+addr%100)
		}
	}
}

func TestWithSeedOffsetDeepCopy(t *testing.T) {
	s := &Spec{Devices: []Device{
		{Profile: hexID('a'), Seed: 5, Window: &Window{Base: 0, Size: 10}},
		{Profile: hexID('b'), Seed: 9},
	}}
	c := s.WithSeedOffset(100)
	if c.Devices[0].Seed != 105 || c.Devices[1].Seed != 109 {
		t.Fatalf("seeds %d %d", c.Devices[0].Seed, c.Devices[1].Seed)
	}
	if s.Devices[0].Seed != 5 {
		t.Fatal("offset mutated the original spec")
	}
	c.Devices[0].Window.Base = 999
	if s.Devices[0].Window.Base != 0 {
		t.Fatal("windows are shared between copies")
	}
}
