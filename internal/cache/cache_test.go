package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/trace"
)

func small() Config { return Config{SizeBytes: 512, Assoc: 2, BlockBytes: 64} } // 4 sets

func TestConfigValidate(t *testing.T) {
	if err := small().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{},
		{SizeBytes: 100, Assoc: 2, BlockBytes: 64},
		{SizeBytes: 512, Assoc: 0, BlockBytes: 64},
		{SizeBytes: 512, Assoc: 2, BlockBytes: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSets(t *testing.T) {
	if s := small().Sets(); s != 4 {
		t.Errorf("Sets = %d, want 4", s)
	}
	if s := Default64(32<<10, 4).Sets(); s != 128 {
		t.Errorf("32KB 4-way Sets = %d, want 128", s)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}, nil); err == nil {
		t.Error("New accepted zero config")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic")
		}
	}()
	MustNew(Config{}, nil)
}

func TestHitMissBasics(t *testing.T) {
	c := MustNew(small(), nil)
	c.Access(0, false)
	if s := c.Stats(); s.Accesses != 1 || s.Misses != 1 {
		t.Errorf("first access: %+v", s)
	}
	c.Access(0, false)
	if s := c.Stats(); s.Misses != 1 {
		t.Errorf("repeat access missed: %+v", s)
	}
	c.Access(63, false) // same block
	if s := c.Stats(); s.Misses != 1 {
		t.Errorf("same-block access missed: %+v", s)
	}
	c.Access(64, false) // next block
	if s := c.Stats(); s.Misses != 2 {
		t.Errorf("new block did not miss: %+v", s)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 4 sets, 2-way: blocks 0, 4, 8 all map to set 0.
	c := MustNew(small(), nil)
	set0 := func(i uint64) uint64 { return i * 4 * 64 }
	c.Access(set0(0), false)
	c.Access(set0(1), false)
	c.Access(set0(0), false) // touch 0: now 1 is LRU
	c.Access(set0(2), false) // evicts 1
	if s := c.Stats(); s.Replacements != 1 {
		t.Fatalf("replacements = %d", s.Replacements)
	}
	c.Access(set0(0), false) // still resident
	if s := c.Stats(); s.Misses != 3 {
		t.Errorf("block 0 was evicted out of LRU order: %+v", s)
	}
	c.Access(set0(1), false) // was evicted: miss
	if s := c.Stats(); s.Misses != 4 {
		t.Errorf("block 1 unexpectedly resident: %+v", s)
	}
}

func TestWriteBackOnlyDirtyLines(t *testing.T) {
	c := MustNew(small(), nil)
	set0 := func(i uint64) uint64 { return i * 4 * 64 }
	c.Access(set0(0), true)  // dirty
	c.Access(set0(1), false) // clean
	c.Access(set0(2), false) // evicts 0 (dirty) -> writeback
	c.Access(set0(3), false) // evicts 1 (clean) -> no writeback
	s := c.Stats()
	if s.WriteBacks != 1 {
		t.Errorf("writebacks = %d, want 1", s.WriteBacks)
	}
	if s.Replacements != 2 {
		t.Errorf("replacements = %d, want 2", s.Replacements)
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := MustNew(small(), nil)
	set0 := func(i uint64) uint64 { return i * 4 * 64 }
	c.Access(set0(0), false) // clean allocation
	c.Access(set0(0), true)  // write hit: dirty now
	c.Access(set0(1), false)
	c.Access(set0(2), false) // evicts 0
	if s := c.Stats(); s.WriteBacks != 1 {
		t.Errorf("write hit did not dirty the line: %+v", s)
	}
}

func TestMissRate(t *testing.T) {
	if (Stats{}).MissRate() != 0 {
		t.Error("empty MissRate != 0")
	}
	s := Stats{Accesses: 200, Misses: 50}
	if s.MissRate() != 25 {
		t.Errorf("MissRate = %v", s.MissRate())
	}
}

func TestDirtyEvictionPropagatesToL2(t *testing.T) {
	l2 := MustNew(Config{SizeBytes: 4096, Assoc: 4, BlockBytes: 64}, nil)
	l1 := MustNew(small(), l2)
	set0 := func(i uint64) uint64 { return i * 4 * 64 }
	l1.Access(set0(0), true)
	l1.Access(set0(1), false)
	before := l2.Stats().Accesses
	l1.Access(set0(2), false) // evicts dirty block 0 -> L2 write + L2 fill for block 2
	if l2.Stats().Accesses != before+2 {
		t.Errorf("L2 accesses %d -> %d, want +2 (fill + writeback)", before, l2.Stats().Accesses)
	}
}

func TestL2FilterEffect(t *testing.T) {
	// Re-referencing a block that fell out of L1 but stays in L2: the
	// L2 sees no extra miss.
	h, err := NewHierarchy(small(), Config{SizeBytes: 64 << 10, Assoc: 8, BlockBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	set0 := func(i uint64) uint64 { return i * 4 * 64 }
	h.Request(trace.Request{Addr: set0(0), Size: 4, Op: trace.Read})
	h.Request(trace.Request{Addr: set0(1), Size: 4, Op: trace.Read})
	h.Request(trace.Request{Addr: set0(2), Size: 4, Op: trace.Read}) // evict 0 from L1
	missesBefore := h.L2.Stats().Misses
	h.Request(trace.Request{Addr: set0(0), Size: 4, Op: trace.Read}) // L1 miss, L2 hit
	if h.L2.Stats().Misses != missesBefore {
		t.Error("L2 missed on a block it should hold")
	}
}

func TestHierarchySplitsSpanningRequests(t *testing.T) {
	h, err := NewHierarchy(small(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// 128 bytes starting at 32 spans blocks 0, 1, 2.
	h.Request(trace.Request{Addr: 32, Size: 128, Op: trace.Read})
	if got := h.L1.Stats().Accesses; got != 3 {
		t.Errorf("spanning request made %d accesses, want 3", got)
	}
	if h.FootprintBlocks() != 3 {
		t.Errorf("footprint = %d, want 3", h.FootprintBlocks())
	}
}

func TestHierarchyWithoutL2(t *testing.T) {
	h, err := NewHierarchy(small(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if h.L2 != nil {
		t.Fatal("zero L2 config should omit the level")
	}
	h.Run(trace.Trace{{Addr: 0, Size: 4, Op: trace.Write}})
	if h.L1.Stats().Accesses != 1 {
		t.Error("Run did not access L1")
	}
}

func TestZeroSizeRequest(t *testing.T) {
	h, _ := NewHierarchy(small(), Config{})
	h.Request(trace.Request{Addr: 100, Size: 0, Op: trace.Read})
	if h.L1.Stats().Accesses != 1 {
		t.Errorf("zero-size request made %d accesses", h.L1.Stats().Accesses)
	}
}

func TestFullyAssociativeNoConflicts(t *testing.T) {
	// Cycling over 8 blocks in an 8-way fully-associative 512B cache:
	// only compulsory misses.
	c := MustNew(Config{SizeBytes: 512, Assoc: 8, BlockBytes: 64}, nil)
	for round := 0; round < 10; round++ {
		for b := uint64(0); b < 8; b++ {
			c.Access(b*64, false)
		}
	}
	if s := c.Stats(); s.Misses != 8 {
		t.Errorf("misses = %d, want 8 compulsory", s.Misses)
	}
}

func TestCyclicThrashWithLRU(t *testing.T) {
	// Cycling over 9 blocks in the same 8-way cache: LRU evicts the
	// block just before it is needed — 100% misses.
	c := MustNew(Config{SizeBytes: 512, Assoc: 8, BlockBytes: 64}, nil)
	for round := 0; round < 10; round++ {
		for b := uint64(0); b < 9; b++ {
			c.Access(b*64, false)
		}
	}
	if s := c.Stats(); s.Misses != s.Accesses {
		t.Errorf("misses = %d of %d, want all", s.Misses, s.Accesses)
	}
}

func TestInclusionProperty(t *testing.T) {
	// For a fixed number of sets, a larger associativity can only
	// reduce misses (LRU is a stack algorithm). Verify on random
	// traffic with 4-set caches of growing associativity.
	rng := stats.NewRNG(7)
	addrs := make([]uint64, 5000)
	for i := range addrs {
		addrs[i] = rng.Uint64n(64) * 64
	}
	var prev uint64 = ^uint64(0)
	for _, assoc := range []int{1, 2, 4, 8} {
		c := MustNew(Config{SizeBytes: uint64(assoc) * 4 * 64, Assoc: assoc, BlockBytes: 64}, nil)
		for _, a := range addrs {
			c.Access(a, false)
		}
		m := c.Stats().Misses
		if m > prev {
			t.Errorf("assoc %d misses %d > previous %d (inclusion violated)", assoc, m, prev)
		}
		prev = m
	}
}

func TestCacheProperty(t *testing.T) {
	// Misses never exceed accesses; writebacks never exceed
	// replacements + final dirty lines; stats are deterministic.
	check := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		c := MustNew(small(), nil)
		for i := 0; i < 2000; i++ {
			c.Access(rng.Uint64n(1<<12), rng.Bool(0.4))
		}
		s := c.Stats()
		return s.Misses <= s.Accesses && s.WriteBacks <= s.Replacements
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
