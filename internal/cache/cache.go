// Package cache implements the write-back, write-allocate, set-associative
// cache hierarchy used by the paper's §V evaluation: an L1 of configurable
// size and associativity backed by a 256KB 8-way L2 with 64-byte blocks and
// LRU replacement, simulated in atomic mode (request order matters,
// timestamps do not — matching the paper's gem5 atomic-mode methodology).
package cache

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Policy selects the replacement policy of a cache level. The paper's
// §V uses LRU; FIFO and Random support the replacement-policy
// exploration use case named in §VI.
type Policy int

const (
	// LRU evicts the least recently used line (the default).
	LRU Policy = iota
	// FIFO evicts the oldest-allocated line; hits do not refresh.
	FIFO
	// Random evicts a deterministic-pseudorandomly chosen line.
	Random
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "Random"
	default:
		return "Policy(?)"
	}
}

// Config describes one cache level.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes uint64
	// Assoc is the number of ways per set.
	Assoc int
	// BlockBytes is the cache-line size.
	BlockBytes uint64
	// Policy is the replacement policy; the zero value is LRU.
	Policy Policy
	// Seed drives the Random policy's choices.
	Seed uint64
}

// Validate checks the geometry is consistent.
func (c Config) Validate() error {
	if c.BlockBytes == 0 || c.Assoc <= 0 || c.SizeBytes == 0 {
		return fmt.Errorf("cache: zero field in config %+v", c)
	}
	if c.SizeBytes%(c.BlockBytes*uint64(c.Assoc)) != 0 {
		return fmt.Errorf("cache: size %d not divisible by assoc*block", c.SizeBytes)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() uint64 { return c.SizeBytes / (c.BlockBytes * uint64(c.Assoc)) }

// Stats are the per-level metrics of §V: miss rate, replacements and
// write-backs.
type Stats struct {
	Accesses     uint64
	Misses       uint64
	Replacements uint64
	WriteBacks   uint64
}

// MissRate returns misses/accesses as a percentage.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses) * 100
}

// line is one cache line. Lines within a set are kept in LRU order
// (index 0 = most recently used).
type line struct {
	tag   uint64
	dirty bool
}

// Cache is one level of a write-back, write-allocate cache. Misses and
// dirty evictions propagate to the next level when one is attached.
type Cache struct {
	cfg   Config
	sets  [][]line
	next  *Cache
	rng   *stats.RNG
	stats Stats
}

// New builds a cache level; next may be nil for the last level before
// memory.
func New(cfg Config, next *Cache) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Cache{
		cfg:  cfg,
		sets: make([][]line, cfg.Sets()),
		next: next,
		rng:  stats.NewRNG(cfg.Seed ^ 0x9e3779b97f4a7c15),
	}, nil
}

// MustNew is New but panics on config error; for tests and tables of
// known-good configurations.
func MustNew(cfg Config, next *Cache) *Cache {
	c, err := New(cfg, next)
	if err != nil {
		panic(err)
	}
	return c
}

// Stats returns the accumulated metrics of this level.
func (c *Cache) Stats() Stats { return c.stats }

// Access performs one block-aligned access. addr may be anywhere inside
// the block. write marks the line dirty on hit or on allocation.
func (c *Cache) Access(addr uint64, write bool) {
	c.stats.Accesses++
	block := addr / c.cfg.BlockBytes
	setIdx := block % c.cfg.Sets()
	tag := block / c.cfg.Sets()
	set := c.sets[setIdx]

	for i := range set {
		if set[i].tag == tag {
			// Hit. Under LRU the line moves to the MRU position; FIFO
			// and Random leave the order untouched.
			if c.cfg.Policy == LRU {
				l := set[i]
				copy(set[1:i+1], set[:i])
				l.dirty = l.dirty || write
				set[0] = l
			} else {
				set[i].dirty = set[i].dirty || write
			}
			return
		}
	}

	// Miss: fetch from below, then allocate.
	c.stats.Misses++
	if c.next != nil {
		c.next.Access(addr, false)
	}
	if len(set) >= c.cfg.Assoc {
		// Pick the victim: the back of the list is the LRU (or, since
		// insertion is at the front and FIFO never promotes, the
		// oldest) line; Random picks any way.
		vi := len(set) - 1
		if c.cfg.Policy == Random {
			vi = c.rng.Intn(len(set))
		}
		victim := set[vi]
		set = append(set[:vi], set[vi+1:]...)
		c.stats.Replacements++
		if victim.dirty {
			c.stats.WriteBacks++
			if c.next != nil {
				victimAddr := (victim.tag*c.cfg.Sets() + setIdx) * c.cfg.BlockBytes
				c.next.Access(victimAddr, true)
			}
		}
	}
	set = append(set, line{})
	copy(set[1:], set[:len(set)-1])
	set[0] = line{tag: tag, dirty: write}
	c.sets[setIdx] = set
}

// Hierarchy bundles an L1 and L2 and the request-splitting logic: a
// request is broken into one access per 64-byte block it touches, and the
// distinct-block footprint is tracked at the L1 port.
type Hierarchy struct {
	L1, L2 *Cache
	blocks map[uint64]struct{}
}

// NewHierarchy builds the §V two-level hierarchy. l2 may equal the zero
// Config to omit the L2.
func NewHierarchy(l1, l2 Config) (*Hierarchy, error) {
	var l2c *Cache
	var err error
	if l2.SizeBytes > 0 {
		l2c, err = New(l2, nil)
		if err != nil {
			return nil, err
		}
	}
	l1c, err := New(l1, l2c)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{L1: l1c, L2: l2c, blocks: make(map[uint64]struct{})}, nil
}

// Run replays a trace through the hierarchy in order (atomic mode).
func (h *Hierarchy) Run(t trace.Trace) {
	for _, r := range t {
		h.Request(r)
	}
}

// Request applies one request, splitting it across the blocks it spans.
func (h *Hierarchy) Request(r trace.Request) {
	bs := h.L1.cfg.BlockBytes
	last := r.Addr
	if r.Size > 0 {
		last = r.End() - 1
	}
	for b := r.Addr / bs; b <= last/bs; b++ {
		h.blocks[b] = struct{}{}
		h.L1.Access(b*bs, r.Op == trace.Write)
	}
}

// FootprintBlocks returns the number of distinct L1-block-sized blocks
// touched so far.
func (h *Hierarchy) FootprintBlocks() int { return len(h.blocks) }

// Default64 returns a Config with 64-byte blocks.
func Default64(sizeBytes uint64, assoc int) Config {
	return Config{SizeBytes: sizeBytes, Assoc: assoc, BlockBytes: 64}
}

// L2Default returns the paper's 256KB 8-way L2 configuration.
func L2Default() Config { return Default64(256<<10, 8) }
