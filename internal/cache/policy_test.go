package cache

import (
	"testing"

	"repro/internal/stats"
)

func TestPolicyString(t *testing.T) {
	if LRU.String() != "LRU" || FIFO.String() != "FIFO" || Random.String() != "Random" {
		t.Error("policy names wrong")
	}
	if Policy(42).String() == "" {
		t.Error("unknown policy has empty name")
	}
}

func TestZeroPolicyIsLRU(t *testing.T) {
	var c Config
	if c.Policy != LRU {
		t.Error("zero Policy is not LRU")
	}
}

func TestFIFODoesNotPromoteOnHit(t *testing.T) {
	// 4 sets, 2-way FIFO. Insert A then B; touch A (hit); insert C.
	// FIFO evicts A (oldest) despite the recent hit — LRU would evict B.
	cfg := small()
	cfg.Policy = FIFO
	c := MustNew(cfg, nil)
	set0 := func(i uint64) uint64 { return i * 4 * 64 }
	c.Access(set0(0), false) // A
	c.Access(set0(1), false) // B
	c.Access(set0(0), false) // hit A
	c.Access(set0(2), false) // C: evicts A under FIFO
	missesBefore := c.Stats().Misses
	c.Access(set0(0), false) // A must now miss
	if c.Stats().Misses != missesBefore+1 {
		t.Error("FIFO promoted a line on hit (behaved like LRU)")
	}
}

func TestLRUPromotesOnHit(t *testing.T) {
	cfg := small()
	c := MustNew(cfg, nil)
	set0 := func(i uint64) uint64 { return i * 4 * 64 }
	c.Access(set0(0), false)
	c.Access(set0(1), false)
	c.Access(set0(0), false) // promote A
	c.Access(set0(2), false) // evicts B
	missesBefore := c.Stats().Misses
	c.Access(set0(0), false) // A resident
	if c.Stats().Misses != missesBefore {
		t.Error("LRU evicted the recently used line")
	}
}

func TestRandomPolicyDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) Stats {
		cfg := small()
		cfg.Policy = Random
		cfg.Seed = seed
		c := MustNew(cfg, nil)
		rng := stats.NewRNG(99)
		for i := 0; i < 5000; i++ {
			c.Access(rng.Uint64n(1<<12), rng.Bool(0.3))
		}
		return c.Stats()
	}
	if run(1) != run(1) {
		t.Error("same seed produced different stats")
	}
	if run(1) == run(2) {
		t.Error("different seeds produced identical stats (suspicious)")
	}
}

func TestFIFOThrashesCyclicLikeLRU(t *testing.T) {
	// Cyclic over assoc+1 blocks: both LRU and FIFO miss every access
	// after warm-up.
	for _, pol := range []Policy{LRU, FIFO} {
		cfg := Config{SizeBytes: 512, Assoc: 8, BlockBytes: 64, Policy: pol}
		c := MustNew(cfg, nil)
		for round := 0; round < 10; round++ {
			for b := uint64(0); b < 9; b++ {
				c.Access(b*64, false)
			}
		}
		if s := c.Stats(); s.Misses != s.Accesses {
			t.Errorf("%v: misses %d of %d, want all", pol, s.Misses, s.Accesses)
		}
	}
}

func TestRandomBeatsLRUOnCyclicThrash(t *testing.T) {
	// The classic result: on a cyclic pattern slightly larger than the
	// cache, Random keeps some lines alive while LRU misses everything.
	lru := MustNew(Config{SizeBytes: 512, Assoc: 8, BlockBytes: 64}, nil)
	rnd := MustNew(Config{SizeBytes: 512, Assoc: 8, BlockBytes: 64, Policy: Random, Seed: 3}, nil)
	for round := 0; round < 50; round++ {
		for b := uint64(0); b < 10; b++ {
			lru.Access(b*64, false)
			rnd.Access(b*64, false)
		}
	}
	if rnd.Stats().Misses >= lru.Stats().Misses {
		t.Errorf("Random (%d misses) not better than LRU (%d) on cyclic thrash",
			rnd.Stats().Misses, lru.Stats().Misses)
	}
}
