// Package privacy implements the obfuscation extension sketched in the
// paper's §VI: before a Mocktails profile leaves the vendor, Laplace
// noise calibrated by a privacy budget epsilon is added to every Markov
// transition count (the profile's only frequency information), in the
// style of differential privacy. Lower epsilon means more noise: more
// protection of the exact execution frequencies, less synthesis fidelity.
// The "privacy" ablation experiment quantifies that trade-off.
package privacy

import (
	"math"

	"repro/internal/markov"
	"repro/internal/profile"
	"repro/internal/stats"
)

// Noise returns a deep copy of the profile whose Markov transition
// counts carry Laplace(1/epsilon) noise (rounded, clamped to >= 0, with
// zeroed edges pruned and empty rows dropped). Constant models and leaf
// bookkeeping (start time, address range, request count) are unchanged:
// they describe a single value, not a frequency. epsilon must be > 0.
func Noise(p *profile.Profile, epsilon float64, seed uint64) *profile.Profile {
	if epsilon <= 0 {
		panic("privacy: epsilon must be positive")
	}
	rng := stats.NewRNG(seed)
	out := &profile.Profile{
		Name:   p.Name,
		Config: p.Config,
		Leaves: make([]profile.Leaf, len(p.Leaves)),
	}
	for i := range p.Leaves {
		l := p.Leaves[i]
		l.DeltaTime = noiseModel(l.DeltaTime, epsilon, rng)
		l.Stride = noiseModel(l.Stride, epsilon, rng)
		l.Op = noiseModel(l.Op, epsilon, rng)
		l.Size = noiseModel(l.Size, epsilon, rng)
		out.Leaves[i] = l
	}
	return out
}

// noiseModel perturbs one McC model. A Markov model whose every row
// noises away entirely degenerates to a constant on its initial value.
func noiseModel(m markov.Model, epsilon float64, rng *stats.RNG) markov.Model {
	if m.Constant {
		return m
	}
	var rows []markov.Row
	for i := range m.From {
		var edges []markov.Edge
		for j := m.RowOff[i]; j < m.RowOff[i+1]; j++ {
			n := int64(m.N[j]) + int64(math.Round(laplace(rng, 1/epsilon)))
			if n > 0 {
				edges = append(edges, markov.Edge{To: m.To[j], N: uint32(n)})
			}
		}
		if len(edges) > 0 {
			rows = append(rows, markov.Row{From: m.From[i], Edges: edges})
		}
	}
	if len(rows) == 0 {
		return markov.Model{Constant: true, Value: m.Initial, Initial: m.Initial}
	}
	return markov.FromRows(m.Initial, rows)
}

// laplace draws from the Laplace distribution with mean 0 and scale b
// via inverse transform sampling.
func laplace(rng *stats.RNG, b float64) float64 {
	u := rng.Float64() - 0.5
	if u == 0 {
		return 0
	}
	sign := 1.0
	if u < 0 {
		sign = -1.0
		u = -u
	}
	return -sign * b * math.Log(1-2*u)
}
