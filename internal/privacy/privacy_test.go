package privacy

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/trace"
)

func workload(seed uint64, n int) trace.Trace {
	rng := stats.NewRNG(seed)
	var tr trace.Trace
	tm := uint64(0)
	for i := 0; i < n; i++ {
		tm += rng.Uint64n(50)
		op := trace.Read
		if rng.Bool(0.4) {
			op = trace.Write
		}
		// Offsets within each region make the stride models real Markov
		// chains rather than constants.
		tr = append(tr, trace.Request{Time: tm, Addr: uint64((i%6)*16384) + rng.Uint64n(512)&^7, Size: 64, Op: op})
	}
	return tr
}

func build(t *testing.T, seed uint64) *profile.Profile {
	t.Helper()
	p, err := core.Build("w", workload(seed, 3000), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNoisePanicsOnBadEpsilon(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("epsilon 0 did not panic")
		}
	}()
	Noise(build(t, 1), 0, 1)
}

func TestNoiseLeavesOriginalUntouched(t *testing.T) {
	p := build(t, 2)
	before := p.Stats()
	Noise(p, 0.5, 1)
	if p.Stats() != before {
		t.Error("Noise mutated the input profile")
	}
}

func TestNoisePreservesStructure(t *testing.T) {
	p := build(t, 3)
	np := Noise(p, 1.0, 2)
	if len(np.Leaves) != len(p.Leaves) {
		t.Fatal("leaf count changed")
	}
	for i := range p.Leaves {
		a, b := &p.Leaves[i], &np.Leaves[i]
		if a.StartTime != b.StartTime || a.StartAddr != b.StartAddr ||
			a.Lo != b.Lo || a.Hi != b.Hi || a.Count != b.Count {
			t.Fatalf("leaf %d bookkeeping changed", i)
		}
	}
}

func TestNoiseChangesCounts(t *testing.T) {
	p := build(t, 4)
	np := Noise(p, 0.2, 3) // strong noise
	changed := false
	for i := range p.Leaves {
		a, b := p.Leaves[i].Stride, np.Leaves[i].Stride
		if a.Constant || b.Constant {
			continue
		}
		if a.Transitions() != b.Transitions() {
			changed = true
		}
	}
	if !changed {
		t.Error("strong noise left every transition count intact")
	}
}

func TestNoiseDeterministicPerSeed(t *testing.T) {
	p := build(t, 5)
	a := Noise(p, 0.5, 7)
	b := Noise(p, 0.5, 7)
	if a.Stats() != b.Stats() {
		t.Error("same seed gave different noised profiles")
	}
}

func TestNoisedProfileStillSynthesizes(t *testing.T) {
	p := build(t, 6)
	np := Noise(p, 0.5, 9)
	got := trace.Collect(core.Synthesize(np, 1), 0)
	if len(got) != p.Requests() {
		t.Errorf("noised profile synthesised %d requests, want %d", len(got), p.Requests())
	}
	if !got.Sorted() {
		t.Error("noised synthesis unsorted")
	}
}

func TestWeakNoiseIsGentler(t *testing.T) {
	// Higher epsilon (weaker noise) should perturb total transition
	// counts less than lower epsilon, on average.
	p := build(t, 7)
	perturbation := func(np *profile.Profile) float64 {
		var d float64
		for i := range p.Leaves {
			a, b := p.Leaves[i].Stride, np.Leaves[i].Stride
			d += math.Abs(float64(a.Transitions() - b.Transitions()))
		}
		return d
	}
	weak := perturbation(Noise(p, 10, 11))
	strong := perturbation(Noise(p, 0.05, 11))
	if weak >= strong {
		t.Errorf("epsilon 10 perturbed more (%v) than epsilon 0.05 (%v)", weak, strong)
	}
}

func TestLaplaceSymmetricZeroMean(t *testing.T) {
	rng := stats.NewRNG(13)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += laplace(rng, 2)
	}
	if mean := sum / n; math.Abs(mean) > 0.05 {
		t.Errorf("laplace mean = %v, want ~0", mean)
	}
}

func TestLaplaceScale(t *testing.T) {
	rng := stats.NewRNG(17)
	var absSum float64
	const n = 200000
	for i := 0; i < n; i++ {
		absSum += math.Abs(laplace(rng, 3))
	}
	// E|X| = b for Laplace(0, b).
	if m := absSum / n; math.Abs(m-3) > 0.1 {
		t.Errorf("laplace E|X| = %v, want ~3", m)
	}
}

func TestFullyNoisedRowDegeneratesToConstant(t *testing.T) {
	p := build(t, 8)
	// Absurdly strong noise: many rows vanish; model must stay usable.
	np := Noise(p, 0.001, 19)
	got := trace.Collect(core.Synthesize(np, 1), 0)
	if len(got) != p.Requests() {
		t.Errorf("synthesised %d, want %d", len(got), p.Requests())
	}
}
