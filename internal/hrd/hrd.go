// Package hrd implements the HRD baseline (Maeda et al., "Fast and
// Accurate Exploration of Multi-level Caches Using Hierarchical Reuse
// Distance", HPCA 2017) used in the paper's §V comparison. HRD models a
// workload with reuse-distance histograms at two block granularities —
// 64 B first and, for cold 64-B misses, 4 KB — plus a multi-state
// operation model with explicit clean/dirty states. Matching the original
// work (and the paper's §V methodology), HRD does not divide requests into
// temporal phases.
package hrd

import (
	"sort"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Fine and Coarse are the two modelling granularities.
const (
	Fine   = 64
	Coarse = 4096
)

// Model is a fitted HRD profile.
type Model struct {
	// Requests is the number of requests to synthesise.
	Requests int
	// Dist64 histograms reuse distances at 64-B granularity; Cold64
	// counts first-touch accesses that fall through to the 4-KB level.
	Dist64 map[int]uint32
	Cold64 uint32
	// Dist4K histograms reuse distances at 4-KB granularity for the
	// cold 64-B accesses; Cold4K counts first touches of new regions.
	Dist4K map[int]uint32
	Cold4K uint32
	// Regions lists the 4-KB region numbers in first-touch order;
	// synthesis replays them so that set-index structure (and with it
	// conflict behaviour) survives the model.
	Regions []uint64
	// Op model: writes and accesses conditioned on the block's state
	// (clean or dirty at 64-B granularity).
	CleanWrites, CleanAccesses uint32
	DirtyWrites, DirtyAccesses uint32
	// Sizes is the global request-size histogram (drawn i.i.d.).
	Sizes map[uint32]uint32
}

// Fit builds an HRD model from a trace. Only the request order matters;
// timestamps are ignored (atomic-mode methodology).
func Fit(t trace.Trace) *Model {
	m := &Model{
		Requests: len(t),
		Dist64:   make(map[int]uint32),
		Dist4K:   make(map[int]uint32),
		Sizes:    make(map[uint32]uint32),
	}
	fine := newDistanceTracker(len(t))
	coarse := newDistanceTracker(len(t))
	dirty := make(map[uint64]bool)
	for _, r := range t {
		m.Sizes[r.Size]++
		b64 := r.Addr / Fine
		b4k := r.Addr / Coarse
		// The coarse level models only the accesses that are cold at the
		// fine level, exactly mirroring how synthesis replays it.
		d := fine.access(b64)
		if d >= 0 {
			m.Dist64[d]++
		} else {
			m.Cold64++
			d2 := coarse.access(b4k)
			if d2 >= 0 {
				m.Dist4K[d2]++
			} else {
				m.Cold4K++
				m.Regions = append(m.Regions, b4k)
			}
		}
		if dirty[b64] {
			m.DirtyAccesses++
			if r.Op == trace.Write {
				m.DirtyWrites++
			}
		} else {
			m.CleanAccesses++
			if r.Op == trace.Write {
				m.CleanWrites++
			}
		}
		if r.Op == trace.Write {
			dirty[b64] = true
		}
	}
	return m
}

// distanceTracker computes LRU stack (reuse) distances in O(log n) per
// access with a Fenwick tree over access positions (the classic
// Bennett–Kruskal algorithm). access returns the number of distinct
// blocks touched since the block's previous access, or -1 on first touch.
type distanceTracker struct {
	bit     []int
	vals    []int // point values, kept so growth can rebuild the tree
	lastPos map[uint64]int
	pos     int
}

func newDistanceTracker(capHint int) *distanceTracker {
	if capHint < 16 {
		capHint = 16
	}
	return &distanceTracker{
		bit:     make([]int, capHint+2),
		vals:    make([]int, capHint+2),
		lastPos: make(map[uint64]int, capHint/4+1),
	}
}

// grow rebuilds the Fenwick tree at double capacity. A plain copy would
// be wrong: updates near the old boundary never propagated to ancestor
// indices that did not exist yet.
func (dt *distanceTracker) grow(n int) {
	if n < len(dt.bit) {
		return
	}
	size := len(dt.bit) * 2
	for size <= n {
		size *= 2
	}
	dt.bit = make([]int, size)
	nv := make([]int, size)
	copy(nv, dt.vals)
	dt.vals = nv
	for i, v := range dt.vals {
		if v != 0 {
			dt.addRaw(i, v)
		}
	}
}

func (dt *distanceTracker) addRaw(i, v int) {
	for ; i < len(dt.bit); i += i & (-i) {
		dt.bit[i] += v
	}
}

func (dt *distanceTracker) add(i, v int) {
	dt.vals[i] += v
	dt.addRaw(i, v)
}

func (dt *distanceTracker) sum(i int) int {
	s := 0
	for ; i > 0; i -= i & (-i) {
		s += dt.bit[i]
	}
	return s
}

func (dt *distanceTracker) access(block uint64) int {
	dt.pos++
	dt.grow(dt.pos + 1)
	last, seen := dt.lastPos[block]
	dist := -1
	if seen {
		dist = dt.sum(dt.pos-1) - dt.sum(last)
		dt.add(last, -1)
	}
	dt.add(dt.pos, 1)
	dt.lastPos[block] = dt.pos
	return dist
}

// Synthesize regenerates a trace of m.Requests requests. Reuse distances
// are drawn with strict convergence (histogram counts are consumed), the
// LRU stacks are replayed in reverse, and operations follow the
// clean/dirty state model.
func Synthesize(m *Model, seed uint64) trace.Trace {
	rng := stats.NewRNG(seed)
	g := &generator{
		m:       m,
		rng:     rng,
		d64:     newDrawer(m.Dist64, m.Cold64, rng.Fork()),
		d4k:     newDrawer(m.Dist4K, m.Cold4K, rng.Fork()),
		sizes:   newSizeDrawer(m.Sizes, rng.Fork()),
		stack64: newLRUStack(rng.Uint64()),
		stack4k: newLRUStack(rng.Uint64()),
		used:    make(map[uint64]uint64),
		dirty:   make(map[uint64]bool),
		cw:      m.CleanWrites,
		ca:      m.CleanAccesses,
		dw:      m.DirtyWrites,
		da:      m.DirtyAccesses,
	}
	for _, r := range m.Regions {
		if r >= g.nextReg {
			g.nextReg = r + 1
		}
	}
	out := make(trace.Trace, 0, m.Requests)
	for i := 0; i < m.Requests; i++ {
		out = append(out, g.next(uint64(i)))
	}
	return out
}

type generator struct {
	m     *Model
	rng   *stats.RNG
	d64   *drawer
	d4k   *drawer
	sizes *sizeDrawer

	stack64   *lruStack
	stack4k   *lruStack
	used      map[uint64]uint64 // region -> next unused 64B slot index
	regionIdx int               // next training region to replay
	nextReg   uint64            // fresh regions past the training footprint
	dirty     map[uint64]bool

	cw, ca, dw, da uint32
}

func (g *generator) next(t uint64) trace.Request {
	var block uint64
	if d, cold := g.d64.draw(); !cold {
		block = g.stack64.promote(d)
	} else {
		var region uint64
		if d2, cold2 := g.d4k.draw(); !cold2 {
			region = g.stack4k.promote(d2)
		} else {
			region = g.coldRegion()
			g.stack4k.insertFront(region)
		}
		block = g.newBlockIn(region)
		g.stack64.insertFront(block)
	}

	op := g.nextOp(block)
	if op == trace.Write {
		g.dirty[block] = true
	}
	return trace.Request{Time: t, Addr: block * Fine, Size: g.sizes.draw(), Op: op}
}

// coldRegion returns the next never-touched region: first the training
// trace's regions in first-touch order (preserving set-index structure),
// then fresh sequential regions past the training footprint.
func (g *generator) coldRegion() uint64 {
	if g.regionIdx < len(g.m.Regions) {
		r := g.m.Regions[g.regionIdx]
		g.regionIdx++
		return r
	}
	r := g.nextReg
	g.nextReg++
	return r
}

// newBlockIn returns an untouched 64-B block inside the region,
// allocating sequentially. A cold draw must always yield a miss, so when
// the region is exhausted the allocation spills to a fresh region instead
// of reusing a (warm) block.
func (g *generator) newBlockIn(region uint64) uint64 {
	slots := uint64(Coarse / Fine)
	idx := g.used[region]
	if idx >= slots {
		region = g.coldRegion()
		g.stack4k.insertFront(region)
		idx = g.used[region]
		if idx >= slots {
			// Every training region is exhausted too: overflow space.
			region = g.nextReg
			g.nextReg++
			g.stack4k.insertFront(region)
			idx = 0
		}
	}
	g.used[region] = idx + 1
	return region*slots + idx
}

// nextOp draws the operation from the clean/dirty state model. The
// per-state counters bias the order (a dirty block is written with the
// dirty-state probability), while the global read/write pools enforce the
// exact operation totals of the training trace — the strict-convergence
// guarantee the §IV methodology relies on.
func (g *generator) nextOp(block uint64) trace.Op {
	readsLeft := uint64(g.ca+g.da) - uint64(g.cw+g.dw)
	writesLeft := uint64(g.cw + g.dw)
	writes, accesses := &g.cw, &g.ca
	if g.dirty[block] {
		writes, accesses = &g.dw, &g.da
	}
	isWrite := false
	if *accesses > 0 {
		isWrite = g.rng.Uint64n(uint64(*accesses)) < uint64(*writes)
	}
	if isWrite && writesLeft == 0 {
		isWrite = false
	}
	if !isWrite && readsLeft == 0 {
		isWrite = true
	}
	if isWrite {
		// Consume a write from this state's pool, or borrow from the
		// other state when this one is spent.
		if *writes > 0 {
			*writes--
			*accesses--
		} else if g.dirty[block] && g.cw > 0 {
			g.cw--
			g.ca--
		} else if !g.dirty[block] && g.dw > 0 {
			g.dw--
			g.da--
		}
		return trace.Write
	}
	// Consume a read (an access that is not a write) from this state's
	// pool, borrowing like above when it has no reads left.
	if *accesses > *writes {
		*accesses--
	} else if g.dirty[block] && g.ca > g.cw {
		g.ca--
	} else if !g.dirty[block] && g.da > g.dw {
		g.da--
	}
	return trace.Read
}

// drawer draws reuse distances with strict convergence; the cold count is
// one more bucket.
type drawer struct {
	dists  []int
	counts []uint32
	cold   uint32
	total  uint64
	rng    *stats.RNG
}

func newDrawer(hist map[int]uint32, cold uint32, rng *stats.RNG) *drawer {
	d := &drawer{cold: cold, rng: rng}
	d.dists = make([]int, 0, len(hist))
	for k := range hist {
		d.dists = append(d.dists, k)
	}
	sort.Ints(d.dists)
	d.counts = make([]uint32, len(d.dists))
	for i, k := range d.dists {
		d.counts[i] = hist[k]
		d.total += uint64(hist[k])
	}
	d.total += uint64(cold)
	return d
}

// draw returns (distance, false) or (0, true) for a cold access.
func (d *drawer) draw() (int, bool) {
	if d.total == 0 {
		return 0, true
	}
	pick := d.rng.Uint64n(d.total)
	for i := range d.counts {
		if pick < uint64(d.counts[i]) {
			d.counts[i]--
			d.total--
			return d.dists[i], false
		}
		pick -= uint64(d.counts[i])
	}
	if d.cold > 0 {
		d.cold--
	}
	d.total--
	return 0, true
}

type sizeDrawer struct {
	sizes  []uint32
	counts []uint32
	total  uint64
	rng    *stats.RNG
}

func newSizeDrawer(hist map[uint32]uint32, rng *stats.RNG) *sizeDrawer {
	d := &sizeDrawer{rng: rng}
	keys := make([]int, 0, len(hist))
	for k := range hist {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	for _, k := range keys {
		d.sizes = append(d.sizes, uint32(k))
		d.counts = append(d.counts, hist[uint32(k)])
		d.total += uint64(hist[uint32(k)])
	}
	return d
}

func (d *sizeDrawer) draw() uint32 {
	if d.total == 0 {
		return Fine
	}
	pick := d.rng.Uint64n(d.total)
	for i := range d.counts {
		if pick < uint64(d.counts[i]) {
			d.counts[i]--
			d.total--
			return d.sizes[i]
		}
		pick -= uint64(d.counts[i])
	}
	return d.sizes[len(d.sizes)-1]
}
