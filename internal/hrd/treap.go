package hrd

import "repro/internal/stats"

// lruStack is an LRU stack with O(log n) indexed access and
// move-to-front, implemented as an implicit-key treap. HRD synthesis
// replays reuse distances against stacks that can grow to the workload's
// whole footprint, so the naive slice representation's O(n) memmoves are
// replaced by treap splits and merges.
type lruStack struct {
	root *treapNode
	rng  *stats.RNG
}

func newLRUStack(seed uint64) *lruStack {
	return &lruStack{rng: stats.NewRNG(seed)}
}

type treapNode struct {
	left, right *treapNode
	prio        uint64
	size        int
	val         uint64
}

func size(n *treapNode) int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *treapNode) update() { n.size = size(n.left) + 1 + size(n.right) }

// split divides t into the first k nodes and the rest.
func split(t *treapNode, k int) (l, r *treapNode) {
	if t == nil {
		return nil, nil
	}
	if size(t.left) < k {
		t.right, r = split(t.right, k-size(t.left)-1)
		t.update()
		return t, r
	}
	l, t.left = split(t.left, k)
	t.update()
	return l, t
}

// merge joins l and r, all of l preceding all of r.
func merge(l, r *treapNode) *treapNode {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case l.prio >= r.prio:
		l.right = merge(l.right, r)
		l.update()
		return l
	default:
		r.left = merge(l, r.left)
		r.update()
		return r
	}
}

// len returns the number of stacked elements.
func (s *lruStack) len() int { return size(s.root) }

// promote removes the element at depth d (0 = most recent, clamped) and
// re-inserts it at the top, returning its value.
func (s *lruStack) promote(d int) uint64 {
	n := size(s.root)
	if n == 0 {
		return 0
	}
	if d >= n {
		d = n - 1
	}
	l, rest := split(s.root, d)
	mid, r := split(rest, 1)
	v := mid.val
	s.root = merge(mid, merge(l, r))
	return v
}

// insertFront pushes a new element onto the top of the stack.
func (s *lruStack) insertFront(v uint64) {
	n := &treapNode{prio: s.rng.Uint64(), size: 1, val: v}
	s.root = merge(n, s.root)
}
