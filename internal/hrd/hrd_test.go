package hrd

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/trace"
)

func workload(seed uint64, n int) trace.Trace {
	rng := stats.NewRNG(seed)
	var tr trace.Trace
	for i := 0; i < n; i++ {
		op := trace.Read
		if rng.Bool(0.3) {
			op = trace.Write
		}
		var addr uint64
		if rng.Bool(0.6) {
			addr = rng.Uint64n(64) * 64 // hot 4KB of blocks
		} else {
			addr = 1<<20 + uint64(i)*64 // cold stream
		}
		tr = append(tr, trace.Request{Time: uint64(i), Addr: addr, Size: 8, Op: op})
	}
	return tr
}

// naiveDistance computes LRU stack distance with an explicit list, as a
// reference for the Fenwick-tree tracker.
type naiveDistance struct {
	stack []uint64
}

func (n *naiveDistance) access(b uint64) int {
	for i, x := range n.stack {
		if x == b {
			n.stack = append(n.stack[:i], n.stack[i+1:]...)
			n.stack = append([]uint64{b}, n.stack...)
			return i
		}
	}
	n.stack = append([]uint64{b}, n.stack...)
	return -1
}

func TestDistanceTrackerMatchesNaive(t *testing.T) {
	rng := stats.NewRNG(1)
	dt := newDistanceTracker(0)
	var ref naiveDistance
	for i := 0; i < 5000; i++ {
		b := rng.Uint64n(200)
		got := dt.access(b)
		want := ref.access(b)
		if got != want {
			t.Fatalf("access %d (block %d): got %d, want %d", i, b, got, want)
		}
	}
}

func TestDistanceTrackerColdThenReuse(t *testing.T) {
	dt := newDistanceTracker(0)
	if d := dt.access(5); d != -1 {
		t.Errorf("first access distance = %d", d)
	}
	if d := dt.access(5); d != 0 {
		t.Errorf("immediate reuse distance = %d", d)
	}
	dt.access(6)
	dt.access(7)
	if d := dt.access(5); d != 2 {
		t.Errorf("reuse after 2 distinct = %d", d)
	}
}

func TestFitBasics(t *testing.T) {
	tr := workload(1, 5000)
	m := Fit(tr)
	if m.Requests != len(tr) {
		t.Errorf("Requests = %d", m.Requests)
	}
	var distTotal uint64
	for _, n := range m.Dist64 {
		distTotal += uint64(n)
	}
	if distTotal+uint64(m.Cold64) != uint64(len(tr)) {
		t.Errorf("Dist64 total %d + cold %d != %d", distTotal, m.Cold64, len(tr))
	}
	if m.CleanAccesses+m.DirtyAccesses != uint32(len(tr)) {
		t.Error("op-state accesses don't sum to trace length")
	}
	if len(m.Regions) == 0 {
		t.Error("no first-touch regions recorded")
	}
}

func TestFitRegionsMatchFootprint(t *testing.T) {
	tr := workload(2, 3000)
	m := Fit(tr)
	if len(m.Regions) != tr.Footprint(Coarse) {
		t.Errorf("Regions = %d, footprint = %d", len(m.Regions), tr.Footprint(Coarse))
	}
	if int(m.Cold4K) != len(m.Regions) {
		t.Errorf("Cold4K = %d, want %d", m.Cold4K, len(m.Regions))
	}
}

func TestSynthesizeLengthAndDeterminism(t *testing.T) {
	tr := workload(3, 4000)
	m := Fit(tr)
	a := Synthesize(m, 9)
	b := Synthesize(m, 9)
	if len(a) != len(tr) {
		t.Fatalf("synthesised %d, want %d", len(a), len(tr))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSynthesizeExactOpCounts(t *testing.T) {
	tr := workload(4, 4000)
	wantR, wantW := tr.Counts()
	got := Synthesize(Fit(tr), 11)
	gotR, gotW := got.Counts()
	if gotR != wantR || gotW != wantW {
		t.Errorf("ops %d/%d, want %d/%d", gotR, gotW, wantR, wantW)
	}
}

func TestSynthesizePreservesColdMissCount(t *testing.T) {
	// Every cold draw must yield a never-touched block, so the 64-B
	// footprint of the synthetic trace equals the original's.
	tr := workload(5, 4000)
	m := Fit(tr)
	syn := Synthesize(m, 13)
	if got, want := syn.Footprint(Fine), tr.Footprint(Fine); got != want {
		t.Errorf("synthetic footprint %d, want %d", got, want)
	}
}

func TestSynthesizeSizesMultisetPreserved(t *testing.T) {
	tr := workload(6, 2000)
	m := Fit(tr)
	syn := Synthesize(m, 15)
	count := func(t trace.Trace) map[uint32]int {
		c := make(map[uint32]int)
		for _, r := range t {
			c[r.Size]++
		}
		return c
	}
	a, b := count(tr), count(syn)
	for k, v := range a {
		if b[k] != v {
			t.Errorf("size %d: %d vs %d", k, b[k], v)
		}
	}
}

func TestStreamingWorkloadMissRatePreserved(t *testing.T) {
	// A pure streaming workload's miss behaviour is fully described by
	// reuse distances, so HRD must reproduce the 64-B footprint and the
	// cold-miss fraction exactly.
	var tr trace.Trace
	for i := 0; i < 8000; i++ {
		tr = append(tr, trace.Request{Time: uint64(i), Addr: uint64(i) * 16, Size: 8, Op: trace.Read})
	}
	m := Fit(tr)
	syn := Synthesize(m, 17)
	if syn.Footprint(Fine) != tr.Footprint(Fine) {
		t.Errorf("footprints differ: %d vs %d", syn.Footprint(Fine), tr.Footprint(Fine))
	}
}

func TestTreapStackMatchesSlice(t *testing.T) {
	// The treap must behave exactly like a naive move-to-front slice.
	rng := stats.NewRNG(21)
	st := newLRUStack(1)
	var ref []uint64
	for i := 0; i < 3000; i++ {
		if len(ref) == 0 || rng.Bool(0.3) {
			v := rng.Uint64()
			st.insertFront(v)
			ref = append([]uint64{v}, ref...)
			continue
		}
		d := rng.Intn(len(ref))
		got := st.promote(d)
		want := ref[d]
		ref = append(ref[:d], ref[d+1:]...)
		ref = append([]uint64{want}, ref...)
		if got != want {
			t.Fatalf("op %d: promote(%d) = %d, want %d", i, d, got, want)
		}
		if st.len() != len(ref) {
			t.Fatalf("op %d: len %d, want %d", i, st.len(), len(ref))
		}
	}
}

func TestTreapPromoteClamps(t *testing.T) {
	st := newLRUStack(2)
	if st.promote(0) != 0 {
		t.Error("empty promote should return 0")
	}
	st.insertFront(11)
	st.insertFront(22)
	if got := st.promote(99); got != 11 {
		t.Errorf("clamped promote = %d, want deepest (11)", got)
	}
}

func TestDrawerStrictConvergence(t *testing.T) {
	hist := map[int]uint32{1: 3, 5: 2}
	d := newDrawer(hist, 4, stats.NewRNG(5))
	counts := map[int]int{}
	colds := 0
	for i := 0; i < 9; i++ {
		v, cold := d.draw()
		if cold {
			colds++
		} else {
			counts[v]++
		}
	}
	if counts[1] != 3 || counts[5] != 2 || colds != 4 {
		t.Errorf("drawn %v + %d colds, want 3x1, 2x5, 4 cold", counts, colds)
	}
	// Exhausted drawer keeps returning cold.
	if _, cold := d.draw(); !cold {
		t.Error("exhausted drawer returned non-cold")
	}
}

func TestFitSynthesizeProperty(t *testing.T) {
	check := func(seed uint64) bool {
		tr := workload(seed, 600)
		m := Fit(tr)
		syn := Synthesize(m, seed^0xabc)
		if len(syn) != len(tr) {
			return false
		}
		wr, ww := tr.Counts()
		gr, gw := syn.Counts()
		return wr == gr && ww == gw && syn.Footprint(Fine) == tr.Footprint(Fine)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
