package serve

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	id := strings.Repeat("ab", 32)
	payload := []byte("not a real profile, the frame does not care")
	buf := encodeFrame(id, payload)
	gotID, gotPayload, err := decodeFrame(bytes.NewReader(buf), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if gotID != id || !bytes.Equal(gotPayload, payload) {
		t.Fatalf("round trip: got (%q, %q)", gotID, gotPayload)
	}
	// Empty payloads frame fine — the flat validation downstream is
	// what rejects them.
	if _, p, err := decodeFrame(bytes.NewReader(encodeFrame("x", nil)), 1<<20); err != nil || len(p) != 0 {
		t.Fatalf("empty payload: p=%q err=%v", p, err)
	}
}

func TestFrameRejectsMalformed(t *testing.T) {
	good := encodeFrame(strings.Repeat("cd", 32), []byte("payload"))
	cases := map[string][]byte{
		"empty":        {},
		"short header": good[:10],
		"truncated":    good[:len(good)-5],
		"bad magic":    append([]byte("XXXX"), good[4:]...),
		"bad version":  append(append([]byte{}, good[:4]...), append([]byte{99}, good[5:]...)...),
		"trailing":     append(append([]byte{}, good...), 0),
	}
	for name, buf := range cases {
		if _, _, err := decodeFrame(bytes.NewReader(buf), 1<<20); !errors.Is(err, ErrFrame) {
			t.Errorf("%s: err = %v, want ErrFrame", name, err)
		}
	}

	// One flipped payload bit must fail the frame checksum.
	corrupt := append([]byte{}, good...)
	corrupt[frameHeaderLen+64+3] ^= 1
	if _, _, err := decodeFrame(bytes.NewReader(corrupt), 1<<20); !errors.Is(err, ErrFrame) {
		t.Errorf("corrupt payload: err = %v, want ErrFrame", err)
	}

	// A declared payload length over the cap is rejected before any
	// payload-sized allocation.
	big := encodeFrame("id", make([]byte, 4096))
	if _, _, err := decodeFrame(bytes.NewReader(big), 1024); !errors.Is(err, ErrFrame) {
		t.Errorf("oversize payload: err = %v, want ErrFrame", err)
	}
}
