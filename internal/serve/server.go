package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/synth"
	"repro/internal/trace"
)

// Request-path metrics. Per-endpoint request/error counters are created
// in NewServer ("serve.<endpoint>.requests/.errors"); per-endpoint
// latency histograms come from the request spans
// ("stage.serve.<endpoint>.ns").
var (
	mThrottled     = obs.NewCounter("serve.throttled")
	mActiveStreams = obs.NewGauge("serve.active_streams")
	mSynthStreamed = obs.NewCounter("serve.synth.requests_streamed")
	mSynthBytes    = obs.NewHistogram("serve.synth.stream_bytes", obs.ScaleBytes)
	mSynthCanceled = obs.NewCounter("serve.synth.canceled")
	mFitsServed    = obs.NewCounter("serve.fit.traces_fitted")
)

// Config tunes a Server. The zero value selects the documented
// defaults; a negative limit means unlimited.
type Config struct {
	// Shards is the profile-store shard count (0 = DefaultShards).
	Shards int
	// StoreBudget bounds the store's resident canonical-encoded profile
	// bytes (0 = DefaultStoreBudget, < 0 = unlimited).
	StoreBudget int64
	// MaxStreams caps concurrent synthesis streams (0 = 128).
	MaxStreams int
	// MaxFits caps concurrent in-process fits — each fit saturates the
	// worker pool, so a small cap protects latency (0 = 4).
	MaxFits int
	// MaxInflight caps total in-flight requests (0 = 512).
	MaxInflight int
	// MaxUploadBytes caps an upload's body size (0 = 1 GiB).
	MaxUploadBytes int64
	// MaxTraceBytes caps the in-memory footprint of one fitted trace,
	// in trace.RequestMemBytes units per decoded record — the memory a
	// materialised build would need (0 = unlimited). Unlike
	// MaxUploadBytes it is enforced on decoded records, so it bounds
	// compressed (gz) and chunked uploads whose wire size says nothing
	// about their decoded size. Exceeding it returns 413.
	MaxTraceBytes int64
	// FitTimeout bounds one in-process fit (0 = 2 minutes, < 0 = none).
	FitTimeout time.Duration
	// FitWorkers is the worker count handed to profile fitting
	// (0 = the MOCKTAILS_PARALLELISM / GOMAXPROCS default).
	FitWorkers int
	// SynthWorkers is the chunk-refill worker count per synthesis
	// stream (0 = 1, i.e. generate on the handler goroutine; output is
	// bit-identical for any value).
	SynthWorkers int
	// DiskDir, when non-empty, enables the store's disk tier: uploads
	// are written through as flat files, RAM eviction demotes instead
	// of discarding, and cold requests are served by memory-mapping the
	// flat file — so the servable profile set is bounded by DiskBudget
	// rather than StoreBudget.
	DiskDir string
	// DiskBudget bounds the disk tier's bytes (0 = unlimited).
	DiskBudget int64
	// Debug mounts the obs debug surface (net/http/pprof + expvar)
	// under /debug/ on the server's own mux, reusing the one handler
	// instead of opening a second listener.
	Debug bool
	// Cluster, when its Advertise field is set, joins the server to a
	// consistent-hash cluster of peers at construction. Leave zero for
	// a single node; tests that only learn their listen address after
	// starting can join later with JoinCluster.
	Cluster ClusterConfig
	// AccessLog, when non-nil, receives the per-request access-log
	// lines instead of the process logger (tests inject per-node
	// buffers). The obs -access-log flag gates emission either way.
	AccessLog *slog.Logger
	// TraceRing caps the ring buffer of recently completed request
	// traces served by GET /debug/requests (0 = 256).
	TraceRing int
}

// DefaultStoreBudget is the default profile-store byte budget (256 MiB
// of canonical profile encoding).
const DefaultStoreBudget = 256 << 20

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = DefaultShards
	}
	if c.StoreBudget == 0 {
		c.StoreBudget = DefaultStoreBudget
	}
	if c.MaxStreams == 0 {
		c.MaxStreams = 128
	}
	if c.MaxFits == 0 {
		c.MaxFits = 4
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 512
	}
	if c.MaxUploadBytes == 0 {
		c.MaxUploadBytes = 1 << 30
	}
	if c.FitTimeout == 0 {
		c.FitTimeout = 2 * time.Minute
	}
	if c.SynthWorkers == 0 {
		c.SynthWorkers = 1
	}
	return c
}

// Server is the mocktailsd HTTP API: a profile store fed by uploads
// (pre-fit profiles, or traces fitted in-process) and a streaming
// synthesis endpoint. Build one with NewServer and mount Handler.
type Server struct {
	cfg   Config
	store *Store
	mux   *http.ServeMux

	global  *limiter
	fits    *limiter
	streams *limiter

	// traces keeps the most recent completed request traces for
	// GET /debug/requests. One ring per node, so cross-node trace
	// continuity is observable per node.
	traces *obs.TraceRing

	// cluster is nil for a single node. It is installed atomically so
	// JoinCluster may run after the listener is already serving.
	cluster atomic.Pointer[cluster]

	active atomic.Int64
}

// NewServer returns a Server with the given configuration. The error
// is always nil unless a disk tier is configured and its directory
// cannot be created or indexed.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	store, err := NewTieredStore(StoreConfig{
		Shards:     cfg.Shards,
		Budget:     cfg.StoreBudget,
		DiskDir:    cfg.DiskDir,
		DiskBudget: cfg.DiskBudget,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		store:   store,
		mux:     http.NewServeMux(),
		global:  newLimiter(cfg.MaxInflight),
		fits:    newLimiter(cfg.MaxFits),
		streams: newLimiter(cfg.MaxStreams),
		traces:  obs.NewTraceRing(cfg.TraceRing),
	}
	s.mux.HandleFunc("GET /healthz", s.endpoint("health", nil, s.handleHealth))
	s.mux.HandleFunc("GET /metrics", s.endpoint("metrics", nil, s.handleMetrics))
	s.mux.HandleFunc("GET /debug/requests", s.endpoint("debug_requests", nil, s.handleDebugRequests))
	s.mux.HandleFunc("GET /v1/profiles", s.endpoint("list", nil, s.handleList))
	s.mux.HandleFunc("POST /v1/profiles", s.endpoint("upload", s.fits, s.handleUpload))
	s.mux.HandleFunc("GET /v1/profiles/{id}", s.endpoint("get", nil, s.handleGet))
	s.mux.HandleFunc("POST /v1/profiles/{id}/synth", s.endpoint("synth", s.streams, s.handleSynth))
	s.mux.HandleFunc("POST /v1/scenarios/synth", s.endpoint("scenario", s.streams, s.handleScenario))
	s.mux.HandleFunc("GET /v1/cluster/healthz", s.endpoint("cluster_health", nil, s.handleClusterHealth))
	s.mux.HandleFunc("POST /v1/cluster/replicate", s.endpoint("replicate", nil, s.handleReplicate))
	if cfg.Debug {
		s.mux.Handle("/debug/", obs.DebugHandler())
	}
	if cfg.Cluster.Advertise != "" {
		if err := s.JoinCluster(cfg.Cluster); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// JoinCluster joins the server to the given cluster, replacing any
// previous membership. It may be called while the server is already
// handling requests: until the join, requests get single-node
// semantics.
func (s *Server) JoinCluster(cfg ClusterConfig) error {
	c, err := newCluster(cfg)
	if err != nil {
		return err
	}
	s.cluster.Store(c)
	obs.Logger().Info("joined cluster", "self", c.self, "members", c.ring.Members())
	return nil
}

// isPeer reports whether r is an intra-cluster request. Peer requests
// are answered from local state only — never forwarded, fetched for,
// or re-replicated — which makes routing loops structurally
// impossible.
func isPeer(r *http.Request) bool { return r.Header.Get(headerPeer) != "" }

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Store returns the server's profile store.
func (s *Server) Store() *Store { return s.store }

// Traces returns the node's ring buffer of completed request traces.
func (s *Server) Traces() *obs.TraceRing { return s.traces }

// ActiveStreams returns the number of synthesis streams in flight.
func (s *Server) ActiveStreams() int64 { return s.active.Load() }

// statusWriter records the status code and body bytes a handler wrote,
// for the per-endpoint error counters and the access log, and forwards
// Flush so streaming handlers keep working through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Request-tracing headers. An incoming traceparent wins; a bare
// 32-hex X-Request-Id supplies just the trace ID; otherwise the
// middleware assigns a fresh trace. Every response echoes the trace ID
// as X-Request-Id so callers can correlate without parsing traceparent.
const (
	headerTraceparent = "traceparent"
	headerRequestID   = "X-Request-Id"
)

// startTrace opens the request trace for r from its tracing headers.
func (s *Server) startTrace(r *http.Request, name string) (context.Context, *obs.ReqTrace) {
	parent, ok := obs.ParseTraceparent(r.Header.Get(headerTraceparent))
	if !ok {
		if id, idOK := obs.ParseTraceID(r.Header.Get(headerRequestID)); idOK {
			parent = obs.SpanContext{TraceID: id}
		}
	}
	ctx, rt := obs.StartRequest(r.Context(), "serve."+name, parent)
	rt.SetHTTP(r.Method, r.URL.Path, isPeer(r))
	return ctx, rt
}

// finishTrace seals the request trace, records it in the node's ring
// buffer, and emits the access-log line (method, route, status, bytes,
// duration, trace ID, peer flag) when access logging is enabled.
func (s *Server) finishTrace(rt *obs.ReqTrace, sw *statusWriter) {
	done := rt.Finish(sw.status, sw.bytes)
	if done == nil {
		return
	}
	s.traces.Put(done)
	if !obs.AccessLogEnabled() {
		return
	}
	log := s.cfg.AccessLog
	if log == nil {
		log = obs.Logger()
	}
	log.Info("http",
		"method", done.Method, "path", done.Route, "route", done.Name,
		"status", done.Status, "bytes", done.Bytes,
		"dur_ms", float64(done.DurNs)/1e6,
		"trace", done.TraceID, "peer", done.Peer)
}

// endpoint wraps a handler with the production plumbing every route
// shares: the request trace (extracted from traceparent/X-Request-Id
// or assigned, recorded in the trace ring and the access log — 429s
// included), the global and per-endpoint in-flight limits (429 +
// Retry-After when exhausted), a request span feeding the per-endpoint
// latency histogram, and request/error counters.
func (s *Server) endpoint(name string, lim *limiter, h http.HandlerFunc) http.HandlerFunc {
	reqs := obs.NewCounter("serve." + name + ".requests")
	errs := obs.NewCounter("serve." + name + ".errors")
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, rt := s.startTrace(r, name)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		w.Header().Set(headerRequestID, rt.TraceID().String())
		// The trace outlives everything in the request, including an
		// aborted stream's panic: deferred first so it runs last.
		defer s.finishTrace(rt, sw)
		endWait := rt.StartSpan("limit.wait")
		if !s.global.tryAcquire() {
			endWait()
			throttle(sw)
			return
		}
		defer s.global.release()
		if !lim.tryAcquire() {
			endWait()
			throttle(sw)
			return
		}
		defer lim.release()
		endWait()
		reqs.Inc()
		ctx, sp := obs.Start(ctx, "serve."+name)
		defer sp.End()
		h(sw, r.WithContext(ctx))
		if sw.status >= 400 {
			errs.Inc()
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	diskBytes, diskFiles := s.store.DiskStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"profiles":       s.store.Len(),
		"store_bytes":    s.store.Bytes(),
		"disk_bytes":     diskBytes,
		"disk_files":     diskFiles,
		"active_streams": s.active.Load(),
	})
}

// handleMetrics serves the process metrics registry in Prometheus text
// exposition format (v0.0.4): every counter, gauge and histogram in
// obs.Default, including all serve.* and stage.* series.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.PromContentType)
	obs.Default.WritePrometheus(w)
}

// handleDebugRequests returns the node's most recent completed request
// traces (?n=, default 32), newest first — including the spans and
// trace IDs of peer hops, so one distributed request can be followed
// node by node.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	n := 32
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, "bad n %q", q)
			return
		}
		n = v
	}
	if n > s.traces.Cap() {
		n = s.traces.Cap()
	}
	writeJSON(w, http.StatusOK, map[string]any{"requests": s.traces.Recent(n)})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"profiles": s.store.List()})
}

// uploadResponse is the body of a successful POST /v1/profiles.
type uploadResponse struct {
	Meta
	Deduped bool `json:"deduped"`
}

// errTraceTooLarge aborts a streaming fit whose decoded trace exceeds
// Config.MaxTraceBytes. It surfaces to the client as 413.
var errTraceTooLarge = errors.New("serve: decoded trace exceeds the configured size limit")

// cappedReader enforces MaxTraceBytes in decoded-record units while the
// fit is consuming the upload. It reads first and checks after, so the
// record that crosses the cap is never silently dropped — the whole fit
// aborts with errTraceTooLarge instead.
type cappedReader struct {
	r   trace.Reader
	n   uint64
	max uint64
}

func (c *cappedReader) Next(req *trace.Request) error {
	if err := c.r.Next(req); err != nil {
		return err
	}
	c.n++
	if c.n*trace.RequestMemBytes > c.max {
		return errTraceTooLarge
	}
	return nil
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	opts, err := ParseUploadOptions(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	var p *profile.Profile
	switch opts.Kind {
	case KindProfile:
		// The profile encoding is sniffed, not configured: peers
		// replicate in the flat wire format, the CLI uploads gzip
		// canonical, and both land here.
		br := bufio.NewReader(body)
		if hdr, _ := br.Peek(8); profile.SniffFlat(hdr) {
			data, rerr := io.ReadAll(br)
			var maxBytesErr *http.MaxBytesError
			if errors.As(rerr, &maxBytesErr) {
				writeError(w, http.StatusRequestEntityTooLarge,
					"upload exceeds the %d-byte body limit", s.cfg.MaxUploadBytes)
				return
			}
			if rerr != nil {
				writeError(w, http.StatusBadRequest, "reading profile: %v", rerr)
				return
			}
			f, ferr := profile.OpenFlat(data)
			if ferr != nil {
				writeError(w, http.StatusBadRequest, "decoding flat profile: %v", ferr)
				return
			}
			p = f.Profile()
		} else if p, err = profile.ReadGzip(br); err != nil {
			writeError(w, http.StatusBadRequest, "decoding profile: %v", err)
			return
		}
	case KindTrace:
		// The body streams straight through the incremental decoder into
		// partitioning and fitting: the fit starts as the first records
		// arrive (chunked uploads fit while the client is still sending)
		// and peak memory is the fit frontier, never the trace. The
		// decoder sniffs raw binary, CSV and gzip bodies by magic.
		d, derr := trace.NewDecoder(body)
		if derr != nil {
			writeError(w, http.StatusBadRequest, "decoding trace: %v", derr)
			return
		}
		var rd trace.Reader = d
		if s.cfg.MaxTraceBytes > 0 {
			rd = &cappedReader{r: d, max: uint64(s.cfg.MaxTraceBytes)}
		}
		// Fit in-process under the request context plus the fit
		// timeout: a disconnected or timed-out client stops dispatching
		// leaf fits instead of burning the worker pool.
		fitCtx := r.Context()
		if s.cfg.FitTimeout > 0 {
			var cancel context.CancelFunc
			fitCtx, cancel = context.WithTimeout(fitCtx, s.cfg.FitTimeout)
			defer cancel()
		}
		endFit := obs.RequestFromContext(r.Context()).StartSpan("fit.stream")
		p, err = core.BuildStream(opts.Name, rd, opts.Partition, core.Workers(s.cfg.FitWorkers), core.BuildContext(fitCtx))
		endFit()
		var maxBytesErr *http.MaxBytesError
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusServiceUnavailable, "fit exceeded the %s timeout", s.cfg.FitTimeout)
			return
		case errors.Is(err, context.Canceled):
			// The client went away; the status is for the log only.
			writeError(w, http.StatusBadRequest, "fit canceled")
			return
		case errors.Is(err, errTraceTooLarge):
			writeError(w, http.StatusRequestEntityTooLarge,
				"trace exceeds the configured decoded-size limit of %d bytes", s.cfg.MaxTraceBytes)
			return
		case errors.As(err, &maxBytesErr):
			writeError(w, http.StatusRequestEntityTooLarge,
				"upload exceeds the %d-byte body limit", s.cfg.MaxUploadBytes)
			return
		case err != nil:
			writeError(w, http.StatusBadRequest, "fitting trace: %v", err)
			return
		}
		if d.Records() == 0 {
			// The sniffing decoder treats an empty body as an empty CSV
			// stream; a fit of nothing is a client error, not a profile.
			writeError(w, http.StatusBadRequest, "decoding trace: empty trace")
			return
		}
		mFitsServed.Inc()
	}
	meta, added, err := s.store.Put(p)
	if errors.Is(err, ErrStoreFull) {
		writeError(w, http.StatusInsufficientStorage, "%v", err)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	// A newly-admitted profile is pushed to its ring owner before the
	// response is written, so by the time the uploader learns the ID,
	// any node in the cluster can already resolve it at its canonical
	// location. Peer-marked uploads never re-replicate.
	if added {
		if c := s.cluster.Load(); c != nil && !isPeer(r) {
			endRepl := obs.RequestFromContext(r.Context()).StartSpan("cluster.replicate")
			c.replicate(r.Context(), meta.ID, p)
			endRepl()
		}
	}
	status := http.StatusCreated
	if !added {
		status = http.StatusOK
	}
	obs.FromContext(r.Context()).Debug("profile stored",
		"id", meta.ID, "name", meta.Name, "leaves", meta.Leaves, "deduped", !added)
	writeJSON(w, status, uploadResponse{Meta: meta, Deduped: !added})
}

// Download media types. Flat downloads are the raw zero-copy encoding
// (docs/FORMAT.md); gz downloads are the canonical varint encoding
// wrapped in gzip, the portable interchange format.
const (
	contentTypeFlat = "application/x-mocktails-flat-profile"
	contentTypeGz   = "application/gzip"
)

// acquireOrFetch pins profile id, pulling it from the cluster on a
// local miss (fetch-on-miss: the flat bytes are downloaded from the
// peer preference sequence, verified against the content address, and
// admitted into the local store, so subsequent requests for the same
// profile are local). On failure it writes the error response — 404
// when no reachable node holds the profile, 507 when the local store
// cannot admit it — and returns ok=false. Peer-marked requests never
// fetch: they see local state only.
func (s *Server) acquireOrFetch(w http.ResponseWriter, r *http.Request, id string) (*Pin, bool) {
	rt := obs.RequestFromContext(r.Context())
	endAcquire := rt.StartSpan("store.acquire")
	pin, ok := s.store.Acquire(id)
	endAcquire()
	if ok {
		return pin, true
	}
	c := s.cluster.Load()
	if c == nil || isPeer(r) {
		writeError(w, http.StatusNotFound, "no profile %q", id)
		return nil, false
	}
	endFetch := rt.StartSpan("cluster.fetch")
	p := c.fetch(r.Context(), id, s.cfg.MaxUploadBytes)
	endFetch()
	if p == nil {
		writeError(w, http.StatusNotFound, "no profile %q in the cluster", id)
		return nil, false
	}
	if _, _, err := s.store.Put(p); err != nil {
		if errors.Is(err, ErrStoreFull) {
			writeError(w, http.StatusInsufficientStorage, "%v", err)
		} else {
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return nil, false
	}
	pin, ok = s.store.Acquire(id)
	if !ok {
		// The fetched profile was evicted between Put and Acquire —
		// only possible when the store is thrashing at its budget.
		writeError(w, http.StatusInsufficientStorage, "profile evicted before it could be pinned")
		return nil, false
	}
	return pin, true
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if dl := r.URL.Query().Get("download"); dl != "" {
		pin, ok := s.acquireOrFetch(w, r, id)
		if !ok {
			return
		}
		defer pin.Release()
		// The response always advertises the encoding actually sent:
		// download=gz or download=flat force one, any other truthy value
		// means "as stored" — flat for entries backed by the disk tier's
		// mapping, gz for decoded heap residents.
		format := dl
		if dl != "gz" && dl != "flat" {
			if pin.Flat() != nil {
				format = "flat"
			} else {
				format = "gz"
			}
		}
		ctx := r.Context()
		w.Header().Set("X-Mocktails-Profile", id)
		switch format {
		case "flat":
			buf := []byte(nil)
			if f := pin.Flat(); f != nil {
				buf = f.Bytes()
			} else {
				var err error
				if buf, err = profile.MarshalFlat(pin.Profile()); err != nil {
					writeError(w, http.StatusInternalServerError, "encoding profile: %v", err)
					return
				}
			}
			w.Header().Set("Content-Type", contentTypeFlat)
			w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+flatExt))
			w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
			if _, err := w.Write(buf); err != nil {
				obs.FromContext(ctx).Debug("profile download aborted", "id", id, "err", err)
			}
		case "gz":
			w.Header().Set("Content-Type", contentTypeGz)
			w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+".profile.gz"))
			if err := profile.WriteGzip(w, pin.Profile()); err != nil {
				obs.FromContext(ctx).Debug("profile download aborted", "id", id, "err", err)
			}
		}
		return
	}
	meta, ok := s.store.Meta(id)
	if !ok {
		// Metadata reads are forwarded rather than fetched: answering
		// "does this profile exist" must not pull megabytes of profile
		// into the local store.
		if c := s.cluster.Load(); c != nil && !isPeer(r) {
			body, status, reachable := c.forwardMeta(r.Context(), id)
			switch {
			case reachable && status == http.StatusOK:
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusOK)
				w.Write(body)
			case reachable:
				writeError(w, http.StatusNotFound, "no profile %q in the cluster", id)
			default:
				writeError(w, http.StatusBadGateway, "no cluster peer reachable for profile %q", id)
			}
			return
		}
		writeError(w, http.StatusNotFound, "no profile %q", id)
		return
	}
	writeJSON(w, http.StatusOK, meta)
}

// handleReplicate admits a profile pushed by a cluster peer: one
// replication frame carrying the claimed content address and the flat
// profile bytes. The address is recomputed from the decoded payload
// and must match — a peer cannot plant bytes under a foreign ID.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if s.cluster.Load() == nil {
		writeError(w, http.StatusServiceUnavailable, "node is not clustered")
		return
	}
	// The frame wraps the payload in a fixed-size header plus the id
	// and checksum; 1 KiB of slack over the upload cap covers it.
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes+1024)
	id, payload, err := decodeFrame(body, s.cfg.MaxUploadBytes)
	if err != nil {
		var maxBytesErr *http.MaxBytesError
		if errors.As(err, &maxBytesErr) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"frame exceeds the %d-byte body limit", s.cfg.MaxUploadBytes)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	p, err := decodeVerifiedProfile(id, payload)
	if err != nil {
		writeError(w, http.StatusBadRequest, "replicated profile rejected: %v", err)
		return
	}
	meta, added, err := s.store.Put(p)
	if errors.Is(err, ErrStoreFull) {
		writeError(w, http.StatusInsufficientStorage, "%v", err)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	mClusterReplReceived.Inc()
	status := http.StatusCreated
	if !added {
		status = http.StatusOK
	}
	obs.FromContext(r.Context()).Debug("profile replicated in",
		"id", meta.ID, "from", r.Header.Get(headerPeer), "deduped", !added)
	writeJSON(w, status, uploadResponse{Meta: meta, Deduped: !added})
}

// handleClusterHealth reports the node's view of the cluster: its ring
// identity, the membership, and a live probe of every peer. A
// non-clustered node answers with mode "single" so the endpoint is
// uniformly scrapeable.
func (s *Server) handleClusterHealth(w http.ResponseWriter, r *http.Request) {
	c := s.cluster.Load()
	if c == nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"mode":     "single",
			"profiles": s.store.Len(),
		})
		return
	}
	peers := c.probePeers(r.Context())
	allOK := true
	for _, p := range peers {
		if !p.OK {
			allOK = false
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"mode":     "cluster",
		"self":     c.self,
		"members":  c.ring.Members(),
		"peers":    peers,
		"peers_ok": allOK,
		"profiles": s.store.Len(),
	})
}

// flushWriter flushes the HTTP response after every write reaching it,
// so a synthesis stream is delivered in bounded chunks (the streaming
// encoders buffer 32 KiB internally) instead of accumulating
// server-side.
type flushWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func newFlushWriter(w http.ResponseWriter) *flushWriter {
	f, _ := w.(http.Flusher)
	return &flushWriter{w: w, f: f}
}

func (fw *flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if fw.f != nil {
		fw.f.Flush()
	}
	return n, err
}

func (s *Server) handleSynth(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	opts, err := ParseSynthOptions(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	pin, ok := s.acquireOrFetch(w, r, id)
	if !ok {
		return
	}
	defer pin.Release()
	count := pin.Meta().Requests
	if opts.N > 0 && opts.N < count {
		count = opts.N
	}

	ctx := r.Context()
	// The view is either the decoded heap profile or a zero-copy flat
	// mapping promoted from the disk tier; synthesis is byte-identical
	// from both, so clients cannot tell a cold hit from a warm one.
	src := synth.NewFrom(pin.View(), opts.Seed, synth.Workers(s.cfg.SynthWorkers), synth.Context(ctx))
	defer src.Close()

	mActiveStreams.Set(float64(s.active.Add(1)))
	defer func() { mActiveStreams.Set(float64(s.active.Add(-1))) }()

	w.Header().Set("X-Mocktails-Profile", id)
	w.Header().Set("X-Mocktails-Requests", strconv.FormatUint(count, 10))
	var written int64
	var werr error
	endStream := obs.RequestFromContext(ctx).StartSpan("synth.stream")
	switch opts.Format {
	case FormatBin:
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.FormatInt(trace.BinaryEncodedSize(count), 10))
		written, werr = trace.WriteBinaryStream(ctx, newFlushWriter(w), count, trace.Limit(src, count))
	case FormatCSV:
		w.Header().Set("Content-Type", "text/csv")
		written, werr = trace.WriteCSVStream(ctx, newFlushWriter(w), trace.Limit(src, count))
	}
	endStream()
	mSynthBytes.Observe(written)
	sp := obs.SpanFromContext(ctx)
	sp.SetCount("requests", int64(count))
	sp.SetCount("bytes", written)
	switch {
	case werr == nil:
		mSynthStreamed.Add(count)
	case errors.Is(werr, context.Canceled) || errors.Is(werr, context.DeadlineExceeded):
		mSynthCanceled.Inc()
		obs.FromContext(ctx).Debug("synth stream canceled", "id", id, "bytes", written)
	default:
		// The response has already started, so a status can't express
		// the failure; abort the connection instead of sending a
		// well-terminated truncated body the client would mistake for a
		// complete stream.
		obs.FromContext(ctx).Debug("synth stream aborted", "id", id, "bytes", written, "err", werr)
		panic(http.ErrAbortHandler)
	}
}
