package serve

import "net/http"

// limiter is a non-blocking concurrency cap: tryAcquire fails
// immediately when n slots are taken, which the server translates into
// 429 + Retry-After rather than queueing work it may never get to. A
// nil limiter is unlimited.
type limiter struct {
	slots chan struct{}
}

// newLimiter returns a limiter with n slots, or nil (unlimited) for
// n <= 0.
func newLimiter(n int) *limiter {
	if n <= 0 {
		return nil
	}
	return &limiter{slots: make(chan struct{}, n)}
}

func (l *limiter) tryAcquire() bool {
	if l == nil {
		return true
	}
	select {
	case l.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

func (l *limiter) release() {
	if l == nil {
		return
	}
	<-l.slots
}

// inFlight returns the number of slots currently taken.
func (l *limiter) inFlight() int {
	if l == nil {
		return 0
	}
	return len(l.slots)
}

// throttle writes the 429 response for an exhausted limiter.
func throttle(w http.ResponseWriter) {
	mThrottled.Inc()
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusTooManyRequests, "server is at its concurrency limit, retry shortly")
}
