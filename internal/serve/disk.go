package serve

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/profile"
)

// Disk-tier metrics. Writes happen on upload (write-through), so a RAM
// eviction is a pure demotion — the flat file is already on disk.
// Promotions are cold Acquire hits served by mmapping a flat file;
// mmap_failures count files that existed but could not be mapped or
// validated (they are unlinked, since the tier is a cache of
// reconstructible artefacts, not the system of record).
var (
	mDiskWrites      = obs.NewCounter("serve.store.disk.writes")
	mDiskWriteErrors = obs.NewCounter("serve.store.disk.write_errors")
	mDiskDemotions   = obs.NewCounter("serve.store.disk.demotions")
	mDiskPromotions  = obs.NewCounter("serve.store.disk.promotions")
	mDiskEvictions   = obs.NewCounter("serve.store.disk.evictions")
	mDiskMmapFail    = obs.NewCounter("serve.store.disk.mmap_failures")
	mDiskBytes       = obs.NewGauge("serve.store.disk.bytes")
	mDiskFiles       = obs.NewGauge("serve.store.disk.files")
)

// flatExt is the on-disk extension of flat-encoded profiles.
const flatExt = ".mfp"

// diskFile is one resident flat file, tracked in the tier's LRU.
type diskFile struct {
	id   string
	size int64 // file size on disk
}

// diskTier is the store's second level: content-addressed flat profile
// files under one directory, bounded by a byte budget with LRU
// eviction. Every uploaded profile is written through immediately, so
// RAM eviction never copies anything; a cold Acquire promotes a file
// back by memory-mapping it, which costs a header parse rather than a
// decode. Files are unlinked while possibly still mapped by in-flight
// streams — safe on unix, where the mapping keeps the pages alive.
type diskTier struct {
	dir    string
	budget int64 // <= 0 means unlimited

	mu    sync.Mutex
	bytes int64
	files map[string]*list.Element // id -> element holding diskFile
	lru   *list.List
}

// newDiskTier opens (creating if needed) the tier directory and indexes
// any flat files already present — a daemon restarted with the same
// -disk-dir keeps serving its previously uploaded profiles.
func newDiskTier(dir string, budget int64) (*diskTier, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: disk tier: %w", err)
	}
	d := &diskTier{
		dir:    dir,
		budget: budget,
		files:  make(map[string]*list.Element),
		lru:    list.New(),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: disk tier: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, flatExt) {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		id := strings.TrimSuffix(name, flatExt)
		d.files[id] = d.lru.PushBack(&diskFile{id: id, size: info.Size()})
		d.bytes += info.Size()
	}
	d.mu.Lock()
	d.enforceBudgetLocked()
	d.updateGauges()
	d.mu.Unlock()
	return d, nil
}

func (d *diskTier) path(id string) string { return filepath.Join(d.dir, id+flatExt) }

// write persists p as a flat file keyed by id, unless one already
// exists (then it only refreshes recency). The file is written to a
// temp name and renamed, so readers never observe a partial file.
func (d *diskTier) write(id string, p *profile.Profile) error {
	d.mu.Lock()
	if el, ok := d.files[id]; ok {
		d.lru.MoveToFront(el)
		d.mu.Unlock()
		return nil
	}
	d.mu.Unlock()

	buf, err := profile.MarshalFlat(p)
	if err != nil {
		mDiskWriteErrors.Inc()
		return err
	}
	tmp, err := os.CreateTemp(d.dir, "put-*"+flatExt+".tmp")
	if err != nil {
		mDiskWriteErrors.Inc()
		return err
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		mDiskWriteErrors.Inc()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		mDiskWriteErrors.Inc()
		return err
	}
	if err := os.Rename(tmp.Name(), d.path(id)); err != nil {
		os.Remove(tmp.Name())
		mDiskWriteErrors.Inc()
		return err
	}

	d.mu.Lock()
	if _, ok := d.files[id]; !ok { // concurrent write of the same id loses harmlessly
		d.files[id] = d.lru.PushFront(&diskFile{id: id, size: int64(len(buf))})
		d.bytes += int64(len(buf))
		d.enforceBudgetLocked()
	}
	d.updateGauges()
	d.mu.Unlock()
	mDiskWrites.Inc()
	return nil
}

// open maps the flat file for id, returning nil when the tier has no
// such file. Integrity was verified when the file was written (the
// encoder computed the checksums over the bytes now on disk), so the
// open skips per-section CRC verification — structural validation
// still runs, and a damaged file is dropped from the tier rather than
// served.
func (d *diskTier) open(id string) *profile.Flat {
	d.mu.Lock()
	el, ok := d.files[id]
	if ok {
		d.lru.MoveToFront(el)
	}
	d.mu.Unlock()
	if !ok {
		return nil
	}
	f, err := profile.OpenFlatFile(d.path(id), profile.FlatNoVerify())
	if err != nil {
		mDiskMmapFail.Inc()
		d.remove(id)
		return nil
	}
	return f
}

// remove drops id's file from the index and the filesystem.
func (d *diskTier) remove(id string) {
	d.mu.Lock()
	if el, ok := d.files[id]; ok {
		d.bytes -= el.Value.(*diskFile).size
		d.lru.Remove(el)
		delete(d.files, id)
	}
	d.updateGauges()
	d.mu.Unlock()
	os.Remove(d.path(id))
}

// enforceBudgetLocked unlinks least-recently-used files until the tier
// fits its budget. Caller holds d.mu. Unlinking is safe even while a
// promoted mapping of the file is live.
func (d *diskTier) enforceBudgetLocked() {
	if d.budget <= 0 {
		return
	}
	for d.bytes > d.budget {
		el := d.lru.Back()
		if el == nil {
			return
		}
		f := el.Value.(*diskFile)
		d.lru.Remove(el)
		delete(d.files, f.id)
		d.bytes -= f.size
		os.Remove(d.path(f.id))
		mDiskEvictions.Inc()
	}
}

// has reports whether the tier holds a file for id, without touching
// recency.
func (d *diskTier) has(id string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.files[id]
	return ok
}

// ids returns the ids of every file in the tier, in no particular
// order.
func (d *diskTier) ids() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.files))
	for id := range d.files {
		out = append(out, id)
	}
	return out
}

// stats returns the tier's occupancy.
func (d *diskTier) stats() (bytes int64, files int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytes, len(d.files)
}

func (d *diskTier) updateGauges() {
	mDiskBytes.Set(float64(d.bytes))
	mDiskFiles.Set(float64(len(d.files)))
}
