package serve

import (
	"bytes"
	"net/url"
	"strings"
	"testing"
)

// FuzzParseUploadQuery feeds arbitrary query strings to the upload
// request parser: it must never panic, and on success the resulting
// options must be internally consistent (a known kind and a non-empty
// partitioning configuration).
func FuzzParseUploadQuery(f *testing.F) {
	f.Add("")
	f.Add("kind=profile")
	f.Add("kind=trace&name=hevc&temporal=cycles&interval=500000&spatial=dynamic")
	f.Add("kind=trace&temporal=requests&interval=1&spatial=4096")
	f.Add("kind=nonsense")
	f.Add("interval=0")
	f.Add("spatial=-1")
	f.Add("bogus=1")
	f.Add("name=%00%ff")
	f.Add("kind=trace&kind=profile")
	f.Fuzz(func(t *testing.T, raw string) {
		q, err := url.ParseQuery(raw)
		if err != nil {
			return
		}
		o, err := ParseUploadOptions(q)
		if err != nil {
			return
		}
		if o.Kind != KindProfile && o.Kind != KindTrace {
			t.Fatalf("accepted unknown kind %q", o.Kind)
		}
		if o.Name == "" || len(o.Name) > maxNameLen {
			t.Fatalf("accepted bad name %q", o.Name)
		}
		if len(o.Partition.Layers) != 2 {
			t.Fatalf("accepted %d partition layers, want 2", len(o.Partition.Layers))
		}
	})
}

// FuzzParseSynthQuery does the same for the synthesis request parser.
func FuzzParseSynthQuery(f *testing.F) {
	f.Add("")
	f.Add("seed=42&n=1000&format=bin")
	f.Add("format=csv")
	f.Add("seed=-1")
	f.Add("n=18446744073709551615")
	f.Add("format=xml")
	f.Add("seed=42&seed=43")
	f.Fuzz(func(t *testing.T, raw string) {
		q, err := url.ParseQuery(raw)
		if err != nil {
			return
		}
		o, err := ParseSynthOptions(q)
		if err != nil {
			return
		}
		if o.Format != FormatBin && o.Format != FormatCSV {
			t.Fatalf("accepted unknown format %q", o.Format)
		}
	})
}

// FuzzPeerFrame feeds arbitrary bytes to the peer replication frame
// decoder: it must never panic or allocate from an unchecked length,
// and anything it accepts must re-encode to the identical frame (the
// format has exactly one encoding per (id, payload)).
func FuzzPeerFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("MKPF"))
	f.Add(encodeFrame("ab", []byte("payload")))
	f.Add(encodeFrame(strings.Repeat("cd", 32), nil))
	truncated := encodeFrame("id", []byte("data"))
	f.Add(truncated[:len(truncated)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		id, payload, err := decodeFrame(bytes.NewReader(data), 1<<20)
		if err != nil {
			return
		}
		if len(id) == 0 || len(id) > frameMaxIDLen {
			t.Fatalf("accepted id of length %d", len(id))
		}
		if !bytes.Equal(encodeFrame(id, payload), data) {
			t.Fatalf("accepted frame does not re-encode to itself")
		}
	})
}
