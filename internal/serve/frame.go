package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// The peer replication frame is the body of POST /v1/cluster/replicate:
// the claimed content address bundled with the flat-encoded profile
// bytes, so the receiver can verify the address before admitting the
// payload. Layout, all little-endian:
//
//	offset  size  field
//	0       4     magic "MKPF"
//	4       1     version (1)
//	5       2     id length L (bytes)
//	7       8     payload length P (bytes)
//	15      L     id (the profile's hex content address)
//	15+L    P     payload (flat .mfp profile encoding)
//	15+L+P  4     CRC-32C of bytes [0, 15+L+P)
//
// The payload carries its own per-section CRCs (docs/FORMAT.md); the
// frame CRC additionally covers the header and id, so a corrupted or
// truncated frame is rejected before the payload is even parsed.

const (
	frameMagic   = "MKPF"
	frameVersion = 1
	// frameHeaderLen is the fixed prefix before the id: magic, version,
	// id length, payload length.
	frameHeaderLen = 4 + 1 + 2 + 8
	// frameMaxIDLen bounds the id field; content addresses are 64 hex
	// bytes, the slack leaves room for future address schemes.
	frameMaxIDLen = 128
)

// frameCRC is the CRC-32C (Castagnoli) table, matching the flat
// profile format's checksum family.
var frameCRC = crc32.MakeTable(crc32.Castagnoli)

// ErrFrame reports a malformed peer replication frame.
var ErrFrame = errors.New("serve: invalid peer frame")

func frameErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrFrame, fmt.Sprintf(format, args...))
}

// encodeFrame assembles a replication frame for id and payload.
func encodeFrame(id string, payload []byte) []byte {
	buf := make([]byte, 0, frameHeaderLen+len(id)+len(payload)+4)
	buf = append(buf, frameMagic...)
	buf = append(buf, frameVersion)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(id)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, id...)
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, frameCRC))
	return buf
}

// decodeFrame reads one replication frame from r, enforcing maxPayload
// (<= 0 selects a defensive 4 GiB cap) on the declared payload length
// before allocating anything proportional to it. It returns the claimed id
// and the payload bytes; any structural problem — bad magic, unknown
// version, oversize fields, truncation, checksum mismatch, trailing
// bytes — returns an error wrapping ErrFrame.
func decodeFrame(r io.Reader, maxPayload int64) (id string, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return "", nil, frameErr("short header: %v", err)
	}
	if string(hdr[:4]) != frameMagic {
		return "", nil, frameErr("bad magic %q", hdr[:4])
	}
	if hdr[4] != frameVersion {
		return "", nil, frameErr("unsupported version %d", hdr[4])
	}
	idLen := int(binary.LittleEndian.Uint16(hdr[5:7]))
	payLen := binary.LittleEndian.Uint64(hdr[7:15])
	if idLen == 0 || idLen > frameMaxIDLen {
		return "", nil, frameErr("id length %d out of range (1..%d)", idLen, frameMaxIDLen)
	}
	if maxPayload <= 0 {
		maxPayload = 1 << 32 // defensive: never allocate from an unchecked length
	}
	if payLen > uint64(maxPayload) {
		return "", nil, frameErr("payload length %d exceeds the %d-byte limit", payLen, maxPayload)
	}
	rest := make([]byte, uint64(idLen)+payLen+4)
	if _, err := io.ReadFull(r, rest); err != nil {
		return "", nil, frameErr("truncated frame: %v", err)
	}
	crc := crc32.Checksum(hdr[:], frameCRC)
	crc = crc32.Update(crc, frameCRC, rest[:len(rest)-4])
	if got := binary.LittleEndian.Uint32(rest[len(rest)-4:]); got != crc {
		return "", nil, frameErr("checksum mismatch: frame says %#x, computed %#x", got, crc)
	}
	// One frame per request body: trailing bytes mean a confused sender.
	var extra [1]byte
	if n, _ := r.Read(extra[:]); n != 0 {
		return "", nil, frameErr("trailing bytes after frame")
	}
	return string(rest[:idLen]), rest[idLen : uint64(idLen)+payLen], nil
}
