package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/trace"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func gzProfileBody(t *testing.T, p *profile.Profile) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := profile.WriteGzip(&buf, p); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func gzTraceBody(t *testing.T, tr trace.Trace) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteGzip(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func uploadProfile(t *testing.T, ts *httptest.Server, p *profile.Profile) Meta {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/profiles", "application/gzip", gzProfileBody(t, p))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("upload: status %d: %s", resp.StatusCode, body)
	}
	var ur uploadResponse
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		t.Fatal(err)
	}
	return ur.Meta
}

// offlineBin encodes what `mocktails synth -format bin` would emit for
// (p, seed, n): the reference bytes a server stream must match.
func offlineBin(t *testing.T, p *profile.Profile, seed uint64, n int) []byte {
	t.Helper()
	src := core.Synthesize(p, seed)
	tr := trace.Collect(src, n)
	if c, ok := src.(interface{ Close() }); ok {
		c.Close()
	}
	var buf bytes.Buffer
	if _, err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func offlineCSV(t *testing.T, p *profile.Profile, seed uint64, n int) []byte {
	t.Helper()
	src := core.Synthesize(p, seed)
	tr := trace.Collect(src, n)
	if c, ok := src.(interface{ Close() }); ok {
		c.Close()
	}
	var buf bytes.Buffer
	if _, err := trace.WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The core acceptance invariant: a streamed synthesis response is
// byte-identical to the offline encoder's output for the same
// (profile, seed, n, format).
func TestSynthStreamMatchesOffline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	p := testProfile(t, 1)
	meta := uploadProfile(t, ts, p)

	cases := []struct {
		query string
		seed  uint64
		n     int
		csv   bool
	}{
		{"seed=42", 42, 0, false},
		{"seed=7", 7, 0, false},
		{"seed=7&n=100", 7, 100, false},
		{"seed=42&format=csv", 42, 0, true},
		{"seed=9&n=37&format=csv", 9, 37, true},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/profiles/"+meta.ID+"/synth?"+tc.query, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d err %v", tc.query, resp.StatusCode, err)
		}
		var want []byte
		if tc.csv {
			want = offlineCSV(t, p, tc.seed, tc.n)
		} else {
			want = offlineBin(t, p, tc.seed, tc.n)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: stream differs from offline output (%d vs %d bytes)", tc.query, len(got), len(want))
		}
		if !tc.csv {
			if cl := resp.Header.Get("Content-Length"); cl != fmt.Sprint(len(want)) {
				t.Fatalf("%s: Content-Length %s, want %d", tc.query, cl, len(want))
			}
		}
		if id := resp.Header.Get("X-Mocktails-Profile"); id != meta.ID {
			t.Fatalf("%s: X-Mocktails-Profile %q", tc.query, id)
		}
	}
}

// Uploading a raw trace has the server fit it in-process with the CLI's
// default partitioning, so the resulting profile content-addresses
// identically to a pre-fit upload of the same trace — the second upload
// is a dedupe hit.
func TestUploadTraceFitsAndDedupes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tr := testTrace(3, 300)

	resp, err := http.Post(ts.URL+"/v1/profiles?kind=trace&name=w3", "application/gzip", gzTraceBody(t, tr))
	if err != nil {
		t.Fatal(err)
	}
	var ur uploadResponse
	err = json.NewDecoder(resp.Body).Decode(&ur)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("trace upload: status %d err %v", resp.StatusCode, err)
	}

	p, err := core.Build("w3", tr, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantID, _, err := ProfileID(p)
	if err != nil {
		t.Fatal(err)
	}
	if ur.ID != wantID {
		t.Fatalf("server fit produced %s, offline fit %s — default params diverged", ur.ID, wantID)
	}

	resp2, err := http.Post(ts.URL+"/v1/profiles", "application/gzip", gzProfileBody(t, p))
	if err != nil {
		t.Fatal(err)
	}
	var ur2 uploadResponse
	err = json.NewDecoder(resp2.Body).Decode(&ur2)
	resp2.Body.Close()
	if err != nil || resp2.StatusCode != http.StatusOK || !ur2.Deduped || ur2.ID != wantID {
		t.Fatalf("pre-fit re-upload: status %d deduped %v id %s err %v",
			resp2.StatusCode, ur2.Deduped, ur2.ID, err)
	}
}

// The upload decoder sniffs by magic: the same trace delivered raw
// binary, as CSV, and as gzip content-addresses to one profile.
func TestUploadTraceSniffsFormats(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tr := testTrace(5, 300)

	var binBuf, csvBuf bytes.Buffer
	if _, err := trace.WriteBinary(&binBuf, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.WriteCSV(&csvBuf, tr); err != nil {
		t.Fatal(err)
	}

	ids := make(map[string]bool)
	for name, body := range map[string]io.Reader{
		"gz":  gzTraceBody(t, tr),
		"bin": &binBuf,
		"csv": &csvBuf,
	} {
		resp, err := http.Post(ts.URL+"/v1/profiles?kind=trace&name=w5", "application/octet-stream", body)
		if err != nil {
			t.Fatal(err)
		}
		var ur uploadResponse
		err = json.NewDecoder(resp.Body).Decode(&ur)
		resp.Body.Close()
		if err != nil || (resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK) {
			t.Fatalf("%s upload: status %d err %v", name, resp.StatusCode, err)
		}
		ids[ur.ID] = true
	}
	if len(ids) != 1 {
		t.Fatalf("formats content-addressed to %d distinct profiles, want 1", len(ids))
	}
}

// A chunked upload (unknown Content-Length, body arriving through a
// pipe) fits while the body streams in and content-addresses exactly
// like an offline build of the same trace.
func TestUploadTraceChunked(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tr := testTrace(6, 2000)
	raw := gzTraceBody(t, tr).Bytes()

	pr, pw := io.Pipe()
	go func() {
		// Dribble the body in small chunks so the fit demonstrably
		// overlaps with the upload.
		for len(raw) > 0 {
			n := 512
			if n > len(raw) {
				n = len(raw)
			}
			if _, err := pw.Write(raw[:n]); err != nil {
				return
			}
			raw = raw[n:]
		}
		pw.Close()
	}()
	req, err := http.NewRequest("POST", ts.URL+"/v1/profiles?kind=trace&name=w6", pr)
	if err != nil {
		t.Fatal(err)
	}
	// No ContentLength: the client sends Transfer-Encoding: chunked.
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var ur uploadResponse
	err = json.NewDecoder(resp.Body).Decode(&ur)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("chunked upload: status %d err %v", resp.StatusCode, err)
	}

	p, err := core.Build("w6", tr, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantID, _, err := ProfileID(p)
	if err != nil {
		t.Fatal(err)
	}
	if ur.ID != wantID {
		t.Fatalf("chunked fit produced %s, offline fit %s", ur.ID, wantID)
	}
}

// Exceeding -max-trace-bytes aborts the fit with 413 instead of
// materialising an unbounded trace.
func TestUploadTraceTooLarge(t *testing.T) {
	// Budget for 100 decoded records; send 300.
	_, ts := newTestServer(t, Config{MaxTraceBytes: 100 * trace.RequestMemBytes})
	resp, err := http.Post(ts.URL+"/v1/profiles?kind=trace", "application/gzip", gzTraceBody(t, testTrace(7, 300)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", resp.StatusCode, body)
	}
	// Under the cap, the same endpoint still fits.
	resp, err = http.Post(ts.URL+"/v1/profiles?kind=trace", "application/gzip", gzTraceBody(t, testTrace(7, 50)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("under-cap upload: status %d, want 201", resp.StatusCode)
	}
}

// Exceeding -max-upload (wire bytes) also maps to 413 on the trace
// path, surfaced through the streaming decoder.
func TestUploadBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxUploadBytes: 256})
	var binBuf bytes.Buffer
	if _, err := trace.WriteBinary(&binBuf, testTrace(8, 300)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/profiles?kind=trace", "application/octet-stream", &binBuf)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", resp.StatusCode, body)
	}
}

// An empty body is a client error, not an empty profile.
func TestUploadEmptyTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/profiles?kind=trace", "application/octet-stream", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !bytes.Contains(body, []byte("empty trace")) {
		t.Fatalf("status %d body %s, want 400 empty trace", resp.StatusCode, body)
	}
}

func TestGetProfile(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	p := testProfile(t, 1)
	meta := uploadProfile(t, ts, p)

	resp, err := http.Get(ts.URL + "/v1/profiles/" + meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got Meta
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || got != meta {
		t.Fatalf("get meta: status %d got %+v want %+v", resp.StatusCode, got, meta)
	}

	// ?download= round-trips the stored profile bit-exactly.
	resp, err = http.Get(ts.URL + "/v1/profiles/" + meta.ID + "?download=1")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := profile.ReadGzip(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	rtID, _, err := ProfileID(rt)
	if err != nil {
		t.Fatal(err)
	}
	if rtID != meta.ID {
		t.Fatalf("downloaded profile re-addresses to %s, want %s", rtID, meta.ID)
	}

	resp, err = http.Get(ts.URL + "/v1/profiles/" + meta.ID + "/../escape")
	if err == nil {
		resp.Body.Close()
	}
}

func TestListAndHealth(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	uploadProfile(t, ts, testProfile(t, 1))
	uploadProfile(t, ts, testProfile(t, 2))

	resp, err := http.Get(ts.URL + "/v1/profiles")
	if err != nil {
		t.Fatal(err)
	}
	var lr struct {
		Profiles []Meta `json:"profiles"`
	}
	err = json.NewDecoder(resp.Body).Decode(&lr)
	resp.Body.Close()
	if err != nil || len(lr.Profiles) != 2 {
		t.Fatalf("list: %d profiles err %v", len(lr.Profiles), err)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status        string `json:"status"`
		Profiles      int    `json:"profiles"`
		ActiveStreams int64  `json:"active_streams"`
	}
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil || h.Status != "ok" || h.Profiles != 2 || h.ActiveStreams != 0 {
		t.Fatalf("healthz: %+v err %v", h, err)
	}
	if s.ActiveStreams() != 0 {
		t.Fatal("active streams leaked")
	}
}

func TestErrorStatuses(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	meta := uploadProfile(t, ts, testProfile(t, 1))

	check := func(method, path string, body io.Reader, want int) {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s %s: status %d, want %d", method, path, resp.StatusCode, want)
		}
	}

	check("GET", "/v1/profiles/deadbeef", nil, http.StatusNotFound)
	check("POST", "/v1/profiles/deadbeef/synth", nil, http.StatusNotFound)
	check("POST", "/v1/profiles?kind=nonsense", strings.NewReader("x"), http.StatusBadRequest)
	check("POST", "/v1/profiles?bogus=1", strings.NewReader("x"), http.StatusBadRequest)
	check("POST", "/v1/profiles", strings.NewReader("not gzip"), http.StatusBadRequest)
	check("POST", "/v1/profiles?kind=trace", strings.NewReader("not gzip"), http.StatusBadRequest)
	check("POST", "/v1/profiles/"+meta.ID+"/synth?seed=abc", nil, http.StatusBadRequest)
	check("POST", "/v1/profiles/"+meta.ID+"/synth?format=xml", nil, http.StatusBadRequest)
	check("DELETE", "/v1/profiles/"+meta.ID, nil, http.StatusMethodNotAllowed)
}

// A profile larger than the whole store yields 507, not an eviction
// loop.
func TestUploadStoreFull(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1, StoreBudget: 64})
	resp, err := http.Post(ts.URL+"/v1/profiles", "application/gzip", gzProfileBody(t, testProfile(t, 1)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("status %d, want 507", resp.StatusCode)
	}
}

// Exhausting an endpoint limiter turns requests into deterministic
// 429s carrying Retry-After, and releasing a slot restores service.
func TestThrottle(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxStreams: 2})
	meta := uploadProfile(t, ts, testProfile(t, 1))

	for i := 0; i < 2; i++ {
		if !s.streams.tryAcquire() {
			t.Fatal("limiter refused below capacity")
		}
	}
	resp, err := http.Post(ts.URL+"/v1/profiles/"+meta.ID+"/synth", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}

	s.streams.release()
	resp, err = http.Post(ts.URL+"/v1/profiles/"+meta.ID+"/synth", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d, want 200", resp.StatusCode)
	}
	s.streams.release()
}

// refsOf reads the current pin count of a stored profile through the
// store's test hook, keeping this test independent of how IDs map to
// shards.
func refsOf(s *Server, id string) int {
	return s.store.refs(id)
}

// A client that disconnects mid-stream stops the generator: the
// profile's pin is released and the active-stream gauge returns to
// zero shortly after the close.
func TestSynthClientDisconnect(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// A bigger trace so the stream (~6 MB encoded) far exceeds socket
	// buffering: the server must block mid-write until the client reads.
	p, err := core.Build("big", testTrace(1, 300_000), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	meta := uploadProfile(t, ts, p)

	resp, err := http.Post(ts.URL+"/v1/profiles/"+meta.ID+"/synth", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Read one chunk's worth, then hang up.
	if _, err := io.ReadFull(resp.Body, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if got := refsOf(s, meta.ID); got != 1 {
		t.Fatalf("mid-stream refs = %d, want 1", got)
	}
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for refsOf(s, meta.ID) != 0 || s.ActiveStreams() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stream did not wind down: refs=%d active=%d",
				refsOf(s, meta.ID), s.ActiveStreams())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The acceptance bar: at least 64 concurrent synthesis streams, all
// byte-identical to the offline encoder, with no pins or active-stream
// counts leaking afterwards. Run under -race in CI.
func TestConcurrentStreams(t *testing.T) {
	const streams = 64
	s, ts := newTestServer(t, Config{MaxStreams: streams})
	p := testProfile(t, 1)
	meta := uploadProfile(t, ts, p)
	want := offlineBin(t, p, 42, 0)

	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/profiles/"+meta.ID+"/synth?seed=42", "", nil)
			if err != nil {
				errs <- err
				return
			}
			got, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			if !bytes.Equal(got, want) {
				errs <- fmt.Errorf("stream differs from offline output")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := refsOf(s, meta.ID); got != 0 {
		t.Fatalf("%d pins leaked", got)
	}
	if s.ActiveStreams() != 0 {
		t.Fatal("active-stream gauge leaked")
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"0", 0, false},
		{"123", 123, false},
		{"1K", 1 << 10, false},
		{"64MiB", 64 << 20, false},
		{"2GB", 2 << 30, false},
		{" 4 KiB ", 4 << 10, false},
		{"1gib", 1 << 30, false},
		{"-1", 0, true},
		{"lots", 0, true},
		{"", 0, true},
	}
	for _, tc := range cases {
		got, err := ParseBytes(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseBytes(%q) = %d, %v; want %d, err=%v", tc.in, got, err, tc.want, tc.err)
		}
	}
}

// TestDownloadAdvertisesEncoding pins the download contract: the
// response Content-Type and Content-Disposition always describe the
// encoding actually sent — gz for heap residents, flat for disk-tier
// promotions — and either encoding can be forced explicitly.
func TestDownloadAdvertisesEncoding(t *testing.T) {
	s, ts := newTestServer(t, Config{DiskDir: t.TempDir()})
	p := testProfile(t, 11)
	meta := uploadProfile(t, ts, p)

	get := func(q string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/profiles/" + meta.ID + "?download=" + q)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("download=%s: status %d err %v", q, resp.StatusCode, err)
		}
		return resp, body
	}
	checkGz := func(resp *http.Response, body []byte) {
		t.Helper()
		if ct := resp.Header.Get("Content-Type"); ct != contentTypeGz {
			t.Fatalf("Content-Type %q, want %q", ct, contentTypeGz)
		}
		if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, meta.ID+".profile.gz") {
			t.Fatalf("Content-Disposition %q lacks gz filename", cd)
		}
		rt, err := profile.ReadGzip(bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if id, _, _ := ProfileID(rt); id != meta.ID {
			t.Fatalf("gz body re-addresses to %s", id)
		}
	}
	checkFlat := func(resp *http.Response, body []byte) {
		t.Helper()
		if ct := resp.Header.Get("Content-Type"); ct != contentTypeFlat {
			t.Fatalf("Content-Type %q, want %q", ct, contentTypeFlat)
		}
		if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, meta.ID+flatExt) {
			t.Fatalf("Content-Disposition %q lacks flat filename", cd)
		}
		f, err := profile.OpenFlat(body)
		if err != nil {
			t.Fatalf("flat body does not open: %v", err)
		}
		if id, _, _ := ProfileID(f.Profile()); id != meta.ID {
			t.Fatalf("flat body re-addresses to %s", id)
		}
	}

	// Heap-backed: stored encoding is gz; both encodings can be forced.
	resp, body := get("1")
	checkGz(resp, body)
	resp, body = get("flat")
	checkFlat(resp, body)

	// Demote, so the next acquire promotes a flat mapping: the stored
	// encoding is now flat, and gz can still be forced.
	if !s.Store().Demote(meta.ID) {
		t.Fatal("Demote failed")
	}
	resp, body = get("1")
	checkFlat(resp, body)
	resp, body = get("gz")
	checkGz(resp, body)
}

// TestSynthColdHitByteIdentical streams the same synthesis twice over
// HTTP — once warm (heap resident), once cold (promoted from the disk
// tier) — and requires identical bytes, the tier's core invariant.
func TestSynthColdHitByteIdentical(t *testing.T) {
	s, ts := newTestServer(t, Config{DiskDir: t.TempDir()})
	p := testProfile(t, 12)
	meta := uploadProfile(t, ts, p)

	stream := func() []byte {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/profiles/"+meta.ID+"/synth?seed=5", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("synth: status %d err %v", resp.StatusCode, err)
		}
		return body
	}
	warm := stream()
	if !s.Store().Demote(meta.ID) {
		t.Fatal("Demote failed")
	}
	cold := stream()
	if !bytes.Equal(warm, cold) {
		t.Fatalf("cold stream differs from warm (%d vs %d bytes)", len(cold), len(warm))
	}
	if want := offlineBin(t, p, 5, 0); !bytes.Equal(cold, want) {
		t.Fatal("cold stream differs from offline synthesis")
	}
}
