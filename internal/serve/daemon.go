package serve

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
)

// Main is the mocktailsd entry point, shared by the standalone binary
// and the `mocktails serve` alias. prog names the flag set in usage
// output. It blocks until the listener fails or a SIGINT/SIGTERM
// triggers a graceful drain.
func Main(prog string, args []string) {
	fs := flag.NewFlagSet(prog, flag.ExitOnError)
	addr := fs.String("addr", "localhost:8677", "listen address")
	shards := fs.Int("shards", DefaultShards, "profile store shard count")
	budget := fs.String("store-budget", "256MiB", "profile store byte budget (e.g. 64MiB, 1GiB; 0 = unlimited)")
	diskDir := fs.String("disk-dir", "", "disk-tier directory for flat profile files (empty = RAM-only store)")
	diskBudget := fs.String("disk-budget", "0", "disk-tier byte budget (0 = unlimited); only meaningful with -disk-dir")
	maxStreams := fs.Int("max-streams", 128, "max concurrent synthesis streams (0 = default, -1 = unlimited)")
	maxFits := fs.Int("max-fits", 4, "max concurrent in-process fits (0 = default, -1 = unlimited)")
	maxInflight := fs.Int("max-inflight", 512, "max total in-flight requests (0 = default, -1 = unlimited)")
	maxUpload := fs.String("max-upload", "1GiB", "max upload body size")
	maxTrace := fs.String("max-trace-bytes", "0", "max decoded in-memory size of one uploaded trace (0 = unlimited); exceeding returns 413")
	fitTimeout := fs.Duration("fit-timeout", 2*time.Minute, "timeout for one in-process fit")
	drain := fs.Duration("drain", 15*time.Second, "graceful-drain window after SIGTERM before in-flight streams are cut")
	fitWorkers := fs.Int("j", 0, "fit workers per upload (0 = MOCKTAILS_PARALLELISM or GOMAXPROCS)")
	synthWorkers := fs.Int("synth-j", 1, "chunk-refill workers per synthesis stream; any value streams identical bytes")
	debug := fs.Bool("debug", false, "serve net/http/pprof and expvar metrics under /debug/ on the main listener")
	traceRing := fs.Int("trace-ring", 0, "recent request traces kept for GET /debug/requests (0 = 256)")
	peers := fs.String("peers", "", "comma-separated base URLs of the other cluster members (e.g. http://h1:8677,http://h2:8677); empty = single node")
	advertise := fs.String("advertise", "", "base URL peers use to reach this node (default: http://<addr>); only meaningful with -peers")
	of := obs.RegisterFlags(fs)
	fs.Parse(args)

	budgetBytes, err := ParseBytes(*budget)
	if err != nil {
		obs.Fatal(fmt.Errorf("-store-budget: %w", err))
	}
	uploadBytes, err := ParseBytes(*maxUpload)
	if err != nil {
		obs.Fatal(fmt.Errorf("-max-upload: %w", err))
	}
	traceBytes, err := ParseBytes(*maxTrace)
	if err != nil {
		obs.Fatal(fmt.Errorf("-max-trace-bytes: %w", err))
	}
	diskBudgetBytes, err := ParseBytes(*diskBudget)
	if err != nil {
		obs.Fatal(fmt.Errorf("-disk-budget: %w", err))
	}
	if budgetBytes == 0 {
		budgetBytes = -1 // daemon flag semantics: 0 = unlimited
	}

	ctx, stop := of.Start(strings.ReplaceAll(prog, " ", "."))
	defer stop()

	var clusterCfg ClusterConfig
	if *peers != "" {
		adv := *advertise
		if adv == "" {
			adv = "http://" + *addr
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, strings.TrimRight(p, "/"))
			}
		}
		clusterCfg = ClusterConfig{Advertise: strings.TrimRight(adv, "/"), Peers: peerList}
	}

	srvr, err := NewServer(Config{
		Shards:         *shards,
		StoreBudget:    budgetBytes,
		MaxStreams:     *maxStreams,
		MaxFits:        *maxFits,
		MaxInflight:    *maxInflight,
		MaxUploadBytes: uploadBytes,
		MaxTraceBytes:  traceBytes,
		FitTimeout:     *fitTimeout,
		FitWorkers:     *fitWorkers,
		SynthWorkers:   *synthWorkers,
		Debug:          *debug,
		DiskDir:        *diskDir,
		DiskBudget:     diskBudgetBytes,
		Cluster:        clusterCfg,
		TraceRing:      *traceRing,
	})
	if err != nil {
		obs.Fatal(err)
	}

	httpSrv := &http.Server{
		Handler:           srvr.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		// Requests inherit the daemon's root span context, so request
		// spans nest under the daemon span in -v output.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		obs.Fatal(err)
	}
	obs.Logger().Info("mocktailsd listening", "addr", ln.Addr().String(),
		"store_budget", budgetBytes, "shards", *shards, "max_streams", *maxStreams,
		"disk_dir", *diskDir, "disk_budget", diskBudgetBytes)

	sigCtx, cancelSig := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancelSig()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			obs.Fatal(err)
		}
	case <-sigCtx.Done():
		// Graceful drain: stop accepting, give in-flight requests the
		// drain window, then cut the stragglers so shutdown is bounded
		// even with multi-GB streams in flight.
		obs.Logger().Info("draining", "active_streams", srvr.ActiveStreams(), "window", *drain)
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(dctx); err != nil {
			obs.Logger().Warn("drain window expired, closing remaining connections", "err", err)
			httpSrv.Close()
		}
		<-serveErr
		obs.Logger().Info("drained", "active_streams", srvr.ActiveStreams())
	}
}

// ParseBytes parses a human-readable byte size: a plain integer, or an
// integer with a K/M/G/KiB/MiB/GiB/KB/MB/GB suffix (all binary, 1024
// based).
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	mult := int64(1)
	upper := strings.ToUpper(t)
	for _, suf := range []struct {
		name string
		mult int64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30},
		{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30},
	} {
		if strings.HasSuffix(upper, suf.name) {
			mult = suf.mult
			t = strings.TrimSpace(t[:len(t)-len(suf.name)])
			break
		}
	}
	n, err := strconv.ParseInt(t, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("negative byte size %q", s)
	}
	return n * mult, nil
}
