package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"
)

// ringKeys generates n deterministic profile-ID-shaped keys (hex
// SHA-256 strings), the exact key population the production ring sees.
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
		keys[i] = hex.EncodeToString(sum[:])
	}
	return keys
}

func ringNodes(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://node-%d:8677", i)
	}
	return nodes
}

// Key distribution stays within ±10% of uniform across realistic
// cluster sizes.
func TestRingDistribution(t *testing.T) {
	keys := ringKeys(100_000)
	for _, n := range []int{3, 5, 8} {
		t.Run(fmt.Sprintf("%dnodes", n), func(t *testing.T) {
			r := NewRing(ringNodes(n), 0)
			counts := make(map[string]int, n)
			for _, k := range keys {
				counts[r.Owner(k)]++
			}
			if len(counts) != n {
				t.Fatalf("keys landed on %d of %d nodes", len(counts), n)
			}
			uniform := float64(len(keys)) / float64(n)
			for node, c := range counts {
				dev := float64(c)/uniform - 1
				if dev < -0.10 || dev > 0.10 {
					t.Errorf("node %s owns %d keys, %.1f%% from uniform %g (tolerance ±10%%)",
						node, c, 100*dev, uniform)
				}
			}
		})
	}
}

// Adding or removing one node remaps fewer than 2/N of the keys — the
// property that distinguishes consistent hashing from a modulo map,
// which would remap nearly all of them.
func TestRingRemapBound(t *testing.T) {
	keys := ringKeys(50_000)
	for _, n := range []int{3, 5, 8} {
		nodes := ringNodes(n + 1)
		before := NewRing(nodes[:n], 0)
		grown := NewRing(nodes[:n+1], 0)
		shrunk := NewRing(nodes[1:n], 0) // remove nodes[0]

		var movedGrow, movedShrink int
		for _, k := range keys {
			base := before.Owner(k)
			if grown.Owner(k) != base {
				movedGrow++
			}
			if before.Owner(k) == nodes[0] {
				continue // its node vanished; the key must move
			}
			if shrunk.Owner(k) != base {
				movedShrink++
			}
		}
		bound := int(2.0 / float64(n) * float64(len(keys)))
		if movedGrow >= bound {
			t.Errorf("n=%d: adding one node remapped %d of %d keys, want < %d",
				n, movedGrow, len(keys), bound)
		}
		// Keys not owned by the removed node must not move at all.
		if movedShrink != 0 {
			t.Errorf("n=%d: removing a node moved %d keys it did not own", n, movedShrink)
		}
	}
}

// Property test over random memberships: ownership is deterministic,
// Sequence starts with the owner, covers every member exactly once,
// and survives membership shuffles (the ring is order-independent).
func TestRingProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := ringKeys(200)
	for iter := 0; iter < 50; iter++ {
		n := 1 + rng.Intn(9)
		nodes := ringNodes(n)
		r := NewRing(nodes, 0)
		shuffled := append([]string(nil), nodes...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r2 := NewRing(shuffled, 0)
		for _, k := range keys {
			if r.Owner(k) != r2.Owner(k) {
				t.Fatalf("owner depends on member order: %q vs %q", r.Owner(k), r2.Owner(k))
			}
			seq := r.Sequence(k)
			if len(seq) != n {
				t.Fatalf("Sequence returned %d members, want %d", len(seq), n)
			}
			if seq[0] != r.Owner(k) {
				t.Fatalf("Sequence[0] = %q, Owner = %q", seq[0], r.Owner(k))
			}
			seen := make(map[string]bool, n)
			for _, m := range seq {
				if seen[m] {
					t.Fatalf("Sequence repeats member %q", m)
				}
				seen[m] = true
			}
		}
	}
}

// Degenerate memberships: empty ring owns nothing, duplicates and
// empty strings collapse, a single node owns everything.
func TestRingDegenerate(t *testing.T) {
	if own := NewRing(nil, 0).Owner("abc"); own != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", own)
	}
	if seq := NewRing(nil, 0).Sequence("abc"); seq != nil {
		t.Fatalf("empty ring sequence = %v, want nil", seq)
	}
	r := NewRing([]string{"a", "", "a", "b"}, 4)
	if r.Len() != 2 {
		t.Fatalf("ring len = %d, want 2 (duplicates and empties collapse)", r.Len())
	}
	solo := NewRing([]string{"only"}, 0)
	for _, k := range ringKeys(10) {
		if solo.Owner(k) != "only" {
			t.Fatalf("single-node ring owner = %q", solo.Owner(k))
		}
	}
}
