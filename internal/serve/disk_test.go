package serve

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/synth"
	"repro/internal/trace"
)

func newDiskStore(t *testing.T, budget, diskBudget int64) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := NewTieredStore(StoreConfig{Shards: 1, Budget: budget, DiskDir: dir, DiskBudget: diskBudget})
	if err != nil {
		t.Fatal(err)
	}
	return s, dir
}

// drain synthesizes the full stream from a pinned profile view.
func drainPin(pin *Pin, seed uint64) trace.Trace {
	src := synth.NewFrom(pin.View(), seed)
	defer src.Close()
	return trace.Collect(src, 0)
}

func TestDiskTierWriteThrough(t *testing.T) {
	s, dir := newDiskStore(t, 0, 0)
	p := testProfile(t, 1)
	meta, _, err := s.Put(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, meta.ID+flatExt)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("write-through flat file missing: %v", err)
	}
	bytes, files := s.DiskStats()
	if files != 1 || bytes <= 0 {
		t.Fatalf("disk stats = %d bytes / %d files, want 1 nonempty file", bytes, files)
	}
}

func TestDiskTierDemotePromoteByteIdentical(t *testing.T) {
	s, _ := newDiskStore(t, 0, 0)
	p := testProfile(t, 2)
	meta, _, err := s.Put(p)
	if err != nil {
		t.Fatal(err)
	}
	pin, ok := s.Acquire(meta.ID)
	if !ok {
		t.Fatal("warm acquire missed")
	}
	if pin.Flat() != nil {
		t.Fatal("fresh upload should be heap-backed")
	}
	want := drainPin(pin, 42)
	pin.Release()

	if !s.Demote(meta.ID) {
		t.Fatal("Demote refused an unpinned resident")
	}
	if s.Len() != 0 {
		t.Fatalf("RAM tier holds %d entries after demotion", s.Len())
	}

	// Cold hit: promoted from disk as a flat mapping, and the stream it
	// feeds is byte-identical to the heap profile's.
	pin2, ok := s.Acquire(meta.ID)
	if !ok {
		t.Fatal("cold acquire missed a disk-tier profile")
	}
	defer pin2.Release()
	if pin2.Flat() == nil {
		t.Fatal("promoted entry should be flat-backed")
	}
	if pin2.Meta() != meta {
		t.Fatalf("promoted meta %+v != uploaded meta %+v", pin2.Meta(), meta)
	}
	got := drainPin(pin2, 42)
	if len(got) != len(want) {
		t.Fatalf("cold stream has %d requests, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("request %d differs cold vs warm: %+v vs %+v", i, got[i], want[i])
		}
	}
	if s.Len() != 1 {
		t.Fatalf("promotion did not admit the entry: Len=%d", s.Len())
	}
}

func TestDiskTierBudgetDemotesColdest(t *testing.T) {
	p1, p2 := testProfile(t, 3), testProfile(t, 4)
	_, size1, err := ProfileID(p1)
	if err != nil {
		t.Fatal(err)
	}
	_, size2, err := ProfileID(p2)
	if err != nil {
		t.Fatal(err)
	}
	// A RAM budget that fits either profile but not both forces the
	// second Put to demote the first; both stay servable via disk.
	budget := size1 + size2 - 1
	s, _ := newDiskStore(t, budget, 0)
	m1, _, err := s.Put(p1)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := s.Put(p2)
	if err != nil {
		t.Fatalf("second Put should demote, not fail: %v", err)
	}
	if s.Len() != 1 {
		t.Fatalf("RAM tier holds %d entries, want 1", s.Len())
	}
	for _, id := range []string{m1.ID, m2.ID} {
		pin, ok := s.Acquire(id)
		if !ok {
			t.Fatalf("profile %s not servable after demotion", id)
		}
		pin.Release()
	}
	if _, files := s.DiskStats(); files != 2 {
		t.Fatalf("disk tier holds %d files, want 2", files)
	}
}

func TestDiskTierBudgetEvictsFiles(t *testing.T) {
	s, dir := newDiskStore(t, 0, 1) // 1-byte disk budget: nothing sticks
	p := testProfile(t, 5)
	meta, _, err := s.Put(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, files := s.DiskStats(); files != 0 {
		t.Fatalf("disk tier kept %d files over budget", files)
	}
	if _, err := os.Stat(filepath.Join(dir, meta.ID+flatExt)); !os.IsNotExist(err) {
		t.Fatalf("over-budget flat file not unlinked: %v", err)
	}
	// Still resident in RAM, so still servable.
	if pin, ok := s.Acquire(meta.ID); !ok {
		t.Fatal("RAM entry lost")
	} else {
		pin.Release()
	}
}

func TestDiskTierReindexOnRestart(t *testing.T) {
	s, dir := newDiskStore(t, 0, 0)
	p := testProfile(t, 6)
	meta, _, err := s.Put(p)
	if err != nil {
		t.Fatal(err)
	}
	pin, ok := s.Acquire(meta.ID)
	if !ok {
		t.Fatal("acquire missed")
	}
	want := drainPin(pin, 9)
	pin.Release()

	// A new store over the same directory — a daemon restart — serves
	// the profile cold from the re-indexed file.
	s2, err := NewTieredStore(StoreConfig{Shards: 1, DiskDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, files := s2.DiskStats(); files != 1 {
		t.Fatalf("restart indexed %d files, want 1", files)
	}
	metas := s2.List()
	if len(metas) != 1 || metas[0] != meta {
		t.Fatalf("restart List = %+v, want [%+v]", metas, meta)
	}
	pin2, ok := s2.Acquire(meta.ID)
	if !ok {
		t.Fatal("restarted store missed the profile")
	}
	defer pin2.Release()
	got := drainPin(pin2, 9)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("restarted stream differs at request %d", i)
		}
	}
}

func TestDiskTierDemotedVisibleInMetaAndList(t *testing.T) {
	s, _ := newDiskStore(t, 0, 0)
	p := testProfile(t, 7)
	meta, _, err := s.Put(p)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Demote(meta.ID) {
		t.Fatal("Demote failed")
	}
	got, ok := s.Meta(meta.ID)
	if !ok || got != meta {
		t.Fatalf("Meta after demotion = %+v ok=%v, want %+v", got, ok, meta)
	}
	metas := s.List()
	if len(metas) != 1 || metas[0] != meta {
		t.Fatalf("List after demotion = %+v", metas)
	}
}

func TestDiskTierPinnedBlocksDemote(t *testing.T) {
	s, _ := newDiskStore(t, 0, 0)
	meta, _, err := s.Put(testProfile(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	pin, _ := s.Acquire(meta.ID)
	if s.Demote(meta.ID) {
		t.Fatal("Demote evicted a pinned entry")
	}
	pin.Release()
	if !s.Demote(meta.ID) {
		t.Fatal("Demote failed after release")
	}
}

func TestDiskTierCorruptFileDropped(t *testing.T) {
	s, dir := newDiskStore(t, 0, 0)
	meta, _, err := s.Put(testProfile(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	s.Demote(meta.ID)
	// Structural damage (truncation) must not be served; the file is
	// dropped from the tier and the acquire is a clean miss.
	path := filepath.Join(dir, meta.ID+flatExt)
	if err := os.Truncate(path, 16); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Acquire(meta.ID); ok {
		t.Fatal("corrupt flat file served")
	}
	if _, files := s.DiskStats(); files != 0 {
		t.Fatalf("corrupt file kept in index: %d files", files)
	}
}
