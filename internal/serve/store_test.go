package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/trace"
)

// testTrace builds a small deterministic trace; the seed varies the
// content so different seeds fit to different profiles.
func testTrace(seed uint64, n int) trace.Trace {
	rng := stats.NewRNG(seed)
	tr := make(trace.Trace, 0, n)
	now, addr := uint64(100), uint64(1<<20)
	for i := 0; i < n; i++ {
		now += uint64(rng.Range(1, 100))
		addr += uint64(rng.Range(-4, 8) * 64)
		op := trace.Read
		if rng.Bool(0.3) {
			op = trace.Write
		}
		tr = append(tr, trace.Request{Time: now, Addr: addr, Size: 64, Op: op})
	}
	return tr
}

func testProfile(t testing.TB, seed uint64) *profile.Profile {
	t.Helper()
	p, err := core.Build(fmt.Sprintf("w%d", seed), testTrace(seed, 300), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStorePutAcquireDedupe(t *testing.T) {
	s := NewStore(4, 0)
	p := testProfile(t, 1)
	meta, added, err := s.Put(p)
	if err != nil || !added {
		t.Fatalf("first Put: added=%v err=%v", added, err)
	}
	if meta.ID == "" || meta.Bytes <= 0 || meta.Requests != 300 {
		t.Fatalf("bad meta: %+v", meta)
	}

	// The same content re-uploaded (even as a distinct decoded value)
	// dedupes to the same ID without growing the store.
	again := testProfile(t, 1)
	meta2, added2, err := s.Put(again)
	if err != nil || added2 {
		t.Fatalf("dedupe Put: added=%v err=%v", added2, err)
	}
	if meta2.ID != meta.ID || s.Len() != 1 {
		t.Fatalf("dedupe changed identity: %s vs %s, len=%d", meta2.ID, meta.ID, s.Len())
	}

	pin, ok := s.Acquire(meta.ID)
	if !ok {
		t.Fatal("Acquire missed a resident profile")
	}
	if pin.Meta().ID != meta.ID || pin.Profile() == nil {
		t.Fatal("pin carries wrong entry")
	}
	pin.Release()
	pin.Release() // idempotent

	if _, ok := s.Acquire("no-such-id"); ok {
		t.Fatal("Acquire invented a profile")
	}
}

func TestStoreListAndMeta(t *testing.T) {
	s := NewStore(4, 0)
	var ids []string
	for seed := uint64(1); seed <= 5; seed++ {
		m, _, err := s.Put(testProfile(t, seed))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, m.ID)
	}
	all := s.List()
	if len(all) != 5 {
		t.Fatalf("List returned %d profiles, want 5", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].ID <= all[i-1].ID {
			t.Fatal("List is not sorted by ID")
		}
	}
	for _, id := range ids {
		if _, ok := s.Meta(id); !ok {
			t.Fatalf("Meta missed %s", id)
		}
	}
}

// A single-shard store makes LRU order deterministic: filling past the
// budget evicts the least recently used profile, never exceeding the
// budget.
func TestStoreLRUEviction(t *testing.T) {
	p1, p2, p3 := testProfile(t, 1), testProfile(t, 2), testProfile(t, 3)
	_, s1, _ := ProfileID(p1)
	_, s2, _ := ProfileID(p2)
	_, s3, _ := ProfileID(p3)
	budget := s1 + s2 + s3/2 // room for two, not three
	s := NewStore(1, budget)

	m1, _, err := s.Put(p1)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := s.Put(p2)
	if err != nil {
		t.Fatal(err)
	}
	// Touch p1 so p2 is the LRU victim.
	if pin, ok := s.Acquire(m1.ID); ok {
		pin.Release()
	} else {
		t.Fatal("p1 missing")
	}
	m3, _, err := s.Put(p3)
	if err != nil {
		t.Fatalf("Put p3 should evict p2: %v", err)
	}
	if s.Bytes() > budget {
		t.Fatalf("store holds %d bytes over budget %d", s.Bytes(), budget)
	}
	if _, ok := s.Meta(m2.ID); ok {
		t.Fatal("LRU entry p2 survived eviction")
	}
	for _, id := range []string{m1.ID, m3.ID} {
		if _, ok := s.Meta(id); !ok {
			t.Fatalf("%s was wrongly evicted", id)
		}
	}
}

// Pinned profiles are never evicted: when everything resident is
// pinned and the budget is exhausted, Put fails with ErrStoreFull
// instead.
func TestStorePinnedNeverEvicted(t *testing.T) {
	p1, p2 := testProfile(t, 1), testProfile(t, 2)
	_, s1, _ := ProfileID(p1)
	_, s2, _ := ProfileID(p2)
	s := NewStore(1, max(s1, s2)+1) // room for either profile, never both

	m1, _, err := s.Put(p1)
	if err != nil {
		t.Fatal(err)
	}
	pin, ok := s.Acquire(m1.ID)
	if !ok {
		t.Fatal("p1 missing")
	}
	if _, _, err := s.Put(p2); !errors.Is(err, ErrStoreFull) {
		t.Fatalf("Put over a fully-pinned store: err=%v, want ErrStoreFull", err)
	}
	if _, ok := s.Meta(m1.ID); !ok {
		t.Fatal("pinned profile was evicted")
	}
	pin.Release()
	if _, _, err := s.Put(p2); err != nil {
		t.Fatalf("Put after release should evict p1: %v", err)
	}
	if _, ok := s.Meta(m1.ID); ok {
		t.Fatal("released profile survived eviction under pressure")
	}
}

func TestStoreRejectsOversizedProfile(t *testing.T) {
	s := NewStore(1, 16) // budget smaller than any profile
	if _, _, err := s.Put(testProfile(t, 1)); !errors.Is(err, ErrStoreFull) {
		t.Fatalf("err=%v, want ErrStoreFull", err)
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatal("rejected profile left residue")
	}
}

// Property test: under a random mix of put/acquire/release across
// shards, the store never exceeds its budget and pinned profiles are
// always retrievable.
func TestStoreBudgetProperty(t *testing.T) {
	profiles := make([]*profile.Profile, 12)
	var sizes int64
	for i := range profiles {
		profiles[i] = testProfile(t, uint64(i+1))
		_, sz, err := ProfileID(profiles[i])
		if err != nil {
			t.Fatal(err)
		}
		sizes += sz
	}
	budget := sizes / 3
	s := NewStore(4, budget)
	rng := rand.New(rand.NewSource(99))
	var pins []*Pin
	pinned := make(map[*Pin]string)
	for step := 0; step < 2000; step++ {
		switch rng.Intn(3) {
		case 0:
			_, _, err := s.Put(profiles[rng.Intn(len(profiles))])
			if err != nil && !errors.Is(err, ErrStoreFull) {
				t.Fatal(err)
			}
		case 1:
			all := s.List()
			if len(all) > 0 {
				id := all[rng.Intn(len(all))].ID
				if pin, ok := s.Acquire(id); ok {
					pins = append(pins, pin)
					pinned[pin] = id
				}
			}
		case 2:
			if len(pins) > 0 {
				i := rng.Intn(len(pins))
				pin := pins[i]
				pin.Release()
				delete(pinned, pin)
				pins = append(pins[:i], pins[i+1:]...)
			}
		}
		if got := s.Bytes(); got > budget {
			t.Fatalf("step %d: store holds %d bytes over budget %d", step, got, budget)
		}
		for pin, id := range pinned {
			if _, ok := s.Meta(id); !ok {
				t.Fatalf("step %d: pinned profile %s evicted", step, id)
			}
			if pin.Meta().ID != id {
				t.Fatalf("step %d: pin identity changed", step)
			}
		}
	}
}

// Race-detector test: concurrent uploads, acquires, releases, metadata
// reads and evictions across shards.
func TestStoreConcurrent(t *testing.T) {
	profiles := make([]*profile.Profile, 8)
	var sizes int64
	for i := range profiles {
		profiles[i] = testProfile(t, uint64(i+1))
		_, sz, err := ProfileID(profiles[i])
		if err != nil {
			t.Fatal(err)
		}
		sizes += sz
	}
	s := NewStore(4, sizes/2) // tight enough to force evictions
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for step := 0; step < 300; step++ {
				p := profiles[rng.Intn(len(profiles))]
				switch rng.Intn(4) {
				case 0:
					if _, _, err := s.Put(p); err != nil && !errors.Is(err, ErrStoreFull) {
						t.Error(err)
						return
					}
				case 1:
					id, _, _ := ProfileID(p)
					if pin, ok := s.Acquire(id); ok {
						if pin.Profile() == nil {
							t.Error("pin with nil profile")
						}
						pin.Release()
					}
				case 2:
					id, _, _ := ProfileID(p)
					s.Meta(id)
				case 3:
					s.List()
					s.Bytes()
					s.Len()
				}
			}
		}(g)
	}
	wg.Wait()
}
