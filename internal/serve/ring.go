package serve

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ringReplicas is the default virtual-node count per member. The
// relative deviation of one member's keyspace share goes as
// 1/sqrt(replicas); 1024 vnodes keep every member within ~5% of
// uniform (pinned by TestRingDistribution) while a membership change
// still only remaps about one member's share. Rings are built once per
// membership change, so the construction cost is irrelevant.
const ringReplicas = 1024

// Ring is a consistent-hash ring over cluster members: the outward
// extension of the store's FNV shard map. A profile ID hashes to a
// point on a 64-bit circle; its owner is the member whose nearest
// virtual node follows that point. Adding or removing one member only
// remaps the keys between the changed vnodes and their predecessors —
// about 1/N of the keyspace — where a modulo map would remap nearly
// everything. A Ring is immutable after construction; membership
// changes build a new Ring.
type Ring struct {
	hashes  []uint64 // sorted vnode positions
	owners  []string // owners[i] owns the arc ending at hashes[i]
	members []string // distinct members, sorted
}

// NewRing builds a ring over the given members with replicas virtual
// nodes each (<= 0 selects the default). Duplicate members collapse.
// A ring over zero members is valid and owns nothing.
func NewRing(members []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = ringReplicas
	}
	seen := make(map[string]bool, len(members))
	var distinct []string
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		distinct = append(distinct, m)
	}
	sort.Strings(distinct)
	r := &Ring{
		hashes:  make([]uint64, 0, len(distinct)*replicas),
		members: distinct,
	}
	type vnode struct {
		h     uint64
		owner string
	}
	vns := make([]vnode, 0, len(distinct)*replicas)
	for _, m := range distinct {
		for i := 0; i < replicas; i++ {
			vns = append(vns, vnode{ringHash(m + "#" + strconv.Itoa(i)), m})
		}
	}
	sort.Slice(vns, func(i, j int) bool {
		if vns[i].h != vns[j].h {
			return vns[i].h < vns[j].h
		}
		return vns[i].owner < vns[j].owner // deterministic tie-break
	})
	r.owners = make([]string, len(vns))
	for i, v := range vns {
		r.hashes = append(r.hashes, v.h)
		r.owners[i] = v.owner
	}
	return r
}

// ringHash is FNV-1a 64 — the same family as the store's shard map,
// widened to 64 bits — finished with the splitmix64 mixer: FNV alone
// avalanches poorly on short, similar strings ("node#1", "node#2", …),
// which visibly skews arc lengths; the finisher spreads the vnode
// positions uniformly over the circle.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Members returns the ring's distinct members in sorted order.
func (r *Ring) Members() []string { return r.members }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// vnodeAfter returns the index of the first vnode at or after h,
// wrapping past the top of the circle.
func (r *Ring) vnodeAfter(h uint64) int {
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return i
}

// Owner returns the member owning key, or "" for an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.hashes) == 0 {
		return ""
	}
	return r.owners[r.vnodeAfter(ringHash(key))]
}

// Sequence returns every member in preference order for key: the owner
// first, then the remaining members in the order their vnodes follow on
// the circle. It is the fallback order for fetch-on-miss and
// forwarding — when the owner is down, the next member in the sequence
// is the consistent second choice.
func (r *Ring) Sequence(key string) []string {
	if len(r.hashes) == 0 {
		return nil
	}
	seq := make([]string, 0, len(r.members))
	seen := make(map[string]bool, len(r.members))
	start := r.vnodeAfter(ringHash(key))
	for i := 0; i < len(r.hashes) && len(seq) < len(r.members); i++ {
		owner := r.owners[(start+i)%len(r.hashes)]
		if !seen[owner] {
			seen[owner] = true
			seq = append(seq, owner)
		}
	}
	return seq
}
