package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/profile"
)

// flatBytes returns the flat wire encoding of p — what peers exchange.
func flatBytes(t *testing.T, p *profile.Profile) []byte {
	t.Helper()
	buf, err := profile.MarshalFlat(p)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// newTestCluster boots n servers on live listeners and joins them into
// one consistent-hash ring. Tests only learn each node's address after
// its listener starts, so the join runs after boot — exactly the
// JoinCluster path the production daemon avoids needing.
func newTestCluster(t *testing.T, n int, cfg Config) ([]*Server, []*httptest.Server) {
	t.Helper()
	srvs := make([]*Server, n)
	tss := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		s, err := NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		srvs[i] = s
		tss[i] = httptest.NewServer(s.Handler())
		t.Cleanup(tss[i].Close)
		urls[i] = tss[i].URL
	}
	for i, s := range srvs {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		if err := s.JoinCluster(ClusterConfig{
			Advertise:   urls[i],
			Peers:       peers,
			PeerTimeout: 5 * time.Second,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return srvs, tss
}

// streamSynth POSTs a synthesis and returns (status, body).
func streamSynth(t *testing.T, baseURL, id string, seed uint64) (int, []byte) {
	t.Helper()
	resp, err := http.Post(fmt.Sprintf("%s/v1/profiles/%s/synth?seed=%d&format=bin", baseURL, id, seed), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// The acceptance path: a profile uploaded to node A is replicated to
// its ring owner, any other node answers metadata reads by forwarding,
// and a synthesis streamed from node C — which never saw the upload —
// is byte-identical to the offline CLI path (fetch-on-miss over the
// flat wire format, then a local stream).
func TestClusterCrossNodeSynth(t *testing.T) {
	srvs, tss := newTestCluster(t, 3, Config{})
	p := testProfile(t, 1)
	meta := uploadProfile(t, tss[0], p)

	// Synchronous replication: by upload-response time the ring owner
	// holds a copy, wherever the upload landed.
	owner := srvs[0].cluster.Load().ring.Owner(meta.ID)
	for i, ts := range tss {
		if ts.URL != owner {
			continue
		}
		if _, ok := srvs[i].store.Meta(meta.ID); !ok {
			t.Fatalf("ring owner %s does not hold %s after upload", owner, meta.ID)
		}
	}

	// Metadata from a node that holds nothing locally: forwarded, not
	// fetched — the profile must not appear in node 2's store.
	resp, err := http.Get(tss[2].URL + "/v1/profiles/" + meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got Meta
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || got.ID != meta.ID {
		t.Fatalf("forwarded meta: status %d, id %q", resp.StatusCode, got.ID)
	}
	if owner != tss[2].URL {
		if _, ok := srvs[2].store.Meta(meta.ID); ok {
			t.Fatal("metadata read pulled the profile into the local store")
		}
	}

	// The stream from node C, byte-identical to offline synthesis.
	want := offlineBin(t, p, 7, 0)
	status, body := streamSynth(t, tss[2].URL, meta.ID, 7)
	if status != http.StatusOK {
		t.Fatalf("cross-node synth: status %d: %s", status, body)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("cross-node stream differs from offline synth: %d vs %d bytes", len(body), len(want))
	}
	// Fetch-on-miss admitted the profile locally: the next stream from
	// the same node is a local hit and still identical.
	if _, ok := srvs[2].store.Meta(meta.ID); !ok && owner != tss[2].URL {
		t.Fatal("fetch-on-miss did not admit the profile locally")
	}
	if _, body2 := streamSynth(t, tss[2].URL, meta.ID, 7); !bytes.Equal(body2, want) {
		t.Fatal("second (local) stream differs from the first")
	}
}

// Killing one node mid-test must not 5xx requests for keys whose data
// is still reachable: the ring's preference sequence routes around the
// dead member.
func TestClusterNodeKillReroutes(t *testing.T) {
	srvs, tss := newTestCluster(t, 3, Config{})
	_ = srvs

	// Upload several distinct profiles to node A so the ring spreads
	// ownership; node A keeps a local copy of each, so every key stays
	// reachable whichever node dies.
	type workload struct {
		meta Meta
		want []byte
	}
	var ws []workload
	for seed := uint64(1); seed <= 6; seed++ {
		p := testProfile(t, seed)
		ws = append(ws, workload{uploadProfile(t, tss[0], p), offlineBin(t, p, 9, 0)})
	}

	tss[1].Close() // kill node B: connections now refuse

	for _, w := range ws {
		status, body := streamSynth(t, tss[2].URL, w.meta.ID, 9)
		if status >= 500 {
			t.Fatalf("5xx after node kill: status %d for %s", status, w.meta.ID)
		}
		if status != http.StatusOK {
			t.Fatalf("status %d for %s after node kill: %s", status, w.meta.ID, body)
		}
		if !bytes.Equal(body, w.want) {
			t.Fatalf("stream for %s differs from offline synth after node kill", w.meta.ID)
		}
	}

	// The survivors' cluster health reflects the dead peer.
	resp, err := http.Get(tss[0].URL + "/v1/cluster/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Mode    string       `json:"mode"`
		PeersOK bool         `json:"peers_ok"`
		Peers   []peerHealth `json:"peers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Mode != "cluster" || health.PeersOK {
		t.Fatalf("health after node kill: mode=%q peers_ok=%v, want cluster/false", health.Mode, health.PeersOK)
	}
}

// Peer-marked requests are answered from local state only: a miss is a
// fast 404, never a fetch or forward — the property that makes routing
// loops impossible.
func TestClusterPeerRequestsNeverRecurse(t *testing.T) {
	_, tss := newTestCluster(t, 2, Config{})
	id := "deadbeef"

	req, _ := http.NewRequest(http.MethodGet, tss[0].URL+"/v1/profiles/"+id, nil)
	req.Header.Set(headerPeer, "http://elsewhere")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("peer-marked miss: status %d, want 404", resp.StatusCode)
	}

	// An unmarked miss consults the cluster and still terminates with a
	// definitive 404 when every peer answers "not found".
	resp2, err := http.Post(tss[0].URL+"/v1/profiles/"+id+"/synth", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("cluster-wide miss: status %d, want 404", resp2.StatusCode)
	}
}

// The replicate endpoint verifies the claimed content address against
// the decoded payload: a peer cannot plant bytes under a foreign ID.
func TestClusterReplicateRejectsMismatchedID(t *testing.T) {
	_, tss := newTestCluster(t, 2, Config{})
	p := testProfile(t, 3)
	flat := flatBytes(t, p)

	frame := encodeFrame("0000000000000000000000000000000000000000000000000000000000000000", flat)
	resp, err := http.Post(tss[0].URL+"/v1/cluster/replicate", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched id: status %d, want 400", resp.StatusCode)
	}

	// The honest frame is admitted.
	id, _, err := ProfileID(p)
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Post(tss[0].URL+"/v1/cluster/replicate", "application/octet-stream", bytes.NewReader(encodeFrame(id, flat)))
	if err != nil {
		t.Fatal(err)
	}
	var ur uploadResponse
	if err := json.NewDecoder(resp2.Body).Decode(&ur); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusCreated || ur.ID != id {
		t.Fatalf("honest replicate: status %d id %q, want 201 %q", resp2.StatusCode, ur.ID, id)
	}
}

// A flat-encoded upload to the public endpoint content-addresses
// identically to the gzip canonical upload of the same profile — the
// encoding is sniffed, the address is canonical.
func TestUploadFlatProfile(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	p := testProfile(t, 5)
	gzMeta := uploadProfile(t, ts, p)

	resp, err := http.Post(ts.URL+"/v1/profiles", "application/octet-stream", bytes.NewReader(flatBytes(t, p)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ur uploadResponse
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !ur.Deduped || ur.ID != gzMeta.ID {
		t.Fatalf("flat upload: status %d deduped %v id %q, want dedupe onto %q",
			resp.StatusCode, ur.Deduped, ur.ID, gzMeta.ID)
	}
}

// A single (non-clustered) node answers the cluster health endpoint in
// "single" mode and refuses replication pushes.
func TestClusterEndpointsSingleNode(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/cluster/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Mode string `json:"mode"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Mode != "single" {
		t.Fatalf("single-node cluster health: status %d mode %q", resp.StatusCode, health.Mode)
	}

	resp2, err := http.Post(ts.URL+"/v1/cluster/replicate", "application/octet-stream", bytes.NewReader(encodeFrame("x", nil)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("replicate to single node: status %d, want 503", resp2.StatusCode)
	}
}
