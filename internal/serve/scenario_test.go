package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/profile"
	"repro/internal/scenario"
	"repro/internal/trace"
)

// testSpec builds a three-device spec over the given profile IDs,
// exercising windows, dilation and a count cap.
func testSpec(ids ...string) *scenario.Spec {
	s := &scenario.Spec{}
	for i, id := range ids {
		d := scenario.Device{
			Profile: id,
			Name:    fmt.Sprintf("ip%d", i),
			Window:  &scenario.Window{Base: uint64(i) << 30, Size: 1 << 30},
			Seed:    uint64(i + 1),
		}
		if i == 1 {
			d.Dilation = 2.0
		}
		if i == 2 {
			d.Count = 100
		}
		s.Devices = append(s.Devices, d)
	}
	return s
}

// offlineComposeBin is the reference for scenario streams: the same
// spec composed in-process over the given heap profiles and binary
// encoded — what `mocktails compose -format bin` emits.
func offlineComposeBin(t *testing.T, spec *scenario.Spec, views map[string]*profile.Profile) []byte {
	t.Helper()
	st, err := scenario.Compose(spec, func(id string) (profile.View, func(), error) {
		v, ok := views[id]
		if !ok {
			return nil, nil, fmt.Errorf("unknown profile %s", id)
		}
		return v, func() {}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var buf bytes.Buffer
	if _, err := trace.WriteBinaryStream(nil, &buf, st.Total(), st.Next); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postScenario(t *testing.T, baseURL string, spec *scenario.Spec) (int, []byte, http.Header) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/scenarios/synth", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out, resp.Header
}

// The scenario acceptance invariant: the streamed composition is
// byte-identical to the offline composer on the same spec.
func TestScenarioStreamMatchesOfflineCompose(t *testing.T) {
	_, ts := newTestServer(t, Config{SynthWorkers: 4})
	views := map[string]*profile.Profile{}
	var ids []string
	for seed := uint64(1); seed <= 3; seed++ {
		p := testProfile(t, seed)
		meta := uploadProfile(t, ts, p)
		views[meta.ID] = p
		ids = append(ids, meta.ID)
	}
	spec := testSpec(ids...)

	want := offlineComposeBin(t, spec, views)
	status, body, hdr := postScenario(t, ts.URL, spec)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("streamed scenario differs from offline compose: %d vs %d bytes", len(body), len(want))
	}
	if got := hdr.Get("X-Mocktails-Requests"); got != "700" {
		t.Errorf("X-Mocktails-Requests = %q, want 700 (300+300+100)", got)
	}
	if got := hdr.Get("Content-Length"); got != fmt.Sprint(trace.BinaryEncodedSize(700)) {
		t.Errorf("Content-Length = %q, want %d", got, trace.BinaryEncodedSize(700))
	}

	// CSV output parses back to the same requests.
	csvSpec := *spec
	csvSpec.Output = "csv"
	status, csvBody, hdr := postScenario(t, ts.URL, &csvSpec)
	if status != http.StatusOK {
		t.Fatalf("csv status %d: %s", status, csvBody)
	}
	if ct := hdr.Get("Content-Type"); ct != "text/csv" {
		t.Errorf("csv Content-Type %q", ct)
	}
	fromCSV, err := trace.ReadCSV(bytes.NewReader(csvBody))
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := trace.ReadBinary(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(fromCSV) != len(fromBin) {
		t.Fatalf("csv carried %d requests, bin %d", len(fromCSV), len(fromBin))
	}

	// The endpoint registered its metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, m := range []string{"serve_scenario_composed", "serve_scenario_requests_streamed", "serve_scenario_devices"} {
		if !strings.Contains(string(metrics), m) {
			t.Errorf("/metrics is missing %s", m)
		}
	}
}

// A single-device, identity-window, dilation-1 scenario must be
// byte-identical to the plain per-profile synthesis endpoint.
func TestScenarioIdentityMatchesPlainSynth(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	p := testProfile(t, 5)
	meta := uploadProfile(t, ts, p)

	spec := &scenario.Spec{Devices: []scenario.Device{{Profile: meta.ID, Seed: 42}}}
	status, composed, _ := postScenario(t, ts.URL, spec)
	if status != http.StatusOK {
		t.Fatalf("scenario status %d: %s", status, composed)
	}

	resp, err := http.Post(ts.URL+"/v1/profiles/"+meta.ID+"/synth?seed=42&format=bin", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synth status %d", resp.StatusCode)
	}
	if !bytes.Equal(composed, plain) {
		t.Fatalf("identity scenario differs from plain synth: %d vs %d bytes", len(composed), len(plain))
	}
}

func TestScenarioStatsReport(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	p := testProfile(t, 1)
	meta := uploadProfile(t, ts, p)

	spec := testSpec(meta.ID, meta.ID, meta.ID)
	spec.Output = "stats"
	spec.XbarLatency = 10
	status, body, hdr := postScenario(t, ts.URL, spec)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q", ct)
	}
	var rep scenario.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 700 {
		t.Fatalf("replayed %d requests, want 700", rep.Requests)
	}
	if len(rep.Devices) != 3 {
		t.Fatalf("%d device reports, want 3", len(rep.Devices))
	}
	var sum uint64
	for _, d := range rep.Devices {
		sum += d.Requests
	}
	if sum != rep.Requests {
		t.Fatalf("per-device sum %d != aggregate %d", sum, rep.Requests)
	}
	if rep.Devices[0].Name != "ip0" || rep.Devices[0].Profile != meta.ID {
		t.Errorf("device 0 labelled %q/%q", rep.Devices[0].Name, rep.Devices[0].Profile)
	}
	if rep.AvgLatency <= 0 {
		t.Error("report has no latency")
	}
}

func TestScenarioErrorStatuses(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	meta := uploadProfile(t, ts, testProfile(t, 1))

	post := func(body string) (int, string) {
		resp, err := http.Post(ts.URL+"/v1/scenarios/synth", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	// Invalid specs: 422.
	for name, body := range map[string]string{
		"not json":            `{{{`,
		"unknown field":       `{"devices": [{"profile": "` + meta.ID + `"}], "nope": 1}`,
		"no devices":          `{"devices": []}`,
		"bad id":              `{"devices": [{"profile": "zz"}]}`,
		"zero window":         `{"devices": [{"profile": "` + meta.ID + `", "window": {"base": 0, "size": 0}}]}`,
		"negative dilation":   `{"devices": [{"profile": "` + meta.ID + `", "dilation": -2}]}`,
		"oversized count":     `{"devices": [{"profile": "` + meta.ID + `", "count": 1099511627777}]}`,
		"overlapping windows": `{"devices": [{"profile": "` + meta.ID + `", "window": {"base": 0, "size": 10}}, {"profile": "` + meta.ID + `", "window": {"base": 5, "size": 10}}]}`,
		"bad output":          `{"devices": [{"profile": "` + meta.ID + `"}], "output": "yaml"}`,
	} {
		if status, b := post(body); status != http.StatusUnprocessableEntity {
			t.Errorf("%s: status %d (%s), want 422", name, status, b)
		}
	}

	// Unknown (but well-formed) profile: 404.
	ghost := strings.Repeat("0", 64)
	if status, b := post(`{"devices": [{"profile": "` + ghost + `"}]}`); status != http.StatusNotFound {
		t.Errorf("unknown profile: status %d (%s), want 404", status, b)
	}

	// Oversized spec body: 413.
	huge := `{"devices": [{"profile": "` + meta.ID + `", "name": "` + strings.Repeat("x", maxScenarioSpecBytes) + `"}]}`
	if status, _ := post(huge); status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", status)
	}
}

// TestScenarioClusterFetch pins the distributed acceptance criterion: a
// node composes a scenario whose member profiles it does not all hold
// locally — the missing one is fetched from a peer — and the bytes are
// identical to the offline composer and across nodes.
func TestScenarioClusterFetch(t *testing.T) {
	srvs, tss := newTestCluster(t, 2, Config{})

	// Upload each profile to a different node; replication places each
	// on its ring owner, so at least one node is missing at least one.
	p1, p2 := testProfile(t, 1), testProfile(t, 2)
	meta1 := uploadProfile(t, tss[0], p1)
	meta2 := uploadProfile(t, tss[1], p2)
	views := map[string]*profile.Profile{meta1.ID: p1, meta2.ID: p2}

	spec := &scenario.Spec{Devices: []scenario.Device{
		{Profile: meta1.ID, Name: "a", Window: &scenario.Window{Base: 0, Size: 1 << 30}, Seed: 1},
		{Profile: meta2.ID, Name: "b", Window: &scenario.Window{Base: 1 << 30, Size: 1 << 30}, Seed: 2, Dilation: 0.5},
	}}
	want := offlineComposeBin(t, spec, views)

	for i, ts := range tss {
		status, body, _ := postScenario(t, ts.URL, spec)
		if status != http.StatusOK {
			t.Fatalf("node %d: status %d: %s", i, status, body)
		}
		if !bytes.Equal(body, want) {
			t.Fatalf("node %d: composed stream differs from offline compose", i)
		}
	}

	// Fetch-on-miss admitted the missing member locally on both nodes.
	for i, s := range srvs {
		for _, id := range []string{meta1.ID, meta2.ID} {
			if _, ok := s.store.Meta(id); !ok {
				t.Errorf("node %d still missing %s after composing", i, id)
			}
		}
	}
}

// A peer-marked scenario request must see local state only (no fetch
// recursion), exactly like the single-profile endpoints: a node that
// does not hold a member profile answers 404 instead of fetching.
func TestScenarioPeerRequestSeesLocalOnly(t *testing.T) {
	// Three nodes: the upload target and the ring owner can account for
	// at most two, so at least one node is guaranteed to miss locally.
	srvs, tss := newTestCluster(t, 3, Config{})
	meta := uploadProfile(t, tss[0], testProfile(t, 1))

	spec := &scenario.Spec{Devices: []scenario.Device{{Profile: meta.ID}}}
	body, _ := json.Marshal(spec)
	sawMiss := false
	for i, ts := range tss {
		_, holds := srvs[i].store.Meta(meta.ID)
		req, err := http.NewRequest("POST", ts.URL+"/v1/scenarios/synth", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(headerPeer, "test-peer")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case holds && resp.StatusCode != http.StatusOK:
			t.Errorf("node %d holds the profile but answered %d", i, resp.StatusCode)
		case !holds && resp.StatusCode != http.StatusNotFound:
			t.Errorf("node %d is missing the profile but answered %d (peer requests must not fetch)", i, resp.StatusCode)
		case !holds:
			sawMiss = true
			if _, now := srvs[i].store.Meta(meta.ID); now {
				t.Errorf("node %d pulled the profile in for a peer-marked request", i)
			}
		}
	}
	if !sawMiss {
		t.Fatal("no node missed the profile; the cluster helper changed its replication shape")
	}
}
