package serve

import (
	"fmt"
	"net/url"
	"strconv"

	"repro/internal/partition"
)

// Upload kinds and synthesis formats accepted by the API.
const (
	KindProfile = "profile"
	KindTrace   = "trace"

	FormatBin = "bin"
	FormatCSV = "csv"
)

// maxNameLen bounds the workload name accepted from a query string.
const maxNameLen = 256

// UploadOptions are the parsed query parameters of POST /v1/profiles.
type UploadOptions struct {
	// Kind selects what the request body carries: a pre-fit profile
	// ("profile", the default) or a raw trace ("trace") the server fits
	// in-process.
	Kind string
	// Name labels a fitted profile (kind=trace only; a pre-fit profile
	// carries its own name).
	Name string
	// Partition is the partitioning configuration used for in-process
	// fits, assembled from the temporal/interval/spatial parameters
	// with the same defaults as the offline CLI (cycles / 500000 /
	// dynamic), so a server-side fit of a trace produces the identical
	// profile to `mocktails profile` with default flags.
	Partition partition.Config
}

// ParseUploadOptions validates the query parameters of an upload
// request. Unknown parameters are rejected, so a typo (e.g. "intervall")
// fails loudly instead of silently fitting with defaults.
func ParseUploadOptions(q url.Values) (UploadOptions, error) {
	if err := checkKnownKeys(q, "kind", "name", "temporal", "interval", "spatial"); err != nil {
		return UploadOptions{}, err
	}
	o := UploadOptions{Kind: KindProfile, Name: "workload"}
	if v := q.Get("kind"); v != "" {
		if v != KindProfile && v != KindTrace {
			return UploadOptions{}, fmt.Errorf("bad kind %q: want %q or %q", v, KindProfile, KindTrace)
		}
		o.Kind = v
	}
	if v := q.Get("name"); v != "" {
		if len(v) > maxNameLen {
			return UploadOptions{}, fmt.Errorf("name longer than %d bytes", maxNameLen)
		}
		o.Name = v
	}

	temporal := q.Get("temporal")
	if temporal == "" {
		temporal = "cycles"
	}
	interval := uint64(500000)
	if v := q.Get("interval"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil || n == 0 {
			return UploadOptions{}, fmt.Errorf("bad interval %q: want a positive integer", v)
		}
		interval = n
	}
	var layers []partition.Layer
	switch temporal {
	case "cycles":
		layers = append(layers, partition.Layer{Kind: partition.TemporalCycleCount, Param: interval})
	case "requests":
		layers = append(layers, partition.Layer{Kind: partition.TemporalRequestCount, Param: interval})
	default:
		return UploadOptions{}, fmt.Errorf("bad temporal %q: want \"cycles\" or \"requests\"", temporal)
	}
	spatial := q.Get("spatial")
	if spatial == "" || spatial == "dynamic" {
		layers = append(layers, partition.Layer{Kind: partition.SpatialDynamic})
	} else {
		bs, err := strconv.ParseUint(spatial, 10, 64)
		if err != nil || bs == 0 {
			return UploadOptions{}, fmt.Errorf("bad spatial %q: want \"dynamic\" or a positive block size", spatial)
		}
		layers = append(layers, partition.Layer{Kind: partition.SpatialFixed, Param: bs})
	}
	o.Partition = partition.Config{Layers: layers}
	return o, nil
}

// SynthOptions are the parsed query parameters of
// POST /v1/profiles/{id}/synth.
type SynthOptions struct {
	// Seed seeds the synthesis deterministically (default 42): the same
	// (profile, seed, n, format) always streams the same bytes.
	Seed uint64
	// N truncates the stream to the first n requests (0 = the
	// profile's full request count).
	N uint64
	// Format is FormatBin (default) or FormatCSV.
	Format string
}

// ParseSynthOptions validates the query parameters of a synthesis
// request.
func ParseSynthOptions(q url.Values) (SynthOptions, error) {
	if err := checkKnownKeys(q, "seed", "n", "format"); err != nil {
		return SynthOptions{}, err
	}
	o := SynthOptions{Seed: 42, Format: FormatBin}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return SynthOptions{}, fmt.Errorf("bad seed %q: want an unsigned integer", v)
		}
		o.Seed = n
	}
	if v := q.Get("n"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return SynthOptions{}, fmt.Errorf("bad n %q: want an unsigned integer", v)
		}
		o.N = n
	}
	if v := q.Get("format"); v != "" {
		if v != FormatBin && v != FormatCSV {
			return SynthOptions{}, fmt.Errorf("bad format %q: want %q or %q", v, FormatBin, FormatCSV)
		}
		o.Format = v
	}
	return o, nil
}

func checkKnownKeys(q url.Values, known ...string) error {
	for k := range q {
		found := false
		for _, want := range known {
			if k == want {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown parameter %q", k)
		}
	}
	return nil
}
