package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/profile"
)

// Cluster metrics. Pushes/receives count replication traffic, fetches
// count fetch-on-miss promotions of remote profiles into the local
// store, forwards count proxied metadata reads, and peer_errors counts
// failed peer round-trips of any kind.
var (
	mClusterFetches      = obs.NewCounter("serve.cluster.fetches")
	mClusterFetchMisses  = obs.NewCounter("serve.cluster.fetch_misses")
	mClusterForwards     = obs.NewCounter("serve.cluster.forwards")
	mClusterReplPushes   = obs.NewCounter("serve.cluster.replicate_pushes")
	mClusterReplReceived = obs.NewCounter("serve.cluster.replicate_received")
	mClusterReplErrors   = obs.NewCounter("serve.cluster.replicate_errors")
	mClusterPeerErrors   = obs.NewCounter("serve.cluster.peer_errors")
	mClusterMembersGauge = obs.NewGauge("serve.cluster.members")
	mClusterProbeNs      = obs.NewHistogram("serve.cluster.probe.ns", obs.ScaleNs)
)

// headerPeer marks intra-cluster requests with the sender's advertise
// address. A node never triggers cluster actions — fetch-on-miss,
// forwarding, replication — while serving a request that carries it,
// which makes routing loops structurally impossible: a peer request is
// answered from local state or not at all.
const headerPeer = "X-Mocktails-Peer"

// ClusterConfig joins a Server to a cluster of mocktailsd peers over a
// consistent-hash ring keyed by profile content address.
type ClusterConfig struct {
	// Advertise is this node's base URL as peers reach it, e.g.
	// "http://host1:8677". It must appear reachable to every peer and
	// is this node's ring identity.
	Advertise string
	// Peers are the other members' base URLs. Advertise may be listed
	// too (convenient for sharing one flag value across nodes);
	// duplicates collapse.
	Peers []string
	// Replicas is the virtual-node count per member (0 = the ring
	// default).
	Replicas int
	// PeerTimeout bounds one peer round-trip — a replication push, a
	// fetch-on-miss download, a forwarded read (0 = 30s).
	PeerTimeout time.Duration
}

// cluster is the runtime state behind a joined ClusterConfig: the ring,
// the shared peer HTTP client, and the self identity. Immutable after
// construction.
type cluster struct {
	self    string
	ring    *Ring
	client  *http.Client
	timeout time.Duration
}

func newCluster(cfg ClusterConfig) (*cluster, error) {
	if cfg.Advertise == "" {
		return nil, errors.New("serve: cluster: Advertise must be set")
	}
	if cfg.PeerTimeout == 0 {
		cfg.PeerTimeout = 30 * time.Second
	}
	members := append([]string{cfg.Advertise}, cfg.Peers...)
	ring := NewRing(members, cfg.Replicas)
	mClusterMembersGauge.Set(float64(ring.Len()))
	return &cluster{
		self: cfg.Advertise,
		ring: ring,
		// Timeouts are enforced per-operation through request contexts,
		// not a client-wide Timeout, so one slow fetch cannot be cut by
		// a limit sized for fast metadata reads.
		client:  &http.Client{},
		timeout: cfg.PeerTimeout,
	}, nil
}

// peerSequence returns the fallback order for id with self removed:
// the ring owner first, then the members whose vnodes follow on the
// circle. Every node computes the same order, so when the owner is
// down the whole cluster converges on the same second choice.
func (c *cluster) peerSequence(id string) []string {
	seq := c.ring.Sequence(id)
	peers := seq[:0:0]
	for _, m := range seq {
		if m != c.self {
			peers = append(peers, m)
		}
	}
	return peers
}

// do runs one peer request with the peer marker and the per-operation
// timeout applied.
func (c *cluster) do(ctx context.Context, method, url string, body io.Reader) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set(headerPeer, c.self)
	// Propagate the caller's trace so a fetch-on-miss or replication hop
	// shows up under the same trace ID on the remote node.
	if rt := obs.RequestFromContext(ctx); rt != nil {
		req.Header.Set("traceparent", rt.ChildContext().Traceparent())
	}
	resp, err := c.client.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	// The cancel travels with the body: the caller's Close releases it.
	resp.Body = &cancelReadCloser{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

type cancelReadCloser struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelReadCloser) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}

// replicate pushes a freshly-admitted profile to its ring owner so the
// canonical location always holds a copy, wherever the upload landed.
// A push to self is a no-op; a failed push is logged and counted but
// does not fail the upload — the uploader keeps its local copy and
// fetch-on-miss covers readers until the owner recovers.
func (c *cluster) replicate(ctx context.Context, id string, p *profile.Profile) {
	owner := c.ring.Owner(id)
	if owner == c.self {
		return
	}
	flat, err := profile.MarshalFlat(p)
	if err != nil {
		mClusterReplErrors.Inc()
		obs.FromContext(ctx).Warn("cluster: flat-encoding for replication failed", "id", id, "err", err)
		return
	}
	resp, err := c.do(ctx, http.MethodPost, owner+"/v1/cluster/replicate", bytes.NewReader(encodeFrame(id, flat)))
	if err != nil {
		mClusterReplErrors.Inc()
		mClusterPeerErrors.Inc()
		obs.FromContext(ctx).Warn("cluster: replication push failed", "id", id, "owner", owner, "err", err)
		return
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode >= 300 {
		mClusterReplErrors.Inc()
		obs.FromContext(ctx).Warn("cluster: replication push rejected", "id", id, "owner", owner, "status", resp.StatusCode)
		return
	}
	mClusterReplPushes.Inc()
	obs.FromContext(ctx).Debug("cluster: replicated profile to owner", "id", id, "owner", owner)
}

// fetch pulls profile id from the cluster — the ring owner first, then
// the rest of the preference sequence — over the flat .mfp wire format
// (GET ?download=flat). The decoded profile's content address must
// match the requested id; a peer serving different bytes under that
// name is treated as an error, not a result. It returns nil (with
// fetch_misses counted) when no reachable peer holds the profile.
func (c *cluster) fetch(ctx context.Context, id string, maxBytes int64) *profile.Profile {
	log := obs.FromContext(ctx)
	for _, peer := range c.peerSequence(id) {
		resp, err := c.do(ctx, http.MethodGet, peer+"/v1/profiles/"+id+"?download=flat", nil)
		if err != nil {
			mClusterPeerErrors.Inc()
			log.Debug("cluster: fetch peer unreachable", "id", id, "peer", peer, "err", err)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				mClusterPeerErrors.Inc()
				log.Debug("cluster: fetch refused", "id", id, "peer", peer, "status", resp.StatusCode)
			}
			continue
		}
		buf, err := io.ReadAll(io.LimitReader(resp.Body, maxBytes+1))
		resp.Body.Close()
		if err != nil || int64(len(buf)) > maxBytes {
			mClusterPeerErrors.Inc()
			log.Warn("cluster: fetch body failed", "id", id, "peer", peer, "bytes", len(buf), "err", err)
			continue
		}
		p, err := decodeVerifiedProfile(id, buf)
		if err != nil {
			mClusterPeerErrors.Inc()
			log.Warn("cluster: fetched profile rejected", "id", id, "peer", peer, "err", err)
			continue
		}
		mClusterFetches.Inc()
		log.Debug("cluster: fetched profile from peer", "id", id, "peer", peer, "bytes", len(buf))
		return p
	}
	mClusterFetchMisses.Inc()
	return nil
}

// decodeVerifiedProfile opens a flat-encoded profile and verifies that
// its canonical content address is exactly the id it was requested or
// announced under.
func decodeVerifiedProfile(id string, flat []byte) (*profile.Profile, error) {
	f, err := profile.OpenFlat(flat)
	if err != nil {
		return nil, err
	}
	p := f.Profile()
	got, _, err := ProfileID(p)
	if err != nil {
		return nil, err
	}
	if got != id {
		return nil, fmt.Errorf("serve: content address mismatch: got %s, want %s", got, id)
	}
	return p, nil
}

// forwardMeta proxies a metadata read to the cluster, returning the
// first definitive answer (200 or 404 body plus status) in preference
// order. ok is false when every peer was unreachable.
func (c *cluster) forwardMeta(ctx context.Context, id string) (body []byte, status int, ok bool) {
	log := obs.FromContext(ctx)
	for _, peer := range c.peerSequence(id) {
		resp, err := c.do(ctx, http.MethodGet, peer+"/v1/profiles/"+id, nil)
		if err != nil {
			mClusterPeerErrors.Inc()
			log.Debug("cluster: forward peer unreachable", "id", id, "peer", peer, "err", err)
			continue
		}
		b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil || (resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound) {
			mClusterPeerErrors.Inc()
			log.Debug("cluster: forward failed", "id", id, "peer", peer, "status", resp.StatusCode, "err", err)
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			// The peer definitively does not hold it; keep looking — a
			// non-owner may still hold the only copy after a membership
			// change.
			continue
		}
		mClusterForwards.Inc()
		return b, resp.StatusCode, true
	}
	return nil, 0, false
}

// peerHealth is one peer's row in the cluster health document. RTTNs
// is the full probe round-trip in nanoseconds; it is reported for
// failed probes too (how long the failure took to surface).
type peerHealth struct {
	Addr  string `json:"addr"`
	OK    bool   `json:"ok"`
	RTTNs int64  `json:"rtt_ns"`
	Error string `json:"error,omitempty"`
}

// probePeers checks every other member's /healthz concurrently with a
// short per-probe timeout, returning rows in ring-member order. Each
// successful probe's round-trip lands in the serve.cluster.probe.ns
// histogram, so scraping /metrics yields a cluster RTT distribution
// without a separate ping loop.
func (c *cluster) probePeers(ctx context.Context) []peerHealth {
	var peers []string
	for _, m := range c.ring.Members() {
		if m != c.self {
			peers = append(peers, m)
		}
	}
	rows := make([]peerHealth, len(peers))
	var wg sync.WaitGroup
	for i, peer := range peers {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, peer+"/healthz", nil)
			if err != nil {
				rows[i] = peerHealth{Addr: peer, Error: err.Error()}
				return
			}
			req.Header.Set(headerPeer, c.self)
			if rt := obs.RequestFromContext(ctx); rt != nil {
				req.Header.Set("traceparent", rt.ChildContext().Traceparent())
			}
			start := time.Now()
			resp, err := c.client.Do(req)
			if err != nil {
				mClusterPeerErrors.Inc()
				rows[i] = peerHealth{Addr: peer, RTTNs: int64(time.Since(start)), Error: err.Error()}
				return
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			rtt := time.Since(start)
			if resp.StatusCode != http.StatusOK {
				rows[i] = peerHealth{Addr: peer, RTTNs: int64(rtt), Error: fmt.Sprintf("status %d", resp.StatusCode)}
				return
			}
			mClusterProbeNs.Observe(int64(rtt))
			rows[i] = peerHealth{Addr: peer, OK: true, RTTNs: int64(rtt)}
		}(i, peer)
	}
	wg.Wait()
	return rows
}
