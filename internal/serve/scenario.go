package serve

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strconv"

	"repro/internal/dram"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/scenario"
	"repro/internal/trace"
)

// Scenario endpoint metrics (see docs/METRICS.md).
var (
	mScenarioComposed = obs.NewCounter("serve.scenario.composed")
	mScenarioDevices  = obs.NewCounter("serve.scenario.devices")
	mScenarioStreamed = obs.NewCounter("serve.scenario.requests_streamed")
	mScenarioBytes    = obs.NewHistogram("serve.scenario.stream_bytes", obs.ScaleBytes)
	mScenarioCanceled = obs.NewCounter("serve.scenario.canceled")
	mScenarioReplays  = obs.NewCounter("serve.scenario.replays")
)

// maxScenarioSpecBytes caps a scenario spec body. Specs are small JSON
// documents; a megabyte is two orders of magnitude above the largest
// valid spec (MaxDevices fully-specified devices).
const maxScenarioSpecBytes = 1 << 20

// handleScenario serves POST /v1/scenarios/synth: a scenario spec in
// the body names stored profiles, and the response streams the
// composed trace (bin or csv) or returns a replayed contention report
// (stats). Member profiles missing locally are cluster-fetched exactly
// like single-profile synthesis, so any node can serve any mix. The
// composed bytes are a pure function of the spec and the profile
// contents — identical across nodes, worker counts and storage
// representations, and identical to `mocktails compose` offline.
func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxScenarioSpecBytes))
	if err != nil {
		var maxBytesErr *http.MaxBytesError
		if errors.As(err, &maxBytesErr) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"spec exceeds the %d-byte body limit", maxScenarioSpecBytes)
			return
		}
		writeError(w, http.StatusBadRequest, "reading spec: %v", err)
		return
	}
	spec, err := scenario.Parse(body)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}

	// Pin every member profile up front (deduped: a profile reused by
	// several devices is pinned once). acquireOrFetch pulls local misses
	// from the cluster and writes the 404/507 itself on failure.
	pins := map[string]*Pin{}
	defer func() {
		for _, pin := range pins {
			pin.Release()
		}
	}()
	for i := range spec.Devices {
		id := spec.Devices[i].Profile
		if _, ok := pins[id]; ok {
			continue
		}
		pin, ok := s.acquireOrFetch(w, r, id)
		if !ok {
			return
		}
		pins[id] = pin
	}

	ctx := r.Context()
	st, err := scenario.Compose(spec,
		func(id string) (profile.View, func(), error) {
			return pins[id].View(), func() {}, nil
		},
		scenario.Workers(s.cfg.SynthWorkers), scenario.Context(ctx))
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	defer st.Close()
	mScenarioComposed.Inc()
	mScenarioDevices.Add(uint64(len(spec.Devices)))

	mActiveStreams.Set(float64(s.active.Add(1)))
	defer func() { mActiveStreams.Set(float64(s.active.Add(-1))) }()

	if spec.Output == "stats" {
		endReplay := obs.RequestFromContext(ctx).StartSpan("scenario.replay")
		rep := scenario.Replay(st, spec, dram.Default())
		endReplay()
		mScenarioReplays.Inc()
		sp := obs.SpanFromContext(ctx)
		sp.SetCount("requests", int64(rep.Requests))
		writeJSON(w, http.StatusOK, rep)
		return
	}

	total := st.Total()
	w.Header().Set("X-Mocktails-Requests", strconv.FormatUint(total, 10))
	var written int64
	var werr error
	endStream := obs.RequestFromContext(ctx).StartSpan("scenario.stream")
	switch spec.Output {
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		written, werr = trace.WriteCSVStream(ctx, newFlushWriter(w), st.Next)
	default: // "" or "bin"
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.FormatInt(trace.BinaryEncodedSize(total), 10))
		written, werr = trace.WriteBinaryStream(ctx, newFlushWriter(w), total, st.Next)
	}
	endStream()
	mScenarioBytes.Observe(written)
	sp := obs.SpanFromContext(ctx)
	sp.SetCount("requests", int64(total))
	sp.SetCount("bytes", written)
	switch {
	case werr == nil:
		mScenarioStreamed.Add(total)
	case errors.Is(werr, context.Canceled) || errors.Is(werr, context.DeadlineExceeded):
		mScenarioCanceled.Inc()
		obs.FromContext(ctx).Debug("scenario stream canceled", "bytes", written)
	default:
		// Mid-stream failure after the headers went out: abort the
		// connection rather than delivering a truncated body that looks
		// complete.
		obs.FromContext(ctx).Debug("scenario stream aborted", "bytes", written, "err", werr)
		panic(http.ErrAbortHandler)
	}
}
