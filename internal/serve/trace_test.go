package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// syncBuffer is a mutex-guarded buffer: both nodes of an in-process
// cluster log concurrently during a cross-node request.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// accessLogger returns a per-node access-log destination: an Info-level
// text logger into a private buffer.
func accessLogger() (*slog.Logger, *syncBuffer) {
	buf := &syncBuffer{}
	return slog.New(slog.NewTextHandler(buf, &slog.HandlerOptions{Level: slog.LevelInfo})), buf
}

// ringTrace finds the newest trace for route in the server's ring.
func ringTrace(s *Server, route string) *obs.RequestTrace {
	for _, tr := range s.Traces().Recent(s.Traces().Cap()) {
		if tr.Name == route {
			return tr
		}
	}
	return nil
}

// TestTraceparentAdopted checks the middleware joins an incoming W3C
// trace: the response echoes the trace ID as X-Request-Id, and the
// ring records the caller's span as parent.
func TestTraceparentAdopted(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	parent := obs.SpanContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID(), Flags: obs.FlagSampled}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("traceparent", parent.Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != parent.TraceID.String() {
		t.Fatalf("X-Request-Id = %q, want the traceparent's trace ID %q", got, parent.TraceID)
	}
}

// TestXRequestIDAdopted checks the fallback: a bare 32-hex request ID
// supplies the trace ID when no traceparent is present, and a fresh ID
// is assigned when neither header parses.
func TestXRequestIDAdopted(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := obs.NewTraceID()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", id.String())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != id.String() {
		t.Fatalf("X-Request-Id = %q, want the request's %q", got, id)
	}

	req2, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req2.Header.Set("X-Request-Id", "not-a-trace-id")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if _, ok := obs.ParseTraceID(resp2.Header.Get("X-Request-Id")); !ok {
		t.Fatalf("assigned X-Request-Id %q is not a valid trace ID", resp2.Header.Get("X-Request-Id"))
	}
}

// TestDebugRequests checks GET /debug/requests returns recent traces
// newest first with route, status and spans, honours ?n=, and rejects
// a malformed n.
func TestDebugRequests(t *testing.T) {
	srv, ts := newTestServer(t, Config{TraceRing: 16})
	p := testProfile(t, 7)
	meta := uploadProfile(t, ts, p)
	if st, _ := streamSynth(t, ts.URL, meta.ID, 1); st != http.StatusOK {
		t.Fatalf("synth status %d", st)
	}

	resp, err := http.Get(ts.URL + "/debug/requests?n=8")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Requests []obs.RequestTrace `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Requests) < 2 {
		t.Fatalf("debug/requests returned %d traces, want >= 2", len(doc.Requests))
	}
	var synthTr *obs.RequestTrace
	for i := range doc.Requests {
		if doc.Requests[i].Name == "serve.synth" {
			synthTr = &doc.Requests[i]
		}
	}
	if synthTr == nil {
		t.Fatal("synth request missing from /debug/requests")
	}
	if synthTr.Method != "POST" || synthTr.Status != http.StatusOK || synthTr.Bytes <= 0 {
		t.Fatalf("synth trace outcome wrong: %+v", synthTr)
	}
	spanNames := make(map[string]bool)
	for _, sp := range synthTr.Spans {
		spanNames[sp.Name] = true
	}
	if !spanNames["limit.wait"] || !spanNames["store.acquire"] || !spanNames["synth.stream"] {
		t.Fatalf("synth trace spans = %v, want limit.wait + store.acquire + synth.stream", synthTr.Spans)
	}

	if resp, err := http.Get(ts.URL + "/debug/requests?n=bogus"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad n: status %d, want 400", resp.StatusCode)
		}
	}

	// The ring accessor agrees with the endpoint.
	if tr := ringTrace(srv, "serve.synth"); tr == nil {
		t.Fatal("synth trace missing from the ring accessor")
	}
}

// TestMetricsEndpoint scrapes GET /metrics after live traffic and
// checks (a) the document passes the strict exposition parser, and
// (b) every serve.* and stage.* metric in the registry appears.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	p := testProfile(t, 3)
	meta := uploadProfile(t, ts, p)
	if st, _ := streamSynth(t, ts.URL, meta.ID, 1); st != http.StatusOK {
		t.Fatalf("synth status %d", st)
	}

	// Scrape twice: a scrape's own latency span ends after its response
	// is written, so stage.serve.metrics.* only exists from the second
	// scrape on.
	if warm, err := http.Get(ts.URL + "/metrics"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, warm.Body)
		warm.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateExposition(body.Bytes()); err != nil {
		t.Fatalf("/metrics failed validation: %v", err)
	}

	// Every serve.* / stage.* registry name must appear, sanitized.
	var reg bytes.Buffer
	if err := obs.Default.WriteJSON(&reg); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]uint64          `json:"counters"`
		Gauges     map[string]float64         `json:"gauges"`
		Histograms map[string]json.RawMessage `json:"histograms"`
	}
	if err := json.Unmarshal(reg.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var names []string
	for n := range doc.Counters {
		names = append(names, n)
	}
	for n := range doc.Gauges {
		names = append(names, n)
	}
	for n := range doc.Histograms {
		names = append(names, n)
	}
	text := body.String()
	for _, n := range names {
		if !strings.HasPrefix(n, "serve.") && !strings.HasPrefix(n, "stage.") {
			continue
		}
		pn := obs.PromName(n)
		if !strings.Contains(text, "# TYPE "+pn+" ") {
			t.Errorf("/metrics missing %s (from registry name %s)", pn, n)
		}
	}
}

// TestClusterTracePropagation is the tentpole's acceptance test: one
// synthesis against node B whose profile lives only on node A is ONE
// trace — the same trace ID lands in both nodes' rings and both nodes'
// access logs, node B's trace carries the cluster.fetch and
// synth.stream spans, and node A's row is marked as a peer request.
func TestClusterTracePropagation(t *testing.T) {
	logA, bufA := accessLogger()
	logB, bufB := accessLogger()
	srvA, err := NewServer(Config{AccessLog: logA})
	if err != nil {
		t.Fatal(err)
	}
	srvB, err := NewServer(Config{AccessLog: logB})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA.Handler())
	defer tsA.Close()
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()
	for _, j := range []struct {
		s     *Server
		self  string
		peers []string
	}{{srvA, tsA.URL, []string{tsB.URL}}, {srvB, tsB.URL, []string{tsA.URL}}} {
		if err := j.s.JoinCluster(ClusterConfig{
			Advertise: j.self, Peers: j.peers, PeerTimeout: 5 * time.Second,
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Plant the profile directly in node A's store — no upload, no
	// replication — so node B's synthesis must fetch-on-miss from A.
	p := testProfile(t, 11)
	meta, _, err := srvA.Store().Put(p)
	if err != nil {
		t.Fatal(err)
	}

	parent := obs.SpanContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID(), Flags: obs.FlagSampled}
	req, _ := http.NewRequest(http.MethodPost,
		fmt.Sprintf("%s/v1/profiles/%s/synth?seed=9&format=bin", tsB.URL, meta.ID), nil)
	req.Header.Set("traceparent", parent.Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cross-node synth status %d", resp.StatusCode)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	traceID := parent.TraceID.String()
	if got := resp.Header.Get("X-Request-Id"); got != traceID {
		t.Fatalf("X-Request-Id = %q, want %q", got, traceID)
	}

	// Node B: the synth request under the caller's trace ID, with the
	// cluster.fetch and synth.stream spans.
	trB := ringTrace(srvB, "serve.synth")
	if trB == nil || trB.TraceID != traceID {
		t.Fatalf("node B synth trace = %+v, want trace %s", trB, traceID)
	}
	spansB := make(map[string]bool)
	for _, sp := range trB.Spans {
		spansB[sp.Name] = true
	}
	if !spansB["cluster.fetch"] || !spansB["synth.stream"] {
		t.Fatalf("node B spans = %v, want cluster.fetch + synth.stream", trB.Spans)
	}

	// Node A: the peer download under the SAME trace ID, marked peer.
	trA := ringTrace(srvA, "serve.get")
	if trA == nil {
		t.Fatal("node A recorded no get request")
	}
	if trA.TraceID != traceID {
		t.Fatalf("node A trace ID = %s, want %s (trace did not propagate)", trA.TraceID, traceID)
	}
	if !trA.Peer {
		t.Fatal("node A's row is not marked as a peer request")
	}

	// Both access logs carry the one trace ID.
	if !strings.Contains(bufB.String(), traceID) {
		t.Fatalf("node B access log missing trace %s:\n%s", traceID, bufB.String())
	}
	if !strings.Contains(bufA.String(), traceID) {
		t.Fatalf("node A access log missing trace %s:\n%s", traceID, bufA.String())
	}
}

// TestClusterHealthRTT checks the peer probe rows report a positive
// round-trip time and feed the serve.cluster.probe.ns histogram.
func TestClusterHealthRTT(t *testing.T) {
	_, tss := newTestCluster(t, 2, Config{})
	before := obs.NewHistogram("serve.cluster.probe.ns", obs.ScaleNs).Total()

	resp, err := http.Get(tss[0].URL + "/v1/cluster/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Mode  string       `json:"mode"`
		Peers []peerHealth `json:"peers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Mode != "cluster" || len(doc.Peers) != 1 {
		t.Fatalf("cluster health = %+v", doc)
	}
	row := doc.Peers[0]
	if !row.OK || row.RTTNs <= 0 {
		t.Fatalf("peer row = %+v, want ok with positive rtt_ns", row)
	}
	after := obs.NewHistogram("serve.cluster.probe.ns", obs.ScaleNs).Total()
	if after != before+1 {
		t.Fatalf("probe histogram total %d -> %d, want one new observation", before, after)
	}
}

// TestAccessLogToggle checks obs.SetAccessLog(false) suppresses the
// per-request line without touching the trace ring.
func TestAccessLogToggle(t *testing.T) {
	log, buf := accessLogger()
	srv, err := NewServer(Config{AccessLog: log})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	obs.SetAccessLog(false)
	defer obs.SetAccessLog(true)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := buf.String(); got != "" {
		t.Fatalf("access log emitted while disabled:\n%s", got)
	}
	if tr := ringTrace(srv, "serve.health"); tr == nil {
		t.Fatal("trace ring must record requests even with access logs off")
	}

	obs.SetAccessLog(true)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(buf.String(), "route=serve.health") {
		t.Fatalf("access log missing the request line:\n%s", buf.String())
	}
}
