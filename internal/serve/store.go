// Package serve turns the Mocktails pipeline into a long-running
// service: a sharded, reference-counted, content-addressed store of
// statistical profiles plus an HTTP API that fits uploaded traces
// in-process and streams synthetic traces chunk-by-chunk to clients.
// The profile is exactly the artefact the paper argues is shareable
// where the raw trace is not — a server holds it resident once and
// amortises the fit across arbitrarily many cheap synthesis replays.
package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/profile"
)

// Store metrics. Hits/misses count Acquire outcomes; uploads and
// dedupe_hits count Put outcomes; evictions and rejected count the
// byte-budget enforcement paths. The gauges track current occupancy.
var (
	mStoreHits     = obs.NewCounter("serve.store.hits")
	mStoreMisses   = obs.NewCounter("serve.store.misses")
	mStoreUploads  = obs.NewCounter("serve.store.uploads")
	mStoreDedupe   = obs.NewCounter("serve.store.dedupe_hits")
	mStoreEvicted  = obs.NewCounter("serve.store.evictions")
	mStoreRejected = obs.NewCounter("serve.store.rejected")
	mStoreBytes    = obs.NewGauge("serve.store.bytes")
	mStoreProfiles = obs.NewGauge("serve.store.profiles")
)

// DefaultShards is the default shard count of a Store.
const DefaultShards = 16

// ErrStoreFull reports that a profile cannot be admitted because the
// byte budget is exhausted and everything evictable has been evicted
// (the remaining residents are pinned by in-flight streams, or the
// profile alone exceeds a shard's budget).
var ErrStoreFull = errors.New("serve: store budget exhausted")

// Meta describes one stored profile. Bytes is the size of the profile's
// canonical (uncompressed varint) encoding — the quantity the store's
// byte budget is accounted in, and the basis of its content address.
type Meta struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	Config   string `json:"config"`
	Leaves   int    `json:"leaves"`
	Requests uint64 `json:"requests"`
	Bytes    int64  `json:"bytes"`
}

// entry is one resident profile, backed by exactly one of two
// representations: a decoded heap profile (fresh uploads) or a
// zero-copy flat view over a memory-mapped disk-tier file (cold hits
// promoted from disk). Synthesis consumes either through profile.View,
// so the representations are interchangeable and byte-identical in
// output. refs counts outstanding Pins; an entry with refs > 0 is
// never evicted (a synthesis mid-stream must keep its profile). elem
// is the entry's node in the shard's LRU list.
type entry struct {
	meta Meta
	heap *profile.Profile
	flat *profile.Flat
	refs int
	elem *list.Element
}

// shard is one lock domain of the store: a map for lookup plus an LRU
// list (front = most recently used) for eviction, guarded by one
// RWMutex. Each shard enforces its own slice of the byte budget, so
// shards never coordinate and the store's total occupancy is bounded by
// the sum of the per-shard budgets.
type shard struct {
	mu      sync.RWMutex
	budget  int64
	bytes   int64
	entries map[string]*entry
	lru     *list.List // of *entry
}

// Store is a sharded, reference-counted, content-addressed profile
// cache. Profiles are keyed by the SHA-256 of their canonical encoding,
// so identical uploads dedupe regardless of how they were produced
// (pre-fit upload vs in-process fit of the same trace). All methods are
// safe for concurrent use.
type Store struct {
	shards []shard

	// disk is the optional second tier: flat profile files bounded by
	// their own (typically much larger) byte budget. nil for RAM-only
	// stores.
	disk *diskTier

	// totalBytes/totalCount mirror the summed shard occupancy for O(1)
	// reads and gauge updates.
	totalBytes atomic.Int64
	totalCount atomic.Int64
}

// StoreConfig configures a tiered store.
type StoreConfig struct {
	// Shards is the RAM-tier shard count (<= 0 selects DefaultShards).
	Shards int
	// Budget bounds resident canonical-encoded profile bytes in RAM
	// (<= 0 means unlimited).
	Budget int64
	// DiskDir, when non-empty, enables the disk tier: every upload is
	// written through as a content-addressed flat file, RAM eviction
	// becomes demotion, and a cold Acquire promotes by mmapping the
	// file — so the set of servable profiles is bounded by DiskBudget,
	// not Budget.
	DiskDir string
	// DiskBudget bounds the disk tier's bytes (<= 0 means unlimited).
	DiskBudget int64
}

// NewStore returns a RAM-only store with nshards shards (<= 0 selects
// DefaultShards) and a total byte budget (<= 0 means unlimited). The
// budget is divided evenly across shards; because each shard enforces
// its slice independently, the store as a whole never exceeds budget.
func NewStore(nshards int, budget int64) *Store {
	s, _ := NewTieredStore(StoreConfig{Shards: nshards, Budget: budget})
	return s
}

// NewTieredStore returns a store with the given configuration,
// creating (and re-indexing) the disk-tier directory when one is
// configured. The error is always nil for a RAM-only configuration.
func NewTieredStore(cfg StoreConfig) (*Store, error) {
	nshards := cfg.Shards
	if nshards <= 0 {
		nshards = DefaultShards
	}
	s := &Store{shards: make([]shard, nshards)}
	per := int64(0)
	if cfg.Budget > 0 {
		per = cfg.Budget / int64(nshards)
		if per == 0 {
			per = 1
		}
	}
	for i := range s.shards {
		s.shards[i].budget = per
		s.shards[i].entries = make(map[string]*entry)
		s.shards[i].lru = list.New()
	}
	if cfg.DiskDir != "" {
		d, err := newDiskTier(cfg.DiskDir, cfg.DiskBudget)
		if err != nil {
			return nil, err
		}
		s.disk = d
	}
	return s, nil
}

// ProfileID returns the store's content address for p — the hex SHA-256
// of its canonical encoding — along with the encoded size in bytes. The
// encoding streams through the hash; nothing is buffered.
func ProfileID(p *profile.Profile) (id string, size int64, err error) {
	h := sha256.New()
	cw := &countingHashWriter{w: h}
	if err := profile.Write(cw, p); err != nil {
		return "", 0, fmt.Errorf("serve: encoding profile for addressing: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), cw.n, nil
}

type countingHashWriter struct {
	w io.Writer
	n int64
}

func (c *countingHashWriter) Write(b []byte) (int, error) {
	n, err := c.w.Write(b)
	c.n += int64(n)
	return n, err
}

// shardFor maps a profile ID to its shard by FNV-1a.
func (s *Store) shardFor(id string) *shard {
	h := fnv.New32a()
	io.WriteString(h, id)
	return &s.shards[h.Sum32()%uint32(len(s.shards))]
}

// Put admits p, returning its metadata and whether it was newly added
// (false means an identical profile was already resident — a dedupe
// hit, which refreshes the entry's recency instead). When the shard is
// over budget, least-recently-used unpinned entries are evicted to make
// room; if that cannot free enough space, Put returns ErrStoreFull and
// the store is left unchanged.
func (s *Store) Put(p *profile.Profile) (Meta, bool, error) {
	id, size, err := ProfileID(p)
	if err != nil {
		return Meta{}, false, err
	}
	meta := Meta{
		ID:       id,
		Name:     p.Name,
		Config:   p.Config,
		Leaves:   len(p.Leaves),
		Requests: uint64(p.Requests()),
		Bytes:    size,
	}
	// Write through to the disk tier before taking the shard lock: once
	// the flat file exists, RAM eviction is a pure demotion (drop the
	// entry, the bytes are already on disk) and never does IO under the
	// lock. A write failure only degrades this profile to RAM-only.
	if s.disk != nil {
		if werr := s.disk.write(id, p); werr != nil {
			obs.Logger().Warn("disk tier write failed; profile is RAM-only", "id", id, "err", werr)
		}
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.entries[id]; ok {
		sh.lru.MoveToFront(e.elem)
		mStoreDedupe.Inc()
		return e.meta, false, nil
	}
	if err := s.admit(sh, &entry{meta: meta, heap: p}); err != nil {
		return Meta{}, false, err
	}
	mStoreUploads.Inc()
	return meta, true, nil
}

// admit inserts a fully-constructed entry into sh, evicting to make
// room. Caller holds sh.mu.
func (s *Store) admit(sh *shard, e *entry) error {
	size := e.meta.Bytes
	if sh.budget > 0 {
		if size > sh.budget {
			mStoreRejected.Inc()
			return fmt.Errorf("%w: profile is %d bytes, shard budget is %d", ErrStoreFull, size, sh.budget)
		}
		// Evict from the LRU tail, skipping pinned entries: a profile
		// feeding an in-flight stream must stay resident.
		for sh.bytes+size > sh.budget {
			if !s.evictOne(sh) {
				mStoreRejected.Inc()
				return fmt.Errorf("%w: %d bytes resident are pinned by active streams", ErrStoreFull, sh.bytes)
			}
		}
	}
	e.elem = sh.lru.PushFront(e)
	sh.entries[e.meta.ID] = e
	sh.bytes += size
	s.totalBytes.Add(size)
	s.totalCount.Add(1)
	s.updateGauges()
	return nil
}

// evictOne removes the least-recently-used unpinned entry of sh,
// reporting whether anything could be evicted. Caller holds sh.mu.
func (s *Store) evictOne(sh *shard) bool {
	for el := sh.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		if e.refs > 0 {
			continue
		}
		s.dropLocked(sh, e)
		mStoreEvicted.Inc()
		return true
	}
	return false
}

// dropLocked removes an unpinned entry from sh, releasing its mapping
// if it was flat-backed and counting a demotion when a disk-tier copy
// keeps the profile servable. Caller holds sh.mu and has checked
// e.refs == 0.
func (s *Store) dropLocked(sh *shard, e *entry) {
	sh.lru.Remove(e.elem)
	delete(sh.entries, e.meta.ID)
	sh.bytes -= e.meta.Bytes
	s.totalBytes.Add(-e.meta.Bytes)
	s.totalCount.Add(-1)
	if e.flat != nil {
		e.flat.Close()
		e.flat = nil
	}
	if s.disk != nil && s.disk.has(e.meta.ID) {
		mDiskDemotions.Inc()
	}
	s.updateGauges()
}

// Demote forces the profile out of the RAM tier, leaving any disk-tier
// copy in place: the next Acquire is a cold hit served by mmap. It
// returns false when the profile is not resident or is pinned by an
// active stream. Without a disk tier this is a forced eviction.
func (s *Store) Demote(id string) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[id]
	if !ok || e.refs > 0 {
		return false
	}
	s.dropLocked(sh, e)
	return true
}

// Pin is a reference to a resident profile. The profile is guaranteed
// to stay resident (never evicted) until Release; Release is safe to
// call more than once. A pin from a cold disk-tier hit that could not
// be admitted to RAM (everything resident was pinned) is private: it
// serves this caller only and its mapping is released with the pin.
type Pin struct {
	s       *Store
	sh      *shard
	e       *entry
	private bool
	once    sync.Once
}

// Acquire pins the profile with the given ID, bumping its recency. A
// RAM miss falls through to the disk tier: the flat file is promoted
// by memory-mapping it — a header parse, no decode, no copy — and
// admitted as a resident entry (demoting colder ones as needed). The
// second return is false when neither tier holds the profile.
func (s *Store) Acquire(id string) (*Pin, bool) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	if e, ok := sh.entries[id]; ok {
		e.refs++
		sh.lru.MoveToFront(e.elem)
		sh.mu.Unlock()
		mStoreHits.Inc()
		return &Pin{s: s, sh: sh, e: e}, true
	}
	sh.mu.Unlock()
	if s.disk == nil {
		mStoreMisses.Inc()
		return nil, false
	}
	// Cold hit: map the file outside the lock (the open is O(header),
	// but still IO), then re-check — a concurrent Acquire may have
	// promoted the same profile while we were mapping.
	f := s.disk.open(id)
	if f == nil {
		mStoreMisses.Inc()
		return nil, false
	}
	e := &entry{meta: flatMeta(id, f), flat: f}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if prior, ok := sh.entries[id]; ok {
		f.Close()
		prior.refs++
		sh.lru.MoveToFront(prior.elem)
		mStoreHits.Inc()
		return &Pin{s: s, sh: sh, e: prior}, true
	}
	mStoreMisses.Inc() // it was not resident, even though the disk saved it
	mDiskPromotions.Inc()
	if err := s.admit(sh, e); err != nil {
		// RAM is wedged with pinned entries; serve this caller from a
		// private mapping rather than failing a profile the store holds.
		e.refs = 1
		return &Pin{s: s, sh: sh, e: e, private: true}, true
	}
	e.refs++
	return &Pin{s: s, sh: sh, e: e}, true
}

// flatMeta reconstructs store metadata from a flat profile's header.
// The ID is trusted from the file name: it was content-addressed when
// written, and the tier directory is owned by the store.
func flatMeta(id string, f *profile.Flat) Meta {
	return Meta{
		ID:       id,
		Name:     f.Name(),
		Config:   f.Config(),
		Leaves:   f.NumLeaves(),
		Requests: uint64(f.Requests()),
		Bytes:    f.CanonicalBytes(),
	}
}

// View returns the pinned profile as a synthesis view — the heap
// profile or the zero-copy flat mapping, whichever backs the entry.
// Synthesis output is byte-identical either way.
func (p *Pin) View() profile.View {
	if p.e.heap != nil {
		return p.e.heap
	}
	return p.e.flat
}

// Flat returns the flat view backing the pin, or nil for a heap-backed
// entry.
func (p *Pin) Flat() *profile.Flat { return p.e.flat }

// Profile returns the pinned profile as a heap profile. For a
// flat-backed entry this materialises a deep copy on every call —
// prefer View for synthesis; Profile is for paths that need the
// concrete type, like canonical re-encoding. The caller must not
// mutate a heap-backed result — the same value is shared by every
// concurrent stream.
func (p *Pin) Profile() *profile.Profile {
	if p.e.heap != nil {
		return p.e.heap
	}
	return p.e.flat.Profile()
}

// Meta returns the pinned profile's metadata.
func (p *Pin) Meta() Meta { return p.e.meta }

// Release drops the pin, making the profile evictable again once no
// other pins remain. Releasing a private pin unmaps its file.
func (p *Pin) Release() {
	p.once.Do(func() {
		if p.private {
			p.e.flat.Close()
			return
		}
		p.sh.mu.Lock()
		p.e.refs--
		p.sh.mu.Unlock()
	})
}

// refs reports the current pin count of a RAM-resident profile, or -1
// when it is not resident. It exists as the white-box test hook for
// pin accounting: tests must go through it instead of reaching into
// shardFor/entries directly, so shard-map refactors (e.g. extending
// the FNV map outward to a cluster ring) cannot silently change what
// the tests measure.
func (s *Store) refs(id string) int {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if e, ok := sh.entries[id]; ok {
		return e.refs
	}
	return -1
}

// Meta returns the metadata of the profile with the given ID without
// pinning it or promoting it into RAM. A profile demoted to the disk
// tier answers from its flat header (an mmap + header parse).
func (s *Store) Meta(id string) (Meta, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	e, ok := sh.entries[id]
	if ok {
		m := e.meta
		sh.mu.RUnlock()
		return m, true
	}
	sh.mu.RUnlock()
	if s.disk == nil {
		return Meta{}, false
	}
	return s.diskMeta(id)
}

// diskMeta reads a disk-tier profile's metadata from its flat header.
func (s *Store) diskMeta(id string) (Meta, bool) {
	f := s.disk.open(id)
	if f == nil {
		return Meta{}, false
	}
	m := flatMeta(id, f)
	f.Close()
	return m, true
}

// List returns the metadata of every servable profile — RAM residents
// plus profiles currently demoted to the disk tier — ordered by ID.
func (s *Store) List() []Meta {
	var all []Meta
	resident := make(map[string]bool)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, e := range sh.entries {
			all = append(all, e.meta)
			resident[e.meta.ID] = true
		}
		sh.mu.RUnlock()
	}
	if s.disk != nil {
		for _, id := range s.disk.ids() {
			if resident[id] {
				continue
			}
			if m, ok := s.diskMeta(id); ok {
				all = append(all, m)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	return all
}

// Bytes returns the total canonical-encoded bytes resident in RAM.
func (s *Store) Bytes() int64 { return s.totalBytes.Load() }

// Len returns the number of profiles resident in RAM.
func (s *Store) Len() int { return int(s.totalCount.Load()) }

// DiskStats returns the disk tier's occupancy: flat-file bytes and
// file count. Both are zero for a RAM-only store.
func (s *Store) DiskStats() (bytes int64, files int) {
	if s.disk == nil {
		return 0, 0
	}
	return s.disk.stats()
}

func (s *Store) updateGauges() {
	mStoreBytes.Set(float64(s.totalBytes.Load()))
	mStoreProfiles.Set(float64(s.totalCount.Load()))
}
