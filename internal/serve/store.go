// Package serve turns the Mocktails pipeline into a long-running
// service: a sharded, reference-counted, content-addressed store of
// statistical profiles plus an HTTP API that fits uploaded traces
// in-process and streams synthetic traces chunk-by-chunk to clients.
// The profile is exactly the artefact the paper argues is shareable
// where the raw trace is not — a server holds it resident once and
// amortises the fit across arbitrarily many cheap synthesis replays.
package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/profile"
)

// Store metrics. Hits/misses count Acquire outcomes; uploads and
// dedupe_hits count Put outcomes; evictions and rejected count the
// byte-budget enforcement paths. The gauges track current occupancy.
var (
	mStoreHits     = obs.NewCounter("serve.store.hits")
	mStoreMisses   = obs.NewCounter("serve.store.misses")
	mStoreUploads  = obs.NewCounter("serve.store.uploads")
	mStoreDedupe   = obs.NewCounter("serve.store.dedupe_hits")
	mStoreEvicted  = obs.NewCounter("serve.store.evictions")
	mStoreRejected = obs.NewCounter("serve.store.rejected")
	mStoreBytes    = obs.NewGauge("serve.store.bytes")
	mStoreProfiles = obs.NewGauge("serve.store.profiles")
)

// DefaultShards is the default shard count of a Store.
const DefaultShards = 16

// ErrStoreFull reports that a profile cannot be admitted because the
// byte budget is exhausted and everything evictable has been evicted
// (the remaining residents are pinned by in-flight streams, or the
// profile alone exceeds a shard's budget).
var ErrStoreFull = errors.New("serve: store budget exhausted")

// Meta describes one stored profile. Bytes is the size of the profile's
// canonical (uncompressed varint) encoding — the quantity the store's
// byte budget is accounted in, and the basis of its content address.
type Meta struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	Config   string `json:"config"`
	Leaves   int    `json:"leaves"`
	Requests uint64 `json:"requests"`
	Bytes    int64  `json:"bytes"`
}

// entry is one resident profile. refs counts outstanding Pins; an entry
// with refs > 0 is never evicted (a synthesis mid-stream must keep its
// profile). elem is the entry's node in the shard's LRU list.
type entry struct {
	meta Meta
	p    *profile.Profile
	refs int
	elem *list.Element
}

// shard is one lock domain of the store: a map for lookup plus an LRU
// list (front = most recently used) for eviction, guarded by one
// RWMutex. Each shard enforces its own slice of the byte budget, so
// shards never coordinate and the store's total occupancy is bounded by
// the sum of the per-shard budgets.
type shard struct {
	mu      sync.RWMutex
	budget  int64
	bytes   int64
	entries map[string]*entry
	lru     *list.List // of *entry
}

// Store is a sharded, reference-counted, content-addressed profile
// cache. Profiles are keyed by the SHA-256 of their canonical encoding,
// so identical uploads dedupe regardless of how they were produced
// (pre-fit upload vs in-process fit of the same trace). All methods are
// safe for concurrent use.
type Store struct {
	shards []shard

	// totalBytes/totalCount mirror the summed shard occupancy for O(1)
	// reads and gauge updates.
	totalBytes atomic.Int64
	totalCount atomic.Int64
}

// NewStore returns a store with nshards shards (<= 0 selects
// DefaultShards) and a total byte budget (<= 0 means unlimited). The
// budget is divided evenly across shards; because each shard enforces
// its slice independently, the store as a whole never exceeds budget.
func NewStore(nshards int, budget int64) *Store {
	if nshards <= 0 {
		nshards = DefaultShards
	}
	s := &Store{shards: make([]shard, nshards)}
	per := int64(0)
	if budget > 0 {
		per = budget / int64(nshards)
		if per == 0 {
			per = 1
		}
	}
	for i := range s.shards {
		s.shards[i].budget = per
		s.shards[i].entries = make(map[string]*entry)
		s.shards[i].lru = list.New()
	}
	return s
}

// ProfileID returns the store's content address for p — the hex SHA-256
// of its canonical encoding — along with the encoded size in bytes. The
// encoding streams through the hash; nothing is buffered.
func ProfileID(p *profile.Profile) (id string, size int64, err error) {
	h := sha256.New()
	cw := &countingHashWriter{w: h}
	if err := profile.Write(cw, p); err != nil {
		return "", 0, fmt.Errorf("serve: encoding profile for addressing: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), cw.n, nil
}

type countingHashWriter struct {
	w io.Writer
	n int64
}

func (c *countingHashWriter) Write(b []byte) (int, error) {
	n, err := c.w.Write(b)
	c.n += int64(n)
	return n, err
}

// shardFor maps a profile ID to its shard by FNV-1a.
func (s *Store) shardFor(id string) *shard {
	h := fnv.New32a()
	io.WriteString(h, id)
	return &s.shards[h.Sum32()%uint32(len(s.shards))]
}

// Put admits p, returning its metadata and whether it was newly added
// (false means an identical profile was already resident — a dedupe
// hit, which refreshes the entry's recency instead). When the shard is
// over budget, least-recently-used unpinned entries are evicted to make
// room; if that cannot free enough space, Put returns ErrStoreFull and
// the store is left unchanged.
func (s *Store) Put(p *profile.Profile) (Meta, bool, error) {
	id, size, err := ProfileID(p)
	if err != nil {
		return Meta{}, false, err
	}
	meta := Meta{
		ID:       id,
		Name:     p.Name,
		Config:   p.Config,
		Leaves:   len(p.Leaves),
		Requests: uint64(p.Requests()),
		Bytes:    size,
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.entries[id]; ok {
		sh.lru.MoveToFront(e.elem)
		mStoreDedupe.Inc()
		return e.meta, false, nil
	}
	if sh.budget > 0 {
		if size > sh.budget {
			mStoreRejected.Inc()
			return Meta{}, false, fmt.Errorf("%w: profile is %d bytes, shard budget is %d", ErrStoreFull, size, sh.budget)
		}
		// Evict from the LRU tail, skipping pinned entries: a profile
		// feeding an in-flight stream must stay resident.
		for sh.bytes+size > sh.budget {
			if !s.evictOne(sh) {
				mStoreRejected.Inc()
				return Meta{}, false, fmt.Errorf("%w: %d bytes resident are pinned by active streams", ErrStoreFull, sh.bytes)
			}
		}
	}
	e := &entry{meta: meta, p: p}
	e.elem = sh.lru.PushFront(e)
	sh.entries[id] = e
	sh.bytes += size
	s.totalBytes.Add(size)
	s.totalCount.Add(1)
	mStoreUploads.Inc()
	s.updateGauges()
	return meta, true, nil
}

// evictOne removes the least-recently-used unpinned entry of sh,
// reporting whether anything could be evicted. Caller holds sh.mu.
func (s *Store) evictOne(sh *shard) bool {
	for el := sh.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		if e.refs > 0 {
			continue
		}
		sh.lru.Remove(el)
		delete(sh.entries, e.meta.ID)
		sh.bytes -= e.meta.Bytes
		s.totalBytes.Add(-e.meta.Bytes)
		s.totalCount.Add(-1)
		mStoreEvicted.Inc()
		s.updateGauges()
		return true
	}
	return false
}

// Pin is a reference to a resident profile. The profile is guaranteed
// to stay resident (never evicted) until Release; Release is safe to
// call more than once.
type Pin struct {
	s    *Store
	sh   *shard
	e    *entry
	once sync.Once
}

// Acquire pins the profile with the given ID, bumping its recency. The
// second return is false when no such profile is resident.
func (s *Store) Acquire(id string) (*Pin, bool) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[id]
	if !ok {
		mStoreMisses.Inc()
		return nil, false
	}
	e.refs++
	sh.lru.MoveToFront(e.elem)
	mStoreHits.Inc()
	return &Pin{s: s, sh: sh, e: e}, true
}

// Profile returns the pinned profile. The caller must not mutate it —
// the same value is shared by every concurrent stream.
func (p *Pin) Profile() *profile.Profile { return p.e.p }

// Meta returns the pinned profile's metadata.
func (p *Pin) Meta() Meta { return p.e.meta }

// Release drops the pin, making the profile evictable again once no
// other pins remain.
func (p *Pin) Release() {
	p.once.Do(func() {
		p.sh.mu.Lock()
		p.e.refs--
		p.sh.mu.Unlock()
	})
}

// Meta returns the metadata of the profile with the given ID without
// pinning it or touching its recency.
func (s *Store) Meta(id string) (Meta, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.entries[id]
	if !ok {
		return Meta{}, false
	}
	return e.meta, true
}

// List returns the metadata of every resident profile, ordered by ID.
func (s *Store) List() []Meta {
	var all []Meta
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, e := range sh.entries {
			all = append(all, e.meta)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	return all
}

// Bytes returns the total canonical-encoded bytes resident.
func (s *Store) Bytes() int64 { return s.totalBytes.Load() }

// Len returns the number of resident profiles.
func (s *Store) Len() int { return int(s.totalCount.Load()) }

func (s *Store) updateGauges() {
	mStoreBytes.Set(float64(s.totalBytes.Load()))
	mStoreProfiles.Set(float64(s.totalCount.Load()))
}
