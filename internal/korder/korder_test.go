package korder

import (
	"testing"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/trace"
)

// periodicTrace emits fixed-length stride runs — the pattern class where
// order-1 chains lose the run-length structure.
func periodicTrace(n int) trace.Trace {
	var tr trace.Trace
	tm := uint64(0)
	addr := uint64(0x1000)
	for i := 0; i < n; i++ {
		tm += 10
		if i%8 == 7 {
			addr += 4096 - 7*64 // jump to the next row after an 8-run
		} else {
			addr += 64
		}
		tr = append(tr, trace.Request{Time: tm, Addr: addr, Size: 64, Op: trace.Read})
	}
	return tr
}

func TestBuildAndSynthesizeCounts(t *testing.T) {
	tr := periodicTrace(2000)
	p, err := Build("periodic", tr, core.DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Order != 2 {
		t.Errorf("Order = %d", p.Order)
	}
	got := trace.Collect(Synthesize(p, 1), 0)
	if len(got) != len(tr) {
		t.Errorf("synthesised %d, want %d", len(got), len(tr))
	}
	if !got.Sorted() {
		t.Error("output unsorted")
	}
}

func TestBuildInvalidConfig(t *testing.T) {
	if _, err := Build("x", periodicTrace(10), partition.Config{}, 1); err == nil {
		t.Error("empty config accepted")
	}
}

func TestOrder2ReproducesPeriodicRunsExactly(t *testing.T) {
	// With order >= 2 the fixed 8-run structure is deterministic, so the
	// synthetic address sequence matches the original exactly.
	tr := periodicTrace(1000)
	p, err := Build("periodic", tr, core.DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	got := trace.Collect(Synthesize(p, 9), 0)
	mismatch := 0
	for i := range tr {
		if got[i].Addr != tr[i].Addr {
			mismatch++
		}
	}
	if mismatch != 0 {
		t.Errorf("%d/%d address mismatches at order 2", mismatch, len(tr))
	}
}

func TestOrder1LosesRunStructure(t *testing.T) {
	// Sanity that the ablation is meaningful: order 1 on the same trace
	// does NOT reproduce addresses exactly (run lengths randomise).
	tr := periodicTrace(1000)
	p, err := Build("periodic", tr, core.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	got := trace.Collect(Synthesize(p, 9), 0)
	mismatch := 0
	for i := range tr {
		if got[i].Addr != tr[i].Addr {
			mismatch++
		}
	}
	if mismatch == 0 {
		t.Skip("order-1 happened to reproduce the pattern; seed-dependent")
	}
}

func TestAddressesStayInRange(t *testing.T) {
	rng := stats.NewRNG(4)
	var tr trace.Trace
	tm := uint64(0)
	for i := 0; i < 1000; i++ {
		tm += rng.Uint64n(30)
		tr = append(tr, trace.Request{
			Time: tm, Addr: 0x5000 + rng.Uint64n(8192), Size: 32, Op: trace.Read,
		})
	}
	p, err := Build("rand", tr, core.DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := tr.AddrRange()
	for _, r := range trace.Collect(Synthesize(p, 5), 0) {
		if r.Addr < lo || r.Addr >= hi {
			t.Fatalf("address 0x%x outside [0x%x, 0x%x)", r.Addr, lo, hi)
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	tr := periodicTrace(500)
	p, _ := Build("periodic", tr, core.DefaultConfig(), 2)
	a := trace.Collect(Synthesize(p, 3), 0)
	b := trace.Collect(Synthesize(p, 3), 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}
