// Package korder is an extension of Mocktails that replaces the
// first-order McC leaf models with history-k models (markov.HModel),
// keeping everything else — hierarchy, per-leaf bookkeeping, priority-
// queue injection, address wrapping — identical. It exists to quantify
// how much of Mocktails' residual error on strictly periodic patterns
// (e.g. the tiled DPU scan of Fig. 10) is due to the order-1 assumption;
// see the "ablation-korder" experiment.
package korder

import (
	"repro/internal/markov"
	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/trace"
)

// Leaf is the history-k analogue of profile.Leaf.
type Leaf struct {
	StartTime uint64
	StartAddr uint64
	Lo, Hi    uint64
	Count     uint32

	DeltaTime markov.HModel
	Stride    markov.HModel
	Op        markov.HModel
	Size      markov.HModel
}

// Profile is a history-k Mocktails profile.
type Profile struct {
	Name   string
	Order  int
	Leaves []Leaf
}

// Build fits a history-k profile with the given hierarchy.
func Build(name string, t trace.Trace, cfg partition.Config, order int) (*Profile, error) {
	leaves, err := partition.Split(t, cfg)
	if err != nil {
		return nil, err
	}
	p := &Profile{Name: name, Order: order, Leaves: make([]Leaf, 0, len(leaves))}
	for _, l := range leaves {
		p.Leaves = append(p.Leaves, fitLeaf(l, order))
	}
	return p, nil
}

func fitLeaf(l partition.Leaf, order int) Leaf {
	n := len(l.Reqs)
	deltas := make([]int64, 0, n-1)
	strides := make([]int64, 0, n-1)
	ops := make([]int64, 0, n)
	sizes := make([]int64, 0, n)
	for i, r := range l.Reqs {
		ops = append(ops, int64(r.Op))
		sizes = append(sizes, int64(r.Size))
		if i > 0 {
			deltas = append(deltas, int64(r.Time-l.Reqs[i-1].Time))
			strides = append(strides, int64(r.Addr)-int64(l.Reqs[i-1].Addr))
		}
	}
	return Leaf{
		StartTime: l.Reqs[0].Time,
		StartAddr: l.Reqs[0].Addr,
		Lo:        l.Lo,
		Hi:        l.Hi,
		Count:     uint32(n),
		DeltaTime: markov.FitOrder(deltas, order),
		Stride:    markov.FitOrder(strides, order),
		Op:        markov.FitOrder(ops, order),
		Size:      markov.FitOrder(sizes, order),
	}
}

// Synthesize returns a source regenerating the workload from the
// history-k profile.
func Synthesize(p *Profile, seed uint64) trace.Source {
	rng := stats.NewRNG(seed)
	gens := make([]synth.Gen, 0, len(p.Leaves))
	for i := range p.Leaves {
		if g := newLeafGen(&p.Leaves[i], rng.Fork()); g != nil {
			gens = append(gens, g)
		}
	}
	return synth.NewMerger(gens)
}

type leafGen struct {
	leaf    *Leaf
	dt      *markov.HGenerator
	stride  *markov.HGenerator
	op      *markov.HGenerator
	size    *markov.HGenerator
	emitted uint32
	pending trace.Request
}

func newLeafGen(l *Leaf, rng *stats.RNG) *leafGen {
	if l.Count == 0 {
		return nil
	}
	g := &leafGen{
		leaf:   l,
		dt:     markov.NewHGenerator(&l.DeltaTime, rng.Fork()),
		stride: markov.NewHGenerator(&l.Stride, rng.Fork()),
		op:     markov.NewHGenerator(&l.Op, rng.Fork()),
		size:   markov.NewHGenerator(&l.Size, rng.Fork()),
	}
	g.pending = trace.Request{
		Time: l.StartTime,
		Addr: l.StartAddr,
		Op:   synth.OpFromValue(g.op.Next()),
		Size: synth.SizeFromValue(g.size.Next()),
	}
	g.emitted = 1
	return g
}

func (g *leafGen) Pending() trace.Request { return g.pending }

func (g *leafGen) Advance() bool {
	if g.emitted >= g.leaf.Count {
		return false
	}
	g.emitted++
	dt := g.dt.Next()
	if dt < 0 {
		dt = 0
	}
	g.pending = trace.Request{
		Time: g.pending.Time + uint64(dt),
		Addr: synth.WrapAddr(int64(g.pending.Addr)+g.stride.Next(), g.leaf.Lo, g.leaf.Hi),
		Op:   synth.OpFromValue(g.op.Next()),
		Size: synth.SizeFromValue(g.size.Next()),
	}
	return true
}
