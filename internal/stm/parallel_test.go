package stm

import (
	"reflect"
	"testing"

	"repro/internal/partition"
)

// TestFitLeafEmpty guards the same empty-partition panic fixed in
// internal/profile: capacity n-1 and Reqs[0] on a leaf with no requests.
func TestFitLeafEmpty(t *testing.T) {
	l := fitLeaf(partition.Leaf{Lo: 100, Hi: 200})
	if l.Count != 0 || l.Reads != 0 || l.Writes != 0 {
		t.Fatalf("empty leaf has counts: %+v", l)
	}
	if l.Lo != 100 || l.Hi != 200 {
		t.Fatalf("bounds = [%d,%d), want [100,200)", l.Lo, l.Hi)
	}
}

// TestBuildParallelDeterminism: STM profiles carry maps (the stride
// pattern table), so equality is structural rather than byte-level — the
// profile package covers the encoded-bytes variant.
func TestBuildParallelDeterminism(t *testing.T) {
	tr := workload(7, 4000)
	cfg := partition.TwoLevelTS(500)

	serial, err := Build("w", tr, cfg, Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Leaves) < 2 {
		t.Fatalf("want a multi-leaf workload, got %d leaves", len(serial.Leaves))
	}
	for _, workers := range []int{2, 8} {
		p, err := Build("w", tr, cfg, Workers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p, serial) {
			t.Fatalf("workers=%d: profile differs from serial build", workers)
		}
	}
}
