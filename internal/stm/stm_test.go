package stm

import (
	"testing"

	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/trace"
)

func workload(seed uint64, n int) trace.Trace {
	rng := stats.NewRNG(seed)
	var tr trace.Trace
	tm := uint64(0)
	for i := 0; i < n; i++ {
		tm += rng.Uint64n(40)
		op := trace.Read
		if rng.Bool(0.35) {
			op = trace.Write
		}
		tr = append(tr, trace.Request{
			Time: tm,
			Addr: uint64((i%4)*32768) + uint64(i%10)*64,
			Size: 64,
			Op:   op,
		})
	}
	return tr
}

func TestBuildLeafCounts(t *testing.T) {
	tr := workload(1, 2000)
	p, err := Build("w", tr, partition.TwoLevelTS(500))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, l := range p.Leaves {
		total += int(l.Count)
		if int(l.Reads+l.Writes) != int(l.Count) {
			t.Errorf("leaf op counts %d+%d != %d", l.Reads, l.Writes, l.Count)
		}
	}
	if total != len(tr) {
		t.Errorf("leaves hold %d requests, want %d", total, len(tr))
	}
}

func TestBuildInvalidConfig(t *testing.T) {
	if _, err := Build("w", workload(2, 10), partition.Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSynthesizeCountAndOrder(t *testing.T) {
	tr := workload(3, 2000)
	p, err := Build("w", tr, partition.TwoLevelTS(500))
	if err != nil {
		t.Fatal(err)
	}
	got := trace.Collect(Synthesize(p, 5), 0)
	if len(got) != len(tr) {
		t.Errorf("synthesised %d, want %d", len(got), len(tr))
	}
	if !got.Sorted() {
		t.Error("STM synthetic stream unsorted")
	}
}

func TestSynthesizeExactOpCounts(t *testing.T) {
	// The paper: strict convergence makes STM produce the exact number
	// of reads and writes too.
	tr := workload(4, 3000)
	wantR, wantW := tr.Counts()
	p, err := Build("w", tr, partition.TwoLevelTS(500))
	if err != nil {
		t.Fatal(err)
	}
	got := trace.Collect(Synthesize(p, 7), 0)
	gotR, gotW := got.Counts()
	if gotR != wantR || gotW != wantW {
		t.Errorf("op counts %d/%d, want %d/%d", gotR, gotW, wantR, wantW)
	}
}

func TestSynthesizeAddressesInRange(t *testing.T) {
	tr := workload(5, 1500)
	lo, hi := tr.AddrRange()
	p, err := Build("w", tr, partition.TwoLevelTS(500))
	if err != nil {
		t.Fatal(err)
	}
	got := trace.Collect(Synthesize(p, 9), 0)
	for _, r := range got {
		if r.Addr < lo || r.Addr >= hi {
			t.Fatalf("address 0x%x outside [0x%x,0x%x)", r.Addr, lo, hi)
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	tr := workload(6, 1000)
	p, _ := Build("w", tr, partition.TwoLevelTS(500))
	a := trace.Collect(Synthesize(p, 3), 0)
	b := trace.Collect(Synthesize(p, 3), 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestFitAddrConstantStride(t *testing.T) {
	addrs := []uint64{0, 64, 128, 192, 256}
	m := FitAddr(addrs)
	if len(m.Global) != 1 || m.Global[0].Stride != 64 {
		t.Errorf("global strides = %+v", m.Global)
	}
	if len(m.Pattern) == 0 {
		t.Error("no pattern rows for strided sequence")
	}
}

func TestFitAddrEmptyAndSingle(t *testing.T) {
	if m := FitAddr(nil); len(m.Global) != 0 {
		t.Error("empty FitAddr has strides")
	}
	if m := FitAddr([]uint64{42}); len(m.Global) != 0 {
		t.Error("single-address FitAddr has strides")
	}
}

func TestFitAddrStackDistance(t *testing.T) {
	// a b a b: each reuse at stack depth 1.
	addrs := []uint64{0, 4096, 0, 4096}
	m := FitAddr(addrs)
	if m.StackDist[1] != 2 {
		t.Errorf("StackDist[1] = %d, want 2", m.StackDist[1])
	}
}

func TestAddrGenReproducesConstantStride(t *testing.T) {
	addrs := []uint64{1000, 1064, 1128, 1192, 1256, 1320}
	m := FitAddr(addrs)
	g := newAddrGen(&m, addrs[0], 1000, 1384, stats.NewRNG(1))
	for i := 1; i < len(addrs); i++ {
		got := g.next()
		if got != addrs[i] {
			t.Fatalf("addr %d = %d, want %d", i, got, addrs[i])
		}
	}
}

func TestAddrGenStaysInRange(t *testing.T) {
	rng := stats.NewRNG(2)
	addrs := make([]uint64, 200)
	for i := range addrs {
		addrs[i] = 5000 + rng.Uint64n(3000)
	}
	m := FitAddr(addrs)
	g := newAddrGen(&m, addrs[0], 5000, 8000, stats.NewRNG(3))
	for i := 0; i < 500; i++ {
		if a := g.next(); a < 5000 || a >= 8000 {
			t.Fatalf("generated address %d outside range", a)
		}
	}
}

func TestEncodeHistoryDistinct(t *testing.T) {
	a := encodeHistory([]int64{1, 2})
	b := encodeHistory([]int64{2, 1})
	c := encodeHistory([]int64{1, 2, 3})
	if a == b || a == c {
		t.Error("history encodings collide")
	}
}

func TestStrideCountsSorted(t *testing.T) {
	m := FitAddr([]uint64{0, 100, 50, 300, 200})
	for i := 1; i < len(m.Global); i++ {
		if m.Global[i].Stride <= m.Global[i-1].Stride {
			t.Fatal("global strides not sorted")
		}
	}
}
