package stm

import (
	"repro/internal/stats"
	"repro/internal/synth"
)

// AddrModel is STM's address model: a stride pattern table keyed by the
// recent stride history (longest-suffix match, histories of length 1 to
// MaxHistory), plus a stack-distance table capturing temporal reuse used
// when no history matches, plus a global stride histogram as the last
// resort.
type AddrModel struct {
	// Pattern maps an encoded stride-history suffix to the observed
	// next-stride counts.
	Pattern map[string][]StrideCount
	// Global is the unconditioned stride histogram.
	Global []StrideCount
	// StackDist[d] counts reuses of the address at LRU depth d in a
	// StackRows-deep stack of recent addresses.
	StackDist [StackRows]uint32
}

// StrideCount is one observed stride with its training count.
type StrideCount struct {
	Stride int64
	N      uint32
}

// FitAddr builds the address model from a partition's address sequence.
func FitAddr(addrs []uint64) AddrModel {
	m := AddrModel{Pattern: make(map[string][]StrideCount)}
	if len(addrs) < 2 {
		return m
	}
	strides := make([]int64, len(addrs)-1)
	for i := 1; i < len(addrs); i++ {
		strides[i-1] = int64(addrs[i]) - int64(addrs[i-1])
	}
	global := make(map[int64]uint32)
	for _, s := range strides {
		global[s]++
	}
	m.Global = countsToSlice(global)

	// Stride pattern table over every history suffix length.
	for i := 1; i < len(strides); i++ {
		maxH := i
		if maxH > MaxHistory {
			maxH = MaxHistory
		}
		for h := 1; h <= maxH; h++ {
			key := encodeHistory(strides[i-h : i])
			m.Pattern[key] = bumpStride(m.Pattern[key], strides[i])
		}
	}

	// Stack distance table over the address stream, depth-limited to
	// StackRows as in the paper's configuration.
	var stack []uint64
	for _, a := range addrs {
		found := -1
		for d, sa := range stack {
			if sa == a {
				found = d
				break
			}
		}
		if found >= 0 {
			m.StackDist[found]++
			stack = append(stack[:found], stack[found+1:]...)
		}
		stack = append([]uint64{a}, stack...)
		if len(stack) > StackRows {
			stack = stack[:StackRows]
		}
	}
	return m
}

func countsToSlice(c map[int64]uint32) []StrideCount {
	out := make([]StrideCount, 0, len(c))
	for s, n := range c {
		out = append(out, StrideCount{s, n})
	}
	// Deterministic order for reproducible generation.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Stride < out[j-1].Stride; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func bumpStride(row []StrideCount, s int64) []StrideCount {
	for i := range row {
		if row[i].Stride == s {
			row[i].N++
			return row
		}
	}
	return append(row, StrideCount{s, 1})
}

// encodeHistory packs a stride history into a map key.
func encodeHistory(h []int64) string {
	b := make([]byte, 0, len(h)*8)
	for _, s := range h {
		u := uint64(s)
		b = append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	return string(b)
}

// addrGen generates an address sequence from an AddrModel with strict
// convergence on the longest-matching pattern rows.
type addrGen struct {
	m       *AddrModel
	rng     *stats.RNG
	lo, hi  uint64
	cur     uint64
	hist    []int64
	remain  map[string][]StrideCount // strict-convergence copies
	stack   []uint64
	sdTotal uint64
	sd      [StackRows]uint32
}

func newAddrGen(m *AddrModel, start, lo, hi uint64, rng *stats.RNG) *addrGen {
	g := &addrGen{m: m, rng: rng, lo: lo, hi: hi, cur: start,
		remain: make(map[string][]StrideCount, len(m.Pattern))}
	g.sd = m.StackDist
	for _, n := range g.sd {
		g.sdTotal += uint64(n)
	}
	g.stack = []uint64{start}
	return g
}

// next produces the next address: longest-suffix stride-table match
// first, then stack-distance reuse, then the global stride histogram.
func (g *addrGen) next() uint64 {
	stride, ok := g.patternStride()
	var addr uint64
	switch {
	case ok:
		addr = synth.WrapAddr(int64(g.cur)+stride, g.lo, g.hi)
	case g.reuseAddr(&addr):
		stride = int64(addr) - int64(g.cur)
	default:
		stride = g.globalStride()
		addr = synth.WrapAddr(int64(g.cur)+stride, g.lo, g.hi)
	}
	g.pushHist(stride)
	g.pushStack(addr)
	g.cur = addr
	return addr
}

// patternStride attempts a longest-suffix match in the pattern table,
// consuming remaining counts (strict convergence) when it draws.
func (g *addrGen) patternStride() (int64, bool) {
	for h := len(g.hist); h >= 1; h-- {
		key := encodeHistory(g.hist[len(g.hist)-h:])
		row, ok := g.remain[key]
		if !ok {
			orig, exists := g.m.Pattern[key]
			if !exists {
				continue
			}
			row = make([]StrideCount, len(orig))
			copy(row, orig)
			g.remain[key] = row
		}
		var total uint64
		for _, e := range row {
			total += uint64(e.N)
		}
		if total == 0 {
			// Exhausted row: redraw from the original distribution.
			orig := g.m.Pattern[key]
			var t uint64
			for _, e := range orig {
				t += uint64(e.N)
			}
			pick := g.rng.Uint64n(t)
			for _, e := range orig {
				if pick < uint64(e.N) {
					return e.Stride, true
				}
				pick -= uint64(e.N)
			}
			continue
		}
		pick := g.rng.Uint64n(total)
		for i := range row {
			if pick < uint64(row[i].N) {
				row[i].N--
				return row[i].Stride, true
			}
			pick -= uint64(row[i].N)
		}
	}
	return 0, false
}

// reuseAddr draws a stack distance and reuses the address at that depth.
func (g *addrGen) reuseAddr(out *uint64) bool {
	if g.sdTotal == 0 || len(g.stack) == 0 {
		return false
	}
	pick := g.rng.Uint64n(g.sdTotal)
	for d := 0; d < StackRows; d++ {
		if pick < uint64(g.sd[d]) {
			if d >= len(g.stack) {
				d = len(g.stack) - 1
			}
			*out = g.stack[d]
			return true
		}
		pick -= uint64(g.sd[d])
	}
	return false
}

func (g *addrGen) globalStride() int64 {
	if len(g.m.Global) == 0 {
		return 0
	}
	var total uint64
	for _, e := range g.m.Global {
		total += uint64(e.N)
	}
	pick := g.rng.Uint64n(total)
	for _, e := range g.m.Global {
		if pick < uint64(e.N) {
			return e.Stride
		}
		pick -= uint64(e.N)
	}
	return g.m.Global[0].Stride
}

func (g *addrGen) pushHist(s int64) {
	g.hist = append(g.hist, s)
	if len(g.hist) > MaxHistory {
		g.hist = g.hist[1:]
	}
}

func (g *addrGen) pushStack(a uint64) {
	for d, sa := range g.stack {
		if sa == a {
			g.stack = append(g.stack[:d], g.stack[d+1:]...)
			break
		}
	}
	g.stack = append([]uint64{a}, g.stack...)
	if len(g.stack) > StackRows {
		g.stack = g.stack[:StackRows]
	}
}
