package stm

import (
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/trace"
)

// BuildStream is Build over an incremental reader: identical output,
// O(frontier) peak heap instead of O(trace). See profile.BuildStream —
// the construction is the same, committing fitted leaves by the global
// leaf index partition.FitStream assigns.
func BuildStream(name string, rd trace.Reader, cfg partition.Config, opts ...Option) (*Profile, error) {
	var o buildOptions
	for _, opt := range opts {
		opt(&o)
	}
	ctx, bsp := obs.Start(o.ctx, "stm.build_stream")
	defer bsp.End()

	var (
		mu  sync.Mutex
		out []Leaf
	)
	records, leaves, err := partition.FitStream(ctx, rd, cfg, o.workers, func(i int, l partition.Leaf) {
		f := fitLeaf(l)
		mu.Lock()
		for len(out) <= i {
			out = append(out, Leaf{})
		}
		out[i] = f
		mu.Unlock()
	})
	if err != nil {
		return nil, fmt.Errorf("stm: streaming build: %w", err)
	}
	if out == nil {
		out = make([]Leaf, 0)
	}
	mLeavesFitted.Add(uint64(leaves))
	bsp.SetCount("requests", int64(records))
	bsp.SetCount("leaves", int64(leaves))
	return &Profile{Name: name, Leaves: out}, nil
}
