// Package stm implements the STM baseline (Awad & Solihin, "STM: Cloning
// the Spatial and Temporal Memory Access Behavior", HPCA 2014) as used in
// the paper's §IV comparison: within the same Mocktails hierarchy, the
// address and operation features are modelled by STM instead of McC.
//
//   - Addresses use a stride pattern table keyed by a history of up to the
//     last 8 strides (longest-suffix match with back-off), with a 32-row
//     stack-distance table as the temporal-reuse fallback — the table
//     sizes the paper chose for its smaller per-leaf request counts.
//   - Operations use a single read probability with strict convergence,
//     so the exact read/write counts are reproduced but not their order —
//     the error source the paper highlights in Figs. 9–11.
//   - Delta-time and size reuse the McC models, exactly as in the paper.
package stm

import (
	"context"

	"repro/internal/markov"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/trace"
)

// mLeavesFitted counts leaves fitted by the STM baseline.
var mLeavesFitted = obs.NewCounter("stm.leaves_fitted")

// MaxHistory is the maximum stride-history length in the pattern table.
const MaxHistory = 8

// StackRows is the number of rows in the stack distance table.
const StackRows = 32

// Leaf is the STM model of one partition.
type Leaf struct {
	StartTime uint64
	StartAddr uint64
	Lo, Hi    uint64
	Count     uint32

	// Reads and Writes are the exact operation counts (strict
	// convergence for the single-probability operation model).
	Reads, Writes uint32

	// DeltaTime and Size reuse McC.
	DeltaTime markov.Model
	Size      markov.Model

	// Addr is the stride-pattern + stack-distance address model.
	Addr AddrModel
}

// Profile is a complete STM profile of a workload.
type Profile struct {
	Name   string
	Leaves []Leaf
}

// Option configures Build.
type Option func(*buildOptions)

type buildOptions struct {
	workers int
	ctx     context.Context
}

// Workers sets the number of goroutines Build fits leaves with. Values
// <= 0 select par.Default(). The result is identical for every worker
// count.
func Workers(n int) Option {
	return func(o *buildOptions) { o.workers = n }
}

// Context attaches a context to Build for observability: the build's
// tracing spans nest below the span carried by ctx (see internal/obs).
// The fitted profile is identical with or without it.
func Context(ctx context.Context) Option {
	return func(o *buildOptions) { o.ctx = ctx }
}

// Build fits an STM profile using the same partitioning hierarchy as
// Mocktails. Leaves are fitted in parallel and committed by index, so the
// profile is identical to a serial build.
func Build(name string, t trace.Trace, cfg partition.Config, opts ...Option) (*Profile, error) {
	var o buildOptions
	for _, opt := range opts {
		opt(&o)
	}
	ctx, bsp := obs.Start(o.ctx, "stm.build")
	leaves, err := partition.SplitCtx(ctx, t, cfg)
	if err != nil {
		return nil, err
	}
	p := &Profile{Name: name}
	_, fsp := obs.Start(ctx, "stm.fit")
	p.Leaves = par.Map(len(leaves), o.workers, func(i int) Leaf {
		return fitLeaf(leaves[i])
	})
	fsp.SetCount("leaves", int64(len(leaves)))
	fsp.End()
	mLeavesFitted.Add(uint64(len(leaves)))
	bsp.SetCount("requests", int64(len(t)))
	bsp.SetCount("leaves", int64(len(leaves)))
	bsp.End()
	return p, nil
}

func fitLeaf(l partition.Leaf) Leaf {
	n := len(l.Reqs)
	if n == 0 {
		return Leaf{
			Lo:        l.Lo,
			Hi:        l.Hi,
			DeltaTime: markov.Fit(nil),
			Size:      markov.Fit(nil),
			Addr:      FitAddr(nil),
		}
	}
	deltas := make([]int64, 0, n-1)
	sizes := make([]int64, 0, n)
	var reads, writes uint32
	addrs := make([]uint64, 0, n)
	for i, r := range l.Reqs {
		sizes = append(sizes, int64(r.Size))
		addrs = append(addrs, r.Addr)
		if r.Op == trace.Read {
			reads++
		} else {
			writes++
		}
		if i > 0 {
			deltas = append(deltas, int64(r.Time-l.Reqs[i-1].Time))
		}
	}
	return Leaf{
		StartTime: l.Reqs[0].Time,
		StartAddr: l.Reqs[0].Addr,
		Lo:        l.Lo,
		Hi:        l.Hi,
		Count:     uint32(n),
		Reads:     reads,
		Writes:    writes,
		DeltaTime: markov.Fit(deltas),
		Size:      markov.Fit(sizes),
		Addr:      FitAddr(addrs),
	}
}

// Synthesize returns a trace.Source that regenerates the workload from
// the STM profile, using the same priority-queue injection process as
// Mocktails so the comparison isolates the leaf models.
func Synthesize(p *Profile, seed uint64) trace.Source {
	rng := stats.NewRNG(seed)
	gens := make([]synth.Gen, 0, len(p.Leaves))
	for i := range p.Leaves {
		if g := newLeafGen(&p.Leaves[i], rng.Fork()); g != nil {
			gens = append(gens, g)
		}
	}
	return synth.NewMerger(gens)
}

// leafGen generates one partition's requests from the STM models.
type leafGen struct {
	leaf    *Leaf
	dt      *markov.Generator
	size    *markov.Generator
	addr    *addrGen
	rng     *stats.RNG
	reads   uint32
	writes  uint32
	emitted uint32
	pending trace.Request
}

func newLeafGen(l *Leaf, rng *stats.RNG) *leafGen {
	if l.Count == 0 {
		return nil
	}
	g := &leafGen{
		leaf:   l,
		dt:     markov.NewGenerator(&l.DeltaTime, rng.Fork()),
		size:   markov.NewGenerator(&l.Size, rng.Fork()),
		addr:   newAddrGen(&l.Addr, l.StartAddr, l.Lo, l.Hi, rng.Fork()),
		rng:    rng,
		reads:  l.Reads,
		writes: l.Writes,
	}
	g.pending = trace.Request{
		Time: l.StartTime,
		Addr: l.StartAddr,
		Op:   g.nextOp(),
		Size: synth.SizeFromValue(g.size.Next()),
	}
	g.emitted = 1
	return g
}

// nextOp draws read/write from the single-probability model under strict
// convergence (remaining counts are consumed without replacement).
func (g *leafGen) nextOp() trace.Op {
	total := g.reads + g.writes
	if total == 0 {
		return trace.Read
	}
	if g.rng.Uint64n(uint64(total)) < uint64(g.reads) {
		g.reads--
		return trace.Read
	}
	g.writes--
	return trace.Write
}

// Pending returns the generated-but-unemitted request.
func (g *leafGen) Pending() trace.Request { return g.pending }

// Advance generates the next request of the partition.
func (g *leafGen) Advance() bool {
	if g.emitted >= g.leaf.Count {
		return false
	}
	g.emitted++
	dt := g.dt.Next()
	if dt < 0 {
		dt = 0
	}
	g.pending = trace.Request{
		Time: g.pending.Time + uint64(dt),
		Addr: g.addr.next(),
		Op:   g.nextOp(),
		Size: synth.SizeFromValue(g.size.Next()),
	}
	return true
}
