package stm

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/partition"
	"repro/internal/trace"
)

// TestBuildStreamMatchesBuild: the STM streaming build must produce a
// profile deeply equal to the materialised build (stm has no canonical
// encoding, so structural equality is the identity), serial and
// parallel, streamable and fallback hierarchies.
func TestBuildStreamMatchesBuild(t *testing.T) {
	tr := workload(3, 3000)
	cfgs := map[string]partition.Config{
		"2L-TS":        partition.TwoLevelTS(500),
		"reqcount-dyn": partition.TwoLevelRequestCount(128, 0),
		"spatial-first": {Layers: []partition.Layer{
			{Kind: partition.SpatialFixed, Param: 1 << 15},
			{Kind: partition.TemporalRequestCount, Param: 64},
		}},
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			want, err := Build("w", tr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				got, err := BuildStream("w", trace.NewSliceReader(tr), cfg, Workers(workers))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("workers=%d: streaming STM build differs from Build", workers)
				}
			}
		})
	}
}

// TestBuildStreamOutOfOrder: unsorted streams are rejected.
func TestBuildStreamOutOfOrder(t *testing.T) {
	tr := trace.Trace{
		{Time: 10, Addr: 0x1000, Size: 64, Op: trace.Read},
		{Time: 5, Addr: 0x1040, Size: 64, Op: trace.Write},
	}
	_, err := BuildStream("bad", trace.NewSliceReader(tr), partition.TwoLevelTS(500))
	if !errors.Is(err, partition.ErrOutOfOrder) {
		t.Fatalf("err = %v, want ErrOutOfOrder", err)
	}
}
