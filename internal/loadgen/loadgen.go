// Package loadgen drives a mocktailsd node or cluster with synthesis
// requests and reports throughput and latency quantiles. It supports
// the two canonical load models: closed-loop (a fixed number of
// outstanding requests; each worker issues the next request as soon as
// the previous completes — measures capacity) and open-loop (requests
// arrive on a fixed schedule regardless of completions — measures
// behaviour at a target rate, exposing queueing delay that closed
// loops hide). Latencies land in an internal/obs nanosecond histogram,
// so the reported P50/P95/P99 use the same decade buckets as the
// daemon's own request metrics.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/scenario"
)

// Config parameterises one measurement.
type Config struct {
	// Targets are the base URLs of the nodes under test; requests
	// round-robin across them by request index.
	Targets []string
	// ProfileID is the content address to synthesise. Ignored when
	// Scenario is set.
	ProfileID string
	// Scenario, when non-nil, switches the workload from per-profile
	// synthesis to POST /v1/scenarios/synth: request i sends the spec
	// with every device seed shifted by i (WithSeedOffset), so the
	// request stream stays a pure function of the config. N is ignored
	// (the spec's per-device counts govern).
	Scenario *scenario.Spec
	// Seed is the base synthesis seed; request i sends Seed+i, so a
	// fixed Seed makes the request stream reproducible.
	Seed uint64
	// N caps events per synthesis (the n query parameter); 0 streams
	// the profile's full length.
	N uint64
	// Concurrency is the worker count (closed loop) or the hint for
	// connection pooling (open loop). Minimum 1.
	Concurrency int
	// Requests is the measured request count for a closed-loop run.
	// When 0, the run is bounded by Duration instead.
	Requests int
	// Duration bounds time-based runs (open loop, or closed loop with
	// Requests == 0).
	Duration time.Duration
	// QPS > 0 selects the open-loop model at that target rate.
	QPS float64
	// Warmup requests are issued before the clock starts and are not
	// recorded, so connection setup and first-touch cache misses do
	// not pollute the quantiles.
	Warmup int
	// Client overrides the HTTP client (tests). Nil builds one with a
	// connection pool sized to Concurrency.
	Client *http.Client
	// Registry receives loadgen.* metrics; nil uses a private registry
	// per run so ramp levels do not share buckets.
	Registry *obs.Registry
}

// SlowRequest identifies one of a run's slowest successful requests by
// the trace ID it was issued under, so the matching server-side trace
// can be pulled from /debug/requests or grepped out of access logs.
type SlowRequest struct {
	TraceID string `json:"trace_id"`
	Index   uint64 `json:"index"` // global request index (target and seed derive from it)
	Ns      int64  `json:"ns"`
}

// Result is one measurement's outcome.
type Result struct {
	Mode        string // "closed" or "open"
	Concurrency int
	TargetQPS   float64 // open loop only
	Requests    uint64  // measured requests issued
	Errors      uint64  // transport failures and non-2xx responses
	WallNs      int64   // measured-phase wall clock
	QPS         float64 // achieved: Requests / wall
	MeanNs      int64
	P50Ns       int64
	P95Ns       int64
	P99Ns       int64
	// ErrorsByClass breaks Errors down by failure class: "transport"
	// for round-trips that died before a status line, otherwise the
	// status-code class ("4xx", "5xx"). The values sum to Errors.
	ErrorsByClass map[string]uint64
	// Slowest holds the up-to-five slowest successful requests, slowest
	// first, each tagged with the trace ID it carried.
	Slowest []SlowRequest
	// Hist is the latency histogram of successful requests; its Total
	// always equals Requests - Errors.
	Hist *obs.Histogram
}

// Row is the JSON shape of one result, a superset of the benchRow
// format cmd/experiments emits, so bench tooling that reads
// {name, ns_per_op} parses loadgen output unchanged.
type Row struct {
	Name     string            `json:"name"`
	NsPerOp  int64             `json:"ns_per_op"` // mean latency of successful requests
	Allocs   uint64            `json:"allocs"`    // always 0: kept for benchRow compatibility
	Mode     string            `json:"mode"`
	Conc     int               `json:"concurrency"`
	Requests uint64            `json:"requests"`
	Errors   uint64            `json:"errors"`
	ErrByCls map[string]uint64 `json:"errors_by_class,omitempty"`
	QPS      float64           `json:"qps"`
	P50Ns    int64             `json:"p50_ns"`
	P95Ns    int64             `json:"p95_ns"`
	P99Ns    int64             `json:"p99_ns"`
	Slowest  []SlowRequest     `json:"slowest,omitempty"`
}

// Row renders the result under the given name.
func (r *Result) Row(name string) Row {
	return Row{
		Name: name, NsPerOp: r.MeanNs, Mode: r.Mode, Conc: r.Concurrency,
		Requests: r.Requests, Errors: r.Errors, ErrByCls: r.ErrorsByClass, QPS: r.QPS,
		P50Ns: r.P50Ns, P95Ns: r.P95Ns, P99Ns: r.P99Ns, Slowest: r.Slowest,
	}
}

// driver holds the per-run shared state.
type driver struct {
	cfg    Config
	client *http.Client
	reg    *obs.Registry
	hist   *obs.Histogram
	reqs   *obs.Counter
	errs   *obs.Counter

	mu       sync.Mutex
	errClass map[string]uint64
	slowest  []SlowRequest
}

// maxSlowRequests bounds the per-run slowest-request list.
const maxSlowRequests = 5

// mix64 is the splitmix64 finalizer: a cheap bijective whitening of a
// counter into a well-distributed 64-bit value.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// traceContext derives request i's trace context deterministically from
// the run seed, so two runs with the same config carry the same trace
// IDs and any request can be cross-referenced in server rings and
// access logs after the fact.
func (d *driver) traceContext(i uint64) obs.SpanContext {
	base := d.cfg.Seed ^ 0x6d6f636b7461696c // "mocktail", so synth seed i and trace i differ
	return obs.SpanContext{
		TraceID: obs.TraceIDFromUint64(mix64(base+3*i), mix64(base+3*i+1)),
		SpanID:  obs.SpanIDFromUint64(mix64(base + 3*i + 2)),
		Flags:   obs.FlagSampled,
	}
}

// recordError classifies one failed request. status 0 means the
// round-trip died before a status line (transport class).
func (d *driver) recordError(status int) {
	class := "transport"
	if status > 0 {
		class = fmt.Sprintf("%dxx", status/100)
	}
	d.reg.Counter("loadgen.errors." + class).Inc()
	d.mu.Lock()
	if d.errClass == nil {
		d.errClass = make(map[string]uint64)
	}
	d.errClass[class]++
	d.mu.Unlock()
}

// recordSlow keeps the run's top-N slowest successful requests, sorted
// slowest first.
func (d *driver) recordSlow(s SlowRequest) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.slowest) == maxSlowRequests && s.Ns <= d.slowest[maxSlowRequests-1].Ns {
		return
	}
	d.slowest = append(d.slowest, s)
	sort.Slice(d.slowest, func(i, j int) bool { return d.slowest[i].Ns > d.slowest[j].Ns })
	if len(d.slowest) > maxSlowRequests {
		d.slowest = d.slowest[:maxSlowRequests]
	}
}

// issue sends request i and records it when record is true. The target,
// seed (or scenario body) and trace context derive from i alone, so the
// request stream is a pure function of the config regardless of worker
// scheduling.
func (d *driver) issue(ctx context.Context, i uint64, record bool) {
	target := d.cfg.Targets[i%uint64(len(d.cfg.Targets))]
	var url string
	var body io.Reader
	if d.cfg.Scenario != nil {
		url = strings.TrimRight(target, "/") + "/v1/scenarios/synth"
		spec, err := json.Marshal(d.cfg.Scenario.WithSeedOffset(d.cfg.Seed + i))
		if err != nil {
			if record {
				d.reqs.Inc()
				d.errs.Inc()
				d.recordError(0)
			}
			return
		}
		body = bytes.NewReader(spec)
	} else {
		url = fmt.Sprintf("%s/v1/profiles/%s/synth?seed=%d&format=bin",
			strings.TrimRight(target, "/"), d.cfg.ProfileID, d.cfg.Seed+i)
		if d.cfg.N > 0 {
			url += fmt.Sprintf("&n=%d", d.cfg.N)
		}
	}
	sc := d.traceContext(i)
	start := time.Now()
	status := 0 // stays 0 on transport-level failure
	func() {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, body)
		if err != nil {
			return
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		req.Header.Set("traceparent", sc.Traceparent())
		resp, err := d.client.Do(req)
		if err != nil {
			return
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return
		}
		status = resp.StatusCode
	}()
	if !record {
		return
	}
	d.reqs.Inc()
	if status < 200 || status >= 300 {
		d.errs.Inc()
		d.recordError(status)
		return
	}
	ns := time.Since(start).Nanoseconds()
	d.hist.Observe(ns)
	d.recordSlow(SlowRequest{TraceID: sc.TraceID.String(), Index: i, Ns: ns})
}

// closed runs count requests (or until the deadline when count == 0)
// over workers parallel loops, issuing indices start, start+1, ....
// Returns the number of requests issued.
func (d *driver) closed(ctx context.Context, workers int, start, count uint64, deadline time.Time, record bool) uint64 {
	var next, issued atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := next.Add(1) - 1
				if count > 0 && i >= count {
					return
				}
				if count == 0 && !time.Now().Before(deadline) {
					return
				}
				d.issue(ctx, start+i, record)
				issued.Add(1)
			}
		}()
	}
	wg.Wait()
	return issued.Load()
}

// open fires requests on a fixed schedule at cfg.QPS for cfg.Duration,
// one goroutine per request so a slow response never delays the next
// arrival. Returns the number of requests issued.
func (d *driver) open(ctx context.Context, start uint64) uint64 {
	interval := time.Duration(float64(time.Second) / d.cfg.QPS)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	deadline := time.Now().Add(d.cfg.Duration)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var wg sync.WaitGroup
	var i uint64
	for time.Now().Before(deadline) && ctx.Err() == nil {
		select {
		case <-tick.C:
			wg.Add(1)
			go func(i uint64) {
				defer wg.Done()
				d.issue(ctx, start+i, true)
			}(i)
			i++
		case <-ctx.Done():
		}
	}
	wg.Wait()
	return i
}

// Run executes one measurement: warmup (unrecorded), then the measured
// phase under the configured load model.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("loadgen: no targets")
	}
	if cfg.ProfileID == "" && cfg.Scenario == nil {
		return nil, fmt.Errorf("loadgen: no profile id or scenario")
	}
	if cfg.Scenario != nil {
		if err := cfg.Scenario.Validate(); err != nil {
			return nil, fmt.Errorf("loadgen: %w", err)
		}
	}
	workers := cfg.Concurrency
	if workers < 1 {
		workers = 1
	}
	client := cfg.Client
	if client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		// The default per-host idle pool (2) would force connection
		// churn at any real concurrency.
		tr.MaxIdleConnsPerHost = workers + 2
		client = &http.Client{Transport: tr, Timeout: 5 * time.Minute}
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	d := &driver{
		cfg:    cfg,
		client: client,
		reg:    reg,
		hist:   reg.Histogram("loadgen.latency.ns", obs.ScaleNs),
		reqs:   reg.Counter("loadgen.requests"),
		errs:   reg.Counter("loadgen.errors"),
	}

	if cfg.Warmup > 0 {
		d.closed(ctx, workers, 0, uint64(cfg.Warmup), time.Time{}, false)
	}
	start := uint64(cfg.Warmup)

	res := &Result{Mode: "closed", Concurrency: workers}
	t0 := time.Now()
	switch {
	case cfg.QPS > 0:
		res.Mode = "open"
		res.TargetQPS = cfg.QPS
		if cfg.Duration <= 0 {
			return nil, fmt.Errorf("loadgen: open loop needs a duration")
		}
		res.Requests = d.open(ctx, start)
	case cfg.Requests > 0:
		res.Requests = d.closed(ctx, workers, start, uint64(cfg.Requests), time.Time{}, true)
	case cfg.Duration > 0:
		res.Requests = d.closed(ctx, workers, start, 0, t0.Add(cfg.Duration), true)
	default:
		return nil, fmt.Errorf("loadgen: need -requests or -duration")
	}
	res.WallNs = time.Since(t0).Nanoseconds()

	res.Errors = d.errs.Value()
	if res.WallNs > 0 {
		res.QPS = float64(res.Requests) / (float64(res.WallNs) / 1e9)
	}
	res.MeanNs = int64(d.hist.Mean())
	res.P50Ns = d.hist.Quantile(0.50)
	res.P95Ns = d.hist.Quantile(0.95)
	res.P99Ns = d.hist.Quantile(0.99)
	res.Hist = d.hist
	d.mu.Lock()
	if len(d.errClass) > 0 {
		res.ErrorsByClass = make(map[string]uint64, len(d.errClass))
		for k, v := range d.errClass {
			res.ErrorsByClass[k] = v
		}
	}
	res.Slowest = append([]SlowRequest(nil), d.slowest...)
	d.mu.Unlock()
	return res, ctx.Err()
}

// RunRamp runs one closed-loop measurement per concurrency level,
// reusing the warmup only for the first level (later levels arrive
// hot). Each level gets its own histogram.
func RunRamp(ctx context.Context, cfg Config, levels []int) ([]*Result, error) {
	var out []*Result
	for li, c := range levels {
		lc := cfg
		lc.Concurrency = c
		lc.Registry = nil // fresh buckets per level
		if li > 0 {
			lc.Warmup = 0
		}
		r, err := Run(ctx, lc)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
