package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/scenario"
)

// stubServer records every synthesis request it answers.
type stubServer struct {
	mu    sync.Mutex
	seeds map[uint64]int // seed -> times requested
}

func newStub(t *testing.T) (*stubServer, *httptest.Server) {
	st := &stubServer{seeds: make(map[uint64]int)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/profiles/{id}/synth", func(w http.ResponseWriter, r *http.Request) {
		seed, err := strconv.ParseUint(r.URL.Query().Get("seed"), 10, 64)
		if err != nil || r.PathValue("id") == "" {
			http.Error(w, "bad request", http.StatusBadRequest)
			return
		}
		st.mu.Lock()
		st.seeds[seed]++
		st.mu.Unlock()
		w.Write([]byte("bytes"))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return st, ts
}

// A closed-loop run with a fixed seed is deterministic in everything
// but timing: the request count is exact, the set of seeds issued is
// exactly {seed+warmup .. seed+warmup+requests-1} (warmup taking
// {seed .. seed+warmup-1}), and the histogram's bucket counts sum to
// the requests issued — the bucket a latency lands in varies run to
// run, the total cannot.
func TestClosedLoopDeterminism(t *testing.T) {
	const warmup, requests = 7, 100
	for run := 0; run < 2; run++ {
		st, ts := newStub(t)
		reg := obs.NewRegistry()
		res, err := Run(context.Background(), Config{
			Targets:     []string{ts.URL},
			ProfileID:   "cafe",
			Seed:        1000,
			Concurrency: 8,
			Requests:    requests,
			Warmup:      warmup,
			Registry:    reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Requests != requests {
			t.Fatalf("run %d: %d requests measured, want exactly %d", run, res.Requests, requests)
		}
		if res.Errors != 0 {
			t.Fatalf("run %d: %d errors", run, res.Errors)
		}

		// Histogram bucket counts sum to the requests issued.
		bounds, counts := res.Hist.Snapshot()
		var sum uint64
		for _, c := range counts {
			sum += c
		}
		if sum != requests || res.Hist.Total() != requests {
			t.Fatalf("run %d: bucket sum %d, total %d, want %d", run, sum, res.Hist.Total(), requests)
		}
		if len(counts) != len(bounds)+1 {
			t.Fatalf("run %d: %d counts for %d bounds", run, len(counts), len(bounds))
		}

		// The seed set is a pure function of the config, independent of
		// worker interleaving.
		st.mu.Lock()
		for s := uint64(1000); s < 1000+warmup+requests; s++ {
			if st.seeds[s] != 1 {
				t.Fatalf("run %d: seed %d requested %d times, want once", run, s, st.seeds[s])
			}
		}
		if len(st.seeds) != warmup+requests {
			t.Fatalf("run %d: %d distinct seeds, want %d", run, len(st.seeds), warmup+requests)
		}
		st.mu.Unlock()

		// The registry view agrees with the result.
		if got := reg.Counter("loadgen.requests").Value(); got != requests {
			t.Fatalf("run %d: counter says %d requests", run, got)
		}
	}
}

// Requests round-robin across targets by index, so a two-target run
// splits an even request count exactly in half.
func TestRoundRobinTargets(t *testing.T) {
	var hits [2]int
	var mu sync.Mutex
	mk := func(i int) *httptest.Server {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			hits[i]++
			mu.Unlock()
		}))
		t.Cleanup(ts.Close)
		return ts
	}
	a, b := mk(0), mk(1)
	res, err := Run(context.Background(), Config{
		Targets:     []string{a.URL, b.URL},
		ProfileID:   "cafe",
		Concurrency: 4,
		Requests:    50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 50 {
		t.Fatalf("measured %d requests, want 50", res.Requests)
	}
	mu.Lock()
	defer mu.Unlock()
	if hits[0] != 25 || hits[1] != 25 {
		t.Fatalf("round robin split %d/%d, want 25/25", hits[0], hits[1])
	}
}

// Non-2xx responses count as errors and stay out of the latency
// histogram, so quantiles describe successful requests only — and the
// error breakdown attributes each failure to its status class.
func TestErrorsExcludedFromHistogram(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Query().Get("seed") {
		case "3", "4":
			http.Error(w, "boom", http.StatusInternalServerError)
		case "7":
			http.Error(w, "gone", http.StatusNotFound)
		default:
			w.Write([]byte("ok"))
		}
	}))
	t.Cleanup(ts.Close)
	reg := obs.NewRegistry()
	res, err := Run(context.Background(), Config{
		Targets:   []string{ts.URL},
		ProfileID: "cafe",
		Seed:      0,
		Requests:  10,
		Registry:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 3 {
		t.Fatalf("%d errors, want 3", res.Errors)
	}
	if res.Hist.Total() != 7 {
		t.Fatalf("histogram holds %d observations, want 7", res.Hist.Total())
	}
	if res.ErrorsByClass["5xx"] != 2 || res.ErrorsByClass["4xx"] != 1 || len(res.ErrorsByClass) != 2 {
		t.Fatalf("ErrorsByClass = %v, want 5xx:2 4xx:1", res.ErrorsByClass)
	}
	if got := reg.Counter("loadgen.errors.5xx").Value(); got != 2 {
		t.Fatalf("loadgen.errors.5xx = %d, want 2", got)
	}
	var sum uint64
	for _, n := range res.ErrorsByClass {
		sum += n
	}
	if sum != res.Errors {
		t.Fatalf("class counts sum to %d, Errors = %d", sum, res.Errors)
	}
}

// Transport-level failures (no status line) land in their own class.
func TestTransportErrorClass(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // refuse every connection
	res, err := Run(context.Background(), Config{
		Targets:   []string{ts.URL},
		ProfileID: "cafe",
		Requests:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 4 || res.ErrorsByClass["transport"] != 4 {
		t.Fatalf("errors=%d by class=%v, want 4 transport", res.Errors, res.ErrorsByClass)
	}
}

// Every request carries a deterministic traceparent derived from the
// run seed: two runs with the same config send identical trace IDs,
// distinct within a run and distinct from the synthesis seed stream.
func TestDeterministicTraceparent(t *testing.T) {
	capture := func() map[uint64]string {
		seen := make(map[uint64]string)
		var mu sync.Mutex
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			seed, _ := strconv.ParseUint(r.URL.Query().Get("seed"), 10, 64)
			sc, ok := obs.ParseTraceparent(r.Header.Get("traceparent"))
			if !ok {
				http.Error(w, "no traceparent", http.StatusBadRequest)
				return
			}
			mu.Lock()
			seen[seed] = sc.TraceID.String()
			mu.Unlock()
			w.Write([]byte("ok"))
		}))
		defer ts.Close()
		res, err := Run(context.Background(), Config{
			Targets:     []string{ts.URL},
			ProfileID:   "cafe",
			Seed:        500,
			Concurrency: 4,
			Requests:    20,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Errors != 0 {
			t.Fatalf("%d requests arrived without a valid traceparent", res.Errors)
		}
		return seen
	}
	first, second := capture(), capture()
	if len(first) != 20 || len(second) != 20 {
		t.Fatalf("captured %d/%d trace IDs, want 20 each", len(first), len(second))
	}
	distinct := make(map[string]bool)
	for seed, id := range first {
		if second[seed] != id {
			t.Fatalf("seed %d: trace ID %s vs %s across identical runs", seed, id, second[seed])
		}
		distinct[id] = true
	}
	if len(distinct) != 20 {
		t.Fatalf("%d distinct trace IDs for 20 requests", len(distinct))
	}
}

// The slowest-request list is populated, bounded, sorted slowest first,
// and its trace IDs match the run's deterministic derivation.
func TestSlowestRequests(t *testing.T) {
	_, ts := newStub(t)
	res, err := Run(context.Background(), Config{
		Targets:     []string{ts.URL},
		ProfileID:   "cafe",
		Seed:        77,
		Concurrency: 4,
		Requests:    30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Slowest) != 5 {
		t.Fatalf("Slowest holds %d entries, want 5", len(res.Slowest))
	}
	d := &driver{cfg: Config{Seed: 77}}
	for i, s := range res.Slowest {
		if i > 0 && s.Ns > res.Slowest[i-1].Ns {
			t.Fatalf("Slowest not sorted: %+v", res.Slowest)
		}
		if s.Ns <= 0 {
			t.Fatalf("non-positive slow latency: %+v", s)
		}
		if want := d.traceContext(s.Index).TraceID.String(); s.TraceID != want {
			t.Fatalf("slow request %d trace ID %s, want %s", s.Index, s.TraceID, want)
		}
	}
	// The row view carries both new fields.
	buf, err := json.Marshal(res.Row("serve/c4"))
	if err != nil {
		t.Fatal(err)
	}
	var row struct {
		Slowest []SlowRequest `json:"slowest"`
	}
	if err := json.Unmarshal(buf, &row); err != nil {
		t.Fatal(err)
	}
	if len(row.Slowest) != 5 {
		t.Fatalf("row JSON slowest = %s", buf)
	}
}

// The open loop issues requests on the arrival schedule: a 1s run at
// 200 QPS lands within a loose factor of the target even when every
// response is instant, and all issued requests are measured.
func TestOpenLoopRate(t *testing.T) {
	_, ts := newStub(t)
	res, err := Run(context.Background(), Config{
		Targets:   []string{ts.URL},
		ProfileID: "cafe",
		QPS:       200,
		Duration:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "open" || res.TargetQPS != 200 {
		t.Fatalf("mode %q target %g", res.Mode, res.TargetQPS)
	}
	if res.Requests < 100 || res.Requests > 250 {
		t.Fatalf("issued %d requests in 1s at 200 QPS", res.Requests)
	}
	if got := res.Hist.Total() + res.Errors; got != res.Requests {
		t.Fatalf("measured %d of %d issued", got, res.Requests)
	}
}

// A ramp measures each level independently: fresh histograms, exact
// request counts, rows that parse as bench rows.
func TestRampLevels(t *testing.T) {
	_, ts := newStub(t)
	results, err := RunRamp(context.Background(), Config{
		Targets:   []string{ts.URL},
		ProfileID: "cafe",
		Requests:  40,
		Warmup:    5,
	}, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results, want 3", len(results))
	}
	for i, want := range []int{1, 2, 4} {
		if results[i].Concurrency != want || results[i].Requests != 40 {
			t.Fatalf("level %d: c=%d requests=%d", i, results[i].Concurrency, results[i].Requests)
		}
	}
	// Row JSON stays compatible with the cmd/experiments bench rows.
	buf, err := json.Marshal(results[0].Row("serve/c1"))
	if err != nil {
		t.Fatal(err)
	}
	var row struct {
		Name    string `json:"name"`
		NsPerOp *int64 `json:"ns_per_op"`
	}
	if err := json.Unmarshal(buf, &row); err != nil {
		t.Fatal(err)
	}
	if row.Name != "serve/c1" || row.NsPerOp == nil {
		t.Fatalf("bench-row view: %s", buf)
	}
}

// Scenario mode posts the spec to /v1/scenarios/synth with every
// device seed shifted by the request index, so the body stream is a
// pure function of the config: request i carries WithSeedOffset(Seed+i)
// of the base spec, once each, regardless of worker interleaving.
func TestScenarioModeSeedShift(t *testing.T) {
	const warmup, requests = 5, 40
	base := &scenario.Spec{Devices: []scenario.Device{
		{Profile: testScenarioID("a"), Name: "cpu", Seed: 10},
		{Profile: testScenarioID("b"), Name: "gpu", Seed: 20, Dilation: 2.0,
			Window: &scenario.Window{Base: 1 << 30, Size: 1 << 30}},
	}}
	var mu sync.Mutex
	bodies := make(map[uint64]*scenario.Spec) // offset -> decoded spec
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/scenarios/synth", func(w http.ResponseWriter, r *http.Request) {
		if ct := r.Header.Get("Content-Type"); ct != "application/json" {
			http.Error(w, "content type "+ct, http.StatusUnsupportedMediaType)
			return
		}
		var spec scenario.Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		if err := spec.Validate(); err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		mu.Lock()
		bodies[spec.Devices[0].Seed-base.Devices[0].Seed] = &spec
		mu.Unlock()
		w.Write([]byte("bytes"))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	res, err := Run(context.Background(), Config{
		Targets:     []string{ts.URL},
		Scenario:    base,
		Seed:        1000,
		Concurrency: 8,
		Requests:    requests,
		Warmup:      warmup,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != requests || res.Errors != 0 {
		t.Fatalf("measured %d requests, %d errors", res.Requests, res.Errors)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(bodies) != warmup+requests {
		t.Fatalf("%d distinct seed offsets, want %d", len(bodies), warmup+requests)
	}
	for i := uint64(0); i < warmup+requests; i++ {
		got, ok := bodies[1000+i]
		if !ok {
			t.Fatalf("no request carried seed offset %d", 1000+i)
		}
		want := base.WithSeedOffset(1000 + i)
		g, _ := json.Marshal(got)
		w, _ := json.Marshal(want)
		if string(g) != string(w) {
			t.Fatalf("offset %d: body %s, want %s", 1000+i, g, w)
		}
	}
}

// An invalid scenario spec fails Run's validation up front instead of
// hammering the target with 422s.
func TestScenarioConfigValidation(t *testing.T) {
	_, err := Run(context.Background(), Config{
		Targets:  []string{"http://localhost:0"},
		Scenario: &scenario.Spec{}, // no devices
		Requests: 10,
	})
	if err == nil {
		t.Fatal("empty scenario accepted")
	}
}

// testScenarioID builds a syntactically valid 64-hex content address
// from a repeating hex digit string.
func testScenarioID(c string) string {
	s := ""
	for len(s) < 64 {
		s += c
	}
	return s[:64]
}

// Config validation: every unusable config errors instead of spinning.
func TestConfigValidation(t *testing.T) {
	ctx := context.Background()
	cases := []Config{
		{},                              // no targets
		{Targets: []string{"http://x"}}, // no id
		{Targets: []string{"http://x"}, ProfileID: "a"},          // no bound
		{Targets: []string{"http://x"}, ProfileID: "a", QPS: 10}, // open loop, no duration
	}
	for i, cfg := range cases {
		if _, err := Run(ctx, cfg); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
}
