package loadgen

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/scenario"
)

// Main is the loadgen entry point, shared by the standalone binary and
// the `mocktails loadgen` alias. prog names the flag set in usage
// output.
func Main(prog string, args []string) {
	fs := flag.NewFlagSet(prog, flag.ExitOnError)
	targets := fs.String("targets", "http://localhost:8677", "comma-separated base URLs of the nodes under test")
	id := fs.String("id", "", "profile content address to synthesise (or use -upload)")
	upload := fs.String("upload", "", "profile file (gzip or flat) to upload to the first target; its ID becomes the workload")
	scenarioPath := fs.String("scenario", "", "scenario spec JSON: drive POST /v1/scenarios/synth instead of per-profile synthesis (request i shifts every device seed by i)")
	conc := fs.String("c", "4", "comma-separated closed-loop concurrency levels (a ramp measures each)")
	requests := fs.Int("requests", 200, "measured requests per closed-loop level (0 = bound by -duration)")
	duration := fs.Duration("duration", 5*time.Second, "measured wall time for open loop or unbounded closed loop")
	qps := fs.Float64("qps", 0, "open-loop target rate; 0 = closed loop")
	warmup := fs.Int("warmup", 32, "unrecorded warmup requests before measurement")
	seed := fs.Uint64("seed", 42, "base synthesis seed; request i sends seed+i")
	n := fs.Uint64("n", 0, "events per synthesis request (0 = the profile's full length)")
	name := fs.String("name", "serve", "row-name prefix in the JSON output")
	jsonOut := fs.String("json", "-", "write result rows as JSON to this path (- = stdout)")
	fs.Parse(args)

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()

	var targetList []string
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			targetList = append(targetList, strings.TrimRight(t, "/"))
		}
	}
	if len(targetList) == 0 {
		obs.Fatal(fmt.Errorf("no -targets"))
	}

	profileID := *id
	if *upload != "" {
		uid, err := uploadProfile(ctx, targetList[0], *upload)
		if err != nil {
			obs.Fatal(fmt.Errorf("-upload: %w", err))
		}
		profileID = uid
	}
	var spec *scenario.Spec
	if *scenarioPath != "" {
		data, err := os.ReadFile(*scenarioPath)
		if err != nil {
			obs.Fatal(fmt.Errorf("-scenario: %w", err))
		}
		if spec, err = scenario.Parse(data); err != nil {
			obs.Fatal(fmt.Errorf("-scenario: %w", err))
		}
	}
	if profileID == "" && spec == nil {
		obs.Fatal(fmt.Errorf("need -id, -upload or -scenario"))
	}

	cfg := Config{
		Targets:   targetList,
		ProfileID: profileID,
		Scenario:  spec,
		Seed:      *seed,
		N:         *n,
		Requests:  *requests,
		Duration:  *duration,
		QPS:       *qps,
		Warmup:    *warmup,
	}

	var rows []Row
	if *qps > 0 {
		cfg.Concurrency = 1
		r, err := Run(ctx, cfg)
		if err != nil {
			obs.Fatal(err)
		}
		rows = append(rows, r.Row(fmt.Sprintf("%s/open-qps%g", *name, *qps)))
	} else {
		var levels []int
		for _, c := range strings.Split(*conc, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(c))
			if err != nil || v < 1 {
				obs.Fatal(fmt.Errorf("bad -c level %q", c))
			}
			levels = append(levels, v)
		}
		results, err := RunRamp(ctx, cfg, levels)
		if err != nil {
			obs.Fatal(err)
		}
		for _, r := range results {
			rows = append(rows, r.Row(fmt.Sprintf("%s/c%d", *name, r.Concurrency)))
		}
	}

	doc := struct {
		Benchmark string         `json:"benchmark"`
		Targets   []string       `json:"targets"`
		ProfileID string         `json:"profile_id,omitempty"`
		Scenario  *scenario.Spec `json:"scenario,omitempty"`
		Rows      []Row          `json:"rows"`
	}{"loadgen", targetList, profileID, spec, rows}

	out := os.Stdout
	if *jsonOut != "-" && *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			obs.Fatal(err)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		obs.Fatal(err)
	}
	for _, r := range rows {
		fmt.Fprintf(os.Stderr, "%-24s %8.1f qps  p50 %s  p95 %s  p99 %s  (%d reqs, %d errors)\n",
			r.Name, r.QPS, time.Duration(r.P50Ns), time.Duration(r.P95Ns), time.Duration(r.P99Ns),
			r.Requests, r.Errors)
		for class, n := range r.ErrByCls {
			fmt.Fprintf(os.Stderr, "%-24s   errors %s: %d\n", "", class, n)
		}
		if len(r.Slowest) > 0 {
			s := r.Slowest[0]
			fmt.Fprintf(os.Stderr, "%-24s   slowest %s trace %s (request %d)\n",
				"", time.Duration(s.Ns), s.TraceID, s.Index)
		}
	}
}

// uploadProfile posts the profile file (gzip canonical or flat — the
// server sniffs) and returns its content address.
func uploadProfile(ctx context.Context, target, path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/v1/profiles", f)
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return "", fmt.Errorf("upload: status %s", resp.Status)
	}
	var ur struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		return "", err
	}
	if ur.ID == "" {
		return "", fmt.Errorf("upload: response carried no id")
	}
	return ur.ID, nil
}
