// Package xbar models the crossbar interconnect between compute devices
// and the memory controllers (the paper's gem5 platform connects its
// traffic generator to main memory "through a crossbar"). The model adds
// a base traversal latency plus per-destination-port serialisation: each
// port moves a bounded number of bytes per cycle, so bursts of traffic to
// one controller queue up and arrive spread out — a second source of
// backpressure alongside the controller queues.
package xbar

// Crossbar is a contention-aware interconnect. The zero value is not
// usable; construct with New.
type Crossbar struct {
	latency  uint64
	width    uint64 // bytes per cycle per destination port
	portFree []uint64
}

// New builds a crossbar with the given number of destination ports, base
// traversal latency in cycles, and per-port throughput in bytes per
// cycle.
func New(ports int, latency, bytesPerCycle uint64) *Crossbar {
	if ports < 1 {
		ports = 1
	}
	if bytesPerCycle == 0 {
		bytesPerCycle = 32
	}
	return &Crossbar{
		latency:  latency,
		width:    bytesPerCycle,
		portFree: make([]uint64, ports),
	}
}

// Latency returns the base traversal latency.
func (x *Crossbar) Latency() uint64 { return x.latency }

// Transfer schedules a transfer of the given size to a destination port
// starting no earlier than t, and returns its arrival time at the port.
// Transfers to one port serialise; different ports are independent.
func (x *Crossbar) Transfer(t uint64, port int, bytes uint64) uint64 {
	if port < 0 || port >= len(x.portFree) {
		port = 0
	}
	start := t
	if x.portFree[port] > start {
		start = x.portFree[port]
	}
	dur := (bytes + x.width - 1) / x.width
	if dur == 0 {
		dur = 1
	}
	x.portFree[port] = start + dur
	return start + dur + x.latency
}
