package xbar

import "testing"

func TestBaseLatency(t *testing.T) {
	x := New(4, 20, 32)
	// 32 bytes at 32 B/cycle = 1 cycle of occupancy + 20 latency.
	if got := x.Transfer(100, 0, 32); got != 121 {
		t.Errorf("arrival = %d, want 121", got)
	}
	if x.Latency() != 20 {
		t.Errorf("Latency = %d", x.Latency())
	}
}

func TestSamePortSerialises(t *testing.T) {
	x := New(4, 10, 32)
	a := x.Transfer(0, 1, 64) // occupies cycles 0-1
	b := x.Transfer(0, 1, 64) // must wait
	if b <= a {
		t.Errorf("second transfer arrived at %d, first at %d", b, a)
	}
	if b != a+2 {
		t.Errorf("serialisation gap = %d, want 2 cycles", b-a)
	}
}

func TestDifferentPortsIndependent(t *testing.T) {
	x := New(4, 10, 32)
	a := x.Transfer(0, 0, 64)
	b := x.Transfer(0, 1, 64)
	if a != b {
		t.Errorf("independent ports arrived at %d and %d", a, b)
	}
}

func TestIdlePortDoesNotDelay(t *testing.T) {
	x := New(2, 5, 32)
	x.Transfer(0, 0, 32)
	// Much later, the port is long free.
	if got := x.Transfer(1000, 0, 32); got != 1006 {
		t.Errorf("arrival = %d, want 1006", got)
	}
}

func TestZeroByteTransferTakesOneCycle(t *testing.T) {
	x := New(1, 0, 32)
	if got := x.Transfer(0, 0, 0); got != 1 {
		t.Errorf("zero-byte arrival = %d, want 1", got)
	}
}

func TestOutOfRangePortClamped(t *testing.T) {
	x := New(2, 0, 32)
	if got := x.Transfer(0, 99, 32); got != 1 {
		t.Errorf("clamped port arrival = %d", got)
	}
	if got := x.Transfer(0, -1, 32); got != 2 {
		t.Errorf("negative port should clamp to port 0 and serialise: %d", got)
	}
}

func TestDefensiveDefaults(t *testing.T) {
	x := New(0, 1, 0)
	if got := x.Transfer(0, 0, 32); got == 0 {
		t.Error("degenerate config produced zero arrival")
	}
}

func TestThroughputBound(t *testing.T) {
	// 10 transfers of 128B at 32 B/cycle need 40 cycles of occupancy.
	x := New(1, 0, 32)
	var last uint64
	for i := 0; i < 10; i++ {
		last = x.Transfer(0, 0, 128)
	}
	if last != 40 {
		t.Errorf("last arrival = %d, want 40", last)
	}
}
