package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// This file renders the metrics registry in the Prometheus text
// exposition format (version 0.0.4) so any Prometheus-compatible
// scraper can consume mocktailsd's GET /metrics: dotted registry names
// are sanitized to the prometheus charset, counters and gauges map
// directly, and histograms are rendered as the cumulative
// _bucket{le=...}/_sum/_count series triple. ValidateExposition is a
// strict Go-side parser of the same format, used by the tests and the
// CI scrape check (cmd/promcheck).

// PromContentType is the Content-Type of a text-exposition response.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromName sanitizes a dotted registry name to the Prometheus metric
// charset [a-zA-Z0-9_:]: every invalid rune becomes '_', and a leading
// digit gets a '_' prefix. "serve.cluster.probe.ns" →
// "serve_cluster_probe_ns".
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' || r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabelValue(v string) string {
	var b strings.Builder
	b.Grow(len(v))
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// WritePrometheus renders every metric in the registry as Prometheus
// text exposition format v0.0.4 with deterministic (sorted) series
// order. Counters and gauges map one to one; each histogram becomes
// cumulative `_bucket` series with inclusive `le` upper bounds (one
// per fixed bucket plus `+Inf`), a `_sum` and a `_count`. The +Inf
// bucket and `_count` are computed from the same snapshot, so every
// rendered histogram is internally consistent even under concurrent
// writers.
func (r *Registry) WritePrometheus(w io.Writer) error {
	cs, gs, hs := r.snapshot()
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(cs))
	for n := range cs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PromName(n)
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", pn, pn, cs[n])
	}

	names = names[:0]
	for n := range gs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PromName(n)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", pn, pn, strconv.FormatFloat(gs[n], 'g', -1, 64))
	}

	names = names[:0]
	for n := range hs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := hs[n]
		pn := PromName(n)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", pn)
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", pn, bound, cum)
		}
		cum += h.Counts[len(h.Bounds)]
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum)
		fmt.Fprintf(bw, "%s_sum %d\n", pn, h.Sum)
		fmt.Fprintf(bw, "%s_count %d\n", pn, cum)
	}
	return bw.Flush()
}

// PromHandler returns the GET /metrics handler over reg (nil = the
// Default registry).
func PromHandler(reg *Registry) http.Handler {
	if reg == nil {
		reg = Default
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		reg.WritePrometheus(w)
	})
}

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// ValidateExposition strictly parses a Prometheus text-exposition
// document, returning the number of sample lines. Beyond the line
// grammar (TYPE/HELP comments, metric names, label escaping, float
// values, optional timestamps) it enforces the structural rules the
// encoder relies on: at most one TYPE per metric and only before its
// samples, histogram buckets cumulative and ordered by ascending `le`
// ending in `+Inf`, and `_count` equal to the `+Inf` bucket with a
// `_sum` present.
func ValidateExposition(data []byte) (samples int, err error) {
	types := make(map[string]string)
	seen := make(map[string]bool) // base metric name -> samples observed
	var parsed []promSample

	lineNo := 0
	for _, raw := range bytes.Split(data, []byte("\n")) {
		lineNo++
		line := string(raw)
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "#")
			rest = strings.TrimPrefix(rest, " ")
			switch {
			case strings.HasPrefix(rest, "TYPE "):
				fields := strings.Fields(rest)
				if len(fields) != 3 {
					return 0, fmt.Errorf("line %d: malformed TYPE comment", lineNo)
				}
				name, typ := fields[1], fields[2]
				if !validPromName(name) {
					return 0, fmt.Errorf("line %d: invalid metric name %q in TYPE", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return 0, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := types[name]; dup {
					return 0, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if seen[name] {
					return 0, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				types[name] = typ
			case strings.HasPrefix(rest, "HELP "):
				// HELP docstrings are free text; nothing to check beyond
				// the name.
				fields := strings.Fields(rest)
				if len(fields) < 2 || !validPromName(fields[1]) {
					return 0, fmt.Errorf("line %d: malformed HELP comment", lineNo)
				}
			default:
				// Other comments are ignored per the format.
			}
			continue
		}
		s, perr := parsePromSample(line)
		if perr != nil {
			return 0, fmt.Errorf("line %d: %v", lineNo, perr)
		}
		s.line = lineNo
		parsed = append(parsed, s)
		seen[baseMetricName(s.name, types)] = true
		samples++
	}

	// Structural histogram checks.
	for name, typ := range types {
		if typ != "histogram" {
			continue
		}
		var buckets []promSample
		var sum, count *promSample
		for i := range parsed {
			s := &parsed[i]
			switch s.name {
			case name + "_bucket":
				buckets = append(buckets, *s)
			case name + "_sum":
				sum = s
			case name + "_count":
				count = s
			}
		}
		if len(buckets) == 0 || sum == nil || count == nil {
			return 0, fmt.Errorf("histogram %s: missing _bucket, _sum or _count series", name)
		}
		prevLe := -1.0
		prevCum := -1.0
		sawInf := false
		for _, b := range buckets {
			leStr, ok := b.labels["le"]
			if !ok {
				return 0, fmt.Errorf("line %d: histogram %s bucket without le label", b.line, name)
			}
			var le float64
			if leStr == "+Inf" {
				le = 0
				sawInf = true
			} else {
				if sawInf {
					return 0, fmt.Errorf("line %d: histogram %s has buckets after +Inf", b.line, name)
				}
				le, err = strconv.ParseFloat(leStr, 64)
				if err != nil {
					return 0, fmt.Errorf("line %d: histogram %s: bad le %q", b.line, name, leStr)
				}
				if le <= prevLe && prevLe >= 0 {
					return 0, fmt.Errorf("line %d: histogram %s: le %q out of order", b.line, name, leStr)
				}
				prevLe = le
			}
			if b.value < prevCum {
				return 0, fmt.Errorf("line %d: histogram %s: bucket counts not cumulative", b.line, name)
			}
			prevCum = b.value
		}
		if !sawInf {
			return 0, fmt.Errorf("histogram %s: no +Inf bucket", name)
		}
		if count.value != prevCum {
			return 0, fmt.Errorf("histogram %s: _count %g != +Inf bucket %g", name, count.value, prevCum)
		}
	}
	return samples, nil
}

// baseMetricName maps a sample name to the metric it belongs to: the
// histogram/summary series suffixes attach to their declared base.
func baseMetricName(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if t := types[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	return name
}

func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' || r == ':'
		if !ok && !(i > 0 && r >= '0' && r <= '9') {
			return false
		}
	}
	return true
}

// parsePromSample parses one sample line:
// name[{label="value",...}] value [timestamp]
func parsePromSample(line string) (promSample, error) {
	s := promSample{}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	s.name = line[:i]
	if !validPromName(s.name) {
		return s, fmt.Errorf("invalid metric name %q", s.name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, labels, err := parsePromLabels(rest)
		if err != nil {
			return s, err
		}
		s.labels = labels
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("expected value and optional timestamp, got %q", strings.TrimSpace(rest))
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q", fields[0])
	}
	s.value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

// parsePromLabels parses a {name="value",...} block starting at s[0] ==
// '{', returning the index just past the closing brace.
func parsePromLabels(s string) (end int, labels map[string]string, err error) {
	labels = make(map[string]string)
	i := 1
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, labels, nil
		}
		start := i
		for i < len(s) && s[i] != '=' && s[i] != '}' {
			i++
		}
		if i >= len(s) || s[i] != '=' {
			return 0, nil, fmt.Errorf("malformed label block %q", s)
		}
		name := s[start:i]
		if !validPromName(name) {
			return 0, nil, fmt.Errorf("invalid label name %q", name)
		}
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, nil, fmt.Errorf("unterminated label value in %q", s)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return 0, nil, fmt.Errorf("dangling escape in %q", s)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("unknown escape \\%c in %q", s[i+1], s)
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := labels[name]; dup {
			return 0, nil, fmt.Errorf("duplicate label %q", name)
		}
		labels[name] = val.String()
	}
}
