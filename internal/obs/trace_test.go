package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{
		TraceID: TraceIDFromUint64(0x0123456789abcdef, 0xfedcba9876543210),
		SpanID:  SpanIDFromUint64(0xdeadbeefcafef00d),
		Flags:   FlagSampled,
	}
	tp := sc.Traceparent()
	want := "00-0123456789abcdeffedcba9876543210-deadbeefcafef00d-01"
	if tp != want {
		t.Fatalf("Traceparent() = %q, want %q", tp, want)
	}
	got, ok := ParseTraceparent(tp)
	if !ok || got != sc {
		t.Fatalf("ParseTraceparent(%q) = %+v, %v; want %+v", tp, got, ok, sc)
	}
}

func TestParseTraceparentInvalid(t *testing.T) {
	valid := "00-0123456789abcdeffedcba9876543210-deadbeefcafef00d-01"
	cases := []struct {
		name string
		in   string
		ok   bool
	}{
		{"valid", valid, true},
		{"uppercase hex accepted", strings.ToUpper(valid[:2]) + valid[2:], true},
		{"future version with suffix", "01" + valid[2:] + "-extrafield", true},
		{"empty", "", false},
		{"short", valid[:54], false},
		{"version ff", "ff" + valid[2:], false},
		{"version 00 with trailing data", valid + "-extra", false},
		{"future version bad separator", "01" + valid[2:] + "x", false},
		{"zero trace id", "00-00000000000000000000000000000000-deadbeefcafef00d-01", false},
		{"zero span id", "00-0123456789abcdeffedcba9876543210-0000000000000000-01", false},
		{"non-hex trace id", "00-0123456789abcdeffedcba987654321g-deadbeefcafef00d-01", false},
		{"non-hex flags", "00-0123456789abcdeffedcba9876543210-deadbeefcafef00d-0x", false},
		{"wrong separators", strings.Replace(valid, "-", "_", 1), false},
	}
	for _, tc := range cases {
		if _, ok := ParseTraceparent(tc.in); ok != tc.ok {
			t.Errorf("%s: ParseTraceparent(%q) ok = %v, want %v", tc.name, tc.in, ok, tc.ok)
		}
	}
}

func TestParseTraceID(t *testing.T) {
	id := NewTraceID()
	got, ok := ParseTraceID(id.String())
	if !ok || got != id {
		t.Fatalf("ParseTraceID(%q) = %v, %v", id.String(), got, ok)
	}
	for _, bad := range []string{
		"", "abc", strings.Repeat("0", 32), strings.Repeat("g", 32),
		id.String() + "00", id.String()[:30],
	} {
		if _, ok := ParseTraceID(bad); ok {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}

func TestNewIDsUniqueAndNonZero(t *testing.T) {
	const n = 10000
	traces := make(map[TraceID]bool, n)
	spans := make(map[SpanID]bool, n)
	for i := 0; i < n; i++ {
		tid, sid := NewTraceID(), NewSpanID()
		if tid.IsZero() || sid.IsZero() {
			t.Fatal("generated a zero ID")
		}
		if traces[tid] || spans[sid] {
			t.Fatal("generated a duplicate ID")
		}
		traces[tid], spans[sid] = true, true
	}
	// The all-zero inputs must be remapped, not passed through.
	if TraceIDFromUint64(0, 0).IsZero() || SpanIDFromUint64(0).IsZero() {
		t.Fatal("FromUint64(0) produced the invalid zero ID")
	}
}

func TestStartRequestAdoptsParent(t *testing.T) {
	parent := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: FlagSampled}
	ctx, rt := StartRequest(context.Background(), "serve.synth", parent)
	if rt.TraceID() != parent.TraceID {
		t.Fatalf("trace ID not adopted: got %s, want %s", rt.TraceID(), parent.TraceID)
	}
	if RequestFromContext(ctx) != rt {
		t.Fatal("RequestFromContext did not return the started trace")
	}
	if cc := rt.ChildContext(); cc.TraceID != parent.TraceID || cc.SpanID == rt.Context().SpanID {
		t.Fatal("ChildContext must keep the trace ID and mint a fresh span ID")
	}
	done := rt.Finish(200, 42)
	if done.TraceID != parent.TraceID.String() || done.Parent != parent.SpanID.String() {
		t.Fatalf("finished trace identity wrong: %+v", done)
	}
	if done.Status != 200 || done.Bytes != 42 {
		t.Fatalf("finished trace outcome wrong: %+v", done)
	}

	// A zero parent starts a fresh trace.
	_, rt2 := StartRequest(context.Background(), "serve.synth", SpanContext{})
	if rt2.TraceID().IsZero() {
		t.Fatal("fresh request got a zero trace ID")
	}
	if d := rt2.Finish(200, 0); d.Parent != "" {
		t.Fatalf("fresh request has a parent span: %q", d.Parent)
	}
}

func TestReqTraceSpans(t *testing.T) {
	_, rt := StartRequest(context.Background(), "serve.synth", SpanContext{})
	rt.SetHTTP("POST", "/v1/profiles/x/synth", true)
	end := rt.StartSpan("synth.stream")
	time.Sleep(time.Millisecond)
	end()
	rt.StartSpan("never.ended") // an end function that never runs records nothing
	done := rt.Finish(200, 7)
	if len(done.Spans) != 1 || done.Spans[0].Name != "synth.stream" {
		t.Fatalf("spans = %+v, want exactly synth.stream", done.Spans)
	}
	if done.Spans[0].DurNs <= 0 || done.Spans[0].StartNs < 0 {
		t.Fatalf("span timing not positive: %+v", done.Spans[0])
	}
	if done.Method != "POST" || done.Route != "/v1/profiles/x/synth" || !done.Peer {
		t.Fatalf("HTTP identity lost: %+v", done)
	}
}

func TestReqTraceNilSafe(t *testing.T) {
	var rt *ReqTrace
	if !rt.TraceID().IsZero() {
		t.Fatal("nil trace has a trace ID")
	}
	if rt.Context().Valid() || rt.ChildContext().Valid() {
		t.Fatal("nil trace has a valid span context")
	}
	rt.SetHTTP("GET", "/", false)
	rt.StartSpan("x")()
	if rt.Finish(200, 0) != nil {
		t.Fatal("nil trace finished to a record")
	}
	if RequestFromContext(context.Background()) != nil {
		t.Fatal("empty context carries a trace")
	}
	if RequestFromContext(nil) != nil {
		t.Fatal("nil context carries a trace")
	}
}

func TestTraceRingRecent(t *testing.T) {
	r := NewTraceRing(4)
	if r.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", r.Cap())
	}
	if got := r.Recent(10); got != nil {
		t.Fatalf("empty ring Recent = %v", got)
	}
	for i := 0; i < 6; i++ {
		r.Put(&RequestTrace{Name: fmt.Sprintf("req%d", i)})
	}
	got := r.Recent(10)
	if len(got) != 4 {
		t.Fatalf("Recent returned %d traces, want 4", len(got))
	}
	// Newest first; the two oldest were overwritten.
	for i, want := range []string{"req5", "req4", "req3", "req2"} {
		if got[i].Name != want {
			t.Fatalf("Recent[%d] = %s, want %s", i, got[i].Name, want)
		}
	}
	if got := r.Recent(2); len(got) != 2 || got[0].Name != "req5" {
		t.Fatalf("Recent(2) = %v", got)
	}
	r.Put(nil) // ignored
	if len(r.Recent(10)) != 4 {
		t.Fatal("nil Put changed the ring")
	}
}

func TestTraceRingDefaultSize(t *testing.T) {
	if NewTraceRing(0).Cap() != DefaultTraceRingSize {
		t.Fatal("size 0 did not select the default capacity")
	}
	if NewTraceRing(-3).Cap() != DefaultTraceRingSize {
		t.Fatal("negative size did not select the default capacity")
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Put(&RequestTrace{Name: fmt.Sprintf("g%d-%d", g, i)})
				if i%100 == 0 {
					r.Recent(32)
				}
			}
		}(g)
	}
	wg.Wait()
	got := r.Recent(64)
	if len(got) == 0 || len(got) > 64 {
		t.Fatalf("Recent after concurrent writes returned %d traces", len(got))
	}
	for _, tr := range got {
		if tr == nil {
			t.Fatal("Recent returned a nil trace")
		}
	}
}
