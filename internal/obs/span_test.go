package obs

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestSpanNesting walks the context-carried tree the way the CLI does:
// stage spans started from a parent's context attach as children in
// start order, and siblings started from the same context do not nest
// into each other.
func TestSpanNesting(t *testing.T) {
	ctx, root := Start(context.Background(), "run")
	actx, a := Start(ctx, "a")
	_, a1 := Start(actx, "a1")
	a1.End()
	a.End()
	_, b := Start(ctx, "b")
	b.End()
	root.End()

	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "a" || kids[1].Name() != "b" {
		t.Fatalf("root children = %v, want [a b]", names(kids))
	}
	if g := kids[0].Children(); len(g) != 1 || g[0].Name() != "a1" {
		t.Fatalf("a children = %v, want [a1]", names(g))
	}
	if g := kids[1].Children(); len(g) != 0 {
		t.Fatalf("b children = %v, want none", names(g))
	}
}

func names(spans []*Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name()
	}
	return out
}

func TestSpanFromContext(t *testing.T) {
	if SpanFromContext(nil) != nil || SpanFromContext(context.Background()) != nil {
		t.Fatal("SpanFromContext must be nil for span-free contexts")
	}
	ctx, sp := Start(context.Background(), "x")
	if SpanFromContext(ctx) != sp {
		t.Fatal("SpanFromContext did not return the started span")
	}
	sp.End()
}

func TestSpanCounts(t *testing.T) {
	_, sp := Start(context.Background(), "counts")
	sp.SetCount("requests", 10)
	sp.SetCount("leaves", 3)
	sp.SetCount("requests", 400) // overwrite, not append
	sp.End()
	got := sp.Counts()
	if len(got) != 2 || got[0] != (SpanCount{"requests", 400}) || got[1] != (SpanCount{"leaves", 3}) {
		t.Fatalf("Counts() = %v, want [{requests 400} {leaves 3}]", got)
	}
}

// TestSpanEndOnce pins that a second End keeps the first measurement
// (the CLI's failure path calls stop() explicitly and then deferred
// stops may run again).
func TestSpanEndOnce(t *testing.T) {
	_, sp := Start(context.Background(), "once")
	sp.End()
	first := sp.Wall()
	sp.End()
	if sp.Wall() != first {
		t.Fatalf("second End changed wall time: %v -> %v", first, sp.Wall())
	}
}

// TestSpanEndRecordsStageMetrics checks End feeds the Default registry:
// one observation in the stage histogram and a positive wall gauge.
func TestSpanEndRecordsStageMetrics(t *testing.T) {
	const name = "obs_test.stage_metrics"
	before := NewHistogram("stage."+name+".ns", ScaleNs).Total()
	_, sp := Start(context.Background(), name)
	sp.End()
	if got := NewHistogram("stage."+name+".ns", ScaleNs).Total(); got != before+1 {
		t.Errorf("stage histogram total = %d, want %d", got, before+1)
	}
	if g := NewGauge("stage." + name + ".wall_ns").Value(); g <= 0 {
		t.Errorf("stage wall gauge = %v, want > 0", g)
	}
}

func TestSpanNilSafe(t *testing.T) {
	var sp *Span
	sp.SetCount("x", 1)
	sp.End()
	if sp.Name() != "" || sp.Wall() != 0 || sp.Counts() != nil || sp.Children() != nil {
		t.Fatal("nil span accessors must return zero values")
	}
	sp.WriteTree(&bytes.Buffer{})
	sp.WriteSummary(&bytes.Buffer{})
}

func TestWriteTree(t *testing.T) {
	ctx, root := Start(context.Background(), "run")
	cctx, child := Start(ctx, "child")
	child.SetCount("requests", 400)
	_, grand := Start(cctx, "grandchild")
	grand.End()
	child.End()
	root.End()

	var buf bytes.Buffer
	root.WriteTree(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("tree has %d lines, want 3:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "run") {
		t.Errorf("root line = %q, want no indent", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  child") || !strings.Contains(lines[1], "requests=400") {
		t.Errorf("child line = %q, want two-space indent and requests=400", lines[1])
	}
	if !strings.HasPrefix(lines[2], "    grandchild") {
		t.Errorf("grandchild line = %q, want four-space indent", lines[2])
	}
}

func TestWriteSummary(t *testing.T) {
	ctx, root := Start(context.Background(), "run")
	_, child := Start(ctx, "synth")
	child.SetCount("requests", 1000)
	child.End()
	root.End()

	var buf bytes.Buffer
	root.WriteSummary(&buf)
	out := buf.String()
	if !strings.Contains(out, "stage") || !strings.Contains(out, "synth") || !strings.Contains(out, "requests/s=") {
		t.Fatalf("summary missing stage row or rate column:\n%s", out)
	}
}
