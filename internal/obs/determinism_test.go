// The determinism test lives in the external test package so it can
// drive the real pipeline: internal/obs itself imports nothing from the
// repository, and this test must keep it that way while proving the
// instrumentation is write-only.
package obs_test

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/trace"
)

// detTrace builds a small deterministic trace (same recipe as the CLI
// smoke tests' tiny trace, scaled up so the profile has several leaves
// and synthesis exercises the merge path).
func detTrace() trace.Trace {
	rng := stats.NewRNG(5)
	tr := make(trace.Trace, 0, 4000)
	now, addr := uint64(100), uint64(1<<20)
	for i := 0; i < 4000; i++ {
		now += uint64(rng.Range(1, 120))
		addr += uint64(rng.Range(-2, 6) * 64)
		op := trace.Read
		if rng.Bool(0.25) {
			op = trace.Write
		}
		tr = append(tr, trace.Request{Time: now, Addr: addr, Size: 64, Op: op})
	}
	return tr
}

// runPipeline profiles and synthesises the trace and returns the
// serialised bytes of both artefacts.
func runPipeline(t *testing.T, tr trace.Trace, buildOpts []core.BuildOption, synthOpts []core.SynthOption) (profBytes, synthBytes []byte) {
	t.Helper()
	p, err := core.Build("det", tr, core.DefaultConfig(), buildOpts...)
	if err != nil {
		t.Fatal(err)
	}
	var pb bytes.Buffer
	if err := profile.WriteGzip(&pb, p); err != nil {
		t.Fatal(err)
	}
	syn := core.SynthesizeTrace(p, 42, synthOpts...)
	var sb bytes.Buffer
	if _, err := trace.WriteBinary(&sb, syn); err != nil {
		t.Fatal(err)
	}
	return pb.Bytes(), sb.Bytes()
}

// TestInstrumentationDoesNotPerturbOutput is the package's contract
// test: profile and synthetic-trace bytes are identical whether the
// pipeline runs bare or under verbose logging, nested spans and a
// populated metrics registry. Instrumentation is observation-only —
// nothing it records may feed back into partitioning, fitting or
// synthesis.
func TestInstrumentationDoesNotPerturbOutput(t *testing.T) {
	tr := detTrace()

	// Bare run: observability left at its defaults, no contexts.
	profOff, synthOff := runPipeline(t, tr, nil, nil)

	// Instrumented run: verbose mode on (logger swapped to io.Discard so
	// the test output stays clean — Verbose() still reports true, which
	// is what the pipeline's debug paths check), spans nested under a
	// root, every stage recording into the Default registry — and the
	// whole pipeline inside a sampled request trace with timed child
	// spans and a ring Put, exactly as mocktailsd's middleware runs it.
	obs.SetVerbose(true)
	obs.SetLogger(slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelDebug})))
	defer obs.SetVerbose(false)
	ctx, root := obs.Start(context.Background(), "determinism_test")
	parent := obs.SpanContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID(), Flags: obs.FlagSampled}
	ctx, rt := obs.StartRequest(ctx, "determinism_test.request", parent)
	endSpan := rt.StartSpan("synth.stream")
	profOn, synthOn := runPipeline(t, tr,
		[]core.BuildOption{core.BuildContext(ctx)},
		[]core.SynthOption{core.SynthContext(ctx)})
	endSpan()
	ring := obs.NewTraceRing(8)
	ring.Put(rt.Finish(200, int64(len(synthOn))))
	root.End()

	if !bytes.Equal(profOff, profOn) {
		t.Error("profile bytes differ with instrumentation enabled")
	}
	if !bytes.Equal(synthOff, synthOn) {
		t.Error("synthetic trace bytes differ with instrumentation enabled")
	}
	if len(root.Children()) == 0 {
		t.Error("instrumented run attached no stage spans under the root")
	}
	if got := ring.Recent(1); len(got) != 1 || got[0].TraceID != parent.TraceID.String() {
		t.Error("request trace did not land in the ring with the adopted trace ID")
	}
}
