package obs

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Span measures one pipeline stage. Spans nest through the context:
// Start attaches the new span as a child of the span already carried by
// ctx, reproducing the Fig. 1 pipeline (partition → fit → synthesize →
// simulate) as a tree the CLI prints with -v. End records the wall time
// into the stage's ns-latency histogram ("stage.<name>.ns") and wall
// gauge ("stage.<name>.wall_ns") in the Default registry.
//
// Spans are observation-only: nothing in the pipeline reads them, so
// they never perturb profile or synthesis output. All methods are safe
// on a nil *Span and safe for concurrent children (parallel stages
// attach under a mutex).
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	wall     time.Duration
	ended    bool
	counts   []SpanCount
	children []*Span
}

// SpanCount is one named item count attached to a span (requests,
// leaves, ...). Summary rendering derives per-second rates from it.
type SpanCount struct {
	Name string
	N    int64
}

// spanKey carries the current span through a context.
type spanKey struct{}

// Start begins a span named name, child of the span carried by ctx (if
// any), and returns a derived context carrying the new span.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	sp := &Span{name: name, start: time.Now()}
	if ctx == nil {
		ctx = context.Background()
	}
	if parent, ok := ctx.Value(spanKey{}).(*Span); ok && parent != nil {
		parent.mu.Lock()
		parent.children = append(parent.children, sp)
		parent.mu.Unlock()
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// SetCount attaches (or overwrites) a named item count.
func (s *Span) SetCount(name string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.counts {
		if s.counts[i].Name == name {
			s.counts[i].N = n
			return
		}
	}
	s.counts = append(s.counts, SpanCount{name, n})
}

// End stops the span, feeding its wall time into the stage histogram
// and gauge. Calling End more than once keeps the first measurement.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.wall = time.Since(s.start)
	wall := s.wall
	s.mu.Unlock()
	NewHistogram("stage."+s.name+".ns", ScaleNs).Observe(int64(wall))
	NewGauge("stage." + s.name + ".wall_ns").Set(float64(wall))
	if Verbose() {
		args := []any{"stage", s.name, "wall", wall}
		for _, c := range s.snapshotCounts() {
			args = append(args, c.Name, c.N)
		}
		Logger().Debug("stage done", args...)
	}
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Wall returns the measured wall time; for a running span, the time
// since Start.
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return time.Since(s.start)
	}
	return s.wall
}

// Counts returns a copy of the span's item counts.
func (s *Span) Counts() []SpanCount {
	if s == nil {
		return nil
	}
	return s.snapshotCounts()
}

func (s *Span) snapshotCounts() []SpanCount {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SpanCount(nil), s.counts...)
}

// Children returns a copy of the span's child list in attach order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// WriteTree renders the span and its descendants as an indented tree:
//
//	mocktails.check                 41.2ms
//	  profile                       17.0ms  requests=12000
//	    partition.split              3.1ms  leaves=210
//	    profile.fit                 13.4ms  leaves=210
//
// Durations are wall times; counts follow as name=value pairs.
func (s *Span) WriteTree(w io.Writer) {
	if s == nil {
		return
	}
	s.writeTree(w, 0)
}

func (s *Span) writeTree(w io.Writer, depth int) {
	label := strings.Repeat("  ", depth) + s.name
	line := fmt.Sprintf("%-36s %10s", label, s.Wall().Round(time.Microsecond))
	for _, c := range s.snapshotCounts() {
		line += fmt.Sprintf("  %s=%d", c.Name, c.N)
	}
	fmt.Fprintln(w, line)
	for _, c := range s.Children() {
		c.writeTree(w, depth+1)
	}
}

// WriteSummary renders a flat per-stage table over the span's direct
// children (the pipeline stages of one run): stage, wall time, and one
// <count>/s rate column per attached item count.
func (s *Span) WriteSummary(w io.Writer) {
	if s == nil {
		return
	}
	fmt.Fprintf(w, "%-20s %12s  %s\n", "stage", "wall", "rates")
	for _, c := range s.Children() {
		c.summaryRow(w)
	}
	s.summaryRow(w)
}

func (s *Span) summaryRow(w io.Writer) {
	wall := s.Wall()
	rates := ""
	for _, c := range s.snapshotCounts() {
		if wall > 0 {
			rate := float64(c.N) / wall.Seconds()
			if rates != "" {
				rates += "  "
			}
			rates += fmt.Sprintf("%s/s=%.0f", c.Name, rate)
		}
	}
	fmt.Fprintf(w, "%-20s %12s  %s\n", s.name, wall.Round(time.Microsecond), rates)
}
