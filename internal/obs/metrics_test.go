package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value() = %d, want 42", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if got := g.Value(); got != 0 {
		t.Fatalf("zero Value() = %v, want 0", got)
	}
	g.Set(0.75)
	if got := g.Value(); got != 0.75 {
		t.Fatalf("Value() = %v, want 0.75", got)
	}
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Fatalf("Value() = %v, want -3", got)
	}
}

// TestHistogramBucketBoundaries pins the inclusive ("le") bucket
// semantics on both scales: a value equal to a bound lands in that
// bound's bucket, one past it lands in the next, and values above the
// last bound land in the implicit +Inf bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	for _, scale := range []Scale{ScaleNs, ScaleBytes} {
		bounds := scale.Bounds()
		h := newHistogram(scale)
		for i, b := range bounds {
			h.Observe(b) // on the bound: bucket i
			if i == 0 {
				h.Observe(b - 1) // below the first bound: bucket 0
			} else {
				h.Observe(bounds[i-1] + 1) // just past the previous bound: bucket i
			}
		}
		h.Observe(bounds[len(bounds)-1] + 1) // above every bound: +Inf
		for i := range bounds {
			if got := h.BucketCount(i); got != 2 {
				t.Errorf("%v bucket %d (le %d): count %d, want 2", scale, i, bounds[i], got)
			}
		}
		if got := h.BucketCount(len(bounds)); got != 1 {
			t.Errorf("%v +Inf bucket: count %d, want 1", scale, got)
		}
		if want := uint64(2*len(bounds) + 1); h.Total() != want {
			t.Errorf("%v Total() = %d, want %d", scale, h.Total(), want)
		}
	}
}

func TestHistogramMean(t *testing.T) {
	h := newHistogram(ScaleNs)
	if h.Mean() != 0 {
		t.Fatalf("empty Mean() = %v, want 0", h.Mean())
	}
	h.Observe(10)
	h.Observe(30)
	if h.Sum() != 40 || h.Mean() != 20 {
		t.Fatalf("Sum()/Mean() = %d/%v, want 40/20", h.Sum(), h.Mean())
	}
}

// TestRegistryConcurrency hammers get-or-create and updates from many
// goroutines; run under -race it pins the registry's locking and the
// atomicity of the metric types. Every goroutine must observe the same
// instance per name, so the final counts are exact.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines, names, incs = 8, 4, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < names; n++ {
				name := fmt.Sprintf("c%d", n)
				for i := 0; i < incs; i++ {
					r.Counter(name).Inc()
					r.Gauge(fmt.Sprintf("g%d", n)).Set(float64(g))
					r.Histogram(fmt.Sprintf("h%d", n), ScaleNs).Observe(int64(i))
				}
			}
		}(g)
	}
	wg.Wait()
	for n := 0; n < names; n++ {
		if got := r.Counter(fmt.Sprintf("c%d", n)).Value(); got != goroutines*incs {
			t.Errorf("counter c%d = %d, want %d", n, got, goroutines*incs)
		}
		if got := r.Histogram(fmt.Sprintf("h%d", n), ScaleNs).Total(); got != goroutines*incs {
			t.Errorf("histogram h%d total = %d, want %d", n, got, goroutines*incs)
		}
		if g := r.Gauge(fmt.Sprintf("g%d", n)).Value(); g < 0 || g >= goroutines {
			t.Errorf("gauge g%d = %v, want one of the written worker ids", n, g)
		}
	}
}

// TestWriteJSONGolden pins the exact JSON document shape: top-level
// counters/gauges/histograms, sorted keys, indented, histogram fields.
// Regenerate with: go test ./internal/obs -run Golden -update
var update = os.Getenv("UPDATE_GOLDEN") != ""

func TestWriteJSONGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("synth.requests").Add(400)
	r.Counter("partition.leaves").Add(7)
	r.Gauge("par.utilization").Set(0.5)
	h := r.Histogram("stage.synth.ns", ScaleNs)
	h.Observe(1e3)
	h.Observe(5e5)
	h.Observe(2e10)
	b := r.Histogram("request.bytes", ScaleBytes)
	b.Observe(64)
	b.Observe(100)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden.json")
	if update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON dump drifted from %s:\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
	// The dump must stay machine-readable with the documented keys.
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"counters", "gauges", "histograms"} {
		if _, ok := doc[k]; !ok {
			t.Errorf("dump missing top-level key %q", k)
		}
	}
}

func TestWriteMetricsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	NewCounter("obs_test.file_dump").Inc()
	if err := WriteMetricsFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("metrics file does not parse: %v", err)
	}
	if doc.Counters["obs_test.file_dump"] == 0 {
		t.Error("metrics file missing counter written before the dump")
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := newHistogram(ScaleNs)
	for _, v := range []int64{500, 5000, 5000, 2e6} {
		h.Observe(v)
	}
	bounds, counts := h.Snapshot()
	if len(counts) != len(bounds)+1 {
		t.Fatalf("len(counts) = %d, want len(bounds)+1 = %d", len(counts), len(bounds)+1)
	}
	var sum uint64
	for _, c := range counts {
		sum += c
	}
	if sum != h.Total() {
		t.Fatalf("bucket sum %d != total %d", sum, h.Total())
	}
	if counts[0] != 1 || counts[1] != 2 {
		t.Fatalf("counts = %v, want 1 in bucket 0 and 2 in bucket 1", counts)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram(ScaleNs)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
	// 100 observations spread uniformly over (1e4, 1e5]: every quantile
	// must land inside that bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(1e4 + int64(i)*900)
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		got := h.Quantile(q)
		if got <= 1e4 || got > 1e5 {
			t.Errorf("Quantile(%g) = %d, want within (1e4, 1e5]", q, got)
		}
	}
	if p10, p90 := h.Quantile(0.1), h.Quantile(0.9); p10 >= p90 {
		t.Errorf("Quantile not monotone: p10=%d >= p90=%d", p10, p90)
	}
	// An observation beyond the last bound clamps to the last finite
	// bound rather than inventing a value.
	h2 := newHistogram(ScaleNs)
	h2.Observe(1e12)
	bounds := ScaleNs.Bounds()
	if got := h2.Quantile(0.99); got != bounds[len(bounds)-1] {
		t.Errorf("+Inf-bucket quantile = %d, want clamp to %d", got, bounds[len(bounds)-1])
	}
}
