package obs

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRegisterFlagsParse(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := RegisterFlags(fs)
	err := fs.Parse([]string{
		"-v", "-metrics", "m.json", "-pprof", "cpu.out",
		"-memprofile", "mem.out", "-trace", "trace.out", "-pprof-http", "localhost:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Flags{Verbose: true, Metrics: "m.json", CPUProfile: "cpu.out",
		MemProfile: "mem.out", Trace: "trace.out", HTTP: "localhost:0",
		LogFormat: "text", AccessLog: true}
	if *f != want {
		t.Fatalf("parsed flags = %+v, want %+v", *f, want)
	}

	fs2 := flag.NewFlagSet("test2", flag.ContinueOnError)
	f2 := RegisterFlags(fs2)
	if err := fs2.Parse([]string{"-log-format", "json", "-access-log=false"}); err != nil {
		t.Fatal(err)
	}
	if f2.LogFormat != "json" || f2.AccessLog {
		t.Fatalf("parsed flags = %+v, want LogFormat=json AccessLog=false", *f2)
	}
}

// TestSetLogFormat checks the format switch round-trips and rejects
// unknown formats without disturbing the current logger.
func TestSetLogFormat(t *testing.T) {
	defer SetLogFormat("text")
	if err := SetLogFormat("json"); err != nil {
		t.Fatal(err)
	}
	if err := SetLogFormat(""); err != nil {
		t.Fatal(err)
	}
	if err := SetLogFormat("xml"); err == nil {
		t.Fatal("SetLogFormat accepted an unknown format")
	}
}

// TestSetAccessLog checks the access-log gate toggles.
func TestSetAccessLog(t *testing.T) {
	defer SetAccessLog(true)
	if !AccessLogEnabled() {
		t.Fatal("access log should default on")
	}
	SetAccessLog(false)
	if AccessLogEnabled() {
		t.Fatal("SetAccessLog(false) did not take")
	}
}

// TestFlagsStartStop runs the full bracket the binaries use: Start with
// every file output requested, a nested stage span, then stop — and
// checks each artefact landed: parseable metrics JSON with the run's
// stage metrics, and non-empty CPU/heap/trace profiles.
func TestFlagsStartStop(t *testing.T) {
	defer SetVerbose(false)
	dir := t.TempDir()
	f := &Flags{
		Metrics:    filepath.Join(dir, "metrics.json"),
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
		Trace:      filepath.Join(dir, "run.trace"),
	}
	ctx, stop := f.Start("obs_test.run")
	_, sp := Start(ctx, "obs_test.stage")
	sp.SetCount("items", 3)
	sp.End()
	stop()

	data, err := os.ReadFile(f.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]uint64          `json:"counters"`
		Gauges     map[string]float64         `json:"gauges"`
		Histograms map[string]json.RawMessage `json:"histograms"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("metrics file does not parse: %v", err)
	}
	if doc.Gauges["stage.obs_test.run.wall_ns"] <= 0 {
		t.Error("metrics missing the root span's wall gauge")
	}
	if _, ok := doc.Histograms["stage.obs_test.stage.ns"]; !ok {
		t.Error("metrics missing the nested stage's histogram")
	}
	for _, path := range []string{f.CPUProfile, f.MemProfile, f.Trace} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Errorf("missing artefact: %v", err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

// TestServePprof stands the debug listener up on an ephemeral port (via
// the listen seam, which reports the bound address) and checks both
// endpoints answer — /debug/vars carries the Default registry under the
// "mocktails" key and /debug/pprof/ serves the profile index — then
// cancels the listener's context and checks the port actually closes,
// pinning the no-leaked-goroutine contract of the bracket.
func TestServePprof(t *testing.T) {
	old := listen
	defer func() { listen = old }()
	var ln net.Listener
	listen = func(addr string) (net.Listener, error) {
		var err error
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		return ln, err
	}
	NewCounter("obs_test.served").Inc()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := ServePprof(ctx, "ignored"); err != nil {
		t.Fatal(err)
	}
	base := fmt.Sprintf("http://%s", ln.Addr())

	body := httpGet(t, base+"/debug/vars")
	var vars struct {
		Mocktails struct {
			Counters map[string]uint64 `json:"counters"`
		} `json:"mocktails"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars does not parse: %v", err)
	}
	if vars.Mocktails.Counters["obs_test.served"] == 0 {
		t.Error(`/debug/vars missing the Default registry under "mocktails"`)
	}
	if len(httpGet(t, base+"/debug/pprof/")) == 0 {
		t.Error("/debug/pprof/ served an empty index")
	}

	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			break // listener is down
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting after context cancellation")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}
