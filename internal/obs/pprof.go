package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// listen is a test seam for ServePprof.
var listen = func(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }

// StartCPUProfile begins writing a CPU profile to path and returns a
// stop function that ends profiling and closes the file.
func StartCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile garbage-collects (for up-to-date allocation data, as
// `go test -memprofile` does) and writes the heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return nil
}

// StartTrace begins writing a runtime execution trace to path and
// returns a stop function that ends tracing and closes the file.
func StartTrace(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: trace: %w", err)
	}
	if err := trace.Start(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: trace: %w", err)
	}
	return func() {
		trace.Stop()
		f.Close()
	}, nil
}

// DebugHandler returns an http.Handler serving the debug surface the
// pprof listener exposes: net/http/pprof under /debug/pprof/ and the
// expvar-published metrics (including the Default registry as
// "mocktails") under /debug/vars. It uses a dedicated mux rather than
// http.DefaultServeMux, so a server embedding it (mocktailsd mounts it
// under -debug) exposes exactly these routes and nothing that other
// packages may have registered globally.
func DebugHandler() http.Handler {
	publishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", netpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// ServePprof starts an HTTP listener on addr serving DebugHandler. It
// returns once the listener is accepting. The server's lifetime is tied
// to ctx: when ctx is canceled the listener closes and the serve
// goroutine exits, so a CLI bracket (obs.Flags) or daemon shutdown does
// not leak it. A nil ctx serves for the remainder of the process.
func ServePprof(ctx context.Context, addr string) error {
	srv := &http.Server{Addr: addr, Handler: DebugHandler()}
	ln, err := listen(addr)
	if err != nil {
		return fmt.Errorf("obs: pprof listener: %w", err)
	}
	Logger().Info("pprof listener up", "addr", ln.Addr().String())
	done := make(chan struct{})
	go func() {
		srv.Serve(ln)
		close(done)
	}()
	if ctx != nil {
		go func() {
			<-ctx.Done()
			srv.Close()
			<-done
		}()
	}
	return nil
}
