package obs

import (
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// listen is a test seam for ServePprof.
var listen = func(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }

// StartCPUProfile begins writing a CPU profile to path and returns a
// stop function that ends profiling and closes the file.
func StartCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile garbage-collects (for up-to-date allocation data, as
// `go test -memprofile` does) and writes the heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return nil
}

// StartTrace begins writing a runtime execution trace to path and
// returns a stop function that ends tracing and closes the file.
func StartTrace(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: trace: %w", err)
	}
	if err := trace.Start(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: trace: %w", err)
	}
	return func() {
		trace.Stop()
		f.Close()
	}, nil
}

// ServePprof starts an HTTP listener on addr serving net/http/pprof
// under /debug/pprof and the expvar-published metrics (including the
// Default registry as "mocktails") under /debug/vars. It returns once
// the listener is accepting; the goroutine serves for the remainder of
// the process.
func ServePprof(addr string) error {
	publishExpvar()
	srv := &http.Server{Addr: addr, Handler: http.DefaultServeMux}
	ln, err := listen(addr)
	if err != nil {
		return fmt.Errorf("obs: pprof listener: %w", err)
	}
	Logger().Info("pprof listener up", "addr", ln.Addr().String())
	go srv.Serve(ln)
	return nil
}
