// Package obs is the repository's observability core: structured logging
// on log/slog, a process-wide metrics registry (atomic counters, gauges
// and fixed-bucket histograms, exported via expvar and dumpable as one
// JSON document), lightweight nested spans reproducing the Fig. 1
// pipeline stages, and pprof/runtime-trace hooks shared by the three
// command-line binaries.
//
// The package is dependency-light by design — standard library only, no
// imports from the rest of the repository — so every pipeline package
// can instrument itself without creating cycles. Instrumentation is
// strictly write-only from the pipeline's point of view: nothing read
// from the registry, the logger or a span ever feeds back into
// partitioning, fitting or synthesis, so profile and trace bytes are
// identical with observability on or off (pinned by the determinism
// test in this package).
package obs

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"sync/atomic"
)

// logger holds the process-wide default logger. Reads are lock-free so
// hot paths can grab it cheaply; SetVerbose, SetLogFormat and SetLogger
// swap it.
var logger atomic.Pointer[slog.Logger]

// verbose mirrors whether SetVerbose(true) was last called, for callers
// that want to skip building expensive log arguments entirely.
var verbose atomic.Bool

// jsonLog selects the JSON handler instead of logfmt text.
var jsonLog atomic.Bool

// accessLog gates per-request access-log emission in servers that
// consult AccessLogEnabled (mocktailsd). Default on; whether the lines
// are visible still depends on the logger's level (they are emitted at
// Info, below the default Warn threshold).
var accessLog atomic.Bool

func init() {
	accessLog.Store(true)
	logger.Store(newLogger(false))
}

func newLogger(verbose bool) *slog.Logger {
	level := slog.LevelWarn
	if verbose {
		level = slog.LevelDebug
	}
	opts := &slog.HandlerOptions{Level: level}
	if jsonLog.Load() {
		return slog.New(slog.NewJSONHandler(os.Stderr, opts))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, opts))
}

// Logger returns the process-wide default logger. The zero configuration
// logs warnings and errors as logfmt text on stderr; SetVerbose(true)
// lowers the threshold to debug so per-stage progress becomes visible.
func Logger() *slog.Logger { return logger.Load() }

// SetLogger replaces the process-wide default logger.
func SetLogger(l *slog.Logger) {
	if l != nil {
		logger.Store(l)
	}
}

// SetVerbose switches the default logger between the quiet (warn+) and
// verbose (debug+) text configurations. The CLI -v flag lands here.
func SetVerbose(v bool) {
	verbose.Store(v)
	logger.Store(newLogger(v))
}

// Verbose reports whether verbose logging is enabled.
func Verbose() bool { return verbose.Load() }

// SetLogFormat selects the default logger's handler: "text" (or "")
// keeps the logfmt text handler, "json" swaps in slog's JSON handler
// so every log line — including access logs — is one machine-parseable
// object. The current verbosity is preserved. The CLI -log-format flag
// lands here.
func SetLogFormat(format string) error {
	switch format {
	case "", "text":
		jsonLog.Store(false)
	case "json":
		jsonLog.Store(true)
	default:
		return fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
	logger.Store(newLogger(verbose.Load()))
	return nil
}

// SetAccessLog enables or disables per-request access-log lines in
// servers that consult AccessLogEnabled. The CLI -access-log flag
// lands here.
func SetAccessLog(on bool) { accessLog.Store(on) }

// AccessLogEnabled reports whether access-log emission is enabled.
func AccessLogEnabled() bool { return accessLog.Load() }

// loggerKey carries a per-run context logger through a pipeline run.
type loggerKey struct{}

// WithLogger returns a context carrying l; FromContext retrieves it.
// Use it to tag one run's log lines (run id, workload name) without
// touching the process-wide default.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey{}, l)
}

// FromContext returns the logger carried by ctx, or the process-wide
// default when the context has none.
func FromContext(ctx context.Context) *slog.Logger {
	if ctx != nil {
		if l, ok := ctx.Value(loggerKey{}).(*slog.Logger); ok && l != nil {
			return l
		}
	}
	return Logger()
}

// Fatal logs err through the structured logger and exits with status 1.
// It is the shared fatal-error path of the binaries and examples, so
// their failure output all has one format.
func Fatal(err error) {
	Logger().Error("fatal", "err", err)
	os.Exit(1)
}
