package obs

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"serve.synth.requests", "serve_synth_requests"},
		{"stage.serve.synth.ns", "stage_serve_synth_ns"},
		{"serve.cluster.probe.ns", "serve_cluster_probe_ns"},
		{"already_fine:name", "already_fine:name"},
		{"9lives", "_9lives"},
		{"", "_"},
		{"héllo", "h_llo"},
		{"a-b/c d", "a_b_c_d"},
	}
	for _, tc := range cases {
		if got := PromName(tc.in); got != tc.want {
			t.Errorf("PromName(%q) = %q, want %q", tc.in, got, tc.want)
		}
		if tc.in != "" && !validPromName(PromName(tc.in)) {
			t.Errorf("PromName(%q) is not a valid prometheus name", tc.in)
		}
	}
}

func TestEscapeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`quo"te`, `quo\"te`},
		{"new\nline", `new\nline`},
		{"all\\three\"\n", `all\\three\"\n`},
	}
	for _, tc := range cases {
		if got := escapeLabelValue(tc.in); got != tc.want {
			t.Errorf("escapeLabelValue(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestWritePrometheusOutput pins the exact rendering of a small
// registry: sorted names, TYPE comments, and the cumulative histogram
// triple with the scale's bounds as le labels.
func TestWritePrometheusOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.synth.requests").Add(3)
	r.Gauge("serve.streams.active").Set(2.5)
	h := r.Histogram("stage.serve.synth.ns", ScaleNs)
	bounds := ScaleNs.Bounds()
	h.Observe(bounds[0] - 1)             // first bucket
	h.Observe(bounds[0] - 1)             // first bucket again
	h.Observe(bounds[1] - 1)             // second bucket
	h.Observe(bounds[len(bounds)-1] + 1) // overflow -> +Inf only

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	var want strings.Builder
	want.WriteString("# TYPE serve_synth_requests counter\nserve_synth_requests 3\n")
	want.WriteString("# TYPE serve_streams_active gauge\nserve_streams_active 2.5\n")
	want.WriteString("# TYPE stage_serve_synth_ns histogram\n")
	cum := 0
	for i, b := range bounds {
		switch i {
		case 0:
			cum += 2
		case 1:
			cum++
		}
		fmt.Fprintf(&want, "stage_serve_synth_ns_bucket{le=\"%d\"} %d\n", b, cum)
	}
	fmt.Fprintf(&want, "stage_serve_synth_ns_bucket{le=\"+Inf\"} %d\n", cum+1)
	sum := 2*(bounds[0]-1) + bounds[1] - 1 + bounds[len(bounds)-1] + 1
	fmt.Fprintf(&want, "stage_serve_synth_ns_sum %d\n", sum)
	fmt.Fprintf(&want, "stage_serve_synth_ns_count %d\n", cum+1)

	if out != want.String() {
		t.Fatalf("WritePrometheus output mismatch:\n--- got ---\n%s--- want ---\n%s", out, want.String())
	}
}

// TestWritePrometheusValidates feeds the encoder's own output through
// the strict parser: everything the registry can hold must round-trip.
func TestWritePrometheusValidates(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 5; i++ {
		r.Counter(fmt.Sprintf("serve.c%d.requests", i)).Add(uint64(i * 7))
		r.Gauge(fmt.Sprintf("serve.g%d", i)).Set(float64(i) * 1.25)
		h := r.Histogram(fmt.Sprintf("stage.s%d.ns", i), ScaleNs)
		for j := 0; j < 100; j++ {
			h.Observe(int64(j * j * 1000))
		}
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ValidateExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("encoder output failed validation: %v\n%s", err, buf.String())
	}
	// 5 counters + 5 gauges + 5 histograms x (len(bounds)+1 buckets + sum + count)
	wantSamples := 5 + 5 + 5*(len(ScaleNs.Bounds())+1+2)
	if samples != wantSamples {
		t.Fatalf("validated %d samples, want %d", samples, wantSamples)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"duplicate TYPE", "# TYPE a counter\n# TYPE a counter\na 1\n"},
		{"TYPE after samples", "a 1\n# TYPE a counter\n"},
		{"bad metric name", "1bad 1\n"},
		{"bad value", "a one\n"},
		{"bad timestamp", "a 1 nope\n"},
		{"unknown type", "# TYPE a widget\na 1\n"},
		{"bad label name", `a{1b="x"} 1` + "\n"},
		{"unquoted label", `a{b=x} 1` + "\n"},
		{"unknown escape", `a{b="\q"} 1` + "\n"},
		{"unterminated label", `a{b="x} 1` + "\n"},
		{"duplicate label", `a{b="x",b="y"} 1` + "\n"},
		{"histogram missing sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n"},
		{"histogram missing inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"histogram non-cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n"},
		{"histogram le out of order", "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n"},
		{"histogram bucket after inf", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_bucket{le=\"9\"} 1\nh_sum 1\nh_count 1\n"},
		{"histogram count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 2\n"},
		{"histogram bucket without le", "# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n"},
	}
	for _, tc := range cases {
		if _, err := ValidateExposition([]byte(tc.doc)); err == nil {
			t.Errorf("%s: ValidateExposition accepted:\n%s", tc.name, tc.doc)
		}
	}

	// And the things it must accept.
	good := "# comment\n# HELP a docstring text\n# TYPE a counter\na 1\n" +
		`b{x="v alue",y="\\\"\n"} 2.5 1700000000000` + "\n" +
		"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n"
	if n, err := ValidateExposition([]byte(good)); err != nil || n != 6 {
		t.Fatalf("good document rejected: n=%d err=%v", n, err)
	}
}

// TestPromHandler checks the HTTP wrapper sets the exposition
// content type and serves the Default registry when reg is nil.
func TestPromHandler(t *testing.T) {
	NewCounter("obs_test.prom_handler").Inc()
	rec := httptest.NewRecorder()
	PromHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); got != PromContentType {
		t.Fatalf("Content-Type = %q, want %q", got, PromContentType)
	}
	if !strings.Contains(rec.Body.String(), "obs_test_prom_handler 1") {
		t.Fatal("handler output missing the Default-registry counter")
	}
	if _, err := ValidateExposition(rec.Body.Bytes()); err != nil {
		t.Fatalf("handler output failed validation: %v", err)
	}
}
