package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. All methods are safe
// for concurrent use; Add is one atomic add, cheap enough for
// per-chunk and per-leaf instrumentation (per-request hot loops should
// accumulate locally and flush once, see internal/synth).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a last-value-wins float64 gauge (worker utilization, row-hit
// counts of the most recent simulation, stage wall times). Safe for
// concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Scale selects a Histogram's fixed bucket boundaries.
type Scale int

const (
	// ScaleNs buckets nanosecond latencies: 1µs, 10µs, ... 10s, +Inf.
	ScaleNs Scale = iota
	// ScaleBytes buckets byte sizes: 64B, 256B, 1KiB, ... 16MiB, +Inf.
	ScaleBytes
)

// Bounds returns the scale's upper bucket boundaries (inclusive,
// Prometheus-style "le"); observations above the last bound land in an
// implicit +Inf bucket.
func (s Scale) Bounds() []int64 {
	switch s {
	case ScaleBytes:
		return []int64{64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}
	default:
		return []int64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}
	}
}

// String names the scale for the JSON dump.
func (s Scale) String() string {
	if s == ScaleBytes {
		return "bytes"
	}
	return "ns"
}

// Histogram counts observations into fixed buckets. counts[i] holds the
// observations v with bounds[i-1] < v <= bounds[i]; the final bucket is
// +Inf. Observe is two atomic adds plus a short branch-free-ish scan of
// at most len(bounds) comparisons.
type Histogram struct {
	scale  Scale
	bounds []int64
	counts []atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Int64
}

func newHistogram(scale Scale) *Histogram {
	b := scale.Bounds()
	return &Histogram{scale: scale, bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the mean observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// BucketCount returns the count of bucket i (0 <= i <= len(Bounds())).
func (h *Histogram) BucketCount(i int) uint64 { return h.counts[i].Load() }

// Snapshot returns the histogram's bucket bounds and a point-in-time
// copy of its counts. counts has len(bounds)+1 entries; the last is
// the +Inf bucket. The bounds slice is shared and must not be mutated.
func (h *Histogram) Snapshot() (bounds []int64, counts []uint64) {
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.bounds, counts
}

// Quantile estimates the q-th quantile (0 <= q <= 1) of the recorded
// observations by linear interpolation within the bucket holding it.
// The estimate is bounded by the bucket's edges, so it is exact at
// bucket boundaries and never off by more than one bucket's width; an
// observation in the +Inf bucket reports the last finite bound. It
// returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	bounds, counts := h.Snapshot()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based position of the target observation.
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		if cum+c < rank {
			cum += c
			continue
		}
		if i == len(bounds) {
			return bounds[len(bounds)-1] // +Inf bucket: clamp to the last bound
		}
		lo := int64(0)
		if i > 0 {
			lo = bounds[i-1]
		}
		frac := (float64(rank-cum) - 0.5) / float64(c)
		return lo + int64(frac*float64(bounds[i]-lo))
	}
	return bounds[len(bounds)-1]
}

// Registry is a named collection of metrics. The zero value is not
// usable; use NewRegistry. Lookups take a read lock; pipeline packages
// resolve their metrics once into package variables, so the steady
// state is pure atomics.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// scale on first use. The scale of an existing histogram wins.
func (r *Registry) Histogram(name string, scale Scale) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; ok {
		return h
	}
	h = newHistogram(scale)
	r.histograms[name] = h
	return h
}

// histogramJSON is the JSON shape of one histogram.
type histogramJSON struct {
	Scale  string   `json:"scale"`
	Bounds []int64  `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Total  uint64   `json:"total"`
	Sum    int64    `json:"sum"`
	Mean   float64  `json:"mean"`
}

// snapshot captures the registry as plain maps for encoding.
func (r *Registry) snapshot() (map[string]uint64, map[string]float64, map[string]histogramJSON) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	cs := make(map[string]uint64, len(r.counters))
	for n, c := range r.counters {
		cs[n] = c.Value()
	}
	gs := make(map[string]float64, len(r.gauges))
	for n, g := range r.gauges {
		gs[n] = g.Value()
	}
	hs := make(map[string]histogramJSON, len(r.histograms))
	for n, h := range r.histograms {
		counts := make([]uint64, len(h.counts))
		for i := range h.counts {
			counts[i] = h.counts[i].Load()
		}
		hs[n] = histogramJSON{
			Scale:  h.scale.String(),
			Bounds: h.bounds,
			Counts: counts,
			Total:  h.Total(),
			Sum:    h.Sum(),
			Mean:   h.Mean(),
		}
	}
	return cs, gs, hs
}

// WriteJSON dumps every metric as one indented JSON document with
// deterministic (sorted) key order.
func (r *Registry) WriteJSON(w io.Writer) error {
	cs, gs, hs := r.snapshot()
	doc := struct {
		Counters   map[string]uint64        `json:"counters"`
		Gauges     map[string]float64       `json:"gauges"`
		Histograms map[string]histogramJSON `json:"histograms"`
	}{cs, gs, hs}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc) // encoding/json sorts map keys
}

// Default is the process-wide registry every pipeline package records
// into. It is published to expvar under "mocktails", so an -pprof-http
// listener exposes it at /debug/vars alongside the runtime's memstats.
var Default = NewRegistry()

var publishOnce sync.Once

func publishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("mocktails", expvar.Func(func() any {
			cs, gs, hs := Default.snapshot()
			return map[string]any{"counters": cs, "gauges": gs, "histograms": hs}
		}))
	})
}

// NewCounter returns the named counter from the Default registry,
// creating it on first use. Resolve once into a package variable.
func NewCounter(name string) *Counter { return Default.Counter(name) }

// NewGauge returns the named gauge from the Default registry.
func NewGauge(name string) *Gauge { return Default.Gauge(name) }

// NewHistogram returns the named histogram from the Default registry.
func NewHistogram(name string, scale Scale) *Histogram { return Default.Histogram(name, scale) }

// WriteMetricsFile dumps the Default registry to path as one JSON
// document (the CLI -metrics flag).
func WriteMetricsFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: metrics: %w", err)
	}
	defer f.Close()
	return Default.WriteJSON(f)
}
